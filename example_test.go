package repro_test

import (
	"fmt"
	"log"
	"time"

	repro "repro"
)

// Example demonstrates the smallest end-to-end use of the library: build a
// simulated Grid, run the paper's Q1 and a GROUP BY query, and read the
// results.
func Example() {
	grid := repro.NewGrid(repro.WithScale(2 * time.Microsecond))
	if err := grid.AddDemoDatabaseSized("data1", 100, 200); err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"ws0", "ws1"} {
		if err := grid.AddComputeNode(node, 1.0); err != nil {
			log.Fatal(err)
		}
	}
	coord, err := grid.NewCoordinator("coord")
	if err != nil {
		log.Fatal(err)
	}

	res, err := coord.Query("select EntropyAnalyser(p.sequence) from protein_sequences p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1 rows:", len(res.Rows))

	agg, err := coord.Query("select count(*) AS n from protein_interactions i")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("interactions:", agg.Rows[0][0].Format())
	// Output:
	// Q1 rows: 100
	// interactions: 200
}

// Example_adaptive shows the paper's experiment in miniature: perturb one
// machine and let the Responder rebalance the running query.
func Example_adaptive() {
	grid := repro.NewGrid(repro.WithScale(2 * time.Microsecond))
	if err := grid.AddDemoDatabaseSized("data1", 300, 100); err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"ws0", "ws1"} {
		if err := grid.AddComputeNode(node, 1.0); err != nil {
			log.Fatal(err)
		}
	}
	// ws1 becomes 25x slower — the paper's §3.2 load injection.
	if err := grid.Perturb("ws1", repro.Slowdown(25)); err != nil {
		log.Fatal(err)
	}
	coord, err := grid.NewCoordinator("coord", repro.Adaptive(), repro.Retrospective())
	if err != nil {
		log.Fatal(err)
	}
	res, err := coord.Query("select EntropyAnalyser(p.sequence) from protein_sequences p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", len(res.Rows))
	fmt.Println("rebalanced:", res.Stats.Adaptations > 0)
	// Output:
	// rows: 300
	// rebalanced: true
}
