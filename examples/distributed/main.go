// Distributed: the same adaptive query processor over real TCP sockets.
//
// This example assembles the multi-process deployment inside one program:
// a coordinator and three evaluators, each with its own TCP transport bound
// to a distinct localhost port — exactly what cmd/dqp-coordinator and
// cmd/dqp-evaluator do as separate processes on separate machines. Tuple
// buffers, checkpoint acknowledgements, deploy requests, forwarded
// monitoring events, and the Responder's rebalancing commands all cross
// real sockets.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

func main() {
	manifest := services.Manifest{
		Scale:       5 * time.Microsecond,
		Coordinator: "coord",
		DataNodes:   []services.DataNodeSpec{{Node: "data1", Sequences: 800, Interactions: 300}},
		Compute: []services.ComputeNodeSpec{
			{Node: "ws0", Speed: 1, EntropyCostMs: 10},
			{Node: "ws1", Speed: 1, EntropyCostMs: 10},
		},
		Adaptive: true,
		Response: core.R1,
	}

	// One TCP transport per "process", each on its own localhost port.
	nodes := []simnet.NodeID{"coord", "data1", "ws0", "ws1"}
	transports := make(map[simnet.NodeID]*transport.TCP, len(nodes))
	for _, n := range nodes {
		tr, err := transport.NewTCP(n, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		transports[n] = tr
		fmt.Printf("%s listening on %s\n", n, tr.Addr())
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				transports[a].AddPeer(b, transports[b].Addr())
			}
		}
	}

	// Evaluator daemons (dqp-evaluator in process form).
	evaluators := make(map[simnet.NodeID]*services.Evaluator)
	for _, n := range []simnet.NodeID{"data1", "ws0", "ws1"} {
		ev, err := services.NewEvaluator(manifest, n, transports[n])
		if err != nil {
			log.Fatal(err)
		}
		defer ev.Close()
		evaluators[n] = ev
	}
	// ws1 is under external load, 15x slower.
	evaluators["ws1"].SetPerturbation(vtime.Multiplier(15))

	coord, err := services.NewRemoteCoordinator(manifest, transports["coord"])
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	const q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"
	fmt.Println("\nexecuting Q1 over TCP with ws1 perturbed 15x, adaptivity on (R1):")
	res, err := coord.Execute(context.Background(), q1, 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows: %d, response: %.0f paper-ms\n", len(res.Rows), res.Stats.ResponseMs)
	fmt.Printf("adaptations: %d, tuples recalled over TCP: %d\n",
		res.Stats.Adaptations, res.Stats.TuplesMoved)
	if len(res.Rows) != 800 {
		log.Fatalf("FAIL: expected 800 rows, got %d", len(res.Rows))
	}
	fmt.Println("all rows accounted for across the socket boundary")
}
