// Analytics: adaptive aggregation — the architecture generalised beyond the
// paper's operators.
//
// The paper demonstrates runtime state repartitioning for hash joins and
// notes that its loosely-coupled component design "can be more easily
// extended" than operator-level approaches like Flux. This example proves
// the point with a GROUP BY query: the hash aggregate is a second stateful
// operator whose bucketed group state rides the same recovery-log machinery
// — when one machine slows down mid-aggregation, the Responder evicts the
// moved buckets' groups and replays their raw input tuples onto the fast
// machine, and every count still comes out exact.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/engine"
)

const query = `select i.ORF1, count(*) AS interactions
               from protein_interactions i
               group by i.ORF1
               order by interactions desc, i.ORF1
               limit 10`

func run(adaptive bool) *repro.Result {
	// Make the per-tuple aggregation work the dominant cost so the
	// imbalance actually bites, as the WS call dominates the paper's Q1.
	costs := engine.DefaultCosts()
	costs.AggMs = 6
	grid := repro.NewGrid(repro.WithScale(10*time.Microsecond), repro.WithCosts(costs))
	if err := grid.AddDemoDatabaseSized("data1", 400, 4000); err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"ws0", "ws1"} {
		if err := grid.AddComputeNode(node, 1.0); err != nil {
			log.Fatal(err)
		}
	}
	// ws1 is ten times slower at folding tuples into groups.
	if err := grid.Perturb("ws1", repro.Slowdown(10)); err != nil {
		log.Fatal(err)
	}
	var opts []repro.CoordinatorOption
	if adaptive {
		opts = append(opts, repro.Adaptive(), repro.Retrospective())
	}
	coord, err := grid.NewCoordinator("coord", opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coord.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("top-10 most-interacting ORFs, one aggregation machine slowed 10x")
	static := run(false)
	adaptive := run(true)

	fmt.Printf("\n%-12s %12s\n", "ORF", "interactions")
	for _, row := range adaptive.Rows {
		fmt.Printf("%-12s %12s\n", row[0].Format(), row[1].Format())
	}

	fmt.Printf("\nstatic:   %7.0f paper-ms\n", static.ResponseMs)
	fmt.Printf("adaptive: %7.0f paper-ms (%d adaptation(s), %d state replay(s))\n",
		adaptive.ResponseMs, adaptive.Stats.Adaptations, adaptive.Stats.StateReplays)

	// The two runs must agree row for row: repartitioning group state
	// mid-aggregation loses and duplicates nothing.
	if len(static.Rows) != len(adaptive.Rows) {
		log.Fatalf("FAIL: row counts differ: %d vs %d", len(static.Rows), len(adaptive.Rows))
	}
	for i := range static.Rows {
		if !static.Rows[i].Equal(adaptive.Rows[i]) {
			log.Fatalf("FAIL: row %d differs: %s vs %s",
				i, static.Rows[i].Format(), adaptive.Rows[i].Format())
		}
	}
	fmt.Println("result check: adaptive aggregation matches the static result exactly")
	if adaptive.ResponseMs < static.ResponseMs {
		fmt.Printf("speedup: %.1fx\n", static.ResponseMs/adaptive.ResponseMs)
	}
}
