// Quickstart: build a simulated Grid, run the paper's Q1 through the public
// API, and print the result. This is the smallest end-to-end use of the
// library: one data node holding the demo bioinformatics database, two
// compute nodes hosting the EntropyAnalyser Web Service, and a coordinator
// that parses, schedules, and executes the query with intra-operator
// parallelism.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
)

func main() {
	// One paper-millisecond of modelled cost lasts 5µs of real time, so the
	// whole demo finishes in well under a second.
	grid := repro.NewGrid(repro.WithScale(5 * time.Microsecond))
	if err := grid.AddDemoDatabaseSized("data1", 500, 800); err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"ws0", "ws1"} {
		if err := grid.AddComputeNode(node, 1.0); err != nil {
			log.Fatal(err)
		}
	}

	coord, err := grid.NewCoordinator("coord")
	if err != nil {
		log.Fatal(err)
	}

	const q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"

	// Show how the coordinator plans the query before running it.
	plan, err := coord.Explain(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plan ===")
	fmt.Println(plan)

	res, err := coord.Query(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== results ===\n%d rows in %.0f paper-ms\n", len(res.Rows), res.ResponseMs)
	for _, row := range res.Rows[:3] {
		fmt.Printf("  entropy = %s bits/residue\n", row[0].Format())
	}
	fmt.Println("  ...")

	// The same grid answers joins; Q2 is the paper's second query.
	res2, err := coord.Query(
		"select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join produced %d rows in %.0f paper-ms\n", len(res2.Rows), res2.ResponseMs)
}
