// Join: stateful repartitioning without losing a row.
//
// The paper's Q2 hash-joins protein_sequences with protein_interactions
// across two machines. When one machine slows down mid-query, rebalancing a
// *stateful* operator is only correct retrospectively (R1): the moved hash
// buckets' build state must be recreated at the new owner from the exchange
// recovery logs, and queued probe tuples re-routed. This example perturbs a
// join instance with the paper's sleep-injection load, lets the Responder
// repartition the join state, and verifies that the distributed result is
// exactly the single-machine reference result.
//
//	go run ./examples/join
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
)

const q2 = "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF"

func run(perturbed, adaptive bool) *repro.Result {
	grid := repro.NewGrid(repro.WithScale(5 * time.Microsecond))
	if err := grid.AddDemoDatabaseSized("data1", 800, 1500); err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"ws0", "ws1"} {
		if err := grid.AddComputeNode(node, 1.0); err != nil {
			log.Fatal(err)
		}
	}
	if perturbed {
		// The paper's Q2 perturbation: sleep before processing each tuple.
		if err := grid.Perturb("ws1", repro.SleepInjection(10)); err != nil {
			log.Fatal(err)
		}
	}
	var opts []repro.CoordinatorOption
	if adaptive {
		opts = append(opts, repro.Adaptive(), repro.Retrospective())
	}
	coord, err := grid.NewCoordinator("coord", opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coord.Query(q2)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	reference := run(false, false)
	fmt.Printf("reference:          %6.0f paper-ms, %d rows\n",
		reference.ResponseMs, len(reference.Rows))

	static := run(true, false)
	fmt.Printf("perturbed static:   %6.0f paper-ms, %d rows (%.2fx slower)\n",
		static.ResponseMs, len(static.Rows), static.ResponseMs/reference.ResponseMs)

	adaptive := run(true, true)
	fmt.Printf("perturbed adaptive: %6.0f paper-ms, %d rows (%.2fx slower), "+
		"%d adaptation(s), %d state replay(s), %d tuples moved\n",
		adaptive.ResponseMs, len(adaptive.Rows), adaptive.ResponseMs/reference.ResponseMs,
		adaptive.Stats.Adaptations, adaptive.Stats.StateReplays, adaptive.Stats.TuplesMoved)

	// Correctness: state repartitioning must not lose or duplicate rows.
	if !sameMultiset(reference.Rows, adaptive.Rows) {
		log.Fatal("FAIL: adaptive join result differs from reference")
	}
	fmt.Println("result check: adaptive join matches the reference result exactly")
}

func sameMultiset(a, b []repro.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, t := range a {
		counts[t.Key()]++
	}
	for _, t := range b {
		counts[t.Key()]--
		if counts[t.Key()] < 0 {
			return false
		}
	}
	return true
}
