// Adaptivity: watch the AQP architecture rebalance a running query.
//
// One of the two Web Service machines is made 20× slower (the paper's §3.2
// perturbation). The example subscribes to the notification bus and prints
// the adaptation pipeline as it happens — MED cost notifications, Diagnoser
// proposals, and the Responder's policy updates — then compares the
// adaptive run against the static baseline, reproducing the headline result
// of the paper in miniature.
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/bus"
	"repro/internal/core"
)

const q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"

func buildGrid() *repro.Grid {
	grid := repro.NewGrid(repro.WithScale(5 * time.Microsecond))
	if err := grid.AddDemoDatabaseSized("data1", 1000, 100); err != nil {
		log.Fatal(err)
	}
	for _, node := range []string{"ws0", "ws1"} {
		if err := grid.AddComputeNode(node, 1.0); err != nil {
			log.Fatal(err)
		}
	}
	if err := grid.Perturb("ws1", repro.Slowdown(20)); err != nil {
		log.Fatal(err)
	}
	return grid
}

func main() {
	// Static baseline: no monitoring, no rebalancing — the whole query
	// crawls at the slow machine's pace.
	static := buildGrid()
	staticCoord, err := static.NewCoordinator("coord")
	if err != nil {
		log.Fatal(err)
	}
	staticRes, err := staticCoord.Query(q1)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive run with a bus tap printing the decision pipeline.
	adaptive := buildGrid()
	adaptive.Cluster().Bus().Subscribe("tap", "coord", core.TopicMED,
		func(n bus.Notification) {
			if c, ok := n.Payload.(core.CostNotification); ok && !c.IsComm {
				fmt.Printf("  [MED]       %s#%d costs %.1f ms/tuple\n",
					c.Fragment, c.Instance, c.AvgCostMs)
			}
		})
	adaptive.Cluster().Bus().Subscribe("tap", "coord", core.TopicDiagnosis,
		func(n bus.Notification) {
			if p, ok := n.Payload.(core.Proposal); ok {
				fmt.Printf("  [Diagnoser] imbalance on %s: costs %v -> propose W' = %v\n",
					p.Fragment, round(p.Costs), round(p.Weights))
			}
		})
	adaptive.Cluster().Bus().Subscribe("tap", "coord", core.TopicPolicy,
		func(n bus.Notification) {
			if u, ok := n.Payload.(core.PolicyUpdate); ok {
				mode := "prospectively (R2)"
				if u.Retrospective {
					mode = "retrospectively (R1)"
				}
				fmt.Printf("  [Responder] deployed W = %v %s\n", round(u.Weights), mode)
			}
		})

	adaptiveCoord, err := adaptive.NewCoordinator("coord",
		repro.Adaptive(), repro.Retrospective())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running Q1 with ws1 perturbed 20x, adaptivity enabled:")
	adaptiveRes, err := adaptiveCoord.Query(q1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("static run:   %8.0f paper-ms (%d rows)\n", staticRes.ResponseMs, len(staticRes.Rows))
	fmt.Printf("adaptive run: %8.0f paper-ms (%d rows), %d adaptation(s), %d tuples recalled\n",
		adaptiveRes.ResponseMs, len(adaptiveRes.Rows),
		adaptiveRes.Stats.Adaptations, adaptiveRes.Stats.TuplesMoved)
	fmt.Printf("speedup:      %.1fx\n", staticRes.ResponseMs/adaptiveRes.ResponseMs)
}

func round(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
