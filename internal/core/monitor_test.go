package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/vtime"
)

func testBus() *bus.Bus {
	return bus.New(vtime.NewClock(time.Microsecond), nil)
}

// costCollector gathers MED notifications.
type costCollector struct {
	mu   sync.Mutex
	seen []CostNotification
}

func (c *costCollector) handler(n bus.Notification) {
	if cn, ok := n.Payload.(CostNotification); ok {
		c.mu.Lock()
		c.seen = append(c.seen, cn)
		c.mu.Unlock()
	}
}

func (c *costCollector) wait(t *testing.T, n int) []CostNotification {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.seen) >= n {
			out := append([]CostNotification(nil), c.seen...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			c.mu.Lock()
			defer c.mu.Unlock()
			t.Fatalf("got %d notifications, want ≥%d", len(c.seen), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *costCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

func emitM1(a *MonitorAdapter, frag string, inst int, cost float64) {
	a.EmitM1(engine.M1Event{Fragment: frag, Instance: inst, Node: a.Node, CostPerTupleMs: cost, Selectivity: 1})
}

func TestMEDFirstNotificationAfterMinEvents(t *testing.T) {
	b := testBus()
	defer b.Close()
	med := NewMED(nil, b, "ws0", DefaultMEDConfig())
	defer med.Stop()
	col := &costCollector{}
	b.Subscribe("test", "coord", TopicMED, col.handler)
	a := &MonitorAdapter{Bus: b, Node: "ws0"}

	emitM1(a, "F2", 0, 10)
	emitM1(a, "F2", 0, 10)
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("notified before MinEvents")
	}
	emitM1(a, "F2", 0, 10)
	got := col.wait(t, 1)
	if got[0].Fragment != "F2" || got[0].Instance != 0 || math.Abs(got[0].AvgCostMs-10) > 1e-9 {
		t.Fatalf("notification = %+v", got[0])
	}
}

func TestMEDThresholdFiltersSmallChanges(t *testing.T) {
	b := testBus()
	defer b.Close()
	med := NewMED(nil, b, "ws0", MEDConfig{Window: 25, ThresM: 0.2, MinEvents: 3})
	defer med.Stop()
	col := &costCollector{}
	b.Subscribe("test", "coord", TopicMED, col.handler)
	a := &MonitorAdapter{Bus: b, Node: "ws0"}

	for i := 0; i < 20; i++ {
		emitM1(a, "F2", 0, 10+0.01*float64(i)) // ~stable cost
	}
	col.wait(t, 1)
	time.Sleep(20 * time.Millisecond)
	first := col.count()
	if first != 1 {
		t.Fatalf("stable costs produced %d notifications, want exactly 1", first)
	}
	// A 10x jump must re-notify once the window average moves ≥20%.
	for i := 0; i < 25; i++ {
		emitM1(a, "F2", 0, 100)
	}
	if got := col.wait(t, 2); len(got) < 2 {
		t.Fatal("big change not notified")
	}
	raw, notif := med.Stats()
	if raw != 45 {
		t.Fatalf("raw = %d, want 45", raw)
	}
	if notif < 2 || notif > 10 {
		t.Fatalf("notifications = %d; filtering broken", notif)
	}
}

func TestMEDGroupsByOperator(t *testing.T) {
	b := testBus()
	defer b.Close()
	med := NewMED(nil, b, "ws0", MEDConfig{Window: 5, ThresM: 0.2, MinEvents: 1})
	defer med.Stop()
	col := &costCollector{}
	b.Subscribe("test", "coord", TopicMED, col.handler)
	a := &MonitorAdapter{Bus: b, Node: "ws0"}

	emitM1(a, "F2", 0, 10)
	emitM1(a, "F2", 1, 50)
	got := col.wait(t, 2)
	keys := map[string]bool{}
	for _, n := range got {
		keys[n.Key] = true
	}
	if !keys["m1:F2#0"] || !keys["m1:F2#1"] {
		t.Fatalf("grouping keys = %v", keys)
	}
}

func TestMEDM2PerTupleAndSameNode(t *testing.T) {
	b := testBus()
	defer b.Close()
	med := NewMED(nil, b, "data1", MEDConfig{Window: 5, ThresM: 0.2, MinEvents: 1})
	defer med.Stop()
	col := &costCollector{}
	b.Subscribe("test", "coord", TopicMED, col.handler)
	a := &MonitorAdapter{Bus: b, Node: "data1"}

	a.EmitM2(engine.M2Event{
		Exchange: "E1", Fragment: "F1", Instance: 0, Node: "data1",
		ConsumerFragment: "F2", ConsumerInstance: 1, ConsumerNode: "ws1",
		SendCostMs: 50, TupleCount: 50,
	})
	got := col.wait(t, 1)
	if !got[0].IsComm || math.Abs(got[0].AvgCostMs-1) > 1e-9 {
		t.Fatalf("m2 notification = %+v", got[0])
	}
	if got[0].SameNode {
		t.Fatal("cross-node send flagged SameNode")
	}
	a.EmitM2(engine.M2Event{
		Exchange: "E1", Fragment: "F1", Instance: 0, Node: "data1",
		ConsumerFragment: "F2", ConsumerInstance: 0, ConsumerNode: "data1",
		SendCostMs: 0, TupleCount: 10,
	})
	got = col.wait(t, 2)
	if !got[1].SameNode {
		t.Fatal("co-located send not flagged SameNode")
	}
	// Zero-tuple M2 events are ignored.
	a.EmitM2(engine.M2Event{Exchange: "E1", TupleCount: 0})
	time.Sleep(10 * time.Millisecond)
	if col.count() != 2 {
		t.Fatal("zero-tuple event produced a notification")
	}
}

func TestMEDWindowSlides(t *testing.T) {
	b := testBus()
	defer b.Close()
	med := NewMED(nil, b, "ws0", MEDConfig{Window: 4, ThresM: 0.2, MinEvents: 3})
	defer med.Stop()
	col := &costCollector{}
	b.Subscribe("test", "coord", TopicMED, col.handler)
	a := &MonitorAdapter{Bus: b, Node: "ws0"}

	// Old cheap values must age out of the window so the average converges
	// to the new cost.
	for i := 0; i < 3; i++ {
		emitM1(a, "F2", 0, 10)
	}
	for i := 0; i < 12; i++ {
		emitM1(a, "F2", 0, 100)
	}
	got := col.wait(t, 2)
	last := got[len(got)-1]
	if math.Abs(last.AvgCostMs-100) > 1e-6 {
		t.Fatalf("window did not slide: final avg %v, want 100", last.AvgCostMs)
	}
}

func TestTrimmedMean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{2, 4}, 3},
		{[]float64{1, 10, 100}, 10},          // min and max discarded
		{[]float64{0, 10, 10, 10, 1000}, 10}, // outliers discarded
		// Duplicate extremes: only ONE occurrence of min and of max is
		// discarded; the remaining copies stay in the average.
		{[]float64{1, 1, 10, 100, 100}, 37},  // (1+10+100)/3
		{[]float64{5, 5, 5, 9}, 5},           // (5+5)/2 after dropping one 5 and the 9
		{[]float64{0, 0, 0, 12}, 0},          // (0+0)/2
		{[]float64{7, 7, 7}, 7},              // all equal: the value itself
		{[]float64{0, 0, 0, 0}, 0},           // all equal at zero
		{[]float64{-4, -4, -1, -10}, -4},     // negatives: (-4-4)/2
		// Huge duplicate extremes must not cancel to garbage: one 9e15 stays.
		{[]float64{9e15, 3, 3, 3, 9e15}, 3e15 + 2},
	}
	for _, tc := range tests {
		got := trimmedMean(tc.in)
		if math.Abs(got-tc.want) > math.Abs(tc.want)*1e-12+1e-9 {
			t.Errorf("trimmedMean(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Regression: the former sum-minus-extremes formula could return a
	// (meaningless) tiny negative for non-negative inputs through float
	// cancellation. Index-based discarding keeps the result in range.
	vals := []float64{1e16, 1e-3, 1e-3, 1e16}
	if got := trimmedMean(vals); got < 1e-3 || got > 1e16 {
		t.Errorf("trimmedMean(%v) = %v, out of input range", vals, got)
	}
}

func TestMEDMinEventsClampedToWindow(t *testing.T) {
	b := testBus()
	defer b.Close()
	// MinEvents above the window used to make the group unreachable: the
	// window holds at most Window values, so len(values) < MinEvents held
	// forever. The constructor now clamps it.
	med := NewMED(nil, b, "ws0", MEDConfig{Window: 2, ThresM: 0.2, MinEvents: 10})
	defer med.Stop()
	col := &costCollector{}
	b.Subscribe("test", "coord", TopicMED, col.handler)
	a := &MonitorAdapter{Bus: b, Node: "ws0"}

	emitM1(a, "F2", 0, 10)
	emitM1(a, "F2", 0, 10)
	got := col.wait(t, 1)
	if math.Abs(got[0].AvgCostMs-10) > 1e-9 {
		t.Fatalf("avg = %v, want 10", got[0].AvgCostMs)
	}
}

func TestMEDSmallMinEvents(t *testing.T) {
	// MinEvents below the 3 needed for the min/max discard must still work:
	// the average over 1 or 2 values is the plain mean.
	for _, minEvents := range []int{1, 2} {
		b := testBus()
		med := NewMED(nil, b, "ws0", MEDConfig{Window: 25, ThresM: 0.2, MinEvents: minEvents})
		col := &costCollector{}
		b.Subscribe("test", "coord", TopicMED, col.handler)
		a := &MonitorAdapter{Bus: b, Node: "ws0"}

		for i := 0; i < minEvents; i++ {
			emitM1(a, "F2", 0, 8)
		}
		got := col.wait(t, 1)
		if math.Abs(got[0].AvgCostMs-8) > 1e-9 {
			t.Errorf("MinEvents=%d: avg = %v, want 8", minEvents, got[0].AvgCostMs)
		}
		med.Stop()
		b.Close()
	}
}
