// Package core implements the paper's adaptive query processing
// architecture (§2): loosely-coupled adaptivity components that communicate
// asynchronously over a publish/subscribe notification bus, separated into
// the monitoring (feedback collection), assessment, and response stages of
// adaptation:
//
//   - a MonitorAdapter turns the engine's raw self-monitoring events into
//     bus notifications;
//   - a MonitoringEventDetector per evaluating site groups and filters
//     them, notifying subscribers only on significant change;
//   - the Diagnoser assesses workload imbalance and proposes a rebalanced
//     distribution vector W';
//   - the Responder estimates progress and deploys the redistribution,
//     prospectively (R2) or retrospectively (R1) through the engine's
//     recovery-log machinery.
//
// The GDQS optimiser plays no role during adaptation: these components
// encapsulate every mechanism needed to adjust execution in a decentralised
// way.
package core

import (
	"repro/internal/physical"
	"repro/internal/simnet"
)

// Bus topics used by the adaptivity components.
const (
	// TopicRawPrefix + node carries raw engine events to the local
	// MonitoringEventDetector.
	TopicRawPrefix = "raw."
	// TopicMED carries filtered cost notifications to Diagnosers.
	TopicMED = "med"
	// TopicDiagnosis carries rebalancing proposals to Responders.
	TopicDiagnosis = "diagnosis"
	// TopicPolicy announces applied redistributions, so Diagnosers update
	// their view of the current distribution W.
	TopicPolicy = "policy"
	// TopicMembership announces evaluator joins and leaves; sessions use it
	// to admit new instances and to confirm failure diagnoses.
	TopicMembership = "membership"
)

// NodeEvent is a cluster membership change published on TopicMembership.
type NodeEvent struct {
	// Kind is "join" or "leave".
	Kind string
	Node simnet.NodeID
	// Speed is the evaluator's relative processing speed (joins only).
	Speed float64
}

// InstanceRef addresses one fragment instance.
type InstanceRef struct {
	Index   int
	Node    simnet.NodeID
	Service string
}

// ExchangeTopology describes one exchange feeding an adaptable fragment.
type ExchangeTopology struct {
	Exchange string
	Policy   physical.PolicyKind
	// Stateful marks the hash-join build side: its recovery log recreates
	// operator state, and its recalled tuples are covered by replay rather
	// than resend.
	Stateful  bool
	Producers []InstanceRef
}

// FragmentTopology describes one partitioned fragment (the paper's subplan
// p, cloned as p_1..p_n) to the Diagnoser and Responder.
type FragmentTopology struct {
	Fragment string
	// Stateful fragments hold operator state and must be rebalanced
	// retrospectively (R1); the paper calls this "imperative for
	// redistributing tuples processed by stateful operators".
	Stateful  bool
	Instances []InstanceRef
	// Weights is the distribution vector W at deployment.
	Weights []float64
	Inputs  []ExchangeTopology
	// Buckets is the hash-policy bucket count (stateful fragments).
	Buckets int
	// Output names the exchange this fragment produces into ("" for the
	// root fragment), and Downstream addresses that exchange's consumer
	// instances. Failure recovery uses them to detach a dead instance's
	// output stream so consumers do not wait on its end-of-stream.
	Output     string
	Downstream []InstanceRef
}

// CostNotification is what a MonitoringEventDetector sends to subscribed
// Diagnosers: a windowed average that moved by at least thresM.
type CostNotification struct {
	// Key groups the underlying raw events: M1 events by the reporting
	// operator, M2 events by producer·recipient pair (paper §3.1).
	Key string
	// IsComm distinguishes M2-derived (communication) notifications.
	IsComm bool

	// M1 fields.
	Fragment string
	Instance int
	// AvgCostMs is the windowed per-tuple processing cost (M1) or the
	// per-tuple communication cost (M2).
	AvgCostMs   float64
	WaitMs      float64
	Selectivity float64

	// M2 fields.
	ProducerFragment string
	ProducerInstance int
	ConsumerFragment string
	ConsumerInstance int
	// SameNode marks co-located producer/consumer pairs, whose
	// communication cost the default configuration treats as zero.
	SameNode bool
}

// Proposal is the Diagnoser's output: a rebalanced distribution vector for
// one partitioned fragment.
type Proposal struct {
	Fragment string
	// Weights is the proposed W' with w'_i ∝ 1/c(p_i).
	Weights []float64
	// Costs are the per-instance costs c(p_i) the proposal derives from.
	Costs []float64
}

// PolicyUpdate announces that the Responder deployed a new distribution.
type PolicyUpdate struct {
	Fragment string
	Weights  []float64
	// Retrospective reports whether the change was R1.
	Retrospective bool
}
