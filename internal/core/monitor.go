package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// MonitorAdapter implements engine.MonitorSink by publishing raw events to
// the node's raw topic, from which the local MonitoringEventDetector reads.
type MonitorAdapter struct {
	Bus  *bus.Bus
	Node simnet.NodeID
}

// RawEvent wraps one engine monitoring event on the bus.
type RawEvent struct {
	M1 *engine.M1Event
	M2 *engine.M2Event
}

// EmitM1 implements engine.MonitorSink.
func (a *MonitorAdapter) EmitM1(e engine.M1Event) {
	a.Bus.Publish("engine", a.Node, bus.Topic(TopicRawPrefix+string(a.Node)), RawEvent{M1: &e})
}

// EmitM2 implements engine.MonitorSink.
func (a *MonitorAdapter) EmitM2(e engine.M2Event) {
	a.Bus.Publish("engine", a.Node, bus.Topic(TopicRawPrefix+string(a.Node)), RawEvent{M2: &e})
}

// MEDConfig tunes the MonitoringEventDetector. Defaults follow the paper's
// default configuration (§3.1).
type MEDConfig struct {
	// Window is the number of events the running average covers (paper
	// default: the last 25 events).
	Window int
	// ThresM is the relative change of the windowed average required
	// before subscribed Diagnosers are notified (paper default: 20%).
	ThresM float64
	// MinEvents is the minimum number of events per group before the
	// first notification; with at least 3, the min/max discard is
	// meaningful.
	MinEvents int
}

// DefaultMEDConfig returns the paper's default configuration.
func DefaultMEDConfig() MEDConfig {
	return MEDConfig{Window: 25, ThresM: 0.20, MinEvents: 3}
}

// MonitoringEventDetector collects raw monitoring events from the local
// query engine, groups them (M1 by reporting operator, M2 by concatenated
// producer and recipient identifiers), computes a running average over a
// window discarding the minimum and maximum values, and notifies subscribed
// Diagnosers when the average changes by at least thresM (paper §3.1).
type MonitoringEventDetector struct {
	node simnet.NodeID
	bus  *bus.Bus
	cfg  MEDConfig

	mu     sync.Mutex
	groups map[string]*window
	sub    *bus.Subscription

	stopOnce sync.Once

	// Instance-local counters (the Stats compatibility view) and the
	// process-wide registry aggregates they mirror into.
	rawSeen  obs.Counter
	notified obs.Counter
	obsRaw   *obs.Counter
	obsNotif *obs.Counter
	timeline *obs.Timeline
}

// window is the per-group running state.
type window struct {
	values       []float64
	lastNotified float64
	everNotified bool
}

// NewMED builds and subscribes the detector for one node. The subscription
// is scoped to ctx: when the owning query's context ends, the detector's
// delivery goroutine ends with it. A nil ctx leaves the lifetime to Stop.
func NewMED(ctx context.Context, b *bus.Bus, node simnet.NodeID, cfg MEDConfig) *MonitoringEventDetector {
	if cfg.Window <= 0 {
		cfg.Window = 25
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 3
	}
	// A MinEvents above the window can never be reached (the window is
	// trimmed to cfg.Window values), which would silence the group forever.
	if cfg.MinEvents > cfg.Window {
		cfg.MinEvents = cfg.Window
	}
	o := obs.Default()
	m := &MonitoringEventDetector{
		node:     node,
		bus:      b,
		cfg:      cfg,
		groups:   make(map[string]*window),
		obsRaw:   o.Counter(obs.MMEDRawEvents),
		obsNotif: o.Counter(obs.MMEDNotifications),
		timeline: o.Timeline(),
	}
	m.sub = b.SubscribeContext(ctx, "med@"+string(node), node, bus.Topic(TopicRawPrefix+string(node)), m.onRaw)
	return m
}

// Stop cancels the subscription. Idempotent and safe from multiple
// goroutines.
func (m *MonitoringEventDetector) Stop() {
	m.stopOnce.Do(func() { m.sub.Cancel() })
}

// Stats reports how many raw events arrived and how many notifications were
// forwarded; the paper's overhead analysis shows the detector filtering
// 100–300 raw events down to about 10 notifications.
func (m *MonitoringEventDetector) Stats() (raw, notifications int64) {
	return m.rawSeen.Value(), m.notified.Value()
}

func (m *MonitoringEventDetector) onRaw(n bus.Notification) {
	ev, ok := n.Payload.(RawEvent)
	if !ok {
		return
	}
	switch {
	case ev.M1 != nil:
		key := fmt.Sprintf("m1:%s#%d", ev.M1.Fragment, ev.M1.Instance)
		if avg, fire := m.observe(key, ev.M1.CostPerTupleMs); fire {
			m.publish(CostNotification{
				Key:         key,
				Fragment:    ev.M1.Fragment,
				Instance:    ev.M1.Instance,
				AvgCostMs:   avg,
				WaitMs:      ev.M1.WaitPerTupleMs,
				Selectivity: ev.M1.Selectivity,
			})
		}
	case ev.M2 != nil:
		if ev.M2.TupleCount == 0 {
			return
		}
		key := fmt.Sprintf("m2:%s#%d->%s#%d", ev.M2.Fragment, ev.M2.Instance,
			ev.M2.ConsumerFragment, ev.M2.ConsumerInstance)
		perTuple := ev.M2.SendCostMs / float64(ev.M2.TupleCount)
		if avg, fire := m.observe(key, perTuple); fire {
			m.publish(CostNotification{
				Key:              key,
				IsComm:           true,
				AvgCostMs:        avg,
				ProducerFragment: ev.M2.Fragment,
				ProducerInstance: ev.M2.Instance,
				ConsumerFragment: ev.M2.ConsumerFragment,
				ConsumerInstance: ev.M2.ConsumerInstance,
				SameNode:         ev.M2.Node == ev.M2.ConsumerNode,
			})
		}
	}
}

// observe folds one value into its group window and decides whether to
// notify.
func (m *MonitoringEventDetector) observe(key string, value float64) (avg float64, fire bool) {
	m.rawSeen.Inc()
	m.obsRaw.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.groups[key]
	if w == nil {
		w = &window{}
		m.groups[key] = w
	}
	w.values = append(w.values, value)
	if len(w.values) > m.cfg.Window {
		w.values = w.values[len(w.values)-m.cfg.Window:]
	}
	if len(w.values) < m.cfg.MinEvents {
		return 0, false
	}
	avg = trimmedMean(w.values)
	switch {
	case !w.everNotified:
		fire = true
	case w.lastNotified == 0:
		fire = avg != 0
	default:
		rel := (avg - w.lastNotified) / w.lastNotified
		if rel < 0 {
			rel = -rel
		}
		fire = rel >= m.cfg.ThresM
	}
	if fire {
		w.everNotified = true
		w.lastNotified = avg
		m.notified.Inc()
		m.obsNotif.Inc()
	}
	return avg, fire
}

func (m *MonitoringEventDetector) publish(n CostNotification) {
	fragment := n.Fragment
	if n.IsComm {
		fragment = n.ProducerFragment
	}
	m.timeline.Append(obs.Event{
		Kind:      obs.KindMEDNotify,
		Node:      string(m.node),
		Fragment:  fragment,
		Key:       n.Key,
		AvgCostMs: n.AvgCostMs,
	})
	m.bus.Publish("med@"+string(m.node), m.node, TopicMED, n)
}

// trimmedMean averages the values, discarding exactly one occurrence of the
// minimum and one of the maximum when at least three values are present
// (paper §3.1). The discarded entries are excluded by index rather than by
// subtracting min and max from the total, so duplicate extremes are kept
// (only one copy of each is dropped) and the result cannot drift negative
// through floating-point cancellation when the extremes dominate the sum.
func trimmedMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if len(values) < 3 {
		sum := 0.0
		for _, v := range values {
			sum += v
		}
		return sum / float64(len(values))
	}
	minIdx, maxIdx := 0, 0
	for i, v := range values {
		if v < values[minIdx] {
			minIdx = i
		}
		if v > values[maxIdx] {
			maxIdx = i
		}
	}
	if minIdx == maxIdx {
		// All values equal: the trimmed mean is that value.
		return values[minIdx]
	}
	sum := 0.0
	for i, v := range values {
		if i == minIdx || i == maxIdx {
			continue
		}
		sum += v
	}
	return sum / float64(len(values)-2)
}
