package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// fakeInstance registers a fragment-instance endpoint that answers control
// requests with canned data and records what it was asked to do.
type fakeInstance struct {
	tr      *transport.InProc
	node    simnet.NodeID
	service string

	mu       sync.Mutex
	ops      []transport.CtrlOp
	routed   int64
	est      int64
	consumed int64
	discard  map[string][]int64
}

func newFakeInstance(tr *transport.InProc, node simnet.NodeID, service string) *fakeInstance {
	f := &fakeInstance{tr: tr, node: node, service: service, discard: map[string][]int64{}}
	tr.Register(node, service, f.handle)
	return f
}

func (f *fakeInstance) handle(from simnet.NodeID, msg *transport.Message) {
	if msg.Kind != transport.KindControl {
		return
	}
	f.mu.Lock()
	f.ops = append(f.ops, msg.Ctrl.Op)
	reply := &transport.Ctrl{Op: msg.Ctrl.Op, RequestID: msg.Ctrl.RequestID, OK: true}
	switch msg.Ctrl.Op {
	case transport.CtrlProgress:
		// Producers report routed/est; consumers (addressed with their
		// input exchange) report consumed via Routed. A producer may have
		// routed tuples without an estimate (the fallback-path scenario).
		if f.est > 0 || f.routed > 0 {
			reply.Routed, reply.Est = f.routed, f.est
		} else {
			reply.Routed = f.consumed
		}
	case transport.CtrlDiscard:
		reply.DiscardedSeqs = f.discard
	}
	f.mu.Unlock()
	out := &transport.Message{Kind: transport.KindReply, Ctrl: reply}
	_, _ = f.tr.Send(f.node, msg.Ctrl.ReplyTo, msg.Ctrl.ReplyService, out)
}

func (f *fakeInstance) sawOp(op transport.CtrlOp) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, o := range f.ops {
		if o == op {
			return true
		}
	}
	return false
}

// responderHarness assembles a responder over a fake producer and two fake
// consumers.
func responderHarness(t *testing.T, cfg ResponderConfig) (*Responder, *bus.Bus, *fakeInstance, [2]*fakeInstance) {
	t.Helper()
	clock := vtime.NewClock(time.Microsecond)
	net := simnet.NewNetwork(clock)
	for _, n := range []simnet.NodeID{"coord", "data1", "ws0", "ws1"} {
		net.AddNode(n)
	}
	tr := transport.NewInProc(net)
	b := bus.New(clock, nil)
	t.Cleanup(b.Close)
	r := NewResponder(nil, b, tr, "coord", cfg)
	t.Cleanup(r.Stop)

	prod := newFakeInstance(tr, "data1", "frag/F1#0")
	prod.est = 1000
	cons := [2]*fakeInstance{
		newFakeInstance(tr, "ws0", "frag/F2#0"),
		newFakeInstance(tr, "ws1", "frag/F2#1"),
	}
	topo := FragmentTopology{
		Fragment: "F2",
		Weights:  []float64{0.5, 0.5},
		Instances: []InstanceRef{
			{Index: 0, Node: "ws0", Service: "frag/F2#0"},
			{Index: 1, Node: "ws1", Service: "frag/F2#1"},
		},
		Inputs: []ExchangeTopology{{
			Exchange:  "E1",
			Producers: []InstanceRef{{Index: 0, Node: "data1", Service: "frag/F1#0"}},
		}},
	}
	if err := r.Register(topo); err != nil {
		t.Fatal(err)
	}
	return r, b, prod, cons
}

func waitStats(t *testing.T, r *Responder, pred func(ResponderStats) bool) ResponderStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.Stats()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never satisfied predicate: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResponderProspectiveSetsWeights(t *testing.T) {
	r, b, prod, _ := responderHarness(t, ResponderConfig{Response: R2, MaxProgress: 0.9})
	prod.mu.Lock()
	prod.routed = 100
	prod.mu.Unlock()
	b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
		Fragment: "F2", Weights: []float64{0.9, 0.1}, Costs: []float64{10, 90},
	})
	waitStats(t, r, func(s ResponderStats) bool { return s.Adaptations == 1 })
	if !prod.sawOp(transport.CtrlSetWeights) {
		t.Fatal("producer never received the new weights")
	}
	if prod.sawOp(transport.CtrlPause) {
		t.Fatal("prospective response must not pause")
	}
}

func TestResponderProgressVeto(t *testing.T) {
	r, b, prod, cons := responderHarness(t, ResponderConfig{Response: R2, MaxProgress: 0.9})
	prod.mu.Lock()
	prod.routed = 1000
	prod.mu.Unlock()
	for _, c := range cons {
		c.mu.Lock()
		c.consumed = 480 // 960/1000 processed
		c.mu.Unlock()
	}
	b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
		Fragment: "F2", Weights: []float64{0.9, 0.1},
	})
	st := waitStats(t, r, func(s ResponderStats) bool { return s.SkippedLate == 1 })
	if st.Adaptations != 0 {
		t.Fatalf("adaptation ran despite veto: %+v", st)
	}
	if prod.sawOp(transport.CtrlSetWeights) {
		t.Fatal("weights changed despite veto")
	}
}

func TestResponderRetrospectiveProtocolOrder(t *testing.T) {
	r, b, prod, cons := responderHarness(t, ResponderConfig{Response: R1, MaxProgress: 0.9})
	cons[1].mu.Lock()
	cons[1].discard = map[string][]int64{"E1/0": {7, 8, 9}}
	cons[1].mu.Unlock()
	b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
		Fragment: "F2", Weights: []float64{0.9, 0.1},
	})
	st := waitStats(t, r, func(s ResponderStats) bool { return s.Adaptations == 1 })
	if st.TuplesMoved != 3 {
		t.Fatalf("tuples moved = %d, want 3", st.TuplesMoved)
	}
	for _, op := range []transport.CtrlOp{transport.CtrlPause, transport.CtrlSetWeights,
		transport.CtrlResend, transport.CtrlResume} {
		if !prod.sawOp(op) {
			t.Fatalf("producer never saw %v", op)
		}
	}
	prod.mu.Lock()
	ops := append([]transport.CtrlOp(nil), prod.ops...)
	prod.mu.Unlock()
	// Pause must precede SetWeights, which must precede Resend and Resume.
	idx := map[transport.CtrlOp]int{}
	for i, op := range ops {
		if _, seen := idx[op]; !seen {
			idx[op] = i
		}
	}
	if !(idx[transport.CtrlPause] < idx[transport.CtrlSetWeights] &&
		idx[transport.CtrlSetWeights] < idx[transport.CtrlResend] &&
		idx[transport.CtrlResend] < idx[transport.CtrlResume]) {
		t.Fatalf("protocol order violated: %v", ops)
	}
	if !cons[0].sawOp(transport.CtrlDiscard) || !cons[1].sawOp(transport.CtrlDiscard) {
		t.Fatal("consumers were not recalled")
	}
	// The Diagnoser hears about the deployed policy.
	// (PolicyUpdate is observed indirectly through the adaptation count;
	// the publish path is covered by the diagnoser tests.)
}

func TestResponderIgnoresUnknownFragment(t *testing.T) {
	r, b, _, _ := responderHarness(t, ResponderConfig{Response: R2, MaxProgress: 0.9})
	b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
		Fragment: "NOPE", Weights: []float64{0.9, 0.1},
	})
	time.Sleep(20 * time.Millisecond)
	if st := r.Stats(); st.Adaptations != 0 || st.ProposalsIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTopologyOfEmptyPlan(t *testing.T) {
	if got := TopologyOf(&physical.Plan{}, 64); len(got) != 0 {
		t.Fatalf("empty plan topology = %v", got)
	}
}

func TestResponderProgressFallbackWithoutEstimate(t *testing.T) {
	// No cardinality estimate used to disable the MaxProgress veto
	// entirely (`est > 0 && ...` short-circuited false). The responder now
	// falls back to routing progress: processed over tuples routed so far.
	r, b, prod, cons := responderHarness(t, ResponderConfig{Response: R2, MaxProgress: 0.9})
	prod.mu.Lock()
	prod.est = 0
	prod.routed = 1000
	prod.mu.Unlock()
	for _, c := range cons {
		c.mu.Lock()
		c.consumed = 480 // 960/1000 routed: nearly drained
		c.mu.Unlock()
	}
	b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
		Fragment: "F2", Weights: []float64{0.9, 0.1},
	})
	st := waitStats(t, r, func(s ResponderStats) bool { return s.SkippedLate == 1 })
	if st.Adaptations != 0 {
		t.Fatalf("adaptation ran without estimate at 96%% progress: %+v", st)
	}
	if st.ProgressFallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", st)
	}
	if prod.sawOp(transport.CtrlSetWeights) {
		t.Fatal("weights changed despite fallback veto")
	}
}

func TestResponderProgressFallbackAllowsEarlyAdaptation(t *testing.T) {
	// The fallback must veto only near-complete executions; early ones
	// still adapt (and the fallback is still counted for observability).
	r, b, prod, cons := responderHarness(t, ResponderConfig{Response: R2, MaxProgress: 0.9})
	prod.mu.Lock()
	prod.est = 0
	prod.routed = 1000
	prod.mu.Unlock()
	for _, c := range cons {
		c.mu.Lock()
		c.consumed = 100 // 200/1000: early
		c.mu.Unlock()
	}
	b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
		Fragment: "F2", Weights: []float64{0.9, 0.1},
	})
	st := waitStats(t, r, func(s ResponderStats) bool { return s.Adaptations == 1 })
	if st.ProgressFallbacks != 1 || st.SkippedLate != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !prod.sawOp(transport.CtrlSetWeights) {
		t.Fatal("producer never received the new weights")
	}
}

func TestResponderStatsAndClockConcurrent(t *testing.T) {
	// Stats(), Timeline() and SetClock() are documented as callable from
	// other goroutines while proposals are being processed; run them against
	// a stream of adaptations so `go test -race` can check the claim.
	r, b, prod, _ := responderHarness(t, ResponderConfig{Response: R2, MaxProgress: 0.9, MinChange: 0.01})
	prod.mu.Lock()
	prod.routed = 100
	prod.mu.Unlock()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Stats()
				_ = r.Timeline()
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.SetClock(vtime.NewClock(time.Microsecond))
			}
		}
	}()

	// Pace the publisher on the delivery counter: the bus's bounded
	// subscription ring would drop a burst faster than the adapt RPCs drain.
	for i := 0; i < 25; i++ {
		w := 0.3 + 0.4*float64(i%2) // alternate 0.3/0.7 so none is redundant
		b.Publish("diagnoser", "coord", TopicDiagnosis, Proposal{
			Fragment: "F2", Weights: []float64{w, 1 - w},
		})
		want := int64(i + 1)
		waitStats(t, r, func(s ResponderStats) bool { return s.ProposalsIn == want })
	}
	close(stop)
	readers.Wait()
	st := r.Stats()
	if st.Adaptations == 0 {
		t.Fatalf("no adaptations processed: %+v", st)
	}
}
