package core

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// FailOverNode removes a crashed evaluator from every partitioned fragment
// it served: survivors absorb its weight share, its unacknowledged input
// partitions are replayed from the producers' recovery logs onto the
// survivors, and downstream consumers are detached from its output streams
// so termination does not wait on an end-of-stream that will never come.
//
// Exactness rests on the engine's commit protocol: in fault-tolerant mode an
// input tuple is acknowledged if and only if its derived outputs are durably
// downstream, so the dead instance's per-shard recovery log is exactly the
// set of tuples whose effects are missing — replaying only those onto
// survivors is exactly-once.
//
// The call is idempotent and re-runnable. A retry after a partial failure —
// typically because a second evaluator died while the first failover was in
// flight — redoes the remaining steps: already-detached peers and
// already-drained logs are no-ops on the engine side, and the stateful
// discard/evict/replay cycle recomputes the identical moved-bucket set, so
// eviction clears any partially replayed state before it is rebuilt.
func (r *Responder) FailOverNode(node simnet.NodeID) error {
	r.protoMu.Lock()
	defer r.protoMu.Unlock()
	start := r.nowMs()

	r.mu.Lock()
	r.deadNodes[node] = true
	frags := make([]*respState, 0, len(r.fragments))
	for _, st := range r.fragments {
		frags = append(frags, st)
	}
	r.mu.Unlock()
	sort.Slice(frags, func(i, j int) bool { return frags[i].topo.Fragment < frags[j].topo.Fragment })

	var firstErr error
	for _, st := range frags {
		r.mu.Lock()
		touched := false
		for _, inst := range st.topo.Instances {
			if inst.Node == node {
				st.dead[inst.Index] = true
				touched = true
			}
		}
		w := zeroDead(st.weights, st.dead)
		fragment := st.topo.Fragment
		r.mu.Unlock()
		if !touched {
			continue
		}
		err := fmt.Errorf("core: fragment %s has no surviving instances", fragment)
		if w != nil {
			err = r.failOverFragment(st, w)
		}
		outcome := "recovered"
		if err != nil {
			outcome = "failed"
			if firstErr == nil {
				firstErr = fmt.Errorf("core: failover of %s after losing %s: %w", fragment, node, err)
			}
		}
		r.obsFailovers[outcome].Inc()
		r.otl.Append(obs.Event{
			Kind:       obs.KindFailure,
			AtMs:       r.nowMs(),
			Node:       string(node),
			Fragment:   fragment,
			Outcome:    outcome,
			NewWeights: append([]float64(nil), w...),
			DurationMs: r.nowMs() - start,
		})
	}
	if firstErr == nil {
		r.obsRecoveryMs.Observe(r.nowMs() - start)
	}
	return firstErr
}

// failOverFragment runs the recovery protocol for one fragment whose dead
// set just grew, deploying w (dead components zero) and draining the dead
// instances' shards.
func (r *Responder) failOverFragment(st *respState, w []float64) error {
	if err := r.pauseAll(st, true); err != nil {
		return err
	}
	defer func() { _ = r.pauseAll(st, false) }()

	r.mu.Lock()
	deadIdx := make([]int, 0, len(st.dead))
	for i := range st.dead {
		deadIdx = append(deadIdx, i)
	}
	sort.Ints(deadIdx)
	r.mu.Unlock()

	var err error
	if st.topo.Stateful {
		err = r.failOverStateful(st, w, deadIdx)
	} else {
		err = r.failOverStateless(st, w, deadIdx)
	}
	if err != nil {
		return err
	}

	// Detach the dead instances' output streams so the downstream
	// consumers stop waiting for their end-of-stream. Queued tuples from
	// those streams are kept: they derive from inputs the dead instances
	// had acknowledged, which survivors will never regenerate.
	if st.topo.Output != "" {
		for _, cons := range st.topo.Downstream {
			if r.nodeDead(cons.Node) {
				continue
			}
			for _, di := range deadIdx {
				msg := ctrlMsg(st.topo.Output, &transport.Ctrl{Op: transport.CtrlDetach, Peer: di})
				if _, err := r.rpc.call(r.ctx, cons, msg); err != nil {
					return err
				}
			}
		}
	}

	r.mu.Lock()
	copy(st.weights, w)
	r.mu.Unlock()
	r.bus.Publish("responder", r.node, TopicPolicy, PolicyUpdate{
		Fragment:      st.topo.Fragment,
		Weights:       append([]float64(nil), w...),
		Retrospective: true,
	})
	return nil
}

// failOverStateless recovers a weighted fragment: survivors get the
// renormalised weights, then every producer drains its dead shards' logs by
// re-routing the entries under the new policy.
func (r *Responder) failOverStateless(st *respState, w []float64, deadIdx []int) error {
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
				&transport.Ctrl{Op: transport.CtrlSetWeights, Weights: w})); err != nil {
				return err
			}
		}
	}
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			for _, di := range deadIdx {
				reply, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
					&transport.Ctrl{Op: transport.CtrlReplayLost, Peer: di}))
				if err != nil {
					return err
				}
				if reply.Routed > 0 {
					r.countMoved(st.topo.Fragment, reply.Routed)
				}
			}
		}
	}
	return nil
}

// failOverStateful recovers a hash-partitioned fragment. The dead instances'
// buckets move to survivors: live instances discard and evict any state of
// buckets that changed owner, the producers install the new bucket map, the
// stateful (build) logs replay the moved buckets onto their new owners, and
// the stateless (probe) logs drain the dead shards under the new map. On any
// error the mirror policy is rolled back so a retry recomputes the identical
// moved set and re-runs the cycle from the eviction step.
func (r *Responder) failOverStateful(st *respState, w []float64, deadIdx []int) error {
	r.mu.Lock()
	oldMap := st.mirror.OwnerMap()
	moved, err := st.mirror.SetWeights(w)
	newMap := st.mirror.OwnerMap()
	r.mu.Unlock()
	if err != nil {
		return err
	}
	rollback := func() {
		r.mu.Lock()
		_ = st.mirror.SetOwnerMap(oldMap)
		r.mu.Unlock()
	}

	stateful := make(map[string]bool, len(st.topo.Inputs))
	for _, ex := range st.topo.Inputs {
		stateful[ex.Exchange] = ex.Stateful
	}
	type resend struct {
		exchange string
		prodIdx  int
		consIdx  int
		seqs     []int64
	}
	var resends []resend
	for _, cons := range st.topo.Instances {
		if r.deadInstance(st, cons) {
			continue
		}
		reply, err := r.rpc.call(r.ctx, cons, ctrlMsg("",
			&transport.Ctrl{Op: transport.CtrlDiscard, Buckets: moved}))
		if err != nil {
			rollback()
			return err
		}
		for key, seqs := range reply.DiscardedSeqs {
			ex, prodIdx, err := transport.ParseStreamKey(key)
			if err != nil {
				rollback()
				return err
			}
			if stateful[ex] {
				continue // covered by the replay below
			}
			resends = append(resends, resend{exchange: ex, prodIdx: prodIdx, consIdx: cons.Index, seqs: seqs})
		}
		if _, err := r.rpc.call(r.ctx, cons, ctrlMsg("",
			&transport.Ctrl{Op: transport.CtrlEvict, Buckets: moved})); err != nil {
			rollback()
			return err
		}
	}

	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
				&transport.Ctrl{Op: transport.CtrlSetBucketMap, BucketMap: newMap})); err != nil {
				rollback()
				return err
			}
		}
	}

	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if ex.Stateful {
				if len(moved) > 0 {
					if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
						&transport.Ctrl{Op: transport.CtrlReplay, Buckets: moved})); err != nil {
						rollback()
						return err
					}
					r.stateReplays.Inc()
					r.obsReplays.Inc()
				}
				// The dead consumer shards hold no recoverable work once the
				// moved buckets replayed; release them so EOS can flow.
				for _, di := range deadIdx {
					if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
						&transport.Ctrl{Op: transport.CtrlDetachConsumer, Peer: di})); err != nil {
						rollback()
						return err
					}
				}
			} else {
				for _, di := range deadIdx {
					reply, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
						&transport.Ctrl{Op: transport.CtrlReplayLost, Peer: di}))
					if err != nil {
						rollback()
						return err
					}
					if reply.Routed > 0 {
						r.countMoved(st.topo.Fragment, reply.Routed)
					}
				}
			}
		}
	}

	for _, rs := range resends {
		if len(rs.seqs) == 0 {
			continue
		}
		prod, ok := r.producerRef(st, rs.exchange, rs.prodIdx)
		if !ok {
			rollback()
			return fmt.Errorf("core: discard report names unknown stream %s/%d", rs.exchange, rs.prodIdx)
		}
		if r.nodeDead(prod.Node) {
			rollback()
			return fmt.Errorf("core: recalled tuples of stream %s/%d are stranded on dead node %s",
				rs.exchange, rs.prodIdx, prod.Node)
		}
		msg := ctrlMsg(rs.exchange, &transport.Ctrl{Op: transport.CtrlResend, Seqs: rs.seqs})
		msg.ConsumerIdx = rs.consIdx
		if _, err := r.rpc.call(r.ctx, prod, msg); err != nil {
			rollback()
			return err
		}
		r.countMoved(st.topo.Fragment, int64(len(rs.seqs)))
	}
	return nil
}

// AdmitInstance deploys a newly joined evaluator into a running stateless
// fragment without restarting the query: downstream consumers learn to
// expect its output stream before the first buffer can arrive, then every
// input producer extends its routing policy to cover the new instance under
// the given weights. The caller creates the instance's runtime (registering
// its endpoint) before calling and starts its driver only after this
// returns; inst.Index must equal the current instance count.
//
// Stateful (hash-partitioned) fragments reject live admission: their bucket
// maps are pinned at plan time, so new evaluators pick up hash work at the
// next query instead.
func (r *Responder) AdmitInstance(fragment string, inst InstanceRef, weights []float64) error {
	r.protoMu.Lock()
	defer r.protoMu.Unlock()
	r.mu.Lock()
	st := r.fragments[fragment]
	r.mu.Unlock()
	if st == nil {
		return fmt.Errorf("core: admit instance: unknown fragment %s", fragment)
	}
	if st.topo.Stateful {
		return fmt.Errorf("core: admit instance: %s is hash-partitioned; new evaluators join at the next query", fragment)
	}
	r.mu.Lock()
	n := len(st.topo.Instances)
	r.mu.Unlock()
	if inst.Index != n {
		return fmt.Errorf("core: admit instance: index %d, want %d", inst.Index, n)
	}
	if len(weights) != n+1 {
		return fmt.Errorf("core: admit instance: %d weights for %d instances", len(weights), n+1)
	}

	if err := r.pauseAll(st, true); err != nil {
		return err
	}
	defer func() { _ = r.pauseAll(st, false) }()

	// Downstream first: the consumers must account for the new producer
	// before any tuple it emits can reach them.
	if st.topo.Output != "" {
		for _, cons := range st.topo.Downstream {
			if r.nodeDead(cons.Node) {
				continue
			}
			msg := ctrlMsg(st.topo.Output, &transport.Ctrl{
				Op: transport.CtrlExpectProducer, PeerNode: inst.Node, PeerService: inst.Service,
			})
			if _, err := r.rpc.call(r.ctx, cons, msg); err != nil {
				return err
			}
		}
	}
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			msg := ctrlMsg(ex.Exchange, &transport.Ctrl{
				Op: transport.CtrlAttach, PeerNode: inst.Node, PeerService: inst.Service,
				Weights: weights,
			})
			if _, err := r.rpc.call(r.ctx, prod, msg); err != nil {
				return err
			}
		}
	}

	r.mu.Lock()
	st.topo.Instances = append(st.topo.Instances, inst)
	st.weights = append([]float64(nil), weights...)
	// Keep the neighbouring fragments' view coherent: the upstream
	// fragments' Downstream lists and the downstream fragments' input
	// producer lists gain the new instance, so later adaptations and
	// failovers include it.
	for _, ex := range st.topo.Inputs {
		for _, up := range r.fragments {
			if up.topo.Output == ex.Exchange {
				up.topo.Downstream = append(up.topo.Downstream, inst)
			}
		}
	}
	if st.topo.Output != "" {
		for _, down := range r.fragments {
			for i := range down.topo.Inputs {
				if down.topo.Inputs[i].Exchange == st.topo.Output {
					down.topo.Inputs[i].Producers = append(down.topo.Inputs[i].Producers, inst)
				}
			}
		}
	}
	r.mu.Unlock()

	r.obsJoined.Inc()
	r.otl.Append(obs.Event{
		Kind:       obs.KindMembership,
		AtMs:       r.nowMs(),
		Node:       string(inst.Node),
		Fragment:   fragment,
		NewWeights: append([]float64(nil), weights...),
		Detail:     "join",
	})
	r.bus.Publish("responder", r.node, TopicPolicy, PolicyUpdate{
		Fragment: fragment,
		Weights:  append([]float64(nil), weights...),
	})
	return nil
}
