package core

import (
	"context"
	"math"
	"sync"

	"repro/internal/bus"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Assessment selects how the Diagnoser computes the per-instance cost
// c(p_i) (paper §3.1).
type Assessment uint8

// Assessment policies.
const (
	// A1 uses only the M1 processing-cost notifications of the subplan
	// instance. It effectively assumes communication overlaps with
	// processing thanks to pipelined parallelism.
	A1 Assessment = iota + 1
	// A2 additionally charges the per-tuple communication cost reported by
	// the M2 notifications of the subplans delivering data to the
	// instance; co-located pairs cost zero.
	A2
)

// String names the assessment.
func (a Assessment) String() string {
	switch a {
	case A1:
		return "A1"
	case A2:
		return "A2"
	default:
		return "Assessment(?)"
	}
}

// DiagnoserConfig tunes the assessment stage.
type DiagnoserConfig struct {
	// ThresA is the minimum |w'_i - w_i| required to notify the Responder
	// (paper default: 20%), avoiding adaptations with low expected
	// benefit.
	ThresA float64
	// Assessment selects A1 or A2.
	Assessment Assessment
	// CostFloorMs clamps the per-instance cost c(p_i) from below. A clone
	// whose window reports zero (or negative, NaN or Inf, possible with an
	// empty M1 window or degenerate timing) would otherwise dominate the
	// inverse-cost weights and starve every other instance. Zero selects
	// DefaultCostFloorMs.
	CostFloorMs float64
}

// DefaultCostFloorMs is the default lower clamp on assessed per-tuple cost.
// One microsecond of paper time is far below any real per-tuple cost in the
// experiments (which are O(0.1–10 ms)), so the clamp only engages on
// degenerate inputs.
const DefaultCostFloorMs = 1e-3

// DefaultDiagnoserConfig returns the paper's defaults.
func DefaultDiagnoserConfig() DiagnoserConfig {
	return DiagnoserConfig{ThresA: 0.20, Assessment: A1, CostFloorMs: DefaultCostFloorMs}
}

// Diagnoser gathers the MonitoringEventDetectors' notifications, maintains
// the current tuple-distribution vector W of every registered partitioned
// fragment, and proposes the balanced vector W' with w'_i ∝ 1/c(p_i)
// whenever some |w'_i − w_i| exceeds thresA (paper §3.1, Assessment).
type Diagnoser struct {
	bus  *bus.Bus
	node simnet.NodeID
	cfg  DiagnoserConfig

	mu        sync.Mutex
	fragments map[string]*diagState
	subs      []*bus.Subscription

	stopOnce sync.Once

	notificationsIn obs.Counter
	proposalsOut    obs.Counter
	obsIn           *obs.Counter
	obsProposals    *obs.Counter
	timeline        *obs.Timeline
}

type diagState struct {
	topo FragmentTopology
	// weights is the Diagnoser's view of the current W.
	weights []float64
	// procCost is the latest per-tuple processing cost per instance (M1).
	procCost map[int]float64
	// commCost is the latest per-tuple communication cost per instance and
	// producer key (M2), used by A2.
	commCost map[int]map[string]float64
	// dead marks instances whose evaluator crashed. They are excluded from
	// the completeness gate (a dead clone never reports again) and their
	// proposed weight is forced to zero.
	dead map[int]bool
}

// NewDiagnoser builds the diagnoser on the given node and subscribes it to
// the detectors and to the Responder's policy updates. Subscriptions are
// scoped to ctx (nil leaves the lifetime to Stop).
func NewDiagnoser(ctx context.Context, b *bus.Bus, node simnet.NodeID, cfg DiagnoserConfig) *Diagnoser {
	if cfg.Assessment == 0 {
		cfg.Assessment = A1
	}
	if cfg.CostFloorMs <= 0 {
		cfg.CostFloorMs = DefaultCostFloorMs
	}
	o := obs.Default()
	d := &Diagnoser{
		bus:          b,
		node:         node,
		cfg:          cfg,
		fragments:    make(map[string]*diagState),
		obsIn:        o.Counter(obs.MDiagNotificationsIn),
		obsProposals: o.Counter(obs.MDiagProposals),
		timeline:     o.Timeline(),
	}
	d.subs = append(d.subs,
		b.SubscribeContext(ctx, "diagnoser", node, TopicMED, d.onCost),
		b.SubscribeContext(ctx, "diagnoser", node, TopicPolicy, d.onPolicy),
	)
	return d
}

// Stop cancels the subscriptions. Idempotent and safe from multiple
// goroutines.
func (d *Diagnoser) Stop() {
	d.stopOnce.Do(func() {
		for _, s := range d.subs {
			s.Cancel()
		}
	})
}

// Register makes the diagnoser monitor one partitioned fragment. The GDQS
// registers every adaptable fragment at deployment.
func (d *Diagnoser) Register(topo FragmentTopology) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fragments[topo.Fragment] = &diagState{
		topo:     topo,
		weights:  append([]float64(nil), topo.Weights...),
		procCost: make(map[int]float64),
		commCost: make(map[int]map[string]float64),
		dead:     make(map[int]bool),
	}
}

// MarkNodeDead records that an evaluator crashed: every fragment instance it
// hosted is excluded from future assessments and proposed at weight zero.
// Stale cost observations of the dead instances are dropped so they cannot
// skew the next proposal.
func (d *Diagnoser) MarkNodeDead(node simnet.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.fragments {
		for _, inst := range st.topo.Instances {
			if inst.Node != node {
				continue
			}
			st.dead[inst.Index] = true
			delete(st.procCost, inst.Index)
			delete(st.commCost, inst.Index)
		}
	}
}

// Extend admits a newly joined instance to a monitored fragment: the
// topology gains the instance and the diagnoser's view of W is replaced by
// weights, which must cover the grown instance count. Assessment resumes
// once the new clone reports its first cost window.
func (d *Diagnoser) Extend(fragment string, inst InstanceRef, weights []float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.fragments[fragment]
	if st == nil {
		return
	}
	st.topo.Instances = append(st.topo.Instances, inst)
	st.weights = append([]float64(nil), weights...)
}

// Stats reports notification and proposal counts for the overhead
// experiments.
func (d *Diagnoser) Stats() (notificationsIn, proposalsOut int64) {
	return d.notificationsIn.Value(), d.proposalsOut.Value()
}

func (d *Diagnoser) onPolicy(n bus.Notification) {
	up, ok := n.Payload.(PolicyUpdate)
	if !ok {
		return
	}
	d.mu.Lock()
	if st := d.fragments[up.Fragment]; st != nil {
		copy(st.weights, up.Weights)
	}
	d.mu.Unlock()
}

func (d *Diagnoser) onCost(n bus.Notification) {
	c, ok := n.Payload.(CostNotification)
	if !ok {
		return
	}
	d.notificationsIn.Inc()
	d.obsIn.Inc()
	d.mu.Lock()
	var target *diagState
	if c.IsComm {
		// Communication cost counts against the consuming instance.
		if st := d.fragments[c.ConsumerFragment]; st != nil {
			m := st.commCost[c.ConsumerInstance]
			if m == nil {
				m = make(map[string]float64)
				st.commCost[c.ConsumerInstance] = m
			}
			cost := c.AvgCostMs
			if c.SameNode {
				// Default configuration: communication between subplans on
				// the same machine is considered zero.
				cost = 0
			}
			m[c.Key] = cost
			target = st
		}
	} else {
		if st := d.fragments[c.Fragment]; st != nil {
			st.procCost[c.Instance] = c.AvgCostMs
			target = st
		}
	}
	var proposal *Proposal
	if target != nil {
		proposal = d.assessLocked(target)
	}
	d.mu.Unlock()
	if proposal != nil {
		d.bus.Publish("diagnoser", d.node, TopicDiagnosis, *proposal)
	}
}

// assessLocked computes W' for a fragment once every instance has reported,
// returning a proposal when the imbalance clears thresA.
func (d *Diagnoser) assessLocked(st *diagState) *Proposal {
	n := len(st.topo.Instances)
	costs := make([]float64, n)
	alive := 0
	for i := 0; i < n; i++ {
		if st.dead[i] {
			// A crashed clone takes no further load: cost stays zero as a
			// marker and balancedWeights pins its weight to zero.
			continue
		}
		alive++
		proc, ok := st.procCost[i]
		if !ok {
			return nil // not all live instances observed yet
		}
		c := proc
		if d.cfg.Assessment == A2 {
			for _, comm := range st.commCost[i] {
				c += comm
			}
		}
		// NaN and ±Inf come out of degenerate windows (0/0 per-tuple
		// divisions upstream); note that a NaN passes no ordered
		// comparison, so it must be tested explicitly before clamping.
		if math.IsNaN(c) || math.IsInf(c, 0) || c < d.cfg.CostFloorMs {
			c = d.cfg.CostFloorMs
		}
		costs[i] = c
	}
	if alive == 0 {
		return nil
	}
	weights := balancedWeightsExcluding(costs, st.dead)
	trigger := false
	for i := range weights {
		if math.Abs(weights[i]-st.weights[i]) >= d.cfg.ThresA {
			trigger = true
			break
		}
	}
	if !trigger {
		return nil
	}
	d.proposalsOut.Inc()
	d.obsProposals.Inc()
	d.timeline.Append(obs.Event{
		Kind:       obs.KindProposal,
		Node:       string(d.node),
		Fragment:   st.topo.Fragment,
		OldWeights: append([]float64(nil), st.weights...),
		NewWeights: append([]float64(nil), weights...),
		Costs:      append([]float64(nil), costs...),
	})
	return &Proposal{Fragment: st.topo.Fragment, Weights: weights, Costs: costs}
}

// balancedWeights computes w_i ∝ 1/c_i, normalised.
func balancedWeights(costs []float64) []float64 {
	return balancedWeightsExcluding(costs, nil)
}

// balancedWeightsExcluding computes w_i ∝ 1/c_i over the live instances,
// normalised; dead instances get exactly zero.
func balancedWeightsExcluding(costs []float64, dead map[int]bool) []float64 {
	w := make([]float64, len(costs))
	sum := 0.0
	for i, c := range costs {
		if dead[i] {
			continue
		}
		w[i] = 1 / c
		sum += w[i]
	}
	total := 0.0
	first := -1
	for i := range w {
		if dead[i] {
			continue
		}
		if first < 0 {
			first = i
		}
		w[i] /= sum
		total += w[i]
	}
	// Absorb float residue so the engine's weight validation passes.
	if first >= 0 {
		w[first] += 1 - total
	}
	return w
}
