package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// rpcClient gives the Responder request/response semantics over the
// one-way message transport: control requests carry a RequestID and a
// reply-to address; the matching KindReply resolves the pending call.
type rpcClient struct {
	tr      transport.Transport
	node    simnet.NodeID
	service string
	timeout time.Duration

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *transport.Ctrl

	latency *obs.Histogram
	errors  *obs.Counter
}

func newRPCClient(tr transport.Transport, node simnet.NodeID, service string) *rpcClient {
	o := obs.Default()
	c := &rpcClient{
		tr:      tr,
		node:    node,
		service: service,
		timeout: 60 * time.Second,
		pending: make(map[uint64]chan *transport.Ctrl),
		latency: o.Histogram(obs.MRPCLatency, obs.DefBucketsLatencyMs),
		errors:  o.Counter(obs.MRPCErrors),
	}
	tr.Register(node, service, c.onReply)
	return c
}

func (c *rpcClient) close() {
	c.tr.Unregister(c.node, c.service)
}

func (c *rpcClient) onReply(_ simnet.NodeID, msg *transport.Message) {
	if msg.Kind != transport.KindReply || msg.Ctrl == nil {
		return
	}
	c.mu.Lock()
	ch := c.pending[msg.Ctrl.RequestID]
	delete(c.pending, msg.Ctrl.RequestID)
	c.mu.Unlock()
	if ch != nil {
		ch <- msg.Ctrl
	}
}

// call sends a control request to a fragment instance and waits for its
// reply, the client timeout, or ctx — whichever comes first. A canceled
// query must not leave an adaptation goroutine parked here for the full
// timeout. A nil ctx waits only on the timeout.
func (c *rpcClient) call(ctx context.Context, to InstanceRef, msg *transport.Message) (*transport.Ctrl, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	begun := time.Now()
	defer func() { c.latency.Observe(float64(time.Since(begun)) / float64(time.Millisecond)) }()
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan *transport.Ctrl, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	msg.Ctrl.RequestID = id
	msg.Ctrl.ReplyTo = c.node
	msg.Ctrl.ReplyService = c.service
	if _, err := c.tr.Send(c.node, to.Node, to.Service, msg); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.errors.Inc()
		return nil, qerr.Transport(fmt.Sprintf("%v to %s", msg.Ctrl.Op, to.Service), err)
	}
	select {
	case reply := <-ch:
		if !reply.OK && reply.Err != "" {
			c.errors.Inc()
			return reply, fmt.Errorf("core: %v on %s: %s", msg.Ctrl.Op, to.Service, reply.Err)
		}
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.errors.Inc()
		return nil, qerr.FromContext(ctx)
	case <-time.After(c.timeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.errors.Inc()
		return nil, qerr.Transport(fmt.Sprintf("%v on %s", msg.Ctrl.Op, to.Service),
			fmt.Errorf("core: reply timed out after %v", c.timeout))
	}
}
