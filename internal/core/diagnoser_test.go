package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
)

// proposalCollector gathers Diagnoser proposals.
type proposalCollector struct {
	mu   sync.Mutex
	seen []Proposal
}

func (c *proposalCollector) handler(n bus.Notification) {
	if p, ok := n.Payload.(Proposal); ok {
		c.mu.Lock()
		c.seen = append(c.seen, p)
		c.mu.Unlock()
	}
}

func (c *proposalCollector) wait(t *testing.T, n int) []Proposal {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.seen) >= n {
			out := append([]Proposal(nil), c.seen...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("expected %d proposals", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *proposalCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

func twoInstanceTopo() FragmentTopology {
	return FragmentTopology{
		Fragment: "F2",
		Weights:  []float64{0.5, 0.5},
		Instances: []InstanceRef{
			{Index: 0, Node: "ws0", Service: "frag/F2#0"},
			{Index: 1, Node: "ws1", Service: "frag/F2#1"},
		},
		Inputs: []ExchangeTopology{{
			Exchange:  "E1",
			Producers: []InstanceRef{{Index: 0, Node: "data1", Service: "frag/F1#0"}},
		}},
	}
}

func publishCost(b *bus.Bus, frag string, inst int, cost float64) {
	b.Publish("med", "ws0", TopicMED, CostNotification{
		Key: "m1", Fragment: frag, Instance: inst, AvgCostMs: cost,
	})
}

func TestDiagnoserProposesInverseCostWeights(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DefaultDiagnoserConfig())
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	// Paper scenario: one WS call 10x costlier. W' should be (10/11, 1/11).
	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 100)
	got := col.wait(t, 1)
	w := got[0].Weights
	if math.Abs(w[0]-10.0/11) > 1e-6 || math.Abs(w[1]-1.0/11) > 1e-6 {
		t.Fatalf("W' = %v, want ≈[0.909 0.091]", w)
	}
	if got[0].Fragment != "F2" || len(got[0].Costs) != 2 {
		t.Fatalf("proposal = %+v", got[0])
	}
}

func TestDiagnoserWaitsForAllInstances(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DefaultDiagnoserConfig())
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	publishCost(b, "F2", 0, 10)
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("proposed with only one instance observed")
	}
}

func TestDiagnoserThresholdSuppressesBalancedLoad(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DefaultDiagnoserConfig())
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	// 20% cost difference → W' ≈ (0.545, 0.455): |Δw| ≈ 0.045 < thresA.
	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 12)
	time.Sleep(30 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("low-benefit adaptation not suppressed")
	}
}

func TestDiagnoserPolicyUpdateStopsRepeatProposals(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DefaultDiagnoserConfig())
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 100)
	got := col.wait(t, 1)
	// The Responder applies W' and notifies.
	b.Publish("responder", "coord", TopicPolicy, PolicyUpdate{Fragment: "F2", Weights: got[0].Weights})
	time.Sleep(20 * time.Millisecond)
	// Same costs again: W' equals current W → no new proposal.
	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 100)
	time.Sleep(30 * time.Millisecond)
	if col.count() != 1 {
		t.Fatalf("proposals = %d, want 1 (stable after policy update)", col.count())
	}
}

func TestDiagnoserA2AddsCommunicationCost(t *testing.T) {
	b := testBus()
	defer b.Close()
	cfg := DiagnoserConfig{ThresA: 0.2, Assessment: A2}
	d := NewDiagnoser(nil, b, "coord", cfg)
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	// Equal processing costs, but instance 1 pays heavy communication.
	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 10)
	b.Publish("med", "data1", TopicMED, CostNotification{
		Key: "m2:F1#0->F2#1", IsComm: true, AvgCostMs: 30,
		ProducerFragment: "F1", ProducerInstance: 0,
		ConsumerFragment: "F2", ConsumerInstance: 1,
	})
	got := col.wait(t, 1)
	w := got[0].Weights
	// c = (10, 40) → W' = (0.8, 0.2).
	if math.Abs(w[0]-0.8) > 1e-6 || math.Abs(w[1]-0.2) > 1e-6 {
		t.Fatalf("A2 weights = %v, want [0.8 0.2]", w)
	}
}

func TestDiagnoserA2SameNodeCommIsZero(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DiagnoserConfig{ThresA: 0.2, Assessment: A2})
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 10)
	b.Publish("med", "data1", TopicMED, CostNotification{
		Key: "m2:F1#0->F2#1", IsComm: true, AvgCostMs: 30, SameNode: true,
		ConsumerFragment: "F2", ConsumerInstance: 1,
	})
	time.Sleep(30 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("same-node communication must cost zero (paper default)")
	}
}

func TestDiagnoserA1IgnoresCommunication(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DefaultDiagnoserConfig()) // A1
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	publishCost(b, "F2", 0, 10)
	publishCost(b, "F2", 1, 10)
	b.Publish("med", "data1", TopicMED, CostNotification{
		Key: "m2:F1#0->F2#1", IsComm: true, AvgCostMs: 500,
		ConsumerFragment: "F2", ConsumerInstance: 1,
	})
	time.Sleep(30 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("A1 must not consider communication cost")
	}
}

func TestBalancedWeights(t *testing.T) {
	w := balancedWeights([]float64{10, 100})
	if math.Abs(w[0]+w[1]-1) > 1e-12 {
		t.Fatal("weights must sum to 1 exactly")
	}
	w3 := balancedWeights([]float64{10, 10, 10})
	for _, x := range w3 {
		if math.Abs(x-1.0/3) > 1e-9 {
			t.Fatalf("equal costs → equal weights, got %v", w3)
		}
	}
}

func TestAssessmentAndResponseStrings(t *testing.T) {
	if A1.String() != "A1" || A2.String() != "A2" || Assessment(0).String() == "" {
		t.Error("assessment strings")
	}
	if R1.String() != "R1" || R2.String() != "R2" || Response(0).String() == "" {
		t.Error("response strings")
	}
}

func TestDiagnoserCostFloorClampsDegenerateCosts(t *testing.T) {
	// A clone reporting zero cost (empty M1 window, degenerate timing) used
	// to receive an inverse weight of 1e9, i.e. essentially the whole
	// distribution. With the cost floor it gets the floor cost instead, so
	// the proposal stays within the floor-bounded ratio.
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DiagnoserConfig{ThresA: 0.2, CostFloorMs: 1})
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	publishCost(b, "F2", 0, 0) // degenerate: clamped to the 1ms floor
	publishCost(b, "F2", 1, 3)
	got := col.wait(t, 1)
	w := got[0].Weights
	// Floored costs (1, 3) → weights (0.75, 0.25), not (≈1, ≈0).
	if math.Abs(w[0]-0.75) > 1e-6 || math.Abs(w[1]-0.25) > 1e-6 {
		t.Fatalf("W' = %v, want [0.75 0.25]", w)
	}
	if got[0].Costs[0] != 1 {
		t.Fatalf("cost[0] = %v, want clamped to 1", got[0].Costs[0])
	}
}

func TestDiagnoserSanitisesNaNAndInfCosts(t *testing.T) {
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DiagnoserConfig{ThresA: 0.2, CostFloorMs: 1})
	defer d.Stop()
	d.Register(twoInstanceTopo())
	col := &proposalCollector{}
	b.Subscribe("test", "coord", TopicDiagnosis, col.handler)

	// NaN passes every ordered comparison as false, so the old `c <= 0`
	// clamp let it through and the weights became NaN — which also defeated
	// the thresA trigger check. Both NaN and Inf must clamp to the floor.
	publishCost(b, "F2", 0, math.NaN())
	publishCost(b, "F2", 1, math.Inf(1))
	time.Sleep(20 * time.Millisecond)
	// Both clamp to the same floor → balanced weights → no proposal.
	if col.count() != 0 {
		t.Fatalf("degenerate equal costs proposed: %+v", col.seen)
	}
	// Now a real imbalance against a NaN report must produce finite weights.
	publishCost(b, "F2", 0, math.NaN()) // floor = 1
	publishCost(b, "F2", 1, 4)
	got := col.wait(t, 1)
	for i, w := range got[0].Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("weight[%d] = %v not finite", i, w)
		}
	}
	if math.Abs(got[0].Weights[0]-0.8) > 1e-6 {
		t.Fatalf("W' = %v, want [0.8 0.2]", got[0].Weights)
	}
}

func TestDefaultDiagnoserConfigHasCostFloor(t *testing.T) {
	if DefaultDiagnoserConfig().CostFloorMs != DefaultCostFloorMs {
		t.Fatal("default config must carry the cost floor")
	}
	// The zero config gets the floor defaulted at construction.
	b := testBus()
	defer b.Close()
	d := NewDiagnoser(nil, b, "coord", DiagnoserConfig{ThresA: 0.2})
	defer d.Stop()
	if d.cfg.CostFloorMs != DefaultCostFloorMs {
		t.Fatalf("constructed floor = %v, want %v", d.cfg.CostFloorMs, DefaultCostFloorMs)
	}
}
