package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bus"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// Response selects how the Responder redistributes data (paper §3.1).
type Response uint8

// Response policies.
const (
	// R2 (prospective) changes only the routing of tuples not yet
	// distributed; buffered tuples and recovery logs are untouched.
	R2 Response = iota + 1
	// R1 (retrospective) additionally redistributes the tuples held in the
	// recovery logs — those buffered to be sent or sent but not yet
	// processed — effectively recreating operator state on other machines.
	// It is mandatory for stateful fragments.
	R1
)

// String names the response policy.
func (r Response) String() string {
	switch r {
	case R1:
		return "R1"
	case R2:
		return "R2"
	default:
		return "Response(?)"
	}
}

// ResponderConfig tunes the response stage.
type ResponderConfig struct {
	// Response selects prospective or retrospective redistribution for
	// stateless fragments; stateful fragments always use R1.
	Response Response
	// MaxProgress vetoes adaptation when the producers have already
	// routed this fraction of their estimated output ("if the execution
	// is not close to completion", after Chaudhuri et al.'s progress
	// estimator).
	MaxProgress float64
	// MinChange skips proposals whose W' differs from the deployed
	// distribution by less than this in every component. Because the
	// Diagnoser learns about deployments asynchronously, several identical
	// proposals can queue up behind one imbalance; re-deploying them would
	// pause the producers for nothing. Zero selects the default of 0.05.
	MinChange float64
}

// DefaultResponderConfig returns the defaults used in the evaluation.
func DefaultResponderConfig() ResponderConfig {
	return ResponderConfig{Response: R2, MaxProgress: 0.9}
}

// ResponderStats counts response activity for the overhead experiments. It
// is a point-in-time view assembled from the responder's registry-backed
// counters.
type ResponderStats struct {
	ProposalsIn  int64
	Adaptations  int64
	SkippedLate  int64 // vetoed by progress estimation
	TuplesMoved  int64 // recalled or replayed retrospectively
	StateReplays int64
	// ProgressFallbacks counts progress checks that had no cardinality
	// estimate and fell back to routing progress.
	ProgressFallbacks int64
}

// AdaptationEvent is one entry of the Responder's timeline: what it decided
// about a proposal and how long deploying the decision took.
type AdaptationEvent struct {
	// AtMs is the decision time in paper milliseconds since the responder
	// was created.
	AtMs     float64
	Fragment string
	// Outcome is "adapted", "skipped-late" (progress veto) or "failed".
	Outcome string
	// Retrospective reports whether the deployed response was R1.
	Retrospective bool
	// Weights is the deployed distribution W' (nil unless adapted).
	Weights []float64
	// DurationMs is the wall time the response protocol took.
	DurationMs float64
}

// Responder receives imbalance proposals from the Diagnoser and deploys
// them: it contacts the producing evaluators to estimate progress, then
// drives the engine's control plane — prospective weight swaps for R2, and
// the full pause/recall/evict/replay/resend cycle for R1 (paper §3.1,
// Response).
type Responder struct {
	bus   *bus.Bus
	tr    transport.Transport
	node simnet.NodeID
	cfg  ResponderConfig
	rpc  *rpcClient
	// ctx scopes every control RPC to the owning query: a cancellation
	// releases an adaptation parked mid-protocol instead of letting it wait
	// out the RPC timeout against a torn-down fragment.
	ctx context.Context

	// clockMu guards clock: SetClock is called from the session goroutine
	// while the subscription's delivery goroutine reads it to stamp events.
	clockMu sync.Mutex
	clock   *vtime.Clock

	// protoMu serializes deployment protocols — proposal-driven
	// adaptations, failure recovery and live-instance admission — so at
	// most one pause/redistribute/resume cycle is in flight per responder.
	protoMu sync.Mutex

	mu        sync.Mutex
	fragments map[string]*respState
	deadNodes map[simnet.NodeID]bool
	timeline  []AdaptationEvent
	sub       *bus.Subscription

	stopOnce sync.Once

	// Instance-local counters behind the ResponderStats view.
	proposalsIn       obs.Counter
	adaptations       obs.Counter
	skippedLate       obs.Counter
	tuplesMoved       obs.Counter
	stateReplays      obs.Counter
	progressFallbacks obs.Counter

	// Process-wide registry handles, resolved at construction.
	outcomeCounters map[string]*obs.Counter
	obsTuplesMoved  *obs.Counter
	obsReplays      *obs.Counter
	obsFallbacks    *obs.Counter
	obsDuration     *obs.Histogram
	obsFailovers    map[string]*obs.Counter
	obsJoined       *obs.Counter
	obsRecoveryMs   *obs.Histogram
	otl             *obs.Timeline
}

type respState struct {
	topo FragmentTopology
	// weights mirrors the deployed distribution vector.
	weights []float64
	// mirror reproduces the producers' hash policy so the Responder can
	// compute the canonical new owner map and the moved buckets (stateful
	// fragments only).
	mirror *engine.HashPolicy
	// dead marks instance indices whose evaluator crashed; they are skipped
	// by every control RPC and pinned to weight zero.
	dead map[int]bool
}

// NewResponder builds the responder on the given node. Its subscription and
// control RPCs are scoped to ctx (nil leaves the lifetime to Stop). The
// clock stamps the adaptation timeline; nil uses a private clock at the
// default scale.
func NewResponder(ctx context.Context, b *bus.Bus, tr transport.Transport, node simnet.NodeID, cfg ResponderConfig) *Responder {
	if cfg.Response == 0 {
		cfg.Response = R2
	}
	if cfg.MaxProgress <= 0 {
		cfg.MaxProgress = 0.9
	}
	if cfg.MinChange <= 0 {
		cfg.MinChange = 0.05
	}
	o := obs.Default()
	r := &Responder{
		bus:       b,
		tr:        tr,
		node:      node,
		cfg:       cfg,
		ctx:       ctx,
		clock:     vtime.NewClock(vtime.DefaultScale),
		fragments: make(map[string]*respState),
		deadNodes: make(map[simnet.NodeID]bool),
		rpc:       newRPCClient(tr, node, "aqp/responder@"+string(node)),
		outcomeCounters: map[string]*obs.Counter{
			"adapted":      o.Counter(obs.Label(obs.MAdaptations, "outcome", "adapted")),
			"skipped-late": o.Counter(obs.Label(obs.MAdaptations, "outcome", "skipped-late")),
			"redundant":    o.Counter(obs.Label(obs.MAdaptations, "outcome", "redundant")),
			"failed":       o.Counter(obs.Label(obs.MAdaptations, "outcome", "failed")),
		},
		obsTuplesMoved: o.Counter(obs.MTuplesMoved),
		obsReplays:     o.Counter(obs.MStateReplays),
		obsFallbacks:   o.Counter(obs.MProgressFallbacks),
		obsDuration:    o.Histogram(obs.MAdaptationDuration, obs.DefBucketsLatencyMs),
		obsFailovers: map[string]*obs.Counter{
			"recovered": o.Counter(obs.Label(obs.MFailovers, "outcome", "recovered")),
			"failed":    o.Counter(obs.Label(obs.MFailovers, "outcome", "failed")),
		},
		obsJoined:     o.Counter(obs.MNodesJoined),
		obsRecoveryMs: o.Histogram(obs.MRecoveryDuration, obs.DefBucketsLatencyMs),
		otl:           o.Timeline(),
	}
	r.sub = b.SubscribeContext(ctx, "responder", node, TopicDiagnosis, r.onProposal)
	return r
}

// Stop cancels the subscription and releases the RPC endpoint. Idempotent
// and safe from multiple goroutines.
func (r *Responder) Stop() {
	r.stopOnce.Do(func() {
		r.sub.Cancel()
		r.rpc.close()
	})
}

// Register makes the responder manage one partitioned fragment.
func (r *Responder) Register(topo FragmentTopology) error {
	st := &respState{
		topo:    topo,
		weights: append([]float64(nil), topo.Weights...),
		dead:    make(map[int]bool),
	}
	if topo.Stateful {
		buckets := topo.Buckets
		if buckets <= 0 {
			buckets = engine.DefaultBuckets
		}
		mirror, err := engine.NewHashPolicy(nil, buckets, topo.Weights)
		if err != nil {
			return fmt.Errorf("core: responder mirror for %s: %w", topo.Fragment, err)
		}
		st.mirror = mirror
	}
	r.mu.Lock()
	r.fragments[topo.Fragment] = st
	r.mu.Unlock()
	return nil
}

// SetClock replaces the timeline clock. Safe against concurrently recorded
// events (the delivery goroutine reads the clock through the same lock).
func (r *Responder) SetClock(c *vtime.Clock) {
	r.clockMu.Lock()
	r.clock = c
	r.clockMu.Unlock()
}

// nowMs stamps paper time under the clock lock.
func (r *Responder) nowMs() float64 {
	r.clockMu.Lock()
	defer r.clockMu.Unlock()
	return r.clock.NowMs()
}

// Stats returns a snapshot of the activity counters.
func (r *Responder) Stats() ResponderStats {
	return ResponderStats{
		ProposalsIn:       r.proposalsIn.Value(),
		Adaptations:       r.adaptations.Value(),
		SkippedLate:       r.skippedLate.Value(),
		TuplesMoved:       r.tuplesMoved.Value(),
		StateReplays:      r.stateReplays.Value(),
		ProgressFallbacks: r.progressFallbacks.Value(),
	}
}

// Timeline returns the recorded adaptation events in order.
func (r *Responder) Timeline() []AdaptationEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]AdaptationEvent(nil), r.timeline...)
}

func (r *Responder) record(e AdaptationEvent) {
	r.mu.Lock()
	r.timeline = append(r.timeline, e)
	r.mu.Unlock()
	r.outcomeCounters[e.Outcome].Inc()
	if e.Outcome == "adapted" {
		r.obsDuration.Observe(e.DurationMs)
	}
	r.otl.Append(obs.Event{
		Kind:          obs.KindOutcome,
		AtMs:          e.AtMs,
		Node:          string(r.node),
		Fragment:      e.Fragment,
		Outcome:       e.Outcome,
		Retrospective: e.Retrospective,
		NewWeights:    append([]float64(nil), e.Weights...),
		DurationMs:    e.DurationMs,
	})
}

// onProposal handles one Diagnoser proposal. Proposals are processed
// sequentially on the subscription's delivery goroutine, so at most one
// adaptation is in flight.
func (r *Responder) onProposal(n bus.Notification) {
	p, ok := n.Payload.(Proposal)
	if !ok {
		return
	}
	r.mu.Lock()
	st := r.fragments[p.Fragment]
	r.mu.Unlock()
	r.proposalsIn.Inc()
	if st == nil {
		return
	}
	r.protoMu.Lock()
	defer r.protoMu.Unlock()
	start := r.nowMs()
	if err := r.adapt(st, p); err != nil {
		// An adaptation failure must not kill the query; execution simply
		// continues under the old distribution. Surface it on the bus for
		// observability.
		r.record(AdaptationEvent{AtMs: start, Fragment: p.Fragment, Outcome: "failed",
			DurationMs: r.nowMs() - start})
		r.bus.Publish("responder", r.node, "responder.error", err.Error())
	}
}

func (r *Responder) adapt(st *respState, p Proposal) error {
	// A proposal racing a failure diagnosis or a live join can carry a
	// stale view: reject arity mismatches, and pin dead components to zero
	// with the rest renormalised before deciding anything else.
	r.mu.Lock()
	if len(p.Weights) != len(st.weights) {
		r.mu.Unlock()
		return fmt.Errorf("core: proposal for %s has %d weights, want %d",
			p.Fragment, len(p.Weights), len(st.weights))
	}
	if len(st.dead) > 0 {
		p.Weights = zeroDead(p.Weights, st.dead)
		if p.Weights == nil {
			r.mu.Unlock()
			return fmt.Errorf("core: proposal for %s leaves no live weight", p.Fragment)
		}
	}
	r.mu.Unlock()

	// Drop proposals that would redeploy (nearly) the current distribution:
	// they are stale duplicates from the asynchronous proposal pipeline.
	r.mu.Lock()
	redundant := true
	for i := range p.Weights {
		d := p.Weights[i] - st.weights[i]
		if d < 0 {
			d = -d
		}
		if d >= r.cfg.MinChange {
			redundant = false
			break
		}
	}
	r.mu.Unlock()
	if redundant {
		r.record(AdaptationEvent{AtMs: r.nowMs(), Fragment: p.Fragment, Outcome: "redundant"})
		return nil
	}

	// Estimate the subplan's progress (after Chaudhuri et al.): expected
	// input from the producing evaluators' estimates, work done from the
	// tuples each clone has actually processed. Routing progress alone
	// would overestimate badly: a fast data source can finish distributing
	// long before the slow machine's queue drains, which is precisely when
	// retrospective redistribution pays off.
	var processed, est, routed int64
	for _, ex := range st.topo.Inputs {
		var exEst int64
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			reply, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange, &transport.Ctrl{Op: transport.CtrlProgress}))
			if err != nil {
				return err
			}
			if reply.Est > exEst {
				exEst = reply.Est
			}
			routed += reply.Routed
		}
		est += exEst
		for _, cons := range st.topo.Instances {
			if r.deadInstance(st, cons) {
				continue
			}
			reply, err := r.rpc.call(r.ctx, cons, ctrlMsg(ex.Exchange, &transport.Ctrl{Op: transport.CtrlProgress}))
			if err != nil {
				return err
			}
			processed += reply.Routed
		}
	}
	startMs := r.nowMs()
	progressDenom := est
	if est <= 0 {
		// No cardinality estimate (the optimiser could not produce one, or
		// the producers have not reported yet). Silently waiving the
		// MaxProgress veto here would let near-complete executions pay the
		// full redistribution cost for no remaining benefit, so fall back to
		// routing progress: processed over tuples routed so far. It can only
		// understate the denominator, making the veto fire earlier, which is
		// the safe direction for a fallback.
		progressDenom = routed
		r.progressFallbacks.Inc()
		r.obsFallbacks.Inc()
		r.otl.Append(obs.Event{
			Kind:     obs.KindProgressFallback,
			AtMs:     startMs,
			Node:     string(r.node),
			Fragment: p.Fragment,
			Tuples:   processed,
			Detail:   fmt.Sprintf("no estimate; routed=%d", routed),
		})
	}
	if progressDenom > 0 && float64(processed)/float64(progressDenom) >= r.cfg.MaxProgress {
		r.skippedLate.Inc()
		r.record(AdaptationEvent{AtMs: startMs, Fragment: p.Fragment, Outcome: "skipped-late"})
		return nil
	}

	retrospective := r.cfg.Response == R1 || st.topo.Stateful
	var err error
	if st.topo.Stateful {
		err = r.adaptStateful(st, p)
	} else if retrospective {
		err = r.adaptStatelessR1(st, p)
	} else {
		err = r.adaptStatelessR2(st, p)
	}
	if err != nil {
		return err
	}

	r.mu.Lock()
	copy(st.weights, p.Weights)
	r.mu.Unlock()
	r.adaptations.Inc()
	r.record(AdaptationEvent{
		AtMs: startMs, Fragment: p.Fragment, Outcome: "adapted",
		Retrospective: retrospective,
		Weights:       append([]float64(nil), p.Weights...),
		DurationMs:    r.nowMs() - startMs,
	})
	// Notify the Diagnosers that need to update the current distribution.
	r.bus.Publish("responder", r.node, TopicPolicy, PolicyUpdate{
		Fragment:      p.Fragment,
		Weights:       append([]float64(nil), p.Weights...),
		Retrospective: retrospective,
	})
	return nil
}

// adaptStatelessR2 deploys W' prospectively: producers route future tuples
// by the new weights; nothing already distributed moves.
func (r *Responder) adaptStatelessR2(st *respState, p Proposal) error {
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
				&transport.Ctrl{Op: transport.CtrlSetWeights, Weights: p.Weights})); err != nil {
				return err
			}
		}
	}
	return nil
}

// adaptStatelessR1 deploys W' retrospectively: pause, recall unprocessed
// tuples from every consumer, install W', re-route the recalled tuples,
// resume.
func (r *Responder) adaptStatelessR1(st *respState, p Proposal) error {
	if err := r.pauseAll(st, true); err != nil {
		return err
	}
	defer func() { _ = r.pauseAll(st, false) }()

	// Recall still-unprocessed tuples from each consumer instance — all
	// input exchanges in one atomic step per instance.
	type recalled struct {
		exchange string
		prodIdx  int
		consIdx  int
		seqs     []int64
	}
	var recalls []recalled
	for _, cons := range st.topo.Instances {
		if r.deadInstance(st, cons) {
			continue
		}
		reply, err := r.rpc.call(r.ctx, cons, ctrlMsg("", &transport.Ctrl{Op: transport.CtrlDiscard}))
		if err != nil {
			return err
		}
		for key, seqs := range reply.DiscardedSeqs {
			ex, prodIdx, err := transport.ParseStreamKey(key)
			if err != nil {
				return err
			}
			recalls = append(recalls, recalled{exchange: ex, prodIdx: prodIdx, consIdx: cons.Index, seqs: seqs})
		}
	}
	// Install the new weights, then re-route the recalled tuples.
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
				&transport.Ctrl{Op: transport.CtrlSetWeights, Weights: p.Weights})); err != nil {
				return err
			}
		}
	}
	for _, rc := range recalls {
		if len(rc.seqs) == 0 {
			continue
		}
		prod, ok := r.producerRef(st, rc.exchange, rc.prodIdx)
		if !ok {
			return fmt.Errorf("core: discard report names unknown stream %s/%d", rc.exchange, rc.prodIdx)
		}
		msg := ctrlMsg(rc.exchange, &transport.Ctrl{Op: transport.CtrlResend, Seqs: rc.seqs})
		msg.ConsumerIdx = rc.consIdx
		if _, err := r.rpc.call(r.ctx, prod, msg); err != nil {
			return err
		}
		r.countMoved(st.topo.Fragment, int64(len(rc.seqs)))
	}
	return nil
}

// countMoved accounts one batch of retrospectively re-routed tuples.
func (r *Responder) countMoved(fragment string, n int64) {
	r.tuplesMoved.Add(n)
	r.obsTuplesMoved.Add(n)
	r.otl.Append(obs.Event{
		Kind:     obs.KindReplay,
		AtMs:     r.nowMs(),
		Node:     string(r.node),
		Fragment: fragment,
		Tuples:   n,
	})
}

// producerRef resolves a producer instance of one of the fragment's input
// exchanges.
func (r *Responder) producerRef(st *respState, exchange string, prodIdx int) (InstanceRef, bool) {
	for _, ex := range st.topo.Inputs {
		if ex.Exchange != exchange {
			continue
		}
		for _, prod := range ex.Producers {
			if prod.Index == prodIdx {
				return prod, true
			}
		}
	}
	return InstanceRef{}, false
}

// adaptStateful deploys W' for a stateful fragment: the bucket→owner map
// moves minimally, queued tuples of the moved buckets are recalled, the
// moved buckets' build state is evicted, the recovery logs replay the state
// to its new owners, and recalled probe tuples are re-routed.
func (r *Responder) adaptStateful(st *respState, p Proposal) error {
	r.mu.Lock()
	moved, err := st.mirror.SetWeights(p.Weights)
	newMap := st.mirror.OwnerMap()
	r.mu.Unlock()
	if err != nil {
		return err
	}
	if len(moved) == 0 {
		return nil
	}

	if err := r.pauseAll(st, true); err != nil {
		return err
	}
	defer func() { _ = r.pauseAll(st, false) }()

	// Recall queued tuples of the moved buckets — every input exchange of
	// an instance in one atomic step — and evict their state. Discarded
	// build-side tuples need no resend: the replay below retransmits every
	// logged tuple of the moved buckets.
	stateful := make(map[string]bool, len(st.topo.Inputs))
	for _, ex := range st.topo.Inputs {
		stateful[ex.Exchange] = ex.Stateful
	}
	type resend struct {
		exchange string
		prodIdx  int
		consIdx  int
		seqs     []int64
	}
	var resends []resend
	for _, cons := range st.topo.Instances {
		if r.deadInstance(st, cons) {
			continue
		}
		reply, err := r.rpc.call(r.ctx, cons, ctrlMsg("",
			&transport.Ctrl{Op: transport.CtrlDiscard, Buckets: moved}))
		if err != nil {
			return err
		}
		for key, seqs := range reply.DiscardedSeqs {
			ex, prodIdx, err := transport.ParseStreamKey(key)
			if err != nil {
				return err
			}
			if stateful[ex] {
				continue // covered by replay below
			}
			resends = append(resends, resend{exchange: ex, prodIdx: prodIdx, consIdx: cons.Index, seqs: seqs})
		}
		if _, err := r.rpc.call(r.ctx, cons, ctrlMsg("", &transport.Ctrl{Op: transport.CtrlEvict, Buckets: moved})); err != nil {
			return err
		}
	}
	// Install the new owner map everywhere, then replay state and re-route
	// recalled probes.
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
				&transport.Ctrl{Op: transport.CtrlSetBucketMap, BucketMap: newMap})); err != nil {
				return err
			}
		}
	}
	for _, ex := range st.topo.Inputs {
		if !ex.Stateful {
			continue
		}
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange,
				&transport.Ctrl{Op: transport.CtrlReplay, Buckets: moved})); err != nil {
				return err
			}
			r.stateReplays.Inc()
			r.obsReplays.Inc()
			r.otl.Append(obs.Event{
				Kind:          obs.KindReplay,
				AtMs:          r.nowMs(),
				Node:          string(r.node),
				Fragment:      st.topo.Fragment,
				Retrospective: true,
				Detail:        "state replay " + ex.Exchange,
			})
		}
	}
	for _, rs := range resends {
		if len(rs.seqs) == 0 {
			continue
		}
		prod, ok := r.producerRef(st, rs.exchange, rs.prodIdx)
		if !ok {
			return fmt.Errorf("core: discard report names unknown stream %s/%d", rs.exchange, rs.prodIdx)
		}
		msg := ctrlMsg(rs.exchange, &transport.Ctrl{Op: transport.CtrlResend, Seqs: rs.seqs})
		msg.ConsumerIdx = rs.consIdx
		if _, err := r.rpc.call(r.ctx, prod, msg); err != nil {
			return err
		}
		r.countMoved(st.topo.Fragment, int64(len(rs.seqs)))
	}
	return nil
}

// pauseAll pauses or resumes every producer feeding the fragment.
func (r *Responder) pauseAll(st *respState, pause bool) error {
	op := transport.CtrlResume
	if pause {
		op = transport.CtrlPause
	}
	var firstErr error
	for _, ex := range st.topo.Inputs {
		for _, prod := range ex.Producers {
			if r.nodeDead(prod.Node) {
				continue
			}
			if _, err := r.rpc.call(r.ctx, prod, ctrlMsg(ex.Exchange, &transport.Ctrl{Op: op})); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Ping probes one fragment instance's control endpoint and reports the
// transport error when the hosting machine is unreachable; sessions use it
// as the heartbeat primitive behind failure detection.
func (r *Responder) Ping(ref InstanceRef) error {
	_, err := r.rpc.call(r.ctx, ref, ctrlMsg("", &transport.Ctrl{Op: transport.CtrlPing}))
	return err
}

// CurrentWeights reports the deployed distribution vector of a managed
// fragment (dead instances at zero), or false for an unknown fragment.
func (r *Responder) CurrentWeights(fragment string) ([]float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.fragments[fragment]
	if st == nil {
		return nil, false
	}
	return append([]float64(nil), st.weights...), true
}

// nodeDead reports whether an evaluator has been diagnosed as crashed.
func (r *Responder) nodeDead(n simnet.NodeID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deadNodes[n]
}

// deadInstance reports whether one of st's instances is dead, by index or by
// hosting node.
func (r *Responder) deadInstance(st *respState, ref InstanceRef) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return st.dead[ref.Index] || r.deadNodes[ref.Node]
}

// zeroDead pins the dead components of w to zero and renormalises the rest
// proportionally; it returns nil when no live weight remains.
func zeroDead(w []float64, dead map[int]bool) []float64 {
	out := append([]float64(nil), w...)
	sum := 0.0
	for i := range out {
		if dead[i] {
			out[i] = 0
		} else {
			sum += out[i]
		}
	}
	alive := len(out) - len(dead)
	if alive <= 0 {
		return nil
	}
	if sum <= 0 {
		// Degenerate: every survivor proposed at zero — spread evenly.
		for i := range out {
			if !dead[i] {
				out[i] = 1 / float64(alive)
			}
		}
		return out
	}
	total := 0.0
	first := -1
	for i := range out {
		if dead[i] {
			continue
		}
		if first < 0 {
			first = i
		}
		out[i] /= sum
		total += out[i]
	}
	out[first] += 1 - total
	return out
}

func ctrlMsg(exchange string, ctrl *transport.Ctrl) *transport.Message {
	return &transport.Message{Kind: transport.KindControl, Exchange: exchange, Ctrl: ctrl}
}

// TopologyOf derives the adaptivity topology of every partitioned fragment
// in a physical plan; the GDQS registers these with the Diagnoser and
// Responder at deployment.
func TopologyOf(plan *physical.Plan, buckets int) []FragmentTopology {
	var out []FragmentTopology
	for _, frag := range plan.Fragments {
		if !frag.Partitioned {
			continue
		}
		topo := FragmentTopology{
			Fragment: frag.ID,
			Stateful: frag.Stateful,
			Weights:  append([]float64(nil), frag.InitialWeights...),
			Buckets:  buckets,
		}
		for i, node := range frag.Instances {
			topo.Instances = append(topo.Instances, InstanceRef{
				Index: i, Node: node, Service: "frag/" + frag.InstanceID(i),
			})
		}
		if frag.Output != nil {
			topo.Output = frag.Output.ID
			for _, cons := range plan.Fragments {
				if cons.ID != frag.Output.ConsumerFragment {
					continue
				}
				for i, node := range cons.Instances {
					topo.Downstream = append(topo.Downstream, InstanceRef{
						Index: i, Node: node, Service: "frag/" + cons.InstanceID(i),
					})
				}
			}
		}
		for _, other := range plan.Fragments {
			if other.Output == nil || other.Output.ConsumerFragment != frag.ID {
				continue
			}
			ext := ExchangeTopology{
				Exchange: other.Output.ID,
				Policy:   other.Output.Policy,
				Stateful: other.Output.Stateful,
			}
			for i, node := range other.Instances {
				ext.Producers = append(ext.Producers, InstanceRef{
					Index: i, Node: node, Service: "frag/" + other.InstanceID(i),
				})
			}
			topo.Inputs = append(topo.Inputs, ext)
		}
		out = append(out, topo)
	}
	return out
}
