// Package servebench measures the multi-query serving layer under sustained
// concurrent load: N closed-loop clients fire repeated-shape queries (point
// lookups and a filtered join whose literals rotate) at one coordinator for a
// fixed wall-clock duration, and the harness reports throughput, latency
// percentiles, plan-cache hit rate, and admission behaviour. Comparing the
// same workload with the plan cache on and off isolates what template reuse
// buys — the workload re-plans every statement when caching is disabled, and
// binds a cached template otherwise.
package servebench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/ws"
)

// Config shapes one sustained-load run.
type Config struct {
	// Clients is the number of closed-loop client goroutines (default 16).
	Clients int
	// Duration is how long the load runs in real time (default 2s).
	Duration time.Duration
	// Sequences / Interactions size the stored tables (defaults 24 / 36 —
	// small on purpose: the workload stresses the serving path, not scans).
	Sequences, Interactions int
	// CacheSize is the plan-cache capacity: 0 means the default, negative
	// disables caching so every query is planned from scratch.
	CacheSize int
	// MaxConcurrent / MaxQueue bound admission (0 = service defaults).
	MaxConcurrent int
	MaxQueue      int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Sequences <= 0 {
		c.Sequences = 24
	}
	if c.Interactions <= 0 {
		c.Interactions = 36
	}
	return c
}

// Result is one sustained-load measurement.
type Result struct {
	Clients    int     `json:"clients"`
	DurationS  float64 `json:"duration_s"`
	Queries    int64   `json:"queries"`
	Errors     int64   `json:"errors"`
	Rejected   int64   `json:"rejected"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	CacheHits  int64   `json:"cache_hits"`
	CacheMiss  int64   `json:"cache_misses"`
	HitRate    float64 `json:"hit_rate"`
	CacheOn    bool    `json:"cache_on"`
	RowsServed int64   `json:"rows_served"`
}

// Report pairs the cache-on and cache-off runs of one workload.
type Report struct {
	GeneratedAt string  `json:"generated_at"`
	CacheOn     Result  `json:"cache_on"`
	CacheOff    Result  `json:"cache_off"`
	Speedup     float64 `json:"speedup"`
}

// orf formats the i-th ORF key, matching dataset generation.
func orf(i int) string { return fmt.Sprintf("YAL%05dC", i) }

// Run executes one sustained-load measurement.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()

	// The serving benchmark measures real wall-clock throughput on a Grid
	// whose compile-and-schedule step carries its modeled OGSA-DQP cost
	// (PlanMs below): registry and factory consultations made query
	// preparation a second-scale affair in the measured system. Operator
	// costs stay tiny — the workload stresses the serving path (parse,
	// normalize, plan or bind, admit, deploy), not scans.
	prev := obs.SetDefault(obs.New())
	defer obs.SetDefault(prev)
	cluster := services.NewCluster(services.ClusterConfig{
		Scale: 2 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.001, FilterMs: 0.001, ProjectMs: 0.001,
			JoinBuildMs: 0.001, JoinProbeMs: 0.001, StartupMs: 0.001},
		BufferTuples:    64,
		CheckpointEvery: 64,
		Buckets:         64,
	})
	defer cluster.Close()
	if err := cluster.AddDataNode("data1", dataset.DemoSized(cfg.Sequences, cfg.Interactions)); err != nil {
		return nil, err
	}
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 0.001}, ws.SequenceLength{})); err != nil {
			return nil, err
		}
	}
	gcfg := services.GDQSConfig{
		Adaptive:      false,
		QueryTimeout:  time.Minute,
		PlanCacheSize: cfg.CacheSize,
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		// One simulated second of compile+schedule per cold plan —
		// conservative against OGSA-DQP's measured multi-second preparation.
		PlanMs: 1000,
	}
	g, err := services.NewGDQS(cluster, "coord", gcfg)
	if err != nil {
		return nil, err
	}

	// Two statement shapes with rotating literals: a point lookup and a
	// filtered join. Few shapes, many literals — the cache serves everything
	// from two templates while the uncached run plans every arrival.
	pointQ := func(i int) string {
		return fmt.Sprintf("select p.ORF, p.sequence from protein_sequences p where p.ORF = '%s'",
			orf(i%cfg.Sequences))
	}
	joinQ := func(i int) string {
		return fmt.Sprintf("select i.ORF2 from protein_sequences p, protein_interactions i"+
			" where i.ORF1 = p.ORF and i.ORF2 = '%s'", orf(i%cfg.Sequences))
	}

	var (
		mu        sync.Mutex
		latencies []float64
		queries   int64
		errCount  int64
		rejected  int64
		rows      int64
	)
	deadline := time.Now().Add(cfg.Duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(30*time.Second))
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]float64, 0, 1024)
			var n, errs, rej, r int64
			for i := c; time.Now().Before(deadline); i++ {
				q := pointQ(i)
				if i%2 == 1 {
					q = joinQ(i)
				}
				t0 := time.Now()
				res, err := g.Execute(ctx, q)
				local = append(local, float64(time.Since(t0))/float64(time.Millisecond))
				n++
				if err != nil {
					errs++
					if errors.Is(err, qerr.ErrRejected) {
						rej++
					}
					continue
				}
				r += int64(len(res.Rows))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			queries += n
			errCount += errs
			rejected += rej
			rows += r
			mu.Unlock()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	stats := g.PlanCacheStats()
	res := &Result{
		Clients:    cfg.Clients,
		DurationS:  elapsed.Seconds(),
		Queries:    queries,
		Errors:     errCount,
		Rejected:   rejected,
		QPS:        float64(queries) / elapsed.Seconds(),
		P50Ms:      percentile(latencies, 0.50),
		P99Ms:      percentile(latencies, 0.99),
		CacheHits:  stats.Hits,
		CacheMiss:  stats.Misses,
		HitRate:    stats.HitRate(),
		CacheOn:    cfg.CacheSize >= 0,
		RowsServed: rows,
	}
	return res, nil
}

// Compare runs the workload twice — plan cache on, then off — and reports
// the throughput ratio.
func Compare(cfg Config) (*Report, error) {
	on := cfg
	if on.CacheSize < 0 {
		on.CacheSize = 0
	}
	off := cfg
	off.CacheSize = -1

	rOn, err := Run(on)
	if err != nil {
		return nil, fmt.Errorf("servebench: cache-on run: %w", err)
	}
	rOff, err := Run(off)
	if err != nil {
		return nil, fmt.Errorf("servebench: cache-off run: %w", err)
	}
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CacheOn:     *rOn,
		CacheOff:    *rOff,
	}
	if rOff.QPS > 0 {
		rep.Speedup = rOn.QPS / rOff.QPS
	}
	return rep, nil
}

// percentile reads the p-quantile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
