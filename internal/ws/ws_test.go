package ws

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestEntropyKnownValues(t *testing.T) {
	e := Entropy{}
	tests := []struct {
		seq  string
		want float64
	}{
		{"", 0},
		{"AAAA", 0},                   // single symbol: zero entropy
		{"AC", 1},                     // two equiprobable symbols: 1 bit
		{"ACGT", 2},                   // four equiprobable symbols: 2 bits
		{strings.Repeat("AC", 50), 1}, // ratio is what matters
	}
	for _, tc := range tests {
		got, err := e.Invoke([]relation.Value{relation.String(tc.seq)})
		if err != nil {
			t.Fatalf("%q: %v", tc.seq, err)
		}
		if math.Abs(got.AsFloat()-tc.want) > 1e-9 {
			t.Errorf("entropy(%q) = %v, want %v", tc.seq, got.AsFloat(), tc.want)
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	// Property: 0 ≤ H ≤ log2(alphabet size ≤ 256) = 8 for any byte string.
	e := Entropy{}
	prop := func(s string) bool {
		v, err := e.Invoke([]relation.Value{relation.String(s)})
		if err != nil {
			return false
		}
		h := v.AsFloat()
		return h >= 0 && h <= 8+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEntropyBadArgs(t *testing.T) {
	e := Entropy{}
	for _, args := range [][]relation.Value{
		nil,
		{relation.Int(3)},
		{relation.String("A"), relation.String("B")},
	} {
		if _, err := e.Invoke(args); err == nil {
			t.Errorf("Invoke(%v): expected error", args)
		}
	}
}

func TestEntropyCost(t *testing.T) {
	if got := (Entropy{}).BaseCostMs(); got != DefaultEntropyCostMs {
		t.Errorf("default cost = %v", got)
	}
	if got := (Entropy{CostMs: 99}).BaseCostMs(); got != 99 {
		t.Errorf("custom cost = %v", got)
	}
}

func TestSequenceLength(t *testing.T) {
	s := SequenceLength{}
	v, err := s.Invoke([]relation.Value{relation.String("MALST")})
	if err != nil || v.AsInt() != 5 {
		t.Fatalf("got %v, %v", v, err)
	}
	if _, err := s.Invoke([]relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("expected error for bad arg type")
	}
	if s.ResultType() != relation.TInt || len(s.ArgTypes()) != 1 {
		t.Error("signature")
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry(Entropy{}, SequenceLength{})
	svc, err := r.Lookup("entropyanalyser") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name() != "EntropyAnalyser" {
		t.Errorf("Name = %q", svc.Name())
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Fatal("expected error")
	}
	// Register replaces.
	r.Register(Entropy{CostMs: 5})
	svc, _ = r.Lookup("EntropyAnalyser")
	if svc.BaseCostMs() != 5 {
		t.Errorf("replacement not registered: cost %v", svc.BaseCostMs())
	}
}
