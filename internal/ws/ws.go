// Package ws provides the Web Services that queries invoke as typed foreign
// functions through the operation_call operator (paper §2). The evaluation's
// Q1 calls EntropyAnalyser, an operation of the OGSA-DQP demo that analyses
// a protein sequence; here it is a real Shannon-entropy computation plus a
// modelled invocation cost, so the operator exercises a genuine computation
// while the virtual-time substrate controls how expensive it appears.
package ws

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/relation"
)

// Service is one callable Web Service operation.
type Service interface {
	// Name is the operation name as referenced in queries.
	Name() string
	// ArgTypes and ResultType describe the signature.
	ArgTypes() []relation.Type
	ResultType() relation.Type
	// BaseCostMs is the unperturbed per-invocation cost in paper ms.
	BaseCostMs() float64
	// Invoke computes the operation's value for one tuple's arguments.
	Invoke(args []relation.Value) (relation.Value, error)
}

// EntropyAnalyser computes the Shannon entropy (bits per residue) of a
// protein sequence. DefaultEntropyCostMs reflects that in the paper Q1 "is
// computation-intensive rather than data- or communication-intensive", yet
// retrieval and communication still "do contribute to the total response
// time".
const DefaultEntropyCostMs = 10.0

// Entropy is the EntropyAnalyser service.
type Entropy struct {
	// CostMs is the per-call modelled cost; zero means
	// DefaultEntropyCostMs.
	CostMs float64
}

// Name implements Service.
func (Entropy) Name() string { return "EntropyAnalyser" }

// ArgTypes implements Service.
func (Entropy) ArgTypes() []relation.Type { return []relation.Type{relation.TString} }

// ResultType implements Service.
func (Entropy) ResultType() relation.Type { return relation.TFloat }

// BaseCostMs implements Service.
func (e Entropy) BaseCostMs() float64 {
	if e.CostMs > 0 {
		return e.CostMs
	}
	return DefaultEntropyCostMs
}

// Invoke computes the Shannon entropy of the sequence argument.
func (Entropy) Invoke(args []relation.Value) (relation.Value, error) {
	if len(args) != 1 || args[0].Type() != relation.TString {
		return relation.Null, fmt.Errorf("ws: EntropyAnalyser expects one string argument")
	}
	s := args[0].AsString()
	if len(s) == 0 {
		return relation.Float(0), nil
	}
	var counts [256]int
	for i := 0; i < len(s); i++ {
		counts[s[i]]++
	}
	var h float64
	n := float64(len(s))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return relation.Float(h), nil
}

// SequenceLength is a second demo service used by tests and examples: it
// returns the length of its string argument.
type SequenceLength struct {
	// CostMs is the per-call modelled cost (may be zero: the operation is
	// trivial).
	CostMs float64
}

// Name implements Service.
func (SequenceLength) Name() string { return "SequenceLength" }

// ArgTypes implements Service.
func (SequenceLength) ArgTypes() []relation.Type { return []relation.Type{relation.TString} }

// ResultType implements Service.
func (SequenceLength) ResultType() relation.Type { return relation.TInt }

// BaseCostMs implements Service.
func (s SequenceLength) BaseCostMs() float64 { return s.CostMs }

// Invoke implements Service.
func (SequenceLength) Invoke(args []relation.Value) (relation.Value, error) {
	if len(args) != 1 || args[0].Type() != relation.TString {
		return relation.Null, fmt.Errorf("ws: SequenceLength expects one string argument")
	}
	return relation.Int(int64(len(args[0].AsString()))), nil
}

// Registry maps operation names (case-insensitively) to services. It plays
// the role of the WSDL-described service endpoints available to the query
// engine on one machine.
type Registry struct {
	mu       sync.RWMutex
	services map[string]Service
}

// NewRegistry builds a registry holding the given services.
func NewRegistry(services ...Service) *Registry {
	r := &Registry{services: make(map[string]Service, len(services))}
	for _, s := range services {
		r.Register(s)
	}
	return r
}

// Register adds or replaces a service.
func (r *Registry) Register(s Service) {
	r.mu.Lock()
	r.services[strings.ToLower(s.Name())] = s
	r.mu.Unlock()
}

// Lookup resolves an operation name.
func (r *Registry) Lookup(name string) (Service, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.services[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("ws: unknown operation %q", name)
	}
	return s, nil
}

// Services returns the registered services in unspecified order; the GDQS
// uses it to populate the metadata catalog with callable operations.
func (r *Registry) Services() []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Service, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s)
	}
	return out
}
