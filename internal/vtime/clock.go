// Package vtime provides the virtual-time substrate of the simulated Grid.
//
// The paper's experiments run on three physical machines and report
// wall-clock response times in the order of minutes. Here every modelled
// cost — CPU work per tuple, web-service invocation, buffer transmission —
// is expressed in *paper milliseconds* and converted to a (much smaller)
// real sleep through a Clock with a configurable scale, so an experiment
// that took minutes on the 2005 testbed completes in well under a second
// while preserving every cost ratio. All results are reported normalised,
// exactly as in the paper, so the absolute scale cancels out.
//
// Because scaled costs can be only a few microseconds of real time, naive
// per-tuple time.Sleep calls would be dominated by timer slop. A Meter
// therefore accumulates virtual debt and sleeps in larger quanta, keeping
// long-run rates accurate to well under a percent.
package vtime

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// DefaultScale is the default real duration of one paper millisecond.
const DefaultScale = 20 * time.Microsecond

// Clock converts between paper milliseconds and wall-clock time. A Clock is
// immutable after creation and safe for concurrent use.
type Clock struct {
	scale time.Duration // real duration per paper millisecond
	start time.Time
}

// NewClock returns a clock where one paper millisecond lasts scale of real
// time. A non-positive scale panics: a zero scale would make every modelled
// cost free and the experiments meaningless.
func NewClock(scale time.Duration) *Clock {
	if scale <= 0 {
		panic(fmt.Sprintf("vtime: non-positive scale %v", scale))
	}
	return &Clock{scale: scale, start: time.Now()}
}

// Scale returns the real duration of one paper millisecond.
func (c *Clock) Scale() time.Duration { return c.scale }

// NowMs returns the paper milliseconds elapsed since the clock was created.
func (c *Clock) NowMs() float64 {
	return float64(time.Since(c.start)) / float64(c.scale)
}

// DurationOf converts a paper-millisecond cost to a real duration.
func (c *Clock) DurationOf(ms float64) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms * float64(c.scale))
}

// MsOf converts a real duration to paper milliseconds.
func (c *Clock) MsOf(d time.Duration) float64 {
	return float64(d) / float64(c.scale)
}

// Sleep blocks for the given paper-millisecond cost. Prefer a Meter inside
// per-tuple loops.
func (c *Clock) Sleep(ms float64) {
	if d := c.DurationOf(ms); d > 0 {
		time.Sleep(d)
	}
}

// Meter accumulates fine-grained virtual costs and converts them to real
// sleeps in coarser quanta. Charging is goroutine-confined — each fragment
// driver or pool worker owns one — but ChargedMs may be read from any
// goroutine (the parallel driver's monitor sums live worker meters).
type Meter struct {
	clock   *Clock
	quantum time.Duration // sleep once debt exceeds this
	debt    time.Duration
	charged atomic.Uint64 // total paper ms ever charged, as float64 bits
}

// DefaultQuantum is the real-time granularity at which a Meter converts
// accumulated virtual debt into sleeps. 200µs is large enough that Linux
// timer slop (~50µs) stays below a few percent of each sleep.
const DefaultQuantum = 200 * time.Microsecond

// NewMeter returns a meter over clock with the default quantum.
func NewMeter(clock *Clock) *Meter {
	return &Meter{clock: clock, quantum: DefaultQuantum}
}

// Charge records a cost of ms paper milliseconds, sleeping if enough debt
// has accumulated.
func (m *Meter) Charge(ms float64) {
	if ms <= 0 {
		return
	}
	m.charged.Store(math.Float64bits(m.ChargedMs() + ms))
	m.debt += m.clock.DurationOf(ms)
	if m.debt >= m.quantum {
		m.settle()
	}
}

// Flush sleeps off any remaining debt. Call it before a blocking operation
// (such as waiting on an empty queue) so that the modelled cost is fully
// paid before the goroutine parks.
func (m *Meter) Flush() {
	if m.debt > 0 {
		m.settle()
	}
}

// ChargedMs returns the total paper milliseconds ever charged to the meter.
func (m *Meter) ChargedMs() float64 { return math.Float64frombits(m.charged.Load()) }

func (m *Meter) settle() {
	begin := time.Now()
	time.Sleep(m.debt)
	// Credit oversleep back so long-run rates stay exact even when the OS
	// timer overshoots: debt goes negative and absorbs future charges.
	m.debt -= time.Since(begin)
	if m.debt < -10*m.quantum {
		m.debt = -10 * m.quantum // bound the credit to avoid free work bursts
	}
}
