package vtime

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		// probe: Apply(1, idx) expected value (NaN-free specs only)
		idx  int
		want float64
	}{
		{"", 0, 1},
		{"none", 0, 1},
		{"x10", 0, 10},
		{" x2.5 ", 0, 2.5},
		{"sleep:10", 0, 11},
		{"x10@5", 4, 1},
		{"x10@5", 5, 10},
		{"sleep:3@2", 2, 4},
	}
	for _, tc := range cases {
		p, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got := p.Apply(1, tc.idx); got != tc.want {
			t.Errorf("Parse(%q).Apply(1,%d) = %v, want %v", tc.spec, tc.idx, got, tc.want)
		}
	}
}

func TestParseNormal(t *testing.T) {
	p, err := Parse("normal:20,40")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := p.Apply(1, i)
		if v < 20 || v > 40 {
			t.Fatalf("out of range: %v", v)
		}
	}
	p2, err := Parse("normal:20,40:9")
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != "normal[20,40]" {
		t.Errorf("String = %q", p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"x", "xabc", "x0", "x-1",
		"sleep:", "sleep:abc", "sleep:-1",
		"normal:", "normal:5", "normal:5,1", "normal:a,b", "normal:1,2:zz",
		"wibble", "x10@", "x10@-1", "x10@abc",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}
