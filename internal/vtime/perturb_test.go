package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNonePerturbation(t *testing.T) {
	if got := None.Apply(7, 0); got != 7 {
		t.Errorf("None.Apply(7) = %v", got)
	}
	if None.String() != "none" {
		t.Error("None.String")
	}
}

func TestMultiplier(t *testing.T) {
	m := Multiplier(10)
	if got := m.Apply(16, 3); got != 160 {
		t.Errorf("x10.Apply(16) = %v", got)
	}
	if m.String() != "x10" {
		t.Errorf("String = %q", m.String())
	}
}

func TestSleep(t *testing.T) {
	s := Sleep(10)
	if got := s.Apply(2, 0); got != 12 {
		t.Errorf("sleep(10).Apply(2) = %v", got)
	}
	if s.String() != "sleep(10ms)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestNormalMultiplierBounds(t *testing.T) {
	n := NewNormalMultiplier(1, 60, 42)
	for i := 0; i < 5000; i++ {
		got := n.Apply(1, i)
		if got < 1 || got > 60 {
			t.Fatalf("Apply out of range: %v", got)
		}
	}
}

func TestNormalMultiplierMeanStable(t *testing.T) {
	// Paper Fig. 5: the mean of the jittered multiplier must match the
	// stable 30× case for each of the tested ranges.
	for _, rng := range [][2]float64{{25, 35}, {20, 40}, {1, 60}} {
		n := NewNormalMultiplier(rng[0], rng[1], 7)
		sum := 0.0
		const trials = 20000
		for i := 0; i < trials; i++ {
			sum += n.Apply(1, i)
		}
		mean := sum / trials
		if math.Abs(mean-30) > 1.0 {
			t.Errorf("range %v: mean %v, want ≈30", rng, mean)
		}
	}
}

func TestNormalMultiplierRejectsBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNormalMultiplier(5, 1, 0)
}

func TestStep(t *testing.T) {
	s := Step{At: 10, Before: None, After: Multiplier(5)}
	if got := s.Apply(2, 9); got != 2 {
		t.Errorf("before step: %v", got)
	}
	if got := s.Apply(2, 10); got != 10 {
		t.Errorf("after step: %v", got)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestCompose(t *testing.T) {
	c := Compose(Multiplier(10), Sleep(5))
	if got := c.Apply(2, 0); got != 25 {
		t.Errorf("compose = %v, want 25", got)
	}
	if c.String() != "x10+sleep(5ms)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestPerturbationNonNegativeProperty(t *testing.T) {
	// Property: all shipped perturbations map non-negative base costs to
	// non-negative perturbed costs.
	n := NewNormalMultiplier(2, 8, 1)
	perts := []Perturbation{None, Multiplier(3), Sleep(4), n,
		Step{At: 5, Before: None, After: Multiplier(2)}}
	prop := func(base float64, idx uint8) bool {
		b := math.Abs(base)
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		for _, p := range perts {
			if p.Apply(b, int(idx)) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestApplyNMatchesSequential pins the equivalence the batched engine relies
// on: ApplyN over [start, start+count) must equal count sequential Apply
// calls for every deterministic perturbation shape, including a Step whose
// boundary falls inside the range.
func TestApplyNMatchesSequential(t *testing.T) {
	perts := []Perturbation{
		None,
		Multiplier(10),
		Sleep(4),
		Step{At: 7, Before: None, After: Multiplier(20)},
		Step{At: 7, Before: Sleep(2), After: Step{At: 3, Before: Multiplier(2), After: Sleep(9)}},
		Compose(Multiplier(3), Sleep(1)),
	}
	for _, p := range perts {
		for _, span := range []struct{ start, count int }{
			{0, 1}, {0, 5}, {0, 20}, {3, 8}, {6, 1}, {7, 4}, {9, 12}, {5, 0},
		} {
			want := 0.0
			for k := 0; k < span.count; k++ {
				want += p.Apply(1.5, span.start+k)
			}
			got := ApplyN(p, 1.5, span.start, span.count)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s: ApplyN(start=%d,count=%d) = %v, sequential sum = %v",
					p, span.start, span.count, got, want)
			}
		}
	}
}
