package vtime

import (
	"math"
	"sync/atomic"
	"time"
)

// SharedMeter is the concurrency-safe counterpart of Meter: many goroutines
// may Charge it at once. Charged totals accumulate through a lock-free CAS
// loop and debt through an atomic add; the goroutine whose charge tips the
// accumulated debt over the quantum swaps the whole debt out and sleeps it
// off, so the long-run rate matches a single Meter while other chargers
// proceed unblocked. Worker pools use one per shared operator (hash-join
// insert path, replay absorption), where the goroutine-confined Meter's
// single-owner contract cannot hold.
type SharedMeter struct {
	clock   *Clock
	quantum time.Duration
	// chargedBits holds math.Float64bits of the total paper ms ever charged.
	chargedBits atomic.Uint64
	// debtNs is the accumulated unslept debt in nanoseconds; it may go
	// negative when the OS timer overshoots (bounded oversleep credit).
	debtNs atomic.Int64
}

// NewSharedMeter returns a concurrency-safe meter over clock with the
// default quantum.
func NewSharedMeter(clock *Clock) *SharedMeter {
	return &SharedMeter{clock: clock, quantum: DefaultQuantum}
}

// Charge records a cost of ms paper milliseconds. The caller sleeps only if
// its charge tips the accumulated debt over the quantum.
func (m *SharedMeter) Charge(ms float64) {
	if ms <= 0 {
		return
	}
	for {
		old := m.chargedBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + ms)
		if m.chargedBits.CompareAndSwap(old, nv) {
			break
		}
	}
	d := m.clock.DurationOf(ms)
	if d <= 0 {
		return
	}
	if m.debtNs.Add(int64(d)) >= int64(m.quantum) {
		m.settle()
	}
}

// Flush sleeps off any remaining positive debt.
func (m *SharedMeter) Flush() {
	if m.debtNs.Load() > 0 {
		m.settle()
	}
}

// ChargedMs returns the total paper milliseconds ever charged.
func (m *SharedMeter) ChargedMs() float64 {
	return math.Float64frombits(m.chargedBits.Load())
}

// settle swaps the debt out and sleeps it; concurrent chargers keep
// accumulating fresh debt meanwhile. Oversleep is credited back, clamped to
// the same bound as Meter so free-work bursts stay limited.
func (m *SharedMeter) settle() {
	owed := m.debtNs.Swap(0)
	if owed <= 0 {
		m.debtNs.Add(owed) // restore credit taken by the swap
		return
	}
	begin := time.Now()
	time.Sleep(time.Duration(owed))
	over := int64(time.Since(begin)) - owed
	if over <= 0 {
		return
	}
	if m.debtNs.Add(-over) < -10*int64(m.quantum) {
		// Benignly racy clamp: the bound is a heuristic, not an invariant.
		m.debtNs.Store(-10 * int64(m.quantum))
	}
}
