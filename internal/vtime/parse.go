package vtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Perturbation from a compact textual spec, used by command
// line flags:
//
//	none                 no perturbation
//	x10                  constant 10× multiplier
//	sleep:10             add 10 paper-ms per work unit
//	normal:20,40         per-unit multiplier ~ N(30, (20/6)²) clamped
//	normal:20,40:7       same with explicit seed
//	x10@500              no load for 500 work units, then 10×
//	sleep:10@500         same for sleep injection
func Parse(spec string) (Perturbation, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return None, nil
	}
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		n, err := strconv.Atoi(spec[at+1:])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("vtime: bad step offset in %q", spec)
		}
		inner, err := Parse(spec[:at])
		if err != nil {
			return nil, err
		}
		return Step{At: n, Before: None, After: inner}, nil
	}
	switch {
	case strings.HasPrefix(spec, "x"):
		k, err := strconv.ParseFloat(spec[1:], 64)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("vtime: bad multiplier %q", spec)
		}
		return Multiplier(k), nil
	case strings.HasPrefix(spec, "sleep:"):
		ms, err := strconv.ParseFloat(spec[len("sleep:"):], 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("vtime: bad sleep %q", spec)
		}
		return Sleep(ms), nil
	case strings.HasPrefix(spec, "normal:"):
		rest := spec[len("normal:"):]
		var seed int64 = 1
		if i := strings.Index(rest, ":"); i >= 0 {
			s, err := strconv.ParseInt(rest[i+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vtime: bad seed in %q", spec)
			}
			seed = s
			rest = rest[:i]
		}
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("vtime: bad normal range %q", spec)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || hi < lo {
			return nil, fmt.Errorf("vtime: bad normal range %q", spec)
		}
		return NewNormalMultiplier(lo, hi, seed), nil
	default:
		return nil, fmt.Errorf("vtime: unknown perturbation spec %q", spec)
	}
}
