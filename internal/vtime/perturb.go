package vtime

import (
	"fmt"
	"math/rand"
	"sync"
)

// Perturbation models an artificial load on a machine, following §3.2 of the
// paper, which creates load by (i) iterating a computation k times —
// a multiplicative slowdown — and (ii) inserting sleep() calls before each
// tuple — an additive slowdown. Apply maps the base cost of the i-th unit of
// work on the perturbed machine to its perturbed cost, in paper ms.
//
// Implementations must be safe for concurrent use; a node's operators may
// run on several goroutines.
type Perturbation interface {
	Apply(baseMs float64, workIndex int) float64
	// String describes the perturbation for experiment reports.
	String() string
}

// None is the identity perturbation: an unperturbed machine.
var None Perturbation = noneP{}

type noneP struct{}

func (noneP) Apply(base float64, _ int) float64 { return base }
func (noneP) String() string                    { return "none" }

// Multiplier perturbs work by a constant factor, modelling the paper's
// "programming a computation to iterate over the same function multiple
// times": a 10× multiplier makes each WS call ten times costlier.
type Multiplier float64

// Apply implements Perturbation.
func (m Multiplier) Apply(base float64, _ int) float64 { return base * float64(m) }

// String renders the perturbation in the syntax Parse accepts.
func (m Multiplier) String() string { return fmt.Sprintf("x%g", float64(m)) }

// Sleep perturbs work by inserting a fixed extra cost before each unit,
// modelling the paper's "inserting sleep() calls" (e.g. sleep(10msecs)
// before the processing of each tuple by the join).
type Sleep float64

// Apply implements Perturbation.
func (s Sleep) Apply(base float64, _ int) float64 { return base + float64(s) }

// String renders the perturbation in the syntax Parse accepts.
func (s Sleep) String() string { return fmt.Sprintf("sleep(%gms)", float64(s)) }

// NormalMultiplier varies the multiplier per work unit in a normally
// distributed way with a stable mean, as in the paper's "Rapid Changes"
// experiment (Fig. 5): the factor is drawn from N((lo+hi)/2, ((hi-lo)/6)²)
// and clamped to [lo, hi], so e.g. [1,60] has the same mean as a stable 30×
// but fluctuates wildly between tuples.
type NormalMultiplier struct {
	lo, hi float64
	mu     sync.Mutex
	rng    *rand.Rand
}

// NewNormalMultiplier builds the jittered multiplier for the range [lo, hi]
// with a deterministic seed.
func NewNormalMultiplier(lo, hi float64, seed int64) *NormalMultiplier {
	if hi < lo {
		panic(fmt.Sprintf("vtime: invalid normal multiplier range [%g,%g]", lo, hi))
	}
	return &NormalMultiplier{lo: lo, hi: hi, rng: rand.New(rand.NewSource(seed))}
}

// Apply implements Perturbation.
func (n *NormalMultiplier) Apply(base float64, _ int) float64 {
	mean := (n.lo + n.hi) / 2
	sigma := (n.hi - n.lo) / 6
	n.mu.Lock()
	k := n.rng.NormFloat64()*sigma + mean
	n.mu.Unlock()
	if k < n.lo {
		k = n.lo
	}
	if k > n.hi {
		k = n.hi
	}
	return base * k
}

// String renders the perturbation for logs.
func (n *NormalMultiplier) String() string {
	return fmt.Sprintf("normal[%g,%g]", n.lo, n.hi)
}

// Step switches from one perturbation to another after the node has
// processed a given number of work units. It models a machine whose load
// changes mid-query, the scenario motivating adaptivity in the first place.
type Step struct {
	At     int // work index at which the switch happens
	Before Perturbation
	After  Perturbation
}

// Apply implements Perturbation.
func (s Step) Apply(base float64, i int) float64 {
	if i < s.At {
		return s.Before.Apply(base, i)
	}
	return s.After.Apply(base, i-s.At)
}

// String renders the perturbation for logs.
func (s Step) String() string {
	return fmt.Sprintf("step@%d(%s->%s)", s.At, s.Before, s.After)
}

// ApplyN returns the total perturbed cost of count work units with a uniform
// base cost, the first unit at work index start — exactly equivalent to
// summing count sequential Apply calls with consecutive indices. Index- and
// state-independent perturbations (None, Multiplier, Sleep) collapse to one
// multiplication; Step splits at its boundary; everything else (random or
// composed perturbations) falls back to the per-unit loop so stateful draws
// happen once per unit, exactly as in the sequential engine.
func ApplyN(p Perturbation, baseMs float64, start, count int) float64 {
	if count <= 0 {
		return 0
	}
	switch q := p.(type) {
	case noneP:
		return baseMs * float64(count)
	case Multiplier:
		return baseMs * float64(q) * float64(count)
	case Sleep:
		return (baseMs + float64(q)) * float64(count)
	case Step:
		if start >= q.At {
			return ApplyN(q.After, baseMs, start-q.At, count)
		}
		if start+count <= q.At {
			return ApplyN(q.Before, baseMs, start, count)
		}
		before := q.At - start
		return ApplyN(q.Before, baseMs, start, before) +
			ApplyN(q.After, baseMs, 0, count-before)
	default:
		total := 0.0
		for k := 0; k < count; k++ {
			total += p.Apply(baseMs, start+k)
		}
		return total
	}
}

// ApplyBatch returns the total perturbed cost of one work unit per base
// cost, the first unit at work index start — exactly equivalent to summing
// len(baseMs) sequential Apply calls with consecutive indices. Like ApplyN
// it collapses the index- and state-independent perturbations (None,
// Multiplier, Sleep) to one summation pass, splits Step at its boundary,
// and falls back to the per-unit loop for everything else.
func ApplyBatch(p Perturbation, baseMs []float64, start int) float64 {
	if len(baseMs) == 0 {
		return 0
	}
	switch q := p.(type) {
	case noneP:
		total := 0.0
		for _, base := range baseMs {
			total += base
		}
		return total
	case Multiplier:
		total := 0.0
		for _, base := range baseMs {
			total += base
		}
		return total * float64(q)
	case Sleep:
		total := float64(q) * float64(len(baseMs))
		for _, base := range baseMs {
			total += base
		}
		return total
	case Step:
		if start >= q.At {
			return ApplyBatch(q.After, baseMs, start-q.At)
		}
		if start+len(baseMs) <= q.At {
			return ApplyBatch(q.Before, baseMs, start)
		}
		before := q.At - start
		return ApplyBatch(q.Before, baseMs[:before], start) +
			ApplyBatch(q.After, baseMs[before:], 0)
	default:
		total := 0.0
		for k, base := range baseMs {
			total += p.Apply(base, start+k)
		}
		return total
	}
}

// Compose applies q to the result of p, so Compose(Multiplier(10),
// Sleep(5)) costs base*10+5.
func Compose(p, q Perturbation) Perturbation { return composed{p, q} }

type composed struct{ p, q Perturbation }

func (c composed) Apply(base float64, i int) float64 {
	return c.q.Apply(c.p.Apply(base, i), i)
}

func (c composed) String() string { return c.p.String() + "+" + c.q.String() }
