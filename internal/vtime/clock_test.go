package vtime

import (
	"testing"
	"time"
)

func TestClockConversions(t *testing.T) {
	c := NewClock(10 * time.Microsecond)
	if got := c.DurationOf(100); got != time.Millisecond {
		t.Errorf("DurationOf(100) = %v, want 1ms", got)
	}
	if got := c.DurationOf(-5); got != 0 {
		t.Errorf("DurationOf(-5) = %v, want 0", got)
	}
	if got := c.MsOf(time.Millisecond); got != 100 {
		t.Errorf("MsOf(1ms) = %v, want 100", got)
	}
	if c.Scale() != 10*time.Microsecond {
		t.Errorf("Scale = %v", c.Scale())
	}
}

func TestClockRejectsBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero scale")
		}
	}()
	NewClock(0)
}

func TestClockNowAdvances(t *testing.T) {
	c := NewClock(time.Microsecond)
	before := c.NowMs()
	time.Sleep(2 * time.Millisecond)
	after := c.NowMs()
	if after-before < 1000 { // 2ms real = 2000 paper-ms at 1µs scale
		t.Errorf("NowMs advanced only %v paper-ms over 2ms real", after-before)
	}
}

func TestMeterChargesAccumulate(t *testing.T) {
	c := NewClock(time.Microsecond)
	m := NewMeter(c)
	for i := 0; i < 100; i++ {
		m.Charge(3)
	}
	m.Charge(0)
	m.Charge(-1)
	if got := m.ChargedMs(); got != 300 {
		t.Errorf("ChargedMs = %v, want 300", got)
	}
}

func TestMeterRateAccuracy(t *testing.T) {
	// 2000 charges of 1 paper-ms at 5µs/ms should take ~10ms of real time;
	// allow generous slop for CI schedulers but catch gross errors (i.e. a
	// meter that never sleeps or sleeps per-charge with 100µs slop each).
	c := NewClock(5 * time.Microsecond)
	m := NewMeter(c)
	start := time.Now()
	for i := 0; i < 2000; i++ {
		m.Charge(1)
	}
	m.Flush()
	got := time.Since(start)
	want := 10 * time.Millisecond
	if got < want*8/10 {
		t.Errorf("meter too fast: %v for %v of modelled work", got, want)
	}
	if got > want*3 {
		t.Errorf("meter too slow: %v for %v of modelled work", got, want)
	}
}

func TestMeterFlushPaysDebt(t *testing.T) {
	c := NewClock(100 * time.Microsecond)
	m := NewMeter(c)
	m.Charge(0.5) // 50µs of debt, below the quantum
	start := time.Now()
	m.Flush()
	if time.Since(start) < 30*time.Microsecond {
		t.Error("Flush did not pay outstanding debt")
	}
	m.Flush() // second flush is a no-op (debt ≤ 0)
}
