// Package registry implements the resource registry the GDQS contacts at
// query-compile time (paper §2): it lists the computational resources
// (machines that can host evaluation services) and data resources (machines
// exposing Grid Data Services) available to a query, together with the
// static capability metadata the scheduler uses for its initial, pre-
// adaptation placement.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simnet"
)

// ComputeResource describes a machine able to host a query evaluation
// service.
type ComputeResource struct {
	Node simnet.NodeID
	// RelativeSpeed is the registry's static claim about CPU speed, with
	// 1.0 the reference machine. The whole point of the paper is that this
	// claim goes stale at runtime; the scheduler uses it only for the
	// initial distribution.
	RelativeSpeed float64
}

// DataResource describes a machine exposing one or more tables through a
// Grid Data Service.
type DataResource struct {
	Node   simnet.NodeID
	Tables []string
}

// Registry is a thread-safe directory of Grid resources.
type Registry struct {
	mu      sync.RWMutex
	compute map[simnet.NodeID]ComputeResource
	data    map[simnet.NodeID]DataResource
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		compute: make(map[simnet.NodeID]ComputeResource),
		data:    make(map[simnet.NodeID]DataResource),
	}
}

// RegisterCompute advertises a computational resource. A non-positive
// relative speed is rejected.
func (r *Registry) RegisterCompute(node simnet.NodeID, relativeSpeed float64) error {
	if relativeSpeed <= 0 {
		return fmt.Errorf("registry: non-positive speed %g for %q", relativeSpeed, node)
	}
	r.mu.Lock()
	r.compute[node] = ComputeResource{Node: node, RelativeSpeed: relativeSpeed}
	r.mu.Unlock()
	return nil
}

// RegisterData advertises a data resource hosting the given tables.
func (r *Registry) RegisterData(node simnet.NodeID, tables ...string) {
	r.mu.Lock()
	r.data[node] = DataResource{Node: node, Tables: append([]string(nil), tables...)}
	r.mu.Unlock()
}

// ComputeResources returns the advertised computational resources, sorted
// by node ID for deterministic scheduling.
func (r *Registry) ComputeResources() []ComputeResource {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ComputeResource, 0, len(r.compute))
	for _, c := range r.compute {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// DataResourceFor returns the data resource hosting the named table.
func (r *Registry) DataResourceFor(table string) (DataResource, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var found []DataResource
	for _, d := range r.data {
		for _, t := range d.Tables {
			if t == table {
				found = append(found, d)
			}
		}
	}
	if len(found) == 0 {
		return DataResource{}, fmt.Errorf("registry: no data resource hosts table %q", table)
	}
	// Prefer the lexicographically first for determinism when replicated.
	sort.Slice(found, func(i, j int) bool { return found[i].Node < found[j].Node })
	return found[0], nil
}
