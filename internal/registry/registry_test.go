package registry

import "testing"

func TestRegisterCompute(t *testing.T) {
	r := New()
	if err := r.RegisterCompute("ws1", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterCompute("ws0", 2.0); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterCompute("bad", 0); err == nil {
		t.Fatal("expected error for zero speed")
	}
	got := r.ComputeResources()
	if len(got) != 2 || got[0].Node != "ws0" || got[1].Node != "ws1" {
		t.Fatalf("ComputeResources = %v (want sorted ws0, ws1)", got)
	}
	if got[0].RelativeSpeed != 2.0 {
		t.Errorf("speed = %v", got[0].RelativeSpeed)
	}
}

func TestRegisterComputeOverwrite(t *testing.T) {
	r := New()
	_ = r.RegisterCompute("a", 1)
	_ = r.RegisterCompute("a", 3)
	got := r.ComputeResources()
	if len(got) != 1 || got[0].RelativeSpeed != 3 {
		t.Fatalf("overwrite failed: %v", got)
	}
}

func TestDataResourceLookup(t *testing.T) {
	r := New()
	r.RegisterData("data1", "protein_sequences", "protein_interactions")
	d, err := r.DataResourceFor("protein_sequences")
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != "data1" {
		t.Errorf("node = %v", d.Node)
	}
	if _, err := r.DataResourceFor("nope"); err == nil {
		t.Fatal("expected error for unhosted table")
	}
}

func TestDataResourceReplicatedDeterministic(t *testing.T) {
	r := New()
	r.RegisterData("data2", "t")
	r.RegisterData("data1", "t")
	d, err := r.DataResourceFor("t")
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != "data1" {
		t.Errorf("replicated table resolved to %v, want data1 (deterministic)", d.Node)
	}
}
