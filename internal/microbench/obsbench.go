package microbench

import (
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
)

// obsChainDrain drains the batch chain while performing exactly the per-batch
// registry traffic the instrumented fragment driver performs: one counter add
// and one histogram observation per batch. With a nil layer the resolved
// handles are nil and every operation is a single-branch no-op, so the pair
// of benchmarks brackets the monitoring overhead of the observability layer
// on the hot path.
func obsChainDrain(b *testing.B, o *obs.Obs) {
	produced := o.Counter(obs.Label(obs.MEngineTuplesProduced, "fragment", "bench"))
	batchSize := o.Histogram(obs.MEngineBatchSize, obs.DefBucketsSize)
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := chainPlan(b)
		if err := it.Open(chainCtx()); err != nil {
			b.Fatal(err)
		}
		batch := relation.GetBatch()
		rows := 0
		for {
			n, err := engine.FillBatch(it, batch)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			produced.Add(int64(n))
			batchSize.Observe(float64(n))
			rows += n
		}
		batch.Release()
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != chainRows-1 {
			b.Fatalf("drained %d rows, want %d", rows, chainRows-1)
		}
	}
	b.ReportMetric(float64(chainRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// ObsMonitoringOverhead drains the batch chain with live registry handles.
// Compare against ObsMonitoringOverheadBaseline: the instrumented drain must
// stay within 5% of the uninstrumented one.
func ObsMonitoringOverhead(b *testing.B) {
	obsChainDrain(b, obs.New())
}

// ObsMonitoringOverheadBaseline is the same drain with instrumentation
// disabled (nil handles).
func ObsMonitoringOverheadBaseline(b *testing.B) {
	obsChainDrain(b, nil)
}
