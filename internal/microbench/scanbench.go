package microbench

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Stored-scan benchmarks: a posix-resident synthetic table (string key,
// int64 value, 16-byte string payload) drained tuple-at-a-time through the
// legacy run cursor versus batch-at-a-time through the block scan, plus the
// readahead producer on and off. They price the streaming scan engine
// against the path it replaced — the scaling gate holds the batched path to
// >= 2x the cursor path's throughput.

// scanRows sizes the stored-scan benchmark table: ~300KB encoded at the
// 16-byte synthetic payload, a handful of 64KiB blocks per drain.
const scanRows = 8192

// cursorOnlyBackend hides the BlockBackend upgrade of the wrapped backend,
// forcing table scans down the tuple-at-a-time cursor fallback.
type cursorOnlyBackend struct {
	storage.Backend
}

// scanTables lazily generates the benchmark table twice on posix — once
// block-readable, once behind the cursor-only wrapper — so both paths read
// identical bytes from disk.
var (
	scanOnce        sync.Once
	scanBlockStore  *dataset.Store
	scanCursorStore *dataset.Store
	scanErr         error
)

func scanSetup() (*dataset.Store, *dataset.Store, error) {
	scanOnce.Do(func() {
		for i, out := range []**dataset.Store{&scanBlockStore, &scanCursorStore} {
			dir, err := os.MkdirTemp("", "dqp-scanbench-")
			if err != nil {
				scanErr = err
				return
			}
			posix, err := storage.NewPosix(dir)
			if err != nil {
				scanErr = err
				return
			}
			var backend storage.Backend = posix
			if i == 1 {
				backend = cursorOnlyBackend{Backend: posix}
			}
			tbl, err := dataset.WriteSynthetic(backend, "base/scanbench", dataset.SyntheticSpec{Name: "scanbench", Rows: scanRows, PayloadBytes: 16, Seed: 5})
			if err != nil {
				scanErr = err
				return
			}
			s := dataset.NewStore()
			s.Add(tbl)
			*out = s
		}
	})
	return scanBlockStore, scanCursorStore, scanErr
}

// drainScan opens a fresh scan over store and drains it, tuple- or
// batch-at-a-time. Unlike the zero-cost operator chains, the scan runs under
// the default cost model: per-tuple cost accounting — the byte-size walk,
// the perturbation lookup, the meter round trip — is part of what the
// batched path amortizes into one bundled charge per batch, exactly as in
// production fragments. The modelled virtual cost is identical either way;
// the nanosecond clock scale keeps its real duration negligible.
func drainScan(b *testing.B, store *dataset.Store, readahead int, batched bool) {
	b.Helper()
	ctx := chainCtx()
	ctx.Costs = engine.DefaultCosts()
	ctx.Store = store
	ctx.Readahead = readahead
	scan := &engine.TableScan{Table: "scanbench"}
	if err := scan.Open(ctx); err != nil {
		b.Fatal(err)
	}
	rows := 0
	if batched {
		batch := relation.NewBatch(1024)
		for {
			n, err := scan.NextBatch(batch)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			rows += n
		}
	} else {
		for {
			_, ok, err := scan.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
	}
	if err := scan.Close(); err != nil {
		b.Fatal(err)
	}
	if rows != scanRows {
		b.Fatalf("scanned %d rows, want %d", rows, scanRows)
	}
}

// scanBench is the shared harness of the four stored-scan benchmarks.
func scanBench(b *testing.B, cursor bool, readahead int, batched bool) {
	blockStore, cursorStore, err := scanSetup()
	if err != nil {
		b.Fatal(err)
	}
	store := blockStore
	if cursor {
		store = cursorStore
	}
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainScan(b, store, readahead, batched)
	}
	b.ReportMetric(float64(scanRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// ScanStoredTuple drains the posix table tuple-at-a-time through the legacy
// run cursor (per-op = one full drain of scanRows tuples).
func ScanStoredTuple(b *testing.B) { scanBench(b, true, 0, false) }

// ScanStoredBatch drains the posix table batch-at-a-time through the block
// scan with default readahead (per-op = one full drain of scanRows tuples).
func ScanStoredBatch(b *testing.B) { scanBench(b, false, 0, true) }

// ScanReadaheadOn drains the block scan with the double-buffering readahead
// producer on (per-op = one full drain of scanRows tuples).
func ScanReadaheadOn(b *testing.B) { scanBench(b, false, 2, true) }

// ScanReadaheadOff drains the block scan synchronously, readahead disabled
// (per-op = one full drain of scanRows tuples).
func ScanReadaheadOff(b *testing.B) { scanBench(b, false, -1, true) }
