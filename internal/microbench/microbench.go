// Package microbench holds the engine's micro-benchmarks as plain functions
// so they can run both under `go test -bench` (see microbench_test.go) and
// from cmd/dqp-experiments, which executes them via testing.Benchmark and
// writes the results to BENCH_micro.json. The benchmarks isolate the three
// hot paths the batch-vectorized pipeline optimizes: the tuple codec, the
// exchange producer, and the operator chain itself (volcano vs batch).
package microbench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/scalar"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// sampleTuple is a representative row: a key, a 60-char payload, a float.
func sampleTuple() relation.Tuple {
	return relation.Tuple{
		relation.String("YAL00042W"),
		relation.String("MSTNAKQLVDLLNRQEGLTREQFEEYIKQLQKQGVELVVDENNQPTLRKGSAGGASTQ"),
		relation.Float(4.25),
	}
}

// TupleEncode measures encoding one tuple into a pooled buffer.
func TupleEncode(b *testing.B) {
	t := sampleTuple()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := relation.GetEncodeBuffer()
		buf = relation.AppendTuple(buf, t)
		relation.PutEncodeBuffer(buf)
	}
}

// TupleDecode measures decoding one tuple.
func TupleDecode(b *testing.B) {
	enc := relation.EncodeTuple(sampleTuple())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := relation.DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// TupleDecodeInto measures decoding one tuple into an arena — the transport
// receive path.
func TupleDecodeInto(b *testing.B) {
	enc := relation.EncodeTuple(sampleTuple())
	var a relation.Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := relation.DecodeTupleInto(&a, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// sendBatchSize is the batch the producer benchmark routes per call.
const sendBatchSize = relation.DefaultBatchSize

// ProducerSendBatch measures routing one 256-tuple batch through a weighted
// exchange producer over the in-proc transport (per-op = per batch).
func ProducerSendBatch(b *testing.B) {
	clock := vtime.NewClock(time.Nanosecond)
	net := simnet.NewNetwork(clock)
	net.AddNode("src")
	net.AddNode("sink")
	tr := transport.NewInProc(net)
	consumers := 4
	addrs := make([]engine.Addr, consumers)
	for i := 0; i < consumers; i++ {
		svc := fmt.Sprintf("cons/%d", i)
		tr.Register("sink", svc, func(simnet.NodeID, *transport.Message) {})
		addrs[i] = engine.Addr{Node: "sink", Service: svc}
	}
	pol, err := engine.NewWeightedPolicy([]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		b.Fatal(err)
	}
	prod := engine.NewProducer(engine.ProducerConfig{
		Exchange: "EX", Fragment: "F", Instance: 0,
		ConsumerFragment: "G", Consumers: addrs,
		Est: int64(b.N) * sendBatchSize, Policy: pol, Transport: tr, Node: "src",
		BufferTuples: 50, CheckpointEvery: 1000,
	})
	prod.Bind(&engine.ExecContext{
		Clock: clock, Node: net.Node("src"), Meter: vtime.NewMeter(clock),
	})
	batch := make([]relation.Tuple, sendBatchSize)
	for i := range batch {
		batch[i] = relation.Tuple{relation.Int(int64(i)), relation.String("payload")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prod.SendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// chainRows is the input cardinality of the operator-chain benchmarks.
const chainRows = 2048

// chainRelation caches the input rows across iterations.
var chainRelation = func() []relation.Tuple {
	ts := make([]relation.Tuple, chainRows)
	for i := range ts {
		ts[i] = relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i * 7))}
	}
	return ts
}()

// chainCtx builds a zero-cost ExecContext: with modelled costs at zero, the
// benchmark measures pure engine overhead — interface dispatch, locks, meter
// traffic, allocation — which is exactly what batching amortizes. The
// payload work (predicate evaluation, output-tuple construction) is
// identical in both execution models and deliberately kept small, so the
// comparison exposes the per-tuple overhead rather than burying it.
func chainCtx() *engine.ExecContext {
	clock := vtime.NewClock(time.Nanosecond)
	return &engine.ExecContext{
		Clock:   clock,
		Node:    simnet.NewNode("bench"),
		Meter:   vtime.NewMeter(clock),
		Buckets: 64,
	}
}

// chainPlan builds scan→select→project over the cached rows; the predicate
// passes all but one row, so the drained cardinality stays deterministic
// while the filter still evaluates every tuple.
func chainPlan(b *testing.B) engine.Iterator {
	return chainPlanOver(b, engine.NewSliceSource(chainRelation, 0))
}

// chainPlanOver builds the same select→project over any source — the
// parallel-chain benchmark hangs per-worker operator copies off one shared
// morsel source.
func chainPlanOver(b *testing.B, src engine.Iterator) engine.Iterator {
	pred, err := scalar.Compare(
		scalar.Col(0, relation.TInt, "k"), scalar.Ge,
		scalar.Const(relation.Int(1)))
	if err != nil {
		b.Fatal(err)
	}
	return &engine.Project{
		Child: &engine.Select{Child: src, Pred: pred},
		Ords:  []int{1},
	}
}

// ballastBytes is the heap ballast the chain benchmarks hold while running.
// Both drains allocate ~100KB of output tuples per op, so with the default
// few-MB live heap the collector marks almost continuously and run-to-run
// pacing noise swamps the comparison; a ballast stretches the GC period so
// both paths measure engine overhead under identical, steady conditions.
const ballastBytes = 64 << 20

// VolcanoChain drains the chain tuple-at-a-time (per-op = one full drain of
// chainRows tuples).
func VolcanoChain(b *testing.B) {
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := chainPlan(b)
		if err := it.Open(chainCtx()); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, ok, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != chainRows-1 {
			b.Fatalf("drained %d rows, want %d", rows, chainRows-1)
		}
	}
	b.ReportMetric(float64(chainRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// BatchChain drains the same chain through the vectorized path.
func BatchChain(b *testing.B) {
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := chainPlan(b)
		if err := it.Open(chainCtx()); err != nil {
			b.Fatal(err)
		}
		batch := relation.GetBatch()
		rows := 0
		for {
			n, err := engine.FillBatch(it, batch)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			rows += n
		}
		batch.Release()
		if err := it.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != chainRows-1 {
			b.Fatalf("drained %d rows, want %d", rows, chainRows-1)
		}
	}
	b.ReportMetric(float64(chainRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// Result is one benchmark outcome, shaped for BENCH_micro.json. Every entry
// records the runner's core budget at measurement time: without it the gate
// cannot tell "no parallel speedup" from "one core" (see GateScaling).
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	TuplesPerOp int     `json:"tuples_per_op,omitempty"`
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	NumCPU      int     `json:"num_cpu,omitempty"`
}

// spec names one benchmark and the tuples it processes per op.
type spec struct {
	name   string
	fn     func(*testing.B)
	tuples int
}

func specs() []spec {
	return []spec{
		{"TupleEncode", TupleEncode, 1},
		{"TupleDecode", TupleDecode, 1},
		{"TupleDecodeInto", TupleDecodeInto, 1},
		{"ProducerSendBatch", ProducerSendBatch, sendBatchSize},
		{"VolcanoChain", VolcanoChain, chainRows},
		{"BatchChain", BatchChain, chainRows},
		{"ParallelChain1", ParallelChain1, chainRows},
		{"ParallelChain2", ParallelChain2, chainRows},
		{"ParallelChain4", ParallelChain4, chainRows},
		{"ParallelChain8", ParallelChain8, chainRows},
		{"PartitionedJoin1", PartitionedJoin1, joinProbeRows},
		{"PartitionedJoin2", PartitionedJoin2, joinProbeRows},
		{"PartitionedJoin4", PartitionedJoin4, joinProbeRows},
		{"PartitionedJoin8", PartitionedJoin8, joinProbeRows},
		{"SpillJoin", SpillJoin, joinProbeRows},
		{"ExternalSort", ExternalSort, sortRows},
		{"ScanStoredTuple", ScanStoredTuple, scanRows},
		{"ScanStoredBatch", ScanStoredBatch, scanRows},
		{"ScanReadaheadOn", ScanReadaheadOn, scanRows},
		{"ScanReadaheadOff", ScanReadaheadOff, scanRows},
		{"BusPublishDeliverBounded", BusPublishDeliverBounded, 1},
		{"BusPublishDeliverUnbounded", BusPublishDeliverUnbounded, 1},
		{"ObsMonitoringOverhead", ObsMonitoringOverhead, chainRows},
		{"ObsMonitoringOverheadBaseline", ObsMonitoringOverheadBaseline, chainRows},
	}
}

func runSpec(s spec) Result {
	r := testing.Benchmark(s.fn)
	return Result{
		Name:        s.name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		TuplesPerOp: s.tuples,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
}

// All runs every micro-benchmark through testing.Benchmark and collects the
// results. The volcano and batch chains process chainRows tuples per op;
// TuplesPerOp lets consumers derive throughput.
func All() []Result {
	var out []Result
	for _, s := range specs() {
		out = append(out, runSpec(s))
	}
	return out
}

// Run reruns a single named benchmark; ok is false for an unknown name. The
// regression gate uses it to retry flagged benchmarks, since on a shared
// runner any one testing.Benchmark measurement can come in 30%+ slow.
func Run(name string) (Result, bool) {
	for _, s := range specs() {
		if s.name == name {
			return runSpec(s), true
		}
	}
	return Result{}, false
}
