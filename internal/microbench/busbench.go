package microbench

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/vtime"
)

// busPublishDeliver measures end-to-end notification throughput — Publish
// on one goroutine, handler execution on the subscription's delivery
// goroutine — for a given queue policy (per-op = one notification,
// published and delivered). Both measured policies are lossless, so the
// drain wait at the end is bounded.
func busPublishDeliver(b *testing.B, opts bus.Options) {
	clock := vtime.NewClock(time.Nanosecond)
	bu := bus.NewWithOptions(clock, nil, opts)
	defer bu.Close()
	var delivered atomic.Int64
	sub := bu.Subscribe("bench", "n0", "bench.topic", func(bus.Notification) {
		delivered.Add(1)
	})
	defer sub.Cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu.Publish("bench", "n0", "bench.topic", i)
	}
	for delivered.Load() < int64(b.N) {
		time.Sleep(10 * time.Microsecond)
	}
}

// BusPublishDeliverBounded uses the bounded ring with the blocking overflow
// policy: a full queue exerts backpressure on the publisher instead of
// growing, so memory stays capped at QueueCap notifications.
func BusPublishDeliverBounded(b *testing.B) {
	busPublishDeliver(b, bus.Options{Overflow: bus.OverflowBlock})
}

// BusPublishDeliverUnbounded uses the legacy grow-without-bound policy the
// bounded ring replaced; kept as the benchmark baseline.
func BusPublishDeliverUnbounded(b *testing.B) {
	busPublishDeliver(b, bus.Options{Overflow: bus.OverflowGrow})
}
