package microbench

import (
	"strings"
	"testing"
)

func TestGateFlagsRegression(t *testing.T) {
	baseline := []Result{{Name: "X", NsPerOp: 100}, {Name: "Y", NsPerOp: 100}}
	current := []Result{{Name: "X", NsPerOp: 120}, {Name: "Y", NsPerOp: 200}, {Name: "New", NsPerOp: 5}}
	regs := Gate(baseline, current, 0.25)
	if len(regs) != 1 || regs[0].Name != "Y" {
		t.Fatalf("gate flagged %v, want only Y", regs)
	}
}

func TestGateScalingChecksAndSkips(t *testing.T) {
	current := []Result{
		{Name: "PartitionedJoin1", NsPerOp: 800, GOMAXPROCS: 8, NumCPU: 8},
		{Name: "PartitionedJoin2", NsPerOp: 500, GOMAXPROCS: 8, NumCPU: 8}, // 1.6x >= 1.3x
		{Name: "PartitionedJoin4", NsPerOp: 500, GOMAXPROCS: 8, NumCPU: 8}, // 1.6x < 2.0x
		{Name: "PartitionedJoin8", NsPerOp: 400, GOMAXPROCS: 1, NumCPU: 1}, // one core: skip
	}
	checks := []ScalingCheck{
		{Serial: "PartitionedJoin1", Parallel: "PartitionedJoin2", Width: 2, MinSpeedup: 1.3},
		{Serial: "PartitionedJoin1", Parallel: "PartitionedJoin4", Width: 4, MinSpeedup: 2.0},
		{Serial: "PartitionedJoin1", Parallel: "PartitionedJoin8", Width: 8, MinSpeedup: 4.0},
		{Serial: "PartitionedJoin1", Parallel: "Absent", Width: 2, MinSpeedup: 1.3},
	}
	fails, skipped := GateScaling(current, checks)
	if len(fails) != 1 || fails[0].Check.Parallel != "PartitionedJoin4" {
		t.Fatalf("scaling gate failed %v, want only PartitionedJoin4", fails)
	}
	if got := fails[0].Speedup; got < 1.59 || got > 1.61 {
		t.Fatalf("speedup %v, want 1.6", got)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %v, want the one-core check and the missing check", skipped)
	}
	var sawCores, sawMissing bool
	for _, s := range skipped {
		if strings.Contains(s, "PartitionedJoin8") && strings.Contains(s, "core") {
			sawCores = true
		}
		if strings.Contains(s, "Absent") && strings.Contains(s, "missing") {
			sawMissing = true
		}
	}
	if !sawCores || !sawMissing {
		t.Fatalf("skip reasons not logged: %v", skipped)
	}
}

func TestRunSpecRecordsCores(t *testing.T) {
	r, ok := Run("TupleEncode")
	if !ok {
		t.Fatal("TupleEncode not found")
	}
	if r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		t.Fatalf("core counts not recorded: gomaxprocs=%d num_cpu=%d", r.GOMAXPROCS, r.NumCPU)
	}
}
