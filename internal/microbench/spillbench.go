package microbench

import (
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Spill benchmarks: the grace-hash join and the external merge sort under a
// memory budget sized to a quarter of their working set, against the memory
// backend. They price the spill machinery itself — run framing, partition
// routing, reload and merge — without posix I/O noise, so the regression
// gate catches structural slowdowns in the spill path.

// spillBudgetDivisor makes the budget a quarter of the accounted input, so
// roughly three quarters of the state goes through storage each op.
const spillBudgetDivisor = 4

// spillCtx is chainCtx plus a budget and a fresh memory backend.
func spillCtx(budget int64) *engine.ExecContext {
	ctx := chainCtx()
	ctx.Mem = storage.NewBudget(budget)
	ctx.Spill = storage.NewMemory()
	return ctx
}

// spillJoinBudget is computed once from the shared build relation.
var spillJoinBudget = func() int64 {
	var total int64
	for _, t := range joinBuildRelation {
		total += int64(t.ByteSize()) + 48
	}
	return total / spillBudgetDivisor
}()

// SpillJoin measures one full build+probe+drain of the serial grace-hash
// join with 3/4 of its build side spilled (per-op = one joinProbeRows probe).
func SpillJoin(b *testing.B) {
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := spillCtx(spillJoinBudget)
		j := &engine.HashJoin{
			Build:     engine.NewSliceSource(joinBuildRelation, 0),
			Probe:     engine.NewSliceSource(joinProbeRelation, 0),
			BuildKeys: []int{0}, ProbeKeys: []int{0},
			BuildEst: joinBuildRows,
		}
		if err := j.Open(ctx); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, ok, err := j.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != joinProbeRows {
			b.Fatalf("joined %d rows, want %d", rows, joinProbeRows)
		}
	}
	b.ReportMetric(float64(joinProbeRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// sortRows sizes the external-sort benchmark input.
const sortRows = 4096

var sortRelation = func() []relation.Tuple {
	ts := make([]relation.Tuple, sortRows)
	for i := range ts {
		// Reversed keys with duplicates: every run flush is non-trivially
		// ordered and the merge exercises its stability tie-break.
		ts[i] = relation.Tuple{relation.Int(int64((sortRows - i) % 97)), relation.Int(int64(i))}
	}
	return ts
}()

var spillSortBudget = func() int64 {
	var total int64
	for _, t := range sortRelation {
		total += int64(t.ByteSize()) + 24
	}
	return total / spillBudgetDivisor
}()

// ExternalSort measures one full external merge sort with 3/4 of the input
// flushed to runs (per-op = one sortRows drain).
func ExternalSort(b *testing.B) {
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := spillCtx(spillSortBudget)
		s := &engine.Sort{
			Child: engine.NewSliceSource(sortRelation, 0),
			Ords:  []int{0}, Desc: []bool{false},
		}
		if err := s.Open(ctx); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, ok, err := s.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		if rows != sortRows {
			b.Fatalf("sorted %d rows, want %d", rows, sortRows)
		}
	}
	b.ReportMetric(float64(sortRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}
