package microbench

import "testing"

func BenchmarkTupleEncode(b *testing.B)       { TupleEncode(b) }
func BenchmarkTupleDecode(b *testing.B)       { TupleDecode(b) }
func BenchmarkProducerSendBatch(b *testing.B) { ProducerSendBatch(b) }

// BenchmarkBusPublishDeliver compares the bounded subscription ring (block
// overflow policy) against the legacy unbounded grow policy it replaced.
func BenchmarkBusPublishDeliver(b *testing.B) {
	b.Run("bounded", BusPublishDeliverBounded)
	b.Run("unbounded", BusPublishDeliverUnbounded)
}

// BenchmarkVolcanoVsBatch runs the same scan→select→project drain through
// both execution models; compare the subbenchmarks' ns/op, allocs/op and
// tuples/sec directly.
func BenchmarkVolcanoVsBatch(b *testing.B) {
	b.Run("volcano", VolcanoChain)
	b.Run("batch", BatchChain)
}

// BenchmarkObsMonitoringOverhead compares the batch drain with live registry
// handles against the same drain with instrumentation disabled.
func BenchmarkObsMonitoringOverhead(b *testing.B) {
	b.Run("instrumented", ObsMonitoringOverhead)
	b.Run("baseline", ObsMonitoringOverheadBaseline)
}

// TestObsOverheadWithinBudget pins the observability acceptance bar: the
// instrumented hot path must regress the uninstrumented drain by at most 5%.
func TestObsOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	base := testing.Benchmark(ObsMonitoringOverheadBaseline)
	inst := testing.Benchmark(ObsMonitoringOverhead)
	baseNs := float64(base.T.Nanoseconds()) / float64(base.N)
	instNs := float64(inst.T.Nanoseconds()) / float64(inst.N)
	if instNs > baseNs*1.05 {
		t.Errorf("instrumented drain %.0f ns/op vs baseline %.0f ns/op: overhead %.1f%%, budget 5%%",
			instNs, baseNs, (instNs/baseNs-1)*100)
	}
}

// TestBatchBeatsVolcano pins the PR's acceptance bar: the batch path must be
// at least 2x the throughput of the volcano path with at least 5x fewer
// allocations per drained chain.
func TestBatchBeatsVolcano(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	v := testing.Benchmark(VolcanoChain)
	bt := testing.Benchmark(BatchChain)
	vNs := float64(v.T.Nanoseconds()) / float64(v.N)
	bNs := float64(bt.T.Nanoseconds()) / float64(bt.N)
	if bNs*2 > vNs {
		t.Errorf("batch path %.0f ns/op vs volcano %.0f ns/op: want >=2x faster", bNs, vNs)
	}
	if bt.AllocsPerOp()*5 > v.AllocsPerOp() {
		t.Errorf("batch path %d allocs/op vs volcano %d: want >=5x fewer", bt.AllocsPerOp(), v.AllocsPerOp())
	}
}
