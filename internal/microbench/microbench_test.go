package microbench

import "testing"

func BenchmarkTupleEncode(b *testing.B)       { TupleEncode(b) }
func BenchmarkTupleDecode(b *testing.B)       { TupleDecode(b) }
func BenchmarkProducerSendBatch(b *testing.B) { ProducerSendBatch(b) }

// BenchmarkBusPublishDeliver compares the bounded subscription ring (block
// overflow policy) against the legacy unbounded grow policy it replaced.
func BenchmarkBusPublishDeliver(b *testing.B) {
	b.Run("bounded", BusPublishDeliverBounded)
	b.Run("unbounded", BusPublishDeliverUnbounded)
}

// BenchmarkVolcanoVsBatch runs the same scan→select→project drain through
// both execution models; compare the subbenchmarks' ns/op, allocs/op and
// tuples/sec directly.
func BenchmarkVolcanoVsBatch(b *testing.B) {
	b.Run("volcano", VolcanoChain)
	b.Run("batch", BatchChain)
}

// TestBatchBeatsVolcano pins the PR's acceptance bar: the batch path must be
// at least 2x the throughput of the volcano path with at least 5x fewer
// allocations per drained chain.
func TestBatchBeatsVolcano(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	v := testing.Benchmark(VolcanoChain)
	bt := testing.Benchmark(BatchChain)
	vNs := float64(v.T.Nanoseconds()) / float64(v.N)
	bNs := float64(bt.T.Nanoseconds()) / float64(bt.N)
	if bNs*2 > vNs {
		t.Errorf("batch path %.0f ns/op vs volcano %.0f ns/op: want >=2x faster", bNs, vNs)
	}
	if bt.AllocsPerOp()*5 > v.AllocsPerOp() {
		t.Errorf("batch path %d allocs/op vs volcano %d: want >=5x fewer", bt.AllocsPerOp(), v.AllocsPerOp())
	}
}
