package microbench

import (
	"math"
	"testing"
)

func BenchmarkTupleEncode(b *testing.B)       { TupleEncode(b) }
func BenchmarkTupleDecode(b *testing.B)       { TupleDecode(b) }
func BenchmarkProducerSendBatch(b *testing.B) { ProducerSendBatch(b) }

// BenchmarkBusPublishDeliver compares the bounded subscription ring (block
// overflow policy) against the legacy unbounded grow policy it replaced.
func BenchmarkBusPublishDeliver(b *testing.B) {
	b.Run("bounded", BusPublishDeliverBounded)
	b.Run("unbounded", BusPublishDeliverUnbounded)
}

// BenchmarkVolcanoVsBatch runs the same scan→select→project drain through
// both execution models; compare the subbenchmarks' ns/op, allocs/op and
// tuples/sec directly.
func BenchmarkVolcanoVsBatch(b *testing.B) {
	b.Run("volcano", VolcanoChain)
	b.Run("batch", BatchChain)
}

// BenchmarkObsMonitoringOverhead compares the batch drain with live registry
// handles against the same drain with instrumentation disabled.
func BenchmarkObsMonitoringOverhead(b *testing.B) {
	b.Run("instrumented", ObsMonitoringOverhead)
	b.Run("baseline", ObsMonitoringOverheadBaseline)
}

// bestNs runs a benchmark three times, alternating with nothing in between,
// and returns the fastest ns/op: on shared single-core runners a background
// burst can slow any one run by 10%+, and the minimum is the standard robust
// estimator for "how fast does this code actually go".
func bestNs(fn func(*testing.B)) float64 {
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < best {
			best = ns
		}
	}
	return best
}

// TestObsOverheadWithinBudget pins the observability acceptance bar: the
// instrumented hot path must regress the uninstrumented drain by at most 5%.
func TestObsOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	baseNs := bestNs(ObsMonitoringOverheadBaseline)
	instNs := bestNs(ObsMonitoringOverhead)
	if instNs > baseNs*1.05 {
		t.Errorf("instrumented drain %.0f ns/op vs baseline %.0f ns/op: overhead %.1f%%, budget 5%%",
			instNs, baseNs, (instNs/baseNs-1)*100)
	}
}

// TestBatchBeatsVolcano pins the vectorization acceptance bar: the batch
// path must be at least 2x the throughput of the volcano path without
// allocating more. (The paths used to differ 5x on allocations too, but the
// scalar Next paths now carve output tuples from the same operator arenas
// the batch paths use, so the alloc counts converged — the win that remains
// is per-tuple call overhead.)
func TestBatchBeatsVolcano(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	v := testing.Benchmark(VolcanoChain)
	bt := testing.Benchmark(BatchChain)
	vNs := float64(v.T.Nanoseconds()) / float64(v.N)
	bNs := float64(bt.T.Nanoseconds()) / float64(bt.N)
	if bNs*2 > vNs {
		t.Errorf("batch path %.0f ns/op vs volcano %.0f ns/op: want >=2x faster", bNs, vNs)
	}
	if bt.AllocsPerOp() > v.AllocsPerOp() {
		t.Errorf("batch path %d allocs/op vs volcano %d: must not allocate more", bt.AllocsPerOp(), v.AllocsPerOp())
	}
}

// BenchmarkParallelChain sweeps the morsel pool width over the same chain
// BatchChain drains serially.
func BenchmarkParallelChain(b *testing.B) {
	b.Run("w1", ParallelChain1)
	b.Run("w2", ParallelChain2)
	b.Run("w4", ParallelChain4)
	b.Run("w8", ParallelChain8)
}

// BenchmarkPartitionedJoin sweeps the worker count over the shared-state
// partitioned hash join.
func BenchmarkPartitionedJoin(b *testing.B) {
	b.Run("w1", PartitionedJoin1)
	b.Run("w2", PartitionedJoin2)
	b.Run("w4", PartitionedJoin4)
	b.Run("w8", PartitionedJoin8)
}

func BenchmarkTupleDecodeIntoArena(b *testing.B) { TupleDecodeInto(b) }

// BenchmarkStoredScan prices the streaming scan engine: the posix table
// drained tuple-at-a-time through the run cursor versus batch-at-a-time
// through the block scan, and the readahead producer on versus off.
func BenchmarkStoredScan(b *testing.B) {
	b.Run("tuple", ScanStoredTuple)
	b.Run("batch", ScanStoredBatch)
	b.Run("readahead-on", ScanReadaheadOn)
	b.Run("readahead-off", ScanReadaheadOff)
}

// BenchmarkSpill prices the memory-governed paths: the grace-hash join and
// the external merge sort with 3/4 of their state going through storage.
func BenchmarkSpill(b *testing.B) {
	b.Run("join", SpillJoin)
	b.Run("sort", ExternalSort)
}

// TestParallelChainSerialParity pins the morsel mode's acceptance bar: a
// single-worker pool must stay within 5% of the serial batch drain, so
// Parallelism=1 never taxes configurations that don't opt in.
func TestParallelChainSerialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	serial := bestNs(BatchChain)
	pool := bestNs(ParallelChain1)
	if pool > serial*1.05 {
		t.Errorf("1-worker pool %.0f ns/op vs serial batch %.0f ns/op: overhead %.1f%%, budget 5%%",
			pool, serial, (pool/serial-1)*100)
	}
}

// TestGate exercises the benchmark regression gate's comparison rules.
func TestGate(t *testing.T) {
	baseline := []Result{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Retired", NsPerOp: 50},
	}
	current := []Result{
		{Name: "A", NsPerOp: 124},  // +24%: within tolerance
		{Name: "B", NsPerOp: 130},  // +30%: regression
		{Name: "New", NsPerOp: 10}, // no baseline: ignored
	}
	regs := Gate(baseline, current, 0.25)
	if len(regs) != 1 || regs[0].Name != "B" {
		t.Fatalf("regressions = %v, want exactly B", regs)
	}
	if regs[0].String() == "" {
		t.Error("empty regression description")
	}
	if got := Gate(baseline, baseline, 0); got != nil {
		t.Fatalf("identical results flagged: %v", got)
	}
}
