package microbench

import (
	"encoding/json"
	"fmt"
	"os"
)

// DefaultGateTolerance is the allowed fractional ns_per_op regression before
// the benchmark gate fails (25%: wide enough to absorb shared-runner noise,
// tight enough to catch real hot-path regressions).
const DefaultGateTolerance = 0.25

// Regression is one benchmark whose current ns_per_op exceeds the recorded
// baseline by more than the gate tolerance.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
}

// String renders the regression for the gate's failure report.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f ns/op (+%.0f%%)",
		r.Name, r.CurrentNs, r.BaselineNs, (r.CurrentNs/r.BaselineNs-1)*100)
}

// Gate compares current results against a recorded baseline and returns
// every regression beyond tolerance. Benchmarks present on only one side are
// ignored: a new benchmark has no baseline to regress from, and a retired
// baseline entry gates nothing.
func Gate(baseline, current []Result, tolerance float64) []Regression {
	if tolerance <= 0 {
		tolerance = DefaultGateTolerance
	}
	base := make(map[string]float64, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r.NsPerOp
	}
	var out []Regression
	for _, r := range current {
		b, ok := base[r.Name]
		if !ok || b <= 0 {
			continue
		}
		if r.NsPerOp > b*(1+tolerance) {
			out = append(out, Regression{Name: r.Name, BaselineNs: b, CurrentNs: r.NsPerOp})
		}
	}
	return out
}

// LoadBaseline reads a BENCH_micro.json produced by cmd/dqp-experiments.
func LoadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("microbench: parse baseline %s: %w", path, err)
	}
	return out, nil
}
