package microbench

import (
	"encoding/json"
	"fmt"
	"os"
)

// DefaultGateTolerance is the allowed fractional ns_per_op regression before
// the benchmark gate fails (25%: wide enough to absorb shared-runner noise,
// tight enough to catch real hot-path regressions).
const DefaultGateTolerance = 0.25

// Regression is one benchmark whose current ns_per_op exceeds the recorded
// baseline by more than the gate tolerance.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
}

// String renders the regression for the gate's failure report.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f ns/op (+%.0f%%)",
		r.Name, r.CurrentNs, r.BaselineNs, (r.CurrentNs/r.BaselineNs-1)*100)
}

// Gate compares current results against a recorded baseline and returns
// every regression beyond tolerance. Benchmarks present on only one side are
// ignored: a new benchmark has no baseline to regress from, and a retired
// baseline entry gates nothing.
func Gate(baseline, current []Result, tolerance float64) []Regression {
	if tolerance <= 0 {
		tolerance = DefaultGateTolerance
	}
	base := make(map[string]float64, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r.NsPerOp
	}
	var out []Regression
	for _, r := range current {
		b, ok := base[r.Name]
		if !ok || b <= 0 {
			continue
		}
		if r.NsPerOp > b*(1+tolerance) {
			out = append(out, Regression{Name: r.Name, BaselineNs: b, CurrentNs: r.NsPerOp})
		}
	}
	return out
}

// ScalingCheck asserts that the width-Width variant of a benchmark beats its
// serial variant by at least MinSpeedup (ns_per_op ratio) when the runner
// actually has Width cores to scale onto.
type ScalingCheck struct {
	Serial     string
	Parallel   string
	Width      int
	MinSpeedup float64
}

// DefaultScalingChecks are the morsel-parallel scaling floors gated by
// `make benchgate` on multi-core runners. The floors are deliberately below
// linear: the chains share a morsel source and the joins share a build
// table, so perfect scaling is not on the table, but a multi-core runner
// that shows none of it has lost real parallelism. The stored-scan checks
// hold the batched block scan to a multiple of the tuple-at-a-time cursor's
// throughput on posix, the streaming scan engine's reason to exist: the
// fused decode alone must show 1.5x on any runner, and the full 2x floor is
// held at width 2 because the batched scan is a two-thread pipeline — its
// readahead producer needs a core of its own to overlap block reads with
// decode, which a one-core runner cannot demonstrate.
func DefaultScalingChecks() []ScalingCheck {
	return []ScalingCheck{
		{Serial: "ParallelChain1", Parallel: "ParallelChain2", Width: 2, MinSpeedup: 1.3},
		{Serial: "ParallelChain1", Parallel: "ParallelChain4", Width: 4, MinSpeedup: 2.0},
		{Serial: "ParallelChain1", Parallel: "ParallelChain8", Width: 8, MinSpeedup: 3.0},
		{Serial: "PartitionedJoin1", Parallel: "PartitionedJoin2", Width: 2, MinSpeedup: 1.3},
		{Serial: "PartitionedJoin1", Parallel: "PartitionedJoin4", Width: 4, MinSpeedup: 2.0},
		{Serial: "PartitionedJoin1", Parallel: "PartitionedJoin8", Width: 8, MinSpeedup: 4.0},
		{Serial: "ScanStoredTuple", Parallel: "ScanStoredBatch", Width: 1, MinSpeedup: 1.5},
		{Serial: "ScanStoredTuple", Parallel: "ScanStoredBatch", Width: 2, MinSpeedup: 2.0},
	}
}

// ScalingFailure is one scaling check whose measured speedup fell below the
// floor on a runner wide enough to have shown it.
type ScalingFailure struct {
	Check   ScalingCheck
	Speedup float64
}

// String renders the failure for the gate's report.
func (f ScalingFailure) String() string {
	return fmt.Sprintf("%s vs %s: %.2fx speedup, want >= %.2fx at width %d",
		f.Check.Parallel, f.Check.Serial, f.Speedup, f.Check.MinSpeedup, f.Check.Width)
}

// resultCores is the core budget a result was measured under: GOMAXPROCS
// when recorded, NumCPU as a fallback, and zero for entries from before the
// fields existed (the caller then decides with its own runtime view).
func resultCores(r Result) int {
	if r.GOMAXPROCS > 0 {
		return r.GOMAXPROCS
	}
	return r.NumCPU
}

// GateScaling evaluates the scaling checks against current results. A check
// whose runner had fewer cores than the check's width is skipped with a
// reason — one core cannot demonstrate an eight-way speedup, and failing on
// it would just teach people to ignore the gate. Checks with a missing side
// are likewise skipped, never failed.
func GateScaling(current []Result, checks []ScalingCheck) (fails []ScalingFailure, skipped []string) {
	byName := make(map[string]Result, len(current))
	for _, r := range current {
		byName[r.Name] = r
	}
	for _, c := range checks {
		serial, okS := byName[c.Serial]
		par, okP := byName[c.Parallel]
		if !okS || !okP || serial.NsPerOp <= 0 || par.NsPerOp <= 0 {
			skipped = append(skipped, fmt.Sprintf("%s: missing measurement", c.Parallel))
			continue
		}
		cores := resultCores(par)
		if cores > 0 && cores < c.Width {
			skipped = append(skipped, fmt.Sprintf(
				"%s: runner has %d core(s), width %d needs %d — cannot demonstrate speedup",
				c.Parallel, cores, c.Width, c.Width))
			continue
		}
		speedup := serial.NsPerOp / par.NsPerOp
		if speedup < c.MinSpeedup {
			fails = append(fails, ScalingFailure{Check: c, Speedup: speedup})
		}
	}
	return fails, skipped
}

// LoadBaseline reads a BENCH_micro.json produced by cmd/dqp-experiments.
func LoadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("microbench: parse baseline %s: %w", path, err)
	}
	return out, nil
}
