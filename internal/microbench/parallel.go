package microbench

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/relation"
)

// morselSource hands the cached chain relation out in batch-sized morsels
// under a mutex — the same contract as the engine's shared scan source in
// morsel mode, so ParallelChainN measures the worker pool's coordination
// cost over the identical scan→select→project chain BatchChain drains
// serially.
type morselSource struct {
	mu     sync.Mutex
	src    engine.Iterator
	opened bool
	closed bool
	eos    bool
}

// Open opens the underlying source once; every worker chain's Open funnels
// here (a second Open must not rewind a drain in progress).
func (m *morselSource) Open(ctx *engine.ExecContext) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opened {
		return nil
	}
	m.opened = true
	return m.src.Open(ctx)
}

func (m *morselSource) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.src.Close()
}

func (m *morselSource) NextBatch(dst *relation.Batch) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eos {
		dst.Rewind()
		return 0, nil
	}
	n, err := engine.FillBatch(m.src, dst)
	if err == nil && n == 0 {
		m.eos = true
	}
	return n, err
}

func (m *morselSource) Next() (relation.Tuple, bool, error) { return m.src.Next() }

// parallelChain drains the chain with a pool of workers pulling morsels from
// a shared source, each through its own select→project operators (per-op =
// one full drain of chainRows tuples across the pool).
func parallelChain(b *testing.B, workers int) {
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := &morselSource{src: engine.NewSliceSource(chainRelation, 0)}
		if err := src.Open(chainCtx()); err != nil {
			b.Fatal(err)
		}
		var (
			wg    sync.WaitGroup
			total int64
			mu    sync.Mutex
			fail  error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				it := chainPlanOver(b, src)
				if err := it.Open(chainCtx()); err != nil {
					mu.Lock()
					fail = err
					mu.Unlock()
					return
				}
				batch := relation.GetBatch()
				rows := int64(0)
				for {
					n, err := engine.FillBatch(it, batch)
					if err != nil {
						mu.Lock()
						fail = err
						mu.Unlock()
						break
					}
					if n == 0 {
						break
					}
					rows += int64(n)
				}
				batch.Release()
				mu.Lock()
				total += rows
				mu.Unlock()
			}()
		}
		wg.Wait()
		if fail != nil {
			b.Fatal(fail)
		}
		if err := src.Close(); err != nil {
			b.Fatal(err)
		}
		if total != chainRows-1 {
			b.Fatalf("drained %d rows, want %d", total, chainRows-1)
		}
	}
	b.ReportMetric(float64(chainRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// ParallelChain1 runs the operator-chain benchmark with a serial driver.
func ParallelChain1(b *testing.B) { parallelChain(b, 1) }

// ParallelChain2 runs the operator-chain benchmark on 2 workers.
func ParallelChain2(b *testing.B) { parallelChain(b, 2) }

// ParallelChain4 runs the operator-chain benchmark on 4 workers.
func ParallelChain4(b *testing.B) { parallelChain(b, 4) }

// ParallelChain8 runs the operator-chain benchmark on 8 workers.
func ParallelChain8(b *testing.B) { parallelChain(b, 8) }

// joinRows sizes the partitioned-join benchmark inputs.
const (
	joinBuildRows = 1024
	joinProbeRows = 2048
)

var joinBuildRelation = func() []relation.Tuple {
	ts := make([]relation.Tuple, joinBuildRows)
	for i := range ts {
		ts[i] = relation.Tuple{relation.Int(int64(i)), relation.String("build")}
	}
	return ts
}()

var joinProbeRelation = func() []relation.Tuple {
	ts := make([]relation.Tuple, joinProbeRows)
	for i := range ts {
		ts[i] = relation.Tuple{relation.Int(int64(i % joinBuildRows)), relation.String("probe")}
	}
	return ts
}()

// partitionedJoin measures the shared-state hash join under a worker pool:
// every worker drains morsels of the build side into the partitioned table,
// waits at the build barrier, then probes concurrently (per-op = one full
// build+probe of the join across the pool).
func partitionedJoin(b *testing.B, workers int) {
	ballast := make([]byte, ballastBytes)
	defer runtime.KeepAlive(ballast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildSrc := &morselSource{src: engine.NewSliceSource(joinBuildRelation, 0)}
		probeSrc := &morselSource{src: engine.NewSliceSource(joinProbeRelation, 0)}
		base := &engine.HashJoin{BuildKeys: []int{0}, ProbeKeys: []int{0}, BuildEst: joinBuildRows}
		base.SetWorkers(workers)
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			total int64
			fail  error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				j := base.WorkerClone(buildSrc, probeSrc)
				if err := j.Open(chainCtx()); err != nil {
					mu.Lock()
					fail = err
					mu.Unlock()
					base.Abort()
					return
				}
				batch := relation.GetBatch()
				rows := int64(0)
				for {
					n, err := engine.FillBatch(j, batch)
					if err != nil {
						mu.Lock()
						fail = err
						mu.Unlock()
						break
					}
					if n == 0 {
						break
					}
					rows += int64(n)
				}
				batch.Release()
				_ = j.Close()
				mu.Lock()
				total += rows
				mu.Unlock()
			}()
		}
		wg.Wait()
		if fail != nil {
			b.Fatal(fail)
		}
		if total != joinProbeRows {
			b.Fatalf("joined %d rows, want %d", total, joinProbeRows)
		}
	}
	b.ReportMetric(float64(joinProbeRows)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// PartitionedJoin1 runs the partitioned-join benchmark with a serial driver.
func PartitionedJoin1(b *testing.B) { partitionedJoin(b, 1) }

// PartitionedJoin2 runs the partitioned-join benchmark on 2 workers.
func PartitionedJoin2(b *testing.B) { partitionedJoin(b, 2) }

// PartitionedJoin4 runs the partitioned-join benchmark on 4 workers.
func PartitionedJoin4(b *testing.B) { partitionedJoin(b, 4) }

// PartitionedJoin8 runs the partitioned-join benchmark on 8 workers.
func PartitionedJoin8(b *testing.B) { partitionedJoin(b, 8) }
