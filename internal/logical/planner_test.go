package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// demoCatalog builds catalog metadata matching the demo database.
func demoCatalog() *catalog.Catalog {
	c := catalog.New()
	_ = c.PutTable(catalog.TableMeta{
		Name: "protein_sequences",
		Schema: relation.NewSchema(
			relation.Column{Table: "protein_sequences", Name: "ORF", Type: relation.TString},
			relation.Column{Table: "protein_sequences", Name: "sequence", Type: relation.TString},
		),
		Cardinality: 3000, AvgTupleBytes: 150, Node: "data1",
	})
	_ = c.PutTable(catalog.TableMeta{
		Name: "protein_interactions",
		Schema: relation.NewSchema(
			relation.Column{Table: "protein_interactions", Name: "ORF1", Type: relation.TString},
			relation.Column{Table: "protein_interactions", Name: "ORF2", Type: relation.TString},
		),
		Cardinality: 4700, AvgTupleBytes: 25, Node: "data1",
	})
	_ = c.PutFunction(catalog.FunctionMeta{
		Name:       "EntropyAnalyser",
		ArgTypes:   []relation.Type{relation.TString},
		ResultType: relation.TFloat,
		CostMs:     10,
	})
	return c
}

func plan(t *testing.T, q string) Node {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Plan(stmt, demoCatalog())
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return n
}

func planErr(t *testing.T, q string) error {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Plan(stmt, demoCatalog())
	if err == nil {
		t.Fatalf("Plan(%q): expected error", q)
	}
	return err
}

func TestPlanQ1Shape(t *testing.T) {
	n := plan(t, "select EntropyAnalyser(p.sequence) from protein_sequences p")
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	if proj.Schema().Len() != 1 || proj.Schema().Column(0).Name != "EntropyAnalyser" {
		t.Fatalf("output schema = %v", proj.Schema())
	}
	if proj.Schema().Column(0).Type != relation.TFloat {
		t.Fatal("result type")
	}
	op, ok := proj.Child.(*OpCall)
	if !ok {
		t.Fatalf("child = %T", proj.Child)
	}
	if op.Fn.Name != "EntropyAnalyser" || len(op.ArgOrds) != 1 || op.ArgOrds[0] != 1 {
		t.Fatalf("opcall = %+v", op)
	}
	scan, ok := op.Child.(*Scan)
	if !ok {
		t.Fatalf("grandchild = %T", op.Child)
	}
	if scan.Alias != "p" || scan.Table.Cardinality != 3000 {
		t.Fatalf("scan = %+v", scan)
	}
}

func TestPlanQ1Alias(t *testing.T) {
	n := plan(t, "select EntropyAnalyser(p.sequence) AS h from protein_sequences p")
	if got := n.Schema().Column(0).Name; got != "h" {
		t.Fatalf("aliased output = %q", got)
	}
}

func TestPlanQ2Shape(t *testing.T) {
	n := plan(t, "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF")
	proj := n.(*Project)
	if proj.Schema().Len() != 1 || proj.Schema().Column(0).QualifiedName() != "i.ORF2" {
		t.Fatalf("schema = %v", proj.Schema())
	}
	join, ok := proj.Child.(*Join)
	if !ok {
		t.Fatalf("child = %T", proj.Child)
	}
	// Left input is the first FROM table (protein_sequences p): build side.
	ls, ok := join.Left.(*Scan)
	if !ok || ls.Alias != "p" {
		t.Fatalf("left = %#v", join.Left)
	}
	rs, ok := join.Right.(*Scan)
	if !ok || rs.Alias != "i" {
		t.Fatalf("right = %#v", join.Right)
	}
	// Key ordinals: p.ORF is ordinal 0 on the left; i.ORF1 ordinal 0 right.
	if len(join.LeftKeys) != 1 || join.LeftKeys[0] != 0 || join.RightKeys[0] != 0 {
		t.Fatalf("keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
}

func TestPlanStar(t *testing.T) {
	n := plan(t, "select * from protein_sequences")
	if n.Schema().Len() != 2 {
		t.Fatalf("star schema = %v", n.Schema())
	}
	if got := n.Schema().Column(0).Table; got != "protein_sequences" {
		t.Fatalf("effective name = %q", got)
	}
}

func TestPlanFilterPushdown(t *testing.T) {
	n := plan(t, "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF and p.ORF = 'YAL00001C'")
	join := n.(*Project).Child.(*Join)
	f, ok := join.Left.(*Filter)
	if !ok {
		t.Fatalf("filter not pushed to left scan: %T", join.Left)
	}
	if !strings.Contains(f.Pred.String(), "p.ORF = YAL00001C") {
		t.Fatalf("pred = %v", f.Pred)
	}
	if _, ok := join.Right.(*Scan); !ok {
		t.Fatalf("right should remain bare scan: %T", join.Right)
	}
	if f.Selectivity >= 1 || f.Selectivity <= 0 {
		t.Errorf("selectivity = %v", f.Selectivity)
	}
}

func TestPlanPostJoinFilter(t *testing.T) {
	n := plan(t, "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF and i.ORF2 <> p.ORF")
	proj := n.(*Project)
	f, ok := proj.Child.(*Filter)
	if !ok {
		t.Fatalf("expected post-join filter, got %T", proj.Child)
	}
	if _, ok := f.Child.(*Join); !ok {
		t.Fatalf("filter child = %T", f.Child)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := map[string]string{
		"select x from missing_table":                                            "unknown table",
		"select nope from protein_sequences":                                     "unknown column",
		"select NoSuchFn(p.sequence) from protein_sequences p":                   "unknown function",
		"select EntropyAnalyser(p.sequence, p.ORF) from protein_sequences p":     "expects 1 argument",
		"select EntropyAnalyser(3) from protein_sequences p":                     "column reference",
		"select p.ORF from protein_sequences p, protein_interactions i":          "cartesian",
		"select p.ORF from protein_sequences p, protein_sequences p":             "duplicate",
		"select p.ORF from protein_sequences p where p.ORF = 3":                  "cannot compare",
		"select p.ORF from protein_sequences p where EntropyAnalyser(p.ORF) = 1": "not allowed in predicates",
	}
	for q, sub := range cases {
		err := planErr(t, q)
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(strings.Split(sub, " ")[0])) {
			t.Errorf("Plan(%q) error %q missing %q", q, err, sub)
		}
	}
}

func TestPlanUnqualifiedColumns(t *testing.T) {
	n := plan(t, "select ORF2 from protein_sequences p, protein_interactions i where ORF1=ORF")
	join := n.(*Project).Child.(*Join)
	if join.LeftKeys[0] != 0 || join.RightKeys[0] != 0 {
		t.Fatalf("keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
}

func TestExplainRendersTree(t *testing.T) {
	n := plan(t, "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF")
	out := Explain(n)
	for _, want := range []string{"Project(", "HashJoin(", "Scan(protein_sequences", "Scan(protein_interactions"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Children are indented under parents.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 || strings.HasPrefix(lines[1], strings.Repeat(" ", 4)) || !strings.HasPrefix(lines[2], "    ") {
		t.Errorf("Explain structure:\n%s", out)
	}
}

func TestPlanNoFrom(t *testing.T) {
	_, err := Plan(&sqlparse.SelectStmt{}, demoCatalog())
	if err == nil {
		t.Fatal("expected error for empty FROM")
	}
}

func TestPlanAliasedStarRejected(t *testing.T) {
	// The parser cannot produce this shape, but a programmatic caller can.
	stmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Expr: sqlparse.Star{}, Alias: "x"}},
		From:  []sqlparse.TableRef{{Table: "protein_sequences"}},
	}
	if _, err := Plan(stmt, demoCatalog()); err == nil {
		t.Fatal("expected error for aliased *")
	}
}
