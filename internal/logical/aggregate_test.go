package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

func TestPlanGroupByCount(t *testing.T) {
	n := plan(t, "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1")
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	agg, ok := proj.Child.(*Aggregate)
	if !ok {
		t.Fatalf("child = %T", proj.Child)
	}
	if len(agg.GroupOrds) != 1 || agg.GroupOrds[0] != 0 {
		t.Fatalf("group ords = %v", agg.GroupOrds)
	}
	if len(agg.Aggs) != 1 || agg.Aggs[0].Kind != AggCount || agg.Aggs[0].ArgOrd != -1 {
		t.Fatalf("aggs = %+v", agg.Aggs)
	}
	s := n.Schema()
	if s.Len() != 2 || s.Column(1).Name != "n" || s.Column(1).Type != relation.TInt {
		t.Fatalf("schema = %v", s)
	}
}

func TestPlanGlobalAggregate(t *testing.T) {
	n := plan(t, "select count(*) from protein_sequences")
	agg, ok := n.(*Project).Child.(*Aggregate)
	if !ok {
		t.Fatalf("child = %T", n.(*Project).Child)
	}
	if len(agg.GroupOrds) != 0 {
		t.Fatalf("global aggregate has group ords %v", agg.GroupOrds)
	}
}

func TestPlanAggregateSelectOrder(t *testing.T) {
	// Aggregate output is (groups..., aggs...); the projection must restore
	// the select-list order.
	n := plan(t, "select count(*) AS n, i.ORF1 from protein_interactions i group by i.ORF1")
	s := n.Schema()
	if s.Column(0).Name != "n" || s.Column(1).Name != "ORF1" {
		t.Fatalf("schema order = %v", s)
	}
}

func TestPlanAggregateKindsAndTypes(t *testing.T) {
	// protein tables have no numeric columns; extend the catalog locally.
	cat := demoCatalog()
	_ = cat.PutTable(tableWithInt(t))
	stmt := parseQ(t, "select k, sum(v) s, avg(v) a, min(v) mn, max(v) mx, count(v) c from nums group by k")
	n, err := Plan(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Schema()
	wantTypes := []relation.Type{relation.TString, relation.TFloat, relation.TFloat,
		relation.TInt, relation.TInt, relation.TInt}
	for i, want := range wantTypes {
		if got := s.Column(i).Type; got != want {
			t.Errorf("column %d (%s): type %v, want %v", i, s.Column(i).Name, got, want)
		}
	}
	if !strings.Contains(Explain(n), "Aggregate(by [nums.k]") {
		t.Errorf("explain:\n%s", Explain(n))
	}
}

func TestPlanOrderByLimit(t *testing.T) {
	n := plan(t, "select p.ORF from protein_sequences p order by p.ORF desc limit 7")
	lim, ok := n.(*Limit)
	if !ok || lim.N != 7 {
		t.Fatalf("root = %#v", n)
	}
	srt, ok := lim.Child.(*Sort)
	if !ok || len(srt.Keys) != 1 || !srt.Keys[0].Desc || srt.Keys[0].Ord != 0 {
		t.Fatalf("sort = %#v", lim.Child)
	}
	if !strings.Contains(srt.Label(), "DESC") || !strings.Contains(lim.Label(), "7") {
		t.Error("labels")
	}
}

func TestPlanOrderByAlias(t *testing.T) {
	n := plan(t, "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1 order by n desc")
	if _, ok := n.(*Sort); !ok {
		t.Fatalf("root = %T", n)
	}
}

func TestPlanAggregateErrors(t *testing.T) {
	cases := map[string]string{
		"select i.ORF2, count(*) from protein_interactions i group by i.ORF1":   "must appear in GROUP BY",
		"select sum(*) from protein_interactions":                               "only valid for COUNT",
		"select sum(i.ORF1) from protein_interactions i":                        "non-numeric",
		"select count(i.ORF1, i.ORF2) from protein_interactions i":              "exactly one argument",
		"select EntropyAnalyser(p.sequence), count(*) from protein_sequences p": "cannot be mixed",
		"select count(nope) from protein_interactions i":                        "unknown column",
		"select i.ORF1 from protein_interactions i order by nope":               "ORDER BY",
		"select i.ORF1, count(*) from protein_interactions i group by nope":     "GROUP BY",
		"select avg(3) from protein_interactions i":                             "column reference",
	}
	for q, sub := range cases {
		err := planErr(t, q)
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(strings.Split(sub, " ")[0])) {
			t.Errorf("Plan(%q) error %q missing %q", q, err, sub)
		}
	}
}

func TestAggKindOf(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": AggCount, "SUM": AggSum, "Avg": AggAvg, "min": AggMin, "MAX": AggMax,
	} {
		got, ok := AggKindOf(name)
		if !ok || got != want {
			t.Errorf("AggKindOf(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggKindOf("EntropyAnalyser"); ok {
		t.Error("WS function classified as aggregate")
	}
	for _, k := range []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		if k.String() == "" || strings.Contains(k.String(), "AggKind(") {
			t.Errorf("String for %d", k)
		}
	}
}

// tableWithInt registers a numeric table for aggregate type tests.
func tableWithInt(t *testing.T) catalog.TableMeta {
	t.Helper()
	return catalog.TableMeta{
		Name: "nums",
		Schema: relation.NewSchema(
			relation.Column{Table: "nums", Name: "k", Type: relation.TString},
			relation.Column{Table: "nums", Name: "v", Type: relation.TInt},
		),
		Cardinality: 100, AvgTupleBytes: 20, Node: "data1",
	}
}

// parseQ parses or fails the test.
func parseQ(t *testing.T, q string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func TestPlanHaving(t *testing.T) {
	n := plan(t, "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1 having count(*) > 2")
	proj := n.(*Project)
	f, ok := proj.Child.(*Filter)
	if !ok {
		t.Fatalf("expected Filter above Aggregate, got %T", proj.Child)
	}
	agg, ok := f.Child.(*Aggregate)
	if !ok {
		t.Fatalf("filter child = %T", f.Child)
	}
	// The HAVING aggregate is hidden: select has 1 agg, the node has 2.
	if len(agg.Aggs) != 2 || agg.Aggs[1].Name != "_having1" {
		t.Fatalf("aggs = %+v", agg.Aggs)
	}
	// The final projection drops the hidden column.
	if n.Schema().Len() != 2 {
		t.Fatalf("output schema = %v", n.Schema())
	}
	if !strings.Contains(f.Pred.String(), "_having1 > 2") {
		t.Fatalf("pred = %v", f.Pred)
	}
}

func TestPlanHavingGroupColumn(t *testing.T) {
	n := plan(t, "select i.ORF1, count(*) from protein_interactions i group by i.ORF1 having i.ORF1 <> 'x'")
	if _, ok := n.(*Project).Child.(*Filter); !ok {
		t.Fatalf("no filter: %T", n.(*Project).Child)
	}
}

func TestPlanHavingErrors(t *testing.T) {
	cases := map[string]string{
		"select i.ORF1, count(*) from protein_interactions i group by i.ORF1 having i.ORF2 = 'x'":                "must appear in GROUP BY",
		"select i.ORF1, count(*) from protein_interactions i group by i.ORF1 having EntropyAnalyser(i.ORF1) > 1": "only aggregates",
		"select i.ORF1, count(*) from protein_interactions i group by i.ORF1 having sum(i.ORF2) > 1":             "non-numeric",
		"select i.ORF1, count(*) from protein_interactions i group by i.ORF1 having count(*) = 'x'":              "cannot compare",
	}
	for q, sub := range cases {
		err := planErr(t, q)
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(strings.Split(sub, " ")[0])) {
			t.Errorf("Plan(%q) error %q missing %q", q, err, sub)
		}
	}
}
