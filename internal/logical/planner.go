package logical

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/scalar"
	"repro/internal/sqlparse"
)

// Plan lowers a parsed statement to a logical plan, resolving names and
// types against the catalog. The shape is the classic
// Project(OpCall*(Filter?(Join*(Filter?(Scan))))) left-deep tree with
// single-table predicates pushed below the joins.
func Plan(stmt *sqlparse.SelectStmt, cat *catalog.Catalog) (Node, error) {
	node, _, err := PlanParams(stmt, cat)
	return node, err
}

// PlanParams is Plan for parameterised statements (plan templates): untyped
// parameter slots (explicit `?` markers) are typed by inference against the
// column they are compared with, and the inferred slot types are returned
// keyed by slot ordinal so the serving layer can type-check arguments before
// execution rather than deep inside an evaluator.
func PlanParams(stmt *sqlparse.SelectStmt, cat *catalog.Catalog) (Node, map[int]sqlparse.ParamType, error) {
	hints := make(map[int]sqlparse.ParamType)
	node, err := planStmt(stmt, cat, hints)
	if err != nil {
		return nil, nil, err
	}
	return node, hints, nil
}

func planStmt(stmt *sqlparse.SelectStmt, cat *catalog.Catalog, hints map[int]sqlparse.ParamType) (Node, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("logical: query has no FROM clause")
	}

	// Resolve FROM entries to scans keyed by effective name.
	type source struct {
		ref  sqlparse.TableRef
		scan *Scan
	}
	sources := make([]source, 0, len(stmt.From))
	byName := make(map[string]int)
	for _, ref := range stmt.From {
		meta, err := cat.Table(ref.Table)
		if err != nil {
			return nil, fmt.Errorf("logical: %w", err)
		}
		name := strings.ToLower(ref.EffectiveName())
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("logical: duplicate table name or alias %q", ref.EffectiveName())
		}
		byName[name] = len(sources)
		sources = append(sources, source{ref: ref, scan: NewScan(meta, ref.EffectiveName())})
	}

	// Classify WHERE conjuncts.
	type joinEdge struct {
		leftTable, leftCol   string
		rightTable, rightCol string
		used                 bool
	}
	var (
		edges       []joinEdge
		tableFilter = make(map[int][]sqlparse.Comparison) // source index -> conjuncts
		postJoin    []sqlparse.Comparison
	)
	sourceOf := func(e sqlparse.Expr) (int, bool) {
		c, ok := e.(sqlparse.ColumnRef)
		if !ok {
			return -1, false
		}
		if c.Table != "" {
			idx, ok := byName[strings.ToLower(c.Table)]
			return idx, ok
		}
		// Unqualified: find the unique source that has the column.
		found := -1
		for i, s := range sources {
			if _, err := s.scan.Schema().IndexOf("", c.Name); err == nil {
				if found >= 0 {
					return -1, false // ambiguous; let full resolution report it
				}
				found = i
			}
		}
		return found, found >= 0
	}
	for _, cmp := range stmt.Where {
		li, lok := sourceOf(cmp.Left)
		ri, rok := sourceOf(cmp.Right)
		switch {
		case cmp.Op == sqlparse.OpEq && lok && rok && li != ri:
			lc := cmp.Left.(sqlparse.ColumnRef)
			rc := cmp.Right.(sqlparse.ColumnRef)
			edges = append(edges, joinEdge{
				leftTable: sources[li].ref.EffectiveName(), leftCol: lc.Name,
				rightTable: sources[ri].ref.EffectiveName(), rightCol: rc.Name,
			})
		case lok && rok && li != ri, lok && !rok && isColumn(cmp.Right), !lok && rok && isColumn(cmp.Left):
			postJoin = append(postJoin, cmp)
		case lok && (!rok || li == ri):
			tableFilter[li] = append(tableFilter[li], cmp)
		case rok:
			tableFilter[ri] = append(tableFilter[ri], cmp)
		default:
			postJoin = append(postJoin, cmp)
		}
	}

	// Push single-table filters onto their scans.
	inputs := make([]Node, len(sources))
	for i, s := range sources {
		var node Node = s.scan
		if conjs := tableFilter[i]; len(conjs) > 0 {
			pred, err := compileConjunction(conjs, node.Schema(), hints)
			if err != nil {
				return nil, err
			}
			node = &Filter{Child: node, Pred: pred, Conjuncts: conjs, Selectivity: estimateSelectivity(conjs)}
		}
		inputs[i] = node
	}

	// Greedy join ordering: a left-deep tree built smallest-first from the
	// catalog cardinalities scaled by the pushed filters' selectivity
	// estimates, constrained to connected expansions (no cartesian products,
	// which the engine does not support and the paper does not use). The
	// build side of every hash join is the accumulated tree, so starting
	// small and growing by the cheapest connected source keeps build tables
	// — the memory-governed state — as small as the estimates allow. Ties
	// break on FROM position, so estimate-free catalogs degrade to the old
	// literal FROM order.
	est := make([]float64, len(sources))
	for i, s := range sources {
		est[i] = float64(s.scan.Table.Cardinality) * estimateSelectivity(tableFilter[i])
	}
	// connected reports whether any edge links source i to the joined set.
	connected := func(i int, joined map[string]bool) bool {
		name := sources[i].ref.EffectiveName()
		for _, ed := range edges {
			switch {
			case joined[strings.ToLower(ed.leftTable)] && strings.EqualFold(ed.rightTable, name):
				return true
			case joined[strings.ToLower(ed.rightTable)] && strings.EqualFold(ed.leftTable, name):
				return true
			}
		}
		return false
	}
	start := 0
	for i := 1; i < len(sources); i++ {
		if est[i] < est[start] {
			start = i
		}
	}
	order := []int{start}
	placed := map[int]bool{start: true}
	joined := map[string]bool{strings.ToLower(sources[start].ref.EffectiveName()): true}
	for len(order) < len(sources) {
		next := -1
		for i := range sources {
			if placed[i] || !connected(i, joined) {
				continue
			}
			if next < 0 || est[i] < est[next] {
				next = i
			}
		}
		if next < 0 {
			// Some source is unreachable through equi-join edges; report the
			// first such table in FROM order.
			for i := range sources {
				if !placed[i] {
					return nil, fmt.Errorf("logical: no join predicate connects %q (cartesian products unsupported)", sources[i].ref.EffectiveName())
				}
			}
		}
		order = append(order, next)
		placed[next] = true
		joined[strings.ToLower(sources[next].ref.EffectiveName())] = true
	}

	current := inputs[order[0]]
	joined = map[string]bool{strings.ToLower(sources[order[0]].ref.EffectiveName()): true}
	for _, i := range order[1:] {
		name := sources[i].ref.EffectiveName()
		var leftKeys, rightKeys []int
		for e := range edges {
			ed := &edges[e]
			if ed.used {
				continue
			}
			var treeTable, treeCol, newCol string
			switch {
			case joined[strings.ToLower(ed.leftTable)] && strings.EqualFold(ed.rightTable, name):
				treeTable, treeCol, newCol = ed.leftTable, ed.leftCol, ed.rightCol
			case joined[strings.ToLower(ed.rightTable)] && strings.EqualFold(ed.leftTable, name):
				treeTable, treeCol, newCol = ed.rightTable, ed.rightCol, ed.leftCol
			default:
				continue
			}
			lk, err := current.Schema().IndexOf(treeTable, treeCol)
			if err != nil {
				return nil, fmt.Errorf("logical: join key: %w", err)
			}
			rk, err := inputs[i].Schema().IndexOf(name, newCol)
			if err != nil {
				return nil, fmt.Errorf("logical: join key: %w", err)
			}
			lt, rt := current.Schema().Column(lk).Type, inputs[i].Schema().Column(rk).Type
			if (lt == relation.TString) != (rt == relation.TString) {
				return nil, fmt.Errorf("logical: join key type mismatch: %v vs %v", lt, rt)
			}
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			ed.used = true
		}
		if len(leftKeys) == 0 {
			return nil, fmt.Errorf("logical: no join predicate connects %q (cartesian products unsupported)", name)
		}
		current = NewJoin(current, inputs[i], leftKeys, rightKeys)
		joined[strings.ToLower(name)] = true
	}
	for _, e := range edges {
		if e.used {
			continue
		}
		// An equi-join edge between tables already joined becomes a filter.
		postJoin = append(postJoin, sqlparse.Comparison{
			Left:  sqlparse.ColumnRef{Table: e.leftTable, Name: e.leftCol},
			Op:    sqlparse.OpEq,
			Right: sqlparse.ColumnRef{Table: e.rightTable, Name: e.rightCol},
		})
	}

	if len(postJoin) > 0 {
		pred, err := compileConjunction(postJoin, current.Schema(), hints)
		if err != nil {
			return nil, err
		}
		current = &Filter{Child: current, Pred: pred, Conjuncts: postJoin, Selectivity: estimateSelectivity(postJoin)}
	}

	// Aggregation path: GROUP BY present or any aggregate in the list.
	if isAggregateQuery(stmt) {
		agg, err := planAggregate(stmt, current, hints)
		if err != nil {
			return nil, err
		}
		return planOrderLimit(stmt, agg)
	}

	// SELECT list: operation calls first, then the final projection.
	var ords []int
	for _, item := range stmt.Items {
		switch e := item.Expr.(type) {
		case sqlparse.Star:
			if item.Alias != "" {
				return nil, fmt.Errorf("logical: cannot alias *")
			}
			// Expand in declared FROM order, not join-tree order: greedy
			// join reordering must stay invisible in the output columns.
			for _, s := range sources {
				name := s.ref.EffectiveName()
				ss := s.scan.Schema()
				for ci := 0; ci < ss.Len(); ci++ {
					ord, err := current.Schema().IndexOf(name, ss.Column(ci).Name)
					if err != nil {
						return nil, fmt.Errorf("logical: %w", err)
					}
					ords = append(ords, ord)
				}
			}
		case sqlparse.FuncCall:
			fn, err := cat.Function(e.Name)
			if err != nil {
				return nil, fmt.Errorf("logical: %w", err)
			}
			if len(e.Args) != len(fn.ArgTypes) {
				return nil, fmt.Errorf("logical: %s expects %d arguments, got %d", fn.Name, len(fn.ArgTypes), len(e.Args))
			}
			argOrds := make([]int, len(e.Args))
			for ai, arg := range e.Args {
				cr, ok := arg.(sqlparse.ColumnRef)
				if !ok {
					return nil, fmt.Errorf("logical: %s argument %d must be a column reference", fn.Name, ai+1)
				}
				ord, err := current.Schema().IndexOf(cr.Table, cr.Name)
				if err != nil {
					return nil, fmt.Errorf("logical: %w", err)
				}
				if got := current.Schema().Column(ord).Type; got != fn.ArgTypes[ai] {
					return nil, fmt.Errorf("logical: %s argument %d: want %v, got %v", fn.Name, ai+1, fn.ArgTypes[ai], got)
				}
				argOrds[ai] = ord
			}
			name := item.Alias
			if name == "" {
				name = fn.Name
			}
			current = NewOpCall(current, fn, argOrds, name)
			ords = append(ords, current.Schema().Len()-1)
		case sqlparse.ColumnRef:
			ord, err := current.Schema().IndexOf(e.Table, e.Name)
			if err != nil {
				return nil, fmt.Errorf("logical: %w", err)
			}
			ords = append(ords, ord)
		default:
			return nil, fmt.Errorf("logical: unsupported select expression %s", item.Expr.SQL())
		}
	}
	return planOrderLimit(stmt, NewProject(current, ords))
}

// isAggregateQuery reports whether the statement needs an Aggregate node.
func isAggregateQuery(stmt *sqlparse.SelectStmt) bool {
	if len(stmt.GroupBy) > 0 {
		return true
	}
	for _, item := range stmt.Items {
		if call, ok := item.Expr.(sqlparse.FuncCall); ok {
			if _, isAgg := AggKindOf(call.Name); isAgg {
				return true
			}
		}
	}
	return false
}

// planAggregate lowers the GROUP BY / aggregate select list onto current.
// Every non-aggregate select item must be one of the grouping columns, as
// in standard SQL.
func planAggregate(stmt *sqlparse.SelectStmt, current Node, hints map[int]sqlparse.ParamType) (Node, error) {
	schema := current.Schema()
	groupOrds := make([]int, len(stmt.GroupBy))
	for i, col := range stmt.GroupBy {
		ord, err := schema.IndexOf(col.Table, col.Name)
		if err != nil {
			return nil, fmt.Errorf("logical: GROUP BY: %w", err)
		}
		groupOrds[i] = ord
	}
	inGroup := func(ord int) (int, bool) {
		for i, g := range groupOrds {
			if g == ord {
				return i, true
			}
		}
		return 0, false
	}

	// First pass: collect aggregate specs and classify select items.
	type outItem struct {
		groupIdx int // index into groupOrds, or -1
		aggIdx   int // index into aggs, or -1
	}
	var (
		aggs  []AggSpec
		items []outItem
	)
	for _, item := range stmt.Items {
		switch e := item.Expr.(type) {
		case sqlparse.ColumnRef:
			ord, err := schema.IndexOf(e.Table, e.Name)
			if err != nil {
				return nil, fmt.Errorf("logical: %w", err)
			}
			gi, ok := inGroup(ord)
			if !ok {
				return nil, fmt.Errorf("logical: column %s must appear in GROUP BY or inside an aggregate", e.SQL())
			}
			items = append(items, outItem{groupIdx: gi, aggIdx: -1})
		case sqlparse.FuncCall:
			kind, isAgg := AggKindOf(e.Name)
			if !isAgg {
				return nil, fmt.Errorf("logical: operation call %s cannot be mixed with aggregation", e.SQL())
			}
			spec := AggSpec{Kind: kind, ArgOrd: -1, Name: item.Alias}
			if spec.Name == "" {
				spec.Name = strings.ToLower(e.Name)
			}
			switch {
			case len(e.Args) == 1:
				if _, isStar := e.Args[0].(sqlparse.Star); isStar {
					if kind != AggCount {
						return nil, fmt.Errorf("logical: %s(*) is only valid for COUNT", kind)
					}
				} else {
					cr, ok := e.Args[0].(sqlparse.ColumnRef)
					if !ok {
						return nil, fmt.Errorf("logical: %s argument must be a column reference", kind)
					}
					ord, err := schema.IndexOf(cr.Table, cr.Name)
					if err != nil {
						return nil, fmt.Errorf("logical: %w", err)
					}
					argType := schema.Column(ord).Type
					if (kind == AggSum || kind == AggAvg) && argType == relation.TString {
						return nil, fmt.Errorf("logical: %s over non-numeric column %s", kind, cr.SQL())
					}
					spec.ArgOrd = ord
				}
			default:
				return nil, fmt.Errorf("logical: %s expects exactly one argument", kind)
			}
			items = append(items, outItem{groupIdx: -1, aggIdx: len(aggs)})
			aggs = append(aggs, spec)
		default:
			return nil, fmt.Errorf("logical: unsupported select expression %s in aggregation", item.Expr.SQL())
		}
	}
	if len(aggs) == 0 && len(groupOrds) == 0 {
		return nil, fmt.Errorf("logical: aggregation query without aggregates or grouping")
	}

	// HAVING conjuncts filter groups after aggregation. Each side referring
	// to an aggregate gets its own hidden aggregate column (uniquely named,
	// so the rewritten predicate compiles unambiguously on evaluators) that
	// the final projection drops again.
	var havingRewritten []sqlparse.Comparison
	if len(stmt.Having) > 0 {
		rewrite := func(e sqlparse.Expr) (sqlparse.Expr, error) {
			switch v := e.(type) {
			case sqlparse.IntLit, sqlparse.FloatLit, sqlparse.StringLit, sqlparse.Param:
				return e, nil
			case sqlparse.ColumnRef:
				ord, err := schema.IndexOf(v.Table, v.Name)
				if err != nil {
					return nil, fmt.Errorf("logical: HAVING: %w", err)
				}
				gi, ok := inGroup(ord)
				if !ok {
					return nil, fmt.Errorf("logical: HAVING column %s must appear in GROUP BY", v.SQL())
				}
				// Reference the group column by its position in the
				// aggregate output (same name, unique per qualifier).
				col := schema.Column(groupOrds[gi])
				return sqlparse.ColumnRef{Table: col.Table, Name: col.Name}, nil
			case sqlparse.FuncCall:
				kind, isAgg := AggKindOf(v.Name)
				if !isAgg {
					return nil, fmt.Errorf("logical: HAVING supports only aggregates, not %s", v.SQL())
				}
				spec := AggSpec{Kind: kind, ArgOrd: -1,
					Name: fmt.Sprintf("_having%d", len(aggs))}
				if len(v.Args) != 1 {
					return nil, fmt.Errorf("logical: %s expects exactly one argument", kind)
				}
				if _, isStar := v.Args[0].(sqlparse.Star); isStar {
					if kind != AggCount {
						return nil, fmt.Errorf("logical: %s(*) is only valid for COUNT", kind)
					}
				} else {
					cr, ok := v.Args[0].(sqlparse.ColumnRef)
					if !ok {
						return nil, fmt.Errorf("logical: %s argument must be a column reference", kind)
					}
					ord, err := schema.IndexOf(cr.Table, cr.Name)
					if err != nil {
						return nil, fmt.Errorf("logical: HAVING: %w", err)
					}
					if (kind == AggSum || kind == AggAvg) && schema.Column(ord).Type == relation.TString {
						return nil, fmt.Errorf("logical: %s over non-numeric column %s", kind, cr.SQL())
					}
					spec.ArgOrd = ord
				}
				aggs = append(aggs, spec)
				return sqlparse.ColumnRef{Name: spec.Name}, nil
			default:
				return nil, fmt.Errorf("logical: unsupported HAVING expression %s", e.SQL())
			}
		}
		for _, cmp := range stmt.Having {
			left, err := rewrite(cmp.Left)
			if err != nil {
				return nil, err
			}
			right, err := rewrite(cmp.Right)
			if err != nil {
				return nil, err
			}
			havingRewritten = append(havingRewritten, sqlparse.Comparison{
				Left: left, Op: cmp.Op, Right: right,
			})
		}
	}

	var node Node = NewAggregate(current, groupOrds, aggs)
	if len(havingRewritten) > 0 {
		pred, err := compileConjunction(havingRewritten, node.Schema(), hints)
		if err != nil {
			return nil, err
		}
		node = &Filter{Child: node, Pred: pred, Conjuncts: havingRewritten, Selectivity: 0.5}
	}
	// Project to the select-list order over the aggregate output schema
	// (group columns first, then aggregate columns; hidden HAVING
	// aggregates are dropped here).
	ords := make([]int, len(items))
	for i, it := range items {
		if it.aggIdx >= 0 {
			ords[i] = len(groupOrds) + it.aggIdx
		} else {
			ords[i] = it.groupIdx
		}
	}
	return NewProject(node, ords), nil
}

// planOrderLimit wraps the plan with Sort and Limit nodes when the
// statement asks for them; ORDER BY keys resolve against the output schema
// (select aliases included).
func planOrderLimit(stmt *sqlparse.SelectStmt, plan Node) (Node, error) {
	if len(stmt.OrderBy) > 0 {
		keys := make([]SortKey, len(stmt.OrderBy))
		for i, item := range stmt.OrderBy {
			ord, err := plan.Schema().IndexOf(item.Col.Table, item.Col.Name)
			if err != nil {
				return nil, fmt.Errorf("logical: ORDER BY: %w", err)
			}
			keys[i] = SortKey{Ord: ord, Desc: item.Desc}
		}
		plan = &Sort{Child: plan, Keys: keys}
	}
	if stmt.Limit != nil {
		plan = &Limit{Child: plan, N: *stmt.Limit}
	}
	return plan, nil
}

func isColumn(e sqlparse.Expr) bool {
	_, ok := e.(sqlparse.ColumnRef)
	return ok
}

// compileExpr lowers a scalar AST expression (column or literal) against a
// schema.
func compileExpr(e sqlparse.Expr, schema *relation.Schema) (scalar.Expr, error) {
	switch v := e.(type) {
	case sqlparse.ColumnRef:
		ord, err := schema.IndexOf(v.Table, v.Name)
		if err != nil {
			return nil, fmt.Errorf("logical: %w", err)
		}
		col := schema.Column(ord)
		return scalar.Col(ord, col.Type, col.QualifiedName()), nil
	case sqlparse.IntLit:
		return scalar.Const(relation.Int(v.Value)), nil
	case sqlparse.FloatLit:
		return scalar.Const(relation.Float(v.Value)), nil
	case sqlparse.StringLit:
		return scalar.Const(relation.String(v.Value)), nil
	case sqlparse.Param:
		// Parameter slots compile to a typed placeholder constant: template
		// plans are never executed directly, only after BindParams replaces
		// the slots with literals, so only the type matters here.
		switch v.Hint {
		case sqlparse.PInt:
			return scalar.Const(relation.Int(0)), nil
		case sqlparse.PFloat:
			return scalar.Const(relation.Float(0)), nil
		case sqlparse.PString:
			return scalar.Const(relation.String("")), nil
		default:
			return nil, fmt.Errorf("logical: cannot infer type of parameter ?%d", v.Ord)
		}
	case sqlparse.FuncCall:
		return nil, fmt.Errorf("logical: operation calls are not allowed in predicates (%s)", v.SQL())
	default:
		return nil, fmt.Errorf("logical: unsupported expression %s", e.SQL())
	}
}

var opMap = map[sqlparse.CompareOp]scalar.Op{
	sqlparse.OpEq: scalar.Eq,
	sqlparse.OpNe: scalar.Ne,
	sqlparse.OpLt: scalar.Lt,
	sqlparse.OpLe: scalar.Le,
	sqlparse.OpGt: scalar.Gt,
	sqlparse.OpGe: scalar.Ge,
}

// inferHint derives the parameter type an untyped slot must carry from the
// expression on the other side of its comparison.
func inferHint(opposite sqlparse.Expr, schema *relation.Schema) (sqlparse.ParamType, error) {
	switch v := opposite.(type) {
	case sqlparse.ColumnRef:
		ord, err := schema.IndexOf(v.Table, v.Name)
		if err != nil {
			return sqlparse.PAny, fmt.Errorf("logical: %w", err)
		}
		switch schema.Column(ord).Type {
		case relation.TInt:
			return sqlparse.PInt, nil
		case relation.TFloat:
			return sqlparse.PFloat, nil
		case relation.TString:
			return sqlparse.PString, nil
		}
	case sqlparse.IntLit:
		return sqlparse.PInt, nil
	case sqlparse.FloatLit:
		return sqlparse.PFloat, nil
	case sqlparse.StringLit:
		return sqlparse.PString, nil
	case sqlparse.Param:
		if v.Hint != sqlparse.PAny {
			return v.Hint, nil
		}
	}
	return sqlparse.PAny, fmt.Errorf("logical: cannot infer parameter type from %s", opposite.SQL())
}

// typeParam resolves an untyped parameter slot against the other side of its
// comparison, recording the inferred type in hints.
func typeParam(e, opposite sqlparse.Expr, schema *relation.Schema, hints map[int]sqlparse.ParamType) (sqlparse.Expr, error) {
	p, ok := e.(sqlparse.Param)
	if !ok {
		return e, nil
	}
	if p.Hint == sqlparse.PAny {
		hint, err := inferHint(opposite, schema)
		if err != nil {
			return nil, fmt.Errorf("%w (parameter ?%d)", err, p.Ord)
		}
		p.Hint = hint
	}
	if hints != nil {
		hints[p.Ord] = p.Hint
	}
	return p, nil
}

func compileConjunction(conjs []sqlparse.Comparison, schema *relation.Schema, hints map[int]sqlparse.ParamType) (scalar.Predicate, error) {
	preds := make([]scalar.Predicate, 0, len(conjs))
	for _, c := range conjs {
		lhs, err := typeParam(c.Left, c.Right, schema, hints)
		if err != nil {
			return nil, err
		}
		rhs, err := typeParam(c.Right, c.Left, schema, hints)
		if err != nil {
			return nil, err
		}
		l, err := compileExpr(lhs, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(rhs, schema)
		if err != nil {
			return nil, err
		}
		op, ok := opMap[c.Op]
		if !ok {
			return nil, fmt.Errorf("logical: unsupported operator %q", c.Op)
		}
		p, err := scalar.Compare(l, op, r)
		if err != nil {
			return nil, fmt.Errorf("logical: %w", err)
		}
		preds = append(preds, p)
	}
	return scalar.And(preds...), nil
}

// estimateSelectivity is the crude textbook estimate the optimiser uses for
// initial scheduling: 0.1 per equality conjunct, 0.3 per inequality.
func estimateSelectivity(conjs []sqlparse.Comparison) float64 {
	sel := 1.0
	for _, c := range conjs {
		if c.Op == sqlparse.OpEq {
			sel *= 0.1
		} else {
			sel *= 0.3
		}
	}
	return sel
}

// CompilePredicate lowers AST conjuncts against a schema; evaluation
// services use it to re-compile the predicates shipped inside physical
// plans.
func CompilePredicate(conjs []sqlparse.Comparison, schema *relation.Schema) (scalar.Predicate, error) {
	return compileConjunction(conjs, schema, nil)
}
