package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// threeTableCatalog: annotations (100) — protein_sequences (3000) —
// protein_interactions_small (50), with equi-join edges a–p and p–i only.
// Cardinalities are arranged so that after the start (i, the global minimum)
// the smallest unplaced table (a, 100) is NOT connected to the joined set:
// the greedy order must respect connectivity, not just size.
func threeTableCatalog() *catalog.Catalog {
	c := demoCatalog()
	_ = c.PutTable(catalog.TableMeta{
		Name: "annotations",
		Schema: relation.NewSchema(
			relation.Column{Table: "annotations", Name: "ORF", Type: relation.TString},
			relation.Column{Table: "annotations", Name: "note", Type: relation.TString},
		),
		Cardinality: 100, AvgTupleBytes: 40, Node: "data1",
	})
	_ = c.PutTable(catalog.TableMeta{
		Name: "protein_interactions_small",
		Schema: relation.NewSchema(
			relation.Column{Table: "protein_interactions_small", Name: "ORF1", Type: relation.TString},
			relation.Column{Table: "protein_interactions_small", Name: "ORF2", Type: relation.TString},
		),
		Cardinality: 50, AvgTupleBytes: 25, Node: "data1",
	})
	return c
}

func planWith(t *testing.T, cat *catalog.Catalog, q string) Node {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Plan(stmt, cat)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return n
}

// leftmostScan walks the left spine of a plan down to its deepest scan (the
// hash join's innermost build side), skipping pushed filters.
func leftmostScan(t *testing.T, n Node) *Scan {
	t.Helper()
	for {
		switch v := n.(type) {
		case *Project:
			n = v.Child
		case *Filter:
			n = v.Child
		case *Join:
			n = v.Left
		case *Scan:
			return v
		default:
			t.Fatalf("unexpected node on left spine: %T", n)
		}
	}
}

func TestGreedyStartsAtSmallestTable(t *testing.T) {
	// FROM lists the big table first; the build side must still be the small
	// one (3000 sequences vs 4700 interactions).
	n := plan(t, "select p.ORF from protein_interactions i, protein_sequences p where i.ORF1 = p.ORF")
	if s := leftmostScan(t, n); s.Alias != "p" {
		t.Fatalf("build side = %q, want the smaller protein_sequences p", s.Alias)
	}
}

func TestGreedyFilterSelectivityFlipsOrder(t *testing.T) {
	// An equality filter on the bigger table scales its estimate by 0.1:
	// 4700 * 0.1 = 470 < 3000, so the filtered interactions become the build
	// side even though the raw table is larger.
	n := plan(t, "select p.ORF from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF and i.ORF2 = 'YAL00001C'")
	if s := leftmostScan(t, n); s.Alias != "i" {
		t.Fatalf("build side = %q, want the filtered protein_interactions i", s.Alias)
	}
}

func TestGreedyRespectsConnectivity(t *testing.T) {
	// The walk starts at the global minimum (i, 50). The smallest remaining
	// table (a, 100) only connects through protein_sequences, so the order
	// must be ((i join p) join a) — p joins before the smaller but
	// unreachable a, and no cartesian step is ever taken.
	n := planWith(t, threeTableCatalog(),
		"select a.note from annotations a, protein_sequences p, protein_interactions_small i "+
			"where a.ORF = p.ORF and i.ORF1 = p.ORF")
	var outer *Join
	switch v := n.(type) {
	case *Project:
		outer, _ = v.Child.(*Join)
	}
	if outer == nil {
		t.Fatalf("root child is not a join: %T", n)
	}
	inner, ok := outer.Left.(*Join)
	if !ok {
		t.Fatalf("outer left = %T, want the i-p join", outer.Left)
	}
	if s, ok := inner.Left.(*Scan); !ok || s.Alias != "i" {
		t.Fatalf("innermost build side = %#v, want protein_interactions_small i", inner.Left)
	}
	if s, ok := outer.Right.(*Scan); !ok || s.Alias != "a" {
		t.Fatalf("outer probe side = %#v, want annotations a", outer.Right)
	}
}

func TestGreedyTieBreaksOnFromOrder(t *testing.T) {
	// Equal estimates: the declared FROM order must win, so estimate-free
	// catalogs keep the pre-reordering plans.
	c := catalog.New()
	for _, name := range []string{"t1", "t2"} {
		_ = c.PutTable(catalog.TableMeta{
			Name: name,
			Schema: relation.NewSchema(
				relation.Column{Table: name, Name: "k", Type: relation.TString},
			),
			Cardinality: 1000, AvgTupleBytes: 10, Node: "data1",
		})
	}
	n := planWith(t, c, "select a.k from t2 a, t1 b where a.k = b.k")
	if s := leftmostScan(t, n); s.Alias != "a" {
		t.Fatalf("build side = %q, want first FROM entry a on a tie", s.Alias)
	}
}

func TestGreedyUnreachableTableStillErrors(t *testing.T) {
	// Two tables joined, a third with no predicate touching it: the
	// connectivity walk must report the cartesian product, not invent one.
	stmt, err := sqlparse.Parse(
		"select a.note from annotations a, protein_sequences p, protein_interactions_small i where a.ORF = p.ORF")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Plan(stmt, threeTableCatalog())
	if err == nil || !strings.Contains(err.Error(), "cartesian") {
		t.Fatalf("err = %v, want cartesian-product rejection", err)
	}
}

func TestStarExpandsInDeclaredOrderAfterReordering(t *testing.T) {
	// Greedy reordering puts p on the build side, but SELECT * must still
	// produce the declared FROM order: i's columns before p's.
	n := plan(t, "select * from protein_interactions i, protein_sequences p where i.ORF1 = p.ORF")
	want := []string{"i.ORF1", "i.ORF2", "p.ORF", "p.sequence"}
	s := n.Schema()
	if s.Len() != len(want) {
		t.Fatalf("star schema = %v", s)
	}
	for k, w := range want {
		if got := s.Column(k).QualifiedName(); got != w {
			t.Fatalf("column %d = %q, want %q", k, got, w)
		}
	}
}
