package logical

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// AggKind enumerates the built-in aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggCount AggKind = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggKindOf resolves an aggregate function name; ok is false for ordinary
// (Web Service) functions.
func AggKindOf(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	default:
		return 0, false
	}
}

// resultType returns the aggregate's output type given its argument type
// (ignored for COUNT).
func (k AggKind) resultType(arg relation.Type) relation.Type {
	switch k {
	case AggCount:
		return relation.TInt
	case AggSum, AggAvg:
		return relation.TFloat
	default:
		return arg
	}
}

// AggSpec is one aggregate column of an Aggregate node.
type AggSpec struct {
	Kind AggKind
	// ArgOrd is the input-column ordinal, or -1 for COUNT(*).
	ArgOrd int
	// Name is the output column name.
	Name string
}

// Aggregate groups its input by the key ordinals and computes the listed
// aggregates per group. The engine implements it as a bucketed hash
// aggregate whose state — like the hash join's — can be repartitioned at
// runtime: groups live in routing buckets, and moving a bucket replays its
// raw input tuples from the exchange recovery logs onto the new owner.
type Aggregate struct {
	Child Node
	// GroupOrds are the grouping-key ordinals into the child schema; empty
	// for a global aggregate (one output row).
	GroupOrds []int
	Aggs      []AggSpec
	schema    *relation.Schema
}

// NewAggregate builds an aggregate node; the output schema is the group
// columns followed by the aggregate columns.
func NewAggregate(child Node, groupOrds []int, aggs []AggSpec) *Aggregate {
	cols := make([]relation.Column, 0, len(groupOrds)+len(aggs))
	for _, o := range groupOrds {
		cols = append(cols, child.Schema().Column(o))
	}
	for _, a := range aggs {
		var argType relation.Type
		if a.ArgOrd >= 0 {
			argType = child.Schema().Column(a.ArgOrd).Type
		}
		cols = append(cols, relation.Column{Name: a.Name, Type: a.Kind.resultType(argType)})
	}
	return &Aggregate{
		Child:     child,
		GroupOrds: append([]int(nil), groupOrds...),
		Aggs:      append([]AggSpec(nil), aggs...),
		schema:    relation.NewSchema(cols...),
	}
}

// Schema implements Node.
func (a *Aggregate) Schema() *relation.Schema { return a.schema }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// Label implements Node.
func (a *Aggregate) Label() string {
	keys := make([]string, len(a.GroupOrds))
	for i, o := range a.GroupOrds {
		keys[i] = a.Child.Schema().Column(o).QualifiedName()
	}
	aggs := make([]string, len(a.Aggs))
	for i, sp := range a.Aggs {
		arg := "*"
		if sp.ArgOrd >= 0 {
			arg = a.Child.Schema().Column(sp.ArgOrd).QualifiedName()
		}
		aggs[i] = fmt.Sprintf("%s(%s)", sp.Kind, arg)
	}
	return fmt.Sprintf("Aggregate(by [%s]: %s)", strings.Join(keys, ", "), strings.Join(aggs, ", "))
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Ord  int
	Desc bool
}

// Sort orders its input by the keys. It is a blocking operator evaluated at
// the result collection site.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() *relation.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Label implements Node.
func (s *Sort) Label() string {
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		keys[i] = s.Child.Schema().Column(k.Ord).QualifiedName()
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort(%s)", strings.Join(keys, ", "))
}

// Limit truncates its input to the first N tuples.
type Limit struct {
	Child Node
	N     int64
}

// Schema implements Node.
func (l *Limit) Schema() *relation.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit(%d)", l.N) }
