// Package logical defines the logical query algebra and the planner that
// lowers a parsed SELECT statement into it, performing name resolution and
// type checking against the metadata catalog, classic predicate pushdown,
// and extraction of equi-join keys (the keys later drive hash partitioning
// of the join across evaluators).
package logical

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/scalar"
	"repro/internal/sqlparse"
)

// Node is a logical plan operator.
type Node interface {
	// Schema is the output schema.
	Schema() *relation.Schema
	// Children returns the input operators.
	Children() []Node
	// Label is the operator name with its parameters, single-line.
	Label() string
}

// Scan reads a base table from its Grid Data Service.
type Scan struct {
	Table catalog.TableMeta
	// Alias is the effective name the query binds the table to.
	Alias  string
	schema *relation.Schema
}

// NewScan builds a scan node; the output schema carries the alias.
func NewScan(meta catalog.TableMeta, alias string) *Scan {
	return &Scan{Table: meta, Alias: alias, schema: meta.Schema.WithAlias(alias)}
}

// Schema implements Node.
func (s *Scan) Schema() *relation.Schema { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Label implements Node.
func (s *Scan) Label() string {
	return fmt.Sprintf("Scan(%s AS %s @%s, card=%d)", s.Table.Name, s.Alias, s.Table.Node, s.Table.Cardinality)
}

// Filter applies a conjunctive predicate.
type Filter struct {
	Child Node
	Pred  scalar.Predicate
	// Conjuncts is the predicate in AST form; physical plans ship this
	// form to evaluators, which re-compile it against the child schema.
	Conjuncts []sqlparse.Comparison
	// Selectivity is the planner's estimate of the fraction of tuples
	// passing the predicate.
	Selectivity float64
}

// Schema implements Node.
func (f *Filter) Schema() *relation.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Label implements Node.
func (f *Filter) Label() string { return fmt.Sprintf("Filter(%s)", f.Pred) }

// Join is an equi-join on the listed key ordinals (into the respective
// child schemas). The engine implements it as a partitioned hash join with
// the left input as the build side.
type Join struct {
	Left, Right Node
	// LeftKeys[i] joins with RightKeys[i].
	LeftKeys, RightKeys []int
	schema              *relation.Schema
}

// NewJoin builds a join node.
func NewJoin(left, right Node, leftKeys, rightKeys []int) *Join {
	return &Join{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Node.
func (j *Join) Schema() *relation.Schema { return j.schema }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Label implements Node.
func (j *Join) Label() string {
	pairs := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		pairs[i] = fmt.Sprintf("%s=%s",
			j.Left.Schema().Column(j.LeftKeys[i]).QualifiedName(),
			j.Right.Schema().Column(j.RightKeys[i]).QualifiedName())
	}
	return fmt.Sprintf("HashJoin(%s)", strings.Join(pairs, ", "))
}

// OpCall invokes a Web Service operation per input tuple and appends the
// result as a new column — OGSA-DQP's operation_call operator.
type OpCall struct {
	Child Node
	Fn    catalog.FunctionMeta
	// ArgOrds are the input-column ordinals passed as arguments.
	ArgOrds []int
	// ResultName is the output column name.
	ResultName string
	schema     *relation.Schema
}

// NewOpCall builds an operation-call node.
func NewOpCall(child Node, fn catalog.FunctionMeta, argOrds []int, resultName string) *OpCall {
	out := child.Schema().Concat(relation.NewSchema(
		relation.Column{Name: resultName, Type: fn.ResultType},
	))
	return &OpCall{Child: child, Fn: fn, ArgOrds: argOrds, ResultName: resultName, schema: out}
}

// Schema implements Node.
func (o *OpCall) Schema() *relation.Schema { return o.schema }

// Children implements Node.
func (o *OpCall) Children() []Node { return []Node{o.Child} }

// Label implements Node.
func (o *OpCall) Label() string {
	return fmt.Sprintf("OperationCall(%s -> %s, cost=%gms)", o.Fn.Name, o.ResultName, o.Fn.CostMs)
}

// Project keeps the columns at the given ordinals, in order.
type Project struct {
	Child  Node
	Ords   []int
	schema *relation.Schema
}

// NewProject builds a projection node.
func NewProject(child Node, ords []int) *Project {
	return &Project{Child: child, Ords: ords, schema: child.Schema().Project(ords)}
}

// Schema implements Node.
func (p *Project) Schema() *relation.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Label implements Node.
func (p *Project) Label() string {
	names := make([]string, len(p.Ords))
	for i, o := range p.Ords {
		names[i] = p.schema.Column(i).QualifiedName()
		_ = o
	}
	return fmt.Sprintf("Project(%s)", strings.Join(names, ", "))
}

// Explain renders the plan tree, one operator per line, children indented.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
