package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/vtime"
)

// Measurement is one paper-vs-measured data point, normalised to the
// experiment's "no adaptivity / no imbalance" baseline.
type Measurement struct {
	Label string
	// Paper is the paper's reported value; NaN when the paper gives the
	// value only graphically (Approx marks values read off a figure).
	Paper    float64
	Approx   bool
	Measured float64
}

// Experiment is one reproduced table or figure.
type Experiment struct {
	ID    string
	Title string
	Notes []string
	Rows  []Measurement
}

// Render formats the experiment as a Markdown section.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", e.ID, e.Title)
	b.WriteString("| configuration | paper | measured |\n|---|---|---|\n")
	for _, r := range e.Rows {
		paper := "—"
		if !math.IsNaN(r.Paper) {
			paper = fmt.Sprintf("%.2f", r.Paper)
			if r.Approx {
				paper = "≈" + paper
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %.2f |\n", r.Label, paper, r.Measured)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// baselineCache avoids re-measuring the unperturbed baseline of a query
// within one experiment.
type runner struct {
	baselines map[string]float64
}

func newRunner() *runner {
	return &runner{baselines: make(map[string]float64)}
}

// baseline measures (once) the no-adaptivity / no-imbalance response of a
// configuration, identified by its query and data size. It takes the
// minimum of two executions: timing noise is additive, so the faster run is
// the better estimate of the modelled response.
func (r *runner) baseline(cfg Config) (float64, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", cfg.Query, cfg.Sequences, cfg.Interactions, cfg.WSNodes)
	if v, ok := r.baselines[key]; ok {
		return v, nil
	}
	base := cfg
	base.Adaptive = false
	base.Perturb = nil
	base.Response = 0
	base.Assessment = 0
	best := 0.0
	for i := 0; i < 2; i++ {
		res, err := Run(base)
		if err != nil {
			return 0, err
		}
		if best == 0 || res.ResponseMs < best {
			best = res.ResponseMs
		}
	}
	r.baselines[key] = best
	return best, nil
}

// normalised runs cfg and divides by the family baseline. The baseline
// configuration itself is 1.00 by definition (as in the paper's tables).
// Short runs — unperturbed or adaptive — are measured as the minimum of two
// executions to suppress scheduler and GC noise, which is additive;
// heavily-perturbed static runs are long enough that one execution
// suffices.
func (r *runner) normalised(cfg Config) (float64, *Result, error) {
	base, err := r.baseline(cfg)
	if err != nil {
		return 0, nil, err
	}
	if !cfg.Adaptive && len(cfg.Perturb) == 0 {
		res, err := Run(cfg)
		if err != nil {
			return 0, nil, err
		}
		return 1.0, res, nil
	}
	reps := 1
	if cfg.Adaptive || len(cfg.Perturb) == 0 {
		reps = 2
	}
	var best *Result
	for i := 0; i < reps; i++ {
		res, err := Run(cfg)
		if err != nil {
			return 0, nil, err
		}
		if best == nil || res.ResponseMs < best.ResponseMs {
			best = res
		}
	}
	return best.ResponseMs / base, best, nil
}

// runBest executes cfg reps times and returns the fastest result.
func runBest(cfg Config, reps int) (*Result, error) {
	var best *Result
	for i := 0; i < reps; i++ {
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || res.ResponseMs < best.ResponseMs {
			best = res
		}
	}
	return best, nil
}

// Table1 reproduces Table 1: normalised performance of Q1 (responses R2 and
// R1) and Q2 (R1) under {no ad, ad} × {no imb, imb}. Imbalance: one WS call
// 10× costlier (Q1); sleep(10ms) before each join tuple (Q2).
func Table1() (*Experiment, error) {
	e := &Experiment{
		ID:    "Table 1",
		Title: "Performance of queries in normalised units",
		Notes: []string{
			"Imbalance: Q1 = one WS call 10× costlier; Q2 = sleep(10 ms) per join tuple on one machine.",
		},
	}
	r := newRunner()
	type variant struct {
		name     string
		query    string
		response core.Response
		perturb  vtime.Perturbation
		paper    [4]float64
	}
	variants := []variant{
		{"Q1 - R2", Q1, core.R2, vtime.Multiplier(10), [4]float64{1, 1.059, 3.53, 1.45}},
		{"Q1 - R1", Q1, core.R1, vtime.Multiplier(10), [4]float64{1, 1.15, 3.53, 1.57}},
		{"Q2 - R1", Q2, core.R1, vtime.Sleep(10), [4]float64{1, 1.11, 1.71, 1.31}},
	}
	for _, v := range variants {
		cells := []struct {
			col      string
			adaptive bool
			imb      bool
		}{
			{"no ad / no imb", false, false},
			{"ad / no imb", true, false},
			{"no ad / imb", false, true},
			{"ad / imb", true, true},
		}
		for i, c := range cells {
			cfg := Config{Query: v.query, Adaptive: c.adaptive, Response: v.response}
			if c.imb {
				cfg.Perturb = map[int]vtime.Perturbation{1: v.perturb}
			}
			ratio, _, err := r.normalised(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", v.name, c.col, err)
			}
			e.Rows = append(e.Rows, Measurement{
				Label:    v.name + ", " + c.col,
				Paper:    v.paper[i],
				Measured: ratio,
			})
		}
	}
	return e, nil
}

// Fig2a reproduces Fig. 2(a): Q1 with prospective adaptations while the
// perturbed WS is 10, 20 and 30 times costlier.
func Fig2a() (*Experiment, error) {
	e := &Experiment{
		ID:    "Fig 2(a)",
		Title: "Q1, prospective adaptations (R2), varying the size of perturbation",
	}
	r := newRunner()
	paperOff := map[int]float64{10: 3.53, 20: 6.66, 30: 9.76}
	paperOn := map[int]float64{10: 1.45, 20: 2.48, 30: 3.79}
	for _, k := range []int{10, 20, 30} {
		for _, adaptive := range []bool{false, true} {
			cfg := Config{Query: Q1, Adaptive: adaptive, Response: core.R2,
				Perturb: map[int]vtime.Perturbation{1: vtime.Multiplier(float64(k))}}
			ratio, _, err := r.normalised(cfg)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%d times, adaptivity disabled", k)
			paper := paperOff[k]
			if adaptive {
				label = fmt.Sprintf("%d times, adaptivity enabled", k)
				paper = paperOn[k]
			}
			e.Rows = append(e.Rows, Measurement{Label: label, Paper: paper, Measured: ratio})
		}
	}
	return e, nil
}

// Fig2b reproduces Fig. 2(b): Q1 under the three adaptivity policy
// combinations A1-R2, A1-R1 and A2-R2 at 10/20/30× perturbation.
func Fig2b() (*Experiment, error) {
	e := &Experiment{
		ID:    "Fig 2(b)",
		Title: "Q1, effects of different adaptivity policies",
		Notes: []string{
			"Paper values for A1-R1 and A2-R2 are read off the figure (the paper reports them graphically).",
			"Expected shape: A1 beats A2 (pipelining overlaps communication with processing); retrospective " +
				"bars stay nearly flat as the perturbation grows while prospective bars grow.",
		},
	}
	r := newRunner()
	type policy struct {
		name       string
		assessment core.Assessment
		response   core.Response
		paper      map[int]float64
		approx     bool
	}
	policies := []policy{
		{"A1-R2", core.A1, core.R2, map[int]float64{10: 1.45, 20: 2.48, 30: 3.79}, false},
		{"A1-R1", core.A1, core.R1, map[int]float64{10: 1.6, 20: 1.7, 30: 1.8}, true},
		{"A2-R2", core.A2, core.R2, map[int]float64{10: 1.8, 20: 3.0, 30: 4.5}, true},
	}
	for _, k := range []int{10, 20, 30} {
		for _, p := range policies {
			cfg := Config{Query: Q1, Adaptive: true, Assessment: p.assessment, Response: p.response,
				Perturb: map[int]vtime.Perturbation{1: vtime.Multiplier(float64(k))}}
			ratio, _, err := r.normalised(cfg)
			if err != nil {
				return nil, err
			}
			e.Rows = append(e.Rows, Measurement{
				Label:    fmt.Sprintf("%s, %d times", p.name, k),
				Paper:    p.paper[k],
				Approx:   p.approx,
				Measured: ratio,
			})
		}
	}
	return e, nil
}

// Fig3a reproduces Fig. 3(a): Q2 with retrospective adaptations while the
// injected sleep grows from 10 to 100 ms per join tuple.
func Fig3a() (*Experiment, error) {
	e := &Experiment{
		ID:    "Fig 3(a)",
		Title: "Q2, retrospective adaptations (A1-R1), varying the injected sleep",
		Notes: []string{
			"Paper values beyond sleep(10 ms) are read off the figure.",
		},
	}
	r := newRunner()
	paperOff := map[int]struct {
		v      float64
		approx bool
	}{10: {1.71, false}, 50: {4.5, true}, 100: {8.5, true}}
	paperOn := map[int]struct {
		v      float64
		approx bool
	}{10: {1.31, false}, 50: {1.5, true}, 100: {1.7, true}}
	for _, ms := range []int{10, 50, 100} {
		for _, adaptive := range []bool{false, true} {
			cfg := Config{Query: Q2, Adaptive: adaptive, Assessment: core.A1, Response: core.R1,
				Perturb: map[int]vtime.Perturbation{1: vtime.Sleep(float64(ms))}}
			ratio, _, err := r.normalised(cfg)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("sleep %d ms, adaptivity disabled", ms)
			paper := paperOff[ms]
			if adaptive {
				label = fmt.Sprintf("sleep %d ms, adaptivity enabled", ms)
				paper = paperOn[ms]
			}
			e.Rows = append(e.Rows, Measurement{Label: label, Paper: paper.v, Approx: paper.approx, Measured: ratio})
		}
	}
	return e, nil
}

// Fig3b reproduces Fig. 3(b): Q1 with double data size (6000 tuples) and
// prospective adaptations — with more of the input still undistributed when
// the adaptation lands, prospective performance approaches retrospective.
func Fig3b() (*Experiment, error) {
	e := &Experiment{
		ID:    "Fig 3(b)",
		Title: "Q1 with 6000 tuples, prospective adaptations",
		Notes: []string{
			"Paper: results are 'very close to those when adaptations are retrospective'; values read off the figure.",
		},
	}
	r := newRunner()
	paperOff := map[int]float64{10: 3.8, 20: 7.0, 30: 10.0}
	paperOn := map[int]float64{10: 1.3, 20: 1.6, 30: 2.0}
	for _, k := range []int{10, 20, 30} {
		for _, adaptive := range []bool{false, true} {
			cfg := Config{Query: Q1, Sequences: 6000, Adaptive: adaptive, Response: core.R2,
				Perturb: map[int]vtime.Perturbation{1: vtime.Multiplier(float64(k))}}
			ratio, _, err := r.normalised(cfg)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%d times, adaptivity disabled", k)
			paper := paperOff[k]
			if adaptive {
				label = fmt.Sprintf("%d times, adaptivity enabled", k)
				paper = paperOn[k]
			}
			e.Rows = append(e.Rows, Measurement{Label: label, Paper: paper, Approx: true, Measured: ratio})
		}
	}
	return e, nil
}

// Fig4 reproduces Fig. 4: Q1 over three WS machines with retrospective
// adaptations, varying how many of them are perturbed (10/20/30×).
func Fig4() (*Experiment, error) {
	e := &Experiment{
		ID:    "Fig 4",
		Title: "Q1, retrospective adaptations, 3 WS machines, varying the number perturbed",
		Notes: []string{
			"Paper values are read off the figures. Expected shape: with adaptivity the degradation is small and " +
				"nearly magnitude-independent while at least one machine is unperturbed; without adaptivity it " +
				"scales with the perturbation.",
		},
	}
	r := newRunner()
	paperOff := map[[2]int]float64{
		{10, 1}: 3.5, {10, 2}: 3.6, {10, 3}: 3.7,
		{20, 1}: 6.5, {20, 2}: 6.6, {20, 3}: 6.8,
		{30, 1}: 9.5, {30, 2}: 9.7, {30, 3}: 10,
	}
	paperOn := map[[2]int]float64{
		{10, 1}: 1.3, {10, 2}: 1.6, {10, 3}: 3.3,
		{20, 1}: 1.4, {20, 2}: 1.7, {20, 3}: 6.2,
		{30, 1}: 1.5, {30, 2}: 1.8, {30, 3}: 9.2,
	}
	for _, k := range []int{10, 20, 30} {
		for perturbed := 0; perturbed <= 3; perturbed++ {
			for _, adaptive := range []bool{false, true} {
				perturb := make(map[int]vtime.Perturbation, perturbed)
				for i := 0; i < perturbed; i++ {
					// Perturb from the highest index down so ws0 is the
					// last unperturbed machine.
					perturb[2-i] = vtime.Multiplier(float64(k))
				}
				cfg := Config{Query: Q1, WSNodes: 3, Adaptive: adaptive, Response: core.R1, Perturb: perturb}
				ratio, _, err := r.normalised(cfg)
				if err != nil {
					return nil, err
				}
				mode := "disabled"
				paper, havePaper := math.NaN(), false
				if adaptive {
					mode = "enabled"
					paper, havePaper = paperOn[[2]int{k, perturbed}], perturbed > 0
				} else {
					paper, havePaper = paperOff[[2]int{k, perturbed}], perturbed > 0
				}
				if perturbed == 0 {
					paper, havePaper = 1, true
				}
				if !havePaper {
					paper = math.NaN()
				}
				e.Rows = append(e.Rows, Measurement{
					Label:    fmt.Sprintf("%d times, %d perturbed, adaptivity %s", k, perturbed, mode),
					Paper:    paper,
					Approx:   perturbed > 0,
					Measured: ratio,
				})
			}
		}
	}
	return e, nil
}

// Fig5 reproduces Fig. 5: Q1 under perturbations that vary per tuple in a
// normally distributed way with a stable mean of 30×, for both prospective
// and retrospective adaptations.
func Fig5() (*Experiment, error) {
	e := &Experiment{
		ID:    "Fig 5",
		Title: "Q1 under changing perturbations (normally distributed per tuple, mean 30×)",
		Notes: []string{
			"Paper: 'the performance with adaptivity is modified only slightly' relative to the stable 30× case; " +
				"values read off the figure.",
		},
	}
	r := newRunner()
	ranges := []struct {
		label string
		make  func() vtime.Perturbation
	}{
		{"[30,30]", func() vtime.Perturbation { return vtime.Multiplier(30) }},
		{"[25,35]", func() vtime.Perturbation { return vtime.NewNormalMultiplier(25, 35, 5) }},
		{"[20,40]", func() vtime.Perturbation { return vtime.NewNormalMultiplier(20, 40, 5) }},
		{"[1,60]", func() vtime.Perturbation { return vtime.NewNormalMultiplier(1, 60, 5) }},
	}
	for _, response := range []core.Response{core.R2, core.R1} {
		paperStable := 3.79
		if response == core.R1 {
			paperStable = 1.8
		}
		for _, rg := range ranges {
			cfg := Config{Query: Q1, Adaptive: true, Response: response,
				Perturb: map[int]vtime.Perturbation{1: rg.make()}}
			ratio, _, err := r.normalised(cfg)
			if err != nil {
				return nil, err
			}
			e.Rows = append(e.Rows, Measurement{
				Label:    fmt.Sprintf("%s, %s", response, rg.label),
				Paper:    paperStable,
				Approx:   true,
				Measured: ratio,
			})
		}
	}
	return e, nil
}
