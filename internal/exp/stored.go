package exp

import (
	"fmt"
	"math"
	"os"

	"repro/internal/obs"
	"repro/internal/services"
)

// storedScaleSeqs sizes the streaming-scan experiment's stored tables:
// 4x the paper's demo cardinality, large enough that both tables together
// dwarf the configured memory budget by the acceptance floor below while
// keeping the run in experiment-suite time.
const storedScaleSeqs = 12000

// storedBudgetRatio is the floor the experiment holds: stored table bytes
// must be at least this multiple of the query memory budget, so the scan
// genuinely streams and stateful operators genuinely spill.
const storedBudgetRatio = 16

// StoredStreaming measures the streaming scan engine (DESIGN.md §5k),
// which has no paper counterpart: Q2's join evaluated over posix-stored
// block-framed tables many times the query's memory budget, against the
// same query over in-memory tables with no budget. The rows report the
// table-bytes-to-budget ratio, result divergence (must be zero — the
// stored, budgeted, readahead run is byte-identical), stored blocks read,
// and the leak checks: inflight budget bytes after the query must be zero.
func StoredStreaming() (*Experiment, error) {
	e := &Experiment{
		ID:    "Streaming",
		Title: "Q2 over posix-stored tables ≫ memory budget (streaming scan engine, beyond the paper)",
	}
	ints := storedScaleSeqs * 47 / 30 // the demo 3000:4700 ratio
	cfg := Config{Query: Q2, Sequences: storedScaleSeqs, Interactions: ints}

	// Reference: in-memory tables, unlimited memory.
	want, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: streaming reference run: %w", err)
	}

	// Stored: the same query over posix block runs under a budget derived
	// from the catalog's stored volume, with readahead at its default
	// double buffering. The table-backend/budget/spill hooks are the same
	// package-level defaults the dqp-experiments flags use; save/restore
	// them so the rest of the suite is unaffected.
	spillDir, err := os.MkdirTemp("", "dqp-exp-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)
	savedBackend, savedBudget, savedSpill := DefaultTableBackend, DefaultMemoryBudget, DefaultSpillDir
	defer func() {
		DefaultTableBackend, DefaultMemoryBudget, DefaultSpillDir = savedBackend, savedBudget, savedSpill
	}()
	DefaultTableBackend = "posix"
	DefaultSpillDir = spillDir

	var totalBytes int64
	storedCfg := cfg
	storedCfg.OnCluster = func(c *services.Cluster) {
		// The data node is registered by now: size the budget from the
		// catalog's stored volume so the ratio holds at any scale.
		for _, name := range []string{"protein_sequences", "protein_interactions"} {
			meta, err := c.Catalog().Table(name)
			if err == nil {
				totalBytes += meta.TotalBytes
			}
		}
		DefaultMemoryBudget = totalBytes / storedBudgetRatio
	}

	o := obs.Default()
	blocks0 := o.Counter(obs.MScanBlocksRead).Value()
	readahead0 := o.Counter(obs.MScanReadaheadBytes).Value()
	got, err := Run(storedCfg)
	if err != nil {
		return nil, fmt.Errorf("exp: streaming stored run: %w", err)
	}
	blocksRead := o.Counter(obs.MScanBlocksRead).Value() - blocks0
	readaheadBytes := o.Counter(obs.MScanReadaheadBytes).Value() - readahead0
	if totalBytes == 0 || DefaultMemoryBudget == 0 {
		return nil, fmt.Errorf("exp: streaming run never sized its budget from the catalog")
	}
	if blocksRead == 0 {
		return nil, fmt.Errorf("exp: streaming run never read stored blocks")
	}

	e.Rows = append(e.Rows,
		Measurement{Label: "stored table bytes / memory budget", Paper: math.NaN(),
			Measured: float64(totalBytes) / float64(DefaultMemoryBudget)},
		Measurement{Label: "result rows diverging from in-memory unbudgeted run", Paper: math.NaN(),
			Measured: float64(divergingRows(got.Rows, want.Rows))},
		Measurement{Label: "stored blocks read", Paper: math.NaN(), Measured: float64(blocksRead)},
		Measurement{Label: "readahead bytes reserved over the run", Paper: math.NaN(),
			Measured: float64(readaheadBytes)},
		Measurement{Label: "mem_inflight_bytes after query", Paper: math.NaN(),
			Measured: float64(o.Gauge(obs.MMemInflight).Value())},
		Measurement{Label: "response vs in-memory unbudgeted run", Paper: math.NaN(),
			Measured: got.ResponseMs / want.ResponseMs},
	)
	e.Notes = append(e.Notes,
		"The streaming scan engine is an extension (DESIGN.md §5k); there are no paper values. Tables are "+
			"generated as block-framed posix runs and scanned batch-at-a-time with budget-governed readahead; "+
			"the memory budget is sized from the catalog's stored volume so the tables dwarf it by design.",
		"Divergence is compared tuple for tuple against the in-memory, unbudgeted run — storage backend, "+
			"memory budget and readahead change where bytes live and when they move, never the result.",
		"`make bigtable` runs the same scenario as a test (GRIDDQP_BIGTABLE_ROWS scales it); "+
			"BENCH_micro.json holds the batched-vs-cursor throughput floors (ScanStoredTuple/ScanStoredBatch).",
	)
	return e, nil
}
