package exp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

// runMin executes the config reps times and keeps the fastest run; timing
// noise (GC, scheduler) is additive, so the minimum is the best estimate of
// the modelled response.
func runMin(t *testing.T, cfg Config, reps int) *Result {
	t.Helper()
	var best *Result
	for i := 0; i < reps; i++ {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || res.ResponseMs < best.ResponseMs {
			best = res
		}
	}
	return best
}

// TestCalibrationQ1 checks the headline shape of Table 1 / Fig. 2(a): the
// ratios need not match the paper's numbers exactly, but who wins and by
// roughly what factor must hold. It runs at reduced data size to stay fast;
// the full-size runs live in the benchmarks.
func TestCalibrationQ1(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs take seconds")
	}
	base := runMin(t, Config{Query: Q1}, 2)
	t.Logf("base response: %.0f paper-ms", base.ResponseMs)

	noAd, err := Run(Config{Query: Q1, Perturb: perturbWS1(vtime.Multiplier(10))})
	if err != nil {
		t.Fatal(err)
	}
	r1 := noAd.ResponseMs / base.ResponseMs
	t.Logf("no-ad x10: ratio %.2f (paper 3.53)", r1)
	if r1 < 2.5 || r1 > 5 {
		t.Errorf("no-ad x10 ratio %.2f outside [2.5, 5] (paper 3.53)", r1)
	}

	adR2 := runMin(t, Config{Query: Q1, Adaptive: true, Response: core.R2,
		Perturb: perturbWS1(vtime.Multiplier(10))}, 2)
	r2 := adR2.ResponseMs / base.ResponseMs
	t.Logf("ad-R2 x10: ratio %.2f (paper 1.45), adaptations=%d consumed=%v",
		r2, adR2.Stats.Adaptations, adR2.ConsumedByWS)
	if r2 >= r1*0.7 {
		t.Errorf("adaptivity gain too small: ad %.2f vs no-ad %.2f", r2, r1)
	}

	adNoImb := runMin(t, Config{Query: Q1, Adaptive: true, Response: core.R2}, 2)
	ov := adNoImb.ResponseMs/base.ResponseMs - 1
	t.Logf("ad-R2 no-imb overhead: %.1f%% (paper 5.9%%)", ov*100)
	if ov < -0.05 || ov > 0.25 {
		t.Errorf("R2 overhead %.1f%% outside [-5,25]%%", ov*100)
	}
}

func perturbWS1(p vtime.Perturbation) map[int]vtime.Perturbation {
	return map[int]vtime.Perturbation{1: p}
}

// TestCalibrationQ2 checks the Q2 row of Table 1: sleep(10 ms) per join
// tuple degrades the static system noticeably, and retrospective adaptation
// recovers most of it.
func TestCalibrationQ2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs take seconds")
	}
	base := runMin(t, Config{Query: Q2}, 2)
	t.Logf("Q2 base response: %.0f paper-ms", base.ResponseMs)
	noAd, err := Run(Config{Query: Q2, Perturb: perturbWS1(vtime.Sleep(10))})
	if err != nil {
		t.Fatal(err)
	}
	r1 := noAd.ResponseMs / base.ResponseMs
	t.Logf("Q2 no-ad sleep(10): ratio %.2f (paper 1.71)", r1)
	if r1 < 1.25 || r1 > 2.6 {
		t.Errorf("Q2 no-ad ratio %.2f outside [1.25, 2.6] (paper 1.71)", r1)
	}
	ad := runMin(t, Config{Query: Q2, Adaptive: true, Response: core.R1,
		Perturb: perturbWS1(vtime.Sleep(10))}, 2)
	r2 := ad.ResponseMs / base.ResponseMs
	t.Logf("Q2 ad-R1 sleep(10): ratio %.2f (paper 1.31), adaptations=%d replays=%d",
		r2, ad.Stats.Adaptations, ad.Stats.StateReplays)
	if r2 >= r1 {
		t.Errorf("Q2 adaptivity did not help: ad %.2f vs no-ad %.2f", r2, r1)
	}
	if ad.Stats.Rows != base.Stats.Rows {
		t.Errorf("row count changed under adaptation: %d vs %d", ad.Stats.Rows, base.Stats.Rows)
	}
}
