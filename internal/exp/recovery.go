package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/ws"
)

// Recovery measures the elastic-cluster extension (DESIGN.md §5h), which the
// paper leaves as future work: Q1 over three evaluators with one of them
// crash-stopped mid-query, and Q1 over two evaluators with a third joining
// mid-query. There are no paper values — the rows report the cost of fault
// tolerance when nothing fails, the response-time ratio when an evaluator
// does fail, the detection-to-resume recovery latency in paper milliseconds,
// and the tuple share a mid-query joiner picks up. The faulted run's result
// set is compared tuple for tuple against the unfaulted run's.
func Recovery() (*Experiment, error) {
	e := &Experiment{
		ID:    "Recovery",
		Title: "Q1 with evaluator failure and live join (elastic cluster, beyond the paper)",
	}
	r := newRunner()
	base3, err := r.baseline(Config{Query: Q1, WSNodes: 3}.withDefaults())
	if err != nil {
		return nil, err
	}

	// The cost of fault tolerance when no fault happens: checkpoint-commit
	// acknowledgements and serial drivers, measured against the static run.
	unfaulted, err := runBest(Config{Query: Q1, WSNodes: 3, Adaptive: true, Elastic: true}, 2)
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Measurement{
		Label: "elastic on, no failure (FT overhead)", Paper: math.NaN(),
		Measured: unfaulted.ResponseMs / base3,
	})

	// Kill one of three evaluators mid-query. The kill point is tied to the
	// victim's own monitoring stream (its 30th raw event, roughly a third of
	// the way through its share), so it is deterministic in query progress;
	// a kill can still lose the race against completion on a loaded host, so
	// the scenario retries until a failover actually ran.
	victim := WSNodeID(1)
	var killed *Result
	var detectMs, replayMs, resumeMs float64
	for attempt := 0; attempt < 5 && killed == nil; attempt++ {
		startSeq := timelineStart()
		var inj *chaos.Injector
		res, err := Run(Config{Query: Q1, WSNodes: 3, Adaptive: true, Elastic: true,
			OnCluster: func(c *services.Cluster) {
				inj = chaos.New(c)
				inj.KillAfterEvents(victim, victim, 30)
			}})
		if inj != nil {
			inj.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("exp: recovery kill run: %w", err)
		}
		if res.Stats.Failovers >= 1 {
			killed = res
			detectMs, replayMs, resumeMs = recoveryLatencies(startSeq, victim)
		}
	}
	if killed == nil {
		return nil, fmt.Errorf("exp: evaluator kill never landed mid-query in 5 attempts")
	}
	e.Rows = append(e.Rows,
		Measurement{Label: "elastic on, 1 of 3 evaluators killed mid-query", Paper: math.NaN(),
			Measured: killed.ResponseMs / base3},
		Measurement{Label: "failure detection latency (paper-ms)", Paper: math.NaN(), Measured: detectMs},
		Measurement{Label: "failover: reweight + replay onto survivors (paper-ms)", Paper: math.NaN(), Measured: replayMs},
		Measurement{Label: "crash to resumed routing (paper-ms)", Paper: math.NaN(), Measured: resumeMs},
		Measurement{Label: "result rows diverging from unfaulted run", Paper: math.NaN(),
			Measured: float64(divergingRows(killed.Rows, unfaulted.Rows))},
	)

	// Start with two evaluators and register a third mid-query: the session
	// must admit it with a nonzero weight share without restarting.
	base2, err := r.baseline(Config{Query: Q1, WSNodes: 2}.withDefaults())
	if err != nil {
		return nil, err
	}
	cal := DefaultCalibration()
	var joined *Result
	for attempt := 0; attempt < 5 && joined == nil; attempt++ {
		var timer *time.Timer
		res, err := Run(Config{Query: Q1, WSNodes: 2, Adaptive: true, Elastic: true,
			OnCluster: func(c *services.Cluster) {
				timer = time.AfterFunc(100*time.Millisecond, func() {
					_ = c.AddComputeNode(WSNodeID(2), 1.0,
						ws.NewRegistry(ws.Entropy{CostMs: cal.EntropyCostMs}, ws.SequenceLength{}))
				})
			}})
		if timer != nil {
			timer.Stop()
		}
		if err != nil {
			return nil, fmt.Errorf("exp: recovery join run: %w", err)
		}
		if res.Stats.NodesJoined >= 1 {
			joined = res
		}
	}
	if joined == nil {
		return nil, fmt.Errorf("exp: mid-query join never landed in 5 attempts")
	}
	e.Rows = append(e.Rows,
		Measurement{Label: "evaluator joining mid-query (2→3), vs 2-node baseline", Paper: math.NaN(),
			Measured: joined.ResponseMs / base2},
		Measurement{Label: "joined evaluator's share of tuples (%)", Paper: math.NaN(),
			Measured: joinerShare(joined)},
	)
	e.Notes = append(e.Notes,
		"The paper cites machine failure and changing machine sets as future work (§4); there are no paper "+
			"values, so every row is measured-only.",
		"Detection latency spans the authoritative membership 'leave' publication to the session's failure "+
			"pipeline starting; the in-process bus delivers it almost immediately, and the active heartbeat "+
			"(HeartbeatEvery × HeartbeatMisses, default 50 ms real time) bounds detection when that signal is "+
			"lost (e.g. a network partition).",
		"'Crash to resumed routing' additionally covers interrupting the dead machine's drivers, zeroing its "+
			"weights, and replaying its unacknowledged partitions from the producers' recovery logs onto "+
			"survivors — after which routing resumes and the result is still exact (0 diverging rows).",
	)
	return e, nil
}

// timelineStart returns the sequence number the next appended observability
// event will receive, so a run's events can be filtered out afterwards.
func timelineStart() int64 {
	evs := obs.Default().Timeline().Events()
	if len(evs) == 0 {
		return 0
	}
	return evs[len(evs)-1].Seq + 1
}

// recoveryLatencies reads one run's failure events (from startSeq on) off the
// observability timeline: the membership 'leave' to failure-'detected' gap,
// the failover duration recorded on the final 'recovered' event, and the full
// 'leave'-to-'recovered' span. All in paper milliseconds; NaN when an event
// is missing.
func recoveryLatencies(startSeq int64, victim simnet.NodeID) (detect, replay, resume float64) {
	leaveAt, detectAt, recoverAt := math.NaN(), math.NaN(), math.NaN()
	replay = math.NaN()
	for _, ev := range obs.Default().Timeline().Events() {
		if ev.Seq < startSeq || ev.Node != string(victim) {
			continue
		}
		switch {
		case ev.Kind == obs.KindMembership && ev.Detail == "leave":
			if math.IsNaN(leaveAt) {
				leaveAt = ev.AtMs
			}
		case ev.Kind == obs.KindFailure && ev.Outcome == "detected":
			if math.IsNaN(detectAt) {
				detectAt = ev.AtMs
			}
		case ev.Kind == obs.KindFailure && ev.Outcome == "recovered":
			if math.IsNaN(recoverAt) || ev.AtMs > recoverAt {
				recoverAt = ev.AtMs
				replay = ev.DurationMs
			}
		}
	}
	return detectAt - leaveAt, replay, recoverAt - leaveAt
}

// divergingRows compares two result sets order-insensitively (row order
// across instances is nondeterministic by design) and counts rows present in
// one but not the other.
func divergingRows(got, want []relation.Tuple) int {
	a, b := renderSorted(got), renderSorted(want)
	diverging := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			diverging++
			i++
		default:
			diverging++
			j++
		}
	}
	return diverging + (len(a) - i) + (len(b) - j)
}

// renderSorted canonicalises a result set for comparison.
func renderSorted(rows []relation.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.Format())
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// joinerShare reports the percentage of the partitioned fragment's tuples
// evaluated by the admitted instance (#2).
func joinerShare(res *Result) float64 {
	var newcomer, total int64
	for _, frag := range res.Stats.Plan.Fragments {
		if !frag.Partitioned {
			continue
		}
		for id, n := range res.Stats.ConsumedByInstance {
			if !strings.HasPrefix(id, frag.ID+"#") {
				continue
			}
			total += n
			if strings.HasSuffix(id, "#2") {
				newcomer += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return 100 * float64(newcomer) / float64(total)
}
