package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/vtime"
)

// Overheads reproduces the paper's overhead analysis (§3.2, Overheads): Q1
// with no WS perturbation, measuring the cost of having adaptivity enabled
// when it is not needed, the tuple-distribution balance, and the
// notification traffic volumes that show "the system is not flooded by
// messages".
func Overheads() (*Experiment, error) {
	e := &Experiment{
		ID:    "Overheads",
		Title: "Q1 without perturbation: the cost of unnecessary adaptivity",
	}
	r := newRunner()
	base, err := r.baseline(Config{Query: Q1}.withDefaults())
	if err != nil {
		return nil, err
	}

	prospective, err := runBest(Config{Query: Q1, Adaptive: true, Response: core.R2}, 2)
	if err != nil {
		return nil, err
	}
	retrospective, err := runBest(Config{Query: Q1, Adaptive: true, Response: core.R1}, 2)
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows,
		Measurement{Label: "prospective (R2) overhead %", Paper: 5.9,
			Measured: (prospective.ResponseMs/base - 1) * 100},
		Measurement{Label: "retrospective (R1) overhead %", Paper: 15.3,
			Measured: (retrospective.ResponseMs/base - 1) * 100},
		Measurement{Label: "tuple ratio (R2, unperturbed)", Paper: 1.21,
			Measured: tupleRatio(prospective.ConsumedByWS)},
		Measurement{Label: "tuple ratio (R1, unperturbed)", Paper: 1.01,
			Measured: tupleRatio(retrospective.ConsumedByWS)},
	)

	// Notification-volume analysis under a 10× perturbation: the paper
	// reports 100–300 raw engine events filtered to ~10 Diagnoser
	// notifications, 1–3 of which lead to actual rebalancing.
	perturbed, err := Run(Config{Query: Q1, Adaptive: true, Response: core.R2,
		Perturb: map[int]vtime.Perturbation{1: vtime.Multiplier(10)}})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows,
		Measurement{Label: "raw engine events (10×)", Paper: 200, Approx: true,
			Measured: float64(perturbed.Stats.RawEvents)},
		Measurement{Label: "MED→Diagnoser notifications (10×)", Paper: 10, Approx: true,
			Measured: float64(perturbed.Stats.MEDNotifications)},
		Measurement{Label: "actual rebalancings (10×)", Paper: 2, Approx: true,
			Measured: float64(perturbed.Stats.Adaptations)},
	)
	e.Notes = append(e.Notes,
		"Paper: raw events 100–300, ~10 MED→Diagnoser notifications, 1–3 rebalancings; the paper's midpoints are tabled.",
		"Our raw-event count covers every fragment and both event types (the scan fragment alone emits ~300 M1 "+
			"events for 3000 tuples); the filtering ratio is the claim being reproduced, and it holds: "+
			"hundreds of raw events collapse to ~10 notifications and 1–3 rebalancings.",
		"The unperturbed tuple ratios measure 1.00 exactly because modelled costs are noise-free, so no spurious "+
			"adaptation fires; the paper's 1.21 comes from 'slight fluctuations in performance that are "+
			"inevitable in a real wide-area environment'.",
	)
	return e, nil
}

// tupleRatio reports max/min of the per-machine tuple counts.
func tupleRatio(counts []int64) float64 {
	if len(counts) == 0 {
		return math.NaN()
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC == 0 {
		return math.NaN()
	}
	return float64(maxC) / float64(minC)
}

// MonitoringFrequency reproduces the paper's monitoring-frequency study
// (§3.2, Overheads, final paragraph): Q1 with one WS 10× costlier while the
// raw monitoring frequency varies between 0 (no monitoring, hence no
// adaptivity) and one notification per 10, 20 and 30 tuples. Both
// adaptation quality and overhead should be insensitive to the frequency.
func MonitoringFrequency() (*Experiment, error) {
	e := &Experiment{
		ID:    "Monitoring frequency",
		Title: "Q1 (10× perturbation) under varying raw monitoring frequency",
		Notes: []string{
			"The paper omits this figure for space but reports both adaptation quality and overhead to be " +
				"'rather insensitive' to the monitoring frequency; frequency 0 disables adaptation entirely.",
		},
	}
	r := newRunner()
	for _, every := range []int{0, 10, 20, 30} {
		cfg := Config{Query: Q1, Adaptive: true, Response: core.R2,
			MonitorEvery: every,
			Perturb:      map[int]vtime.Perturbation{1: vtime.Multiplier(10)}}
		if every == 0 {
			// withDefaults would reset 0 to 10 for adaptive runs; an
			// explicitly disabled monitor is the static system.
			cfg.Adaptive = false
		}
		ratio, res, err := r.normalised(cfg)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("1 notification / %d tuples", every)
		paper := math.NaN()
		if every == 0 {
			label = "no monitoring (frequency 0)"
			paper = 3.53
		}
		e.Rows = append(e.Rows, Measurement{Label: label, Paper: paper, Measured: ratio})
		_ = res
	}
	return e, nil
}

// All runs every experiment in paper order.
func All() ([]*Experiment, error) {
	type builder struct {
		name string
		fn   func() (*Experiment, error)
	}
	builders := []builder{
		{"Table1", Table1},
		{"Fig2a", Fig2a},
		{"Fig2b", Fig2b},
		{"Fig3a", Fig3a},
		{"Fig3b", Fig3b},
		{"Fig4", Fig4},
		{"Fig5", Fig5},
		{"Overheads", Overheads},
		{"MonitoringFrequency", MonitoringFrequency},
		{"Recovery", Recovery},
	}
	var out []*Experiment
	for _, b := range builders {
		e, err := b.fn()
		if err != nil {
			return out, fmt.Errorf("exp: %s: %w", b.name, err)
		}
		out = append(out, e)
	}
	return out, nil
}
