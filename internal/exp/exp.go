// Package exp reproduces the paper's evaluation (§3.2): it assembles the
// calibrated simulated Grid — one data node, two or three WS/compute nodes,
// a coordinator on a 100 Mbps network — runs the two evaluation queries
// under the paper's perturbation scenarios, and regenerates every table and
// figure as paper-vs-measured comparisons.
//
// Calibration: the engine's cost parameters (see engine.DefaultCosts and
// Calibration below) are chosen so that the *unperturbed* cost mix matches
// what the paper's measured ratios imply — a large fixed service-creation
// cost (Globus Toolkit 3), per-tuple retrieval/serialisation costs that
// make "data communication and retrieval contribute to the total response
// time", and a 10 paper-ms EntropyAnalyser call. All results are reported
// normalised to the "no adaptivity / no imbalance" run of the same query,
// exactly as in the paper, so the absolute scale cancels.
package exp

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// Query names the two evaluation queries.
const (
	// Q1 retrieves 3000 protein sequences and analyses each through the
	// EntropyAnalyser Web Service: computation-intensive, WS-dominated.
	Q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"
	// Q2 joins protein_sequences with the 4700-tuple protein_interactions:
	// the expensive operator is a traditional (stateful) hash join.
	Q2 = "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF"
)

// Calibration holds the cost parameters of the simulated testbed.
type Calibration struct {
	Costs engine.Costs
	// EntropyCostMs is the unperturbed per-call WS cost.
	EntropyCostMs float64
	// R1LogAppendMs replaces Costs.LogAppendMs when the retrospective
	// response mode is configured: the paper measures log management to be
	// roughly three times costlier under R1.
	R1LogAppendMs float64
}

// DefaultCalibration returns the parameters used for EXPERIMENTS.md.
func DefaultCalibration() Calibration {
	return Calibration{
		Costs:         engine.DefaultCosts(),
		EntropyCostMs: 10,
		R1LogAppendMs: 1.3,
	}
}

// Config describes one experimental run.
type Config struct {
	// Query is Q1 or Q2 (any SQL accepted).
	Query string
	// Sequences and Interactions size the demo tables; zero selects the
	// paper's defaults (3000 / 4700).
	Sequences    int
	Interactions int
	// WSNodes is the number of compute machines evaluating the expensive
	// operator (paper default 2; Fig. 4 uses 3).
	WSNodes int
	// Adaptive toggles the AQP components (the "ad" / "no ad" columns).
	Adaptive bool
	// Assessment and Response select the adaptivity policies.
	Assessment core.Assessment
	Response   core.Response
	// MonitorEvery is the M1 frequency in tuples; 0 disables monitoring.
	MonitorEvery int
	// Perturb assigns an artificial load to WS node i.
	Perturb map[int]vtime.Perturbation
	// Parallelism is the morsel worker-pool width of every fragment driver
	// (0 falls back to the package-level DefaultParallelism; 1 is serial).
	Parallelism int
	// Scale is the real duration of a paper millisecond (default 10µs).
	Scale time.Duration
	// Calibration overrides the default testbed parameters when non-nil.
	Calibration *Calibration
	// Elastic enables evaluator crash recovery and live membership
	// (DESIGN.md §5h); it only takes effect together with Adaptive.
	Elastic bool
	// OnCluster, when non-nil, runs against the assembled cluster after
	// every node is registered and before the query starts — the hook the
	// Recovery experiment uses to arm fault injection and mid-query joins.
	OnCluster func(*services.Cluster)

	// Ablation knobs (zero selects the paper defaults).
	MED             *core.MEDConfig
	ThresA          float64
	Buckets         int
	BufferTuples    int
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.Query == "" {
		c.Query = Q1
	}
	if c.Sequences == 0 {
		c.Sequences = dataset.DefaultSequences
	}
	if c.Interactions == 0 {
		c.Interactions = dataset.DefaultInteractions
	}
	if c.WSNodes == 0 {
		c.WSNodes = 2
	}
	if c.Assessment == 0 {
		c.Assessment = core.A1
	}
	if c.Response == 0 {
		c.Response = core.R2
	}
	if c.MonitorEvery == 0 && c.Adaptive {
		c.MonitorEvery = 10
	}
	if c.Scale == 0 {
		c.Scale = 10 * time.Microsecond
	}
	if c.Calibration == nil {
		cal := DefaultCalibration()
		c.Calibration = &cal
	}
	return c
}

// DefaultParallelism is applied to every run whose Config leaves Parallelism
// unset — the hook for the dqp-experiments -parallel flag (negative values
// resolve to GOMAXPROCS inside the services layer).
var DefaultParallelism int

// DefaultMemoryBudget and DefaultSpillDir are applied to every run — the
// hooks for the dqp-experiments -mem-budget and -spill-dir flags, so the
// whole suite can be replayed under memory governance.
var (
	DefaultMemoryBudget int64
	DefaultSpillDir     string
)

// DefaultTableRows, DefaultTableBackend and DefaultScanReadahead are the
// hooks for the dqp-experiments -table-rows, -table-backend and -readahead
// flags. A nonzero DefaultTableRows overrides every run's protein_sequences
// cardinality (protein_interactions scales proportionally), so the whole
// suite can be replayed against much larger tables. A non-empty
// DefaultTableBackend generates the tables as block-framed stored runs
// instead of in-memory slices: "memory" stores them on the in-memory
// backend, "posix" on a temporary on-disk directory removed after the run,
// and any other value is taken as a posix directory path to reuse.
// DefaultScanReadahead sets GDQSConfig.ScanReadahead for every run
// (0 default double buffering, negative synchronous).
var (
	DefaultTableRows     int
	DefaultTableBackend  string
	DefaultScanReadahead int
)

// buildStore materialises the demo tables for one run, honouring the
// -table-rows / -table-backend overrides. cleanup is non-nil when a
// temporary on-disk backend must be removed after the run.
func buildStore(sequences, interactions int) (store *dataset.Store, cleanup func(), err error) {
	if DefaultTableRows > 0 {
		ratio := float64(interactions) / float64(max(sequences, 1))
		sequences = DefaultTableRows
		interactions = int(float64(DefaultTableRows) * ratio)
	}
	if DefaultTableBackend == "" {
		return dataset.DemoSized(sequences, interactions), nil, nil
	}
	var backend storage.Backend
	switch DefaultTableBackend {
	case "memory":
		backend = storage.NewMemory()
	case "posix":
		dir, derr := os.MkdirTemp("", "dqp-tables-")
		if derr != nil {
			return nil, nil, fmt.Errorf("exp: table dir: %w", derr)
		}
		cleanup = func() { os.RemoveAll(dir) }
		backend, err = storage.NewPosix(dir)
	default:
		backend, err = storage.NewPosix(DefaultTableBackend)
	}
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, nil, err
	}
	store, err = dataset.DemoStored(backend, sequences, interactions)
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, nil, err
	}
	return store, cleanup, nil
}

// WSNodeID names the i-th compute machine.
func WSNodeID(i int) simnet.NodeID { return simnet.NodeID(fmt.Sprintf("ws%d", i)) }

// Result is one completed run.
type Result struct {
	ResponseMs float64
	Stats      services.QueryStats
	// ConsumedByWS reports, per WS node index, the tuples its partitioned
	// fragment instance evaluated.
	ConsumedByWS []int64
	// Rows is the full result set, retained so the Recovery experiment can
	// compare faulted runs against unfaulted ones tuple for tuple.
	Rows []relation.Tuple
}

// Run executes one configuration to completion.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := *cfg.Calibration
	costs := cal.Costs
	if cfg.Adaptive && cfg.Response == core.R1 {
		costs.LogAppendMs = cal.R1LogAppendMs
	}
	buckets := cfg.Buckets
	if buckets <= 0 {
		buckets = engine.DefaultBuckets
	}
	bufferTuples := cfg.BufferTuples
	if bufferTuples <= 0 {
		bufferTuples = engine.DefaultBufferTuples
	}
	checkpointEvery := cfg.CheckpointEvery
	if checkpointEvery <= 0 {
		checkpointEvery = engine.DefaultCheckpointEvery
	}
	cluster := services.NewCluster(services.ClusterConfig{
		Scale:           cfg.Scale,
		Costs:           costs,
		Buckets:         buckets,
		BufferTuples:    bufferTuples,
		CheckpointEvery: checkpointEvery,
	})
	defer cluster.Close()
	store, storeCleanup, err := buildStore(cfg.Sequences, cfg.Interactions)
	if err != nil {
		return nil, err
	}
	if storeCleanup != nil {
		defer storeCleanup()
	}
	if err := cluster.AddDataNode("data1", store); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.WSNodes; i++ {
		reg := ws.NewRegistry(ws.Entropy{CostMs: cal.EntropyCostMs}, ws.SequenceLength{})
		if err := cluster.AddComputeNode(WSNodeID(i), 1.0, reg); err != nil {
			return nil, err
		}
	}
	for i, p := range cfg.Perturb {
		node := cluster.Node(WSNodeID(i))
		if node == nil {
			return nil, fmt.Errorf("exp: perturbation for unknown WS node %d", i)
		}
		node.SetPerturbation(p)
	}
	if cfg.OnCluster != nil {
		cfg.OnCluster(cluster)
	}
	med := core.DefaultMEDConfig()
	if cfg.MED != nil {
		med = *cfg.MED
	}
	thresA := cfg.ThresA
	if thresA == 0 {
		thresA = 0.20
	}
	parallelism := cfg.Parallelism
	if parallelism == 0 {
		parallelism = DefaultParallelism
	}
	gcfg := services.GDQSConfig{
		Adaptive:          cfg.Adaptive,
		Elastic:           cfg.Elastic,
		MonitorEvery:      cfg.MonitorEvery,
		MED:               med,
		Diagnoser:         core.DiagnoserConfig{ThresA: thresA, Assessment: cfg.Assessment},
		Responder:         core.ResponderConfig{Response: cfg.Response, MaxProgress: 0.9},
		Parallelism:       parallelism,
		QueryTimeout:      10 * time.Minute,
		MemoryBudgetBytes: DefaultMemoryBudget,
		SpillDir:          DefaultSpillDir,
		ScanReadahead:     DefaultScanReadahead,
	}
	g, err := services.NewGDQS(cluster, "coord", gcfg)
	if err != nil {
		return nil, err
	}
	res, err := g.Execute(context.Background(), cfg.Query)
	if err != nil {
		return nil, err
	}
	out := &Result{
		ResponseMs:   res.Stats.ResponseMs,
		Stats:        res.Stats,
		ConsumedByWS: make([]int64, cfg.WSNodes),
		Rows:         res.Rows,
	}
	// Read the consumption split from the plan's partitioned fragment (the
	// one evaluating the expensive operator across the WS nodes).
	for _, frag := range res.Stats.Plan.Fragments {
		if !frag.Partitioned {
			continue
		}
		for i := range frag.Instances {
			if i < len(out.ConsumedByWS) {
				out.ConsumedByWS[i] = res.Stats.ConsumedByInstance[frag.InstanceID(i)]
			}
		}
	}
	return out, nil
}
