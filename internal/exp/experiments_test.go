package exp

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/vtime"
)

func TestExperimentRender(t *testing.T) {
	e := &Experiment{
		ID:    "Table 1",
		Title: "demo",
		Notes: []string{"a note"},
		Rows: []Measurement{
			{Label: "exact", Paper: 3.53, Measured: 3.61},
			{Label: "from figure", Paper: 1.6, Approx: true, Measured: 1.55},
			{Label: "no paper value", Paper: math.NaN(), Measured: 2.0},
		},
	}
	out := e.Render()
	for _, want := range []string{
		"### Table 1 — demo",
		"| exact | 3.53 | 3.61 |",
		"| from figure | ≈1.60 | 1.55 |",
		"| no paper value | — | 2.00 |",
		"a note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestReportStructure(t *testing.T) {
	e := &Experiment{ID: "Fig X", Title: "t", Rows: []Measurement{{Label: "r", Paper: 1, Measured: 1}}}
	out := Report([]*Experiment{e}, 3*time.Second)
	for _, want := range []string{"# EXPERIMENTS", "### Fig X", "thresM 20%", "Generated in 3s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Report missing %q", want)
		}
	}
}

func TestTupleRatio(t *testing.T) {
	if got := tupleRatio([]int64{100, 50}); got != 2 {
		t.Errorf("ratio = %v", got)
	}
	if got := tupleRatio([]int64{70, 70}); got != 1 {
		t.Errorf("balanced ratio = %v", got)
	}
	if !math.IsNaN(tupleRatio(nil)) || !math.IsNaN(tupleRatio([]int64{5, 0})) {
		t.Error("degenerate ratios must be NaN")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Query != Q1 || c.Sequences != 3000 || c.Interactions != 4700 || c.WSNodes != 2 {
		t.Errorf("defaults = %+v", c)
	}
	if c.MonitorEvery != 0 {
		t.Error("non-adaptive default must not enable monitoring")
	}
	ad := Config{Adaptive: true}.withDefaults()
	if ad.MonitorEvery != 10 {
		t.Error("adaptive default must monitor every 10 tuples")
	}
}

func TestRunRejectsBadPerturbIndex(t *testing.T) {
	_, err := Run(Config{Query: Q1, Sequences: 10, Interactions: 10,
		Perturb: map[int]vtime.Perturbation{9: vtime.Multiplier(2)}})
	if err == nil {
		t.Fatal("perturbation of unknown node accepted")
	}
}
