package exp

import (
	"fmt"
	"strings"
	"time"
)

// Report renders the complete paper-vs-measured reproduction document (the
// contents of EXPERIMENTS.md).
func Report(experiments []*Experiment, elapsed time.Duration) string {
	var b strings.Builder
	b.WriteString(`# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of *"Adapting to Changing Resource
Performance in Grid Query Processing"* (Gounaris et al., VLDB DMG 2005,
LNCS 3836). Every run reports response time normalised to the same query's
**no adaptivity / no imbalance** execution, exactly as the paper does, so
the absolute time scale of the simulated testbed cancels out.

Regenerate with: ` + "`go run ./cmd/dqp-experiments`" + ` or
` + "`go test -bench . -benchtime 1x .`" + `

## Setup

- Simulated Grid: 1 data node, 2 WS/compute nodes (3 for Fig. 4),
  coordinator, 100 Mbps links (see internal/simnet).
- Q1: ` + "`" + Q1 + "`" + ` (3000 tuples).
- Q2: ` + "`" + Q2 + "`" + ` (4700 interactions).
- Defaults as in the paper (§3.1): M1 every 10 tuples, M2 per buffer,
  window 25 events (min/max discarded), thresM 20%, thresA 20%,
  assessment A1, same-machine communication cost zero.
- Calibration (see exp.DefaultCalibration and DESIGN.md): EntropyAnalyser
  10 paper-ms/call; retrieval/serialisation 1 ms + 0.055 ms/byte per tuple;
  hash-join probe 2 ms; service creation 5000 ms (GT3) + 2500 ms for the
  adaptivity components; R1 log management 1.3 ms/tuple.
- Values marked ≈ are read off the paper's figures (the paper reports them
  only graphically).

## Intra-fragment parallelism (morsel worker pool)

Every fragment driver can run as a pool of N workers pulling batch-sized
morsels from a shared source (` + "`dqp-experiments -parallel N`" + `, default
serial; DESIGN.md §5f). The scaling curve lives in BENCH_micro.json:
ParallelChain{1,2,4,8} sweep the pool width over the scan→select→project
drain, PartitionedJoin{1,2,4,8} over the shared-state partitioned hash
join. The committed numbers come from a **single-core** container, so
widths 2–8 cannot speed up — what they show is that the pool's
coordination cost stays within noise of the serial drain even at 8×
oversubscription, and that a 1-worker pool stays within 5% of the plain
batch path (TestParallelChainSerialParity), so the default costs nothing.
On a multicore host, rerun ` + "`make micro`" + ` to record the real curve.
Every adaptivity result below is invariant to the worker count: exchange
routing shards its position counters atomically, so routed-tuple counts
and the R1/R2 replay logs stay exact under any parallelism.

`)
	for _, e := range experiments {
		b.WriteString(e.Render())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\n---\nGenerated in %s (real time).\n", elapsed.Round(time.Second))
	return b.String()
}
