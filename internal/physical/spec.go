// Package physical defines the distributed physical plan model and the
// scheduler that lowers a logical plan into it.
//
// A physical plan is a set of fragments (the paper's "subplans") connected
// by exchanges (paper §2). Each fragment runs as one or more instances, one
// per machine, realising intra-operator (partitioned) parallelism: all
// clones of a partitioned fragment evaluate a different portion of the same
// dataset in parallel. The specs here are plain data — no closures — so a
// coordinator can ship them to remote evaluation services over the wire.
package physical

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
)

// OpKind enumerates physical operator kinds.
type OpKind uint8

// Physical operator kinds.
const (
	KScan      OpKind = iota + 1 // read a base table from the local GDS
	KFilter                      // conjunctive predicate
	KProject                     // column projection
	KOpCall                      // Web Service operation call per tuple
	KJoin                        // hash join: Children[0] build, Children[1] probe
	KConsume                     // exchange consumer: leaf receiving from another fragment
	KAggregate                   // bucketed hash aggregate (stateful)
	KSort                        // blocking sort (result site)
	KLimit                       // row-count truncation (result site)
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case KScan:
		return "Scan"
	case KFilter:
		return "Filter"
	case KProject:
		return "Project"
	case KOpCall:
		return "OperationCall"
	case KJoin:
		return "HashJoin"
	case KConsume:
		return "Consume"
	case KAggregate:
		return "HashAggregate"
	case KSort:
		return "Sort"
	case KLimit:
		return "Limit"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// OpSpec describes one operator of a fragment's tree. Exactly the fields
// relevant to Kind are set.
type OpSpec struct {
	Kind     OpKind
	Children []*OpSpec
	// OutCols is the operator's output schema.
	OutCols []relation.Column

	// KScan.
	Table string
	// KFilter: conjuncts re-compiled on the evaluator against the child
	// schema.
	Pred []sqlparse.Comparison
	// KProject.
	Ords []int
	// KOpCall.
	Fn         string
	ArgOrds    []int
	ResultName string
	// KJoin: key ordinals into the respective child schemas.
	BuildKeys, ProbeKeys []int
	// BuildEst is the optimiser's estimate of the build-side cardinality
	// (total across instances); evaluators pre-size the join hash table
	// from it.
	BuildEst int
	// KConsume.
	Exchange     string
	NumProducers int
	// KAggregate: grouping-key ordinals plus per-aggregate kind and
	// argument ordinal (-1 for COUNT(*)). AggKinds mirrors
	// logical.AggKind values.
	GroupOrds []int
	AggKinds  []uint8
	AggArgs   []int
	// KSort.
	SortOrds []int
	SortDesc []bool
	// KLimit.
	LimitN int64
}

// OutSchema materialises the output schema.
func (o *OpSpec) OutSchema() *relation.Schema { return relation.NewSchema(o.OutCols...) }

// PolicyKind selects how an exchange distributes tuples over the consumer
// fragment's instances.
type PolicyKind uint8

// Distribution policies.
const (
	// PolicyWeighted routes each tuple to a consumer chosen by the current
	// workload distribution vector W; used for stateless consumers, where
	// any tuple may go anywhere.
	PolicyWeighted PolicyKind = iota + 1
	// PolicyHash routes by hash of key columns through a bucket→owner map
	// derived from W; required for stateful consumers (hash joins) so that
	// equal keys meet on the same instance.
	PolicyHash
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case PolicyWeighted:
		return "weighted"
	case PolicyHash:
		return "hash"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(p))
	}
}

// ExchangeSpec describes the producing side of one exchange: how a
// fragment's output is partitioned over the consumer fragment's instances.
type ExchangeSpec struct {
	ID string
	// ConsumerFragment is the fragment whose KConsume leaf reads this
	// exchange.
	ConsumerFragment string
	Policy           PolicyKind
	// KeyOrds are the routing key ordinals in the producing fragment's
	// output schema (PolicyHash only).
	KeyOrds []int
	// Stateful marks exchanges whose tuples become operator state at the
	// consumer (hash-join build side): their recovery-log entries are never
	// released by acknowledgements while the query runs, so the log can
	// recreate the state elsewhere (paper §3.1, Response).
	Stateful bool
	// EstTuples is the optimiser's estimate of the total tuples the
	// exchange will carry; the Responder compares it with the producers'
	// routed counts to estimate query progress.
	EstTuples int
}

// FragmentSpec is one subplan: an operator tree evaluated by one or more
// instances.
type FragmentSpec struct {
	ID   string
	Root *OpSpec
	// Instances lists the machines running a clone of this fragment; the
	// i-th instance is addressed as ID#i.
	Instances []simnet.NodeID
	// Output describes the exchange this fragment produces into; nil for
	// the top fragment, which delivers to the query's result sink.
	Output *ExchangeSpec
	// InitialWeights is the scheduler's starting distribution vector W over
	// the instances of this fragment's *consumer* inputs — i.e. how
	// producers feeding this fragment split tuples among its instances.
	// len == len(Instances); sums to 1.
	InitialWeights []float64
	// Partitioned marks fragments with adaptable intra-operator
	// parallelism: the AQP components monitor and rebalance these.
	Partitioned bool
	// Stateful marks fragments holding operator state (hash joins):
	// rebalancing them requires retrospective (R1) state repartitioning.
	Stateful bool
	// EstInputTuples is the optimiser's estimate of the total tuples this
	// fragment will receive, used for progress estimation.
	EstInputTuples int
}

// InstanceID names fragment instance i.
func (f *FragmentSpec) InstanceID(i int) string { return fmt.Sprintf("%s#%d", f.ID, i) }

// Plan is a complete scheduled physical plan.
type Plan struct {
	// Fragments in bottom-up order: producers before consumers; the last
	// fragment is the top (result) fragment.
	Fragments []*FragmentSpec
	// Coordinator hosts the top fragment and the result sink.
	Coordinator simnet.NodeID
}

// Fragment returns the fragment with the given ID, or nil.
func (p *Plan) Fragment(id string) *FragmentSpec {
	for _, f := range p.Fragments {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// Top returns the result fragment.
func (p *Plan) Top() *FragmentSpec { return p.Fragments[len(p.Fragments)-1] }

// Explain renders the plan for logs and examples.
func (p *Plan) Explain() string {
	var b strings.Builder
	for _, f := range p.Fragments {
		fmt.Fprintf(&b, "fragment %s on %v", f.ID, f.Instances)
		if f.Partitioned {
			fmt.Fprintf(&b, " partitioned W=%v", f.InitialWeights)
		}
		if f.Stateful {
			b.WriteString(" stateful")
		}
		if f.Output != nil {
			fmt.Fprintf(&b, " -> %s via %s(%s)", f.Output.ConsumerFragment, f.Output.ID, f.Output.Policy)
		}
		b.WriteByte('\n')
		var walk func(o *OpSpec, depth int)
		walk = func(o *OpSpec, depth int) {
			b.WriteString(strings.Repeat("  ", depth+1))
			switch o.Kind {
			case KScan:
				fmt.Fprintf(&b, "Scan(%s)", o.Table)
			case KFilter:
				conj := make([]string, len(o.Pred))
				for i, c := range o.Pred {
					conj[i] = c.SQL()
				}
				fmt.Fprintf(&b, "Filter(%s)", strings.Join(conj, " AND "))
			case KProject:
				fmt.Fprintf(&b, "Project(%v)", o.Ords)
			case KOpCall:
				fmt.Fprintf(&b, "OperationCall(%s)", o.Fn)
			case KJoin:
				fmt.Fprintf(&b, "HashJoin(build=%v probe=%v)", o.BuildKeys, o.ProbeKeys)
			case KConsume:
				fmt.Fprintf(&b, "Consume(%s from %d producers)", o.Exchange, o.NumProducers)
			case KAggregate:
				fmt.Fprintf(&b, "HashAggregate(by %v, %d aggs)", o.GroupOrds, len(o.AggKinds))
			case KSort:
				fmt.Fprintf(&b, "Sort(%v)", o.SortOrds)
			case KLimit:
				fmt.Fprintf(&b, "Limit(%d)", o.LimitN)
			}
			b.WriteByte('\n')
			for _, c := range o.Children {
				walk(c, depth+1)
			}
		}
		walk(f.Root, 0)
	}
	return b.String()
}
