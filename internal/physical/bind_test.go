package physical

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/sqlparse"
)

// scheduleTemplate plans a normalized (literal-stripped) statement into a
// physical plan template, returning the slots to bind.
func scheduleTemplate(t *testing.T, q string) (*Plan, []sqlparse.Slot) {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	tpl, slots := sqlparse.Normalize(stmt)
	ln, _, err := logical.PlanParams(tpl, demoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(ln, demoRegistry(), Options{Coordinator: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	return p, slots
}

func TestCloneIsolatesTagAndBind(t *testing.T) {
	q := "select p.ORF from protein_sequences p where p.sequence <> 'AA'"
	tpl, slots := scheduleTemplate(t, q)
	if err := tpl.Validate(); err != nil {
		t.Fatalf("template invalid: %v", err)
	}
	before := tpl.Explain()

	c1 := tpl.Clone()
	args, err := sqlparse.BindSlots(slots, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.BindParams(args); err != nil {
		t.Fatal(err)
	}
	c1.Tag("q1")
	c2 := tpl.Clone()
	if err := c2.BindParams(args); err != nil {
		t.Fatal(err)
	}
	c2.Tag("q2")

	if tpl.Explain() != before {
		t.Fatalf("Clone did not isolate template:\n%s\nvs\n%s", before, tpl.Explain())
	}
	if c1.Fragments[0].ID == c2.Fragments[0].ID {
		t.Fatalf("tags collided: %s", c1.Fragments[0].ID)
	}
	if err := c1.Validate(); err != nil {
		t.Fatalf("bound clone invalid: %v", err)
	}
}

func TestBindParamsRewritesFilters(t *testing.T) {
	tpl, slots := scheduleTemplate(t, "select p.ORF from protein_sequences p where p.sequence <> 'AA'")
	args, err := sqlparse.BindSlots(slots, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound := tpl.Clone()
	if err := bound.BindParams(args); err != nil {
		t.Fatal(err)
	}
	countParams := func(p *Plan) int {
		n := 0
		for _, f := range p.Fragments {
			var walk func(o *OpSpec)
			walk = func(o *OpSpec) {
				for _, c := range o.Pred {
					if _, ok := c.Left.(sqlparse.Param); ok {
						n++
					}
					if _, ok := c.Right.(sqlparse.Param); ok {
						n++
					}
				}
				for _, ch := range o.Children {
					walk(ch)
				}
			}
			walk(f.Root)
		}
		return n
	}
	if countParams(tpl) == 0 {
		t.Fatal("template should carry parameter placeholders")
	}
	if countParams(bound) != 0 {
		t.Fatal("bound plan still carries parameter placeholders")
	}
}

func TestBuildEstSetForJoins(t *testing.T) {
	p := schedule(t, "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF",
		Options{Coordinator: "coord"})
	found := false
	for _, f := range p.Fragments {
		var walk func(o *OpSpec)
		walk = func(o *OpSpec) {
			if o.Kind == KJoin {
				found = true
				if o.BuildEst <= 0 {
					t.Errorf("KJoin BuildEst = %d, want > 0", o.BuildEst)
				}
			}
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(f.Root)
	}
	if !found {
		t.Fatal("no join in plan")
	}
}

func TestPlanParamsInfersExplicitMarkerTypes(t *testing.T) {
	stmt, err := sqlparse.Parse("select p.ORF from protein_sequences p where p.sequence = ?")
	if err != nil {
		t.Fatal(err)
	}
	tpl, slots := sqlparse.Normalize(stmt)
	_, hints, err := logical.PlanParams(tpl, demoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if hints[0] != sqlparse.PString {
		t.Fatalf("inferred hint = %v, want PString", hints[0])
	}
	if slots[0].Hint != sqlparse.PAny || slots[0].UserOrd != 0 {
		t.Fatalf("slot = %+v", slots[0])
	}
}
