package physical

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/registry"
	"repro/internal/simnet"
)

// Options configures the scheduler.
type Options struct {
	// Coordinator hosts the top (result) fragment.
	Coordinator simnet.NodeID
	// MaxParallelism caps the number of compute resources used for
	// partitioned fragments; 0 means all registered resources.
	MaxParallelism int
}

// Schedule lowers a logical plan to a distributed physical plan following
// the approach of OGSA-DQP's optimiser (paper §2): scans run on the data
// resources hosting their tables; expensive operators (operation calls and
// joins) are parallelised across the registered computational resources
// with an initial distribution proportional to the registry's static speed
// claims; exchanges are inserted at every fragment boundary.
func Schedule(root logical.Node, reg *registry.Registry, opts Options) (*Plan, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("physical: no coordinator node")
	}
	compute := reg.ComputeResources()
	if opts.MaxParallelism > 0 && len(compute) > opts.MaxParallelism {
		compute = compute[:opts.MaxParallelism]
	}
	b := &builder{plan: &Plan{Coordinator: opts.Coordinator}, compute: compute}

	// Sort and Limit always sit at the plan root (the planner guarantees
	// it); peel them off and evaluate them inside the collect fragment at
	// the coordinator, where the full result stream is available.
	var collectWrap []logical.Node
	inner := root
peel:
	for {
		switch v := inner.(type) {
		case *logical.Limit:
			collectWrap = append(collectWrap, inner)
			inner = v.Child
		case *logical.Sort:
			collectWrap = append(collectWrap, inner)
			inner = v.Child
		default:
			break peel
		}
	}
	res, err := b.build(inner)
	if err != nil {
		return nil, err
	}
	// Top fragment: collect results at the coordinator.
	collect := &FragmentSpec{
		ID:             b.nextFragID(),
		Instances:      []simnet.NodeID{opts.Coordinator},
		InitialWeights: []float64{1},
		EstInputTuples: int(res.est),
	}
	b.cut(res, collect, PolicyWeighted, nil, false)
	collect.Root = &OpSpec{
		Kind:         KConsume,
		OutCols:      res.spec.OutCols,
		Exchange:     res.frag.Output.ID,
		NumProducers: len(res.frag.Instances),
	}
	// Re-apply the peeled Sort/Limit wrappers innermost-first.
	for i := len(collectWrap) - 1; i >= 0; i-- {
		switch v := collectWrap[i].(type) {
		case *logical.Sort:
			ords := make([]int, len(v.Keys))
			desc := make([]bool, len(v.Keys))
			for k, key := range v.Keys {
				ords[k] = key.Ord
				desc[k] = key.Desc
			}
			collect.Root = &OpSpec{
				Kind: KSort, Children: []*OpSpec{collect.Root},
				OutCols: collect.Root.OutCols, SortOrds: ords, SortDesc: desc,
			}
		case *logical.Limit:
			collect.Root = &OpSpec{
				Kind: KLimit, Children: []*OpSpec{collect.Root},
				OutCols: collect.Root.OutCols, LimitN: v.N,
			}
		}
	}
	b.plan.Fragments = append(b.plan.Fragments, collect)
	return b.plan, nil
}

type builder struct {
	plan    *Plan
	compute []registry.ComputeResource
	nFrag   int
	nExch   int
}

// buildResult tracks a subtree whose operator spec still lives in an open
// fragment.
type buildResult struct {
	spec *OpSpec
	frag *FragmentSpec
	est  float64 // estimated output cardinality
}

func (b *builder) nextFragID() string {
	b.nFrag++
	return fmt.Sprintf("F%d", b.nFrag)
}

func (b *builder) nextExchID() string {
	b.nExch++
	return fmt.Sprintf("E%d", b.nExch)
}

// computeWeights returns the initial distribution vector proportional to
// the registry's speed claims.
func (b *builder) computeWeights() []float64 {
	w := make([]float64, len(b.compute))
	total := 0.0
	for _, c := range b.compute {
		total += c.RelativeSpeed
	}
	for i, c := range b.compute {
		w[i] = c.RelativeSpeed / total
	}
	return w
}

func (b *builder) computeNodes() []simnet.NodeID {
	nodes := make([]simnet.NodeID, len(b.compute))
	for i, c := range b.compute {
		nodes[i] = c.Node
	}
	return nodes
}

// newPartitionedFragment opens a fragment cloned across the compute nodes.
func (b *builder) newPartitionedFragment(stateful bool, estInput float64) (*FragmentSpec, error) {
	if len(b.compute) == 0 {
		return nil, fmt.Errorf("physical: no computational resources registered")
	}
	f := &FragmentSpec{
		ID:             b.nextFragID(),
		Instances:      b.computeNodes(),
		InitialWeights: b.computeWeights(),
		Partitioned:    true,
		Stateful:       stateful,
		EstInputTuples: int(estInput),
	}
	b.plan.Fragments = append(b.plan.Fragments, f)
	return f, nil
}

// cut closes the producing fragment of res, wiring its output exchange into
// the consumer fragment.
func (b *builder) cut(res buildResult, consumer *FragmentSpec, policy PolicyKind, keyOrds []int, stateful bool) {
	res.frag.Root = res.spec
	res.frag.Output = &ExchangeSpec{
		ID:               b.nextExchID(),
		ConsumerFragment: consumer.ID,
		Policy:           policy,
		KeyOrds:          keyOrds,
		Stateful:         stateful,
		EstTuples:        int(res.est),
	}
}

// consume builds the KConsume leaf reading res's exchange.
func consume(res buildResult) *OpSpec {
	return &OpSpec{
		Kind:         KConsume,
		OutCols:      res.spec.OutCols,
		Exchange:     res.frag.Output.ID,
		NumProducers: len(res.frag.Instances),
	}
}

func (b *builder) build(n logical.Node) (buildResult, error) {
	switch v := n.(type) {
	case *logical.Scan:
		f := &FragmentSpec{
			ID:             b.nextFragID(),
			Instances:      []simnet.NodeID{v.Table.Node},
			InitialWeights: []float64{1},
			EstInputTuples: v.Table.Cardinality,
		}
		b.plan.Fragments = append(b.plan.Fragments, f)
		spec := &OpSpec{Kind: KScan, Table: v.Table.Name, OutCols: v.Schema().Columns()}
		return buildResult{spec: spec, frag: f, est: float64(v.Table.Cardinality)}, nil

	case *logical.Filter:
		child, err := b.build(v.Child)
		if err != nil {
			return buildResult{}, err
		}
		spec := &OpSpec{
			Kind:     KFilter,
			Children: []*OpSpec{child.spec},
			OutCols:  v.Schema().Columns(),
			Pred:     v.Conjuncts,
		}
		return buildResult{spec: spec, frag: child.frag, est: child.est * v.Selectivity}, nil

	case *logical.Project:
		child, err := b.build(v.Child)
		if err != nil {
			return buildResult{}, err
		}
		spec := &OpSpec{
			Kind:     KProject,
			Children: []*OpSpec{child.spec},
			OutCols:  v.Schema().Columns(),
			Ords:     v.Ords,
		}
		return buildResult{spec: spec, frag: child.frag, est: child.est}, nil

	case *logical.OpCall:
		child, err := b.build(v.Child)
		if err != nil {
			return buildResult{}, err
		}
		spec := &OpSpec{
			Kind:       KOpCall,
			OutCols:    v.Schema().Columns(),
			Fn:         v.Fn.Name,
			ArgOrds:    v.ArgOrds,
			ResultName: v.ResultName,
		}
		if child.frag.Partitioned {
			// Absorb into the already-partitioned fragment.
			spec.Children = []*OpSpec{child.spec}
			return buildResult{spec: spec, frag: child.frag, est: child.est}, nil
		}
		f, err := b.newPartitionedFragment(false, child.est)
		if err != nil {
			return buildResult{}, err
		}
		b.cut(child, f, PolicyWeighted, nil, false)
		spec.Children = []*OpSpec{consume(child)}
		return buildResult{spec: spec, frag: f, est: child.est}, nil

	case *logical.Join:
		left, err := b.build(v.Left)
		if err != nil {
			return buildResult{}, err
		}
		right, err := b.build(v.Right)
		if err != nil {
			return buildResult{}, err
		}
		f, err := b.newPartitionedFragment(true, left.est+right.est)
		if err != nil {
			return buildResult{}, err
		}
		// Both inputs hash-partition on the join keys so equal keys meet on
		// the same instance; the build side is stateful: its tuples become
		// the join's hash-table state.
		b.cut(left, f, PolicyHash, v.LeftKeys, true)
		b.cut(right, f, PolicyHash, v.RightKeys, false)
		spec := &OpSpec{
			Kind:      KJoin,
			Children:  []*OpSpec{consume(left), consume(right)},
			OutCols:   v.Schema().Columns(),
			BuildKeys: v.LeftKeys,
			ProbeKeys: v.RightKeys,
			BuildEst:  int(left.est),
		}
		return buildResult{spec: spec, frag: f, est: right.est}, nil

	case *logical.Aggregate:
		child, err := b.build(v.Child)
		if err != nil {
			return buildResult{}, err
		}
		spec := &OpSpec{
			Kind:      KAggregate,
			OutCols:   v.Schema().Columns(),
			GroupOrds: v.GroupOrds,
		}
		for _, a := range v.Aggs {
			spec.AggKinds = append(spec.AggKinds, uint8(a.Kind))
			spec.AggArgs = append(spec.AggArgs, a.ArgOrd)
		}
		// Output cardinality estimate: distinct groups, crudely 10% of the
		// input (one row for a global aggregate).
		est := child.est * 0.1
		if len(v.GroupOrds) == 0 {
			est = 1
		}
		if len(v.GroupOrds) > 0 {
			// Grouped: partition by the group keys across the compute
			// nodes; the aggregate is stateful, so rebalancing moves group
			// state through the recovery logs, exactly like the join.
			f, err := b.newPartitionedFragment(true, child.est)
			if err != nil {
				return buildResult{}, err
			}
			b.cut(child, f, PolicyHash, v.GroupOrds, true)
			spec.Children = []*OpSpec{consume(child)}
			return buildResult{spec: spec, frag: f, est: est}, nil
		}
		// Global aggregate: a single instance must see every tuple; it runs
		// on the first (fastest-claimed) compute resource.
		if len(b.compute) == 0 {
			return buildResult{}, fmt.Errorf("physical: no computational resources registered")
		}
		f := &FragmentSpec{
			ID:             b.nextFragID(),
			Instances:      []simnet.NodeID{b.compute[0].Node},
			InitialWeights: []float64{1},
			EstInputTuples: int(child.est),
		}
		b.plan.Fragments = append(b.plan.Fragments, f)
		b.cut(child, f, PolicyWeighted, nil, false)
		spec.Children = []*OpSpec{consume(child)}
		return buildResult{spec: spec, frag: f, est: est}, nil

	case *logical.Sort, *logical.Limit:
		return buildResult{}, fmt.Errorf("physical: %T must be the plan root", n)

	default:
		return buildResult{}, fmt.Errorf("physical: unsupported logical operator %T", n)
	}
}
