package physical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/registry"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

func demoCatalog() *catalog.Catalog {
	c := catalog.New()
	_ = c.PutTable(catalog.TableMeta{
		Name: "protein_sequences",
		Schema: relation.NewSchema(
			relation.Column{Table: "protein_sequences", Name: "ORF", Type: relation.TString},
			relation.Column{Table: "protein_sequences", Name: "sequence", Type: relation.TString},
		),
		Cardinality: 3000, AvgTupleBytes: 150, Node: "data1",
	})
	_ = c.PutTable(catalog.TableMeta{
		Name: "protein_interactions",
		Schema: relation.NewSchema(
			relation.Column{Table: "protein_interactions", Name: "ORF1", Type: relation.TString},
			relation.Column{Table: "protein_interactions", Name: "ORF2", Type: relation.TString},
		),
		Cardinality: 4700, AvgTupleBytes: 25, Node: "data1",
	})
	_ = c.PutFunction(catalog.FunctionMeta{
		Name:       "EntropyAnalyser",
		ArgTypes:   []relation.Type{relation.TString},
		ResultType: relation.TFloat,
		CostMs:     10,
	})
	return c
}

func demoRegistry() *registry.Registry {
	r := registry.New()
	_ = r.RegisterCompute("ws0", 1)
	_ = r.RegisterCompute("ws1", 1)
	r.RegisterData("data1", "protein_sequences", "protein_interactions")
	return r
}

func schedule(t *testing.T, q string, opts Options) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := logical.Plan(stmt, demoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(ln, demoRegistry(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"
const q2 = "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF"

func TestScheduleQ1Topology(t *testing.T) {
	p := schedule(t, q1, Options{Coordinator: "coord"})
	if len(p.Fragments) != 3 {
		t.Fatalf("fragments = %d, want 3 (scan, opcall, collect):\n%s", len(p.Fragments), p.Explain())
	}
	scan, opc, top := p.Fragments[0], p.Fragments[1], p.Fragments[2]

	if scan.Partitioned || len(scan.Instances) != 1 || scan.Instances[0] != "data1" {
		t.Errorf("scan fragment: %+v", scan)
	}
	if scan.Root.Kind != KScan || scan.Root.Table != "protein_sequences" {
		t.Errorf("scan root: %+v", scan.Root)
	}
	if scan.Output == nil || scan.Output.ConsumerFragment != opc.ID || scan.Output.Policy != PolicyWeighted {
		t.Errorf("scan output: %+v", scan.Output)
	}
	if scan.Output.EstTuples != 3000 {
		t.Errorf("scan est = %d", scan.Output.EstTuples)
	}

	if !opc.Partitioned || opc.Stateful || len(opc.Instances) != 2 {
		t.Errorf("opcall fragment: %+v", opc)
	}
	if w := opc.InitialWeights; len(w) != 2 || w[0] != 0.5 || w[1] != 0.5 {
		t.Errorf("initial weights = %v", w)
	}
	// Root is the projection over the opcall over the consume leaf.
	if opc.Root.Kind != KProject || opc.Root.Children[0].Kind != KOpCall {
		t.Errorf("opcall tree:\n%s", p.Explain())
	}
	leaf := opc.Root.Children[0].Children[0]
	if leaf.Kind != KConsume || leaf.Exchange != scan.Output.ID || leaf.NumProducers != 1 {
		t.Errorf("consume leaf: %+v", leaf)
	}

	if top != p.Top() || top.Instances[0] != "coord" || top.Root.Kind != KConsume {
		t.Errorf("top fragment: %+v", top)
	}
	if top.Root.Exchange != opc.Output.ID {
		t.Error("top reads wrong exchange")
	}
	// Output schema of the whole plan is the single entropy column.
	if s := top.Root.OutSchema(); s.Len() != 1 || s.Column(0).Type != relation.TFloat {
		t.Errorf("plan output schema: %v", s)
	}
}

func TestScheduleQ2Topology(t *testing.T) {
	p := schedule(t, q2, Options{Coordinator: "coord"})
	if len(p.Fragments) != 4 {
		t.Fatalf("fragments = %d, want 4:\n%s", len(p.Fragments), p.Explain())
	}
	seqScan, intScan, join, top := p.Fragments[0], p.Fragments[1], p.Fragments[2], p.Fragments[3]

	if seqScan.Root.Table != "protein_sequences" || intScan.Root.Table != "protein_interactions" {
		t.Fatalf("scan order:\n%s", p.Explain())
	}
	// Build side (first FROM table) is stateful and hash-partitioned.
	if seqScan.Output.Policy != PolicyHash || !seqScan.Output.Stateful {
		t.Errorf("build exchange: %+v", seqScan.Output)
	}
	if intScan.Output.Policy != PolicyHash || intScan.Output.Stateful {
		t.Errorf("probe exchange: %+v", intScan.Output)
	}
	// Both hash on ordinal 0 (ORF / ORF1).
	if len(seqScan.Output.KeyOrds) != 1 || seqScan.Output.KeyOrds[0] != 0 ||
		len(intScan.Output.KeyOrds) != 1 || intScan.Output.KeyOrds[0] != 0 {
		t.Errorf("key ords: %v / %v", seqScan.Output.KeyOrds, intScan.Output.KeyOrds)
	}
	if !join.Partitioned || !join.Stateful {
		t.Errorf("join fragment flags: %+v", join)
	}
	if join.EstInputTuples != 3000+4700 {
		t.Errorf("join est input = %d", join.EstInputTuples)
	}
	if join.Root.Kind != KProject || join.Root.Children[0].Kind != KJoin {
		t.Errorf("join tree:\n%s", p.Explain())
	}
	jn := join.Root.Children[0]
	if jn.Children[0].Exchange != seqScan.Output.ID || jn.Children[1].Exchange != intScan.Output.ID {
		t.Error("join consume wiring")
	}
	if top.Root.Kind != KConsume {
		t.Errorf("top: %+v", top.Root)
	}
}

func TestScheduleWeightsProportionalToSpeed(t *testing.T) {
	reg := registry.New()
	_ = reg.RegisterCompute("ws0", 3)
	_ = reg.RegisterCompute("ws1", 1)
	reg.RegisterData("data1", "protein_sequences")
	stmt, _ := sqlparse.Parse(q1)
	ln, err := logical.Plan(stmt, demoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(ln, reg, Options{Coordinator: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	w := p.Fragments[1].InitialWeights
	if len(w) != 2 || w[0] != 0.75 || w[1] != 0.25 {
		t.Fatalf("weights = %v, want [0.75 0.25]", w)
	}
}

func TestScheduleMaxParallelism(t *testing.T) {
	p := schedule(t, q1, Options{Coordinator: "coord", MaxParallelism: 1})
	if got := len(p.Fragments[1].Instances); got != 1 {
		t.Fatalf("instances = %d, want 1", got)
	}
}

func TestScheduleErrors(t *testing.T) {
	stmt, _ := sqlparse.Parse(q1)
	ln, err := logical.Plan(stmt, demoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(ln, demoRegistry(), Options{}); err == nil {
		t.Error("missing coordinator accepted")
	}
	empty := registry.New()
	if _, err := Schedule(ln, empty, Options{Coordinator: "coord"}); err == nil {
		t.Error("no compute resources accepted for partitioned plan")
	}
}

func TestPlanLookupAndExplain(t *testing.T) {
	p := schedule(t, q2, Options{Coordinator: "coord"})
	if p.Fragment("F3") == nil || p.Fragment("nope") != nil {
		t.Error("Fragment lookup")
	}
	if p.Fragment("F2").InstanceID(0) != "F2#0" {
		t.Error("InstanceID format")
	}
	out := p.Explain()
	for _, want := range []string{"HashJoin", "Consume(E1", "partitioned", "stateful", "hash"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleScanOnlyQuery(t *testing.T) {
	// A pure scan still gets a collect fragment at the coordinator.
	p := schedule(t, "select * from protein_sequences", Options{Coordinator: "coord"})
	if len(p.Fragments) != 2 {
		t.Fatalf("fragments = %d:\n%s", len(p.Fragments), p.Explain())
	}
	if p.Top().Instances[0] != "coord" {
		t.Error("collect not at coordinator")
	}
	if p.Fragments[0].Partitioned {
		t.Error("scan fragment must not be partitioned")
	}
}
