package physical

import (
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
)

// Clone deep-copies the plan. Cached plan templates must be cloned before
// every execution: Tag rewrites identifiers in place and BindParams rewrites
// predicates in place, and the template is shared by concurrent executions.
func (p *Plan) Clone() *Plan {
	out := &Plan{
		Coordinator: p.Coordinator,
		Fragments:   make([]*FragmentSpec, len(p.Fragments)),
	}
	for i, f := range p.Fragments {
		out.Fragments[i] = f.clone()
	}
	return out
}

func (f *FragmentSpec) clone() *FragmentSpec {
	out := *f
	out.Instances = append([]simnet.NodeID(nil), f.Instances...)
	out.InitialWeights = append([]float64(nil), f.InitialWeights...)
	if f.Output != nil {
		o := *f.Output
		o.KeyOrds = append([]int(nil), f.Output.KeyOrds...)
		out.Output = &o
	}
	out.Root = f.Root.clone()
	return &out
}

func (o *OpSpec) clone() *OpSpec {
	out := *o
	out.OutCols = append([]relation.Column(nil), o.OutCols...)
	out.Pred = append([]sqlparse.Comparison(nil), o.Pred...)
	out.Ords = append([]int(nil), o.Ords...)
	out.ArgOrds = append([]int(nil), o.ArgOrds...)
	out.BuildKeys = append([]int(nil), o.BuildKeys...)
	out.ProbeKeys = append([]int(nil), o.ProbeKeys...)
	out.GroupOrds = append([]int(nil), o.GroupOrds...)
	out.AggKinds = append([]uint8(nil), o.AggKinds...)
	out.AggArgs = append([]int(nil), o.AggArgs...)
	out.SortOrds = append([]int(nil), o.SortOrds...)
	out.SortDesc = append([]bool(nil), o.SortDesc...)
	if len(o.Children) > 0 {
		out.Children = make([]*OpSpec, len(o.Children))
		for i, c := range o.Children {
			out.Children[i] = c.clone()
		}
	}
	return &out
}

// BindParams substitutes args[ord] for every Param placeholder in the plan's
// filter predicates, in place. Call it on a Clone of a cached template, never
// on the template itself. Comparison values inside Pred slices are replaced
// wholesale, so the clone shares no predicate state with the template.
func (p *Plan) BindParams(args []sqlparse.Expr) error {
	if len(args) == 0 {
		return nil
	}
	for _, f := range p.Fragments {
		var err error
		var walk func(o *OpSpec)
		walk = func(o *OpSpec) {
			if err != nil {
				return
			}
			if o.Kind == KFilter {
				o.Pred, err = sqlparse.BindComparisons(o.Pred, args)
			}
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(f.Root)
		if err != nil {
			return err
		}
	}
	return nil
}
