package physical

import (
	"fmt"
	"math"
)

// Tag rewrites every fragment and exchange identifier with a query-scoped
// prefix, so that plans of concurrently executing queries never collide on
// the shared transport namespace (fragment instances register services
// derived from these IDs).
func (p *Plan) Tag(tag string) {
	if tag == "" {
		return
	}
	pre := tag + "."
	for _, f := range p.Fragments {
		f.ID = pre + f.ID
		if f.Output != nil {
			f.Output.ID = pre + f.Output.ID
			f.Output.ConsumerFragment = pre + f.Output.ConsumerFragment
		}
		var walk func(o *OpSpec)
		walk = func(o *OpSpec) {
			if o.Kind == KConsume {
				o.Exchange = pre + o.Exchange
			}
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(f.Root)
	}
}

// Validate checks the structural invariants every scheduled plan must hold;
// the services layer rejects invalid plans before deployment, and the
// property tests drive the scheduler through random queries against it.
func (p *Plan) Validate() error {
	if len(p.Fragments) == 0 {
		return fmt.Errorf("physical: plan has no fragments")
	}
	if p.Coordinator == "" {
		return fmt.Errorf("physical: plan has no coordinator")
	}
	byID := make(map[string]*FragmentSpec, len(p.Fragments))
	producerOf := make(map[string]*FragmentSpec)
	for _, f := range p.Fragments {
		if f.ID == "" {
			return fmt.Errorf("physical: fragment with empty ID")
		}
		if byID[f.ID] != nil {
			return fmt.Errorf("physical: duplicate fragment %s", f.ID)
		}
		byID[f.ID] = f
		if len(f.Instances) == 0 {
			return fmt.Errorf("physical: fragment %s has no instances", f.ID)
		}
		if len(f.InitialWeights) != len(f.Instances) {
			return fmt.Errorf("physical: fragment %s: %d weights for %d instances",
				f.ID, len(f.InitialWeights), len(f.Instances))
		}
		sum := 0.0
		for _, w := range f.InitialWeights {
			if w < 0 {
				return fmt.Errorf("physical: fragment %s: negative weight", f.ID)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("physical: fragment %s: weights sum to %v", f.ID, sum)
		}
		if f.Root == nil {
			return fmt.Errorf("physical: fragment %s has no operator tree", f.ID)
		}
		if f.Output != nil {
			if producerOf[f.Output.ID] != nil {
				return fmt.Errorf("physical: exchange %s has two producers", f.Output.ID)
			}
			producerOf[f.Output.ID] = f
			if f.Output.Policy == PolicyHash && len(f.Output.KeyOrds) == 0 {
				return fmt.Errorf("physical: hash exchange %s has no key ordinals", f.Output.ID)
			}
		}
	}
	top := p.Top()
	if top.Output != nil {
		return fmt.Errorf("physical: top fragment %s has an output exchange", top.ID)
	}
	for _, f := range p.Fragments {
		if f.Output != nil {
			cons := byID[f.Output.ConsumerFragment]
			if cons == nil {
				return fmt.Errorf("physical: exchange %s names unknown consumer %s",
					f.Output.ID, f.Output.ConsumerFragment)
			}
		}
		var err error
		var walk func(o *OpSpec)
		walk = func(o *OpSpec) {
			if err != nil {
				return
			}
			if o.Kind == KConsume {
				prod := producerOf[o.Exchange]
				switch {
				case prod == nil:
					err = fmt.Errorf("physical: fragment %s consumes unknown exchange %s", f.ID, o.Exchange)
				case prod.Output.ConsumerFragment != f.ID:
					err = fmt.Errorf("physical: exchange %s is wired to %s but consumed by %s",
						o.Exchange, prod.Output.ConsumerFragment, f.ID)
				case o.NumProducers != len(prod.Instances):
					err = fmt.Errorf("physical: fragment %s expects %d producers on %s, producer has %d instances",
						f.ID, o.NumProducers, o.Exchange, len(prod.Instances))
				}
			}
			if len(o.OutCols) == 0 && o.Kind != KLimit && o.Kind != KSort {
				err = fmt.Errorf("physical: fragment %s: %v spec has no output schema", f.ID, o.Kind)
			}
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(f.Root)
		if err != nil {
			return err
		}
	}
	// Every non-top exchange must be consumed somewhere.
	consumed := map[string]bool{}
	for _, f := range p.Fragments {
		var walk func(o *OpSpec)
		walk = func(o *OpSpec) {
			if o.Kind == KConsume {
				consumed[o.Exchange] = true
			}
			for _, c := range o.Children {
				walk(c)
			}
		}
		walk(f.Root)
	}
	for id := range producerOf {
		if !consumed[id] {
			return fmt.Errorf("physical: exchange %s has no consumer", id)
		}
	}
	return nil
}
