package physical

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/sqlparse"
)

func validPlan(t *testing.T, q string) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := logical.Plan(stmt, demoCatalog())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Schedule(ln, demoRegistry(), Options{Coordinator: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidateAcceptsScheduledPlans(t *testing.T) {
	for _, q := range []string{
		q1, q2,
		"select * from protein_sequences",
		"select count(*) from protein_sequences",
		"select p.ORF from protein_sequences p order by p.ORF limit 5",
	} {
		p := validPlan(t, q)
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", q, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	corrupt := []struct {
		name string
		mut  func(*Plan)
		want string
	}{
		{"no fragments", func(p *Plan) { p.Fragments = nil }, "no fragments"},
		{"no coordinator", func(p *Plan) { p.Coordinator = "" }, "no coordinator"},
		{"dup fragment", func(p *Plan) { p.Fragments[1].ID = p.Fragments[0].ID }, "duplicate"},
		{"no instances", func(p *Plan) { p.Fragments[0].Instances = nil }, "no instances"},
		{"weight arity", func(p *Plan) { p.Fragments[1].InitialWeights = []float64{1} }, "weights"},
		{"weight sum", func(p *Plan) { p.Fragments[1].InitialWeights = []float64{0.6, 0.6} }, "sum"},
		{"negative weight", func(p *Plan) { p.Fragments[1].InitialWeights = []float64{1.5, -0.5} }, "negative"},
		{"nil root", func(p *Plan) { p.Fragments[0].Root = nil }, "operator tree"},
		{"unknown consumer", func(p *Plan) { p.Fragments[0].Output.ConsumerFragment = "ZZ" }, "unknown consumer"},
		{"top has output", func(p *Plan) {
			p.Top().Output = &ExchangeSpec{ID: "EX", ConsumerFragment: p.Fragments[0].ID}
		}, "output exchange"},
		{"producer arity", func(p *Plan) { p.Top().Root.NumProducers = 9 }, "producers"},
		{"hash without keys", func(p *Plan) {
			p.Fragments[0].Output.Policy = PolicyHash
			p.Fragments[0].Output.KeyOrds = nil
		}, "key ordinals"},
	}
	for _, tc := range corrupt {
		p := validPlan(t, q1)
		tc.mut(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestTagIsolatesPlans(t *testing.T) {
	a := validPlan(t, q1)
	b := validPlan(t, q1)
	a.Tag("q1")
	b.Tag("q2")
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range []*Plan{a, b} {
		for _, f := range p.Fragments {
			if seen[f.ID] {
				t.Fatalf("fragment ID %s appears in both plans", f.ID)
			}
			seen[f.ID] = true
			if f.Output != nil && !strings.HasPrefix(f.Output.ID, "q") {
				t.Fatalf("exchange %s not tagged", f.Output.ID)
			}
		}
	}
	// Tagging with "" is a no-op.
	c := validPlan(t, q1)
	before := c.Fragments[0].ID
	c.Tag("")
	if c.Fragments[0].ID != before {
		t.Fatal("empty tag mutated the plan")
	}
}
