package obs

import "sync/atomic"

// Obs bundles the metrics registry and the adaptation timeline — the two
// halves of the observability layer — behind one handle. All methods are
// safe on a nil *Obs: they return nil sub-handles whose operations are
// no-ops, which is how instrumentation is disabled for overhead baselines.
type Obs struct {
	reg *Registry
	tl  *Timeline
}

// New builds a fresh, empty observability layer.
func New() *Obs {
	return &Obs{reg: NewRegistry(), tl: NewTimeline(0)}
}

// Registry exposes the metrics registry (nil on a nil Obs).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Timeline exposes the adaptation timeline (nil on a nil Obs).
func (o *Obs) Timeline() *Timeline {
	if o == nil {
		return nil
	}
	return o.tl
}

// Counter resolves a counter handle (nil, and so no-op, on a nil Obs).
func (o *Obs) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge resolves a gauge handle.
func (o *Obs) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram resolves a histogram handle.
func (o *Obs) Histogram(name string, bounds []float64) *Histogram {
	return o.Registry().Histogram(name, bounds)
}

// Record appends a timeline event.
func (o *Obs) Record(e Event) { o.Timeline().Append(e) }

// def is the process-wide default, swapped atomically so benchmarks can
// disable instrumentation without synchronising with running components
// (components resolve handles at construction, so a swap affects only
// components built afterwards).
var def atomic.Pointer[Obs]

func init() {
	def.Store(New())
}

// Default returns the process-wide observability layer. It may be nil after
// SetDefault(nil); every use is nil-safe.
func Default() *Obs { return def.Load() }

// SetDefault replaces the process-wide layer and returns the previous one.
// Passing nil disables instrumentation for components constructed
// afterwards; passing New() gives a fresh, empty layer (used by tests and
// overhead benchmarks).
func SetDefault(o *Obs) *Obs { return def.Swap(o) }
