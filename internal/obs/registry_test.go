package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read zero")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must return nil handles")
	}
	var o *Obs
	o.Counter("x").Inc()
	o.Record(Event{Kind: KindOutcome})
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("tuples_total")
	b := r.Counter("tuples_total")
	if a != b {
		t.Fatal("same name must resolve the same counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("handles must share state")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+0.7+5+50+500; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_ms_bucket{le="1"} 2`,
		`lat_ms_bucket{le="10"} 3`,
		`lat_ms_bucket{le="100"} 4`,
		`lat_ms_bucket{le="+Inf"} 5`,
		`lat_ms_count 5`,
		"# TYPE lat_ms histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("engine_tuples_produced_total", "fragment", "q1/F2")).Add(42)
	r.Counter(Label("engine_tuples_produced_total", "fragment", "q1/F0")).Add(7)
	r.Gauge("sessions_open").Set(1)
	r.Help("engine_tuples_produced_total", "tuples produced per fragment")
	h := r.Histogram(Label("batch_size", "fragment", "q1/F2"), []float64{16, 256})
	h.Observe(100)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP engine_tuples_produced_total tuples produced per fragment",
		"# TYPE engine_tuples_produced_total counter",
		`engine_tuples_produced_total{fragment="q1/F0"} 7`,
		`engine_tuples_produced_total{fragment="q1/F2"} 42`,
		"# TYPE sessions_open gauge",
		"sessions_open 1",
		`batch_size_bucket{fragment="q1/F2",le="16"} 0`,
		`batch_size_bucket{fragment="q1/F2",le="+Inf"} 1`,
		`batch_size_sum{fragment="q1/F2"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, not per labeled series.
	if n := strings.Count(out, "# TYPE engine_tuples_produced_total counter"); n != 1 {
		t.Errorf("TYPE line emitted %d times, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("m", "k", `a"b\c`)
	want := `m{k="a\"b\\c"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", DefBucketsSize)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 300))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	var wgRead sync.WaitGroup
	wgRead.Add(1)
	go func() {
		defer wgRead.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	wgRead.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
