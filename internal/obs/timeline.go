package obs

import "sync"

// EventKind classifies adaptation-timeline entries.
type EventKind string

// Timeline event kinds, in the order a full adaptation traverses them.
const (
	// KindMEDNotify is a MonitoringEventDetector forwarding a windowed M1/M2
	// average whose relative change cleared thresM.
	KindMEDNotify EventKind = "med-notify"
	// KindProposal is a Diagnoser proposing a rebalanced W'.
	KindProposal EventKind = "proposal"
	// KindOutcome is a Responder decision about a proposal: outcome is
	// "adapted", "skipped-late", "redundant" or "failed".
	KindOutcome EventKind = "outcome"
	// KindReplay is one R1 state replay or tuple resend, with its size.
	KindReplay EventKind = "replay"
	// KindProgressFallback marks a progress estimate computed from routing
	// progress because no cardinality estimate was available.
	KindProgressFallback EventKind = "progress-fallback"
	// KindFailure marks an evaluator classified as dead (crash-stop or
	// unreachable) and the per-fragment recovery steps that follow; Outcome
	// distinguishes "detected", "recovered" and "failed".
	KindFailure EventKind = "failure"
	// KindMembership marks a cluster membership change: Detail is "join" or
	// "leave" and Node names the evaluator.
	KindMembership EventKind = "membership"
	// KindSpill marks a memory-budget breach response: a join or aggregate
	// partition grace-hash-spilled to storage, a sort run flushed, or a
	// spilled partition re-partitioned on reload. Detail names the operator
	// and partition, Tuples the spilled tuple count.
	KindSpill EventKind = "spill"
	// KindScan marks a stored-scan readahead transition: the async
	// prefetcher shrank to one in-flight block because the query's memory
	// budget was breached (or grew back when pressure cleared). Detail
	// carries the direction.
	KindScan EventKind = "scan"
)

// Event is one adaptation-timeline entry. Fields beyond Seq/AtMs/Kind are
// populated per kind; zero values are omitted from the JSON dump.
type Event struct {
	// Seq is the process-wide append order (monotonic, never reused), so a
	// reader can detect ring evictions between two snapshots.
	Seq int64 `json:"seq"`
	// AtMs is the publication time in paper milliseconds.
	AtMs float64 `json:"at_ms"`
	Kind EventKind `json:"kind"`
	// Node is the component's hosting machine; Fragment the subplan the
	// event concerns.
	Node     string `json:"node,omitempty"`
	Fragment string `json:"fragment,omitempty"`
	// Key is the MED grouping key (m1:frag#i or m2:frag#i->frag#j).
	Key string `json:"key,omitempty"`
	// AvgCostMs is the windowed average that triggered a med-notify, or the
	// per-instance cost vector's source for proposals (see Costs).
	AvgCostMs float64 `json:"avg_cost_ms,omitempty"`
	// OldWeights/NewWeights are the distribution vectors around a proposal
	// or deployment.
	OldWeights []float64 `json:"old_weights,omitempty"`
	NewWeights []float64 `json:"new_weights,omitempty"`
	// Costs are the per-instance costs c(p_i) behind a proposal.
	Costs []float64 `json:"costs,omitempty"`
	// Outcome is the Responder's decision (outcome events only).
	Outcome string `json:"outcome,omitempty"`
	// Retrospective reports whether a deployment used R1.
	Retrospective bool `json:"retrospective,omitempty"`
	// DurationMs is how long deploying a decision took.
	DurationMs float64 `json:"duration_ms,omitempty"`
	// Tuples is a replay/resend size, or the progress numerator for
	// fallback events.
	Tuples int64 `json:"tuples,omitempty"`
	// Detail carries anything else worth keeping (error text, ratios).
	Detail string `json:"detail,omitempty"`
}

// DefaultTimelineCap bounds the default timeline ring. At a few hundred
// bytes per event this keeps the whole timeline under ~1 MB while holding
// far more adaptations than any single query produces.
const DefaultTimelineCap = 4096

// Timeline is an append-only bounded ring of adaptation events. When full,
// the oldest event is evicted (and counted), so the timeline always holds
// the most recent history — the part a live debugging session needs.
type Timeline struct {
	mu      sync.Mutex
	ring    []Event
	head    int
	count   int
	nextSeq int64
	evicted int64
}

// NewTimeline builds a timeline holding up to capacity events; capacity <= 0
// selects DefaultTimelineCap.
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Timeline{ring: make([]Event, capacity)}
}

// Append records one event, stamping its sequence number. Safe on a nil
// receiver (no-op) and from any goroutine.
func (t *Timeline) Append(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.nextSeq
	t.nextSeq++
	if t.count == len(t.ring) {
		t.ring[t.head] = e
		t.head = (t.head + 1) % len(t.ring)
		t.evicted++
	} else {
		t.ring[(t.head+t.count)%len(t.ring)] = e
		t.count++
	}
	t.mu.Unlock()
}

// Events snapshots the ring in append order. A nil timeline yields nil.
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// Evicted reports how many events the ring has dropped to stay bounded.
func (t *Timeline) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}
