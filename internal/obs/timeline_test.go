package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTimelineOrderAndEviction(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 6; i++ {
		tl.Append(Event{Kind: KindOutcome, AtMs: float64(i)})
	}
	events := tl.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for i, e := range events {
		if want := int64(i + 2); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if tl.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tl.Evicted())
	}
}

func TestTimelineConcurrentAppend(t *testing.T) {
	tl := NewTimeline(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tl.Append(Event{Kind: KindMEDNotify})
				tl.Events()
			}
		}()
	}
	wg.Wait()
	events := tl.Events()
	if len(events) != 128 {
		t.Fatalf("len = %d, want 128 (full ring)", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs %d -> %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	o := New()
	o.Counter(Label("adaptations_total", "outcome", "adapted")).Add(2)
	o.Record(Event{Kind: KindMEDNotify, Fragment: "q1/F2", Key: "m1:q1/F2#0", AvgCostMs: 4.2})
	o.Record(Event{Kind: KindProposal, Fragment: "q1/F2", NewWeights: []float64{0.8, 0.2}})
	o.Record(Event{Kind: KindOutcome, Fragment: "q9/F0", Outcome: "adapted"})

	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !strings.Contains(string(body), `adaptations_total{outcome="adapted"} 2`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	var dump struct {
		Evicted int64   `json:"evicted"`
		Events  []Event `json:"events"`
	}
	res, err = srv.Client().Get(srv.URL + "/timeline?fragment=q1/F2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(dump.Events) != 2 {
		t.Fatalf("filtered events = %d, want 2", len(dump.Events))
	}
	if dump.Events[0].Kind != KindMEDNotify || dump.Events[1].Kind != KindProposal {
		t.Fatalf("unexpected kinds: %+v", dump.Events)
	}

	res, err = srv.Client().Get(srv.URL + "/timeline?since=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(dump.Events) != 1 || dump.Events[0].Seq != 2 {
		t.Fatalf("since filter returned %+v", dump.Events)
	}

	// A nil Obs serves empty documents rather than crashing.
	nilSrv := httptest.NewServer(Handler(nil))
	defer nilSrv.Close()
	res, err = nilSrv.Client().Get(nilSrv.URL + "/metrics")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("nil obs /metrics: %v %v", err, res)
	}
	res.Body.Close()
}
