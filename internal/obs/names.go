package obs

// Canonical metric names, so the packages instrumenting them and the tests
// asserting on /metrics output agree on spelling. Label sets are noted per
// metric.
const (
	// Engine (label: fragment).
	MEngineTuplesProduced = "engine_tuples_produced_total"
	MEngineBatchSize      = "engine_batch_size"
	// Morsel-driven parallel drivers: currently live worker goroutines and
	// per-morsel (fill+send) latency in paper milliseconds.
	MEngineParallelWorkers = "engine_parallel_workers"
	MEngineMorselMs        = "engine_morsel_ms"

	// Exchanges (label: exchange).
	MExchangeTuplesRouted   = "exchange_tuples_routed_total"
	MExchangeBuffersSent    = "exchange_buffers_sent_total"
	MExchangeTuplesConsumed = "exchange_tuples_consumed_total"

	// Bus (no labels; per-topic detail stays in bus.Stats).
	MBusPublished  = "bus_published_total"
	MBusDelivered  = "bus_delivered_total"
	MBusDropped    = "bus_dropped_total"
	MBusQueueDepth = "bus_queue_depth"

	// Monitoring components.
	MMEDRawEvents        = "med_raw_events_total"
	MMEDNotifications    = "med_notifications_total"
	MDiagNotificationsIn = "diagnoser_notifications_in_total"
	MDiagProposals       = "diagnoser_proposals_total"
	// Responder outcomes (label: outcome = adapted|skipped-late|redundant|failed).
	MAdaptations        = "adaptations_total"
	MTuplesMoved        = "adaptation_tuples_moved_total"
	MStateReplays       = "adaptation_state_replays_total"
	MProgressFallbacks  = "adaptation_progress_fallbacks_total"
	MAdaptationDuration = "adaptation_duration_ms"

	// Control-plane RPC.
	MRPCLatency = "rpc_latency_ms"
	MRPCErrors  = "rpc_errors_total"

	// Transport (label: kind = local|remote for tcp; none for inproc).
	MTransportMessages = "transport_messages_total"

	// Query lifecycle (label: outcome = ok|error).
	MQueries      = "queries_total"
	MSessionsOpen = "sessions_open"

	// Serving front: plan cache.
	MPlanCacheHits      = "plan_cache_hits_total"
	MPlanCacheMisses    = "plan_cache_misses_total"
	MPlanCacheEvictions = "plan_cache_evictions_total"
	MPlanCacheSize      = "plan_cache_size"

	// Serving front: admission control. The queue-time histogram is in
	// real (wall-clock) milliseconds — queueing happens before any
	// simulated execution starts.
	MAdmissionQueued   = "admission_queued_total"
	MAdmissionRejected = "admission_rejected_total"
	MAdmissionWaiting  = "admission_waiting"
	MAdmissionQueueMs  = "admission_queue_ms"

	// Stored-table scans: blocks decoded by the batched scan path (all
	// modes) and bytes fetched ahead of the consumer by the readahead
	// goroutine (serial stored scans only; morsel-parallel scans read on
	// demand).
	MScanBlocksRead     = "scan_blocks_read_total"
	MScanReadaheadBytes = "scan_readahead_bytes"

	// Memory governance: per-query budget accounting and grace-hash /
	// external-sort spilling (no labels; spill detail is on the timeline).
	MMemInflight     = "mem_inflight_bytes"
	MMemOverrelease  = "mem_overrelease_total"
	MMemUngoverned   = "mem_ungoverned_total"
	MSpillBytes      = "spill_bytes_total"
	MSpillPartitions = "spill_partitions_total"
	MSpillRestarts   = "spill_restarts_total"

	// Elastic cluster: evaluator liveness and recovery. Failovers are
	// labelled by outcome (recovered|failed); the duration histogram covers
	// detection-to-resume in paper milliseconds.
	MEvaluatorsLive   = "evaluators_live"
	MFailovers        = "failovers_total"
	MNodesJoined      = "nodes_joined_total"
	MRecoveryDuration = "recovery_duration_ms"
)
