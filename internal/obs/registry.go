// Package obs is the process-wide observability layer: a low-overhead
// metrics registry (atomic counters, gauges, bounded histograms) plus a
// structured adaptation timeline (see timeline.go) that together make the
// monitoring→diagnosis→response loop of the AQP architecture visible from
// outside the process. R-GMA's lesson — that grid monitoring should itself
// be a uniformly queryable data source — is applied here in miniature: every
// component publishes into one registry, and one endpoint (see http.go)
// exposes it in the Prometheus text format.
//
// Hot-path discipline: components resolve metric handles once, at
// construction, and instrument with plain atomic operations per event or per
// batch. Every handle method is safe on a nil receiver and compiles to a
// single branch when instrumentation is disabled, so the engine's inner
// loops carry no conditional wiring.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depths, open sessions).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound, cumulative-bucket histogram. Bounds are set at
// registration and immutable afterwards, so Observe is lock-free: one atomic
// add on the bucket plus a CAS loop folding the value into the sum.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations. A nil histogram reads zero.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of observed values. A nil histogram reads zero.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBucketsLatencyMs suits RPC and adaptation latencies in paper
// milliseconds.
var DefBucketsLatencyMs = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000}

// DefBucketsSize suits tuple counts per batch/buffer and queue depths.
var DefBucketsSize = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// Registry holds the process's metrics. The zero value is not usable; use
// NewRegistry. Lookups take a mutex; the returned handles are lock-free.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	// help records optional HELP strings per metric family.
	help map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		help:   make(map[string]string),
	}
}

// Counter returns (registering on first use) the counter named name. The
// name may carry a label suffix built with Label. A nil registry returns a
// nil handle, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge named name. A nil
// registry returns a nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram named name with
// the given ascending upper bounds; bounds are fixed by the first
// registration. A nil registry returns a nil handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Help attaches a HELP string to a metric family (the name without labels).
func (r *Registry) Help(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = help
	r.mu.Unlock()
}

// Label appends a {k="v",...} label suffix to a metric name. Values are
// escaped per the Prometheus text format.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// family splits a possibly-labeled metric name into its family and label
// suffix ("x{a=\"b\"}" → "x", `{a="b"}`).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, grouped by family and sorted, so the output is diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type sample struct {
		name  string
		value string
	}
	families := make(map[string][]sample)
	kinds := make(map[string]string)
	add := func(name, kind, value string) {
		fam, _ := family(name)
		families[fam] = append(families[fam], sample{name: name, value: value})
		kinds[fam] = kind
	}
	for name, c := range r.counts {
		add(name, "counter", fmt.Sprintf("%d", c.Value()))
	}
	for name, g := range r.gauges {
		add(name, "gauge", fmt.Sprintf("%d", g.Value()))
	}
	type histDump struct {
		name   string
		bounds []float64
		counts []int64
		count  int64
		sum    float64
	}
	var hists []histDump
	for name, h := range r.hists {
		d := histDump{name: name, bounds: h.bounds, count: h.Count(), sum: h.Sum()}
		d.counts = make([]int64, len(h.counts))
		for i := range h.counts {
			d.counts[i] = h.counts[i].Load()
		}
		hists = append(hists, d)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var fams []string
	for fam := range families {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		if h := help[fam]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, kinds[fam])
		samples := families[fam]
		sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
		for _, s := range samples {
			fmt.Fprintf(w, "%s %s\n", s.name, s.value)
		}
	}

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		fam, labels := family(h.name)
		if hs := help[fam]; hs != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam, hs)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s %d\n", bucketName(fam, labels, fmt.Sprintf("%g", bound)), cum)
		}
		fmt.Fprintf(w, "%s %d\n", bucketName(fam, labels, "+Inf"), h.count)
		fmt.Fprintf(w, "%s%s %g\n", fam+"_sum", labels, h.sum)
		fmt.Fprintf(w, "%s%s %d\n", fam+"_count", labels, h.count)
	}
}

// bucketName builds fam_bucket{...,le="bound"} merging any existing labels.
func bucketName(fam, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf(`%s_bucket{le="%s"}`, fam, le)
	}
	// labels is `{...}`: splice le in before the closing brace.
	return fmt.Sprintf(`%s_bucket%s,le="%s"}`, fam, labels[:len(labels)-1], le)
}
