package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
)

// Handler serves the observability layer over HTTP:
//
//	GET /metrics   — Prometheus text exposition of the registry
//	GET /timeline  — JSON dump of the adaptation timeline, oldest first;
//	                 ?fragment=F filters to one fragment's events,
//	                 ?since=SEQ returns only events with Seq > SEQ
//
// A nil Obs serves empty documents, so the endpoint can be mounted
// unconditionally.
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		events := o.Timeline().Events()
		if frag := r.URL.Query().Get("fragment"); frag != "" {
			kept := events[:0]
			for _, e := range events {
				if e.Fragment == frag {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		if s := r.URL.Query().Get("since"); s != "" {
			since, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			kept := events[:0]
			for _, e := range events {
				if e.Seq > since {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Evicted int64   `json:"evicted"`
			Events  []Event `json:"events"`
		}{Evicted: o.Timeline().Evicted(), Events: events})
	})
	return mux
}

// Serve mounts Handler(o) on addr in a background goroutine, returning the
// server (for Close) and the bound address (useful with ":0"), or an error
// if the listener cannot bind. It is the one-liner the cmd/ binaries use
// behind their -metrics flags.
func Serve(addr string, o *Obs) (*http.Server, string, error) {
	srv := &http.Server{Addr: addr, Handler: Handler(o)}
	// Bind synchronously so a bad address fails here, not inside the
	// goroutine.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
