package plancache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestGetPut(t *testing.T) {
	c := New[int](4, nil)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1, 10)
	v, ok := c.Get("a", 1)
	if !ok || v != 10 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	c.Put("a", 1, 11) // overwrite
	if v, _ := c.Get("a", 1); v != 11 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2, nil)
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	c.Get("a", 1) // a is now most recent
	c.Put("c", 1, 3)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a", 1); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c", 1); !ok {
		t.Fatal("c should be present")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New[int](4, nil)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a", 2); ok {
		t.Fatal("stale epoch should miss")
	}
	if c.Len() != 0 {
		t.Fatal("stale entry should be dropped")
	}
	// Re-plan under the new epoch.
	c.Put("a", 2, 9)
	if v, ok := c.Get("a", 2); !ok || v != 9 {
		t.Fatalf("Get after re-plan = %v, %v", v, ok)
	}
}

func TestMetricsMirrored(t *testing.T) {
	reg := obs.NewRegistry()
	c := New[int](1, reg)
	c.Put("a", 1, 1)
	c.Get("a", 1)
	c.Get("x", 1)
	c.Put("b", 1, 2)
	if reg.Counter(obs.MPlanCacheHits).Value() != 1 {
		t.Error("hits not mirrored")
	}
	if reg.Counter(obs.MPlanCacheMisses).Value() != 1 {
		t.Error("misses not mirrored")
	}
	if reg.Counter(obs.MPlanCacheEvictions).Value() != 1 {
		t.Error("evictions not mirrored")
	}
	if reg.Gauge(obs.MPlanCacheSize).Value() != 1 {
		t.Error("size not mirrored")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q%d", (g+i)%32)
				if v, ok := c.Get(key, 1); ok && v != (g+i)%32 {
					t.Errorf("corrupt value %d for %s", v, key)
				}
				c.Put(key, 1, (g+i)%32)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New[int](0, nil)
	for i := 0; i < DefaultCapacity+10; i++ {
		c.Put(fmt.Sprintf("q%d", i), 1, i)
	}
	if c.Len() != DefaultCapacity {
		t.Fatalf("len = %d, want %d", c.Len(), DefaultCapacity)
	}
}
