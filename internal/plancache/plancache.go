// Package plancache is a bounded LRU cache for compiled query artifacts,
// keyed by normalized SQL (see sqlparse.Normalize). The serving front caches
// physical plan templates under it, so repeated queries skip parsing,
// logical planning, scheduling and validation and only clone + bind the
// cached template.
//
// Entries carry the topology epoch they were planned under: when the Grid
// gains or loses resources the scheduler's placement decisions go stale, so
// lookups pass the current epoch and entries from older epochs miss (and are
// dropped lazily). Hit/miss/eviction counts mirror into the obs registry as
// plan_cache_* metrics.
package plancache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// DefaultCapacity bounds the cache when the caller does not choose one.
const DefaultCapacity = 128

// Cache is a bounded, epoch-aware LRU map from normalized SQL to a cached
// value. All methods are safe for concurrent use.
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions *obs.Counter
	size                    *obs.Gauge
}

type entry[V any] struct {
	key   string
	epoch uint64
	val   V
}

// New builds a cache holding at most capacity entries (DefaultCapacity when
// capacity <= 0), reporting its counters into reg (a private registry when
// nil, so Stats always works).
func New[V any](capacity int, reg *obs.Registry) *Cache[V] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cache[V]{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter(obs.MPlanCacheHits),
		misses:    reg.Counter(obs.MPlanCacheMisses),
		evictions: reg.Counter(obs.MPlanCacheEvictions),
		size:      reg.Gauge(obs.MPlanCacheSize),
	}
}

// Get returns the value cached under key if it exists and was stored under
// the same epoch. A stale-epoch entry is dropped and reported as a miss.
func (c *Cache[V]) Get(key string, epoch uint64) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return zero, false
	}
	ent := el.Value.(*entry[V])
	if ent.epoch != epoch {
		c.removeLocked(el)
		c.evictions.Inc()
		c.misses.Inc()
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return ent.val, true
}

// Put stores val under key for the given epoch, evicting the least recently
// used entry when the cache is full. A concurrent Put for the same key wins
// by last-writer.
func (c *Cache[V]) Put(key string, epoch uint64, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry[V])
		ent.epoch = epoch
		ent.val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		c.removeLocked(c.ll.Back())
		c.evictions.Inc()
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, epoch: epoch, val: val})
	c.size.Set(int64(c.ll.Len()))
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	ent := c.ll.Remove(el).(*entry[V])
	delete(c.items, ent.key)
	c.size.Set(int64(c.ll.Len()))
}

// Len reports the number of cached entries (stale-epoch entries included
// until a Get touches them).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Evictions int64
	Size                    int
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Size:      c.Len(),
	}
}

// HitRate is the fraction of lookups served from the cache; 0 before any
// lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
