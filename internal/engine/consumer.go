package engine

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// Addr is a transport endpoint of a fragment instance.
type Addr struct {
	Node    simnet.NodeID
	Service string
}

// queueEntry is one received tuple awaiting processing.
type queueEntry struct {
	producer int
	seq      int64
	bucket   int32
	tuple    relation.Tuple
}

// streamState tracks the checkpoint/acknowledgement protocol for one
// producer→consumer stream (paper §3.1, Response): the producer inserts
// checkpoints into the data flow and keeps every tuple in its recovery log
// until the consumer acknowledges the checkpoint, meaning the interval's
// tuples "have finished processing and are not needed any more".
type streamState struct {
	// outstanding holds received-but-unprocessed sequence numbers.
	outstanding map[int64]bool
	// discarded holds sequence numbers removed by a retrospective recall;
	// checkpoints covering them are never acknowledged, so the producer
	// keeps (or explicitly migrates) those log entries.
	discarded map[int64]bool
	// pending are checkpoint sequences awaiting acknowledgement, ascending.
	pending []int64
	// eosSeen makes end-of-stream idempotent: a detach after a real EOS
	// (or a duplicate EOS) must not double-count towards termination.
	eosSeen bool
	// detached marks a stream whose producer instance died; no further
	// data or acks flow on it. Queued tuples stay valid — they derive
	// from inputs the dead instance had acknowledged before dying.
	detached bool
	// maxProcessed / lastAcked drive fault-tolerant acknowledgement:
	// instead of waiting for producer-inserted checkpoints, the consumer
	// acknowledges every processed prefix at each batch boundary, inside
	// the commit section that also flushes the outputs derived from it.
	maxProcessed int64
	lastAcked    int64
}

// Consumer is the receiving half of an exchange: a queue of tuples arriving
// from the producer instances of an upstream fragment, exposed to the local
// operator tree as an Iterator leaf. Its queue is unbounded, matching the
// paper's configuration where "the incoming queues within exchanges can fit
// the complete dataset".
type Consumer struct {
	Exchange string
	// ConsumerIdx is this instance's index within the consuming fragment.
	ConsumerIdx int
	// Producers addresses the upstream instances, for acknowledgements.
	Producers []Addr
	// Stateful suppresses acknowledgements: build-side tuples constitute
	// operator state and must stay in the producers' recovery logs.
	Stateful bool

	gate *flowGate
	ctx  *ExecContext
	tr   transport.Transport
	node simnet.NodeID

	// Guarded by gate.mu.
	queue    []queueEntry
	eos      int
	streams  []*streamState
	lastPop  []queueEntry // entries popped but not yet marked processed
	consumed int64
	waitMs   float64
	closed   bool

	obsConsumed *obs.Counter

	// stateTarget receives replayed state tuples (hash-join build side).
	stateTarget StateTarget

	// ft enables eager processed-prefix acknowledgements; ftCommit runs
	// them (with the matching output flush) in a node commit section. See
	// SetFaultTolerant.
	ft       bool
	ftCommit func(acks []ackItem)
}

// newConsumer wires a consumer; the fragment runtime constructs these while
// compiling KConsume specs.
func newConsumer(exchange string, consumerIdx int, producers []Addr, stateful bool,
	gate *flowGate, tr transport.Transport, node simnet.NodeID) *Consumer {
	c := &Consumer{
		Exchange:    exchange,
		ConsumerIdx: consumerIdx,
		Producers:   producers,
		Stateful:    stateful,
		gate:        gate,
		tr:          tr,
		node:        node,
		streams:     make([]*streamState, len(producers)),
		obsConsumed: obs.Default().Counter(obs.Label(obs.MExchangeTuplesConsumed, "exchange", exchange)),
	}
	for i := range c.streams {
		c.streams[i] = &streamState{
			outstanding: make(map[int64]bool),
			discarded:   make(map[int64]bool),
		}
	}
	return c
}

// SetStateTarget registers the stateful operator absorbing replayed state.
func (c *Consumer) SetStateTarget(t StateTarget) { c.stateTarget = t }

// SetFaultTolerant switches the consumer to elastic-recovery
// acknowledgement (set once by the fragment runtime before the driver
// starts): at every batch boundary the consumer acknowledges its whole
// processed prefix per stream, and commit delivers those acks — paired
// with the flush of the outputs derived from them — inside one
// crash-atomic node commit section. An input is therefore acknowledged if
// and only if its effects are durably downstream, which makes the
// producer-side recovery log of a dead instance exactly the set of tuples
// that must be replayed onto survivors.
func (c *Consumer) SetFaultTolerant(commit func(acks []ackItem)) {
	c.ft = true
	c.ftCommit = commit
}

// Open implements Iterator.
func (c *Consumer) Open(ctx *ExecContext) error {
	c.ctx = ctx
	return nil
}

// Next implements Iterator: it blocks until a tuple arrives, every producer
// has closed the exchange, or the consumer is closed. Marking the previous
// tuple processed happens on entry, so that between two pops there is
// exactly one in-flight tuple the flow gate can wait on.
func (c *Consumer) Next() (relation.Tuple, bool, error) {
	c.gate.mu.Lock()
	c.finishInflightLocked()
	flushed := false
	for {
		if len(c.queue) > 0 && !c.gate.paused {
			e := c.queue[0]
			c.queue = c.queue[1:]
			c.lastPop = append(c.lastPop, e)
			c.gate.inflight++
			c.consumed++
			c.gate.mu.Unlock()
			c.obsConsumed.Inc()
			return e.tuple, true, nil
		}
		if c.closed || (c.eos == len(c.Producers) && len(c.queue) == 0 && !c.gate.paused) {
			c.gate.mu.Unlock()
			return nil, false, nil
		}
		if !flushed {
			// About to block: pay the outstanding modelled work first so
			// the measured wait reflects genuine starvation, then recheck.
			flushed = true
			c.gate.mu.Unlock()
			c.ctx.Meter.Flush()
			c.gate.mu.Lock()
			continue
		}
		start := c.ctx.Clock.NowMs()
		c.gate.cond.Wait()
		c.waitMs += c.ctx.Clock.NowMs() - start
	}
}

// NextBatch implements BatchIterator: it pops up to dst.Cap() queued tuples
// under a single gate-lock acquisition, amortizing the per-tuple lock and
// condition-variable traffic of the tuple-at-a-time path. All popped tuples
// are in flight until the next NextBatch (or Next/Close) call marks them
// processed, exactly mirroring the single-tuple protocol — the flow gate's
// quiesce simply waits for a batch instead of one tuple, and checkpoint
// acknowledgements still fire only after the batch has been processed.
func (c *Consumer) NextBatch(dst *relation.Batch) (int, error) {
	dst.Rewind()
	c.gate.mu.Lock()
	c.finishInflightLocked()
	flushed := false
	for {
		if len(c.queue) > 0 && !c.gate.paused {
			n := c.popLocked(&c.lastPop, dst)
			c.gate.mu.Unlock()
			c.obsConsumed.Add(int64(n))
			return n, nil
		}
		if c.closed || (c.eos == len(c.Producers) && len(c.queue) == 0 && !c.gate.paused) {
			c.gate.mu.Unlock()
			return 0, nil
		}
		if !flushed {
			// About to block: pay the outstanding modelled work first so
			// the measured wait reflects genuine starvation, then recheck.
			flushed = true
			c.gate.mu.Unlock()
			c.ctx.Meter.Flush()
			c.gate.mu.Lock()
			continue
		}
		start := c.ctx.Clock.NowMs()
		c.gate.cond.Wait()
		c.waitMs += c.ctx.Clock.NowMs() - start
	}
}

// popLocked pops up to dst.Cap() queued entries into dst, recording them in
// *pending and marking them in flight. Caller holds gate.mu and has checked
// that the queue is non-empty and the gate unpaused.
func (c *Consumer) popLocked(pending *[]queueEntry, dst *relation.Batch) int {
	n := len(c.queue)
	if cp := dst.Cap(); n > cp {
		n = cp
	}
	for _, e := range c.queue[:n] {
		*pending = append(*pending, e)
		dst.Append(e.tuple)
	}
	c.queue = c.queue[n:]
	c.gate.inflight += n
	c.consumed += int64(n)
	return n
}

// ackItem is one checkpoint acknowledgement to transmit: everything at or
// below the checkpoint is processed, except the listed recalled sequences.
type ackItem struct {
	producer   int
	checkpoint int64
	except     []int64
}

// finishEntriesLocked marks entries processed, releasing the flow gate, and
// returns the checkpoint acks that became complete. The caller must send
// them only after dropping gate.mu: transmission sleeps, and the ack
// handler may park on the producer's flow barrier.
func (c *Consumer) finishEntriesLocked(entries []queueEntry) []ackItem {
	for _, e := range entries {
		st := c.streams[e.producer]
		delete(st.outstanding, e.seq)
		if e.seq > st.maxProcessed {
			st.maxProcessed = e.seq
		}
		c.gate.inflight--
	}
	c.gate.cond.Broadcast()
	if c.ft {
		return c.ftAckableLocked()
	}
	return c.ackableLocked()
}

// ftAckableLocked emits one ack per stream whose processed prefix advanced:
// the checkpoint is the highest processed sequence, with every discarded
// sequence at or below it re-listed as exempt (discards are released by the
// resend step, never by acks). Per-stream delivery and serial processing
// are in sequence order, so "maxProcessed" is equivalent to "all below it
// processed or discarded".
func (c *Consumer) ftAckableLocked() []ackItem {
	if c.Stateful {
		return nil
	}
	var acks []ackItem
	for p, st := range c.streams {
		if st.detached || st.maxProcessed <= st.lastAcked {
			continue
		}
		var except []int64
		for s := range st.discarded {
			if s <= st.maxProcessed {
				except = append(except, s)
			}
		}
		acks = append(acks, ackItem{producer: p, checkpoint: st.maxProcessed, except: except})
		st.lastAcked = st.maxProcessed
	}
	return acks
}

// finishInflightLocked marks the previously popped entries processed,
// releasing the gate and acknowledging completed checkpoints.
func (c *Consumer) finishInflightLocked() {
	if len(c.lastPop) == 0 {
		return
	}
	acks := c.finishEntriesLocked(c.lastPop)
	c.lastPop = c.lastPop[:0]
	if len(acks) == 0 {
		return
	}
	// Send acks outside the gate lock: transmission sleeps.
	c.gate.mu.Unlock()
	if c.ft && c.ftCommit != nil {
		c.ftCommit(acks)
	} else {
		for _, a := range acks {
			c.sendAck(a)
		}
	}
	c.gate.mu.Lock()
}

// ConsumerWorker is one morsel worker's handle on a shared Consumer: the
// worker's popped tuples stay in flight — and its completed checkpoint acks
// unsent — until the worker calls Finish, so the flow gate's quiesce waits
// on every worker's current morsel exactly as it waits on the serial
// driver's current batch, and no worker can finish another's morsel.
type ConsumerWorker struct {
	c       *Consumer
	pending []queueEntry
}

// NewWorker returns a fresh worker handle.
func (c *Consumer) NewWorker() *ConsumerWorker { return &ConsumerWorker{c: c} }

// Finish marks the worker's previously popped entries processed. Call with
// no locks held: completed checkpoint acks are transmitted inline.
func (w *ConsumerWorker) Finish() {
	if len(w.pending) == 0 {
		return
	}
	c := w.c
	c.gate.mu.Lock()
	acks := c.finishEntriesLocked(w.pending)
	c.gate.mu.Unlock()
	w.pending = w.pending[:0]
	for _, a := range acks {
		c.sendAck(a)
	}
}

// NextBatchFor pops a batch for worker w, flushing the worker's own meter m
// before parking (a vtime.Meter is goroutine-confined, so the consumer's
// bound context meter must not be flushed from worker goroutines). Unlike
// NextBatch it does not finish w's previous batch on entry — the worker
// does that explicitly, with no locks held, before asking for more input.
func (c *Consumer) NextBatchFor(w *ConsumerWorker, dst *relation.Batch, m *vtime.Meter) (int, error) {
	dst.Rewind()
	c.gate.mu.Lock()
	flushed := false
	for {
		if len(c.queue) > 0 && !c.gate.paused {
			n := c.popLocked(&w.pending, dst)
			c.gate.mu.Unlock()
			c.obsConsumed.Add(int64(n))
			return n, nil
		}
		if c.closed || (c.eos == len(c.Producers) && len(c.queue) == 0 && !c.gate.paused) {
			c.gate.mu.Unlock()
			return 0, nil
		}
		if !flushed {
			flushed = true
			c.gate.mu.Unlock()
			if m != nil {
				m.Flush()
			}
			c.gate.mu.Lock()
			continue
		}
		start := c.ctx.Clock.NowMs()
		c.gate.cond.Wait()
		c.waitMs += c.ctx.Clock.NowMs() - start
	}
}

// ackableLocked pops every pending checkpoint that is complete: no sequence
// at or below it is still outstanding. Sequences discarded by a recall
// count as satisfied but are reported in the ack's exclusion list so the
// producer keeps their log entries for the resend step.
func (c *Consumer) ackableLocked() []ackItem {
	if c.Stateful || c.ft {
		// Fault-tolerant consumers acknowledge processed prefixes at batch
		// boundaries instead; checkpoint arrival alone must not trigger an
		// ack outside a commit section.
		return nil
	}
	var acks []ackItem
	for p, st := range c.streams {
		for len(st.pending) > 0 {
			ck := st.pending[0]
			if hasAtOrBelow(st.outstanding, ck) {
				break
			}
			var except []int64
			for s := range st.discarded {
				if s <= ck {
					except = append(except, s)
				}
			}
			acks = append(acks, ackItem{producer: p, checkpoint: ck, except: except})
			st.pending = st.pending[1:]
		}
	}
	return acks
}

func hasAtOrBelow(set map[int64]bool, ck int64) bool {
	for s := range set {
		if s <= ck {
			return true
		}
	}
	return false
}

func (c *Consumer) sendAck(a ackItem) {
	// Snapshot the address under the gate lock: a live join may grow the
	// Producers slice concurrently.
	c.gate.mu.Lock()
	addr := c.Producers[a.producer]
	c.gate.mu.Unlock()
	msg := &transport.Message{
		Kind:        transport.KindAck,
		Exchange:    c.Exchange,
		ProducerIdx: a.producer,
		ConsumerIdx: c.ConsumerIdx,
		Checkpoint:  a.checkpoint,
		Except:      a.except,
	}
	// A failed ack only delays log release; it cannot corrupt the query.
	_, _ = c.tr.Send(c.node, addr.Node, addr.Service, msg)
}

// Close implements Iterator: it releases any blocked Next.
func (c *Consumer) Close() error {
	c.gate.locked(func() {
		c.finishInflightLocked()
		c.closed = true
		c.gate.cond.Broadcast()
	})
	return nil
}

// Deliver ingests a data or EOS message from the transport. Replay buffers
// go straight to the registered state target; normal buffers join the
// queue.
func (c *Consumer) Deliver(msg *transport.Message) error {
	switch msg.Kind {
	case transport.KindEOS:
		c.gate.locked(func() {
			if msg.ProducerIdx >= 0 && msg.ProducerIdx < len(c.streams) {
				st := c.streams[msg.ProducerIdx]
				if st.eosSeen {
					return
				}
				st.eosSeen = true
			}
			c.eos++
			c.gate.cond.Broadcast()
		})
		return nil
	case transport.KindData:
		if msg.Replay {
			if c.stateTarget == nil {
				return fmt.Errorf("engine: replay buffer on exchange %s with no state target", c.Exchange)
			}
			c.stateTarget.InsertState(msg.Tuples)
			return nil
		}
		if msg.ProducerIdx < 0 || msg.ProducerIdx >= len(c.streams) {
			return fmt.Errorf("engine: bad producer index %d on exchange %s", msg.ProducerIdx, c.Exchange)
		}
		var acks []ackItem
		c.gate.locked(func() {
			st := c.streams[msg.ProducerIdx]
			for i, t := range msg.Tuples {
				seq := msg.StartSeq + int64(i)
				var bucket int32 = -1
				if msg.Buckets != nil {
					bucket = msg.Buckets[i]
				}
				c.queue = append(c.queue, queueEntry{
					producer: msg.ProducerIdx,
					seq:      seq,
					bucket:   bucket,
					tuple:    t,
				})
				st.outstanding[seq] = true
			}
			if msg.Checkpoint > 0 {
				st.pending = append(st.pending, msg.Checkpoint)
				sort.Slice(st.pending, func(i, j int) bool { return st.pending[i] < st.pending[j] })
				// A checkpoint-only message may close an interval whose
				// tuples were all processed already.
				acks = c.ackableLocked()
			}
			c.gate.cond.Broadcast()
		})
		// Acks triggered by delivery are sent asynchronously: the in-proc
		// transport runs Deliver on the producer's own goroutine, which may
		// hold the producer lock the ack handler needs.
		for _, a := range acks {
			go c.sendAck(a)
		}
		return nil
	default:
		return fmt.Errorf("engine: consumer cannot handle %v message", msg.Kind)
	}
}

// Discard implements the consumer half of retrospective redistribution
// (R1): it removes still-unprocessed queued tuples — all of them, or only
// those in the given buckets — and reports their sequence numbers per
// producer so the producers can re-route exactly those tuples from their
// recovery logs. It must run inside the fragment's quiesce window.
func (c *Consumer) discardLocked(buckets []int32) map[int][]int64 {
	var filter map[int32]bool
	if buckets != nil {
		filter = make(map[int32]bool, len(buckets))
		for _, b := range buckets {
			filter[b] = true
		}
	}
	report := make(map[int][]int64)
	kept := c.queue[:0]
	for _, e := range c.queue {
		// Tuples from a detached (dead) producer are never discarded: its
		// recovery log is gone, so no resend could ever restore them.
		if (filter == nil || filter[e.bucket]) && !c.streams[e.producer].detached {
			st := c.streams[e.producer]
			delete(st.outstanding, e.seq)
			st.discarded[e.seq] = true
			report[e.producer] = append(report[e.producer], e.seq)
		} else {
			kept = append(kept, e)
		}
	}
	c.queue = kept
	return report
}

// DetachProducer closes a stream whose producer instance died without
// sending EOS: termination no longer waits on it, and no acks are
// addressed to it. Queued tuples from the dead producer are kept — they
// derive from inputs the dead instance had acknowledged upstream, so
// dropping them would lose rows; replayed substitutes never exist for them
// because acknowledged entries have left the upstream recovery logs.
func (c *Consumer) DetachProducer(producer int) error {
	var err error
	c.gate.locked(func() {
		if producer < 0 || producer >= len(c.streams) {
			err = fmt.Errorf("engine: detach of unknown producer %d on exchange %s", producer, c.Exchange)
			return
		}
		st := c.streams[producer]
		st.detached = true
		if !st.eosSeen {
			st.eosSeen = true
			c.eos++
		}
		c.gate.cond.Broadcast()
	})
	return err
}

// AddProducer extends the exchange with a newly joined upstream instance
// (live join): termination now additionally waits for its EOS, and its
// stream starts with fresh checkpoint state.
func (c *Consumer) AddProducer(addr Addr) {
	c.gate.locked(func() {
		c.Producers = append(c.Producers, addr)
		c.streams = append(c.streams, &streamState{
			outstanding: make(map[int64]bool),
			discarded:   make(map[int64]bool),
		})
	})
}

// Stats reports consumption counters for monitoring (M1 wait/selectivity).
func (c *Consumer) Stats() (consumed int64, waitMs float64, queued int) {
	c.gate.mu.Lock()
	defer c.gate.mu.Unlock()
	return c.consumed, c.waitMs, len(c.queue)
}
