package engine

import (
	"math"
	"testing"

	"repro/internal/logical"
	"repro/internal/relation"
	"repro/internal/scalar"
)

// drainBatch runs an iterator to completion through the vectorized path.
func drainBatch(t *testing.T, it Iterator, ctx *ExecContext, limit int) []relation.Tuple {
	t.Helper()
	if err := it.Open(ctx); err != nil {
		t.Fatalf("Open: %v", err)
	}
	batch := relation.GetBatch()
	defer batch.Release()
	if limit > 0 {
		batch.SetLimit(limit)
	}
	var out []relation.Tuple
	for {
		n, err := FillBatch(it, batch)
		if err != nil {
			t.Fatalf("FillBatch: %v", err)
		}
		if n == 0 {
			break
		}
		out = append(out, batch.Tuples...)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

// sameTuples compares two result sets element by element.
func sameTuples(t *testing.T, got, want []relation.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch path produced %d tuples, volcano produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("tuple %d: batch %v != volcano %v", i, got[i], want[i])
		}
	}
}

// scanSelectProject builds the same scan→filter→project plan twice.
func scanSelectProject(t *testing.T) (Iterator, Iterator) {
	t.Helper()
	mk := func() Iterator {
		pred, err := scalar.Compare(
			scalar.Col(0, relation.TString, "ORF"), scalar.Ne,
			scalar.Const(relation.String("YAL00007C")))
		if err != nil {
			t.Fatal(err)
		}
		return &Project{
			Child: &Select{Child: &TableScan{Table: "protein_sequences"}, Pred: pred},
			Ords:  []int{0},
		}
	}
	return mk(), mk()
}

func TestBatchEquivalenceScanSelectProject(t *testing.T) {
	volcano, batched := scanSelectProject(t)
	want := drain(t, volcano, testCtx())
	got := drainBatch(t, batched, testCtx(), 0)
	sameTuples(t, got, want)
}

func TestBatchEquivalenceSmallBatches(t *testing.T) {
	// A tiny batch limit exercises the operators' partial-batch and
	// carry-over paths (Select draining across input batches, overflow).
	volcano, batched := scanSelectProject(t)
	want := drain(t, volcano, testCtx())
	got := drainBatch(t, batched, testCtx(), 3)
	sameTuples(t, got, want)
}

func TestBatchEquivalenceJoin(t *testing.T) {
	mk := func() Iterator {
		return &HashJoin{
			Build:     &TableScan{Table: "protein_sequences"},
			Probe:     &TableScan{Table: "protein_interactions"},
			BuildKeys: []int{0},
			ProbeKeys: []int{0},
		}
	}
	want := drain(t, mk(), testCtx())
	got := drainBatch(t, mk(), testCtx(), 0)
	sameTuples(t, got, want)
	if len(got) == 0 {
		t.Fatal("join produced nothing")
	}
	// Batch size 1 forces the join's pending-overflow path on every multi-
	// match probe tuple.
	tiny := drainBatch(t, mk(), testCtx(), 1)
	sameTuples(t, tiny, want)
}

func TestBatchEquivalenceAggregate(t *testing.T) {
	mk := func() Iterator {
		return &HashAggregate{
			Child:     &TableScan{Table: "protein_interactions"},
			GroupOrds: []int{0},
			Kinds:     []logical.AggKind{logical.AggCount},
			ArgOrds:   []int{-1},
		}
	}
	want := drain(t, mk(), testCtx())
	got := drainBatch(t, mk(), testCtx(), 0)
	sameTuples(t, got, want)
}

func TestBatchEquivalenceOperationCall(t *testing.T) {
	mk := func() Iterator {
		return &OperationCall{
			Fn:      "EntropyAnalyser",
			ArgOrds: []int{1},
			Child:   &TableScan{Table: "protein_sequences"},
		}
	}
	want := drain(t, mk(), testCtx())
	got := drainBatch(t, mk(), testCtx(), 0)
	sameTuples(t, got, want)
}

// TestFillBatchAdapter covers the tuple-at-a-time fallback: Sort has no
// NextBatch, so FillBatch must loop its Next under the hood.
func TestFillBatchAdapter(t *testing.T) {
	mk := func() Iterator {
		return &Sort{
			Child: &TableScan{Table: "protein_sequences"},
			Ords:  []int{0},
			Desc:  []bool{true},
		}
	}
	want := drain(t, mk(), testCtx())
	got := drainBatch(t, mk(), testCtx(), 7)
	sameTuples(t, got, want)
}

// TestBatchCostParity verifies batching does not change charged work: the
// vectorized path must bill exactly the same modelled milliseconds as the
// volcano path for an identical plan on unperturbed nodes.
func TestBatchCostParity(t *testing.T) {
	volcano, batched := scanSelectProject(t)
	vctx := testCtx()
	drain(t, volcano, vctx)
	vctx.Meter.Flush()
	bctx := testCtx()
	drainBatch(t, batched, bctx, 0)
	bctx.Meter.Flush()
	v, b := vctx.Meter.ChargedMs(), bctx.Meter.ChargedMs()
	// Identical per-tuple charges, summed in a different order: only
	// float-rounding noise may differ.
	if diff := math.Abs(v - b); diff > 1e-9 {
		t.Fatalf("charged cost diverged: volcano %v ms, batch %v ms", v, b)
	}
}

// countingSink records M1 emissions.
type countingSink struct{ m1 []M1Event }

func (s *countingSink) EmitM1(e M1Event) { s.m1 = append(s.m1, e) }
func (s *countingSink) EmitM2(M2Event)   {}

func TestBatchLimitClampsToMonitorWindow(t *testing.T) {
	ctx := testCtx()
	if got := batchLimit(ctx, 256); got != 256 {
		t.Fatalf("unmonitored batchLimit = %d, want 256", got)
	}
	ctx.Monitor = &countingSink{}
	ctx.MonitorEvery = 10
	if got := batchLimit(ctx, 256); got != 10 {
		t.Fatalf("monitored batchLimit = %d, want 10", got)
	}
	if got := batchLimit(ctx, 4); got != 4 {
		t.Fatalf("small-default batchLimit = %d, want 4", got)
	}
}
