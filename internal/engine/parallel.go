package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// This file implements the fragment runtime's morsel-driven execution mode:
// the fragment's operator chain is replicated once per worker, the chains
// share their leaves (a scan handing out batch-sized morsels under a mutex,
// or the fragment's exchange Consumer handing each worker its own in-flight
// window), stateful operators share their partitioned state behind a build
// barrier, and every worker pushes its results into the sharded output
// exchange independently. The serial driver remains the default
// (Parallelism <= 1) and the only mode for fragments whose sink is
// order-sensitive (result sinks, sorts, limits).

// sharedSource hands morsels from one underlying input to all workerLeaf
// clones. Exactly one of src/cons is set: a scan-backed source serializes
// FillBatch calls under its mutex, a consumer-backed source just fans out
// per-worker handles (the Consumer is internally synchronized and keeps
// per-worker in-flight accounting). A scan over a block-capable stored
// table upgrades further: open() lifts the scan's BlockReader into blocks,
// and workers then claim whole blocks off the nextBlock counter and decode
// them privately, without ever taking mu (see workerLeaf.nextBlockBatch).
type sharedSource struct {
	ctx  *ExecContext // dedicated context; its meter takes scan charges
	src  Iterator
	cons *Consumer

	// blocks is set when src is a TableScan over a block-capable stored
	// table: workers bypass src entirely and share the reader, whose
	// ReadBlock is safe for concurrent use. nextBlock is the morsel
	// dispenser — each worker's block-range morsel is whatever indices it
	// wins from the counter, so disjoint ranges are scanned concurrently.
	blocks    storage.BlockReader
	nextBlock atomic.Int64

	mu      sync.Mutex
	opened  bool
	openErr error
	eos     bool

	// refs counts workerLeaf handles; the last leaf to close closes the
	// underlying input. Closing on the first leaf instead would race: a
	// worker that fails (or finishes) early tears the source down while a
	// sibling is still mid-read in NextBatch.
	refs      atomic.Int32
	closeOnce sync.Once
	closeErr  error
}

func newScanSource(src Iterator, ctx *ExecContext) *sharedSource {
	return &sharedSource{src: src, ctx: ctx}
}

func newConsumerSource(cons *Consumer, ctx *ExecContext) *sharedSource {
	return &sharedSource{cons: cons, ctx: ctx}
}

// open opens the underlying input once, under the source's own context, so
// its charges never race a worker's meter.
func (ss *sharedSource) open() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ss.opened {
		ss.opened = true
		if ss.cons != nil {
			ss.openErr = ss.cons.Open(ss.ctx)
		} else {
			ss.openErr = ss.src.Open(ss.ctx)
			if ss.openErr == nil {
				if ts, ok := ss.src.(*TableScan); ok && ts.blocks != nil {
					// Block-capable stored scan: workers claim blocks
					// directly. The scan's own readahead never starts (it
					// is lazy), so the reader is the only shared state.
					ss.blocks = ts.blocks.reader()
				}
			}
		}
	}
	return ss.openErr
}

// release drops one leaf's reference; the last one closes the underlying
// input. closeOnce still guards the underlying Close so a leaf closed twice
// cannot re-close it.
func (ss *sharedSource) release() error {
	if ss.refs.Add(-1) > 0 {
		return nil
	}
	return ss.close()
}

func (ss *sharedSource) close() error {
	ss.closeOnce.Do(func() {
		if ss.cons != nil {
			ss.closeErr = ss.cons.Close()
		} else {
			ss.closeErr = ss.src.Close()
		}
	})
	return ss.closeErr
}

// workerLeaf is one worker's view of a sharedSource, placed at the leaf of
// the worker's operator chain.
type workerLeaf struct {
	ss     *sharedSource
	cw     *ConsumerWorker
	wctx   *ExecContext
	meter  *vtime.Meter
	closed bool

	// Block-morsel decode state (ss.blocks mode): each worker decodes its
	// claimed blocks on its own arena, reserving the block being decoded
	// against its own budget stripe for exactly that long.
	brest  []byte
	bbase  string // block payload's string aliasing (see blockScan.base)
	bleft  uint64
	bsize  int64 // reservation held for the block being decoded
	bsizes []int // encoded sizes of the last batch's tuples (see blockScan.fill)
	barena relation.Arena
	bcosts []float64
	bmet   scanMetrics

	// nb/npos adapt NextBatch to the tuple-at-a-time Iterator contract for
	// operators that drive their input through Next.
	nb   *relation.Batch
	npos int
}

// newWorkerLeaf hands out one worker's reference on a shared source.
func newWorkerLeaf(ss *sharedSource) *workerLeaf {
	ss.refs.Add(1)
	return &workerLeaf{ss: ss}
}

// Open implements Iterator.
func (l *workerLeaf) Open(ctx *ExecContext) error {
	l.wctx = ctx
	l.meter = ctx.Meter
	if err := l.ss.open(); err != nil {
		return err
	}
	if l.ss.cons != nil && l.cw == nil {
		l.cw = l.ss.cons.NewWorker()
	}
	if l.ss.blocks != nil {
		l.bmet = newScanMetrics()
	}
	return nil
}

// NextBatch implements BatchIterator: it fetches this worker's next morsel.
// In consumer mode the worker's previous morsel is finished first, with no
// locks held — finishing releases the flow gate and may transmit checkpoint
// acks, which can park on a paused producer's barrier, so it must never run
// inside the consumer's own lock.
func (l *workerLeaf) NextBatch(dst *relation.Batch) (int, error) {
	if l.cw != nil {
		l.cw.Finish()
		return l.ss.cons.NextBatchFor(l.cw, dst, l.meter)
	}
	if l.ss.blocks != nil {
		return l.nextBlockBatch(dst)
	}
	ss := l.ss
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.eos {
		dst.Rewind()
		return 0, nil
	}
	n, err := FillBatch(ss.src, dst)
	if err == nil && n == 0 {
		ss.eos = true
	}
	return n, err
}

// nextBlockBatch fills dst from the worker's block-morsel stream: finish
// the current block, claim the next index off the shared counter, reserve
// it, read it through the shared reader, and decode lock-free on the
// worker's own arena. Scan costs are charged to the worker's meter, so the
// fragment's monitored cost totals match the serial driver's.
func (l *workerLeaf) nextBlockBatch(dst *relation.Batch) (int, error) {
	dst.Rewind()
	l.bsizes = l.bsizes[:0]
	needSizes := l.wctx.Costs.ScanByteMs != 0
	ss := l.ss
	for !dst.Full() {
		if l.bleft == 0 {
			if l.bsize > 0 {
				l.wctx.memAcct().Release(l.bsize)
				l.bsize = 0
			}
			i := int(ss.nextBlock.Add(1) - 1)
			if i >= ss.blocks.Blocks() {
				break
			}
			size := int64(ss.blocks.BlockSize(i))
			l.wctx.memAcct().Reserve(size)
			l.bsize = size
			// Fresh buffer per block: decoded strings alias it via
			// blockString, so it must never be written again.
			data, err := ss.blocks.ReadBlock(i, nil)
			l.bmet.blocksRead.Inc()
			if err != nil {
				l.wctx.memAcct().Release(l.bsize)
				l.bsize = 0
				return dst.Len(), err
			}
			n, rest, err := relation.TupleCount(data)
			if err != nil {
				l.wctx.memAcct().Release(l.bsize)
				l.bsize = 0
				return dst.Len(), qerr.Storage("scan block", err)
			}
			l.bleft, l.brest = n, rest
			l.bbase = blockString(rest)
			continue
		}
		var sizes []int
		if needSizes {
			if l.bsizes == nil {
				l.bsizes = make([]int, 0, dst.Cap())
			}
			sizes = l.bsizes
		}
		var err error
		l.brest, l.bleft, sizes, err = relation.DecodeTuplesShared(&l.barena, l.bbase, l.brest, l.bleft, dst, sizes)
		if err != nil {
			return dst.Len(), qerr.Storage("scan tuple", err)
		}
		if needSizes {
			l.bsizes = sizes
		}
	}
	chargeScanBatch(l.wctx, dst.Tuples, l.bsizes, &l.bcosts)
	return dst.Len(), nil
}

// Next implements Iterator through an internal batch.
func (l *workerLeaf) Next() (relation.Tuple, bool, error) {
	if l.nb == nil {
		l.nb = relation.GetBatch()
	}
	for l.npos >= l.nb.Len() {
		n, err := l.NextBatch(l.nb)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		l.npos = 0
	}
	t := l.nb.Tuples[l.npos]
	l.npos++
	return t, true, nil
}

// Close implements Iterator: it finishes the worker's outstanding morsel and
// drops this worker's reference; the last sibling to close closes the
// underlying input.
func (l *workerLeaf) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.cw != nil {
		l.cw.Finish()
	}
	if l.bsize > 0 {
		l.wctx.memAcct().Release(l.bsize)
		l.bsize = 0
	}
	if l.nb != nil {
		l.nb.Release()
		l.nb = nil
	}
	return l.ss.release()
}

// parallelOK reports whether the fragment may run under the worker pool:
// its output must be an exchange (producers are order-insensitive across
// workers; a result sink is not) and its chain must not contain an
// order-sensitive operator.
func (r *FragmentRuntime) parallelOK() bool {
	return r.producer != nil && specParallelOK(r.cfg.Fragment.Root)
}

func specParallelOK(s *physical.OpSpec) bool {
	switch s.Kind {
	case physical.KSort, physical.KLimit:
		return false
	}
	for _, c := range s.Children {
		if !specParallelOK(c) {
			return false
		}
	}
	return true
}

// buildWorkerChain mirrors compile() for one worker: stateless operators are
// fresh per worker, stateful operators are clones sharing the compiled
// instance's state, and leaves attach to the shared sources in leaves.
func (r *FragmentRuntime) buildWorkerChain(spec *physical.OpSpec, leaves map[*physical.OpSpec]*sharedSource) (Iterator, error) {
	switch spec.Kind {
	case physical.KScan:
		return newWorkerLeaf(leaves[spec]), nil

	case physical.KFilter:
		child, err := r.buildWorkerChain(spec.Children[0], leaves)
		if err != nil {
			return nil, err
		}
		pred, err := logical.CompilePredicate(spec.Pred, spec.Children[0].OutSchema())
		if err != nil {
			return nil, err
		}
		return &Select{Child: child, Pred: pred}, nil

	case physical.KProject:
		child, err := r.buildWorkerChain(spec.Children[0], leaves)
		if err != nil {
			return nil, err
		}
		return &Project{Child: child, Ords: spec.Ords}, nil

	case physical.KOpCall:
		child, err := r.buildWorkerChain(spec.Children[0], leaves)
		if err != nil {
			return nil, err
		}
		return &OperationCall{Fn: spec.Fn, ArgOrds: spec.ArgOrds, Child: child}, nil

	case physical.KJoin:
		build, err := r.buildWorkerChain(spec.Children[0], leaves)
		if err != nil {
			return nil, err
		}
		probe, err := r.buildWorkerChain(spec.Children[1], leaves)
		if err != nil {
			return nil, err
		}
		base := r.joinBySpec[spec]
		if base == nil {
			return nil, fmt.Errorf("engine: no compiled join for spec")
		}
		return base.WorkerClone(build, probe), nil

	case physical.KAggregate:
		child, err := r.buildWorkerChain(spec.Children[0], leaves)
		if err != nil {
			return nil, err
		}
		base := r.aggBySpec[spec]
		if base == nil {
			return nil, fmt.Errorf("engine: no compiled aggregate for spec")
		}
		return base.WorkerClone(child), nil

	case physical.KConsume:
		return newWorkerLeaf(leaves[spec]), nil

	default:
		return nil, fmt.Errorf("engine: operator kind %v not parallel-eligible", spec.Kind)
	}
}

// collectLeaves creates one sharedSource per leaf spec, each with its own
// worker-style context.
func (r *FragmentRuntime) collectLeaves(spec *physical.OpSpec, ectx *ExecContext, leaves map[*physical.OpSpec]*sharedSource) error {
	switch spec.Kind {
	case physical.KScan:
		leaves[spec] = newScanSource(&TableScan{Table: spec.Table}, ectx.workerContext())
	case physical.KConsume:
		c := r.consumers[spec.Exchange]
		if c == nil {
			return fmt.Errorf("engine: no consumer for exchange %s", spec.Exchange)
		}
		leaves[spec] = newConsumerSource(c, ectx.workerContext())
	}
	for _, child := range spec.Children {
		if err := r.collectLeaves(child, ectx, leaves); err != nil {
			return err
		}
	}
	return nil
}

// parMonitor merges the workers' per-meter cost windows into the fragment's
// M1 event stream: same event contents as the serial driver (cost and wait
// per tuple over the window, cumulative selectivity and produced count),
// with windows closing on the first batch that crosses the MonitorEvery
// boundary. Emission happens under the lock so Produced stays monotonic.
type parMonitor struct {
	r    *FragmentRuntime
	ectx *ExecContext

	mu       sync.Mutex
	meters   []*vtime.Meter
	offsets  []float64
	count    int64
	lastN    int64
	lastCost float64
	lastWait float64
}

func newParMonitor(r *FragmentRuntime, ectx *ExecContext) *parMonitor {
	return &parMonitor{r: r, ectx: ectx, lastWait: r.waitMs()}
}

// track registers a meter whose charges from this point on belong to the
// fragment's processing cost. Workers register after opening their chain, so
// startup and build-phase charges stay outside the windows — exactly where
// the serial driver's baseline puts them.
func (pm *parMonitor) track(m *vtime.Meter) {
	pm.mu.Lock()
	pm.meters = append(pm.meters, m)
	pm.offsets = append(pm.offsets, m.ChargedMs())
	pm.mu.Unlock()
}

func (pm *parMonitor) chargedLocked() float64 {
	total := 0.0
	for i, m := range pm.meters {
		total += m.ChargedMs() - pm.offsets[i]
	}
	return total
}

// produced records n emitted tuples and closes the M1 window if it filled.
func (pm *parMonitor) produced(n int) {
	ectx := pm.ectx
	if ectx.Monitor == nil || ectx.MonitorEvery <= 0 {
		return
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	pm.count += int64(n)
	interval := pm.count - pm.lastN
	if interval < int64(ectx.MonitorEvery) {
		return
	}
	charged := pm.chargedLocked()
	wait := pm.r.waitMs()
	consumed := pm.r.consumedTuples()
	sel := 1.0
	if consumed > 0 {
		sel = float64(pm.count) / float64(consumed)
	}
	ectx.Monitor.EmitM1(M1Event{
		Fragment:       ectx.Fragment,
		Instance:       ectx.Instance,
		Node:           pm.r.cfg.Node,
		CostPerTupleMs: (charged - pm.lastCost) / float64(interval),
		WaitPerTupleMs: (wait - pm.lastWait) / float64(interval),
		Selectivity:    sel,
		Produced:       pm.count,
	})
	pm.lastN, pm.lastCost, pm.lastWait = pm.count, charged, wait
}

// abortBarriers releases workers blocked on a stateful operator's build
// barrier when a sibling failed before arriving there.
func (r *FragmentRuntime) abortBarriers() {
	for _, j := range r.joinBySpec {
		j.Abort()
	}
	for _, a := range r.aggBySpec {
		a.Abort()
	}
}

// runParallel is the morsel-driven counterpart of the serial Run body: it
// builds one operator chain per worker over shared leaves and shared
// operator state, runs them concurrently, and lets each worker push its
// batches into the sharded producer independently. Startup costs have
// already been charged by Run.
func (r *FragmentRuntime) runParallel(ctx context.Context, workers int) error {
	ectx := r.cfg.Ctx
	leaves := make(map[*physical.OpSpec]*sharedSource)
	if err := r.collectLeaves(r.cfg.Fragment.Root, ectx, leaves); err != nil {
		return r.fail(err)
	}
	chains := make([]Iterator, workers)
	wctxs := make([]*ExecContext, workers)
	for w := range chains {
		chain, err := r.buildWorkerChain(r.cfg.Fragment.Root, leaves)
		if err != nil {
			// Chains already built hold clone references on shared operator
			// state; close them so the last reference frees the state.
			for _, c := range chains[:w] {
				_ = c.Close()
			}
			return r.fail(err)
		}
		chains[w] = chain
		wctxs[w] = ectx.workerContext()
		// Each worker accounts memory through its own budget stripe, so
		// per-tuple reservations at full width never contend on one counter.
		wctxs[w].MemAcct = ectx.Mem.Acct(w)
	}
	for _, j := range r.joinBySpec {
		j.SetWorkers(workers)
	}
	for _, a := range r.aggBySpec {
		a.SetWorkers(workers)
	}

	o := obs.Default()
	gauge := o.Gauge(obs.MEngineParallelWorkers)
	morselMs := o.Histogram(obs.MEngineMorselMs, obs.DefBucketsLatencyMs)
	gauge.Add(int64(workers))
	defer gauge.Add(int64(-workers))

	if ctx.Done() != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-ctx.Done():
				r.interrupt(qerr.FromContext(ctx))
				r.abortBarriers()
			case <-done:
			}
		}()
	}

	pm := newParMonitor(r, ectx)
	for _, ss := range leaves {
		if ss.src != nil {
			pm.track(ss.ctx.Meter)
		}
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	failWorker := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			r.fail(err)
			// Unblock siblings parked in consumer waits, producer barriers,
			// or a build barrier the failed worker never reached.
			r.interrupt(err)
			r.abortBarriers()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(chain Iterator, wctx *ExecContext) {
			defer wg.Done()
			if err := r.workerLoop(ctx, chain, wctx, pm, morselMs); err != nil {
				failWorker(err)
			}
		}(chains[w], wctxs[w])
	}
	wg.Wait()

	if ctx.Err() != nil {
		return r.fail(qerr.FromContext(ctx))
	}
	if firstErr != nil {
		return firstErr
	}
	if err := r.producer.Close(); err != nil {
		return r.fail(err)
	}
	ectx.Meter.Flush()
	return nil
}

// workerLoop drives one worker's chain: open, pull morsels, send each to the
// output exchange charging this worker's meter, close.
func (r *FragmentRuntime) workerLoop(ctx context.Context, chain Iterator, wctx *ExecContext, pm *parMonitor, morselMs *obs.Histogram) error {
	if err := chain.Open(wctx); err != nil {
		_ = chain.Close()
		return err
	}
	pm.track(wctx.Meter)
	batch := relation.GetBatch()
	batch.SetLimit(batchLimit(wctx, relation.DefaultBatchSize))
	defer batch.Release()
	defer func() { _ = chain.Close() }()
	for {
		if ctx.Err() != nil {
			return nil // the driver reports the cancellation once
		}
		start := wctx.Clock.NowMs()
		n, err := FillBatch(chain, batch)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if err := r.producer.SendBatchMeter(batch.Tuples, wctx.Meter); err != nil {
			return err
		}
		morselMs.Observe(wctx.Clock.NowMs() - start)
		r.mu.Lock()
		r.produced += int64(n)
		r.mu.Unlock()
		r.obsProduced.Add(int64(n))
		r.obsBatchSize.Observe(float64(n))
		pm.produced(n)
	}
}
