package engine

import (
	"sort"
	"testing"

	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/storage"
)

// budgetedCtx is testCtx plus a memory budget and a spill backend.
func budgetedCtx(limit int64) *ExecContext {
	ctx := testCtx()
	ctx.Mem = storage.NewBudget(limit)
	ctx.Spill = storage.NewMemory()
	return ctx
}

// encodings canonicalises a result set for multiset comparison: spilled joins
// emit deferred matches after streaming ones, so output ORDER may differ from
// the in-memory join while the multiset must not.
func encodings(ts []relation.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = string(relation.EncodeTuple(t))
	}
	sort.Strings(out)
	return out
}

func sameMultiset(t *testing.T, got, want []relation.Tuple) {
	t.Helper()
	ge, we := encodings(got), encodings(want)
	if len(ge) != len(we) {
		t.Fatalf("result size %d, want %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("result multiset diverged at %d:\n%x\n%x", i, ge[i], we[i])
		}
	}
}

// assertClean verifies the budget and backend leak nothing after Close.
func assertClean(t *testing.T, ctx *ExecContext) {
	t.Helper()
	if n := ctx.Mem.Inflight(); n != 0 {
		t.Fatalf("budget leaks %d inflight bytes after Close", n)
	}
	runs, err := ctx.Spill.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("backend leaks runs after Close: %v", runs)
	}
}

func spillCounters() (bytes, parts, restarts int64) {
	o := obs.Default()
	return o.Counter(obs.MSpillBytes).Value(),
		o.Counter(obs.MSpillPartitions).Value(),
		o.Counter(obs.MSpillRestarts).Value()
}

func TestHashJoinSpillParity(t *testing.T) {
	build := buildTuples(200)
	probe := probeTuples(600, 200)
	want := drain(t, newJoin(build, probe), testCtx())

	b0, p0, _ := spillCounters()
	ctx := budgetedCtx(2048) // far below the ~200-entry build side
	got := drain(t, newJoin(build, probe), ctx)
	b1, p1, _ := spillCounters()

	sameMultiset(t, got, want)
	if p1 == p0 || b1 == b0 {
		t.Fatal("budget was never breached: test exercised nothing")
	}
	assertClean(t, ctx)
}

func TestHashJoinSpillRecursiveRepartition(t *testing.T) {
	build := buildTuples(120)
	probe := probeTuples(360, 120)
	want := drain(t, newJoin(build, probe), testCtx())

	_, _, r0 := spillCounters()
	// A 1-byte budget breaches on every reserve: the drain's reloads breach
	// too and re-partition recursively down to maxSpillDepth.
	ctx := budgetedCtx(1)
	got := drain(t, newJoin(build, probe), ctx)
	_, _, r1 := spillCounters()

	sameMultiset(t, got, want)
	if r1 == r0 {
		t.Fatal("no recursive re-partition happened under a 1-byte budget")
	}
	assertClean(t, ctx)
}

func TestHashJoinSpillDuplicateKeys(t *testing.T) {
	// Duplicate build keys cannot be split by their own hash: the depth cap
	// must end the recursion and process the pair in memory.
	var build []relation.Tuple
	for i := 0; i < 5; i++ {
		build = append(build, buildTuples(8)...)
	}
	probe := probeTuples(40, 8)
	want := drain(t, newJoin(build, probe), testCtx())

	ctx := budgetedCtx(1)
	got := drain(t, newJoin(build, probe), ctx)
	sameMultiset(t, got, want)
	if len(got) != 5*40 {
		t.Fatalf("join produced %d tuples, want %d", len(got), 5*40)
	}
	assertClean(t, ctx)
}

func TestHashAggregateSpillParity(t *testing.T) {
	input := aggInput(500, 30)
	groupOrds := []int{0}
	kinds := []logical.AggKind{logical.AggCount, logical.AggSum, logical.AggMin, logical.AggMax}
	args := []int{-1, 1, 1, 1}
	want := drain(t, newAgg(input, groupOrds, kinds, args), testCtx())

	_, p0, _ := spillCounters()
	ctx := budgetedCtx(512) // a handful of groups per dump
	got := drain(t, newAgg(input, groupOrds, kinds, args), ctx)
	_, p1, _ := spillCounters()

	// Aggregate output is sorted by group key, so parity is positional.
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		if string(relation.EncodeTuple(got[i])) != string(relation.EncodeTuple(want[i])) {
			t.Fatalf("group %d diverged: %v vs %v", i, got[i].Format(), want[i].Format())
		}
	}
	if p1 == p0 {
		t.Fatal("aggregate never dumped under a 512-byte budget")
	}
	assertClean(t, ctx)
}

func TestSortSpillParity(t *testing.T) {
	// Duplicate keys with distinct payloads: the external merge must
	// reproduce sort.SliceStable byte for byte, not just a valid ordering.
	input := probeTuples(400, 25)
	sorter := func() *Sort {
		return &Sort{Child: NewSliceSource(input, 0), Ords: []int{0}, Desc: []bool{false}}
	}
	want := drain(t, sorter(), testCtx())

	_, p0, _ := spillCounters()
	ctx := budgetedCtx(1024) // forces several flushed runs plus a tail
	got := drain(t, sorter(), ctx)
	_, p1, _ := spillCounters()

	if len(got) != len(want) {
		t.Fatalf("sorted %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if string(relation.EncodeTuple(got[i])) != string(relation.EncodeTuple(want[i])) {
			t.Fatalf("external sort order diverged at %d: %v vs %v",
				i, got[i].Format(), want[i].Format())
		}
	}
	if p1 == p0 {
		t.Fatal("sort never flushed a run under a 1KiB budget")
	}
	assertClean(t, ctx)
}

func TestHashJoinSpillEvictReplay(t *testing.T) {
	// R1 under active spill: evict buckets while partitions are spilled,
	// replay the evicted build tuples from the "recovery log", and verify
	// every probe tuple still matches exactly once.
	build := buildTuples(40)
	ctx := budgetedCtx(64) // everything spills almost immediately
	j := newJoin(build, probeTuples(40, 40))
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_, p0, _ := spillCounters()
	_ = p0 // counters are process-wide; spill activity asserted structurally below
	spilled := false
	for i := range j.shared.parts {
		if j.shared.parts[i].spilled {
			spilled = true
		}
	}
	if !spilled {
		t.Fatal("no partition spilled under a 64-byte budget")
	}
	var evict []int32
	evictSet := make(map[int32]bool)
	for _, tp := range build[:10] {
		b, err := j.BucketOf(tp)
		if err != nil {
			t.Fatal(err)
		}
		if !evictSet[b] {
			evictSet[b] = true
			evict = append(evict, b)
		}
	}
	before := j.StateSize()
	j.EvictBuckets(evict)
	if j.StateSize() >= before {
		t.Fatal("eviction did not shrink state while spilled")
	}
	var replay []relation.Tuple
	for _, tp := range build {
		b, err := j.BucketOf(tp)
		if err != nil {
			t.Fatal(err)
		}
		if evictSet[b] {
			replay = append(replay, tp)
		}
	}
	j.InsertState(replay)
	var out []relation.Tuple
	for {
		tp, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, tp)
	}
	if len(out) != 40 {
		t.Fatalf("join after evict+replay under spill produced %d tuples, want 40", len(out))
	}
	// Exactly-once per probe: every probe index 0..39 appears once.
	seen := make(map[int64]bool)
	for _, tp := range out {
		idx := tp[3].AsInt()
		if seen[idx] {
			t.Fatalf("probe %d matched twice", idx)
		}
		seen[idx] = true
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	assertClean(t, ctx)
}

// runCloneWorkers drives n WorkerClone chains concurrently — one goroutine
// per clone with its own worker context and budget stripe, mirroring
// runParallel — and returns the union of their outputs.
func runCloneWorkers(t *testing.T, ctx *ExecContext, n int, clone func(w int) Iterator) []relation.Tuple {
	t.Helper()
	type res struct {
		out []relation.Tuple
		err error
	}
	ch := make(chan res, n)
	for w := 0; w < n; w++ {
		it := clone(w)
		wctx := ctx.workerContext()
		wctx.MemAcct = ctx.Mem.Acct(w)
		go func() {
			if err := it.Open(wctx); err != nil {
				ch <- res{err: err}
				return
			}
			var out []relation.Tuple
			for {
				tp, ok, err := it.Next()
				if err != nil {
					_ = it.Close()
					ch <- res{err: err}
					return
				}
				if !ok {
					break
				}
				out = append(out, tp)
			}
			ch <- res{out: out, err: it.Close()}
		}()
	}
	var all []relation.Tuple
	for i := 0; i < n; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		all = append(all, r.out...)
	}
	return all
}

func TestHashJoinParallelSpillParity(t *testing.T) {
	// Morsel-parallel joins spill under the same budget as serial ones: each
	// clone inserts and probes through its own stripe handle, eviction is
	// serialized under spillMu, and the spilled pairs drain cooperatively
	// from the shared queue after the probe barrier. The union of the
	// workers' outputs must equal the serial unbudgeted join's multiset.
	build := buildTuples(200)
	probe := probeTuples(600, 200)
	want := drain(t, newJoin(build, probe), testCtx())

	const workers = 4
	b0, p0, _ := spillCounters()
	ctx := budgetedCtx(2048) // far below the ~200-entry build side
	base := newJoin(nil, nil)
	base.SetWorkers(workers)
	got := runCloneWorkers(t, ctx, workers, func(w int) Iterator {
		return base.WorkerClone(
			NewSliceSource(build[w*50:(w+1)*50], 0),
			NewSliceSource(probe[w*150:(w+1)*150], 0))
	})
	b1, p1, _ := spillCounters()

	sameMultiset(t, got, want)
	if p1 == p0 || b1 == b0 {
		t.Fatal("parallel join never spilled under a 2KiB budget")
	}
	assertClean(t, ctx)
}

func TestHashAggregateParallelSpillParity(t *testing.T) {
	// Parallel aggregate under budget: clones absorb disjoint input shares,
	// account group creation through their stripe handles, and dump through
	// the shared run. Workers pull disjoint slices of the merged output, so
	// parity is over the union.
	input := aggInput(500, 30)
	groupOrds := []int{0}
	kinds := []logical.AggKind{logical.AggCount, logical.AggSum, logical.AggMin, logical.AggMax}
	args := []int{-1, 1, 1, 1}
	want := drain(t, newAgg(input, groupOrds, kinds, args), testCtx())

	const workers = 4
	_, p0, _ := spillCounters()
	ctx := budgetedCtx(512) // a handful of groups per dump
	base := &HashAggregate{GroupOrds: groupOrds, Kinds: kinds, ArgOrds: args}
	base.SetWorkers(workers)
	share := len(input) / workers
	got := runCloneWorkers(t, ctx, workers, func(w int) Iterator {
		lo, hi := w*share, (w+1)*share
		if w == workers-1 {
			hi = len(input)
		}
		return base.WorkerClone(NewSliceSource(input[lo:hi], 0))
	})
	_, p1, _ := spillCounters()

	sameMultiset(t, got, want)
	if p1 == p0 {
		t.Fatal("parallel aggregate never dumped under a 512-byte budget")
	}
	assertClean(t, ctx)
}
