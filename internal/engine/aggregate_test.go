package engine

import (
	"fmt"
	"testing"

	"repro/internal/logical"
	"repro/internal/relation"
)

// aggInput builds (k, v) tuples: key K{i%keys}, value i.
func aggInput(n, keys int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{
			relation.String(fmt.Sprintf("K%02d", i%keys)),
			relation.Int(int64(i)),
		}
	}
	return out
}

func newAgg(input []relation.Tuple, groupOrds []int, kinds []logical.AggKind, args []int) *HashAggregate {
	return &HashAggregate{
		Child:     NewSliceSource(input, 0),
		GroupOrds: groupOrds,
		Kinds:     kinds,
		ArgOrds:   args,
	}
}

func TestHashAggregateCountPerGroup(t *testing.T) {
	ctx := testCtx()
	agg := newAgg(aggInput(100, 4), []int{0},
		[]logical.AggKind{logical.AggCount}, []int{-1})
	out := drain(t, agg, ctx)
	if len(out) != 4 {
		t.Fatalf("groups = %d, want 4", len(out))
	}
	for _, row := range out {
		if row[1].AsInt() != 25 {
			t.Fatalf("count = %v, want 25 (row %v)", row[1], row.Format())
		}
	}
}

func TestHashAggregateAllKinds(t *testing.T) {
	ctx := testCtx()
	// Key K00 gets values 0,3,6,...,27 (10 values).
	agg := newAgg(aggInput(30, 3), []int{0},
		[]logical.AggKind{logical.AggCount, logical.AggSum, logical.AggAvg, logical.AggMin, logical.AggMax},
		[]int{-1, 1, 1, 1, 1})
	out := drain(t, agg, ctx)
	if len(out) != 3 {
		t.Fatalf("groups = %d", len(out))
	}
	// Output is sorted by group key; K00 first.
	row := out[0]
	if row[0].AsString() != "K00" {
		t.Fatalf("first group = %v", row[0])
	}
	if row[1].AsInt() != 10 {
		t.Errorf("count = %v", row[1])
	}
	if row[2].AsFloat() != 135 { // 0+3+...+27
		t.Errorf("sum = %v", row[2])
	}
	if row[3].AsFloat() != 13.5 {
		t.Errorf("avg = %v", row[3])
	}
	if row[4].AsInt() != 0 || row[5].AsInt() != 27 {
		t.Errorf("min/max = %v/%v", row[4], row[5])
	}
}

func TestHashAggregateGlobal(t *testing.T) {
	ctx := testCtx()
	agg := newAgg(aggInput(50, 5), nil,
		[]logical.AggKind{logical.AggCount, logical.AggSum}, []int{-1, 1})
	out := drain(t, agg, ctx)
	if len(out) != 1 {
		t.Fatalf("global aggregate rows = %d", len(out))
	}
	if out[0][0].AsInt() != 50 || out[0][1].AsFloat() != 1225 {
		t.Fatalf("row = %v", out[0].Format())
	}
}

func TestHashAggregateGlobalEmptyInput(t *testing.T) {
	ctx := testCtx()
	agg := newAgg(nil, nil,
		[]logical.AggKind{logical.AggCount, logical.AggSum, logical.AggMin}, []int{-1, 1, 1})
	out := drain(t, agg, ctx)
	if len(out) != 1 {
		t.Fatalf("rows = %d, want 1 (COUNT over empty input is 0)", len(out))
	}
	if out[0][0].AsInt() != 0 || !out[0][1].IsNull() || !out[0][2].IsNull() {
		t.Fatalf("row = %v", out[0].Format())
	}
}

func TestHashAggregateGroupedEmptyInput(t *testing.T) {
	ctx := testCtx()
	agg := newAgg(nil, []int{0}, []logical.AggKind{logical.AggCount}, []int{-1})
	out := drain(t, agg, ctx)
	if len(out) != 0 {
		t.Fatalf("grouped aggregate over empty input must emit nothing, got %d", len(out))
	}
}

func TestHashAggregateNullsSkipped(t *testing.T) {
	ctx := testCtx()
	input := []relation.Tuple{
		{relation.String("K"), relation.Int(5)},
		{relation.String("K"), relation.Null},
		{relation.String("K"), relation.Int(7)},
	}
	agg := newAgg(input, []int{0},
		[]logical.AggKind{logical.AggCount, logical.AggCount, logical.AggAvg},
		[]int{-1, 1, 1})
	out := drain(t, agg, ctx)
	row := out[0]
	if row[1].AsInt() != 3 { // COUNT(*) counts NULL rows
		t.Errorf("count(*) = %v", row[1])
	}
	if row[2].AsInt() != 2 { // COUNT(v) skips NULL
		t.Errorf("count(v) = %v", row[2])
	}
	if row[3].AsFloat() != 6 {
		t.Errorf("avg = %v", row[3])
	}
}

func TestHashAggregateEvictReplay(t *testing.T) {
	ctx := testCtx()
	input := aggInput(200, 8)
	agg := newAgg(input, []int{0}, []logical.AggKind{logical.AggCount, logical.AggSum}, []int{-1, 1})
	if err := agg.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Absorb half the input manually, evict some buckets, replay exactly the
	// evicted tuples (as the recovery log would), then absorb the rest.
	for _, tp := range input[:100] {
		agg.absorb(tp)
	}
	var evict []int32
	seen := map[int32]bool{}
	for _, tp := range input[:40] {
		b := int32(tp.Hash([]int{0}) % uint64(ctx.Buckets))
		if !seen[b] {
			seen[b] = true
			evict = append(evict, b)
		}
	}
	agg.EvictBuckets(evict)
	var replay []relation.Tuple
	for _, tp := range input[:100] {
		b := int32(tp.Hash([]int{0}) % uint64(ctx.Buckets))
		if seen[b] {
			replay = append(replay, tp)
		}
	}
	agg.InsertState(replay)
	for _, tp := range input[100:] {
		agg.absorb(tp)
	}
	agg.shared.mergeAndFreeze(agg)
	totalCount := int64(0)
	totalSum := 0.0
	for _, row := range agg.shared.out {
		totalCount += row[1].AsInt()
		totalSum += row[2].AsFloat()
	}
	if totalCount != 200 {
		t.Fatalf("total count after evict+replay = %d, want 200", totalCount)
	}
	if totalSum != 19900 { // 0+1+...+199
		t.Fatalf("total sum = %v, want 19900", totalSum)
	}
	if agg.StateSize() != 8 {
		t.Fatalf("groups = %d, want 8", agg.StateSize())
	}
}

func TestSortOperator(t *testing.T) {
	ctx := testCtx()
	input := []relation.Tuple{
		{relation.String("b"), relation.Int(2)},
		{relation.String("a"), relation.Int(3)},
		{relation.String("b"), relation.Int(1)},
		{relation.String("a"), relation.Int(1)},
	}
	s := &Sort{Child: NewSliceSource(input, 0), Ords: []int{0, 1}, Desc: []bool{false, true}}
	out := drain(t, s, ctx)
	want := []string{"(a, 3)", "(a, 1)", "(b, 2)", "(b, 1)"}
	for i, row := range out {
		if row.Format() != want[i] {
			t.Fatalf("row %d = %s, want %s", i, row.Format(), want[i])
		}
	}
}

func TestLimitOperator(t *testing.T) {
	ctx := testCtx()
	l := &Limit{Child: NewSliceSource(aggInput(100, 10), 0), N: 7}
	out := drain(t, l, ctx)
	if len(out) != 7 {
		t.Fatalf("rows = %d, want 7", len(out))
	}
	zero := &Limit{Child: NewSliceSource(aggInput(10, 2), 0), N: 0}
	if out := drain(t, zero, ctx); len(out) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(out))
	}
}

func TestAggKindsOfValidation(t *testing.T) {
	if _, err := aggKindsOf([]uint8{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := aggKindsOf([]uint8{0}); err == nil {
		t.Error("kind 0 accepted")
	}
	if _, err := aggKindsOf([]uint8{99}); err == nil {
		t.Error("kind 99 accepted")
	}
}
