package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// producerHarness wires a producer to an in-proc transport with a capture
// endpoint per consumer.
type producerHarness struct {
	tr   *transport.InProc
	ctx  *ExecContext
	prod *Producer

	mu       sync.Mutex
	received map[int][]*transport.Message // consumerIdx -> messages
}

func newProducerHarness(t *testing.T, consumers int, stateful bool, policy DistPolicy) *producerHarness {
	t.Helper()
	clock := vtime.NewClock(time.Microsecond)
	net := simnet.NewNetwork(clock)
	net.AddNode("src")
	h := &producerHarness{
		tr:       transport.NewInProc(net),
		received: make(map[int][]*transport.Message),
	}
	addrs := make([]Addr, consumers)
	for i := 0; i < consumers; i++ {
		i := i
		node := simnet.NodeID("sink")
		if net.Node(node) == nil {
			net.AddNode(node)
		}
		svc := "cons/" + string(rune('0'+i))
		h.tr.Register(node, svc, func(_ simnet.NodeID, m *transport.Message) {
			// The producer recycles data frames once Send returns, so the
			// harness snapshots the message instead of retaining it — the
			// same no-retention contract real consumers follow.
			cp := *m
			cp.Tuples = append([]relation.Tuple(nil), m.Tuples...)
			cp.Buckets = append([]int32(nil), m.Buckets...)
			h.mu.Lock()
			h.received[i] = append(h.received[i], &cp)
			h.mu.Unlock()
		})
		addrs[i] = Addr{Node: node, Service: svc}
	}
	h.ctx = &ExecContext{
		Clock: clock, Node: net.Node("src"), Meter: vtime.NewMeter(clock),
		Costs: DefaultCosts(), Buckets: 16,
	}
	h.prod = NewProducer(ProducerConfig{
		Exchange: "EX", Fragment: "F", Instance: 0,
		ConsumerFragment: "G", Consumers: addrs, Stateful: stateful,
		Est: 1000, Policy: policy, Transport: h.tr, Node: "src",
		BufferTuples: 4, CheckpointEvery: 8,
	})
	h.prod.Bind(h.ctx)
	return h
}

func (h *producerHarness) messages(consumer int) []*transport.Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*transport.Message(nil), h.received[consumer]...)
}

func intTuple(i int) relation.Tuple { return relation.Tuple{relation.Int(int64(i))} }

func TestProducerBuffersAndCheckpoints(t *testing.T) {
	pol, _ := NewWeightedPolicy([]float64{1})
	h := newProducerHarness(t, 1, false, pol)
	for i := 0; i < 10; i++ {
		if err := h.prod.Send(intTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.prod.Close(); err != nil {
		t.Fatal(err)
	}
	msgs := h.messages(0)
	// 10 tuples in buffers of 4: data(4), data(4 ckpt@8), data(2), then a
	// checkpoint-only finaliser and, once acked... EOS deferred (no acks in
	// this harness).
	var dataCount, tuples int
	var ckpts []int64
	for _, m := range msgs {
		if m.Kind == transport.KindData {
			dataCount++
			tuples += len(m.Tuples)
			if m.Checkpoint > 0 {
				ckpts = append(ckpts, m.Checkpoint)
			}
		}
	}
	if tuples != 10 {
		t.Fatalf("tuples delivered = %d", tuples)
	}
	if len(ckpts) != 2 || ckpts[0] != 8 || ckpts[1] != 10 {
		t.Fatalf("checkpoints = %v, want [8 10]", ckpts)
	}
	// EOS must NOT have been sent: the log has unacked entries.
	for _, m := range msgs {
		if m.Kind == transport.KindEOS {
			t.Fatal("EOS sent with a non-empty recovery log")
		}
	}
	// Ack everything; EOS follows.
	h.prod.HandleAck(&transport.Message{Kind: transport.KindAck, ConsumerIdx: 0, Checkpoint: 10})
	var sawEOS bool
	for _, m := range h.messages(0) {
		if m.Kind == transport.KindEOS {
			sawEOS = true
		}
	}
	if !sawEOS {
		t.Fatal("EOS not sent after the log drained")
	}
	if _, _, logSize := h.prod.Stats(); logSize != 0 {
		t.Fatalf("log size = %d after full ack", logSize)
	}
}

func TestProducerAckExclusionKeepsRecalledEntries(t *testing.T) {
	pol, _ := NewWeightedPolicy([]float64{1})
	h := newProducerHarness(t, 1, false, pol)
	for i := 0; i < 8; i++ {
		_ = h.prod.Send(intTuple(i))
	}
	_ = h.prod.Close()
	// Ack checkpoint 8 but except seqs 3 and 4 (recalled by a consumer).
	h.prod.HandleAck(&transport.Message{
		Kind: transport.KindAck, ConsumerIdx: 0, Checkpoint: 8, Except: []int64{3, 4},
	})
	if _, _, logSize := h.prod.Stats(); logSize != 2 {
		t.Fatalf("log size = %d, want 2 (excepted entries retained)", logSize)
	}
	// Resend migrates them; log drains; EOS fires.
	n, err := h.prod.Resend(0, []int64{3, 4})
	if err != nil || n != 2 {
		t.Fatalf("Resend = %d, %v", n, err)
	}
	// The re-routed tuples got fresh seqs 9,10 on the same stream; ack them.
	h.prod.HandleAck(&transport.Message{Kind: transport.KindAck, ConsumerIdx: 0, Checkpoint: 10})
	if _, _, logSize := h.prod.Stats(); logSize != 0 {
		t.Fatalf("log size = %d after migrating recalled entries", logSize)
	}
}

func TestProducerStatefulNeverAcks(t *testing.T) {
	pol, err := NewHashPolicy([]int{0}, 16, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h := newProducerHarness(t, 2, true, pol)
	for i := 0; i < 20; i++ {
		_ = h.prod.Send(intTuple(i))
	}
	if err := h.prod.Close(); err != nil {
		t.Fatal(err)
	}
	h.prod.HandleAck(&transport.Message{Kind: transport.KindAck, ConsumerIdx: 0, Checkpoint: 100})
	if _, _, logSize := h.prod.Stats(); logSize != 20 {
		t.Fatalf("stateful log = %d, want 20 (acks ignored)", logSize)
	}
	// Stateful EOS is immediate at Close (the consumer's build phase ends).
	eos := 0
	for c := 0; c < 2; c++ {
		for _, m := range h.messages(c) {
			if m.Kind == transport.KindEOS {
				eos++
			}
		}
	}
	if eos != 2 {
		t.Fatalf("EOS count = %d, want 2", eos)
	}
	h.prod.Release()
	if _, _, logSize := h.prod.Stats(); logSize != 0 {
		t.Fatal("Release did not drop the log")
	}
}

func TestProducerPauseBlocksSend(t *testing.T) {
	pol, _ := NewWeightedPolicy([]float64{1})
	h := newProducerHarness(t, 1, false, pol)
	if err := h.prod.Pause(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = h.prod.Send(intTuple(1))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Send completed while paused")
	case <-time.After(30 * time.Millisecond):
	}
	h.prod.Resume()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Send never resumed")
	}
}

func TestProducerReplayRoutesByNewMap(t *testing.T) {
	pol, err := NewHashPolicy([]int{0}, 16, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	h := newProducerHarness(t, 2, true, pol)
	for i := 0; i < 12; i++ {
		_ = h.prod.Send(intTuple(i))
	}
	_ = h.prod.Close()
	if got := len(h.messages(1)); got > 1 { // EOS only
		t.Fatalf("consumer 1 received %d messages under weights (1,0)", got)
	}
	// Move every bucket to consumer 1 and replay.
	newMap := make([]int32, 16)
	for i := range newMap {
		newMap[i] = 1
	}
	if err := h.prod.SetOwnerMap(newMap); err != nil {
		t.Fatal(err)
	}
	moved := make([]int32, 16)
	for i := range moved {
		moved[i] = int32(i)
	}
	n, err := h.prod.Replay(moved)
	if err != nil || n != 12 {
		t.Fatalf("Replay = %d, %v; want 12", n, err)
	}
	replayTuples := 0
	for _, m := range h.messages(1) {
		if m.Kind == transport.KindData && m.Replay {
			replayTuples += len(m.Tuples)
		}
	}
	if replayTuples != 12 {
		t.Fatalf("replayed tuples at new owner = %d, want 12", replayTuples)
	}
	// Log entries migrated to consumer 1's stream.
	if _, _, logSize := h.prod.Stats(); logSize != 12 {
		t.Fatalf("log = %d after replay (stateful retains)", logSize)
	}
}

func TestProducerResendUnknownSeq(t *testing.T) {
	pol, _ := NewWeightedPolicy([]float64{1})
	h := newProducerHarness(t, 1, false, pol)
	_ = h.prod.Send(intTuple(1))
	if _, err := h.prod.Resend(0, []int64{99}); err == nil {
		t.Fatal("resend of unknown seq accepted")
	}
}

func TestProducerProgressAndCounts(t *testing.T) {
	pol, _ := NewWeightedPolicy([]float64{0.5, 0.5})
	h := newProducerHarness(t, 2, false, pol)
	for i := 0; i < 6; i++ {
		_ = h.prod.Send(intTuple(i))
	}
	routed, est := h.prod.Progress()
	if routed != 6 || est != 1000 {
		t.Fatalf("Progress = %d/%d", routed, est)
	}
	counts := h.prod.ConsumerTupleCounts()
	if counts[0]+counts[1] != 6 || counts[0] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}
