package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/logical"
	"repro/internal/relation"
	"repro/internal/storage"
)

// HashAggregate groups its input by key columns and computes aggregates per
// group. Like the hash join, its state is organised in routing buckets and
// implements StateTarget, so the retrospective (R1) protocol can move whole
// buckets of groups to another clone: the moved groups' raw input tuples
// are replayed from the exchange recovery logs and re-absorbed at the new
// owner. The aggregate is the second stateful operator of the engine and
// demonstrates that the paper's architecture extends beyond hash joins.
//
// Under morsel parallelism each worker clone absorbs into a private partial
// table — aggregation is commutative, so no locks on the hot path — and the
// partials are merged into the shared table once all workers reach the
// absorb barrier. Replayed tuples (R1) always land in the shared table, and
// evictions sweep the partials too, so a bucket moved mid-absorb loses its
// partial contributions exactly as the replayed history recreates them.
type HashAggregate struct {
	Child     Iterator
	GroupOrds []int
	// Kinds and ArgOrds describe the aggregate columns (ArgOrd -1 for
	// COUNT(*)).
	Kinds   []logical.AggKind
	ArgOrds []int

	ctx     *ExecContext
	buckets int
	shared  *aggState
	// acct is this clone's budget stripe handle (stripe 0 for serial runs).
	acct *storage.BudgetAcct
	// part is this clone's private absorb table.
	part *aggPartial

	// emitting flips once this clone has drained and the merged output is
	// frozen; the emit cursor itself lives in the shared state.
	emitting bool

	// in is the owned input batch for the vectorized absorb phase.
	in *relation.Batch
}

// aggPartial is one worker's lock-private slice of group state. Its mutex is
// uncontended on the absorb path; only R1 evictions and the final merge
// touch it from outside.
type aggPartial struct {
	mu    sync.Mutex
	state map[int32]map[uint64][]*groupState
}

// aggState is shared by every worker clone of one HashAggregate. Its state
// map holds replayed tuples during the absorb phase and the fully merged
// groups afterwards; out/pos are the frozen emit output and shared cursor.
type aggState struct {
	initOnce sync.Once
	ready    atomic.Bool
	ctx      *ExecContext // first opener's context; shared fields only
	buckets  int

	insertMeter *opInsertMeter
	mon         *opMonitor
	barrier     buildBarrier
	mergeOnce   sync.Once
	refs        atomic.Int32

	mu       sync.Mutex
	state    map[int32]map[uint64][]*groupState
	partials []*aggPartial
	out      []relation.Tuple
	pos      int

	// Spill wiring (aggregates under a memory budget, serial or
	// morsel-parallel; see spillagg.go). On breach every group — shared and
	// partial — is dumped as a partial-aggregate record to one append-only
	// run and the tables restart empty; the final merge reloads and
	// re-merges the run. Workers account group creation through per-stripe
	// budget handles; the dump itself serializes under mu.
	spillOn bool
	mem     *storage.Budget
	acct0   *storage.BudgetAcct // stripe-0 handle for replay/merge paths
	backend storage.Backend
	base    string
	met     spillMetrics
	// bytes is the accounted in-memory group footprint. Atomic because
	// groups are created under either s.mu (replays, merge) or a partial's
	// mu (absorb), never both.
	bytes atomic.Int64

	// Guarded by mu: the dump run and its R1 bookkeeping.
	run       storage.RunWriter
	runName   string
	recCount  int64           // records appended to the run
	evictedAt map[int32]int64 // bucket → record watermark at eviction
	spillLive map[int32]int64 // live (unevicted) dumped records per bucket
	mergeErr  error           // reload failure, surfaced by drain
}

func newAggState() *aggState {
	s := &aggState{}
	s.refs.Store(1)
	s.barrier.reset(1)
	return s
}

func (s *aggState) init(ctx *ExecContext) {
	s.initOnce.Do(func() {
		s.ctx = ctx
		s.buckets = ctx.Buckets
		if s.buckets <= 0 {
			s.buckets = DefaultBuckets
		}
		s.state = make(map[int32]map[uint64][]*groupState)
		s.insertMeter = newOpInsertMeter(ctx)
		s.mon = newOpMonitor(ctx)
		if ctx.spillEnabled() {
			s.spillOn = true
			s.mem = ctx.Mem
			s.acct0 = ctx.Mem.Acct(0)
			s.backend = ctx.Spill
			s.base = ctx.spillRunName("agg")
			s.met = newSpillMetrics()
		} else {
			recordUngoverned(ctx, "agg")
		}
		s.ready.Store(true)
	})
}

func (s *aggState) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	s.mu.Lock()
	if s.run != nil {
		_ = s.run.Close()
		s.run = nil
	}
	if s.runName != "" {
		_ = s.backend.Remove(s.runName)
		s.runName = ""
	}
	s.mem.Release(s.bytes.Swap(0))
	s.state = nil
	s.out = nil
	s.mu.Unlock()
}

// groupState is one group's accumulators.
type groupState struct {
	key  relation.Tuple // group-key values, in GroupOrds order
	accs []accumulator
}

// accumulator folds one aggregate column.
type accumulator struct {
	count  int64
	sum    float64
	minmax relation.Value
	seen   bool
}

// merge folds another accumulator for the same group and kind into acc.
func (acc *accumulator) merge(other accumulator, kind logical.AggKind) {
	switch kind {
	case logical.AggCount, logical.AggSum, logical.AggAvg:
		acc.count += other.count
		acc.sum += other.sum
	case logical.AggMin:
		if other.seen && (!acc.seen || other.minmax.Compare(acc.minmax) < 0) {
			acc.minmax = other.minmax
			acc.seen = true
		}
	case logical.AggMax:
		if other.seen && (!acc.seen || other.minmax.Compare(acc.minmax) > 0) {
			acc.minmax = other.minmax
			acc.seen = true
		}
	}
}

// ensureShared lazily creates the shared state. Not safe for concurrent
// callers: it runs during plan compilation / worker-chain construction,
// strictly before workers start.
func (a *HashAggregate) ensureShared() *aggState {
	if a.shared == nil {
		a.shared = newAggState()
	}
	return a.shared
}

// WorkerClone returns an aggregate over the given per-worker input that
// shares this aggregate's merged state, barrier, and monitoring state.
func (a *HashAggregate) WorkerClone(child Iterator) *HashAggregate {
	return &HashAggregate{
		Child:     child,
		GroupOrds: a.GroupOrds, Kinds: a.Kinds, ArgOrds: a.ArgOrds,
		shared: a.ensureShared(),
	}
}

// SetWorkers declares how many clones will Open and Close this aggregate's
// shared state. Call before any worker starts; the default is 1.
func (a *HashAggregate) SetWorkers(n int) {
	s := a.ensureShared()
	s.refs.Store(int32(n))
	s.barrier.reset(n)
}

// Abort releases sibling workers blocked at the absorb barrier; the worker
// pool calls it when a worker fails before reaching this aggregate.
func (a *HashAggregate) Abort() {
	if a.shared != nil {
		a.shared.barrier.cancel()
	}
}

// Open implements Iterator. Unlike the join's build phase, absorption
// happens lazily in Next so that it interleaves with control operations.
func (a *HashAggregate) Open(ctx *ExecContext) error {
	a.ctx = ctx
	s := a.ensureShared()
	s.init(ctx)
	a.buckets = s.buckets
	a.acct = ctx.memAcct()
	a.part = &aggPartial{state: make(map[int32]map[uint64][]*groupState)}
	s.mu.Lock()
	s.partials = append(s.partials, a.part)
	s.mu.Unlock()
	a.in = relation.GetBatch()
	return a.Child.Open(ctx)
}

// drain absorbs this clone's share of the child input, waits for every
// sibling worker, then (once, in whichever worker gets there first) merges
// the partials and freezes the emit-phase output.
func (a *HashAggregate) drain() error {
	s := a.shared
	if err := a.drainChild(); err != nil {
		return err
	}
	if err := s.barrier.wait(); err != nil {
		return err
	}
	s.mergeOnce.Do(func() { s.mergeAndFreeze(a) })
	s.mu.Lock()
	mergeErr := s.mergeErr
	s.mu.Unlock()
	if mergeErr != nil {
		return mergeErr
	}
	a.emitting = true
	return nil
}

// absorb folds one input tuple into this clone's partial — the same path
// the drain loop takes per batch. Tests use it to script mid-absorb
// evict/replay interleavings.
func (a *HashAggregate) absorb(t relation.Tuple) {
	a.part.mu.Lock()
	if a.part.state != nil {
		absorbTuple(a.part.state, t, a.buckets, a)
	}
	a.part.mu.Unlock()
}

// drainChild absorbs the child batch-at-a-time (clamped to the M1 window so
// absorb-phase monitoring cadence is unchanged) into this clone's partial.
func (a *HashAggregate) drainChild() error {
	s := a.shared
	defer s.barrier.arrive()
	a.in.SetLimit(batchLimit(a.ctx, relation.DefaultBatchSize))
	prev := a.ctx.Meter.ChargedMs()
	for {
		n, err := FillBatch(a.Child, a.in)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		a.ctx.chargeN(a.ctx.Costs.AggMs, n)
		a.part.mu.Lock()
		if a.part.state != nil {
			for _, t := range a.in.Tuples {
				absorbTuple(a.part.state, t, a.buckets, a)
			}
		}
		a.part.mu.Unlock()
		// Breach check outside the partial lock: dump takes s.mu then the
		// partial locks, the same order the final merge uses. Concurrent
		// breaching workers serialize on s.mu inside dump; the second
		// arrival dumps whatever trickled in since, which is cheap.
		if s.spillOn && a.acct.Over() {
			if err := s.dump(a); err != nil {
				return err
			}
		}
		// Each worker attributes its own meter's delta for the batch; the
		// shared monitor merges the windows into one M1 stream.
		cur := a.ctx.Meter.ChargedMs()
		s.mon.tickN(n, cur-prev)
		prev = cur
	}
}

// Next implements Iterator: it drains the child (absorbing every tuple into
// group state), then emits one row per group from the shared cursor.
func (a *HashAggregate) Next() (relation.Tuple, bool, error) {
	if !a.emitting {
		if err := a.drain(); err != nil {
			return nil, false, err
		}
	}
	s := a.shared
	s.mu.Lock()
	if s.pos >= len(s.out) {
		s.mu.Unlock()
		return nil, false, nil
	}
	t := s.out[s.pos]
	s.pos++
	s.mu.Unlock()
	a.ctx.chargeFlat(a.ctx.Costs.ProjectMs)
	return t, true, nil
}

// NextBatch implements BatchIterator: the absorb phase consumes whole input
// batches with one charge bundle per batch; the emit phase hands out result
// rows by reference, workers pulling disjoint runs from the shared cursor.
func (a *HashAggregate) NextBatch(dst *relation.Batch) (int, error) {
	if !a.emitting {
		if err := a.drain(); err != nil {
			return 0, err
		}
	}
	dst.Rewind()
	s := a.shared
	s.mu.Lock()
	n := len(s.out) - s.pos
	if n <= 0 {
		s.mu.Unlock()
		return 0, nil
	}
	if c := dst.Cap(); n > c {
		n = c
	}
	for _, t := range s.out[s.pos : s.pos+n] {
		dst.Append(t)
	}
	s.pos += n
	s.mu.Unlock()
	a.ctx.chargeFlat(a.ctx.Costs.ProjectMs * float64(n))
	return n, nil
}

// absorbTuple folds one input tuple into its group within state. The caller
// holds whatever lock guards state; a carries the column metadata (identical
// across clones).
func absorbTuple(state map[int32]map[uint64][]*groupState, t relation.Tuple, buckets int, a *HashAggregate) {
	h := t.Hash(a.GroupOrds)
	b := int32(h % uint64(buckets))
	g := findOrCreateGroup(state, b, h, t, a)
	for i, kind := range a.Kinds {
		acc := &g.accs[i]
		ord := a.ArgOrds[i]
		var v relation.Value
		if ord >= 0 {
			v = t[ord]
			if v.IsNull() {
				continue // SQL aggregates skip NULLs
			}
		}
		switch kind {
		case logical.AggCount:
			acc.count++
		case logical.AggSum, logical.AggAvg:
			acc.count++
			acc.sum += v.AsFloat()
		case logical.AggMin:
			if !acc.seen || v.Compare(acc.minmax) < 0 {
				acc.minmax = v
				acc.seen = true
			}
		case logical.AggMax:
			if !acc.seen || v.Compare(acc.minmax) > 0 {
				acc.minmax = v
				acc.seen = true
			}
		}
	}
}

// findOrCreateGroup locates t's group in the (bucket, hash) chain of state,
// creating it if absent.
func findOrCreateGroup(state map[int32]map[uint64][]*groupState, b int32, h uint64, t relation.Tuple, a *HashAggregate) *groupState {
	m := state[b]
	if m == nil {
		m = make(map[uint64][]*groupState)
		state[b] = m
	}
	for _, cand := range m[h] {
		if a.sameKey(cand.key, t) {
			return cand
		}
	}
	g := &groupState{key: t.Project(a.GroupOrds), accs: make([]accumulator, len(a.Kinds))}
	m[h] = append(m[h], g)
	a.shared.accountGroup(g, a.acct)
	return g
}

func (a *HashAggregate) sameKey(key relation.Tuple, t relation.Tuple) bool {
	for i, ord := range a.GroupOrds {
		if !key[i].Equal(t[ord]) {
			return false
		}
	}
	return true
}

// keyTuplesEqual compares two group-key tuples (both in GroupOrds order).
func keyTuplesEqual(x, y relation.Tuple) bool {
	for i := range x {
		if !x[i].Equal(y[i]) {
			return false
		}
	}
	return true
}

// mergeAndFreeze folds every partial into the shared table (which already
// holds any replayed groups) and freezes the emit output, sorted by group
// key for deterministic per-instance output.
func (s *aggState) mergeAndFreeze(a *HashAggregate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.partials {
		p.mu.Lock()
		for b, m := range p.state {
			for h, chain := range m {
				for _, g := range chain {
					dst := s.findOrCreateMergedLocked(b, h, g.key, len(a.Kinds))
					for i, kind := range a.Kinds {
						dst.accs[i].merge(g.accs[i], kind)
					}
				}
			}
		}
		p.state = nil // absorbed into the shared table
		p.mu.Unlock()
	}
	if s.runName != "" {
		// Dumped partial-aggregate records re-merge into the freshly merged
		// in-memory table; the distinct result groups this materialises are
		// exactly what the emit buffer holds anyway (see spillagg.go).
		if err := s.reloadLocked(a); err != nil {
			s.mergeErr = err
			return
		}
	}
	s.freezeLocked(a)
}

// findOrCreateMergedLocked is findOrCreateGroup for the merge path, where
// the probe is a ready-made key tuple rather than an input tuple.
func (s *aggState) findOrCreateMergedLocked(b int32, h uint64, key relation.Tuple, nAccs int) *groupState {
	m := s.state[b]
	if m == nil {
		m = make(map[uint64][]*groupState)
		s.state[b] = m
	}
	for _, cand := range m[h] {
		if keyTuplesEqual(cand.key, key) {
			return cand
		}
	}
	g := &groupState{key: key, accs: make([]accumulator, nAccs)}
	m[h] = append(m[h], g)
	s.accountGroup(g, s.acct0)
	return g
}

// freezeLocked freezes the state into output rows.
func (s *aggState) freezeLocked(a *HashAggregate) {
	var groups []*groupState
	for _, m := range s.state {
		for _, chain := range m {
			groups = append(groups, chain...)
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].key.Key() < groups[j].key.Key()
	})
	s.out = s.out[:0]
	for _, g := range groups {
		row := make(relation.Tuple, 0, len(g.key)+len(g.accs))
		row = append(row, g.key...)
		for i, kind := range a.Kinds {
			row = append(row, g.accs[i].result(kind))
		}
		s.out = append(s.out, row)
	}
	// A global aggregate emits exactly one row even over empty input.
	if len(a.GroupOrds) == 0 && len(groups) == 0 {
		row := make(relation.Tuple, 0, len(a.Kinds))
		var empty accumulator
		for _, kind := range a.Kinds {
			row = append(row, empty.result(kind))
		}
		s.out = append(s.out, row)
	}
}

// result finalises one accumulator.
func (acc *accumulator) result(kind logical.AggKind) relation.Value {
	switch kind {
	case logical.AggCount:
		return relation.Int(acc.count)
	case logical.AggSum:
		if acc.count == 0 {
			return relation.Null
		}
		return relation.Float(acc.sum)
	case logical.AggAvg:
		if acc.count == 0 {
			return relation.Null
		}
		return relation.Float(acc.sum / float64(acc.count))
	case logical.AggMin, logical.AggMax:
		if !acc.seen {
			return relation.Null
		}
		return acc.minmax
	default:
		return relation.Null
	}
}

// Close implements Iterator. The shared state survives until the last
// sibling clone closes.
func (a *HashAggregate) Close() error {
	err := a.Child.Close()
	if a.part != nil {
		a.part.mu.Lock()
		a.part.state = nil
		a.part.mu.Unlock()
	}
	if a.shared != nil {
		a.shared.release()
	}
	if a.in != nil {
		a.in.Release()
		a.in = nil
	}
	return err
}

// InsertState implements StateTarget: replayed raw input tuples are
// re-absorbed into the shared table on this clone. It may run concurrently
// with absorbing workers and with other replay deliveries.
func (a *HashAggregate) InsertState(tuples []relation.Tuple) {
	s := a.shared
	if s == nil || !s.ready.Load() {
		return
	}
	for _, t := range tuples {
		s.insertMeter.charge(s.ctx.Node.PerturbedCost(s.ctx.Costs.AggMs))
		s.mu.Lock()
		if s.state != nil {
			absorbTuple(s.state, t, s.buckets, a)
		}
		s.mu.Unlock()
	}
}

// EvictBuckets implements StateTarget: the bucket vanishes from the shared
// table and from every worker partial, so partial contributions cannot
// double-count against the replayed history at the new owner.
func (a *HashAggregate) EvictBuckets(buckets []int32) {
	s := a.shared
	if s == nil || !s.ready.Load() {
		return
	}
	s.mu.Lock()
	if s.state != nil {
		for _, b := range buckets {
			delete(s.state, b)
		}
	}
	if s.spillOn && s.runName != "" {
		// Dumped records of the bucket die at the current watermark; groups
		// replayed afterwards are dumped beyond it and survive the reload.
		if s.evictedAt == nil {
			s.evictedAt = make(map[int32]int64)
		}
		for _, b := range buckets {
			s.evictedAt[b] = s.recCount
			delete(s.spillLive, b)
		}
	}
	partials := append([]*aggPartial(nil), s.partials...)
	s.mu.Unlock()
	for _, p := range partials {
		p.mu.Lock()
		if p.state != nil {
			for _, b := range buckets {
				delete(p.state, b)
			}
		}
		p.mu.Unlock()
	}
}

// StateSize implements StateTarget: the number of groups held across the
// shared table and all partials.
func (a *HashAggregate) StateSize() int {
	s := a.shared
	if s == nil || !s.ready.Load() {
		return 0
	}
	n := 0
	s.mu.Lock()
	for _, m := range s.state {
		for _, chain := range m {
			n += len(chain)
		}
	}
	// Dumped records count as held state (an upper bound: a group dumped
	// twice counts twice until the reload re-merges it).
	for _, c := range s.spillLive {
		n += int(c)
	}
	partials := append([]*aggPartial(nil), s.partials...)
	s.mu.Unlock()
	for _, p := range partials {
		p.mu.Lock()
		for _, m := range p.state {
			for _, chain := range m {
				n += len(chain)
			}
		}
		p.mu.Unlock()
	}
	return n
}

// Sort buffers its input, sorts it by the key ordinals, and emits in order.
// It runs at the result-collection site. Under a memory budget the buffer is
// accounted and, on breach, flushed as a sorted external run; the emit phase
// then k-way-merges the runs with the in-memory tail (see spillagg.go),
// byte-for-byte equivalent to the in-memory stable sort.
type Sort struct {
	Child Iterator
	Ords  []int
	Desc  []bool

	ctx    *ExecContext
	acct   *storage.BudgetAcct
	sorted []relation.Tuple
	pos    int
	done   bool

	// External-sort state (see spillagg.go).
	base     string
	met      spillMetrics
	runs     []string
	bufBytes int64
	merge    []*sortSource
}

// Open implements Iterator.
func (s *Sort) Open(ctx *ExecContext) error {
	s.ctx = ctx
	s.acct = ctx.memAcct()
	recordUngoverned(ctx, "sort")
	return s.Child.Open(ctx)
}

// Next implements Iterator.
func (s *Sort) Next() (relation.Tuple, bool, error) {
	if !s.done {
		spill := s.ctx.spillEnabled()
		for {
			t, ok, err := s.Child.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			s.ctx.chargeFlat(s.ctx.Costs.SortMs)
			s.sorted = append(s.sorted, t)
			if spill {
				sz := sortTupleBytes(t)
				s.bufBytes += sz
				s.acct.Reserve(sz)
				if s.acct.Over() {
					if err := s.flushRun(); err != nil {
						return nil, false, err
					}
				}
			}
		}
		if len(s.runs) > 0 {
			if err := s.startMerge(); err != nil {
				return nil, false, err
			}
		} else {
			sortBuffer(s)
		}
		s.done = true
	}
	if s.merge != nil {
		return s.mergeNext()
	}
	if s.pos >= len(s.sorted) {
		return nil, false, nil
	}
	t := s.sorted[s.pos]
	s.pos++
	return t, true, nil
}

func (s *Sort) less(a, b relation.Tuple) bool {
	for i, ord := range s.Ords {
		cmp := a[ord].Compare(b[ord])
		if s.Desc[i] {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// Close implements Iterator.
func (s *Sort) Close() error {
	if s.ctx != nil && (len(s.runs) > 0 || s.merge != nil || s.bufBytes > 0) {
		s.closeSpill()
	}
	s.sorted = nil
	return s.Child.Close()
}

// Limit forwards the first N tuples and then reports end of stream without
// draining the rest of its input.
type Limit struct {
	Child Iterator
	N     int64

	seen int64
}

// Open implements Iterator.
func (l *Limit) Open(ctx *ExecContext) error { return l.Child.Open(ctx) }

// Next implements Iterator.
func (l *Limit) Next() (relation.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// aggKindsOf converts the wire representation back to logical kinds.
func aggKindsOf(raw []uint8) ([]logical.AggKind, error) {
	kinds := make([]logical.AggKind, len(raw))
	for i, r := range raw {
		k := logical.AggKind(r)
		if k < logical.AggCount || k > logical.AggMax {
			return nil, fmt.Errorf("engine: invalid aggregate kind %d", r)
		}
		kinds[i] = k
	}
	return kinds, nil
}
