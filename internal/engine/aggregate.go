package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/logical"
	"repro/internal/relation"
)

// HashAggregate groups its input by key columns and computes aggregates per
// group. Like the hash join, its state is organised in routing buckets and
// implements StateTarget, so the retrospective (R1) protocol can move whole
// buckets of groups to another clone: the moved groups' raw input tuples
// are replayed from the exchange recovery logs and re-absorbed at the new
// owner. The aggregate is the second stateful operator of the engine and
// demonstrates that the paper's architecture extends beyond hash joins.
type HashAggregate struct {
	Child     Iterator
	GroupOrds []int
	// Kinds and ArgOrds describe the aggregate columns (ArgOrd -1 for
	// COUNT(*)).
	Kinds   []logical.AggKind
	ArgOrds []int

	ctx     *ExecContext
	buckets int

	mu    sync.Mutex
	state map[int32]map[uint64][]*groupState

	// emit phase.
	emitting bool
	out      []relation.Tuple
	pos      int

	// in is the owned input batch for the vectorized absorb phase.
	in *relation.Batch

	mon         *opMonitor
	insertMeter *opInsertMeter
}

// groupState is one group's accumulators.
type groupState struct {
	key  relation.Tuple // group-key values, in GroupOrds order
	accs []accumulator
}

// accumulator folds one aggregate column.
type accumulator struct {
	count  int64
	sum    float64
	minmax relation.Value
	seen   bool
}

// Open implements Iterator. Unlike the join's build phase, absorption
// happens lazily in Next so that it interleaves with control operations.
func (a *HashAggregate) Open(ctx *ExecContext) error {
	a.ctx = ctx
	a.buckets = ctx.Buckets
	if a.buckets <= 0 {
		a.buckets = DefaultBuckets
	}
	a.state = make(map[int32]map[uint64][]*groupState)
	a.mon = newOpMonitor(ctx)
	a.insertMeter = newOpInsertMeter(ctx)
	a.in = relation.GetBatch()
	return a.Child.Open(ctx)
}

// drain absorbs the entire child input batch-at-a-time (clamped to the M1
// window so absorb-phase monitoring cadence is unchanged) and freezes the
// emit-phase output.
func (a *HashAggregate) drain() error {
	a.in.SetLimit(batchLimit(a.ctx, relation.DefaultBatchSize))
	for {
		n, err := FillBatch(a.Child, a.in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		a.ctx.chargeN(a.ctx.Costs.AggMs, n)
		a.absorbBatch(a.in.Tuples)
		for i := 0; i < n; i++ {
			a.mon.tick()
		}
	}
	a.beginEmit()
	return nil
}

// Next implements Iterator: it drains the child (absorbing every tuple into
// group state), then emits one row per group.
func (a *HashAggregate) Next() (relation.Tuple, bool, error) {
	if !a.emitting {
		if err := a.drain(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	t := a.out[a.pos]
	a.pos++
	a.ctx.chargeFlat(a.ctx.Costs.ProjectMs)
	return t, true, nil
}

// NextBatch implements BatchIterator: the absorb phase consumes whole input
// batches with one lock acquisition and one charge bundle per batch; the
// emit phase hands out result rows by reference.
func (a *HashAggregate) NextBatch(dst *relation.Batch) (int, error) {
	if !a.emitting {
		if err := a.drain(); err != nil {
			return 0, err
		}
	}
	dst.Rewind()
	n := len(a.out) - a.pos
	if n <= 0 {
		return 0, nil
	}
	if c := dst.Cap(); n > c {
		n = c
	}
	for _, t := range a.out[a.pos : a.pos+n] {
		dst.Append(t)
	}
	a.pos += n
	a.ctx.chargeFlat(a.ctx.Costs.ProjectMs * float64(n))
	return n, nil
}

// absorb folds one input tuple into its group.
func (a *HashAggregate) absorb(t relation.Tuple) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.absorbLocked(t)
}

// absorbBatch folds a batch of input tuples under one lock acquisition.
func (a *HashAggregate) absorbBatch(ts []relation.Tuple) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range ts {
		a.absorbLocked(t)
	}
}

func (a *HashAggregate) absorbLocked(t relation.Tuple) {
	h := t.Hash(a.GroupOrds)
	b := int32(h % uint64(a.buckets))
	if a.state == nil {
		return // closed; replay raced completion
	}
	m := a.state[b]
	if m == nil {
		m = make(map[uint64][]*groupState)
		a.state[b] = m
	}
	var g *groupState
	for _, cand := range m[h] {
		if a.sameKey(cand.key, t) {
			g = cand
			break
		}
	}
	if g == nil {
		g = &groupState{key: t.Project(a.GroupOrds), accs: make([]accumulator, len(a.Kinds))}
		m[h] = append(m[h], g)
	}
	for i, kind := range a.Kinds {
		acc := &g.accs[i]
		ord := a.ArgOrds[i]
		var v relation.Value
		if ord >= 0 {
			v = t[ord]
			if v.IsNull() {
				continue // SQL aggregates skip NULLs
			}
		}
		switch kind {
		case logical.AggCount:
			acc.count++
		case logical.AggSum, logical.AggAvg:
			acc.count++
			acc.sum += v.AsFloat()
		case logical.AggMin:
			if !acc.seen || v.Compare(acc.minmax) < 0 {
				acc.minmax = v
				acc.seen = true
			}
		case logical.AggMax:
			if !acc.seen || v.Compare(acc.minmax) > 0 {
				acc.minmax = v
				acc.seen = true
			}
		}
	}
}

func (a *HashAggregate) sameKey(key relation.Tuple, t relation.Tuple) bool {
	for i, ord := range a.GroupOrds {
		if !key[i].Equal(t[ord]) {
			return false
		}
	}
	return true
}

// beginEmit freezes the state into output rows, sorted by group key for
// deterministic per-instance output.
func (a *HashAggregate) beginEmit() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.emitting = true
	var groups []*groupState
	for _, m := range a.state {
		for _, chain := range m {
			groups = append(groups, chain...)
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].key.Key() < groups[j].key.Key()
	})
	a.out = a.out[:0]
	for _, g := range groups {
		row := make(relation.Tuple, 0, len(g.key)+len(g.accs))
		row = append(row, g.key...)
		for i, kind := range a.Kinds {
			row = append(row, g.accs[i].result(kind))
		}
		a.out = append(a.out, row)
	}
	// A global aggregate emits exactly one row even over empty input.
	if len(a.GroupOrds) == 0 && len(groups) == 0 {
		row := make(relation.Tuple, 0, len(a.Kinds))
		var empty accumulator
		for _, kind := range a.Kinds {
			row = append(row, empty.result(kind))
		}
		a.out = append(a.out, row)
	}
}

// result finalises one accumulator.
func (acc *accumulator) result(kind logical.AggKind) relation.Value {
	switch kind {
	case logical.AggCount:
		return relation.Int(acc.count)
	case logical.AggSum:
		if acc.count == 0 {
			return relation.Null
		}
		return relation.Float(acc.sum)
	case logical.AggAvg:
		if acc.count == 0 {
			return relation.Null
		}
		return relation.Float(acc.sum / float64(acc.count))
	case logical.AggMin, logical.AggMax:
		if !acc.seen {
			return relation.Null
		}
		return acc.minmax
	default:
		return relation.Null
	}
}

// Close implements Iterator.
func (a *HashAggregate) Close() error {
	err := a.Child.Close()
	a.mu.Lock()
	a.state = nil
	a.mu.Unlock()
	if a.in != nil {
		a.in.Release()
		a.in = nil
	}
	return err
}

// InsertState implements StateTarget: replayed raw input tuples are
// re-absorbed into group state on this clone.
func (a *HashAggregate) InsertState(tuples []relation.Tuple) {
	for _, t := range tuples {
		a.insertMeter.charge(a.ctx.Node.PerturbedCost(a.ctx.Costs.AggMs))
		a.absorb(t)
	}
}

// EvictBuckets implements StateTarget.
func (a *HashAggregate) EvictBuckets(buckets []int32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == nil {
		return
	}
	for _, b := range buckets {
		delete(a.state, b)
	}
}

// StateSize implements StateTarget: the number of groups held.
func (a *HashAggregate) StateSize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, m := range a.state {
		for _, chain := range m {
			n += len(chain)
		}
	}
	return n
}

// Sort buffers its entire input, sorts it by the key ordinals, and emits in
// order. It runs at the result-collection site.
type Sort struct {
	Child Iterator
	Ords  []int
	Desc  []bool

	ctx    *ExecContext
	sorted []relation.Tuple
	pos    int
	done   bool
}

// Open implements Iterator.
func (s *Sort) Open(ctx *ExecContext) error {
	s.ctx = ctx
	return s.Child.Open(ctx)
}

// Next implements Iterator.
func (s *Sort) Next() (relation.Tuple, bool, error) {
	if !s.done {
		for {
			t, ok, err := s.Child.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			s.ctx.chargeFlat(s.ctx.Costs.SortMs)
			s.sorted = append(s.sorted, t)
		}
		sort.SliceStable(s.sorted, func(i, j int) bool { return s.less(s.sorted[i], s.sorted[j]) })
		s.done = true
	}
	if s.pos >= len(s.sorted) {
		return nil, false, nil
	}
	t := s.sorted[s.pos]
	s.pos++
	return t, true, nil
}

func (s *Sort) less(a, b relation.Tuple) bool {
	for i, ord := range s.Ords {
		cmp := a[ord].Compare(b[ord])
		if s.Desc[i] {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// Close implements Iterator.
func (s *Sort) Close() error {
	s.sorted = nil
	return s.Child.Close()
}

// Limit forwards the first N tuples and then reports end of stream without
// draining the rest of its input.
type Limit struct {
	Child Iterator
	N     int64

	seen int64
}

// Open implements Iterator.
func (l *Limit) Open(ctx *ExecContext) error { return l.Child.Open(ctx) }

// Next implements Iterator.
func (l *Limit) Next() (relation.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Child.Close() }

// aggKindsOf converts the wire representation back to logical kinds.
func aggKindsOf(raw []uint8) ([]logical.AggKind, error) {
	kinds := make([]logical.AggKind, len(raw))
	for i, r := range raw {
		k := logical.AggKind(r)
		if k < logical.AggCount || k > logical.AggMax {
			return nil, fmt.Errorf("engine: invalid aggregate kind %d", r)
		}
		kinds[i] = k
	}
	return kinds, nil
}
