package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// consumerHarness wires a consumer with a capture endpoint for its acks.
type consumerHarness struct {
	cons *Consumer
	ctx  *ExecContext

	mu   sync.Mutex
	acks []*transport.Message
}

func newConsumerHarness(t *testing.T, producers int, stateful bool) *consumerHarness {
	t.Helper()
	clock := vtime.NewClock(time.Microsecond)
	net := simnet.NewNetwork(clock)
	net.AddNode("src")
	net.AddNode("sink")
	tr := transport.NewInProc(net)
	h := &consumerHarness{}
	addrs := make([]Addr, producers)
	for i := range addrs {
		addrs[i] = Addr{Node: "src", Service: "prod"}
	}
	tr.Register("src", "prod", func(_ simnet.NodeID, m *transport.Message) {
		h.mu.Lock()
		h.acks = append(h.acks, m)
		h.mu.Unlock()
	})
	h.ctx = &ExecContext{Clock: clock, Node: net.Node("sink"),
		Meter: vtime.NewMeter(clock), Costs: DefaultCosts(), Buckets: 16}
	h.cons = newConsumer("EX", 0, addrs, stateful, newFlowGate(), tr, "sink")
	if err := h.cons.Open(h.ctx); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *consumerHarness) ackMessages() []*transport.Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*transport.Message(nil), h.acks...)
}

// deliver pushes a data buffer from producer 0.
func (h *consumerHarness) deliver(t *testing.T, startSeq int64, ckpt int64, buckets []int32, tuples ...relation.Tuple) {
	t.Helper()
	msg := &transport.Message{
		Kind: transport.KindData, Exchange: "EX",
		ProducerIdx: 0, ConsumerIdx: 0,
		StartSeq: startSeq, Checkpoint: ckpt,
		Tuples: tuples, Buckets: buckets,
	}
	if err := h.cons.Deliver(msg); err != nil {
		t.Fatal(err)
	}
}

func (h *consumerHarness) pop(t *testing.T) (relation.Tuple, bool) {
	t.Helper()
	tp, ok, err := h.cons.Next()
	if err != nil {
		t.Fatal(err)
	}
	return tp, ok
}

func TestConsumerFIFOAndEOS(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	h.deliver(t, 1, 0, nil, intTuple(1), intTuple(2))
	if err := h.cons.Deliver(&transport.Message{Kind: transport.KindEOS, Exchange: "EX"}); err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 2; want++ {
		tp, ok := h.pop(t)
		if !ok || tp[0].AsInt() != int64(want) {
			t.Fatalf("pop %d: %v %v", want, tp, ok)
		}
	}
	if _, ok := h.pop(t); ok {
		t.Fatal("expected EOS")
	}
	consumed, _, queued := h.cons.Stats()
	if consumed != 2 || queued != 0 {
		t.Fatalf("stats: consumed=%d queued=%d", consumed, queued)
	}
}

func TestConsumerAcksCompletedCheckpoints(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	h.deliver(t, 1, 3, nil, intTuple(1), intTuple(2), intTuple(3))
	// Pop all three; the third's processing completes at the next call.
	for i := 0; i < 3; i++ {
		h.pop(t)
	}
	if len(h.ackMessages()) != 0 {
		t.Fatal("acked before the interval was fully processed")
	}
	h.cons.Deliver(&transport.Message{Kind: transport.KindEOS, Exchange: "EX"})
	h.pop(t) // EOS; finishes the in-flight tuple and triggers the ack
	acks := h.ackMessages()
	if len(acks) != 1 || acks[0].Checkpoint != 3 || len(acks[0].Except) != 0 {
		t.Fatalf("acks = %+v", acks)
	}
}

func TestConsumerDiscardReportsAndTaints(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	h.deliver(t, 1, 4, nil, intTuple(1), intTuple(2), intTuple(3), intTuple(4))
	h.pop(t) // tuple 1 in flight
	// Recall everything still queued (seqs 2..4).
	var report map[int][]int64
	h.cons.gate.mu.Lock()
	report = h.cons.discardLocked(nil)
	h.cons.gate.mu.Unlock()
	if len(report[0]) != 3 {
		t.Fatalf("discard report = %v", report)
	}
	// Finish tuple 1; checkpoint 4 completes with the discarded seqs listed
	// as exceptions.
	h.cons.Deliver(&transport.Message{Kind: transport.KindEOS, Exchange: "EX"})
	h.pop(t)
	acks := h.ackMessages()
	if len(acks) != 1 || acks[0].Checkpoint != 4 || len(acks[0].Except) != 3 {
		t.Fatalf("acks = %+v", acks)
	}
}

func TestConsumerDiscardByBucket(t *testing.T) {
	h := newConsumerHarness(t, 1, true)
	h.deliver(t, 1, 0, []int32{3, 5, 3}, intTuple(1), intTuple(2), intTuple(3))
	h.cons.gate.mu.Lock()
	report := h.cons.discardLocked([]int32{3})
	queued := len(h.cons.queue)
	h.cons.gate.mu.Unlock()
	if len(report[0]) != 2 {
		t.Fatalf("bucket discard report = %v", report)
	}
	if queued != 1 {
		t.Fatalf("queued after discard = %d", queued)
	}
}

func TestConsumerStatefulNeverAcks(t *testing.T) {
	h := newConsumerHarness(t, 1, true)
	h.deliver(t, 1, 2, nil, intTuple(1), intTuple(2))
	h.cons.Deliver(&transport.Message{Kind: transport.KindEOS, Exchange: "EX"})
	for {
		if _, ok := h.pop(t); !ok {
			break
		}
	}
	if len(h.ackMessages()) != 0 {
		t.Fatal("stateful consumer acked")
	}
}

func TestConsumerReplayGoesToStateTarget(t *testing.T) {
	h := newConsumerHarness(t, 1, true)
	target := &fakeStateTarget{}
	h.cons.SetStateTarget(target)
	msg := &transport.Message{
		Kind: transport.KindData, Exchange: "EX", Replay: true,
		Tuples: []relation.Tuple{intTuple(1), intTuple(2)},
	}
	if err := h.cons.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	if target.inserted != 2 {
		t.Fatalf("state target received %d tuples", target.inserted)
	}
	if _, _, queued := h.cons.Stats(); queued != 0 {
		t.Fatal("replay tuples leaked into the queue")
	}
	// Replay without a target is an error.
	h.cons.SetStateTarget(nil)
	if err := h.cons.Deliver(msg); err == nil {
		t.Fatal("replay without state target accepted")
	}
}

type fakeStateTarget struct{ inserted int }

func (f *fakeStateTarget) InsertState(ts []relation.Tuple) { f.inserted += len(ts) }
func (f *fakeStateTarget) EvictBuckets([]int32)            {}
func (f *fakeStateTarget) StateSize() int                  { return f.inserted }

func TestConsumerRejectsBadMessages(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	if err := h.cons.Deliver(&transport.Message{Kind: transport.KindAck}); err == nil {
		t.Error("ack accepted by consumer")
	}
	if err := h.cons.Deliver(&transport.Message{Kind: transport.KindData, ProducerIdx: 9}); err == nil {
		t.Error("bad producer index accepted")
	}
}

func TestConsumerBlocksUntilDelivery(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	got := make(chan relation.Tuple, 1)
	go func() {
		tp, _, _ := h.cons.Next()
		got <- tp
	}()
	select {
	case <-got:
		t.Fatal("Next returned without data")
	case <-time.After(20 * time.Millisecond):
	}
	h.deliver(t, 1, 0, nil, intTuple(42))
	select {
	case tp := <-got:
		if tp[0].AsInt() != 42 {
			t.Fatalf("got %v", tp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next never woke up")
	}
}

func TestConsumerCloseUnblocks(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	done := make(chan bool, 1)
	go func() {
		_, ok, _ := h.cons.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	_ = h.cons.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a tuple after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
}

func TestFlowGateQuiesceWaitsForInflight(t *testing.T) {
	h := newConsumerHarness(t, 1, false)
	h.deliver(t, 1, 0, nil, intTuple(1), intTuple(2))
	h.pop(t) // tuple 1 now in flight
	quiesced := make(chan struct{})
	go h.cons.gate.quiesce(func() { close(quiesced) })
	select {
	case <-quiesced:
		t.Fatal("quiesce ran with a tuple in flight")
	case <-time.After(20 * time.Millisecond):
	}
	h.pop(t) // finishes tuple 1 (and pops tuple 2 once unpaused)
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatal("quiesce never ran")
	}
}
