package engine

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Grace-hash spilling for the hash join (paper-era memory governance, see
// DESIGN.md §5i). When a query runs under a memory budget with a spill
// backend configured, the shared build table accounts the bytes it holds.
// On a breach the largest in-memory partition is spilled wholesale: its
// entries move to a build run, and probe tuples hashing into it are deferred
// to a probe run instead of being matched inline. After the probe input is
// exhausted the join drains each (build run, probe run) pair: the build run
// is reloaded under the same budget — re-partitioned fan-ways and re-queued
// if it alone breaches — and the deferred probe tuples are matched against
// it, preserving the exact multiset of matches the in-memory join produces.
//
// Spilling works for serial and morsel-parallel joins alike. Workers
// account build bytes through per-stripe budget handles (storage.Budget is
// striped, so Over stays one shared load at width 8), victim selection and
// partition eviction serialize under joinState.spillMu, and in-flight
// inserts/probes of other partitions proceed untouched — eviction only
// takes the victim partition's lock. The drain phase is coordinated by a
// second barrier: every worker arrives at probeBarrier when its probe share
// is exhausted, one worker seals the spilled runs (no probe tuple can
// arrive after the barrier), and the sealed (build, probe) pairs queue in
// the shared pairQ. Pairs are independent, so workers pull and drain them
// concurrently, each against its own private reload table; a pair that
// re-partitions pushes its sub-pairs back onto the front of the shared
// queue for any worker to pick up.
//
// Correctness under R1 (retrospective eviction + replay) relies on two
// watermarks carried in run records:
//
//   - a build record is [Int(wm), Int(idx)] ++ tuple, where wm is the
//     partition's probe-run length when the build tuple was appended (0 for
//     tuples present before the spill) and idx its append position. A build
//     tuple may only match probe tuples with j >= wm — exactly the probe
//     tuples an in-memory table would have shown it to, since replayed
//     inserts only meet probe tuples processed after the insert.
//   - a probe record is [Int(j)] ++ tuple, its position in the probe run.
//
// An R1 eviction of bucket b while the partition is spilled appends an event
// {b, buildIdx, probeIdx}: it kills matches between build tuples already in
// the run (idx < buildIdx) and probe tuples not yet routed (j >= probeIdx),
// mirroring what eviction does to an in-memory bucket — earlier probe tuples
// already "saw" the state, later ones must not. Evictions recorded after the
// drain seals the runs carry probeIdx == the final probe count and thus kill
// nothing, so the snapshot taken at drain start is complete.
const (
	// spillFan is the re-partitioning fan-out when a reloaded build run
	// still breaches the budget.
	spillFan = 8
	// maxSpillDepth caps recursive re-partitioning; beyond it the pair is
	// processed in memory regardless of the budget (heavy duplicate keys
	// cannot be split by their own hash).
	maxSpillDepth = 6
)

// spillEntryBytes is the accounted in-memory footprint of one build tuple:
// its wire size plus arena/chain bookkeeping overhead.
func spillEntryBytes(t relation.Tuple) int64 {
	return int64(t.ByteSize()) + 48
}

// spillMetrics bundles the process-wide spill counters.
type spillMetrics struct {
	bytes    *obs.Counter
	parts    *obs.Counter
	restarts *obs.Counter
}

func newSpillMetrics() spillMetrics {
	o := obs.Default()
	return spillMetrics{
		bytes:    o.Counter(obs.MSpillBytes),
		parts:    o.Counter(obs.MSpillPartitions),
		restarts: o.Counter(obs.MSpillRestarts),
	}
}

// recordSpillEvent puts one spill action on the adaptation timeline.
func recordSpillEvent(ctx *ExecContext, detail string, tuples int64) {
	obs.Default().Record(obs.Event{
		AtMs:     ctx.Clock.NowMs(),
		Kind:     obs.KindSpill,
		Fragment: ctx.Fragment,
		Tuples:   tuples,
		Detail:   detail,
	})
}

// spillEvent records a spill action against the join's context.
func (s *joinState) spillEvent(detail string, tuples int64) {
	recordSpillEvent(s.ctx, detail, tuples)
}

// recordUngoverned traces the one remaining ungoverned path: a stateful
// operator initialising under a memory budget with no spill backend grows
// outside the budget. Instead of doing so silently it counts
// mem_ungoverned_total and leaves a timeline event, so an operator staring
// at a breached gauge can see which fragment escaped governance and why.
func recordUngoverned(ctx *ExecContext, op string) {
	if ctx.Mem == nil || ctx.Spill != nil {
		return
	}
	obs.Default().Counter(obs.MMemUngoverned).Inc()
	obs.Default().Record(obs.Event{
		AtMs:     ctx.Clock.NowMs(),
		Kind:     obs.KindSpill,
		Fragment: ctx.Fragment,
		Detail:   op + ": memory budget set but no spill backend; state grows ungoverned",
	})
}

// spillEvict is one R1 bucket eviction recorded while a partition was
// spilled; see the package comment above for its kill semantics.
type spillEvict struct {
	bucket   int32
	buildIdx int64
	probeIdx int64
}

func (s *joinState) setSpillErr(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	if s.spillErr == nil {
		s.spillErr = err
	}
	s.errMu.Unlock()
}

func (s *joinState) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.spillErr
}

// appendSpilledLocked routes a build tuple (insert or R1 replay) into a
// spilled partition's build run. Called with p.mu held. After the drain has
// sealed the runs the tuple is counted but dropped: its watermark would be
// the final probe count, so it could never match a deferred probe tuple.
func (s *joinState) appendSpilledLocked(p *joinPart, b int32, t relation.Tuple) {
	p.held++
	p.spillLive[b]++
	if p.build == nil {
		return
	}
	rec := make(relation.Tuple, 0, len(t)+2)
	rec = append(rec, relation.Int(p.probeCount), relation.Int(p.buildCount))
	rec = append(rec, t...)
	if err := p.build.Append(rec); err != nil {
		s.setSpillErr(fmt.Errorf("engine: spill build append: %w", err))
		return
	}
	p.buildCount++
	s.met.bytes.Add(int64(t.ByteSize()))
}

// routeProbeLocked defers a probe tuple of a spilled partition to its probe
// run. Called with p.mu held.
func (s *joinState) routeProbeLocked(p *joinPart, t relation.Tuple) {
	if p.probe == nil {
		return
	}
	rec := make(relation.Tuple, 0, len(t)+1)
	rec = append(rec, relation.Int(p.probeCount))
	rec = append(rec, t...)
	if err := p.probe.Append(rec); err != nil {
		s.setSpillErr(fmt.Errorf("engine: spill probe append: %w", err))
		return
	}
	p.probeCount++
	s.met.bytes.Add(int64(t.ByteSize()))
}

// spillVictims spills whole partitions, largest first, until the budget is
// met or nothing spillable remains. Concurrent breaching workers serialize
// here: the second arrival re-checks Over and usually returns immediately.
func (s *joinState) spillVictims() {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	for s.mem.Over() {
		vi, vb := -1, int64(0)
		for i := range s.parts {
			p := &s.parts[i]
			p.mu.Lock()
			if !p.spilled && p.chains != nil && p.bytes > vb {
				vi, vb = i, p.bytes
			}
			p.mu.Unlock()
		}
		if vi < 0 || !s.spillPartition(vi) {
			return
		}
	}
}

// spillPartition moves partition i's in-memory entries to a build run and
// marks it spilled, releasing the accounted bytes.
func (s *joinState) spillPartition(i int) bool {
	p := &s.parts[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spilled || p.chains == nil {
		return false
	}
	p.buildName = fmt.Sprintf("%s-p%d-build", s.base, i)
	p.probeName = fmt.Sprintf("%s-p%d-probe", s.base, i)
	bw, err := s.backend.Create(p.buildName)
	if err != nil {
		s.setSpillErr(fmt.Errorf("engine: spill create: %w", err))
		return false
	}
	pw, err := s.backend.Create(p.probeName)
	if err != nil {
		s.setSpillErr(fmt.Errorf("engine: spill create: %w", err))
		_ = bw.Close()
		_ = s.backend.Remove(p.buildName)
		return false
	}
	p.build, p.probe = bw, pw
	p.spillLive = make(map[int32]int64)
	var moved int64
	// Entries are written chain by chain; order across chains is immaterial
	// (matching is per hash chain, and every pre-spill entry precedes every
	// post-spill append in build-index order, which is all eviction
	// filtering depends on).
	for h, c := range p.chains {
		b := int32(h % uint64(s.buckets))
		for e := c.head; e >= 0; e = p.entries[e].next {
			t := p.entries[e].t
			rec := make(relation.Tuple, 0, len(t)+2)
			rec = append(rec, relation.Int(0), relation.Int(p.buildCount))
			rec = append(rec, t...)
			if err := p.build.Append(rec); err != nil {
				s.setSpillErr(fmt.Errorf("engine: spill build append: %w", err))
			}
			p.buildCount++
			moved++
		}
		p.spillLive[b] += int64(c.n)
	}
	p.spilled = true
	p.chains = nil
	p.entries = nil
	s.mem.Release(p.bytes)
	s.met.bytes.Add(p.bytes)
	p.bytes = 0
	s.met.parts.Inc()
	s.spillEvent(fmt.Sprintf("join partition %d -> %s", i, p.buildName), moved)
	return true
}

// spillEntry is one reloaded build tuple during the drain.
type spillEntry struct {
	t   relation.Tuple
	wm  int64 // first probe index this entry may match
	idx int64 // build-run position, for eviction filtering
}

// spillPair is one (build run, probe run) pair awaiting drain.
type spillPair struct {
	build, probe string
	part         int
	depth        int
	evicts       []spillEvict
}

// joinSpillDrain matches deferred probe tuples after the streaming probe
// phase: it reloads one build run at a time into an in-memory table (under
// the budget, re-partitioning on breach) and streams the paired probe run
// through it. Each worker clone owns one drain — the reload table, reader
// and current pair are goroutine-private — while the pending pairs live in
// the joinState's shared queue, so clones drain independent pairs
// concurrently.
type joinSpillDrain struct {
	s    *joinState
	j    *HashJoin
	acct *storage.BudgetAcct

	table      map[uint64][]spillEntry
	tableBytes int64
	evicts     []spillEvict
	reader     storage.RunReader
	active     bool
	cur        spillPair
	closed     bool
}

// sealRuns seals every spilled partition's runs and queues the pairs with
// deferred probe tuples; pairs nothing probed are removed outright. Exactly
// one clone runs this (sealOnce), strictly after every clone has passed the
// probe-completion barrier — no probe tuple can arrive afterwards, so the
// snapshot is complete. Build tuples may still arrive via R1 replay; they
// are counted but dropped, as their watermark (the final probe count) could
// never match a deferred probe tuple.
func (s *joinState) sealRuns() {
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		if !p.spilled {
			p.mu.Unlock()
			continue
		}
		if p.build != nil {
			if err := p.build.Close(); err != nil {
				s.setSpillErr(fmt.Errorf("engine: spill seal: %w", err))
			}
			if err := p.probe.Close(); err != nil {
				s.setSpillErr(fmt.Errorf("engine: spill seal: %w", err))
			}
			p.build, p.probe = nil, nil
		}
		if p.probeCount == 0 {
			_ = s.backend.Remove(p.buildName)
			_ = s.backend.Remove(p.probeName)
			p.mu.Unlock()
			continue
		}
		pr := spillPair{
			build:  p.buildName,
			probe:  p.probeName,
			part:   i,
			evicts: append([]spillEvict(nil), p.evicts...),
		}
		p.mu.Unlock()
		s.pairMu.Lock()
		s.pairQ = append(s.pairQ, pr)
		s.pairMu.Unlock()
	}
}

// popPair pulls the next pending drain pair off the shared queue.
func (s *joinState) popPair() (spillPair, bool) {
	s.pairMu.Lock()
	defer s.pairMu.Unlock()
	if len(s.pairQ) == 0 {
		return spillPair{}, false
	}
	pr := s.pairQ[0]
	s.pairQ = s.pairQ[1:]
	return pr, true
}

// pushPairsFront queues repartitioned sub-pairs ahead of the remaining
// work, preserving the depth-first drain order of the serial path.
func (s *joinState) pushPairsFront(prs []spillPair) {
	s.pairMu.Lock()
	s.pairQ = append(prs, s.pairQ...)
	s.pairMu.Unlock()
}

func decodeBuildRec(rec relation.Tuple) (wm, idx int64, t relation.Tuple, err error) {
	if len(rec) < 2 || rec[0].Type() != relation.TInt || rec[1].Type() != relation.TInt {
		return 0, 0, nil, fmt.Errorf("engine: malformed spill build record")
	}
	return rec[0].AsInt(), rec[1].AsInt(), rec[2:], nil
}

func decodeProbeRec(rec relation.Tuple) (jdx int64, t relation.Tuple, err error) {
	if len(rec) < 1 || rec[0].Type() != relation.TInt {
		return 0, nil, fmt.Errorf("engine: malformed spill probe record")
	}
	return rec[0].AsInt(), rec[1:], nil
}

// evicted reports whether a (build idx, probe idx) match is killed by one of
// the bucket's recorded evictions.
func evicted(evicts []spillEvict, b int32, idx, jdx int64) bool {
	for _, ev := range evicts {
		if ev.bucket == b && idx < ev.buildIdx && jdx >= ev.probeIdx {
			return true
		}
	}
	return false
}

// load reloads pr's build run into the drain table and opens its probe run.
// If the reload alone breaches the budget the pair is re-partitioned
// spillFan ways and re-queued instead (d stays inactive).
func (d *joinSpillDrain) load(pr spillPair) error {
	s := d.s
	r, err := s.backend.Open(pr.build)
	if err != nil {
		return fmt.Errorf("engine: spill reload: %w", err)
	}
	d.table = make(map[uint64][]spillEntry)
	d.tableBytes = 0
	for {
		rec, ok, rerr := r.Next()
		if rerr != nil {
			_ = r.Close()
			return rerr
		}
		if !ok {
			break
		}
		wm, idx, t, derr := decodeBuildRec(rec)
		if derr != nil {
			_ = r.Close()
			return derr
		}
		h := t.Hash(d.j.BuildKeys)
		b := int32(h % uint64(s.buckets))
		// Entries only matchable at j >= wm that an eviction kills for all
		// such j are dead for the whole pair: drop them at load.
		if evicted(pr.evicts, b, idx, wm) {
			continue
		}
		sz := spillEntryBytes(t)
		d.tableBytes += sz
		d.acct.Reserve(sz)
		d.table[h] = append(d.table[h], spillEntry{t: t, wm: wm, idx: idx})
		if d.acct.Over() && pr.depth < maxSpillDepth {
			_ = r.Close()
			return d.repartition(pr)
		}
	}
	if err := r.Close(); err != nil {
		return err
	}
	pj, err := s.backend.Open(pr.probe)
	if err != nil {
		return fmt.Errorf("engine: spill reload: %w", err)
	}
	d.reader = pj
	d.evicts = pr.evicts
	d.cur = pr
	d.active = true
	return nil
}

// repartition splits pr's build and probe runs spillFan ways by a hash-bit
// slice untouched by bucket/partition selection and by shallower splits,
// then queues the sub-pairs in front of the remaining work.
func (d *joinSpillDrain) repartition(pr spillPair) error {
	s := d.s
	d.acct.Release(d.tableBytes)
	d.tableBytes = 0
	d.table = nil
	shift := uint(40 + 3*pr.depth)
	base := strings.TrimSuffix(pr.build, "-build")
	seq := spillRunSeq.Add(1)

	split := func(src string, metaLen int, keys []int, kind string) ([]storage.RunWriter, error) {
		ws := make([]storage.RunWriter, spillFan)
		for k := range ws {
			w, err := s.backend.Create(fmt.Sprintf("%s-r%d-s%d-%s", base, seq, k, kind))
			if err != nil {
				return ws, err
			}
			ws[k] = w
		}
		r, err := s.backend.Open(src)
		if err != nil {
			return ws, err
		}
		defer r.Close()
		for {
			rec, ok, rerr := r.Next()
			if rerr != nil {
				return ws, rerr
			}
			if !ok {
				return ws, nil
			}
			if len(rec) <= metaLen {
				return ws, fmt.Errorf("engine: malformed spill record")
			}
			h := rec[metaLen:].Hash(keys)
			if err := ws[(h>>shift)&(spillFan-1)].Append(rec); err != nil {
				return ws, err
			}
		}
	}

	closeAll := func(ws []storage.RunWriter) {
		for _, w := range ws {
			if w != nil {
				_ = w.Close()
			}
		}
	}
	bws, err := split(pr.build, 2, d.j.BuildKeys, "build")
	if err != nil {
		closeAll(bws)
		return fmt.Errorf("engine: spill repartition: %w", err)
	}
	pws, err := split(pr.probe, 1, d.j.ProbeKeys, "probe")
	if err != nil {
		closeAll(bws)
		closeAll(pws)
		return fmt.Errorf("engine: spill repartition: %w", err)
	}
	var moved int64
	subs := make([]spillPair, 0, spillFan)
	for k := 0; k < spillFan; k++ {
		bn := fmt.Sprintf("%s-r%d-s%d-build", base, seq, k)
		pn := fmt.Sprintf("%s-r%d-s%d-probe", base, seq, k)
		probeTuples := pws[k].Tuples()
		if err := bws[k].Close(); err != nil {
			return fmt.Errorf("engine: spill repartition: %w", err)
		}
		if err := pws[k].Close(); err != nil {
			return fmt.Errorf("engine: spill repartition: %w", err)
		}
		if probeTuples == 0 || bws[k].Tuples() == 0 {
			_ = s.backend.Remove(bn)
			_ = s.backend.Remove(pn)
			continue
		}
		moved += bws[k].Tuples()
		subs = append(subs, spillPair{build: bn, probe: pn, part: pr.part, depth: pr.depth + 1, evicts: pr.evicts})
	}
	_ = s.backend.Remove(pr.build)
	_ = s.backend.Remove(pr.probe)
	s.pushPairsFront(subs)
	s.met.restarts.Inc()
	s.spillEvent(fmt.Sprintf("join repartition %s depth %d", base, pr.depth+1), moved)
	return nil
}

// finishPair releases the drained pair's table, reader and runs.
func (d *joinSpillDrain) finishPair() {
	if d.reader != nil {
		_ = d.reader.Close()
		d.reader = nil
	}
	if d.active {
		_ = d.s.backend.Remove(d.cur.build)
		_ = d.s.backend.Remove(d.cur.probe)
	}
	d.acct.Release(d.tableBytes)
	d.tableBytes = 0
	d.table = nil
	d.active = false
}

// close releases what this clone's drain still holds. Queued pairs a
// cancelled query never drained are swept by joinState.release — they
// belong to the shared queue, not to any one clone.
func (d *joinSpillDrain) close() {
	if d == nil || d.closed {
		return
	}
	d.closed = true
	d.finishPair()
}

// drainPending advances the spill drain until at least one deferred match
// sits in j.pending, returning false once every pair is exhausted. On first
// entry the clone arrives at the probe-completion barrier and waits for its
// siblings — only then are the runs sealed (once) and the pair queue
// opened. No operator cost is charged here: every probe tuple already paid
// JoinProbeMs when it was routed, and every build tuple JoinBuildMs when
// inserted — the drain is the deferred completion of work already
// accounted.
func (j *HashJoin) drainPending() (bool, error) {
	s := j.shared
	if err := s.err(); err != nil {
		return false, err
	}
	if j.drain == nil {
		s.probeBarrier.arrive()
		if err := s.probeBarrier.wait(); err != nil {
			return false, err
		}
		s.sealOnce.Do(s.sealRuns)
		j.drain = &joinSpillDrain{s: s, j: j, acct: j.acct}
	}
	d := j.drain
	for j.pendHead >= len(j.pending) {
		j.pending, j.pendHead = j.pending[:0], 0
		if err := s.err(); err != nil {
			return false, err
		}
		if !d.active {
			pr, ok := s.popPair()
			if !ok {
				return false, nil
			}
			if err := d.load(pr); err != nil {
				return false, err
			}
			continue // load may have re-partitioned; re-check
		}
		rec, ok, err := d.reader.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			d.finishPair()
			continue
		}
		jdx, t, err := decodeProbeRec(rec)
		if err != nil {
			return false, err
		}
		h := t.Hash(j.ProbeKeys)
		b := int32(h % uint64(s.buckets))
		for _, e := range d.table[h] {
			if e.wm > jdx || !j.keysEqual(e.t, t) {
				continue
			}
			if len(d.evicts) > 0 && evicted(d.evicts, b, e.idx, jdx) {
				continue
			}
			j.pending = append(j.pending, e.t.Concat(t))
		}
	}
	return true, nil
}
