package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/ws"
)

func TestServiceName(t *testing.T) {
	if got := ServiceName("F2", 1); got != "frag/F2#1" {
		t.Fatalf("ServiceName = %q", got)
	}
}

// runtimeFixture builds the plumbing for a single-fragment runtime.
func runtimeFixture(t *testing.T, root *physical.OpSpec, sink Sink) (*physical.Plan, RuntimeConfig) {
	t.Helper()
	clock := vtime.NewClock(time.Microsecond)
	net := simnet.NewNetwork(clock)
	net.AddNode("data1")
	frag := &physical.FragmentSpec{
		ID:             "F1",
		Root:           root,
		Instances:      []simnet.NodeID{"data1"},
		InitialWeights: []float64{1},
	}
	plan := &physical.Plan{Fragments: []*physical.FragmentSpec{frag}, Coordinator: "coord"}
	ctx := &ExecContext{
		Clock:    clock,
		Node:     net.Node("data1"),
		Meter:    vtime.NewMeter(clock),
		Store:    dataset.DemoSized(10, 10),
		Services: ws.NewRegistry(ws.Entropy{}),
		Costs:    Costs{},
		Buckets:  16,
	}
	return plan, RuntimeConfig{
		Plan: plan, Fragment: frag, Instance: 0, Ctx: ctx,
		Tr: transport.NewInProc(net), Node: "data1", Sink: sink,
	}
}

// nullSink discards rows.
type nullSink struct{ rows int }

func (s *nullSink) Send(relation.Tuple) error { s.rows++; return nil }
func (s *nullSink) Close() error              { return nil }

func TestRuntimeCompileErrors(t *testing.T) {
	cols := []relation.Column{{Name: "x", Type: relation.TInt}}
	cases := map[string]*physical.OpSpec{
		"bad kind": {Kind: physical.OpKind(99), OutCols: cols},
		"unknown exchange": {Kind: physical.KConsume, Exchange: "EZZZ",
			NumProducers: 1, OutCols: cols},
		"bad agg kind": {Kind: physical.KAggregate, OutCols: cols,
			AggKinds: []uint8{77}, AggArgs: []int{-1},
			Children: []*physical.OpSpec{{Kind: physical.KScan, Table: "protein_sequences", OutCols: cols}}},
		"bad filter pred": {Kind: physical.KFilter, OutCols: cols,
			Pred: []sqlparse.Comparison{{
				Left:  sqlparse.ColumnRef{Name: "nope"},
				Op:    sqlparse.OpEq,
				Right: sqlparse.IntLit{Value: 1},
			}},
			Children: []*physical.OpSpec{{Kind: physical.KScan, Table: "protein_sequences",
				OutCols: cols}}},
	}
	for name, spec := range cases {
		_, cfg := runtimeFixture(t, spec, &nullSink{})
		if _, err := NewFragmentRuntime(cfg); err == nil {
			t.Errorf("%s: compile succeeded", name)
		}
	}
}

func TestRuntimeRequiresSinkOrProducer(t *testing.T) {
	cols := []relation.Column{{Name: "ORF", Type: relation.TString}}
	spec := &physical.OpSpec{Kind: physical.KScan, Table: "protein_sequences", OutCols: cols}
	_, cfg := runtimeFixture(t, spec, nil)
	if _, err := NewFragmentRuntime(cfg); err == nil || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("err = %v", err)
	}
}

func TestRuntimeRunScanToSink(t *testing.T) {
	cols := []relation.Column{
		{Table: "protein_sequences", Name: "ORF", Type: relation.TString},
		{Table: "protein_sequences", Name: "sequence", Type: relation.TString},
	}
	spec := &physical.OpSpec{Kind: physical.KScan, Table: "protein_sequences", OutCols: cols}
	sink := &nullSink{}
	_, cfg := runtimeFixture(t, spec, sink)
	rt, err := NewFragmentRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.rows != 10 || rt.Produced() != 10 {
		t.Fatalf("rows = %d, produced = %d", sink.rows, rt.Produced())
	}
	if rt.Err() != nil {
		t.Fatalf("Err = %v", rt.Err())
	}
	if rt.QueuedTuples() != 0 || rt.ConsumedTuples() != 0 {
		t.Fatal("scan fragment has no consumers")
	}
}

// failSink rejects every row, forcing the driver down its mid-stream error
// return after stateful operators below the root have already buffered (and
// reserved) state.
type failSink struct{ err error }

func (s *failSink) Send(relation.Tuple) error { return s.err }
func (s *failSink) Close() error              { return nil }

// TestRuntimeErrorPathReleasesBudget pins the driver's close-on-error
// contract: a mid-stream failure (here the sink rejecting the first row)
// must still close the operator tree, or a budgeted aggregate's reserved
// bytes leak on mem_inflight_bytes for the rest of the process.
func TestRuntimeErrorPathReleasesBudget(t *testing.T) {
	scanCols := []relation.Column{
		{Table: "protein_sequences", Name: "ORF", Type: relation.TString},
	}
	outCols := []relation.Column{
		{Name: "ORF", Type: relation.TString},
		{Name: "n", Type: relation.TInt},
	}
	spec := &physical.OpSpec{
		Kind: physical.KAggregate, OutCols: outCols,
		GroupOrds: []int{0},
		AggKinds:  []uint8{uint8(logical.AggCount)},
		AggArgs:   []int{-1},
		Children: []*physical.OpSpec{{Kind: physical.KScan,
			Table: "protein_sequences", OutCols: scanCols}},
	}
	sinkErr := errors.New("sink rejected row")
	_, cfg := runtimeFixture(t, spec, &failSink{err: sinkErr})
	cfg.Ctx.Mem = storage.NewBudget(1 << 20) // large: buffer, never spill
	cfg.Ctx.Spill = storage.NewMemory()
	rt, err := NewFragmentRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.Run(context.Background()); !errors.Is(err, sinkErr) {
		t.Fatalf("Run = %v, want the sink error", err)
	}
	if n := cfg.Ctx.Mem.Inflight(); n != 0 {
		t.Fatalf("inflight = %d bytes after failed run, want 0 (operator tree not closed)", n)
	}
}

func TestRuntimeRunErrorPath(t *testing.T) {
	cols := []relation.Column{{Name: "x", Type: relation.TString}}
	spec := &physical.OpSpec{Kind: physical.KScan, Table: "missing_table", OutCols: cols}
	_, cfg := runtimeFixture(t, spec, &nullSink{})
	rt, err := NewFragmentRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if err := rt.Run(context.Background()); err == nil {
		t.Fatal("Run over a missing table succeeded")
	}
	if rt.Err() == nil {
		t.Fatal("Err not recorded")
	}
}
