package engine

import (
	"sync"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Streaming stored-table scans (DESIGN.md §5k). A stored table whose backend
// supports block-granular access is scanned batch-at-a-time: whole
// length-prefixed blocks are fetched, decoded into the scan's arena, and
// appended to the caller's pooled batch — the scan-side mirror of the
// operator vectorization, replacing the tuple-at-a-time runCursor path.
//
// Serial scans additionally read ahead: an async producer goroutine fetches
// up to Readahead blocks (default 2 — double buffering) in front of the
// decoder, reserving each in-flight block's bytes against the query's
// memory budget before issuing the read. Under budget pressure the producer
// shrinks to one block in flight — it waits for the decoder to drain
// everything already fetched before reading on — so a scan never amplifies
// a breach, and the transition lands on the adaptation timeline. Ownership
// of a reservation moves with the block: the producer reserves, whoever
// ends up holding the fetch (decoder, drain loop, or the producer itself on
// a teardown race) releases, so cancel-mid-readahead zeroes
// mem_inflight_bytes.
//
// Morsel-parallel scans skip the readahead goroutine: each worker claims
// the next unread block off a shared atomic counter and decodes it on its
// own arena, reserving the block against its own budget stripe for exactly
// the time it is being decoded (see parallel.go). Serial scans decode
// blocks strictly in run order, so R1 replay of a scan-rooted fragment
// regenerates a byte-identical stream; the scan's watermark is the block
// index.

// defaultReadahead is the in-flight block cap of a serial stored scan when
// ExecContext.Readahead is 0: one block being decoded, one being fetched.
const defaultReadahead = 2

// scanMetrics bundles the process-wide stored-scan counters.
type scanMetrics struct {
	blocksRead     *obs.Counter
	readaheadBytes *obs.Counter
}

func newScanMetrics() scanMetrics {
	o := obs.Default()
	return scanMetrics{
		blocksRead:     o.Counter(obs.MScanBlocksRead),
		readaheadBytes: o.Counter(obs.MScanReadaheadBytes),
	}
}

// recordScanEvent puts one readahead transition on the adaptation timeline.
func recordScanEvent(ctx *ExecContext, detail string) {
	obs.Default().Record(obs.Event{
		AtMs:     ctx.Clock.NowMs(),
		Kind:     obs.KindScan,
		Fragment: ctx.Fragment,
		Detail:   detail,
	})
}

// blockFetch is one block handed from the readahead producer to the
// decoder. size is the budget reservation travelling with it; whoever
// consumes the fetch releases it.
type blockFetch struct {
	data []byte
	// base is data's string aliasing (blockString) — the decoder carves
	// every string value of the block from it (see
	// relation.DecodeTupleShared).
	base string
	size int64
	err  error
}

// blockString aliases a block buffer as a string without copying. Safe only
// because stored scans read every block into a fresh buffer that is never
// written again: the decoder reads the bytes — through the string for value
// payloads, through the slice for frame headers — but nothing mutates them,
// so the usual string-immutability guarantee holds. Decoded string values
// share this backing, which removes both the per-block conversion memmove
// and the per-value copies from the scan's hot path.
func blockString(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(data), len(data))
}

// blockScan is the serial stored-scan state: block-granular fetch (sync or
// via the readahead producer) plus incremental decode. It is a
// single-goroutine object except for the producer it may own.
type blockScan struct {
	ctx   *ExecContext
	br    storage.BlockReader
	acct  *storage.BudgetAcct
	depth int // in-flight block cap; <= 0 reads synchronously
	met   scanMetrics

	// Decode state of the current block. base is the block payload's
	// string aliasing (blockString); every string value decoded from the
	// block is a substring of it, so the block costs no string allocations
	// beyond its own read buffer.
	rest    []byte
	base    string
	left    uint64
	arena   relation.Arena
	curSize int64 // reservation held for the current block
	sizes   []int // encoded sizes of the last fill's tuples (see fill)

	// Synchronous fetch state.
	next int

	// Readahead state (depth > 0). slots is the in-flight token pool: the
	// producer takes one per fetch, the decoder returns one per finished
	// block, and under pressure the producer reclaims them all to drain
	// the pipeline.
	started  bool
	out      chan blockFetch
	slots    chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	closed   bool
}

// newBlockScan wraps a block reader for one serial scan under ctx.
func newBlockScan(ctx *ExecContext, br storage.BlockReader) *blockScan {
	depth := ctx.Readahead
	if depth == 0 {
		depth = defaultReadahead
	}
	return &blockScan{ctx: ctx, br: br, acct: ctx.memAcct(), depth: depth, met: newScanMetrics()}
}

// reader exposes the underlying BlockReader for the morsel-parallel path,
// which claims blocks itself instead of driving this scan (see
// sharedSource). Only valid before the first next/fill call.
func (b *blockScan) reader() storage.BlockReader { return b.br }

// start launches the readahead producer. Lazy — called on the first fetch —
// so a scan that is immediately upgraded to morsel-parallel mode never
// spawns it.
func (b *blockScan) start() {
	b.started = true
	if b.depth <= 0 {
		return
	}
	b.out = make(chan blockFetch, b.depth)
	b.slots = make(chan struct{}, b.depth)
	for i := 0; i < b.depth; i++ {
		b.slots <- struct{}{}
	}
	b.stop = make(chan struct{})
	b.wg.Add(1)
	go b.produce()
}

// produce is the readahead goroutine: fetch blocks in order, each reserved
// against the budget before the read, at most depth in flight — shrinking
// to one while the budget is breached.
func (b *blockScan) produce() {
	defer b.wg.Done()
	defer close(b.out)
	shrunk := false
	for i := 0; i < b.br.Blocks(); i++ {
		select {
		case <-b.slots:
		case <-b.stop:
			return
		}
		if b.acct.Over() && b.depth > 1 {
			// Reclaim every other token: blocks until the decoder has
			// finished everything already fetched, leaving one in flight
			// at a time until pressure clears.
			for reclaimed := 0; reclaimed < b.depth-1; reclaimed++ {
				select {
				case <-b.slots:
				case <-b.stop:
					return
				}
			}
			for j := 0; j < b.depth-1; j++ {
				b.slots <- struct{}{}
			}
			if !shrunk {
				shrunk = true
				recordScanEvent(b.ctx, "readahead shrunk to one in-flight block: memory budget breached")
			}
		} else if shrunk && !b.acct.Over() {
			shrunk = false
			recordScanEvent(b.ctx, "readahead restored: memory pressure cleared")
		}
		size := int64(b.br.BlockSize(i))
		b.acct.Reserve(size)
		// Every block gets a fresh buffer — the string aliasing below and
		// the decoded values sharing it depend on the buffer never being
		// written again.
		data, err := b.br.ReadBlock(i, nil)
		b.met.blocksRead.Inc()
		b.met.readaheadBytes.Add(size)
		var base string
		if err == nil {
			base = blockString(data)
		}
		select {
		case b.out <- blockFetch{data: data, base: base, size: size, err: err}:
		case <-b.stop:
			b.acct.Release(size)
			return
		}
		if err != nil {
			return
		}
	}
}

// finishBlock releases the reservation of the fully decoded current block
// and, in readahead mode, returns its in-flight token.
func (b *blockScan) finishBlock() {
	if b.curSize > 0 {
		b.acct.Release(b.curSize)
		b.curSize = 0
		if b.out != nil {
			b.slots <- struct{}{}
		}
	}
}

// advance fetches the next block and primes the decode state; ok is false
// at end of table.
func (b *blockScan) advance() (ok bool, err error) {
	if !b.started {
		b.start()
	}
	b.finishBlock()
	var f blockFetch
	if b.out != nil {
		var live bool
		f, live = <-b.out
		if !live {
			return false, nil
		}
		if f.err != nil {
			b.acct.Release(f.size)
			return false, f.err
		}
	} else {
		if b.next >= b.br.Blocks() {
			return false, nil
		}
		size := int64(b.br.BlockSize(b.next))
		b.acct.Reserve(size)
		data, err := b.br.ReadBlock(b.next, nil)
		b.met.blocksRead.Inc()
		if err != nil {
			b.acct.Release(size)
			return false, err
		}
		b.next++
		f = blockFetch{data: data, base: blockString(data), size: size}
	}
	n, rest, err := relation.TupleCount(f.data)
	if err != nil {
		b.acct.Release(f.size)
		return false, qerr.Storage("scan block", err)
	}
	b.curSize = f.size
	b.left, b.rest = n, rest
	b.base = f.base
	return true, nil
}

// next decodes the next tuple; ok is false at end of table. Decoded tuples
// carve their value slots from the scan's arena and their strings from the
// block's immutable buffer — blocks are never overwritten, so tuples stay
// valid indefinitely.
func (b *blockScan) nextTuple() (relation.Tuple, bool, error) {
	for b.left == 0 {
		ok, err := b.advance()
		if err != nil || !ok {
			return nil, false, err
		}
	}
	t, rest, err := relation.DecodeTupleShared(&b.arena, b.base, b.rest)
	if err != nil {
		return nil, false, qerr.Storage("scan tuple", err)
	}
	b.rest = rest
	b.left--
	return t, true, nil
}

// fill appends decoded tuples to dst until it is full or the table ends,
// crossing block boundaries as needed, decoding each block's run of tuples
// with one fused relation.DecodeTuplesShared call. When the cost model has a
// byte-dependent component, sizes[:n] afterwards holds the encoded byte size
// of each appended tuple — measured by the decode's pointer advance, the
// input chargeScanBatch would otherwise recompute by walking every value;
// with a flat scan cost the bookkeeping is skipped entirely.
func (b *blockScan) fill(dst *relation.Batch) (int, error) {
	dst.Rewind()
	b.sizes = b.sizes[:0]
	needSizes := b.ctx.Costs.ScanByteMs != 0
	for !dst.Full() {
		if b.left == 0 {
			ok, err := b.advance()
			if err != nil {
				return dst.Len(), err
			}
			if !ok {
				break
			}
			continue
		}
		var sizes []int
		if needSizes {
			if b.sizes == nil {
				b.sizes = make([]int, 0, dst.Cap())
			}
			sizes = b.sizes
		}
		var err error
		b.rest, b.left, sizes, err = relation.DecodeTuplesShared(&b.arena, b.base, b.rest, b.left, dst, sizes)
		if err != nil {
			return dst.Len(), qerr.Storage("scan tuple", err)
		}
		if needSizes {
			b.sizes = sizes
		}
	}
	return dst.Len(), nil
}

// close tears the scan down: stop the producer, drain its in-flight fetches
// (releasing the reservation travelling with each), release the current
// block, and close the reader. Idempotent, and safe mid-readahead — after
// it returns, the scan holds no reservations and no goroutine.
func (b *blockScan) close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if b.out != nil {
		b.stopOnce.Do(func() { close(b.stop) })
		for f := range b.out {
			b.acct.Release(f.size)
		}
		b.wg.Wait()
	}
	if b.curSize > 0 {
		b.acct.Release(b.curSize)
		b.curSize = 0
	}
	b.rest, b.left = nil, 0
	return b.br.Close()
}

// chargeScanBatch charges the scan cost of one decoded chunk against ctx:
// one bundled charge when the byte-dependent component is off, a per-tuple
// cost vector otherwise. sizes, when non-nil, carries the chunk's encoded
// tuple sizes as measured by the decoder's pointer advance — exactly
// Tuple.ByteSize without re-walking every value; a nil sizes falls back to
// the walk. costs is a reusable scratch buffer threaded by the caller.
func chargeScanBatch(ctx *ExecContext, chunk []relation.Tuple, sizes []int, costs *[]float64) {
	n := len(chunk)
	if n == 0 {
		return
	}
	if ctx.Costs.ScanByteMs == 0 {
		ctx.chargeN(ctx.Costs.ScanMs, n)
		return
	}
	if cap(*costs) < n {
		*costs = make([]float64, n)
	}
	cs := (*costs)[:n]
	if sizes != nil {
		for i, sz := range sizes[:n] {
			cs[i] = ctx.Costs.ScanMs + ctx.Costs.ScanByteMs*float64(sz)
		}
	} else {
		for i, t := range chunk {
			cs[i] = ctx.Costs.ScanMs + ctx.Costs.ScanByteMs*float64(t.ByteSize())
		}
	}
	ctx.chargeEach(cs)
}
