package engine

import (
	"repro/internal/relation"
	"repro/internal/storage"
)

// topNMaxN caps the LIMIT under which the planner fuses ORDER BY + LIMIT
// into a bounded-heap TopN instead of a full (possibly external) sort:
// beyond it the retained state stops being meaningfully "bounded" and the
// external sort's spill governance is the better tool.
const topNMaxN = 64 << 10

// TopN replaces a Sort feeding a Limit when N is small: it retains only the
// N smallest tuples (under the sort ordering) in a bounded max-heap while
// consuming its input, then emits them in order. Output is byte-identical
// to stable-sort-then-limit — ties are broken by input arrival order, which
// is exactly what a stable sort preserves — so M1 monitoring windows and R1
// replay see the same stream either way. State is bounded by N tuples and
// accounted against the memory budget; unlike Sort it never needs to spill.
type TopN struct {
	Child Iterator
	Ords  []int
	Desc  []bool
	N     int64

	ctx    *ExecContext
	acct   *storage.BudgetAcct
	heap   []topEntry // max-heap: root is the worst retained tuple
	seq    int64
	held   int64 // bytes reserved for retained tuples
	sorted []relation.Tuple
	pos    int
	done   bool
}

// topEntry pairs a retained tuple with its input arrival index, the
// tie-breaker that reproduces stable-sort order.
type topEntry struct {
	t   relation.Tuple
	seq int64
}

// Open implements Iterator.
func (o *TopN) Open(ctx *ExecContext) error {
	o.ctx = ctx
	o.acct = ctx.memAcct()
	return o.Child.Open(ctx)
}

// after reports whether a sorts after b in the output ordering (keys, then
// arrival order) — the max-heap's "greater".
func (o *TopN) after(a, b topEntry) bool {
	for i, ord := range o.Ords {
		cmp := a.t[ord].Compare(b.t[ord])
		if o.Desc[i] {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp > 0
		}
	}
	return a.seq > b.seq
}

// push inserts e, growing the heap.
func (o *TopN) push(e topEntry) {
	o.heap = append(o.heap, e)
	i := len(o.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !o.after(o.heap[i], o.heap[p]) {
			break
		}
		o.heap[i], o.heap[p] = o.heap[p], o.heap[i]
		i = p
	}
}

// siftDown restores the heap after the root changed.
func (o *TopN) siftDown(i int) {
	n := len(o.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && o.after(o.heap[l], o.heap[big]) {
			big = l
		}
		if r < n && o.after(o.heap[r], o.heap[big]) {
			big = r
		}
		if big == i {
			return
		}
		o.heap[i], o.heap[big] = o.heap[big], o.heap[i]
		i = big
	}
}

// consume drains the child, retaining the top N.
func (o *TopN) consume() error {
	for {
		t, ok, err := o.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		o.ctx.chargeFlat(o.ctx.Costs.SortMs)
		e := topEntry{t: t, seq: o.seq}
		o.seq++
		if int64(len(o.heap)) < o.N {
			o.push(e)
			sz := sortTupleBytes(t)
			o.held += sz
			o.acct.Reserve(sz)
			continue
		}
		if !o.after(e, o.heap[0]) {
			// e beats the current worst: swap reservations and replace the
			// root.
			oldSz, newSz := sortTupleBytes(o.heap[0].t), sortTupleBytes(t)
			o.acct.Reserve(newSz)
			o.acct.Release(oldSz)
			o.held += newSz - oldSz
			o.heap[0] = e
			o.siftDown(0)
		}
	}
	// Pop worst-first into the tail of the output slice: what remains is
	// ascending output order.
	o.sorted = make([]relation.Tuple, len(o.heap))
	for i := len(o.heap) - 1; i >= 0; i-- {
		o.sorted[i] = o.heap[0].t
		last := len(o.heap) - 1
		o.heap[0] = o.heap[last]
		o.heap = o.heap[:last]
		if len(o.heap) > 0 {
			o.siftDown(0)
		}
	}
	o.heap = nil
	return nil
}

// Next implements Iterator: the first call consumes the whole input.
func (o *TopN) Next() (relation.Tuple, bool, error) {
	if !o.done {
		if err := o.consume(); err != nil {
			return nil, false, err
		}
		o.done = true
	}
	if o.pos >= len(o.sorted) {
		return nil, false, nil
	}
	t := o.sorted[o.pos]
	o.pos++
	return t, true, nil
}

// Close implements Iterator: retained-state reservations are released here,
// so an aborted query zeroes mem_inflight_bytes.
func (o *TopN) Close() error {
	if o.held > 0 {
		o.acct.Release(o.held)
		o.held = 0
	}
	o.heap = nil
	o.sorted = nil
	return o.Child.Close()
}
