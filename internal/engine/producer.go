package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// DefaultBufferTuples is how many tuples a producer batches per buffer; the
// paper ships tuple blocks over SOAP/HTTP and reports one M2 event per
// buffer sent.
const DefaultBufferTuples = 50

// DefaultCheckpointEvery is the checkpoint interval per consumer stream, in
// tuples (paper §3.1: producers "insert checkpoint tuples into the set of
// data tuples they send").
const DefaultCheckpointEvery = 50

// logEntry is one recovery-log record: a tuple that has been sent but has
// not finished processing at its consumer (or constitutes operator state).
type logEntry struct {
	tuple  relation.Tuple
	bucket int32
}

// Producer is the sending half of an exchange: it routes the fragment's
// output tuples to the consumer instances under the current distribution
// policy, batches them into buffers, inserts checkpoints, and keeps every
// unacknowledged tuple in a per-consumer recovery log. The log is the
// substrate of retrospective adaptation: it contains, at any point, the
// in-transit tuples plus the tuples making up downstream operator state
// (paper §3.1, Response).
type Producer struct {
	Exchange string
	// Fragment and Instance identify the producing subplan clone.
	Fragment string
	Instance int
	// ConsumerFragment names the downstream fragment; Consumers addresses
	// its instances.
	ConsumerFragment string
	Consumers        []Addr
	// Stateful marks the exchange as feeding operator state (join build
	// side): acknowledgements are not expected and the log retains
	// everything until Release.
	Stateful bool
	// Est is the optimiser's estimate of total tuples, for progress
	// replies.
	Est int64

	policy DistPolicy
	tr     transport.Transport
	node   simnet.NodeID
	ctx    *ExecContext

	bufferTuples    int
	checkpointEvery int

	mu        sync.Mutex
	sendCond  *sync.Cond
	paused    bool
	cancelErr error
	epoch     int
	buffers   [][]bufEntry
	logs      []map[int64]logEntry
	nextSeq   []int64
	sinceCkpt []int
	routed    int64
	driverEOS bool
	eosSent   bool
	// buffersSent counts transmitted buffers, for overhead reporting.
	buffersSent int64
	// routeConsumers/routeBuckets are SendBatch's reusable routing scratch.
	routeConsumers []int
	routeBuckets   []int32

	obsRouted  *obs.Counter
	obsBuffers *obs.Counter
}

type bufEntry struct {
	seq    int64
	bucket int32
	tuple  relation.Tuple
}

// ProducerConfig collects construction parameters.
type ProducerConfig struct {
	Exchange         string
	Fragment         string
	Instance         int
	ConsumerFragment string
	Consumers        []Addr
	Stateful         bool
	Est              int64
	Policy           DistPolicy
	Transport        transport.Transport
	Node             simnet.NodeID
	BufferTuples     int
	CheckpointEvery  int
}

// NewProducer builds a producer.
func NewProducer(cfg ProducerConfig) *Producer {
	n := len(cfg.Consumers)
	p := &Producer{
		Exchange:         cfg.Exchange,
		Fragment:         cfg.Fragment,
		Instance:         cfg.Instance,
		ConsumerFragment: cfg.ConsumerFragment,
		Consumers:        cfg.Consumers,
		Stateful:         cfg.Stateful,
		Est:              cfg.Est,
		policy:           cfg.Policy,
		tr:               cfg.Transport,
		node:             cfg.Node,
		bufferTuples:     cfg.BufferTuples,
		checkpointEvery:  cfg.CheckpointEvery,
		buffers:          make([][]bufEntry, n),
		logs:             make([]map[int64]logEntry, n),
		nextSeq:          make([]int64, n),
		sinceCkpt:        make([]int, n),
		obsRouted:        obs.Default().Counter(obs.Label(obs.MExchangeTuplesRouted, "exchange", cfg.Exchange)),
		obsBuffers:       obs.Default().Counter(obs.Label(obs.MExchangeBuffersSent, "exchange", cfg.Exchange)),
	}
	if p.bufferTuples <= 0 {
		p.bufferTuples = DefaultBufferTuples
	}
	if p.checkpointEvery <= 0 {
		p.checkpointEvery = DefaultCheckpointEvery
	}
	for i := range p.logs {
		p.logs[i] = make(map[int64]logEntry)
		p.nextSeq[i] = 1
	}
	p.sendCond = sync.NewCond(&p.mu)
	return p
}

// Bind attaches the runtime context (set once by the fragment runtime
// before the driver starts).
func (p *Producer) Bind(ctx *ExecContext) { p.ctx = ctx }

// Send routes one tuple. It blocks while the producer is paused by the
// control plane and returns the cancellation cause if the exchange is
// canceled (before or while blocked).
func (p *Producer) Send(t relation.Tuple) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.paused && p.cancelErr == nil {
		p.ctx.Meter.Flush()
		p.sendCond.Wait()
	}
	if p.cancelErr != nil {
		return p.cancelErr
	}
	if p.ctx != nil && p.ctx.Costs.LogAppendMs > 0 {
		p.ctx.chargeFlat(p.ctx.Costs.LogAppendMs)
	}
	consumer, bucket := p.policy.Route(t)
	p.appendLocked(consumer, bucket, t)
	p.routed++
	if len(p.buffers[consumer]) >= p.bufferTuples {
		return p.flushLocked(consumer, false)
	}
	return nil
}

// SendBatch routes a whole batch of tuples under one producer-lock and one
// policy-lock acquisition. Everything else — per-tuple sequence numbers,
// recovery-log entries, buffer boundaries, checkpoint insertion, and the
// per-buffer M2 monitoring events — is identical to len(ts) sequential Send
// calls, so the R1/R2 redistribution protocols and the monitoring cadence
// are unaffected by batching. It blocks while the producer is paused.
func (p *Producer) SendBatch(ts []relation.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.paused && p.cancelErr == nil {
		p.ctx.Meter.Flush()
		p.sendCond.Wait()
	}
	if p.cancelErr != nil {
		return p.cancelErr
	}
	if p.ctx != nil && p.ctx.Costs.LogAppendMs > 0 {
		p.ctx.chargeFlat(p.ctx.Costs.LogAppendMs * float64(len(ts)))
	}
	if cap(p.routeConsumers) < len(ts) {
		p.routeConsumers = make([]int, len(ts))
		p.routeBuckets = make([]int32, len(ts))
	}
	consumers := p.routeConsumers[:len(ts)]
	buckets := p.routeBuckets[:len(ts)]
	p.policy.RouteBatch(ts, consumers, buckets)
	for i, t := range ts {
		consumer := consumers[i]
		p.appendLocked(consumer, buckets[i], t)
		p.routed++
		if len(p.buffers[consumer]) >= p.bufferTuples {
			if err := p.flushLocked(consumer, false); err != nil {
				return err
			}
		}
	}
	p.obsRouted.Add(int64(len(ts)))
	return nil
}

// appendLocked assigns the next stream sequence and records the tuple in
// buffer and recovery log.
func (p *Producer) appendLocked(consumer int, bucket int32, t relation.Tuple) {
	seq := p.nextSeq[consumer]
	p.nextSeq[consumer]++
	p.buffers[consumer] = append(p.buffers[consumer], bufEntry{seq: seq, bucket: bucket, tuple: t})
	p.logs[consumer][seq] = logEntry{tuple: t, bucket: bucket}
}

// flushLocked transmits consumer's pending buffer, inserting a checkpoint
// when the interval is due, and emits the M2 monitoring event.
func (p *Producer) flushLocked(consumer int, replay bool) error {
	buf := p.buffers[consumer]
	if len(buf) == 0 {
		return nil
	}
	p.buffers[consumer] = nil
	msg := &transport.Message{
		Kind:        transport.KindData,
		Exchange:    p.Exchange,
		ProducerIdx: p.Instance,
		ConsumerIdx: consumer,
		Epoch:       p.epoch,
		StartSeq:    buf[0].seq,
		Replay:      replay,
	}
	msg.Tuples = make([]relation.Tuple, len(buf))
	hasBuckets := false
	for i, e := range buf {
		msg.Tuples[i] = e.tuple
		if e.bucket >= 0 {
			hasBuckets = true
		}
	}
	if hasBuckets {
		msg.Buckets = make([]int32, len(buf))
		for i, e := range buf {
			msg.Buckets[i] = e.bucket
		}
	}
	if !replay {
		p.sinceCkpt[consumer] += len(buf)
		if p.sinceCkpt[consumer] >= p.checkpointEvery {
			msg.Checkpoint = buf[len(buf)-1].seq
			p.sinceCkpt[consumer] = 0
		}
	}
	addr := p.Consumers[consumer]
	cost, err := p.tr.Send(p.node, addr.Node, addr.Service, msg)
	if err != nil {
		return qerr.Transport(fmt.Sprintf("exchange %s flush to %s", p.Exchange, addr.Service), err)
	}
	p.buffersSent++
	p.obsBuffers.Inc()
	if p.ctx != nil && p.ctx.Monitor != nil {
		p.ctx.Monitor.EmitM2(M2Event{
			Exchange:         p.Exchange,
			Fragment:         p.Fragment,
			Instance:         p.Instance,
			Node:             p.node,
			ConsumerFragment: p.ConsumerFragment,
			ConsumerInstance: consumer,
			ConsumerNode:     addr.Node,
			SendCostMs:       cost,
			TupleCount:       len(msg.Tuples),
		})
	}
	return nil
}

// Close flushes everything and marks the driver done; the exchange is
// closed towards consumers as soon as the recovery log permits. A canceled
// exchange refuses to close normally — no EOS must reach consumers that the
// cancellation is tearing down.
func (p *Producer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancelErr != nil {
		return p.cancelErr
	}
	for i := range p.buffers {
		if err := p.flushLocked(i, false); err != nil {
			return err
		}
	}
	p.driverEOS = true
	if err := p.finalizeCheckpointsLocked(); err != nil {
		return err
	}
	return p.maybeFinishLocked()
}

// finalizeCheckpointsLocked closes the open checkpoint interval of every
// stream once the driver is done: without it the tail tuples would never be
// acknowledged and the recovery log would never drain.
func (p *Producer) finalizeCheckpointsLocked() error {
	if !p.driverEOS || p.Stateful {
		return nil
	}
	for c := range p.Consumers {
		if p.sinceCkpt[c] == 0 || p.nextSeq[c] == 1 {
			continue
		}
		p.sinceCkpt[c] = 0
		msg := &transport.Message{
			Kind:        transport.KindData,
			Exchange:    p.Exchange,
			ProducerIdx: p.Instance,
			ConsumerIdx: c,
			Epoch:       p.epoch,
			Checkpoint:  p.nextSeq[c] - 1,
		}
		addr := p.Consumers[c]
		if _, err := p.tr.Send(p.node, addr.Node, addr.Service, msg); err != nil {
			return qerr.Transport(fmt.Sprintf("exchange %s checkpoint to %s", p.Exchange, addr.Service), err)
		}
	}
	return nil
}

// maybeFinishLocked sends the exchange-complete signal when allowed. For a
// stateful exchange the normal flow ends with the driver (the consumer's
// build phase must terminate; the log stays for replay). For a stateless
// exchange the signal is deferred until the recovery log drains, because
// logged tuples may yet be recalled and re-routed to consumers that would
// otherwise have finished.
func (p *Producer) maybeFinishLocked() error {
	if !p.driverEOS || p.eosSent {
		return nil
	}
	if !p.Stateful {
		for _, log := range p.logs {
			if len(log) > 0 {
				return nil
			}
		}
	}
	p.eosSent = true
	for i, addr := range p.Consumers {
		msg := &transport.Message{
			Kind:        transport.KindEOS,
			Exchange:    p.Exchange,
			ProducerIdx: p.Instance,
			ConsumerIdx: i,
		}
		if _, err := p.tr.Send(p.node, addr.Node, addr.Service, msg); err != nil {
			return qerr.Transport(fmt.Sprintf("exchange %s EOS to %s", p.Exchange, addr.Service), err)
		}
	}
	return nil
}

// Cancel aborts the exchange: any Send/SendBatch blocked on a pause — and
// every future one — returns cause immediately, and Close becomes a no-op
// that reports cause instead of signalling EOS. First cause wins; Cancel is
// idempotent. This is how a context cancellation reaches a driver parked
// inside a paused exchange mid-adaptation.
func (p *Producer) Cancel(cause error) {
	if cause == nil {
		cause = qerr.ErrCanceled
	}
	p.mu.Lock()
	if p.cancelErr == nil {
		p.cancelErr = cause
		p.sendCond.Broadcast()
	}
	p.mu.Unlock()
}

// HandleAck releases acknowledged log entries (stateless exchanges only;
// stateful logs persist until Release). Sequences listed in Except were
// discarded by a recall: they stay logged until the resend step migrates
// them to their new consumer.
func (p *Producer) HandleAck(msg *transport.Message) {
	if p.Stateful {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var keep map[int64]bool
	if len(msg.Except) > 0 {
		keep = make(map[int64]bool, len(msg.Except))
		for _, s := range msg.Except {
			keep[s] = true
		}
	}
	log := p.logs[msg.ConsumerIdx]
	for seq := range log {
		if seq <= msg.Checkpoint && !keep[seq] {
			delete(log, seq)
		}
	}
	_ = p.maybeFinishLocked()
}

// Pause stops the normal flow after flushing pending buffers, so that when
// it returns every routed tuple is at (or on the wire to) its consumer and
// the retrospective protocol sees a consistent picture.
func (p *Producer) Pause() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.buffers {
		if err := p.flushLocked(i, false); err != nil {
			return err
		}
	}
	p.paused = true
	return nil
}

// Resume restarts the normal flow.
func (p *Producer) Resume() {
	p.mu.Lock()
	p.paused = false
	p.epoch++
	p.sendCond.Broadcast()
	p.mu.Unlock()
}

// SetWeights installs a new distribution vector (prospective, R2).
func (p *Producer) SetWeights(w []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.policy.SetWeights(w)
	return err
}

// SetOwnerMap installs a new bucket→owner map (hash policies).
func (p *Producer) SetOwnerMap(m []int32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policy.SetOwnerMap(m)
}

// Weights reports the current distribution vector.
func (p *Producer) Weights() []float64 { return p.policy.Weights() }

// Progress reports routed tuples and the optimiser's estimate.
func (p *Producer) Progress() (routed, est int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.routed, p.Est
}

// Replay retransmits every logged tuple belonging to the given buckets,
// routing by the (already updated) owner map and marking the buffers as
// replay so consumers rebuild operator state from them. Entries migrate to
// the new owner's log under fresh sequence numbers. Call while paused.
func (p *Producer) Replay(buckets []int32) (int, error) {
	set := make(map[int32]bool, len(buckets))
	for _, b := range buckets {
		set[b] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Snapshot every affected entry across all logs BEFORE migrating any:
	// entries appended to the new owner's log during migration must not be
	// replayed a second time when the iteration reaches that log, or the
	// rebuilt state would contain duplicates.
	type movedEntry struct {
		consumer int
		seq      int64
		e        logEntry
	}
	var pending []movedEntry
	for consumer, log := range p.logs {
		for seq, e := range log {
			if set[e.bucket] {
				pending = append(pending, movedEntry{consumer: consumer, seq: seq, e: e})
			}
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].consumer != pending[j].consumer {
			return pending[i].consumer < pending[j].consumer
		}
		return pending[i].seq < pending[j].seq
	})
	moved := 0
	for _, m := range pending {
		delete(p.logs[m.consumer], m.seq)
		target := p.policy.RouteBucket(m.e.bucket)
		p.appendLocked(target, m.e.bucket, m.e.tuple)
		moved++
		if len(p.buffers[target]) >= p.bufferTuples {
			if err := p.flushLocked(target, true); err != nil {
				return moved, err
			}
		}
	}
	for i := range p.buffers {
		if err := p.flushLocked(i, true); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// Resend re-routes previously discarded tuples (reported by a consumer
// recall) under the current policy as normal flow. Call while paused.
func (p *Producer) Resend(fromConsumer int, seqs []int64) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	log := p.logs[fromConsumer]
	sorted := append([]int64(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 0
	for _, seq := range sorted {
		e, ok := log[seq]
		if !ok {
			return n, fmt.Errorf("engine: resend of unknown seq %d on %s/consumer %d", seq, p.Exchange, fromConsumer)
		}
		delete(log, seq)
		var target int
		if e.bucket >= 0 {
			target = p.policy.RouteBucket(e.bucket)
		} else {
			target, _ = p.policy.Route(e.tuple)
		}
		p.appendLocked(target, e.bucket, e.tuple)
		n++
		if len(p.buffers[target]) >= p.bufferTuples {
			if err := p.flushLocked(target, false); err != nil {
				return n, err
			}
		}
	}
	for i := range p.buffers {
		if err := p.flushLocked(i, false); err != nil {
			return n, err
		}
	}
	if err := p.finalizeCheckpointsLocked(); err != nil {
		return n, err
	}
	_ = p.maybeFinishLocked()
	return n, nil
}

// Release drops a stateful exchange's log at query end.
func (p *Producer) Release() {
	p.mu.Lock()
	for i := range p.logs {
		p.logs[i] = make(map[int64]logEntry)
	}
	p.mu.Unlock()
}

// Stats reports counters for the overhead experiments.
func (p *Producer) Stats() (routed int64, buffers int64, logSize int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	size := 0
	for _, l := range p.logs {
		size += len(l)
	}
	return p.routed, p.buffersSent, size
}

// ConsumerTupleCounts reports how many tuples were routed to each consumer
// (cumulative, including resends); the paper reports the slow/fast ratio in
// its overhead analysis.
func (p *Producer) ConsumerTupleCounts() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	counts := make([]int64, len(p.nextSeq))
	for i, next := range p.nextSeq {
		counts[i] = next - 1
	}
	return counts
}
