package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// DefaultBufferTuples is how many tuples a producer batches per buffer; the
// paper ships tuple blocks over SOAP/HTTP and reports one M2 event per
// buffer sent.
const DefaultBufferTuples = 50

// DefaultCheckpointEvery is the checkpoint interval per consumer stream, in
// tuples (paper §3.1: producers "insert checkpoint tuples into the set of
// data tuples they send").
const DefaultCheckpointEvery = 50

// logEntry is one recovery-log record: a tuple that has been sent but has
// not finished processing at its consumer (or constitutes operator state).
type logEntry struct {
	tuple  relation.Tuple
	bucket int32
}

type bufEntry struct {
	seq    int64
	bucket int32
	tuple  relation.Tuple
}

// producerShard is the per-consumer slice of the producer's mutable state:
// the pending buffer, the recovery log, the stream sequence counter and the
// checkpoint interval position. Concurrent senders routing to different
// consumers touch disjoint shards and never contend; everything that must
// observe a consistent cross-shard picture (Pause, Replay, Resend, Close)
// goes through the flow barrier instead.
type producerShard struct {
	mu        sync.Mutex
	buf       []bufEntry
	log       map[int64]logEntry
	nextSeq   int64
	sinceCkpt int
	// dead marks the consumer instance as crash-stopped or detached:
	// flushes drop the buffer (the log keeps the entries for failover
	// replay), and checkpoints/EOS are not addressed to it.
	dead bool
}

// flowBarrier coordinates the producer's data plane (Send/SendBatch, from
// one driver or many morsel workers) with its control plane. Data-plane
// calls enter as "active" and are blocked while the producer is paused or a
// control operation holds the barrier exclusively; acknowledgements enter
// too but are blocked only by exclusive sections — acks must keep flowing
// during an R1 pause, or a downstream quiesce waiting on a worker whose ack
// is in flight would deadlock. Exclusive acquisition waits for every active
// call to drain, giving Pause/Replay/Resend/Close the same atomicity the
// old single producer mutex provided: no ack can delete a log entry between
// a replay's snapshot and its migration, and no sender can slip a tuple
// into a half-flushed picture.
type flowBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	active    int
	paused    bool
	exclusive bool
	cancelErr error
}

func (b *flowBarrier) init() { b.cond = sync.NewCond(&b.mu) }

// enter admits a data-plane call, blocking while paused or exclusive. The
// caller's meter is flushed before parking so the modelled cost of already
// processed tuples is fully paid (mirroring the consumer-side convention).
func (b *flowBarrier) enter(m *vtime.Meter) error {
	b.mu.Lock()
	for (b.paused || b.exclusive) && b.cancelErr == nil {
		if m != nil {
			m.Flush()
		}
		b.cond.Wait()
	}
	if b.cancelErr != nil {
		err := b.cancelErr
		b.mu.Unlock()
		return err
	}
	b.active++
	b.mu.Unlock()
	return nil
}

// enterAck admits an acknowledgement, blocking only on exclusive sections.
func (b *flowBarrier) enterAck() {
	b.mu.Lock()
	for b.exclusive {
		b.cond.Wait()
	}
	b.active++
	b.mu.Unlock()
}

func (b *flowBarrier) exit() {
	b.mu.Lock()
	b.active--
	if b.active == 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// lockExclusive blocks new entries and waits until the data plane drains.
func (b *flowBarrier) lockExclusive() {
	b.mu.Lock()
	for b.exclusive {
		b.cond.Wait()
	}
	b.exclusive = true
	for b.active > 0 {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *flowBarrier) unlockExclusive() {
	b.mu.Lock()
	b.exclusive = false
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *flowBarrier) setPaused(v bool) {
	b.mu.Lock()
	b.paused = v
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *flowBarrier) cancel(cause error) {
	b.mu.Lock()
	if b.cancelErr == nil {
		b.cancelErr = cause
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

func (b *flowBarrier) err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cancelErr
}

// routeScratch is SendBatch's pooled routing scratch.
type routeScratch struct {
	consumers []int
	buckets   []int32
}

var routeScratchPool = sync.Pool{New: func() any { return new(routeScratch) }}

// sendFrame is a pooled outgoing-buffer frame: the message header plus the
// tuple and bucket slices it points at. Both transports release the frame
// synchronously — the in-proc transport runs the handler before Send
// returns, and the TCP transport fully encodes the message into its own
// wire buffer — so the frame is reusable as soon as flushShardLocked is
// done with it.
type sendFrame struct {
	msg     transport.Message
	tuples  []relation.Tuple
	buckets []int32
}

var framePool = sync.Pool{New: func() any { return new(sendFrame) }}

// Producer is the sending half of an exchange: it routes the fragment's
// output tuples to the consumer instances under the current distribution
// policy, batches them into buffers, inserts checkpoints, and keeps every
// unacknowledged tuple in a per-consumer recovery log. The log is the
// substrate of retrospective adaptation: it contains, at any point, the
// in-transit tuples plus the tuples making up downstream operator state
// (paper §3.1, Response).
//
// State is sharded per consumer so that concurrent morsel workers calling
// SendBatch serialize only when routing to the same consumer; routed and
// buffer counters are atomic (exact, no sampling), and the control plane
// takes the flow barrier to retain the R1/R2 protocol semantics of the
// previous single-mutex design.
type Producer struct {
	Exchange string
	// Fragment and Instance identify the producing subplan clone.
	Fragment string
	Instance int
	// ConsumerFragment names the downstream fragment; Consumers addresses
	// its instances.
	ConsumerFragment string
	Consumers        []Addr
	// Stateful marks the exchange as feeding operator state (join build
	// side): acknowledgements are not expected and the log retains
	// everything until Release.
	Stateful bool
	// Est is the optimiser's estimate of total tuples, for progress
	// replies.
	Est int64

	policy DistPolicy
	tr     transport.Transport
	node   simnet.NodeID
	ctx    *ExecContext

	bufferTuples    int
	checkpointEvery int

	// ft enables the elastic-failover behaviour: a flush that fails
	// because the TARGET node died marks the shard dead and reports the
	// peer through onPeerDown instead of failing the driver; the logged
	// tuples wait for the session's failover to replay them onto
	// survivors. holdback additionally defers buffer-full flushes so the
	// fragment runtime can flush outputs and acknowledge the inputs they
	// derive from in one commit section — the exactly-once invariant of
	// crash recovery (DESIGN.md §5h).
	ft         bool
	holdback   bool
	onPeerDown func(simnet.NodeID)

	barrier flowBarrier
	shards  []*producerShard

	routed      atomic.Int64
	buffersSent atomic.Int64
	epoch       atomic.Int64

	// finMu guards the end-of-stream protocol (driver EOS seen, EOS sent).
	finMu     sync.Mutex
	driverEOS bool
	eosSent   bool

	obsRouted  *obs.Counter
	obsBuffers *obs.Counter
}

// ProducerConfig collects construction parameters.
type ProducerConfig struct {
	Exchange         string
	Fragment         string
	Instance         int
	ConsumerFragment string
	Consumers        []Addr
	Stateful         bool
	Est              int64
	Policy           DistPolicy
	Transport        transport.Transport
	Node             simnet.NodeID
	BufferTuples     int
	CheckpointEvery  int
}

// NewProducer builds a producer.
func NewProducer(cfg ProducerConfig) *Producer {
	n := len(cfg.Consumers)
	p := &Producer{
		Exchange:         cfg.Exchange,
		Fragment:         cfg.Fragment,
		Instance:         cfg.Instance,
		ConsumerFragment: cfg.ConsumerFragment,
		Consumers:        cfg.Consumers,
		Stateful:         cfg.Stateful,
		Est:              cfg.Est,
		policy:           cfg.Policy,
		tr:               cfg.Transport,
		node:             cfg.Node,
		bufferTuples:     cfg.BufferTuples,
		checkpointEvery:  cfg.CheckpointEvery,
		shards:           make([]*producerShard, n),
		obsRouted:        obs.Default().Counter(obs.Label(obs.MExchangeTuplesRouted, "exchange", cfg.Exchange)),
		obsBuffers:       obs.Default().Counter(obs.Label(obs.MExchangeBuffersSent, "exchange", cfg.Exchange)),
	}
	if p.bufferTuples <= 0 {
		p.bufferTuples = DefaultBufferTuples
	}
	if p.checkpointEvery <= 0 {
		p.checkpointEvery = DefaultCheckpointEvery
	}
	for i := range p.shards {
		p.shards[i] = &producerShard{log: make(map[int64]logEntry), nextSeq: 1}
	}
	p.barrier.init()
	return p
}

// Bind attaches the runtime context (set once by the fragment runtime
// before the driver starts).
func (p *Producer) Bind(ctx *ExecContext) { p.ctx = ctx }

// SetFaultTolerant enables elastic-failover behaviour (set once by the
// fragment runtime before the driver starts). holdback defers buffer-full
// flushes until FlushHeld; onPeerDown is told about peers whose death was
// discovered by a failed flush.
func (p *Producer) SetFaultTolerant(holdback bool, onPeerDown func(simnet.NodeID)) {
	p.ft = true
	p.holdback = holdback
	p.onPeerDown = onPeerDown
}

func (p *Producer) driverMeter() *vtime.Meter {
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Meter
}

// Send routes one tuple. It blocks while the producer is paused by the
// control plane and returns the cancellation cause if the exchange is
// canceled (before or while blocked).
func (p *Producer) Send(t relation.Tuple) error {
	m := p.driverMeter()
	if err := p.barrier.enter(m); err != nil {
		return err
	}
	defer p.barrier.exit()
	if p.ctx != nil && p.ctx.Costs.LogAppendMs > 0 && m != nil {
		m.Charge(p.ctx.Costs.LogAppendMs)
	}
	consumer, bucket := p.policy.Route(t)
	s := p.shards[consumer]
	s.mu.Lock()
	p.appendShardLocked(s, bucket, t)
	var err error
	if len(s.buf) >= p.bufferTuples && !p.holdback {
		err = p.flushShardLocked(consumer, s, false)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	p.routed.Add(1)
	return nil
}

// SendBatch routes a whole batch of tuples under one policy-lock and one
// shard-lock acquisition per consumer. Per consumer, everything — tuple
// order, sequence numbers, recovery-log entries, buffer boundaries,
// checkpoint insertion, and the per-buffer M2 monitoring events — is
// identical to len(ts) sequential Send calls, so the R1/R2 redistribution
// protocols and the monitoring cadence are unaffected by batching. It
// blocks while the producer is paused.
func (p *Producer) SendBatch(ts []relation.Tuple) error {
	return p.sendBatch(ts, p.driverMeter())
}

// SendBatchMeter is SendBatch with the modelled log-management cost charged
// to m instead of the bound context's meter. Morsel workers use it: a
// vtime.Meter is goroutine-confined, so each worker passes its own while
// all of them share one producer.
func (p *Producer) SendBatchMeter(ts []relation.Tuple, m *vtime.Meter) error {
	return p.sendBatch(ts, m)
}

func (p *Producer) sendBatch(ts []relation.Tuple, m *vtime.Meter) error {
	if len(ts) == 0 {
		return nil
	}
	if err := p.barrier.enter(m); err != nil {
		return err
	}
	defer p.barrier.exit()
	if p.ctx != nil && p.ctx.Costs.LogAppendMs > 0 && m != nil {
		m.Charge(p.ctx.Costs.LogAppendMs * float64(len(ts)))
	}
	sc := routeScratchPool.Get().(*routeScratch)
	if cap(sc.consumers) < len(ts) {
		sc.consumers = make([]int, len(ts))
		sc.buckets = make([]int32, len(ts))
	}
	consumers := sc.consumers[:len(ts)]
	buckets := sc.buckets[:len(ts)]
	p.policy.RouteBatch(ts, consumers, buckets)
	// Two passes: for each consumer with routed tuples, take its shard lock
	// once and append that consumer's tuples in batch order. Per-consumer
	// relative order (and hence sequence assignment and checkpoint
	// positions) matches the interleaved serial walk exactly; only the
	// cross-consumer interleaving of M2 events differs, which carries no
	// protocol meaning.
	var err error
outer:
	for c, s := range p.shards {
		locked := false
		for i, target := range consumers {
			if target != c {
				continue
			}
			if !locked {
				s.mu.Lock()
				locked = true
			}
			p.appendShardLocked(s, buckets[i], ts[i])
			if len(s.buf) >= p.bufferTuples && !p.holdback {
				if err = p.flushShardLocked(c, s, false); err != nil {
					s.mu.Unlock()
					break outer
				}
			}
		}
		if locked {
			s.mu.Unlock()
		}
	}
	routeScratchPool.Put(sc)
	if err != nil {
		return err
	}
	p.routed.Add(int64(len(ts)))
	p.obsRouted.Add(int64(len(ts)))
	return nil
}

// appendShardLocked assigns the next stream sequence and records the tuple
// in the shard's buffer and recovery log. Caller holds s.mu.
func (p *Producer) appendShardLocked(s *producerShard, bucket int32, t relation.Tuple) {
	seq := s.nextSeq
	s.nextSeq++
	s.buf = append(s.buf, bufEntry{seq: seq, bucket: bucket, tuple: t})
	s.log[seq] = logEntry{tuple: t, bucket: bucket}
}

// flushShardLocked transmits the shard's pending buffer through a pooled
// frame, inserting a checkpoint when the interval is due, and emits the M2
// monitoring event. Caller holds s.mu.
func (p *Producer) flushShardLocked(consumer int, s *producerShard, replay bool) error {
	buf := s.buf
	if s.dead {
		// The consumer instance is gone: drop the buffer (entries stay in
		// the recovery log for failover replay) and keep the driver going.
		for i := range buf {
			buf[i] = bufEntry{}
		}
		s.buf = buf[:0]
		return nil
	}
	if len(buf) == 0 {
		return nil
	}
	fr := framePool.Get().(*sendFrame)
	tuples := fr.tuples[:0]
	hasBuckets := false
	for _, e := range buf {
		tuples = append(tuples, e.tuple)
		if e.bucket >= 0 {
			hasBuckets = true
		}
	}
	msg := &fr.msg
	*msg = transport.Message{
		Kind:        transport.KindData,
		Exchange:    p.Exchange,
		ProducerIdx: p.Instance,
		ConsumerIdx: consumer,
		Epoch:       int(p.epoch.Load()),
		StartSeq:    buf[0].seq,
		Replay:      replay,
		Tuples:      tuples,
	}
	bks := fr.buckets[:0]
	if hasBuckets {
		for _, e := range buf {
			bks = append(bks, e.bucket)
		}
		msg.Buckets = bks
	}
	if !replay {
		s.sinceCkpt += len(buf)
		if s.sinceCkpt >= p.checkpointEvery {
			msg.Checkpoint = buf[len(buf)-1].seq
			s.sinceCkpt = 0
		}
	}
	// Drop the tuple references before reusing the backing array.
	for i := range buf {
		buf[i] = bufEntry{}
	}
	s.buf = buf[:0]
	count := len(tuples)
	addr := p.Consumers[consumer]
	cost, err := p.tr.Send(p.node, addr.Node, addr.Service, msg)
	// Both transports are done with the frame once Send returns (in-proc
	// dispatches synchronously, TCP encodes into its own wire buffer), so
	// it can be cleared and recycled.
	for i := range tuples {
		tuples[i] = nil
	}
	fr.tuples = tuples[:0]
	fr.buckets = bks[:0]
	fr.msg = transport.Message{}
	framePool.Put(fr)
	if err != nil {
		var down *transport.NodeDownError
		if p.ft && errors.As(err, &down) && down.Node == addr.Node && addr.Node != p.node {
			// The peer died. Mark the shard dead and keep the driver
			// flowing: the flushed entries are still in the recovery log,
			// and the session's failover replays them onto survivors.
			s.dead = true
			if p.onPeerDown != nil {
				p.onPeerDown(addr.Node)
			}
			return nil
		}
		return qerr.Transport(fmt.Sprintf("exchange %s flush to %s", p.Exchange, addr.Service), err)
	}
	p.buffersSent.Add(1)
	p.obsBuffers.Inc()
	if p.ctx != nil && p.ctx.Monitor != nil {
		p.ctx.Monitor.EmitM2(M2Event{
			Exchange:         p.Exchange,
			Fragment:         p.Fragment,
			Instance:         p.Instance,
			Node:             p.node,
			ConsumerFragment: p.ConsumerFragment,
			ConsumerInstance: consumer,
			ConsumerNode:     addr.Node,
			SendCostMs:       cost,
			TupleCount:       count,
		})
	}
	return nil
}

// flushAll flushes every shard. Call with the barrier held exclusively.
func (p *Producer) flushAll(replay bool) error {
	for c, s := range p.shards {
		s.mu.Lock()
		err := p.flushShardLocked(c, s, replay)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes everything and marks the driver done; the exchange is
// closed towards consumers as soon as the recovery log permits. A canceled
// exchange refuses to close normally — no EOS must reach consumers that the
// cancellation is tearing down.
func (p *Producer) Close() error {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	if err := p.barrier.err(); err != nil {
		return err
	}
	if err := p.flushAll(false); err != nil {
		return err
	}
	p.finMu.Lock()
	defer p.finMu.Unlock()
	p.driverEOS = true
	if err := p.finalizeCheckpointsLocked(); err != nil {
		return err
	}
	return p.maybeFinishLocked()
}

// finalizeCheckpointsLocked closes the open checkpoint interval of every
// stream once the driver is done: without it the tail tuples would never be
// acknowledged and the recovery log would never drain. Caller holds finMu.
func (p *Producer) finalizeCheckpointsLocked() error {
	if !p.driverEOS || p.Stateful {
		return nil
	}
	for c, s := range p.shards {
		s.mu.Lock()
		skip := s.sinceCkpt == 0 || s.nextSeq == 1 || s.dead
		var ck int64
		if !skip {
			s.sinceCkpt = 0
			ck = s.nextSeq - 1
		}
		s.mu.Unlock()
		if skip {
			continue
		}
		msg := &transport.Message{
			Kind:        transport.KindData,
			Exchange:    p.Exchange,
			ProducerIdx: p.Instance,
			ConsumerIdx: c,
			Epoch:       int(p.epoch.Load()),
			Checkpoint:  ck,
		}
		addr := p.Consumers[c]
		if _, err := p.tr.Send(p.node, addr.Node, addr.Service, msg); err != nil {
			if p.markDeadOnPeerLoss(c, addr, err) {
				continue
			}
			return qerr.Transport(fmt.Sprintf("exchange %s checkpoint to %s", p.Exchange, addr.Service), err)
		}
	}
	return nil
}

// markDeadOnPeerLoss handles a send error in fault-tolerant mode: if the
// error reports that the TARGET consumer's node died, the shard is marked
// dead (its logged tuples await failover replay) and the caller may carry
// on. Self-death and other faults stay fatal.
func (p *Producer) markDeadOnPeerLoss(consumer int, addr Addr, err error) bool {
	var down *transport.NodeDownError
	if !p.ft || !errors.As(err, &down) || down.Node != addr.Node || addr.Node == p.node {
		return false
	}
	s := p.shards[consumer]
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
	if p.onPeerDown != nil {
		p.onPeerDown(addr.Node)
	}
	return true
}

// maybeFinishLocked sends the exchange-complete signal when allowed. For a
// stateful exchange the normal flow ends with the driver (the consumer's
// build phase must terminate; the log stays for replay). For a stateless
// exchange the signal is deferred until the recovery log drains, because
// logged tuples may yet be recalled and re-routed to consumers that would
// otherwise have finished. Caller holds finMu.
func (p *Producer) maybeFinishLocked() error {
	if !p.driverEOS || p.eosSent {
		return nil
	}
	if !p.Stateful {
		for _, s := range p.shards {
			s.mu.Lock()
			n := len(s.log)
			s.mu.Unlock()
			if n > 0 {
				return nil
			}
		}
	}
	p.eosSent = true
	for i, addr := range p.Consumers {
		s := p.shards[i]
		s.mu.Lock()
		dead := s.dead
		s.mu.Unlock()
		if dead {
			continue
		}
		msg := &transport.Message{
			Kind:        transport.KindEOS,
			Exchange:    p.Exchange,
			ProducerIdx: p.Instance,
			ConsumerIdx: i,
		}
		if _, err := p.tr.Send(p.node, addr.Node, addr.Service, msg); err != nil {
			if p.markDeadOnPeerLoss(i, addr, err) {
				continue
			}
			return qerr.Transport(fmt.Sprintf("exchange %s EOS to %s", p.Exchange, addr.Service), err)
		}
	}
	return nil
}

// Cancel aborts the exchange: any Send/SendBatch blocked on a pause — and
// every future one — returns cause immediately, and Close becomes a no-op
// that reports cause instead of signalling EOS. First cause wins; Cancel is
// idempotent. This is how a context cancellation reaches a driver parked
// inside a paused exchange mid-adaptation.
func (p *Producer) Cancel(cause error) {
	if cause == nil {
		cause = qerr.ErrCanceled
	}
	p.barrier.cancel(cause)
}

// HandleAck releases acknowledged log entries (stateless exchanges only;
// stateful logs persist until Release). Sequences listed in Except were
// discarded by a recall: they stay logged until the resend step migrates
// them to their new consumer. Acks pass the flow barrier in ack mode: they
// keep flowing while the producer is paused (blocking them would deadlock a
// downstream quiesce waiting on a worker whose ack is in flight) but are
// excluded from exclusive control sections, so an ack can never delete a
// log entry between a Replay's snapshot and its migration.
func (p *Producer) HandleAck(msg *transport.Message) {
	if p.Stateful {
		return
	}
	p.barrier.enterAck()
	defer p.barrier.exit()
	var keep map[int64]bool
	if len(msg.Except) > 0 {
		keep = make(map[int64]bool, len(msg.Except))
		for _, s := range msg.Except {
			keep[s] = true
		}
	}
	if msg.ConsumerIdx < 0 || msg.ConsumerIdx >= len(p.shards) {
		return
	}
	s := p.shards[msg.ConsumerIdx]
	s.mu.Lock()
	if s.dead {
		// A late ack from an instance already failed over: its log was
		// replayed onto survivors, so there is nothing left to release.
		s.mu.Unlock()
		return
	}
	for seq := range s.log {
		if seq <= msg.Checkpoint && !keep[seq] {
			delete(s.log, seq)
		}
	}
	s.mu.Unlock()
	p.finMu.Lock()
	_ = p.maybeFinishLocked()
	p.finMu.Unlock()
}

// Pause stops the normal flow after flushing pending buffers, so that when
// it returns every routed tuple is at (or on the wire to) its consumer and
// the retrospective protocol sees a consistent picture. The paused flag is
// raised inside the exclusive section, so no sender can slip a tuple in
// between the flush and the pause taking effect.
func (p *Producer) Pause() error {
	p.barrier.lockExclusive()
	if err := p.flushAll(false); err != nil {
		p.barrier.unlockExclusive()
		return err
	}
	p.barrier.setPaused(true)
	p.barrier.unlockExclusive()
	return nil
}

// Resume restarts the normal flow.
func (p *Producer) Resume() {
	p.epoch.Add(1)
	p.barrier.setPaused(false)
}

// SetWeights installs a new distribution vector (prospective, R2). It takes
// the barrier so the swap is atomic with respect to in-flight batches: every
// batch routes entirely under the old vector or entirely under the new one.
func (p *Producer) SetWeights(w []float64) error {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	_, err := p.policy.SetWeights(w)
	return err
}

// SetOwnerMap installs a new bucket→owner map (hash policies).
func (p *Producer) SetOwnerMap(m []int32) error {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	return p.policy.SetOwnerMap(m)
}

// Weights reports the current distribution vector.
func (p *Producer) Weights() []float64 { return p.policy.Weights() }

// Progress reports routed tuples and the optimiser's estimate.
func (p *Producer) Progress() (routed, est int64) {
	return p.routed.Load(), p.Est
}

// Replay retransmits every logged tuple belonging to the given buckets,
// routing by the (already updated) owner map and marking the buffers as
// replay so consumers rebuild operator state from them. Entries migrate to
// the new owner's log under fresh sequence numbers. Call while paused.
func (p *Producer) Replay(buckets []int32) (int, error) {
	set := make(map[int32]bool, len(buckets))
	for _, b := range buckets {
		set[b] = true
	}
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	// Snapshot every affected entry across all logs BEFORE migrating any:
	// entries appended to the new owner's log during migration must not be
	// replayed a second time when the iteration reaches that log, or the
	// rebuilt state would contain duplicates.
	type movedEntry struct {
		consumer int
		seq      int64
		e        logEntry
	}
	var pending []movedEntry
	for consumer, s := range p.shards {
		s.mu.Lock()
		for seq, e := range s.log {
			if set[e.bucket] {
				pending = append(pending, movedEntry{consumer: consumer, seq: seq, e: e})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].consumer != pending[j].consumer {
			return pending[i].consumer < pending[j].consumer
		}
		return pending[i].seq < pending[j].seq
	})
	moved := 0
	for _, mv := range pending {
		src := p.shards[mv.consumer]
		src.mu.Lock()
		delete(src.log, mv.seq)
		src.mu.Unlock()
		target := p.policy.RouteBucket(mv.e.bucket)
		dst := p.shards[target]
		dst.mu.Lock()
		p.appendShardLocked(dst, mv.e.bucket, mv.e.tuple)
		moved++
		var err error
		if len(dst.buf) >= p.bufferTuples {
			err = p.flushShardLocked(target, dst, true)
		}
		dst.mu.Unlock()
		if err != nil {
			return moved, err
		}
	}
	if err := p.flushAll(true); err != nil {
		return moved, err
	}
	return moved, nil
}

// Resend re-routes previously discarded tuples (reported by a consumer
// recall) under the current policy as normal flow. Call while paused.
func (p *Producer) Resend(fromConsumer int, seqs []int64) (int, error) {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	src := p.shards[fromConsumer]
	sorted := append([]int64(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 0
	for _, seq := range sorted {
		src.mu.Lock()
		e, ok := src.log[seq]
		if ok {
			delete(src.log, seq)
		}
		src.mu.Unlock()
		if !ok {
			return n, fmt.Errorf("engine: resend of unknown seq %d on %s/consumer %d", seq, p.Exchange, fromConsumer)
		}
		var target int
		if e.bucket >= 0 {
			target = p.policy.RouteBucket(e.bucket)
		} else {
			target, _ = p.policy.Route(e.tuple)
		}
		dst := p.shards[target]
		dst.mu.Lock()
		p.appendShardLocked(dst, e.bucket, e.tuple)
		n++
		var err error
		if len(dst.buf) >= p.bufferTuples {
			err = p.flushShardLocked(target, dst, false)
		}
		dst.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	if err := p.flushAll(false); err != nil {
		return n, err
	}
	p.finMu.Lock()
	defer p.finMu.Unlock()
	if err := p.finalizeCheckpointsLocked(); err != nil {
		return n, err
	}
	_ = p.maybeFinishLocked()
	return n, nil
}

// FlushHeld transmits every held buffer. The fragment runtime calls it in
// holdback mode, inside the commit section that also acknowledges the
// consumed inputs those outputs derive from; it enters the barrier in ack
// mode so it flows during an R1 pause but never overlaps an exclusive
// control section.
func (p *Producer) FlushHeld() error {
	p.barrier.enterAck()
	defer p.barrier.exit()
	for c, s := range p.shards {
		s.mu.Lock()
		err := p.flushShardLocked(c, s, false)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ReplayLost re-routes every logged-but-unacknowledged tuple of a dead
// consumer instance onto the surviving instances under the current
// (already reweighted) policy as normal flow, then detaches the instance.
// Because acknowledgements release log entries only when the consumer has
// processed the tuples AND durably forwarded their outputs (the holdback
// commit), the dead shard's log is exactly the set of tuples whose effects
// are missing downstream — replaying them, and nothing else, preserves
// exact results. It returns the number of tuples moved.
func (p *Producer) ReplayLost(dead int) (int, error) {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	if dead < 0 || dead >= len(p.shards) {
		return 0, fmt.Errorf("engine: replay-lost of unknown consumer %d on %s", dead, p.Exchange)
	}
	src := p.shards[dead]
	src.mu.Lock()
	type lost struct {
		seq int64
		e   logEntry
	}
	pending := make([]lost, 0, len(src.log))
	for seq, e := range src.log {
		pending = append(pending, lost{seq: seq, e: e})
	}
	src.log = make(map[int64]logEntry)
	for i := range src.buf {
		src.buf[i] = bufEntry{}
	}
	src.buf = src.buf[:0]
	src.dead = true
	src.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })
	n := 0
	for _, mv := range pending {
		var target int
		if mv.e.bucket >= 0 {
			target = p.policy.RouteBucket(mv.e.bucket)
		} else {
			target, _ = p.policy.Route(mv.e.tuple)
		}
		if target == dead {
			return n, fmt.Errorf("engine: replay-lost on %s still routes to dead consumer %d", p.Exchange, dead)
		}
		dst := p.shards[target]
		dst.mu.Lock()
		p.appendShardLocked(dst, mv.e.bucket, mv.e.tuple)
		n++
		var err error
		if len(dst.buf) >= p.bufferTuples {
			err = p.flushShardLocked(target, dst, false)
		}
		dst.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	if err := p.flushAll(false); err != nil {
		return n, err
	}
	p.finMu.Lock()
	defer p.finMu.Unlock()
	if err := p.finalizeCheckpointsLocked(); err != nil {
		return n, err
	}
	_ = p.maybeFinishLocked()
	return n, nil
}

// DetachConsumer marks a dead consumer instance as gone without replaying
// its log. Stateful exchanges use it after CtrlReplay has migrated the dead
// instance's buckets; it also re-checks end-of-stream, since a detached
// shard no longer holds EOS back.
func (p *Producer) DetachConsumer(dead int) error {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	if dead < 0 || dead >= len(p.shards) {
		return fmt.Errorf("engine: detach of unknown consumer %d on %s", dead, p.Exchange)
	}
	s := p.shards[dead]
	s.mu.Lock()
	s.dead = true
	for i := range s.buf {
		s.buf[i] = bufEntry{}
	}
	s.buf = s.buf[:0]
	if p.Stateful {
		// Stateful logs exist to rebuild remote state; the dead instance's
		// buckets were already replayed to their new owners.
		s.log = make(map[int64]logEntry)
	}
	s.mu.Unlock()
	p.finMu.Lock()
	defer p.finMu.Unlock()
	_ = p.maybeFinishLocked()
	return nil
}

// AddConsumer extends the exchange with a newly joined consumer instance
// (live join), installing w as the distribution vector over the grown
// instance set. It fails if the exchange has already signalled EOS — the
// newcomer would wait forever on a stream that will never close — or if the
// policy cannot grow (hash policies pin state to buckets; hash fragments
// join at the next query via the plan-cache epoch).
func (p *Producer) AddConsumer(addr Addr, w []float64) error {
	p.barrier.lockExclusive()
	defer p.barrier.unlockExclusive()
	p.finMu.Lock()
	defer p.finMu.Unlock()
	if p.eosSent {
		return fmt.Errorf("engine: exchange %s already closed; too late to attach", p.Exchange)
	}
	wp, ok := p.policy.(*WeightedPolicy)
	if !ok {
		return fmt.Errorf("engine: exchange %s policy cannot grow live", p.Exchange)
	}
	if err := wp.Extend(w); err != nil {
		return err
	}
	p.Consumers = append(p.Consumers, addr)
	p.shards = append(p.shards, &producerShard{log: make(map[int64]logEntry), nextSeq: 1})
	return nil
}

// Release drops a stateful exchange's log at query end.
func (p *Producer) Release() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.log = make(map[int64]logEntry)
		s.mu.Unlock()
	}
}

// Stats reports counters for the overhead experiments.
func (p *Producer) Stats() (routed int64, buffers int64, logSize int) {
	size := 0
	for _, s := range p.shards {
		s.mu.Lock()
		size += len(s.log)
		s.mu.Unlock()
	}
	return p.routed.Load(), p.buffersSent.Load(), size
}

// ConsumerTupleCounts reports how many tuples were routed to each consumer
// (cumulative, including resends); the paper reports the slow/fast ratio in
// its overhead analysis.
func (p *Producer) ConsumerTupleCounts() []int64 {
	counts := make([]int64, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		counts[i] = s.nextSeq - 1
		s.mu.Unlock()
	}
	return counts
}
