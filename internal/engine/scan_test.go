package engine

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/relation"
	"repro/internal/storage"
)

// storedEventsCtx builds an ExecContext over one stored synthetic table named
// "events" plus its in-memory twin for parity checks.
func storedEventsCtx(t *testing.T, backend storage.Backend, rows int) (*ExecContext, *dataset.Table) {
	t.Helper()
	sp := dataset.SyntheticSpec{Name: "events", Rows: rows, KeyDomain: 97, ZipfS: 1.4, PayloadBytes: 64, Seed: 3}
	stored, err := dataset.WriteSynthetic(backend, "base/events", sp)
	if err != nil {
		t.Fatal(err)
	}
	store := dataset.NewStore()
	store.Add(stored)
	ctx := testCtx()
	ctx.Store = store
	return ctx, dataset.Synthetic(sp)
}

func encodeAll(ts []relation.Tuple) [][]byte {
	out := make([][]byte, len(ts))
	for i, t := range ts {
		out[i] = relation.EncodeTuple(t)
	}
	return out
}

func sameTuplesLabeled(t *testing.T, label string, want, got []relation.Tuple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	ew, eg := encodeAll(want), encodeAll(got)
	for i := range ew {
		if !bytes.Equal(ew[i], eg[i]) {
			t.Fatalf("%s: tuple %d diverged", label, i)
		}
	}
}

func TestStoredScanParity(t *testing.T) {
	posix, err := storage.NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]storage.Backend{"memory": storage.NewMemory(), "posix": posix}
	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			defer backend.Close()
			ctx, mem := storedEventsCtx(t, backend, 20000)
			for _, depth := range []int{0, -1, 1, 4} {
				ctx.Readahead = depth
				got := drain(t, &TableScan{Table: "events"}, ctx)
				sameTuplesLabeled(t, name, mem.Tuples, got)
			}
		})
	}
}

func TestStoredScanBatchPath(t *testing.T) {
	backend := storage.NewMemory()
	defer backend.Close()
	ctx, mem := storedEventsCtx(t, backend, 20000)
	scan := &TableScan{Table: "events"}
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if scan.blocks == nil {
		t.Fatal("stored scan did not take the block path")
	}
	var got []relation.Tuple
	batch := relation.NewBatch(113) // odd capacity forces block-boundary crossings
	for {
		n, err := scan.NextBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got = append(got, append([]relation.Tuple(nil), batch.Tuples...)...)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	sameTuplesLabeled(t, "batch", mem.Tuples, got)
	if ctx.Meter.ChargedMs() <= 0 {
		t.Fatal("batched scan charged no cost")
	}
}

func TestStoredScanBudgetLifecycle(t *testing.T) {
	backend, err := storage.NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	ctx, mem := storedEventsCtx(t, backend, 20000)
	ctx.Mem = storage.NewBudget(1 << 20)

	// Full drain under budget: every in-flight reservation is returned.
	got := drain(t, &TableScan{Table: "events"}, ctx)
	sameTuplesLabeled(t, "drain", mem.Tuples, got)
	if in := ctx.Mem.Inflight(); in != 0 {
		t.Fatalf("after drain: %d bytes still inflight", in)
	}

	// Cancel mid-readahead: the producer has blocks in flight; Close must
	// reclaim every reservation without leaking the goroutine.
	scan := &TableScan{Table: "events"}
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := scan.Next(); err != nil || !ok {
			t.Fatalf("tuple %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if in := ctx.Mem.Inflight(); in != 0 {
		t.Fatalf("after cancel: %d bytes still inflight", in)
	}
	// Close is idempotent.
	if err := scan.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Close with no reads at all must not start or leak anything.
	scan = &TableScan{Table: "events"}
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := scan.Close(); err != nil {
		t.Fatal(err)
	}
	if in := ctx.Mem.Inflight(); in != 0 {
		t.Fatalf("open/close: %d bytes still inflight", in)
	}
}

func TestStoredScanUnderBreachedBudget(t *testing.T) {
	backend := storage.NewMemory()
	defer backend.Close()
	ctx, mem := storedEventsCtx(t, backend, 20000)
	// A budget smaller than one block: the producer runs permanently shrunk
	// to a single in-flight block and must neither deadlock nor misread.
	ctx.Mem = storage.NewBudget(1024)
	got := drain(t, &TableScan{Table: "events"}, ctx)
	sameTuplesLabeled(t, "shrunk", mem.Tuples, got)
	if in := ctx.Mem.Inflight(); in != 0 {
		t.Fatalf("%d bytes still inflight", in)
	}
}

func TestTopNMatchesSortLimit(t *testing.T) {
	backend := storage.NewMemory()
	defer backend.Close()
	ctx, _ := storedEventsCtx(t, backend, 5000)
	cases := []struct {
		name string
		ords []int
		desc []bool
		n    int64
	}{
		{"asc-ties", []int{0}, []bool{false}, 50}, // zipf keys: heavy tie traffic
		{"desc-ties", []int{0}, []bool{true}, 50},
		{"two-key", []int{0, 1}, []bool{false, true}, 25},
		{"n-one", []int{1}, []bool{false}, 1},
		{"n-exceeds-input", []int{0}, []bool{false}, 100000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := drain(t, &Limit{
				Child: &Sort{Child: &TableScan{Table: "events"}, Ords: c.ords, Desc: c.desc},
				N:     c.n,
			}, ctx)
			got := drain(t, &TopN{
				Child: &TableScan{Table: "events"},
				Ords:  c.ords, Desc: c.desc, N: c.n,
			}, ctx)
			sameTuplesLabeled(t, c.name, want, got)
		})
	}
}

func TestTopNBudgetRelease(t *testing.T) {
	backend := storage.NewMemory()
	defer backend.Close()
	ctx, _ := storedEventsCtx(t, backend, 5000)
	ctx.Mem = storage.NewBudget(1 << 30)
	top := &TopN{Child: &TableScan{Table: "events"}, Ords: []int{0}, Desc: []bool{false}, N: 100}
	if err := top.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := top.Next(); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if ctx.Mem.Inflight() == 0 {
		t.Fatal("TopN retained state is not accounted")
	}
	// Abandon mid-emit: Close must return every reservation.
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}
	if in := ctx.Mem.Inflight(); in != 0 {
		t.Fatalf("%d bytes still inflight after Close", in)
	}
}

// FuzzStoredScanRoundTrip feeds arbitrary tuple sequences through a stored
// run and back out via the block scan: whatever tuple boundary lands on a
// block boundary, the batched decode must reproduce the input byte-exactly
// in every readahead mode.
func FuzzStoredScanRoundTrip(f *testing.F) {
	f.Add(relation.EncodeTuple(relation.Tuple{relation.Int(7)}), 0)
	f.Add(relation.EncodeTuple(relation.Tuple{relation.String("ORF YAL00007C"), relation.Null}), -1)
	f.Add(bytes.Repeat(relation.EncodeTuple(relation.Tuple{relation.Float(1.5)}), 64), 4)
	f.Fuzz(func(t *testing.T, raw []byte, depth int) {
		var tuples []relation.Tuple
		rest := raw
		for len(rest) > 0 && len(tuples) < 512 {
			tp, tail, err := relation.DecodeTuple(rest)
			if err != nil {
				break
			}
			tuples = append(tuples, tp)
			rest = tail
		}
		if len(tuples) == 0 {
			t.Skip()
		}
		backend := storage.NewMemory()
		defer backend.Close()
		w, err := backend.Create("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendAll(tuples); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		br, err := backend.OpenBlocks("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		ctx := testCtx()
		ctx.Readahead = depth%5 - 1 // [-1, 3]: sync plus several depths
		scan := newBlockScan(ctx, br)
		var got []relation.Tuple
		batch := relation.NewBatch(7)
		for {
			n, err := scan.fill(batch)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			got = append(got, append([]relation.Tuple(nil), batch.Tuples...)...)
		}
		if err := scan.close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tuples) {
			t.Fatalf("scanned %d of %d tuples", len(got), len(tuples))
		}
		for i := range tuples {
			if !bytes.Equal(relation.EncodeTuple(tuples[i]), relation.EncodeTuple(got[i])) {
				t.Fatalf("tuple %d changed across the stored scan", i)
			}
		}
	})
}
