package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Sink receives the top fragment's output rows (the query result stream the
// GDQS hands back to the client).
type Sink interface {
	Send(relation.Tuple) error
	Close() error
}

// ServiceName returns the transport service under which a fragment instance
// registers.
func ServiceName(fragment string, instance int) string {
	return fmt.Sprintf("frag/%s#%d", fragment, instance)
}

// RuntimeConfig assembles a fragment instance.
type RuntimeConfig struct {
	Plan     *physical.Plan
	Fragment *physical.FragmentSpec
	Instance int
	Ctx      *ExecContext
	Tr       transport.Transport
	Node     simnet.NodeID
	// Sink receives results; required iff the fragment has no output
	// exchange.
	Sink Sink
	// BufferTuples and CheckpointEvery tune the output exchange; zero
	// selects the defaults.
	BufferTuples    int
	CheckpointEvery int
	// FT enables elastic crash recovery for this instance: consumers
	// acknowledge processed prefixes inside node commit sections paired
	// with the flush of derived outputs, producers survive peer death by
	// parking the lost tuples in their recovery logs, and the driver is
	// forced serial (the commit pairing relies on the serial pull order).
	FT bool
	// OnPeerDown is told when a flush discovers a dead peer (FT only).
	OnPeerDown func(simnet.NodeID)
}

// FragmentRuntime hosts one fragment instance inside a query evaluation
// service: the compiled operator tree, the exchange endpoints, and the
// driver goroutine. It stays registered on the transport after the driver
// completes so that retrospective adaptations can still recall, evict, and
// replay logged tuples until the query is torn down.
type FragmentRuntime struct {
	cfg  RuntimeConfig
	gate *flowGate

	root        Iterator
	consumers   map[string]*Consumer
	producer    *Producer
	join        *HashJoin
	stateTarget StateTarget
	service     string

	// joinBySpec/aggBySpec map plan specs to their compiled stateful
	// operators, so the parallel driver's worker chains can clone them
	// around the same shared state.
	joinBySpec map[*physical.OpSpec]*HashJoin
	aggBySpec  map[*physical.OpSpec]*HashAggregate

	mu       sync.Mutex
	err      error
	produced int64

	// Registry handles, resolved once per instance; the driver's inner loop
	// touches them with one atomic op per batch.
	obsProduced  *obs.Counter
	obsBatchSize *obs.Histogram

	stopOnce sync.Once
}

// NewFragmentRuntime compiles the fragment's operator tree, wires its
// exchanges, and registers the instance's transport service. Call Run to
// start the driver and Stop to tear the instance down.
func NewFragmentRuntime(cfg RuntimeConfig) (*FragmentRuntime, error) {
	o := obs.Default()
	r := &FragmentRuntime{
		cfg:          cfg,
		gate:         newFlowGate(),
		consumers:    make(map[string]*Consumer),
		joinBySpec:   make(map[*physical.OpSpec]*HashJoin),
		aggBySpec:    make(map[*physical.OpSpec]*HashAggregate),
		service:      "frag/" + cfg.Fragment.InstanceID(cfg.Instance),
		obsProduced:  o.Counter(obs.Label(obs.MEngineTuplesProduced, "fragment", cfg.Fragment.ID)),
		obsBatchSize: o.Histogram(obs.MEngineBatchSize, obs.DefBucketsSize),
	}
	root, err := r.compile(cfg.Fragment.Root)
	if err != nil {
		return nil, err
	}
	r.root = root

	if out := cfg.Fragment.Output; out != nil {
		consFrag := cfg.Plan.Fragment(out.ConsumerFragment)
		if consFrag == nil {
			return nil, fmt.Errorf("engine: exchange %s names unknown fragment %s", out.ID, out.ConsumerFragment)
		}
		policy, err := buildPolicy(out, consFrag, cfg.Ctx)
		if err != nil {
			return nil, err
		}
		r.producer = NewProducer(ProducerConfig{
			Exchange:         out.ID,
			Fragment:         cfg.Fragment.ID,
			Instance:         cfg.Instance,
			ConsumerFragment: consFrag.ID,
			Consumers:        instanceAddrs(consFrag),
			Stateful:         out.Stateful,
			Est:              int64(out.EstTuples),
			Policy:           policy,
			Transport:        cfg.Tr,
			Node:             cfg.Node,
			BufferTuples:     cfg.BufferTuples,
			CheckpointEvery:  cfg.CheckpointEvery,
		})
		r.producer.Bind(cfg.Ctx)
	} else if cfg.Sink == nil {
		return nil, fmt.Errorf("engine: top fragment %s needs a result sink", cfg.Fragment.ID)
	}

	if cfg.FT {
		r.wireFaultTolerance()
	}
	cfg.Tr.Register(cfg.Node, r.service, r.handle)
	return r, nil
}

// wireFaultTolerance arms the exactly-once recovery protocol on this
// instance. The output producer holds flushed buffers back whenever the
// fragment has an acknowledging (stateless) input, and each stateless
// consumer commits "flush held outputs, then ack processed inputs" as one
// crash-atomic section on the hosting node — so an input is acknowledged
// (and leaves the upstream recovery log) exactly when its derived outputs
// are durably downstream. The soundness of acking at consumer pull
// boundaries rests on an operator-tree invariant: every operator either
// emits the outputs of a pulled batch before returning, or holds them in a
// carry buffer that fully drains before the operator pulls its child again
// (HashJoin.pending is the one carry buffer today, and it drains first).
func (r *FragmentRuntime) wireFaultTolerance() {
	hasStatelessInput := false
	for _, c := range r.consumers {
		if !c.Stateful {
			hasStatelessInput = true
		}
	}
	node := r.cfg.Ctx.Node
	if r.producer != nil {
		holdback := hasStatelessInput && !r.producer.Stateful
		r.producer.SetFaultTolerant(holdback, r.cfg.OnPeerDown)
	}
	for _, c := range r.consumers {
		if c.Stateful {
			continue
		}
		consumer := c
		consumer.SetFaultTolerant(func(acks []ackItem) {
			// If the node died, the commit refuses to run: neither outputs
			// nor acks escape, and the inputs stay replayable upstream.
			node.Atomically(func() {
				if r.producer != nil {
					if err := r.producer.FlushHeld(); err != nil {
						r.fail(err)
						return
					}
				}
				for _, a := range acks {
					consumer.sendAck(a)
				}
			})
		})
	}
}

// buildPolicy instantiates the initial distribution policy of an exchange.
func buildPolicy(out *physical.ExchangeSpec, consumer *physical.FragmentSpec, ctx *ExecContext) (DistPolicy, error) {
	switch out.Policy {
	case physical.PolicyWeighted:
		return NewWeightedPolicy(consumer.InitialWeights)
	case physical.PolicyHash:
		buckets := ctx.Buckets
		if buckets <= 0 {
			buckets = DefaultBuckets
		}
		return NewHashPolicy(out.KeyOrds, buckets, consumer.InitialWeights)
	default:
		return nil, fmt.Errorf("engine: unknown policy %v on exchange %s", out.Policy, out.ID)
	}
}

// instanceAddrs lists the transport endpoints of a fragment's instances.
func instanceAddrs(f *physical.FragmentSpec) []Addr {
	addrs := make([]Addr, len(f.Instances))
	for i, node := range f.Instances {
		addrs[i] = Addr{Node: node, Service: "frag/" + f.InstanceID(i)}
	}
	return addrs
}

// compile lowers an operator spec to an iterator tree.
func (r *FragmentRuntime) compile(spec *physical.OpSpec) (Iterator, error) {
	switch spec.Kind {
	case physical.KScan:
		return &TableScan{Table: spec.Table}, nil

	case physical.KFilter:
		child, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		pred, err := logical.CompilePredicate(spec.Pred, spec.Children[0].OutSchema())
		if err != nil {
			return nil, err
		}
		return &Select{Child: child, Pred: pred}, nil

	case physical.KProject:
		child, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		return &Project{Child: child, Ords: spec.Ords}, nil

	case physical.KOpCall:
		child, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		return &OperationCall{Fn: spec.Fn, ArgOrds: spec.ArgOrds, Child: child}, nil

	case physical.KJoin:
		build, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		probe, err := r.compile(spec.Children[1])
		if err != nil {
			return nil, err
		}
		join := &HashJoin{
			Build: build, Probe: probe,
			BuildKeys: spec.BuildKeys, ProbeKeys: spec.ProbeKeys,
			BuildEst: spec.BuildEst,
		}
		r.join = join
		r.joinBySpec[spec] = join
		// The build-side consumer feeds replayed state directly into the
		// join; the scheduler always places the consume leaf directly
		// below the join.
		if bc, ok := build.(*Consumer); ok {
			bc.SetStateTarget(join)
			r.stateTarget = join
		}
		return join, nil

	case physical.KAggregate:
		child, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		kinds, err := aggKindsOf(spec.AggKinds)
		if err != nil {
			return nil, err
		}
		agg := &HashAggregate{
			Child:     child,
			GroupOrds: spec.GroupOrds,
			Kinds:     kinds,
			ArgOrds:   spec.AggArgs,
		}
		r.aggBySpec[spec] = agg
		// The consume leaf feeds replayed state straight into the
		// aggregate, as with the join's build side.
		if c, ok := child.(*Consumer); ok {
			c.SetStateTarget(agg)
			r.stateTarget = agg
		}
		return agg, nil

	case physical.KSort:
		child, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		return &Sort{Child: child, Ords: spec.SortOrds, Desc: spec.SortDesc}, nil

	case physical.KLimit:
		// ORDER BY + LIMIT fuses into a bounded-heap TopN when N is small:
		// same bytes out as stable-sort-then-limit, O(N) state instead of
		// buffering (or externally sorting) the whole input.
		if c := spec.Children[0]; c.Kind == physical.KSort && spec.LimitN > 0 && spec.LimitN <= topNMaxN {
			child, err := r.compile(c.Children[0])
			if err != nil {
				return nil, err
			}
			return &TopN{Child: child, Ords: c.SortOrds, Desc: c.SortDesc, N: spec.LimitN}, nil
		}
		child, err := r.compile(spec.Children[0])
		if err != nil {
			return nil, err
		}
		return &Limit{Child: child, N: spec.LimitN}, nil

	case physical.KConsume:
		producerFrag := r.producerFragmentOf(spec.Exchange)
		if producerFrag == nil {
			return nil, fmt.Errorf("engine: no fragment produces exchange %s", spec.Exchange)
		}
		c := newConsumer(spec.Exchange, r.cfg.Instance, instanceAddrs(producerFrag),
			producerFrag.Output.Stateful, r.gate, r.cfg.Tr, r.cfg.Node)
		r.consumers[spec.Exchange] = c
		return c, nil

	default:
		return nil, fmt.Errorf("engine: unknown operator kind %v", spec.Kind)
	}
}

func (r *FragmentRuntime) producerFragmentOf(exchange string) *physical.FragmentSpec {
	for _, f := range r.cfg.Plan.Fragments {
		if f.Output != nil && f.Output.ID == exchange {
			return f
		}
	}
	return nil
}

// Producer exposes the output exchange (nil on the top fragment).
func (r *FragmentRuntime) Producer() *Producer { return r.producer }

// Consumer exposes an input exchange endpoint by ID.
func (r *FragmentRuntime) Consumer(exchange string) *Consumer { return r.consumers[exchange] }

// Join exposes the fragment's hash join, if any.
func (r *FragmentRuntime) Join() *HashJoin { return r.join }

// Service returns the instance's transport service name.
func (r *FragmentRuntime) Service() string { return r.service }

// Node returns the machine hosting this instance.
func (r *FragmentRuntime) Node() simnet.NodeID { return r.cfg.Node }

// Instance returns this runtime's clone index within its fragment.
func (r *FragmentRuntime) Instance() int { return r.cfg.Instance }

// Err returns the first driver error.
func (r *FragmentRuntime) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Run executes the fragment batch-at-a-time: it opens the tree, pulls
// batches from the root through FillBatch (vectorized operators run their
// native NextBatch, everything else goes through the adapter), pushes them
// into the output exchange with one SendBatch per batch (or into the result
// sink), and emits M1 self-monitoring events every MonitorEvery produced
// tuples. When monitoring is active, each batch is clamped to the remaining
// M1 window, so events fire at exactly the same produced-tuple counts — and
// attribute exactly the same cost windows — as the tuple-at-a-time driver
// did. It returns when the input is exhausted, on the first error, or when
// ctx is canceled — cancellation interrupts the driver even while it is
// blocked in a consumer wait or a paused exchange. A nil ctx means run
// unconstrained.
func (r *FragmentRuntime) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ectx := r.cfg.Ctx
	if ectx.Costs.StartupMs > 0 {
		ectx.chargeFlat(ectx.Costs.StartupMs)
	}
	if ectx.Monitor != nil && ectx.Costs.AdaptStartupMs > 0 {
		ectx.chargeFlat(ectx.Costs.AdaptStartupMs)
	}
	if ectx.Parallelism > 1 && r.parallelOK() && !r.cfg.FT {
		// Elastic recovery needs the serial driver: the commit pairing of
		// held-output flushes with processed-prefix acks assumes one puller.
		return r.runParallel(ctx, ectx.Parallelism)
	}
	if err := r.root.Open(ectx); err != nil {
		_ = r.root.Close()
		return r.fail(err)
	}
	// Every exit below must close the operator tree exactly once: stateful
	// operators release their reserved memory (and spill runs) in Close, so
	// an error return that skips it leaks mem_inflight_bytes for the rest of
	// the process. The success path closes explicitly to surface the error.
	rootClosed := false
	defer func() {
		if !rootClosed {
			_ = r.root.Close()
		}
	}()
	// The watcher translates a context cancellation into an interrupt of
	// the driver's two blocking edges (consumer waits and paused
	// exchanges); it must not outlive Run, so Run closes done on exit.
	if ctx.Done() != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-ctx.Done():
				r.interrupt(qerr.FromContext(ctx))
			case <-done:
			}
		}()
	}
	// Monitoring baselines exclude startup and build-phase costs only in
	// the sense that per-interval deltas start here.
	lastCharged := ectx.Meter.ChargedMs()
	lastWait := r.waitMs()
	var sinceM1 int64
	monitoring := ectx.Monitor != nil && ectx.MonitorEvery > 0

	batch := relation.GetBatch()
	defer batch.Release()
	for {
		// The interrupt path unblocks the driver by making consumers report
		// a clean end-of-stream; this check converts that into the typed
		// cancellation error instead of a truncated "success".
		if ctx.Err() != nil {
			return r.fail(qerr.FromContext(ctx))
		}
		if monitoring {
			batch.SetLimit(ectx.MonitorEvery - int(sinceM1))
		}
		n, err := FillBatch(r.root, batch)
		if err != nil {
			return r.fail(err)
		}
		if n == 0 {
			break
		}
		if r.producer != nil {
			err = r.producer.SendBatch(batch.Tuples)
		} else {
			for _, t := range batch.Tuples {
				if err = r.cfg.Sink.Send(t); err != nil {
					break
				}
			}
		}
		if err != nil {
			return r.fail(err)
		}
		r.mu.Lock()
		r.produced += int64(n)
		produced := r.produced
		r.mu.Unlock()
		r.obsProduced.Add(int64(n))
		r.obsBatchSize.Observe(float64(n))
		sinceM1 += int64(n)
		if monitoring && sinceM1 >= int64(ectx.MonitorEvery) {
			charged := ectx.Meter.ChargedMs()
			wait := r.waitMs()
			consumed := r.consumedTuples()
			sel := 1.0
			if consumed > 0 {
				sel = float64(produced) / float64(consumed)
			}
			ectx.Monitor.EmitM1(M1Event{
				Fragment:       r.cfg.Fragment.ID,
				Instance:       r.cfg.Instance,
				Node:           r.cfg.Node,
				CostPerTupleMs: (charged - lastCharged) / float64(sinceM1),
				WaitPerTupleMs: (wait - lastWait) / float64(sinceM1),
				Selectivity:    sel,
				Produced:       produced,
			})
			lastCharged, lastWait, sinceM1 = charged, wait, 0
		}
	}
	if ctx.Err() != nil {
		return r.fail(qerr.FromContext(ctx))
	}
	rootClosed = true
	if err := r.root.Close(); err != nil {
		return r.fail(err)
	}
	if r.producer != nil {
		if err := r.producer.Close(); err != nil {
			return r.fail(err)
		}
	} else if err := r.cfg.Sink.Close(); err != nil {
		return r.fail(err)
	}
	ectx.Meter.Flush()
	return nil
}

// Interrupt aborts the running driver from outside with the given cause —
// the session's recovery manager uses it to bring down the runtimes of a
// crashed node with a typed node-loss error instead of letting them block
// forever on dead exchanges.
func (r *FragmentRuntime) Interrupt(cause error) { r.interrupt(cause) }

// interrupt aborts a running driver from outside: it records the cause,
// releases a driver blocked in a consumer wait (Close makes Next report
// end-of-stream, which the driver's ctx check reclassifies), and aborts a
// driver blocked in a paused output exchange.
func (r *FragmentRuntime) interrupt(cause error) {
	r.fail(cause)
	for _, c := range r.consumers {
		_ = c.Close()
	}
	if r.producer != nil {
		r.producer.Cancel(cause)
	}
}

func (r *FragmentRuntime) waitMs() float64 {
	total := 0.0
	for _, c := range r.consumers {
		_, w, _ := c.Stats()
		total += w
	}
	return total
}

func (r *FragmentRuntime) consumedTuples() int64 {
	var total int64
	for _, c := range r.consumers {
		n, _, _ := c.Stats()
		total += n
	}
	return total
}

// Produced reports the cumulative output tuple count.
func (r *FragmentRuntime) Produced() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.produced
}

func (r *FragmentRuntime) fail(err error) error {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	return err
}

// Stop unregisters the instance and releases resources. Call after the
// whole query has completed. Stop is idempotent and safe to call from
// multiple goroutines; only the first call does the work.
func (r *FragmentRuntime) Stop() {
	r.stopOnce.Do(func() {
		r.cfg.Tr.Unregister(r.cfg.Node, r.service)
		for _, c := range r.consumers {
			_ = c.Close()
		}
		if r.producer != nil {
			r.producer.Release()
		}
	})
}

// handle is the transport entry point for everything addressed to this
// fragment instance.
func (r *FragmentRuntime) handle(from simnet.NodeID, msg *transport.Message) {
	switch msg.Kind {
	case transport.KindData, transport.KindEOS:
		c := r.consumers[msg.Exchange]
		if c == nil {
			r.fail(fmt.Errorf("engine: %s: data for unknown exchange %s", r.service, msg.Exchange))
			return
		}
		if err := c.Deliver(msg); err != nil {
			r.fail(err)
		}
	case transport.KindAck:
		if r.producer != nil {
			r.producer.HandleAck(msg)
		}
	case transport.KindControl:
		r.handleControl(msg)
	default:
		r.fail(fmt.Errorf("engine: %s: unexpected %v message", r.service, msg.Kind))
	}
}

// handleControl executes adaptivity control operations and replies to the
// requester.
func (r *FragmentRuntime) handleControl(msg *transport.Message) {
	ctrl := msg.Ctrl
	reply := &transport.Ctrl{Op: ctrl.Op, RequestID: ctrl.RequestID, OK: true}
	switch ctrl.Op {
	case transport.CtrlPause:
		if err := r.requireProducer(ctrl, func(p *Producer) error { return p.Pause() }); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlResume:
		if err := r.requireProducer(ctrl, func(p *Producer) error { p.Resume(); return nil }); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlSetWeights:
		if err := r.requireProducer(ctrl, func(p *Producer) error { return p.SetWeights(ctrl.Weights) }); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlSetBucketMap:
		if err := r.requireProducer(ctrl, func(p *Producer) error { return p.SetOwnerMap(ctrl.BucketMap) }); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlReplay:
		if err := r.requireProducer(ctrl, func(p *Producer) error {
			_, err := p.Replay(ctrl.Buckets)
			return err
		}); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlResend:
		if err := r.requireProducer(ctrl, func(p *Producer) error {
			_, err := p.Resend(msg.ConsumerIdx, ctrl.Seqs)
			return err
		}); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlProgress:
		// Producers report routed/estimate; a request naming one of this
		// instance's input exchanges reports the tuples consumed from it,
		// so the Responder can estimate progress as processed/expected.
		if c := r.consumers[msg.Exchange]; c != nil {
			consumed, _, _ := c.Stats()
			reply.Routed = consumed
		} else if r.producer != nil {
			reply.Routed, reply.Est = r.producer.Progress()
		} else {
			reply.OK, reply.Err = false, "no producer on "+r.service
		}
	case transport.CtrlDiscard:
		// An empty exchange filters EVERY input queue in one quiesce, so a
		// stateful fragment can never observe a state gap between its
		// build-queue and probe-queue recalls.
		var targets []*Consumer
		if msg.Exchange == "" {
			for _, c := range r.consumers {
				targets = append(targets, c)
			}
		} else if c := r.consumers[msg.Exchange]; c != nil {
			targets = []*Consumer{c}
		} else {
			reply.OK, reply.Err = false, fmt.Sprintf("no consumer for exchange %s on %s", msg.Exchange, r.service)
			break
		}
		report := make(map[string][]int64)
		r.gate.quiesce(func() {
			for _, c := range targets {
				for prod, seqs := range c.discardLocked(ctrl.Buckets) {
					report[transport.StreamKey(c.Exchange, prod)] = seqs
				}
			}
		})
		reply.DiscardedSeqs = report
	case transport.CtrlEvict:
		if r.stateTarget == nil {
			reply.OK, reply.Err = false, "no stateful operator on "+r.service
			break
		}
		r.stateTarget.EvictBuckets(ctrl.Buckets)
	case transport.CtrlReplayLost:
		if err := r.requireProducer(ctrl, func(p *Producer) error {
			n, err := p.ReplayLost(ctrl.Peer)
			reply.Routed = int64(n)
			return err
		}); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlDetachConsumer:
		if err := r.requireProducer(ctrl, func(p *Producer) error { return p.DetachConsumer(ctrl.Peer) }); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlDetach:
		if c := r.consumers[msg.Exchange]; c != nil {
			if err := c.DetachProducer(ctrl.Peer); err != nil {
				reply.OK, reply.Err = false, err.Error()
			}
		} else {
			reply.OK, reply.Err = false, fmt.Sprintf("no consumer for exchange %s on %s", msg.Exchange, r.service)
		}
	case transport.CtrlAttach:
		if err := r.requireProducer(ctrl, func(p *Producer) error {
			return p.AddConsumer(Addr{Node: ctrl.PeerNode, Service: ctrl.PeerService}, ctrl.Weights)
		}); err != nil {
			reply.OK, reply.Err = false, err.Error()
		}
	case transport.CtrlExpectProducer:
		if c := r.consumers[msg.Exchange]; c != nil {
			c.AddProducer(Addr{Node: ctrl.PeerNode, Service: ctrl.PeerService})
		} else {
			reply.OK, reply.Err = false, fmt.Sprintf("no consumer for exchange %s on %s", msg.Exchange, r.service)
		}
	case transport.CtrlPing:
		// Liveness probe: reaching this handler is the answer.
	default:
		reply.OK, reply.Err = false, fmt.Sprintf("unknown control op %v", ctrl.Op)
	}
	if ctrl.ReplyService == "" {
		return
	}
	out := &transport.Message{Kind: transport.KindReply, Exchange: msg.Exchange, Ctrl: reply}
	if _, err := r.cfg.Tr.Send(r.cfg.Node, ctrl.ReplyTo, ctrl.ReplyService, out); err != nil {
		r.fail(qerr.Transport("control reply from "+r.service, err))
	}
}

func (r *FragmentRuntime) requireProducer(ctrl *transport.Ctrl, fn func(*Producer) error) error {
	if r.producer == nil {
		return fmt.Errorf("engine: control %v on fragment %s with no producer", ctrl.Op, r.cfg.Fragment.ID)
	}
	return fn(r.producer)
}

// ConsumedTuples reports the cumulative tuples this instance consumed from
// its input exchanges; the experiments report the per-machine tuple split.
func (r *FragmentRuntime) ConsumedTuples() int64 { return r.consumedTuples() }

// QueuedTuples reports the tuples currently waiting in the instance's input
// queues.
func (r *FragmentRuntime) QueuedTuples() int {
	total := 0
	for _, c := range r.consumers {
		_, _, q := c.Stats()
		total += q
	}
	return total
}
