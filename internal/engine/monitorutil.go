package engine

import "repro/internal/vtime"

// opMonitor lets a blocking operator emit M1 self-monitoring events while
// it absorbs input. The fragment driver's own M1 emission is keyed to
// *produced* tuples, so a hash join's build phase or a hash aggregate's
// absorb phase would otherwise be invisible to the Diagnoser — and the
// machine could not be rebalanced until the operator started emitting.
type opMonitor struct {
	ctx         *ExecContext
	count       int64
	lastCharged float64
	lastCount   int64
}

func newOpMonitor(ctx *ExecContext) *opMonitor {
	return &opMonitor{ctx: ctx, lastCharged: ctx.Meter.ChargedMs()}
}

// tick records one absorbed tuple and emits an M1 event every MonitorEvery
// tuples.
func (m *opMonitor) tick() {
	if m.ctx.Monitor == nil || m.ctx.MonitorEvery <= 0 {
		return
	}
	m.count++
	if m.count-m.lastCount < int64(m.ctx.MonitorEvery) {
		return
	}
	charged := m.ctx.Meter.ChargedMs()
	interval := m.count - m.lastCount
	m.ctx.Monitor.EmitM1(M1Event{
		Fragment:       m.ctx.Fragment,
		Instance:       m.ctx.Instance,
		Node:           m.ctx.Node.ID(),
		CostPerTupleMs: (charged - m.lastCharged) / float64(interval),
		Selectivity:    1,
		Produced:       m.count,
	})
	m.lastCharged = charged
	m.lastCount = m.count
}

// opInsertMeter charges replay-insert work happening on control-plane
// goroutines, where the driver's goroutine-confined meter must not be
// touched.
type opInsertMeter struct {
	meter *vtime.Meter
}

func newOpInsertMeter(ctx *ExecContext) *opInsertMeter {
	return &opInsertMeter{meter: vtime.NewMeter(ctx.Clock)}
}

func (m *opInsertMeter) charge(ms float64) { m.meter.Charge(ms) }
