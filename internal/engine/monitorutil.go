package engine

import (
	"sync"

	"repro/internal/vtime"
)

// opMonitor lets a blocking operator emit M1 self-monitoring events while
// it absorbs input. The fragment driver's own M1 emission is keyed to
// *produced* tuples, so a hash join's build phase or a hash aggregate's
// absorb phase would otherwise be invisible to the Diagnoser — and the
// machine could not be rebalanced until the operator started emitting.
//
// The monitor is safe for concurrent use: morsel workers absorbing in
// parallel merge their per-worker cost windows here, and events are emitted
// under the lock so Produced stays monotonic in the event stream MED sees.
type opMonitor struct {
	ctx *ExecContext

	mu        sync.Mutex
	count     int64
	lastCount int64
	// windowMs accumulates the cost charged for absorbed tuples since the
	// last emission. Callers measure their own meter's delta (meters are
	// goroutine-confined) and pass it in, so the merged window attributes
	// exactly what the serial driver's meter reading attributed.
	windowMs float64
}

func newOpMonitor(ctx *ExecContext) *opMonitor {
	return &opMonitor{ctx: ctx}
}

// tickN records n absorbed tuples that cost chargedMs, emitting an M1 event
// whenever the MonitorEvery window fills. Emission boundaries, per-event
// intervals, and cost attribution are identical to n sequential per-tuple
// ticks with the batch's charges applied up front — the serial cadence —
// because absorb batches are clamped to the MonitorEvery window (at most
// one boundary crossing per call).
func (m *opMonitor) tickN(n int, chargedMs float64) {
	if m.ctx.Monitor == nil || m.ctx.MonitorEvery <= 0 || n <= 0 {
		return
	}
	every := int64(m.ctx.MonitorEvery)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.windowMs += chargedMs
	m.count += int64(n)
	if m.count-m.lastCount < every {
		return
	}
	produced := m.lastCount + every
	m.ctx.Monitor.EmitM1(M1Event{
		Fragment:       m.ctx.Fragment,
		Instance:       m.ctx.Instance,
		Node:           m.ctx.Node.ID(),
		CostPerTupleMs: m.windowMs / float64(every),
		Selectivity:    1,
		Produced:       produced,
	})
	m.lastCount = produced
	m.windowMs = 0
}

// opInsertMeter charges replay-insert work happening on control-plane
// goroutines, where a driver's or worker's goroutine-confined meter must
// not be touched. Backed by a SharedMeter: remote transports may deliver
// replay buffers from several connection goroutines at once.
type opInsertMeter struct {
	meter *vtime.SharedMeter
}

func newOpInsertMeter(ctx *ExecContext) *opInsertMeter {
	return &opInsertMeter{meter: vtime.NewSharedMeter(ctx.Clock)}
}

func (m *opInsertMeter) charge(ms float64) { m.meter.Charge(ms) }
