package engine

import (
	"fmt"
	"sync"

	"repro/internal/relation"
)

// StateTarget is implemented by stateful operators whose state is organised
// in routing buckets and can be repartitioned at runtime: the Responder's
// retrospective (R1) protocol evicts buckets from old owners and recreates
// them on new owners by replaying recovery-log tuples (paper §3.1).
type StateTarget interface {
	// InsertState absorbs replayed build tuples into operator state.
	InsertState(tuples []relation.Tuple)
	// EvictBuckets discards the state of the given buckets.
	EvictBuckets(buckets []int32)
	// StateSize reports the number of tuples held as state.
	StateSize() int
}

// HashJoin is the partitioned equi-join: it drains its build input into a
// bucketed hash table during Open, then streams the probe input, emitting
// one concatenated tuple per match. Each clone of the join holds only the
// buckets the current distribution policy routes to it; moving a bucket to
// another clone moves the corresponding state.
type HashJoin struct {
	Build, Probe         Iterator
	BuildKeys, ProbeKeys []int

	ctx     *ExecContext
	buckets int

	// mu guards state: the probe path mutates nothing but reads it, while
	// the control path (evict/replay) mutates it concurrently.
	mu    sync.Mutex
	state map[int32]map[uint64][]relation.Tuple
	held  int

	// pending holds overflow outputs that did not fit the current output
	// batch (a single probe tuple can match many build tuples).
	pending []relation.Tuple
	// in is the owned probe-side input batch; arena amortizes output-tuple
	// allocation.
	in    *relation.Batch
	arena relation.Arena
	// insertMeter charges replay-insert work happening on control
	// goroutines (the driver's meter is goroutine-confined).
	insertMeter *opInsertMeter
	mon         *opMonitor

	buildDone bool
}

// Open implements Iterator: it fully drains the build input, batch-at-a-time
// (clamped to the M1 window so build-phase monitoring cadence is unchanged).
func (j *HashJoin) Open(ctx *ExecContext) error {
	j.ctx = ctx
	j.buckets = ctx.Buckets
	if j.buckets <= 0 {
		j.buckets = DefaultBuckets
	}
	j.state = make(map[int32]map[uint64][]relation.Tuple)
	j.insertMeter = newOpInsertMeter(ctx)
	j.mon = newOpMonitor(ctx)
	j.in = relation.GetBatch()
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	j.in.SetLimit(batchLimit(ctx, relation.DefaultBatchSize))
	for {
		n, err := FillBatch(j.Build, j.in)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		j.ctx.chargeN(j.ctx.Costs.JoinBuildMs, n)
		j.insertBatch(j.in.Tuples)
		// The build phase produces nothing, so the driver's M1 emission is
		// silent; emit operator-level events so the Diagnoser can already
		// rebalance a perturbed build.
		for i := 0; i < n; i++ {
			j.mon.tick()
		}
	}
	j.buildDone = true
	return j.Probe.Open(ctx)
}

// insert adds one build tuple to its bucket. Inserts after Close (a replay
// racing query completion) are benign no-ops: the join has already produced
// its full output from complete state.
func (j *HashJoin) insert(t relation.Tuple) {
	h := t.Hash(j.BuildKeys)
	b := int32(h % uint64(j.buckets))
	j.mu.Lock()
	if j.state == nil {
		j.mu.Unlock()
		return
	}
	m := j.state[b]
	if m == nil {
		m = make(map[uint64][]relation.Tuple)
		j.state[b] = m
	}
	m[h] = append(m[h], t)
	j.held++
	j.mu.Unlock()
}

// insertBatch adds a batch of build tuples under one lock acquisition.
func (j *HashJoin) insertBatch(ts []relation.Tuple) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == nil {
		return
	}
	for _, t := range ts {
		h := t.Hash(j.BuildKeys)
		b := int32(h % uint64(j.buckets))
		m := j.state[b]
		if m == nil {
			m = make(map[uint64][]relation.Tuple)
			j.state[b] = m
		}
		m[h] = append(m[h], t)
		j.held++
	}
}

// Next implements Iterator.
func (j *HashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		t, ok, err := j.Probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		// The probe is "the processing of each tuple by the join" that the
		// paper's sleep() perturbation inflates.
		j.ctx.charge(j.ctx.Costs.JoinProbeMs)
		h := t.Hash(j.ProbeKeys)
		b := int32(h % uint64(j.buckets))
		j.mu.Lock()
		for _, cand := range j.state[b][h] {
			if j.keysEqual(cand, t) {
				j.pending = append(j.pending, cand.Concat(t))
			}
		}
		j.mu.Unlock()
	}
}

// NextBatch implements BatchIterator: it probes whole input batches under
// one state-lock acquisition, emitting concatenated matches carved from an
// arena. Matches overflowing dst spill to pending and lead the next batch.
func (j *HashJoin) NextBatch(dst *relation.Batch) (int, error) {
	dst.Rewind()
	for len(j.pending) > 0 && !dst.Full() {
		dst.Append(j.pending[0])
		j.pending = j.pending[1:]
	}
	j.in.SetLimit(dst.Cap())
	for dst.Len() == 0 {
		n, err := FillBatch(j.Probe, j.in)
		if err != nil {
			return dst.Len(), err
		}
		if n == 0 {
			return dst.Len(), nil
		}
		j.ctx.chargeN(j.ctx.Costs.JoinProbeMs, n)
		j.mu.Lock()
		for _, t := range j.in.Tuples {
			h := t.Hash(j.ProbeKeys)
			b := int32(h % uint64(j.buckets))
			for _, cand := range j.state[b][h] {
				if !j.keysEqual(cand, t) {
					continue
				}
				out := j.arena.Alloc(len(cand) + len(t))
				copy(out, cand)
				copy(out[len(cand):], t)
				if dst.Full() {
					j.pending = append(j.pending, out)
				} else {
					dst.Append(out)
				}
			}
		}
		j.mu.Unlock()
	}
	return dst.Len(), nil
}

// keysEqual guards against 64-bit hash collisions.
func (j *HashJoin) keysEqual(build, probe relation.Tuple) bool {
	for i := range j.BuildKeys {
		if !build[j.BuildKeys[i]].Equal(probe[j.ProbeKeys[i]]) {
			return false
		}
	}
	return true
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	errB := j.Build.Close()
	errP := j.Probe.Close()
	j.mu.Lock()
	j.state = nil
	j.held = 0
	j.mu.Unlock()
	if j.in != nil {
		j.in.Release()
		j.in = nil
	}
	if errB != nil {
		return errB
	}
	return errP
}

// InsertState implements StateTarget: replayed build tuples recreate bucket
// state on this clone. It may run concurrently with probing.
func (j *HashJoin) InsertState(tuples []relation.Tuple) {
	for _, t := range tuples {
		j.insertMeter.charge(j.ctx.Node.PerturbedCost(j.ctx.Costs.JoinBuildMs))
		j.insert(t)
	}
}

// EvictBuckets implements StateTarget.
func (j *HashJoin) EvictBuckets(buckets []int32) {
	j.mu.Lock()
	if j.state == nil {
		j.mu.Unlock()
		return
	}
	for _, b := range buckets {
		for _, tuples := range j.state[b] {
			j.held -= len(tuples)
		}
		delete(j.state, b)
	}
	j.mu.Unlock()
}

// StateSize implements StateTarget.
func (j *HashJoin) StateSize() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.held
}

// BucketOf reports the bucket a build-side tuple belongs to; tests use it
// to cross-check alignment with the distribution policy.
func (j *HashJoin) BucketOf(t relation.Tuple) (int32, error) {
	if j.buckets == 0 {
		return 0, fmt.Errorf("engine: join not opened")
	}
	return int32(t.Hash(j.BuildKeys) % uint64(j.buckets)), nil
}
