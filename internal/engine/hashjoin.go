package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// StateTarget is implemented by stateful operators whose state is organised
// in routing buckets and can be repartitioned at runtime: the Responder's
// retrospective (R1) protocol evicts buckets from old owners and recreates
// them on new owners by replaying recovery-log tuples (paper §3.1).
type StateTarget interface {
	// InsertState absorbs replayed build tuples into operator state.
	InsertState(tuples []relation.Tuple)
	// EvictBuckets discards the state of the given buckets.
	EvictBuckets(buckets []int32)
	// StateSize reports the number of tuples held as state.
	StateSize() int
}

// joinPartitions is the lock-striping factor of the shared build table. A
// routing bucket maps to partition bucket%joinPartitions, so an R1 eviction
// of a bucket touches exactly one partition and morsel workers building or
// probing different partitions never contend.
const joinPartitions = 16

type joinPart struct {
	mu    sync.Mutex
	state map[int32]map[uint64][]relation.Tuple
	held  int
}

// joinState is the build-side hash table shared by every worker clone of one
// HashJoin (and by the serial join, which is simply a one-worker pool). It
// is the unit the R1 protocol targets: evict/replay address buckets here, so
// repartitioning is oblivious to how many workers built the table.
type joinState struct {
	initOnce sync.Once
	ready    atomic.Bool
	ctx      *ExecContext // first opener's context; shared fields only
	buckets  int

	insertMeter *opInsertMeter
	mon         *opMonitor
	barrier     buildBarrier
	// refs counts unclosed clones; the last Close releases the table.
	refs  atomic.Int32
	parts [joinPartitions]joinPart
}

func newJoinState() *joinState {
	s := &joinState{}
	s.refs.Store(1)
	s.barrier.reset(1)
	return s
}

func (s *joinState) init(ctx *ExecContext) {
	s.initOnce.Do(func() {
		s.ctx = ctx
		s.buckets = ctx.Buckets
		if s.buckets <= 0 {
			s.buckets = DefaultBuckets
		}
		s.insertMeter = newOpInsertMeter(ctx)
		s.mon = newOpMonitor(ctx)
		for i := range s.parts {
			s.parts[i].state = make(map[int32]map[uint64][]relation.Tuple)
		}
		s.ready.Store(true)
	})
}

func (s *joinState) part(b int32) *joinPart {
	return &s.parts[int(b)%joinPartitions]
}

// insertBatch adds build tuples, locking each partition at most once per
// distinct partition touched by the batch.
func (s *joinState) insertBatch(keys []int, ts []relation.Tuple) {
	for _, t := range ts {
		h := t.Hash(keys)
		b := int32(h % uint64(s.buckets))
		p := s.part(b)
		p.mu.Lock()
		if p.state != nil {
			m := p.state[b]
			if m == nil {
				m = make(map[uint64][]relation.Tuple)
				p.state[b] = m
			}
			m[h] = append(m[h], t)
			p.held++
		}
		p.mu.Unlock()
	}
}

// release drops one clone reference; the last one frees the table. Inserts
// arriving after release (a replay racing query completion) become benign
// no-ops, as before.
func (s *joinState) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		p.state = nil
		p.held = 0
		p.mu.Unlock()
	}
}

// buildBarrier holds probers back until every worker has finished building
// (or absorbing, for the aggregate). A worker that fails mid-build still
// arrives — the drain loops arrive via defer — and an interrupted fragment
// closes the shared source so remaining drains return 0 and arrive promptly.
// cancel covers the one remaining hang: a worker that errors before ever
// reaching the barrier operator's Open.
type buildBarrier struct {
	mu        sync.Mutex
	remaining int
	cancelled bool
	done      chan struct{}
}

func (b *buildBarrier) reset(n int) {
	b.mu.Lock()
	b.remaining = n
	b.cancelled = false
	b.done = make(chan struct{})
	b.mu.Unlock()
}

func (b *buildBarrier) arrive() {
	b.mu.Lock()
	b.remaining--
	if b.remaining == 0 && !b.cancelled {
		close(b.done)
	}
	b.mu.Unlock()
}

// cancel releases all waiters with an error; used when a sibling worker
// fails before arriving.
func (b *buildBarrier) cancel() {
	b.mu.Lock()
	if !b.cancelled && b.remaining > 0 {
		b.cancelled = true
		close(b.done)
	}
	b.mu.Unlock()
}

func (b *buildBarrier) wait() error {
	b.mu.Lock()
	done := b.done
	b.mu.Unlock()
	<-done
	b.mu.Lock()
	cancelled := b.cancelled
	b.mu.Unlock()
	if cancelled {
		return fmt.Errorf("engine: build barrier cancelled by failed worker")
	}
	return nil
}

// HashJoin is the partitioned equi-join: it drains its build input into a
// bucketed hash table during Open, then streams the probe input, emitting
// one concatenated tuple per match. Each clone of the join holds only the
// buckets the current distribution policy routes to it; moving a bucket to
// another clone moves the corresponding state.
//
// Under morsel parallelism several worker clones share one joinState: all
// workers drain the shared build source into the striped table, meet at a
// barrier, then probe concurrently. Build order across workers is immaterial
// — the table is a bag per (bucket, hash) and probing starts only after the
// barrier, so the probe sees the same complete table a serial build yields.
type HashJoin struct {
	Build, Probe         Iterator
	BuildKeys, ProbeKeys []int

	ctx     *ExecContext
	buckets int
	shared  *joinState

	// pending holds overflow outputs that did not fit the current output
	// batch (a single probe tuple can match many build tuples).
	pending []relation.Tuple
	// in is the owned probe-side input batch; arena amortizes output-tuple
	// allocation.
	in    *relation.Batch
	arena relation.Arena
}

// ensureShared lazily creates the shared state. Not safe for concurrent
// callers: it runs during plan compilation / worker-chain construction,
// strictly before workers start.
func (j *HashJoin) ensureShared() *joinState {
	if j.shared == nil {
		j.shared = newJoinState()
	}
	return j.shared
}

// WorkerClone returns a join over the given per-worker inputs that shares
// this join's build table, barrier, and monitoring state.
func (j *HashJoin) WorkerClone(build, probe Iterator) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe,
		BuildKeys: j.BuildKeys, ProbeKeys: j.ProbeKeys,
		shared: j.ensureShared(),
	}
}

// SetWorkers declares how many clones (including any that is itself run)
// will Open and Close this join's shared state. Call before any worker
// starts; the default is 1, the serial contract.
func (j *HashJoin) SetWorkers(n int) {
	s := j.ensureShared()
	s.refs.Store(int32(n))
	s.barrier.reset(n)
}

// Open implements Iterator: it drains the build input batch-at-a-time
// (clamped to the M1 window so build-phase monitoring cadence is unchanged)
// into the shared table, then waits for every sibling worker's build before
// opening the probe side.
func (j *HashJoin) Open(ctx *ExecContext) error {
	j.ctx = ctx
	s := j.ensureShared()
	s.init(ctx)
	j.buckets = s.buckets
	j.in = relation.GetBatch()
	if err := j.openBuild(ctx, s); err != nil {
		return err
	}
	if err := s.barrier.wait(); err != nil {
		return err
	}
	return j.Probe.Open(ctx)
}

func (j *HashJoin) openBuild(ctx *ExecContext, s *joinState) error {
	defer s.barrier.arrive()
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	j.in.SetLimit(batchLimit(ctx, relation.DefaultBatchSize))
	prev := ctx.Meter.ChargedMs()
	for {
		n, err := FillBatch(j.Build, j.in)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		ctx.chargeN(ctx.Costs.JoinBuildMs, n)
		s.insertBatch(j.BuildKeys, j.in.Tuples)
		// The build phase produces nothing, so the driver's M1 emission is
		// silent; emit operator-level events so the Diagnoser can already
		// rebalance a perturbed build. Each worker attributes its own
		// meter's delta for the batch, which the shared monitor merges.
		cur := ctx.Meter.ChargedMs()
		s.mon.tickN(n, cur-prev)
		prev = cur
	}
}

// Next implements Iterator.
func (j *HashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		t, ok, err := j.Probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		// The probe is "the processing of each tuple by the join" that the
		// paper's sleep() perturbation inflates.
		j.ctx.charge(j.ctx.Costs.JoinProbeMs)
		h := t.Hash(j.ProbeKeys)
		b := int32(h % uint64(j.buckets))
		p := j.shared.part(b)
		p.mu.Lock()
		for _, cand := range p.state[b][h] {
			if j.keysEqual(cand, t) {
				j.pending = append(j.pending, cand.Concat(t))
			}
		}
		p.mu.Unlock()
	}
}

// NextBatch implements BatchIterator: it probes whole input batches,
// emitting concatenated matches carved from an arena. Matches overflowing
// dst spill to pending and lead the next batch.
func (j *HashJoin) NextBatch(dst *relation.Batch) (int, error) {
	dst.Rewind()
	for len(j.pending) > 0 && !dst.Full() {
		dst.Append(j.pending[0])
		j.pending = j.pending[1:]
	}
	j.in.SetLimit(dst.Cap())
	for dst.Len() == 0 {
		n, err := FillBatch(j.Probe, j.in)
		if err != nil {
			return dst.Len(), err
		}
		if n == 0 {
			return dst.Len(), nil
		}
		j.ctx.chargeN(j.ctx.Costs.JoinProbeMs, n)
		for _, t := range j.in.Tuples {
			h := t.Hash(j.ProbeKeys)
			b := int32(h % uint64(j.buckets))
			p := j.shared.part(b)
			p.mu.Lock()
			for _, cand := range p.state[b][h] {
				if !j.keysEqual(cand, t) {
					continue
				}
				out := j.arena.Alloc(len(cand) + len(t))
				copy(out, cand)
				copy(out[len(cand):], t)
				if dst.Full() {
					j.pending = append(j.pending, out)
				} else {
					dst.Append(out)
				}
			}
			p.mu.Unlock()
		}
	}
	return dst.Len(), nil
}

// keysEqual guards against 64-bit hash collisions.
func (j *HashJoin) keysEqual(build, probe relation.Tuple) bool {
	for i := range j.BuildKeys {
		if !build[j.BuildKeys[i]].Equal(probe[j.ProbeKeys[i]]) {
			return false
		}
	}
	return true
}

// Close implements Iterator. The shared table survives until the last
// sibling clone closes.
func (j *HashJoin) Close() error {
	errB := j.Build.Close()
	errP := j.Probe.Close()
	if j.in != nil {
		j.in.Release()
		j.in = nil
	}
	if j.shared != nil {
		j.shared.release()
	}
	if errB != nil {
		return errB
	}
	return errP
}

// InsertState implements StateTarget: replayed build tuples recreate bucket
// state on this clone. It may run concurrently with probing, and with
// several transport goroutines delivering replay buffers at once.
func (j *HashJoin) InsertState(tuples []relation.Tuple) {
	s := j.shared
	if s == nil || !s.ready.Load() {
		return
	}
	for _, t := range tuples {
		s.insertMeter.charge(s.ctx.Node.PerturbedCost(s.ctx.Costs.JoinBuildMs))
		s.insertBatch(j.BuildKeys, []relation.Tuple{t})
	}
}

// EvictBuckets implements StateTarget.
func (j *HashJoin) EvictBuckets(buckets []int32) {
	s := j.shared
	if s == nil || !s.ready.Load() {
		return
	}
	for _, b := range buckets {
		p := s.part(b)
		p.mu.Lock()
		if p.state != nil {
			for _, tuples := range p.state[b] {
				p.held -= len(tuples)
			}
			delete(p.state, b)
		}
		p.mu.Unlock()
	}
}

// StateSize implements StateTarget.
func (j *HashJoin) StateSize() int {
	s := j.shared
	if s == nil || !s.ready.Load() {
		return 0
	}
	held := 0
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		held += p.held
		p.mu.Unlock()
	}
	return held
}

// Abort releases sibling workers blocked at the build barrier; the worker
// pool calls it when a worker fails before reaching this join's Open.
func (j *HashJoin) Abort() {
	if j.shared != nil {
		j.shared.barrier.cancel()
	}
}

// BucketOf reports the bucket a build-side tuple belongs to; tests use it
// to cross-check alignment with the distribution policy.
func (j *HashJoin) BucketOf(t relation.Tuple) (int32, error) {
	if j.shared == nil || !j.shared.ready.Load() {
		return 0, fmt.Errorf("engine: join not opened")
	}
	return int32(t.Hash(j.BuildKeys) % uint64(j.shared.buckets)), nil
}
