package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/storage"
)

// StateTarget is implemented by stateful operators whose state is organised
// in routing buckets and can be repartitioned at runtime: the Responder's
// retrospective (R1) protocol evicts buckets from old owners and recreates
// them on new owners by replaying recovery-log tuples (paper §3.1).
type StateTarget interface {
	// InsertState absorbs replayed build tuples into operator state.
	InsertState(tuples []relation.Tuple)
	// EvictBuckets discards the state of the given buckets.
	EvictBuckets(buckets []int32)
	// StateSize reports the number of tuples held as state.
	StateSize() int
}

// joinPartitions is the lock-striping factor of the shared build table. A
// routing bucket maps to partition bucket%joinPartitions, so an R1 eviction
// of a bucket touches exactly one partition and morsel workers building or
// probing different partitions never contend.
const joinPartitions = 16

// joinEntry is one build tuple in a partition's entry arena. Chains thread
// entries of the same (bucket, hash) together in insertion order, so
// duplicate build keys keep the FIFO match order the old per-key slices had.
type joinEntry struct {
	t    relation.Tuple
	next int32 // arena index of the next entry in the chain; -1 ends it
}

// chainRef locates one hash chain in the arena. The routing bucket is a
// pure function of the hash (b = h % buckets), so chains are keyed by hash
// alone: one map lookup per insert/probe instead of two, and no per-bucket
// inner maps to allocate. R1 evictions — rare, one per adaptation — recover
// the bucket by scanning the partition's chains.
type chainRef struct {
	head, tail int32
	n          int32
}

type joinPart struct {
	mu sync.Mutex
	// entries is the partition's build-tuple arena, pre-sized from the
	// optimiser's cardinality estimate: inserting appends here instead of
	// growing one slice per distinct key.
	entries []joinEntry
	chains  map[uint64]chainRef // hash → chain (bucket derivable from hash)
	held    int

	// Grace-hash spill state (joins under a memory budget, serial or
	// morsel-parallel; see spill.go). Once spilled, the partition's build
	// tuples live in a build run, probe tuples route to a probe run, and
	// matching is deferred to the post-probe drain.
	bytes      int64 // accounted bytes of the in-memory entries
	spilled    bool
	build      storage.RunWriter
	probe      storage.RunWriter
	buildName  string
	probeName  string
	buildCount int64           // records appended to the build run
	probeCount int64           // records appended to the probe run
	spillLive  map[int32]int64 // live (unevicted) spilled tuples per bucket
	evicts     []spillEvict    // R1 evictions recorded while spilled
}

// joinState is the build-side hash table shared by every worker clone of one
// HashJoin (and by the serial join, which is simply a one-worker pool). It
// is the unit the R1 protocol targets: evict/replay address buckets here, so
// repartitioning is oblivious to how many workers built the table.
type joinState struct {
	initOnce sync.Once
	ready    atomic.Bool
	ctx      *ExecContext // first opener's context; shared fields only
	buckets  int

	insertMeter *opInsertMeter
	mon         *opMonitor
	barrier     buildBarrier
	// refs counts unclosed clones; the last Close releases the table.
	refs  atomic.Int32
	parts [joinPartitions]joinPart

	// Spill wiring (see spill.go). spillOn is decided once at init: a
	// budget and backend are configured. Both serial and morsel-parallel
	// joins spill; workers account through per-stripe budget handles and
	// coordinate partition eviction under spillMu.
	spillOn bool
	mem     *storage.Budget
	acct0   *storage.BudgetAcct // stripe-0 handle for replay/release paths
	backend storage.Backend
	base    string // run-name namespace for this join's partitions
	met     spillMetrics
	// spillMu serializes victim selection and partition eviction across
	// workers, so two breaching workers never race to spill partitions.
	spillMu sync.Mutex

	// Parallel drain coordination: probers meet at probeBarrier once their
	// probe inputs are exhausted, one worker seals the spilled runs
	// (sealOnce), and the resulting pairs queue in pairQ for any worker to
	// drain — pairs are independent, so workers pull and match them
	// concurrently, repartitioned sub-pairs re-queueing at the front.
	probeBarrier buildBarrier
	sealOnce     sync.Once
	pairMu       sync.Mutex
	pairQ        []spillPair

	errMu    sync.Mutex
	spillErr error // first spill I/O failure; surfaced before completion
}

func newJoinState() *joinState {
	s := &joinState{}
	s.refs.Store(1)
	s.barrier.reset(1)
	s.probeBarrier.reset(1)
	return s
}

func (s *joinState) init(ctx *ExecContext, est int) {
	s.initOnce.Do(func() {
		s.ctx = ctx
		s.buckets = ctx.Buckets
		if s.buckets <= 0 {
			s.buckets = DefaultBuckets
		}
		s.insertMeter = newOpInsertMeter(ctx)
		s.mon = newOpMonitor(ctx)
		// Pre-size from the optimiser's build-side estimate: each partition
		// arena and chain map gets its uniform share plus 25% headroom for
		// skew. est <= 0 (no estimate) falls back to grow-on-demand.
		perPart := 0
		if est > 0 {
			perPart = est/joinPartitions + est/(4*joinPartitions) + 8
		}
		for i := range s.parts {
			p := &s.parts[i]
			p.chains = make(map[uint64]chainRef, perPart)
			if perPart > 0 {
				p.entries = make([]joinEntry, 0, perPart)
			}
		}
		if ctx.spillEnabled() {
			s.spillOn = true
			s.mem = ctx.Mem
			s.acct0 = ctx.Mem.Acct(0)
			s.backend = ctx.Spill
			s.base = ctx.spillRunName("join")
			s.met = newSpillMetrics()
		} else {
			recordUngoverned(ctx, "join")
		}
		s.ready.Store(true)
	})
}

func (s *joinState) part(b int32) *joinPart {
	return &s.parts[int(b)%joinPartitions]
}

// insertBatch adds build tuples one partition lock at a time, accounting
// through the calling worker's budget stripe. The breach check runs once
// per batch: Over is a single shared load, and the bounded over-shoot of a
// batch (at most one morsel of entries) just means the victim partition
// spills marginally later.
func (s *joinState) insertBatch(a *storage.BudgetAcct, keys []int, ts []relation.Tuple) {
	for _, t := range ts {
		s.insertOne(a, keys, t)
	}
	if s.spillOn && a.Over() {
		s.spillVictims()
	}
}

// insertOne appends one build tuple to its partition's entry arena and links
// it onto the hash chain. Bytes are reserved on a before the partition's
// byte count is published, so a concurrent spiller releasing p.bytes is
// always covered by completed reservations and the accountant never clamps
// on a live partition.
func (s *joinState) insertOne(a *storage.BudgetAcct, keys []int, t relation.Tuple) {
	h := t.Hash(keys)
	b := int32(h % uint64(s.buckets))
	p := s.part(b)
	var reserve int64
	if s.spillOn {
		reserve = spillEntryBytes(t)
		a.Reserve(reserve)
	}
	p.mu.Lock()
	if p.spilled {
		s.appendSpilledLocked(p, b, t)
		p.mu.Unlock()
		if reserve > 0 {
			a.Release(reserve) // routed to the build run, not held in memory
		}
		return
	}
	if p.chains == nil {
		p.mu.Unlock()
		if reserve > 0 {
			a.Release(reserve) // table already released (post-close replay)
		}
		return
	}
	idx := int32(len(p.entries))
	p.entries = append(p.entries, joinEntry{t: t, next: -1})
	if c, ok := p.chains[h]; ok {
		p.entries[c.tail].next = idx
		c.tail, c.n = idx, c.n+1
		p.chains[h] = c
	} else {
		p.chains[h] = chainRef{head: idx, tail: idx, n: 1}
	}
	p.held++
	p.bytes += reserve
	p.mu.Unlock()
}

// release drops one clone reference; the last one frees the table. Inserts
// arriving after release (a replay racing query completion) become benign
// no-ops, as before.
func (s *joinState) release() {
	if s.refs.Add(-1) != 0 {
		return
	}
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		if p.build != nil {
			_ = p.build.Close()
			p.build = nil
		}
		if p.probe != nil {
			_ = p.probe.Close()
			p.probe = nil
		}
		if p.spilled {
			_ = s.backend.Remove(p.buildName)
			_ = s.backend.Remove(p.probeName)
			p.spilled = false
			p.spillLive = nil
			p.evicts = nil
		}
		if p.bytes > 0 {
			s.mem.Release(p.bytes)
			p.bytes = 0
		}
		p.chains = nil
		p.entries = nil
		p.held = 0
		p.mu.Unlock()
	}
	// Queued drain pairs no clone ever pulled (a cancelled or failed query)
	// leave their runs behind; sweep them with the table.
	s.pairMu.Lock()
	for _, pr := range s.pairQ {
		_ = s.backend.Remove(pr.build)
		_ = s.backend.Remove(pr.probe)
	}
	s.pairQ = nil
	s.pairMu.Unlock()
}

// buildBarrier holds probers back until every worker has finished building
// (or absorbing, for the aggregate). A worker that fails mid-build still
// arrives — the drain loops arrive via defer — and an interrupted fragment
// closes the shared source so remaining drains return 0 and arrive promptly.
// cancel covers the one remaining hang: a worker that errors before ever
// reaching the barrier operator's Open.
type buildBarrier struct {
	mu        sync.Mutex
	remaining int
	cancelled bool
	done      chan struct{}
}

func (b *buildBarrier) reset(n int) {
	b.mu.Lock()
	b.remaining = n
	b.cancelled = false
	b.done = make(chan struct{})
	b.mu.Unlock()
}

func (b *buildBarrier) arrive() {
	b.mu.Lock()
	b.remaining--
	if b.remaining == 0 && !b.cancelled {
		close(b.done)
	}
	b.mu.Unlock()
}

// cancel releases all waiters with an error; used when a sibling worker
// fails before arriving.
func (b *buildBarrier) cancel() {
	b.mu.Lock()
	if !b.cancelled && b.remaining > 0 {
		b.cancelled = true
		close(b.done)
	}
	b.mu.Unlock()
}

func (b *buildBarrier) wait() error {
	b.mu.Lock()
	done := b.done
	b.mu.Unlock()
	<-done
	b.mu.Lock()
	cancelled := b.cancelled
	b.mu.Unlock()
	if cancelled {
		return fmt.Errorf("engine: build barrier cancelled by failed worker")
	}
	return nil
}

// HashJoin is the partitioned equi-join: it drains its build input into a
// bucketed hash table during Open, then streams the probe input, emitting
// one concatenated tuple per match. Each clone of the join holds only the
// buckets the current distribution policy routes to it; moving a bucket to
// another clone moves the corresponding state.
//
// Under morsel parallelism several worker clones share one joinState: all
// workers drain the shared build source into the striped table, meet at a
// barrier, then probe concurrently. Build order across workers is immaterial
// — the table is a bag per (bucket, hash) and probing starts only after the
// barrier, so the probe sees the same complete table a serial build yields.
type HashJoin struct {
	Build, Probe         Iterator
	BuildKeys, ProbeKeys []int
	// BuildEst is the optimiser's build-side cardinality estimate; when
	// positive, the shared table's partition arenas and chain maps are
	// pre-sized for it instead of growing on demand.
	BuildEst int

	ctx     *ExecContext
	buckets int
	shared  *joinState
	// acct is this clone's budget stripe handle (stripe 0 for serial runs).
	acct *storage.BudgetAcct

	// pending holds overflow outputs that did not fit the current output
	// batch (a single probe tuple can match many build tuples); pendHead
	// indexes the next undelivered one, so draining keeps the slice's
	// capacity as a reusable scratch buffer instead of reslicing it away.
	pending  []relation.Tuple
	pendHead int
	// in is the owned probe-side input batch; arena amortizes output-tuple
	// allocation.
	in    *relation.Batch
	arena relation.Arena
	// drain matches probe tuples deferred to spilled partitions once the
	// streaming probe phase is exhausted (see spill.go).
	drain *joinSpillDrain
}

// ensureShared lazily creates the shared state. Not safe for concurrent
// callers: it runs during plan compilation / worker-chain construction,
// strictly before workers start.
func (j *HashJoin) ensureShared() *joinState {
	if j.shared == nil {
		j.shared = newJoinState()
	}
	return j.shared
}

// WorkerClone returns a join over the given per-worker inputs that shares
// this join's build table, barrier, and monitoring state.
func (j *HashJoin) WorkerClone(build, probe Iterator) *HashJoin {
	return &HashJoin{
		Build: build, Probe: probe,
		BuildKeys: j.BuildKeys, ProbeKeys: j.ProbeKeys,
		BuildEst: j.BuildEst,
		shared:   j.ensureShared(),
	}
}

// SetWorkers declares how many clones (including any that is itself run)
// will Open and Close this join's shared state. Call before any worker
// starts; the default is 1, the serial contract.
func (j *HashJoin) SetWorkers(n int) {
	s := j.ensureShared()
	s.refs.Store(int32(n))
	s.barrier.reset(n)
	s.probeBarrier.reset(n)
}

// Open implements Iterator: it drains the build input batch-at-a-time
// (clamped to the M1 window so build-phase monitoring cadence is unchanged)
// into the shared table, then waits for every sibling worker's build before
// opening the probe side.
func (j *HashJoin) Open(ctx *ExecContext) error {
	j.ctx = ctx
	s := j.ensureShared()
	s.init(ctx, j.BuildEst)
	j.buckets = s.buckets
	j.acct = ctx.memAcct()
	j.in = relation.GetBatch()
	if err := j.openBuild(ctx, s); err != nil {
		return err
	}
	if err := s.barrier.wait(); err != nil {
		return err
	}
	return j.Probe.Open(ctx)
}

func (j *HashJoin) openBuild(ctx *ExecContext, s *joinState) error {
	defer s.barrier.arrive()
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	j.in.SetLimit(batchLimit(ctx, relation.DefaultBatchSize))
	prev := ctx.Meter.ChargedMs()
	for {
		n, err := FillBatch(j.Build, j.in)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		ctx.chargeN(ctx.Costs.JoinBuildMs, n)
		s.insertBatch(j.acct, j.BuildKeys, j.in.Tuples)
		// The build phase produces nothing, so the driver's M1 emission is
		// silent; emit operator-level events so the Diagnoser can already
		// rebalance a perturbed build. Each worker attributes its own
		// meter's delta for the batch, which the shared monitor merges.
		cur := ctx.Meter.ChargedMs()
		s.mon.tickN(n, cur-prev)
		prev = cur
	}
}

// Next implements Iterator.
func (j *HashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if j.pendHead < len(j.pending) {
			out := j.pending[j.pendHead]
			j.pendHead++
			return out, true, nil
		}
		j.pending, j.pendHead = j.pending[:0], 0
		t, ok, err := j.Probe.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if j.shared.spillOn {
				more, derr := j.drainPending()
				if derr != nil {
					return nil, false, derr
				}
				if more {
					continue
				}
			}
			return nil, false, nil
		}
		// The probe is "the processing of each tuple by the join" that the
		// paper's sleep() perturbation inflates.
		j.ctx.charge(j.ctx.Costs.JoinProbeMs)
		h := t.Hash(j.ProbeKeys)
		b := int32(h % uint64(j.buckets))
		p := j.shared.part(b)
		p.mu.Lock()
		if p.spilled {
			j.shared.routeProbeLocked(p, t)
			p.mu.Unlock()
			continue
		}
		if c, ok := p.chains[h]; ok {
			for e := c.head; e >= 0; e = p.entries[e].next {
				if cand := p.entries[e].t; j.keysEqual(cand, t) {
					j.pending = append(j.pending, cand.Concat(t))
				}
			}
		}
		p.mu.Unlock()
	}
}

// NextBatch implements BatchIterator: it probes whole input batches,
// emitting concatenated matches carved from an arena. Matches overflowing
// dst spill to pending and lead the next batch.
func (j *HashJoin) NextBatch(dst *relation.Batch) (int, error) {
	dst.Rewind()
	for j.pendHead < len(j.pending) && !dst.Full() {
		dst.Append(j.pending[j.pendHead])
		j.pendHead++
	}
	if j.pendHead == len(j.pending) {
		j.pending, j.pendHead = j.pending[:0], 0
	}
	j.in.SetLimit(dst.Cap())
	for dst.Len() == 0 {
		n, err := FillBatch(j.Probe, j.in)
		if err != nil {
			return dst.Len(), err
		}
		if n == 0 {
			if j.shared.spillOn {
				more, derr := j.drainPending()
				if derr != nil {
					return dst.Len(), derr
				}
				if more {
					for j.pendHead < len(j.pending) && !dst.Full() {
						dst.Append(j.pending[j.pendHead])
						j.pendHead++
					}
					if j.pendHead == len(j.pending) {
						j.pending, j.pendHead = j.pending[:0], 0
					}
					continue
				}
			}
			return dst.Len(), nil
		}
		j.ctx.chargeN(j.ctx.Costs.JoinProbeMs, n)
		for _, t := range j.in.Tuples {
			h := t.Hash(j.ProbeKeys)
			b := int32(h % uint64(j.buckets))
			p := j.shared.part(b)
			p.mu.Lock()
			if p.spilled {
				j.shared.routeProbeLocked(p, t)
				p.mu.Unlock()
				continue
			}
			c, ok := p.chains[h]
			if !ok {
				p.mu.Unlock()
				continue
			}
			for e := c.head; e >= 0; e = p.entries[e].next {
				cand := p.entries[e].t
				if !j.keysEqual(cand, t) {
					continue
				}
				out := j.arena.Alloc(len(cand) + len(t))
				copy(out, cand)
				copy(out[len(cand):], t)
				if dst.Full() {
					j.pending = append(j.pending, out)
				} else {
					dst.Append(out)
				}
			}
			p.mu.Unlock()
		}
	}
	return dst.Len(), nil
}

// keysEqual guards against 64-bit hash collisions.
func (j *HashJoin) keysEqual(build, probe relation.Tuple) bool {
	for i := range j.BuildKeys {
		if !build[j.BuildKeys[i]].Equal(probe[j.ProbeKeys[i]]) {
			return false
		}
	}
	return true
}

// Close implements Iterator. The shared table survives until the last
// sibling clone closes.
func (j *HashJoin) Close() error {
	errB := j.Build.Close()
	errP := j.Probe.Close()
	if j.in != nil {
		j.in.Release()
		j.in = nil
	}
	if j.drain != nil {
		j.drain.close()
		j.drain = nil
	}
	if j.shared != nil {
		j.shared.release()
	}
	if errB != nil {
		return errB
	}
	return errP
}

// InsertState implements StateTarget: replayed build tuples recreate bucket
// state on this clone. It may run concurrently with probing, and with
// several transport goroutines delivering replay buffers at once.
func (j *HashJoin) InsertState(tuples []relation.Tuple) {
	s := j.shared
	if s == nil || !s.ready.Load() {
		return
	}
	for _, t := range tuples {
		s.insertMeter.charge(s.ctx.Node.PerturbedCost(s.ctx.Costs.JoinBuildMs))
		s.insertOne(s.acct0, j.BuildKeys, t)
	}
	if s.spillOn && s.acct0.Over() {
		s.spillVictims()
	}
}

// EvictBuckets implements StateTarget.
func (j *HashJoin) EvictBuckets(buckets []int32) {
	s := j.shared
	if s == nil || !s.ready.Load() {
		return
	}
	// Eviction unlinks the bucket's chains; the arena entries behind them
	// stay allocated until the query releases the table. That is deliberate:
	// evictions are rare (one R1 adaptation each) and the arena's bound is
	// the build side's size either way.
	for _, b := range buckets {
		p := s.part(b)
		p.mu.Lock()
		if p.spilled {
			// The bucket's tuples live in the build run; record the kill
			// window instead of unlinking (see spill.go).
			p.evicts = append(p.evicts, spillEvict{bucket: b, buildIdx: p.buildCount, probeIdx: p.probeCount})
			p.held -= int(p.spillLive[b])
			delete(p.spillLive, b)
			p.mu.Unlock()
			continue
		}
		if p.chains != nil {
			// Chains are keyed by hash; recover the bucket's chains by
			// scanning the partition. Evictions are rare (one per R1
			// adaptation), so the scan is off every hot path.
			for h, c := range p.chains {
				if int32(h%uint64(s.buckets)) == b {
					p.held -= int(c.n)
					delete(p.chains, h)
				}
			}
		}
		p.mu.Unlock()
	}
}

// StateSize implements StateTarget.
func (j *HashJoin) StateSize() int {
	s := j.shared
	if s == nil || !s.ready.Load() {
		return 0
	}
	held := 0
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		held += p.held
		p.mu.Unlock()
	}
	return held
}

// Abort releases sibling workers blocked at the build or probe-completion
// barrier; the worker pool calls it when a worker fails before reaching
// this join's Open (or before finishing its probe share).
func (j *HashJoin) Abort() {
	if j.shared != nil {
		j.shared.barrier.cancel()
		j.shared.probeBarrier.cancel()
	}
}

// BucketOf reports the bucket a build-side tuple belongs to; tests use it
// to cross-check alignment with the distribution policy.
func (j *HashJoin) BucketOf(t relation.Tuple) (int32, error) {
	if j.shared == nil || !j.shared.ready.Load() {
		return 0, fmt.Errorf("engine: join not opened")
	}
	return int32(t.Hash(j.BuildKeys) % uint64(j.shared.buckets)), nil
}
