package engine

import "sync"

// flowGate coordinates a fragment instance's tuple flow with the control
// plane. All exchange-consumer queues of one fragment instance share the
// gate's mutex, and the gate tracks whether a popped tuple is still being
// processed ("in flight"). Quiesce blocks new pops and waits for the
// in-flight tuple to finish, giving the retrospective-adaptation protocol a
// moment where the instance is provably between tuples: the queue can be
// filtered and join state evicted without racing a half-processed tuple.
type flowGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	paused   bool
}

func newFlowGate() *flowGate {
	g := &flowGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// quiesce runs fn while the instance is paused between tuples.
func (g *flowGate) quiesce(fn func()) {
	g.mu.Lock()
	g.paused = true
	for g.inflight > 0 {
		g.cond.Wait()
	}
	fn()
	g.paused = false
	g.cond.Broadcast()
	g.mu.Unlock()
}

// locked runs fn under the gate mutex (for queue mutations from the data
// path).
func (g *flowGate) locked(fn func()) {
	g.mu.Lock()
	fn()
	g.mu.Unlock()
}
