package engine

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/physical"
	"repro/internal/relation"
)

// DistPolicy routes tuples to the instances of a consumer fragment. The
// Responder swaps the distribution at runtime; implementations are safe for
// concurrent use (the fragment driver routes while control messages mutate).
type DistPolicy interface {
	Kind() physical.PolicyKind
	// Route picks the consumer instance for a tuple. bucket is the routing
	// bucket for hash policies and -1 for weighted ones.
	Route(t relation.Tuple) (consumer int, bucket int32)
	// RouteBatch routes ts[i] into consumers[i] and buckets[i] under a
	// single policy-lock acquisition; the three slices share one length.
	// Routing decisions are identical to len(ts) sequential Route calls.
	RouteBatch(ts []relation.Tuple, consumers []int, buckets []int32)
	// RouteBucket picks the owner of a bucket (hash policies only).
	RouteBucket(bucket int32) int
	// Weights returns the current distribution vector W.
	Weights() []float64
	// SetWeights installs a new distribution vector W'. For hash policies
	// this re-derives the bucket→owner map, moving as few buckets as
	// possible; the returned moved list contains the reassigned buckets
	// (nil for weighted policies).
	SetWeights(w []float64) (moved []int32, err error)
	// OwnerMap returns a copy of the bucket→owner map, or nil.
	OwnerMap() []int32
	// SetOwnerMap installs an explicit bucket→owner map (hash only).
	SetOwnerMap(m []int32) error
}

// validWeights checks that w is a distribution over n consumers.
func validWeights(w []float64, n int) error {
	if len(w) != n {
		return fmt.Errorf("engine: weight vector has %d entries, want %d", len(w), n)
	}
	sum := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("engine: invalid weight %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("engine: weights sum to %v, want 1", sum)
	}
	return nil
}

// WeightedPolicy routes each tuple independently of its content following
// the workload distribution vector W, using a smooth weighted round-robin
// (largest accumulated credit) so that any prefix of the stream closely
// matches W.
type WeightedPolicy struct {
	mu      sync.Mutex
	weights []float64
	credit  []float64
}

// NewWeightedPolicy builds the policy with the initial vector.
func NewWeightedPolicy(w []float64) (*WeightedPolicy, error) {
	if err := validWeights(w, len(w)); err != nil {
		return nil, err
	}
	p := &WeightedPolicy{
		weights: append([]float64(nil), w...),
		credit:  make([]float64, len(w)),
	}
	return p, nil
}

// Kind implements DistPolicy.
func (p *WeightedPolicy) Kind() physical.PolicyKind { return physical.PolicyWeighted }

// Route implements DistPolicy.
func (p *WeightedPolicy) Route(relation.Tuple) (int, int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := 0
	for i := range p.credit {
		p.credit[i] += p.weights[i]
		if p.credit[i] > p.credit[best] {
			best = i
		}
	}
	p.credit[best] -= 1
	return best, -1
}

// RouteBatch implements DistPolicy.
func (p *WeightedPolicy) RouteBatch(ts []relation.Tuple, consumers []int, buckets []int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range ts {
		best := 0
		for i := range p.credit {
			p.credit[i] += p.weights[i]
			if p.credit[i] > p.credit[best] {
				best = i
			}
		}
		p.credit[best] -= 1
		consumers[k], buckets[k] = best, -1
	}
}

// RouteBucket implements DistPolicy; weighted policies have no buckets.
func (p *WeightedPolicy) RouteBucket(int32) int {
	panic("engine: RouteBucket on weighted policy")
}

// Weights implements DistPolicy.
func (p *WeightedPolicy) Weights() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]float64(nil), p.weights...)
}

// SetWeights implements DistPolicy.
func (p *WeightedPolicy) SetWeights(w []float64) ([]int32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := validWeights(w, len(p.weights)); err != nil {
		return nil, err
	}
	copy(p.weights, w)
	for i := range p.credit {
		p.credit[i] = 0
	}
	return nil, nil
}

// Extend grows the policy to cover one more consumer instance (live join),
// installing w as the new distribution vector over len(old)+1 consumers.
func (p *WeightedPolicy) Extend(w []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := validWeights(w, len(p.weights)+1); err != nil {
		return err
	}
	p.weights = append([]float64(nil), w...)
	p.credit = make([]float64, len(w))
	return nil
}

// OwnerMap implements DistPolicy.
func (p *WeightedPolicy) OwnerMap() []int32 { return nil }

// SetOwnerMap implements DistPolicy.
func (p *WeightedPolicy) SetOwnerMap([]int32) error {
	return fmt.Errorf("engine: SetOwnerMap on weighted policy")
}

// HashPolicy routes by hash of the tuple's key columns through a
// bucket→owner map. Equal keys always share a bucket, so a consistent map
// across the build and probe exchanges of a join keeps matching tuples on
// the same instance. Rebalancing reassigns whole buckets, which is the
// granularity at which operator state moves.
type HashPolicy struct {
	keyOrds []int

	mu      sync.Mutex
	owner   []int32
	weights []float64
	n       int
}

// NewHashPolicy derives the initial owner map from the weight vector over n
// consumers with the given bucket count.
func NewHashPolicy(keyOrds []int, buckets int, w []float64) (*HashPolicy, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("engine: bucket count %d", buckets)
	}
	if err := validWeights(w, len(w)); err != nil {
		return nil, err
	}
	p := &HashPolicy{
		keyOrds: append([]int(nil), keyOrds...),
		owner:   make([]int32, buckets),
		weights: append([]float64(nil), w...),
		n:       len(w),
	}
	// Initial assignment: contiguous ranges sized by largest remainder.
	counts := apportion(w, buckets)
	b := 0
	for c, cnt := range counts {
		for i := 0; i < cnt; i++ {
			p.owner[b] = int32(c)
			b++
		}
	}
	return p, nil
}

// Bucket computes the routing bucket of a tuple under this policy's keys.
func (p *HashPolicy) Bucket(t relation.Tuple) int32 {
	return int32(t.Hash(p.keyOrds) % uint64(len(p.owner)))
}

// Kind implements DistPolicy.
func (p *HashPolicy) Kind() physical.PolicyKind { return physical.PolicyHash }

// Route implements DistPolicy.
func (p *HashPolicy) Route(t relation.Tuple) (int, int32) {
	b := p.Bucket(t)
	p.mu.Lock()
	c := p.owner[b]
	p.mu.Unlock()
	return int(c), b
}

// RouteBatch implements DistPolicy.
func (p *HashPolicy) RouteBatch(ts []relation.Tuple, consumers []int, buckets []int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := uint64(len(p.owner))
	for k, t := range ts {
		b := int32(t.Hash(p.keyOrds) % n)
		consumers[k], buckets[k] = int(p.owner[b]), b
	}
}

// RouteBucket implements DistPolicy.
func (p *HashPolicy) RouteBucket(b int32) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.owner[b])
}

// Weights implements DistPolicy.
func (p *HashPolicy) Weights() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]float64(nil), p.weights...)
}

// SetWeights implements DistPolicy: it re-derives the owner map with
// minimal movement — only the buckets that must change owner to meet the
// new apportionment are reassigned — and returns the moved buckets.
func (p *HashPolicy) SetWeights(w []float64) ([]int32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := validWeights(w, p.n); err != nil {
		return nil, err
	}
	copy(p.weights, w)
	target := apportion(w, len(p.owner))
	have := make([]int, p.n)
	for _, o := range p.owner {
		have[o]++
	}
	// Owners above target give their highest-numbered buckets to owners
	// below target, in ascending owner order for determinism.
	var moved []int32
	deficit := make([]int, p.n)
	for c := range deficit {
		deficit[c] = target[c] - have[c]
	}
	recv := 0
	for b := len(p.owner) - 1; b >= 0; b-- {
		o := p.owner[b]
		if deficit[o] >= 0 {
			continue
		}
		// Find the next consumer needing buckets.
		for recv < p.n && deficit[recv] <= 0 {
			recv++
		}
		if recv == p.n {
			break
		}
		deficit[o]++
		deficit[recv]--
		p.owner[b] = int32(recv)
		moved = append(moved, int32(b))
	}
	return moved, nil
}

// OwnerMap implements DistPolicy.
func (p *HashPolicy) OwnerMap() []int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int32(nil), p.owner...)
}

// SetOwnerMap implements DistPolicy.
func (p *HashPolicy) SetOwnerMap(m []int32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(m) != len(p.owner) {
		return fmt.Errorf("engine: owner map has %d buckets, want %d", len(m), len(p.owner))
	}
	for _, o := range m {
		if int(o) < 0 || int(o) >= p.n {
			return fmt.Errorf("engine: owner %d out of range", o)
		}
	}
	copy(p.owner, m)
	return nil
}

// apportion distributes total units over weights by the largest-remainder
// method; the result sums exactly to total.
func apportion(w []float64, total int) []int {
	n := len(w)
	counts := make([]int, n)
	type rem struct {
		frac float64
		idx  int
	}
	rems := make([]rem, n)
	assigned := 0
	for i, x := range w {
		exact := x * float64(total)
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{frac: exact - float64(counts[i]), idx: i}
	}
	// Stable selection of the largest remainders.
	for assigned < total {
		best := -1
		for i := range rems {
			if rems[i].frac < 0 {
				continue
			}
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}
