package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/physical"
	"repro/internal/relation"
)

func TestWeightedPolicyFollowsWeights(t *testing.T) {
	p, err := NewWeightedPolicy([]float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for i := 0; i < 1000; i++ {
		c, b := p.Route(relation.Tuple{relation.Int(int64(i))})
		if b != -1 {
			t.Fatal("weighted routing must not assign buckets")
		}
		counts[c]++
	}
	if counts[0] != 750 || counts[1] != 250 {
		t.Fatalf("counts = %v, want [750 250]", counts)
	}
}

func TestWeightedPolicySmoothPrefix(t *testing.T) {
	// Any prefix must track the weights closely (no long runs to one
	// consumer), otherwise early tuples all land on one machine.
	p, _ := NewWeightedPolicy([]float64{0.5, 0.5})
	last := -1
	for i := 0; i < 100; i++ {
		c, _ := p.Route(nil)
		if c == last && i > 0 {
			t.Fatalf("consecutive tuples to consumer %d at position %d", c, i)
		}
		last = c
	}
}

func TestWeightedPolicySetWeights(t *testing.T) {
	p, _ := NewWeightedPolicy([]float64{0.5, 0.5})
	moved, err := p.SetWeights([]float64{0.9, 0.1})
	if err != nil || moved != nil {
		t.Fatalf("SetWeights: %v, %v", moved, err)
	}
	counts := make([]int, 2)
	for i := 0; i < 1000; i++ {
		c, _ := p.Route(nil)
		counts[c]++
	}
	if counts[0] != 900 {
		t.Fatalf("counts after rebalance = %v", counts)
	}
	if w := p.Weights(); w[0] != 0.9 {
		t.Fatalf("Weights = %v", w)
	}
	if _, err := p.SetWeights([]float64{0.5, 0.6}); err == nil {
		t.Fatal("non-normalised weights accepted")
	}
	if _, err := p.SetWeights([]float64{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestWeightedPolicyMisc(t *testing.T) {
	if _, err := NewWeightedPolicy([]float64{0.5, 0.4}); err == nil {
		t.Fatal("bad initial weights accepted")
	}
	if _, err := NewWeightedPolicy([]float64{-0.5, 1.5}); err == nil {
		t.Fatal("negative weight accepted")
	}
	p, _ := NewWeightedPolicy([]float64{1})
	if p.Kind() != physical.PolicyWeighted || p.OwnerMap() != nil {
		t.Error("metadata")
	}
	if err := p.SetOwnerMap([]int32{0}); err == nil {
		t.Error("SetOwnerMap must fail on weighted policy")
	}
	defer func() {
		if recover() == nil {
			t.Error("RouteBucket must panic on weighted policy")
		}
	}()
	p.RouteBucket(0)
}

func keyedTuple(i int) relation.Tuple {
	return relation.Tuple{relation.String(fmt.Sprintf("ORF%05d", i)), relation.Int(int64(i))}
}

func TestHashPolicyDeterministicAndAligned(t *testing.T) {
	p, err := NewHashPolicy([]int{0}, 64, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tp := keyedTuple(i)
		c1, b1 := p.Route(tp)
		c2, b2 := p.Route(tp)
		if c1 != c2 || b1 != b2 {
			t.Fatal("routing must be deterministic")
		}
		// Same key, different payload: same bucket.
		tp2 := relation.Tuple{tp[0], relation.Int(999)}
		if _, b3 := p.Route(tp2); b3 != b1 {
			t.Fatal("bucket must depend only on key columns")
		}
		if p.RouteBucket(b1) != c1 {
			t.Fatal("RouteBucket disagrees with Route")
		}
	}
}

func TestHashPolicyInitialApportionment(t *testing.T) {
	p, _ := NewHashPolicy([]int{0}, 100, []float64{0.7, 0.3})
	counts := make([]int, 2)
	for _, o := range p.OwnerMap() {
		counts[o]++
	}
	if counts[0] != 70 || counts[1] != 30 {
		t.Fatalf("bucket counts = %v", counts)
	}
}

func TestHashPolicyMinimalMove(t *testing.T) {
	p, _ := NewHashPolicy([]int{0}, 100, []float64{0.5, 0.5})
	before := p.OwnerMap()
	moved, err := p.SetWeights([]float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	after := p.OwnerMap()
	// Exactly 40 buckets must change hands (50 -> 90/10).
	if len(moved) != 40 {
		t.Fatalf("moved %d buckets, want 40", len(moved))
	}
	changed := 0
	movedSet := make(map[int32]bool, len(moved))
	for _, b := range moved {
		movedSet[b] = true
	}
	for b := range after {
		if after[b] != before[b] {
			changed++
			if !movedSet[int32(b)] {
				t.Fatalf("bucket %d changed owner but was not reported moved", b)
			}
		}
	}
	if changed != len(moved) {
		t.Fatalf("reported %d moves, observed %d changes", len(moved), changed)
	}
	counts := make([]int, 2)
	for _, o := range after {
		counts[o]++
	}
	if counts[0] != 90 || counts[1] != 10 {
		t.Fatalf("counts after move = %v", counts)
	}
}

func TestHashPolicyMoveProperty(t *testing.T) {
	// Property: after SetWeights, bucket counts match the apportionment of
	// the new weights, every owner is in range, and unmoved buckets kept
	// their owner.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		w := randWeights(rng, n)
		p, err := NewHashPolicy([]int{0}, 128, w)
		if err != nil {
			return false
		}
		before := p.OwnerMap()
		w2 := randWeights(rng, n)
		moved, err := p.SetWeights(w2)
		if err != nil {
			return false
		}
		after := p.OwnerMap()
		movedSet := make(map[int32]bool)
		for _, b := range moved {
			movedSet[b] = true
		}
		counts := make([]int, n)
		for b, o := range after {
			if int(o) < 0 || int(o) >= n {
				return false
			}
			counts[o]++
			if after[b] != before[b] && !movedSet[int32(b)] {
				return false
			}
			if after[b] == before[b] && movedSet[int32(b)] {
				return false
			}
		}
		want := apportion(w2, 128)
		for i := range counts {
			if counts[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = rng.Float64() + 0.01
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	// Fix residual rounding so validWeights passes.
	adj := 1.0
	for _, x := range w[1:] {
		adj -= x
	}
	w[0] = adj
	return w
}

func TestHashPolicySetOwnerMap(t *testing.T) {
	p, _ := NewHashPolicy([]int{0}, 8, []float64{0.5, 0.5})
	m := []int32{0, 0, 0, 0, 0, 0, 0, 1}
	if err := p.SetOwnerMap(m); err != nil {
		t.Fatal(err)
	}
	if got := p.OwnerMap(); got[7] != 1 || got[0] != 0 {
		t.Fatalf("owner map = %v", got)
	}
	if err := p.SetOwnerMap([]int32{0}); err == nil {
		t.Error("short map accepted")
	}
	if err := p.SetOwnerMap([]int32{0, 0, 0, 0, 0, 0, 0, 9}); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestHashPolicyErrors(t *testing.T) {
	if _, err := NewHashPolicy([]int{0}, 0, []float64{1}); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHashPolicy([]int{0}, 8, []float64{0.2, 0.2}); err == nil {
		t.Error("bad weights accepted")
	}
	p, _ := NewHashPolicy([]int{0}, 8, []float64{0.5, 0.5})
	if p.Kind() != physical.PolicyHash {
		t.Error("kind")
	}
	if _, err := p.SetWeights([]float64{0.5}); err == nil {
		t.Error("arity change accepted")
	}
}

func TestApportionSumsExactly(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		w := randWeights(rng, n)
		total := 1 + rng.Intn(1000)
		counts := apportion(w, total)
		sum := 0
		for i, c := range counts {
			if c < 0 {
				return false
			}
			// No count may deviate from the exact share by ≥ 1.
			if math.Abs(float64(c)-w[i]*float64(total)) >= 1 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWeightedRoute(b *testing.B) {
	p, _ := NewWeightedPolicy([]float64{0.5, 0.3, 0.2})
	t := relation.Tuple{relation.Int(1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Route(t)
	}
}

func BenchmarkHashRoute(b *testing.B) {
	p, _ := NewHashPolicy([]int{0}, 512, []float64{0.5, 0.5})
	t := relation.Tuple{relation.String("YAL00123C"), relation.String("payload")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Route(t)
	}
}

func BenchmarkHashPolicyRebalance(b *testing.B) {
	p, _ := NewHashPolicy([]int{0}, 512, []float64{0.5, 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_, _ = p.SetWeights([]float64{0.9, 0.1})
		} else {
			_, _ = p.SetWeights([]float64{0.5, 0.5})
		}
	}
}
