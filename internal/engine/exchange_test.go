package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/physical"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// chanSink collects the top fragment's rows.
type chanSink struct {
	ch chan relation.Tuple
}

func (s *chanSink) Send(t relation.Tuple) error {
	s.ch <- t
	return nil
}

func (s *chanSink) Close() error {
	close(s.ch)
	return nil
}

// countingSink tallies monitoring events.
type countingMonitor struct {
	mu sync.Mutex
	m1 []M1Event
	m2 []M2Event
}

func (m *countingMonitor) EmitM1(e M1Event) {
	m.mu.Lock()
	m.m1 = append(m.m1, e)
	m.mu.Unlock()
}

func (m *countingMonitor) EmitM2(e M2Event) {
	m.mu.Lock()
	m.m2 = append(m.m2, e)
	m.mu.Unlock()
}

func (m *countingMonitor) counts() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m1), len(m.m2)
}

// testCluster wires fragment runtimes over an in-proc transport, playing
// the role the services layer plays in production.
type testCluster struct {
	t       *testing.T
	clock   *vtime.Clock
	net     *simnet.Network
	tr      *transport.InProc
	store   *dataset.Store
	monitor *countingMonitor
	costs   Costs
	// parallelism, when > 1, runs every parallel-eligible fragment under
	// the morsel worker pool.
	parallelism int

	runtimes map[string]*FragmentRuntime
	results  chan relation.Tuple
	wg       sync.WaitGroup
	errMu    sync.Mutex
	errs     []error
}

func newTestCluster(t *testing.T, nodes ...simnet.NodeID) *testCluster {
	clock := vtime.NewClock(time.Microsecond)
	net := simnet.NewNetwork(clock)
	for _, n := range nodes {
		net.AddNode(n)
	}
	costs := Costs{ScanMs: 0.1, FilterMs: 0.01, ProjectMs: 0.01,
		JoinBuildMs: 0.05, JoinProbeMs: 0.2, StartupMs: 0}
	return &testCluster{
		t:        t,
		clock:    clock,
		net:      net,
		tr:       transport.NewInProc(net),
		store:    dataset.DemoSized(120, 200),
		monitor:  &countingMonitor{},
		costs:    costs,
		runtimes: make(map[string]*FragmentRuntime),
		results:  make(chan relation.Tuple, 100000),
	}
}

// deploy instantiates and starts every fragment instance of the plan.
func (c *testCluster) deploy(plan *physical.Plan) {
	c.t.Helper()
	// Create all runtimes before starting drivers so every endpoint is
	// registered before the first buffer flows.
	for _, frag := range plan.Fragments {
		for i, node := range frag.Instances {
			ctx := &ExecContext{
				Clock:        c.clock,
				Node:         c.net.Node(node),
				Meter:        vtime.NewMeter(c.clock),
				Store:        c.store,
				Services:     ws.NewRegistry(ws.Entropy{CostMs: 0.5}, ws.SequenceLength{}),
				Costs:        c.costs,
				Monitor:      c.monitor,
				MonitorEvery: 10,
				Buckets:      64,
				Parallelism:  c.parallelism,
			}
			cfg := RuntimeConfig{
				Plan:     plan,
				Fragment: frag,
				Instance: i,
				Ctx:      ctx,
				Tr:       c.tr,
				Node:     node,
			}
			if frag.Output == nil {
				cfg.Sink = &chanSink{ch: c.results}
			}
			rt, err := NewFragmentRuntime(cfg)
			if err != nil {
				c.t.Fatalf("deploy %s#%d: %v", frag.ID, i, err)
			}
			c.runtimes[frag.InstanceID(i)] = rt
		}
	}
	for _, rt := range c.runtimes {
		rt := rt
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := rt.Run(context.Background()); err != nil {
				c.errMu.Lock()
				c.errs = append(c.errs, err)
				c.errMu.Unlock()
			}
		}()
	}
}

// collect drains the result channel until the sink closes.
func (c *testCluster) collect() []relation.Tuple {
	c.t.Helper()
	var out []relation.Tuple
	timeout := time.After(30 * time.Second)
	for {
		select {
		case tp, ok := <-c.results:
			if !ok {
				c.wg.Wait()
				c.errMu.Lock()
				defer c.errMu.Unlock()
				for _, err := range c.errs {
					c.t.Fatalf("fragment error: %v", err)
				}
				return out
			}
			out = append(out, tp)
		case <-timeout:
			c.t.Fatalf("query did not complete; %d rows so far", len(out))
		}
	}
}

func (c *testCluster) stopAll() {
	for _, rt := range c.runtimes {
		rt.Stop()
	}
}

// q1Plan hand-builds the Q1 physical plan: scan on data1 feeding an
// EntropyAnalyser fragment partitioned across ws0/ws1, collected at coord.
func q1Plan(est int) *physical.Plan {
	scanCols := []relation.Column{
		{Table: "p", Name: "ORF", Type: relation.TString},
		{Table: "p", Name: "sequence", Type: relation.TString},
	}
	outCols := append(append([]relation.Column{}, scanCols...),
		relation.Column{Name: "H", Type: relation.TFloat})
	projCols := []relation.Column{outCols[2]}

	f1 := &physical.FragmentSpec{
		ID:        "F1",
		Root:      &physical.OpSpec{Kind: physical.KScan, Table: "protein_sequences", OutCols: scanCols},
		Instances: []simnet.NodeID{"data1"}, InitialWeights: []float64{1},
		Output: &physical.ExchangeSpec{ID: "E1", ConsumerFragment: "F2",
			Policy: physical.PolicyWeighted, EstTuples: est},
	}
	f2 := &physical.FragmentSpec{
		ID: "F2",
		Root: &physical.OpSpec{
			Kind: physical.KProject, Ords: []int{2}, OutCols: projCols,
			Children: []*physical.OpSpec{{
				Kind: physical.KOpCall, Fn: "EntropyAnalyser", ArgOrds: []int{1},
				ResultName: "H", OutCols: outCols,
				Children: []*physical.OpSpec{{
					Kind: physical.KConsume, Exchange: "E1", NumProducers: 1, OutCols: scanCols,
				}},
			}},
		},
		Instances:      []simnet.NodeID{"ws0", "ws1"},
		InitialWeights: []float64{0.5, 0.5},
		Partitioned:    true,
		EstInputTuples: est,
		Output: &physical.ExchangeSpec{ID: "E2", ConsumerFragment: "F3",
			Policy: physical.PolicyWeighted, EstTuples: est},
	}
	f3 := &physical.FragmentSpec{
		ID:        "F3",
		Root:      &physical.OpSpec{Kind: physical.KConsume, Exchange: "E2", NumProducers: 2, OutCols: projCols},
		Instances: []simnet.NodeID{"coord"}, InitialWeights: []float64{1},
	}
	return &physical.Plan{Fragments: []*physical.FragmentSpec{f1, f2, f3}, Coordinator: "coord"}
}

// q2Plan hand-builds the Q2 physical plan: hash join partitioned across
// ws0/ws1 with the sequences scan as stateful build side.
func q2Plan(seqEst, intEst int) *physical.Plan {
	seqCols := []relation.Column{
		{Table: "p", Name: "ORF", Type: relation.TString},
		{Table: "p", Name: "sequence", Type: relation.TString},
	}
	intCols := []relation.Column{
		{Table: "i", Name: "ORF1", Type: relation.TString},
		{Table: "i", Name: "ORF2", Type: relation.TString},
	}
	joinCols := append(append([]relation.Column{}, seqCols...), intCols...)
	projCols := []relation.Column{intCols[1]}

	f1 := &physical.FragmentSpec{
		ID:        "F1",
		Root:      &physical.OpSpec{Kind: physical.KScan, Table: "protein_sequences", OutCols: seqCols},
		Instances: []simnet.NodeID{"data1"}, InitialWeights: []float64{1},
		Output: &physical.ExchangeSpec{ID: "E1", ConsumerFragment: "F3",
			Policy: physical.PolicyHash, KeyOrds: []int{0}, Stateful: true, EstTuples: seqEst},
	}
	f2 := &physical.FragmentSpec{
		ID:        "F2",
		Root:      &physical.OpSpec{Kind: physical.KScan, Table: "protein_interactions", OutCols: intCols},
		Instances: []simnet.NodeID{"data1"}, InitialWeights: []float64{1},
		Output: &physical.ExchangeSpec{ID: "E2", ConsumerFragment: "F3",
			Policy: physical.PolicyHash, KeyOrds: []int{0}, EstTuples: intEst},
	}
	f3 := &physical.FragmentSpec{
		ID: "F3",
		Root: &physical.OpSpec{
			Kind: physical.KProject, Ords: []int{3}, OutCols: projCols,
			Children: []*physical.OpSpec{{
				Kind: physical.KJoin, BuildKeys: []int{0}, ProbeKeys: []int{0}, OutCols: joinCols,
				Children: []*physical.OpSpec{
					{Kind: physical.KConsume, Exchange: "E1", NumProducers: 1, OutCols: seqCols},
					{Kind: physical.KConsume, Exchange: "E2", NumProducers: 1, OutCols: intCols},
				},
			}},
		},
		Instances:      []simnet.NodeID{"ws0", "ws1"},
		InitialWeights: []float64{0.5, 0.5},
		Partitioned:    true,
		Stateful:       true,
		EstInputTuples: seqEst + intEst,
		Output: &physical.ExchangeSpec{ID: "E3", ConsumerFragment: "F4",
			Policy: physical.PolicyWeighted, EstTuples: intEst},
	}
	f4 := &physical.FragmentSpec{
		ID:        "F4",
		Root:      &physical.OpSpec{Kind: physical.KConsume, Exchange: "E3", NumProducers: 2, OutCols: projCols},
		Instances: []simnet.NodeID{"coord"}, InitialWeights: []float64{1},
	}
	return &physical.Plan{Fragments: []*physical.FragmentSpec{f1, f2, f3, f4}, Coordinator: "coord"}
}

func TestQ1PipelineEndToEnd(t *testing.T) {
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer c.stopAll()
	c.deploy(q1Plan(120))
	out := c.collect()
	if len(out) != 120 {
		t.Fatalf("got %d rows, want 120", len(out))
	}
	for _, tp := range out {
		if len(tp) != 1 || tp[0].Type() != relation.TFloat {
			t.Fatalf("bad row %v", tp.Format())
		}
	}
	// Work was split between both WS instances.
	for _, id := range []string{"F2#0", "F2#1"} {
		if n := c.runtimes[id].Produced(); n == 0 {
			t.Errorf("%s produced nothing", id)
		}
	}
	// Monitoring events flowed.
	m1, m2 := c.monitor.counts()
	if m1 == 0 || m2 == 0 {
		t.Errorf("monitoring events: m1=%d m2=%d", m1, m2)
	}
}

func TestQ1LogsDrainAfterCompletion(t *testing.T) {
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer c.stopAll()
	c.deploy(q1Plan(120))
	c.collect()
	// Stateless exchanges must have released their recovery logs through
	// acknowledgements (the EOS-completion signal requires it).
	for _, id := range []string{"F1#0", "F2#0", "F2#1"} {
		_, _, logSize := c.runtimes[id].Producer().Stats()
		if logSize != 0 {
			t.Errorf("%s: recovery log holds %d entries after completion", id, logSize)
		}
	}
}

func TestQ2JoinCorrectness(t *testing.T) {
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer c.stopAll()
	c.deploy(q2Plan(120, 200))
	out := c.collect()
	want := expectedQ2(c.store)
	if len(out) != len(want) {
		t.Fatalf("join produced %d rows, want %d", len(out), len(want))
	}
	gotSet := multiset(out)
	for k, n := range multiset(want) {
		if gotSet[k] != n {
			t.Fatalf("row %q: got %d, want %d", k, gotSet[k], n)
		}
	}
	// The build-side recovery log must still hold the full state (never
	// acknowledged) until Release.
	_, _, logSize := c.runtimes["F1#0"].Producer().Stats()
	if logSize != 120 {
		t.Errorf("stateful log holds %d entries, want 120", logSize)
	}
}

// expectedQ2 computes the reference join result single-threaded.
func expectedQ2(store *dataset.Store) []relation.Tuple {
	seqs, _ := store.Table("protein_sequences")
	ints, _ := store.Table("protein_interactions")
	orfs := make(map[string]int)
	for _, tp := range seqs.Tuples {
		orfs[tp[0].AsString()]++
	}
	var out []relation.Tuple
	for _, tp := range ints.Tuples {
		for i := 0; i < orfs[tp[0].AsString()]; i++ {
			out = append(out, relation.Tuple{tp[1]})
		}
	}
	return out
}

func multiset(ts []relation.Tuple) map[string]int {
	m := make(map[string]int, len(ts))
	for _, t := range ts {
		m[t.Key()]++
	}
	return m
}

// ctrlClient drives control operations the way the Responder does.
type ctrlClient struct {
	t     *testing.T
	tr    *transport.InProc
	node  simnet.NodeID
	mu    sync.Mutex
	next  uint64
	calls map[uint64]chan *transport.Ctrl
}

func newCtrlClient(t *testing.T, tr *transport.InProc, node simnet.NodeID) *ctrlClient {
	c := &ctrlClient{t: t, tr: tr, node: node, calls: make(map[uint64]chan *transport.Ctrl)}
	tr.Register(node, "ctrl-test", func(_ simnet.NodeID, msg *transport.Message) {
		c.mu.Lock()
		ch := c.calls[msg.Ctrl.RequestID]
		delete(c.calls, msg.Ctrl.RequestID)
		c.mu.Unlock()
		if ch != nil {
			ch <- msg.Ctrl
		}
	})
	return c
}

func (c *ctrlClient) call(to simnet.NodeID, service string, msg *transport.Message) *transport.Ctrl {
	c.t.Helper()
	c.mu.Lock()
	c.next++
	id := c.next
	ch := make(chan *transport.Ctrl, 1)
	c.calls[id] = ch
	c.mu.Unlock()
	msg.Ctrl.RequestID = id
	msg.Ctrl.ReplyTo = c.node
	msg.Ctrl.ReplyService = "ctrl-test"
	if _, err := c.tr.Send(c.node, to, service, msg); err != nil {
		c.t.Fatalf("control send: %v", err)
	}
	select {
	case reply := <-ch:
		if !reply.OK && reply.Err != "" {
			c.t.Fatalf("control %v failed: %s", msg.Ctrl.Op, reply.Err)
		}
		return reply
	case <-time.After(20 * time.Second):
		c.t.Fatalf("control %v timed out", msg.Ctrl.Op)
		return nil
	}
}

func TestStatelessRecallProtocol(t *testing.T) {
	// Reproduce, at the mechanism level, what the Responder does for an
	// R1 (retrospective) redistribution of a stateless subplan: pause the
	// producer, recall unprocessed tuples from consumers, install W', and
	// resend. The slow instance is perturbed so its queue backs up.
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer c.stopAll()
	// ~1ms of real time per call on the slow instance keeps its queue
	// backed up while the recall below executes.
	c.net.Node("ws1").SetPerturbation(vtime.Multiplier(2000))
	c.deploy(q1Plan(120))
	ctrl := newCtrlClient(t, c.tr, "coord")

	// Let the scan distribute everything (it is fast), then rebalance.
	time.Sleep(20 * time.Millisecond)
	ctrl.call("data1", "frag/F1#0", &transport.Message{Kind: transport.KindControl,
		Ctrl: &transport.Ctrl{Op: transport.CtrlPause}})
	var resendTotal int
	for i, node := range []simnet.NodeID{"ws0", "ws1"} {
		reply := ctrl.call(node, fmt.Sprintf("frag/F2#%d", i), &transport.Message{
			Kind: transport.KindControl, Exchange: "E1",
			Ctrl: &transport.Ctrl{Op: transport.CtrlDiscard}})
		for _, seqs := range reply.DiscardedSeqs {
			resendTotal += len(seqs)
		}
		if seqs := reply.DiscardedSeqs[transport.StreamKey("E1", 0)]; len(seqs) > 0 {
			ctrl.call("data1", "frag/F1#0", &transport.Message{
				Kind: transport.KindControl, ConsumerIdx: i,
				Ctrl: &transport.Ctrl{Op: transport.CtrlResend, Seqs: seqs}})
		}
	}
	ctrl.call("data1", "frag/F1#0", &transport.Message{Kind: transport.KindControl,
		Ctrl: &transport.Ctrl{Op: transport.CtrlSetWeights, Weights: []float64{0.95, 0.05}}})
	ctrl.call("data1", "frag/F1#0", &transport.Message{Kind: transport.KindControl,
		Ctrl: &transport.Ctrl{Op: transport.CtrlResume}})

	out := c.collect()
	if len(out) != 120 {
		t.Fatalf("got %d rows after recall, want 120 (no loss, no duplication)", len(out))
	}
}

func TestStatefulEvictReplayProtocol(t *testing.T) {
	// The R1 protocol for a stateful subplan: pause both feeds, discard
	// queued tuples of the moved buckets, evict build state, install the
	// new bucket map, replay build tuples, resend probes, resume.
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer c.stopAll()
	// The perturbed instance needs ~1ms of real time per probe so the join
	// is still mid-flight when the protocol below runs.
	c.net.Node("ws1").SetPerturbation(vtime.Sleep(1000))
	c.deploy(q2Plan(120, 200))
	ctrl := newCtrlClient(t, c.tr, "coord")

	time.Sleep(30 * time.Millisecond)

	// New weights 0.9/0.1: compute the canonical map the way the Responder
	// does, from a mirror policy with the same deterministic construction.
	mirror, err := NewHashPolicy([]int{0}, 64, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := mirror.SetWeights([]float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	newMap := mirror.OwnerMap()

	// 1. Pause both producers feeding the join.
	for _, f := range []string{"frag/F1#0", "frag/F2#0"} {
		ctrl.call("data1", f, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlPause}})
	}
	// 2. Discard queued tuples of moved buckets at both join instances,
	// for both exchanges, and evict the moved build state.
	type resend struct {
		service  string
		consumer int
		seqs     []int64
	}
	var resends []resend
	for i, node := range []simnet.NodeID{"ws0", "ws1"} {
		svc := fmt.Sprintf("frag/F3#%d", i)
		// One fragment-wide discard covers both input exchanges atomically;
		// build-side (E1) discards need no resend — the replay retransmits
		// every logged tuple of the moved buckets.
		reply := ctrl.call(node, svc, &transport.Message{
			Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlDiscard, Buckets: moved}})
		if seqs := reply.DiscardedSeqs[transport.StreamKey("E2", 0)]; len(seqs) > 0 {
			resends = append(resends, resend{service: "frag/F2#0", consumer: i, seqs: seqs})
		}
		ctrl.call(node, svc, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlEvict, Buckets: moved}})
	}
	// 3. Install the new map, replay state, resend probes, resume.
	for _, f := range []string{"frag/F1#0", "frag/F2#0"} {
		ctrl.call("data1", f, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlSetBucketMap, BucketMap: newMap}})
	}
	ctrl.call("data1", "frag/F1#0", &transport.Message{Kind: transport.KindControl,
		Ctrl: &transport.Ctrl{Op: transport.CtrlReplay, Buckets: moved}})
	for _, rs := range resends {
		ctrl.call("data1", rs.service, &transport.Message{
			Kind: transport.KindControl, ConsumerIdx: rs.consumer,
			Ctrl: &transport.Ctrl{Op: transport.CtrlResend, Seqs: rs.seqs}})
	}
	for _, f := range []string{"frag/F1#0", "frag/F2#0"} {
		ctrl.call("data1", f, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlResume}})
	}

	out := c.collect()
	want := expectedQ2(c.store)
	if len(out) != len(want) {
		t.Fatalf("join produced %d rows after repartitioning, want %d", len(out), len(want))
	}
	gotSet := multiset(out)
	for k, n := range multiset(want) {
		if gotSet[k] != n {
			t.Fatalf("row %q: got %d, want %d (state repartitioning corrupted the join)", k, gotSet[k], n)
		}
	}
}

func TestProducerProgress(t *testing.T) {
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer c.stopAll()
	c.deploy(q1Plan(120))
	c.collect()
	routed, est := c.runtimes["F1#0"].Producer().Progress()
	if routed != 120 || est != 120 {
		t.Fatalf("progress = %d/%d, want 120/120", routed, est)
	}
	counts := c.runtimes["F1#0"].Producer().ConsumerTupleCounts()
	if counts[0]+counts[1] != 120 {
		t.Fatalf("consumer counts = %v", counts)
	}
}
