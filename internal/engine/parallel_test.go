package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// TestParallelQ1MatchesSerial runs the Q1 pipeline once serially and once
// under a 3-worker morsel pool and requires identical result multisets: the
// worker pool must be a pure execution-strategy change.
func TestParallelQ1MatchesSerial(t *testing.T) {
	serial := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	defer serial.stopAll()
	serial.deploy(q1Plan(120))
	want := multiset(serial.collect())

	par := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	par.parallelism = 3
	defer par.stopAll()
	par.deploy(q1Plan(120))
	out := par.collect()
	if len(out) != 120 {
		t.Fatalf("parallel run produced %d rows, want 120", len(out))
	}
	got := multiset(out)
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %q: parallel %d, serial %d", k, got[k], n)
		}
	}
	// Routed counts stay exact under concurrent workers: every produced
	// tuple is accounted to exactly one consumer shard.
	var produced, routed int64
	for _, id := range []string{"F2#0", "F2#1"} {
		produced += par.runtimes[id].Produced()
		for _, n := range par.runtimes[id].Producer().ConsumerTupleCounts() {
			routed += n
		}
	}
	if produced != 120 || routed != 120 {
		t.Fatalf("produced=%d routed=%d, want 120/120", produced, routed)
	}
	// The worker gauge must balance out once the drivers finish.
	if v := obs.Default().Gauge(obs.MEngineParallelWorkers).Value(); v != 0 {
		t.Errorf("engine_parallel_workers gauge = %d after completion", v)
	}
	// Monitoring still flows in parallel mode.
	if m1, _ := par.monitor.counts(); m1 == 0 {
		t.Errorf("no M1 events in parallel mode")
	}
}

// TestParallelQ2JoinCorrectness checks the partitioned hash join: four
// workers build into the shared partitioned table behind the build barrier,
// then probe concurrently; the join result must match the single-threaded
// reference exactly.
func TestParallelQ2JoinCorrectness(t *testing.T) {
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	c.parallelism = 4
	defer c.stopAll()
	c.deploy(q2Plan(120, 200))
	out := c.collect()
	want := expectedQ2(c.store)
	if len(out) != len(want) {
		t.Fatalf("parallel join produced %d rows, want %d", len(out), len(want))
	}
	got := multiset(out)
	for k, n := range multiset(want) {
		if got[k] != n {
			t.Fatalf("row %q: got %d, want %d", k, got[k], n)
		}
	}
}

// TestParallelStatefulEvictReplay drives the full R1 state-repartitioning
// protocol (pause, discard, evict, new map, replay, resend, resume) against
// join fragments running 2-worker morsel pools: a mid-adaptation replay must
// land in the shared operator state without loss or duplication.
func TestParallelStatefulEvictReplay(t *testing.T) {
	c := newTestCluster(t, "data1", "ws0", "ws1", "coord")
	c.parallelism = 2
	defer c.stopAll()
	c.net.Node("ws1").SetPerturbation(vtime.Sleep(1000))
	c.deploy(q2Plan(120, 200))
	ctrl := newCtrlClient(t, c.tr, "coord")

	time.Sleep(30 * time.Millisecond)

	mirror, err := NewHashPolicy([]int{0}, 64, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := mirror.SetWeights([]float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	newMap := mirror.OwnerMap()

	for _, f := range []string{"frag/F1#0", "frag/F2#0"} {
		ctrl.call("data1", f, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlPause}})
	}
	type resend struct {
		service  string
		consumer int
		seqs     []int64
	}
	var resends []resend
	for i, node := range []simnet.NodeID{"ws0", "ws1"} {
		svc := fmt.Sprintf("frag/F3#%d", i)
		reply := ctrl.call(node, svc, &transport.Message{
			Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlDiscard, Buckets: moved}})
		if seqs := reply.DiscardedSeqs[transport.StreamKey("E2", 0)]; len(seqs) > 0 {
			resends = append(resends, resend{service: "frag/F2#0", consumer: i, seqs: seqs})
		}
		ctrl.call(node, svc, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlEvict, Buckets: moved}})
	}
	for _, f := range []string{"frag/F1#0", "frag/F2#0"} {
		ctrl.call("data1", f, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlSetBucketMap, BucketMap: newMap}})
	}
	ctrl.call("data1", "frag/F1#0", &transport.Message{Kind: transport.KindControl,
		Ctrl: &transport.Ctrl{Op: transport.CtrlReplay, Buckets: moved}})
	for _, rs := range resends {
		ctrl.call("data1", rs.service, &transport.Message{
			Kind: transport.KindControl, ConsumerIdx: rs.consumer,
			Ctrl: &transport.Ctrl{Op: transport.CtrlResend, Seqs: rs.seqs}})
	}
	for _, f := range []string{"frag/F1#0", "frag/F2#0"} {
		ctrl.call("data1", f, &transport.Message{Kind: transport.KindControl,
			Ctrl: &transport.Ctrl{Op: transport.CtrlResume}})
	}

	out := c.collect()
	want := expectedQ2(c.store)
	if len(out) != len(want) {
		t.Fatalf("join produced %d rows after parallel repartitioning, want %d", len(out), len(want))
	}
	got := multiset(out)
	for k, n := range multiset(want) {
		if got[k] != n {
			t.Fatalf("row %q: got %d, want %d (repartitioning corrupted the parallel join)", k, got[k], n)
		}
	}
}

// TestProducerControlRacesConcurrentSenders races Pause/Resume/SetWeights
// against several workers pushing batches through SendBatchMeter, then
// checks the routed accounting stayed exact. Run under -race this exercises
// the flow barrier, the per-consumer shard counters and the policy swap.
func TestProducerControlRacesConcurrentSenders(t *testing.T) {
	pol, err := NewWeightedPolicy([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h := newProducerHarness(t, 2, false, pol)

	const (
		senders   = 4
		batches   = 50
		batchSize = 8
	)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := vtime.NewMeter(h.ctx.Clock)
			ts := make([]relation.Tuple, batchSize)
			for b := 0; b < batches; b++ {
				for i := range ts {
					ts[i] = intTuple(s*batches*batchSize + b*batchSize + i)
				}
				if err := h.prod.SendBatchMeter(ts, m); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}()
	}

	ctrlDone := make(chan struct{})
	go func() {
		defer close(ctrlDone)
		weights := [][]float64{{0.9, 0.1}, {0.2, 0.8}, {0.5, 0.5}}
		for i := 0; i < 30; i++ {
			if err := h.prod.Pause(); err != nil {
				t.Errorf("pause: %v", err)
				return
			}
			if err := h.prod.SetWeights(weights[i%len(weights)]); err != nil {
				t.Errorf("setweights: %v", err)
				return
			}
			h.prod.Resume()
		}
	}()

	wg.Wait()
	<-ctrlDone
	if err := h.prod.Close(); err != nil {
		t.Fatal(err)
	}

	const total = senders * batches * batchSize
	routed, _ := h.prod.Progress()
	if routed != total {
		t.Fatalf("routed = %d, want %d", routed, total)
	}
	var perConsumer int64
	for _, n := range h.prod.ConsumerTupleCounts() {
		perConsumer += n
	}
	if perConsumer != total {
		t.Fatalf("per-consumer counts sum to %d, want %d", perConsumer, total)
	}
	// Every tuple was delivered exactly once across the two endpoints.
	seen := make(map[int64]int)
	for c := 0; c < 2; c++ {
		for _, m := range h.messages(c) {
			if m.Kind != transport.KindData {
				continue
			}
			for _, tp := range m.Tuples {
				seen[tp[0].AsInt()]++
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct tuples, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("tuple %d delivered %d times", v, n)
		}
	}
}
