package engine

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

func buildTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{
			relation.String(fmt.Sprintf("K%03d", i)),
			relation.String(fmt.Sprintf("seq%d", i)),
		}
	}
	return out
}

func probeTuples(n, keyDomain int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{
			relation.String(fmt.Sprintf("K%03d", i%keyDomain)),
			relation.Int(int64(i)),
		}
	}
	return out
}

func newJoin(build, probe []relation.Tuple) *HashJoin {
	return &HashJoin{
		Build:     NewSliceSource(build, 0),
		Probe:     NewSliceSource(probe, 0),
		BuildKeys: []int{0},
		ProbeKeys: []int{0},
	}
}

func TestHashJoinMatches(t *testing.T) {
	ctx := testCtx()
	j := newJoin(buildTuples(20), probeTuples(60, 20))
	out := drain(t, j, ctx)
	if len(out) != 60 {
		t.Fatalf("join produced %d tuples, want 60 (every probe matches once)", len(out))
	}
	for _, tp := range out {
		if len(tp) != 4 {
			t.Fatal("concat width")
		}
		if !tp[0].Equal(tp[2]) {
			t.Fatalf("keys differ in output: %v", tp.Format())
		}
	}
}

func TestHashJoinNoMatches(t *testing.T) {
	ctx := testCtx()
	probe := []relation.Tuple{{relation.String("NOPE"), relation.Int(1)}}
	out := drain(t, newJoin(buildTuples(5), probe), ctx)
	if len(out) != 0 {
		t.Fatalf("unexpected matches: %d", len(out))
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	ctx := testCtx()
	build := append(buildTuples(3), buildTuples(3)...) // each key twice
	out := drain(t, newJoin(build, probeTuples(3, 3)), ctx)
	if len(out) != 6 {
		t.Fatalf("join produced %d tuples, want 6", len(out))
	}
}

func TestHashJoinStateSize(t *testing.T) {
	ctx := testCtx()
	j := newJoin(buildTuples(30), nil)
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if j.StateSize() != 30 {
		t.Fatalf("state size = %d", j.StateSize())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.StateSize() != 0 {
		t.Fatal("Close must drop state")
	}
}

func TestHashJoinEvictAndReplay(t *testing.T) {
	ctx := testCtx()
	build := buildTuples(40)
	j := newJoin(build, probeTuples(40, 40))
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Evict the buckets of the first 10 build tuples.
	var evict []int32
	evictSet := make(map[int32]bool)
	for _, tp := range build[:10] {
		b, err := j.BucketOf(tp)
		if err != nil {
			t.Fatal(err)
		}
		if !evictSet[b] {
			evictSet[b] = true
			evict = append(evict, b)
		}
	}
	j.EvictBuckets(evict)
	if j.StateSize() >= 40 {
		t.Fatal("eviction did not shrink state")
	}
	// Replay exactly the tuples whose buckets were evicted (as the
	// recovery log would) and verify the join output is complete again.
	var replay []relation.Tuple
	for _, tp := range build {
		b, _ := j.BucketOf(tp)
		if evictSet[b] {
			replay = append(replay, tp)
		}
	}
	j.InsertState(replay)
	if j.StateSize() != 40 {
		t.Fatalf("state after replay = %d, want 40", j.StateSize())
	}
	var out []relation.Tuple
	for {
		tp, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, tp)
	}
	if len(out) != 40 {
		t.Fatalf("join after evict+replay produced %d, want 40", len(out))
	}
}

func TestHashJoinBucketAlignmentWithPolicy(t *testing.T) {
	// The join's bucket for a build tuple must equal the bucket the hash
	// distribution policy routes it by, or eviction and replay would
	// target different state than the producer moves.
	ctx := testCtx()
	j := newJoin(buildTuples(1), nil)
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	pol, err := NewHashPolicy([]int{0}, ctx.Buckets, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range buildTuples(100) {
		jb, _ := j.BucketOf(tp)
		_, pb := pol.Route(tp)
		if jb != pb {
			t.Fatalf("bucket mismatch: join %d vs policy %d for %v", jb, pb, tp.Format())
		}
	}
}

func TestHashJoinHashCollisionSafety(t *testing.T) {
	// Two different keys that share a bucket must not match; we force the
	// issue with a single bucket.
	ctx := testCtx()
	ctx.Buckets = 1
	build := []relation.Tuple{{relation.String("A"), relation.String("x")}}
	probe := []relation.Tuple{{relation.String("B"), relation.Int(1)}}
	out := drain(t, newJoin(build, probe), ctx)
	if len(out) != 0 {
		t.Fatal("cross-key match leaked through shared bucket")
	}
}

func BenchmarkHashJoinProbe(b *testing.B) {
	ctx := testCtx()
	ctx.Costs = Costs{} // measure the data structure, not the cost model
	build := buildTuples(1000)
	j := newJoin(build, nil)
	if err := j.Open(ctx); err != nil {
		b.Fatal(err)
	}
	probe := probeTuples(1000, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Probe = NewSliceSource(probe, 0)
		_ = j.Probe.Open(ctx)
		for {
			_, ok, err := j.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}
