package engine

import (
	"fmt"
	"sort"

	"repro/internal/logical"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Aggregate spilling (see DESIGN.md §5i). Unlike the join, the aggregate
// never defers input: on a budget breach every group — shared table and
// worker partials alike — is dumped to one append-only run as a
// partial-aggregate record and the in-memory tables restart empty.
// Aggregation is commutative and associative, so the final merge simply
// reloads the run and re-merges each record into the merged table; what that
// merge materialises is the distinct result groups, i.e. the same memory the
// emit buffer needs regardless of spilling. The budget therefore governs the
// absorb phase — where raw-input skew, not result size, drives the
// footprint.
//
// R1 correctness uses a per-bucket record watermark: an eviction of bucket b
// records the run length at eviction time, and the reload drops the bucket's
// records below it. Groups absorbed from replayed history afterwards are
// dumped beyond the watermark and survive, mirroring the in-memory
// delete-then-replay exactly. Like the join, spilling works for serial and
// morsel-parallel aggregates alike: workers account group creation through
// per-stripe budget handles and dumps serialize under s.mu, which already
// orders them against the final merge.

// groupBytes is the accounted in-memory footprint of one group.
func groupBytes(g *groupState) int64 {
	return int64(g.key.ByteSize()) + 48*int64(len(g.accs)+1)
}

// accountGroup reserves a freshly created group against the budget through
// the creating worker's stripe handle (stripe 0 when the caller has none —
// a replay landing before the receiving clone opened).
func (s *aggState) accountGroup(g *groupState, a *storage.BudgetAcct) {
	if !s.spillOn {
		return
	}
	if a == nil {
		a = s.acct0
	}
	sz := groupBytes(g)
	s.bytes.Add(sz)
	a.Reserve(sz)
}

// dump writes every group to the spill run and clears the in-memory tables.
// Caller holds no locks; dump takes s.mu then the partial locks — the same
// order mergeAndFreeze uses.
func (s *aggState) dump(a *HashAggregate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		return nil
	}
	if s.run == nil {
		s.runName = s.base + "-groups"
		w, err := s.backend.Create(s.runName)
		if err != nil {
			return fmt.Errorf("engine: agg spill create: %w", err)
		}
		s.run = w
		s.spillLive = make(map[int32]int64)
	}
	var dumped int64
	emit := func(state map[int32]map[uint64][]*groupState) error {
		for b, m := range state {
			for _, chain := range m {
				for _, g := range chain {
					if err := s.run.Append(encodeGroupRec(b, g, a.Kinds)); err != nil {
						return fmt.Errorf("engine: agg spill append: %w", err)
					}
					s.recCount++
					s.spillLive[b]++
					dumped++
				}
			}
		}
		return nil
	}
	if err := emit(s.state); err != nil {
		return err
	}
	s.state = make(map[int32]map[uint64][]*groupState)
	for _, p := range s.partials {
		p.mu.Lock()
		if p.state != nil {
			if err := emit(p.state); err != nil {
				p.mu.Unlock()
				return err
			}
			p.state = make(map[int32]map[uint64][]*groupState)
		}
		p.mu.Unlock()
	}
	released := s.bytes.Swap(0)
	s.mem.Release(released)
	s.met.bytes.Add(released)
	s.met.parts.Inc()
	recordSpillEvent(s.ctx, fmt.Sprintf("agg dump -> %s", s.runName), dumped)
	return nil
}

// encodeGroupRec flattens one group into a run record:
// [Int(bucket), key..., per aggregate: Int(count), Float(sum), minmax, Int(seen)].
func encodeGroupRec(b int32, g *groupState, kinds []logical.AggKind) relation.Tuple {
	rec := make(relation.Tuple, 0, 1+len(g.key)+4*len(kinds))
	rec = append(rec, relation.Int(int64(b)))
	rec = append(rec, g.key...)
	for i := range kinds {
		acc := g.accs[i]
		seen := int64(0)
		if acc.seen {
			seen = 1
		}
		rec = append(rec, relation.Int(acc.count), relation.Float(acc.sum), acc.minmax, relation.Int(seen))
	}
	return rec
}

// decodeGroupRec inverts encodeGroupRec.
func decodeGroupRec(rec relation.Tuple, nKeys, nAccs int) (b int32, key relation.Tuple, accs []accumulator, err error) {
	if len(rec) != 1+nKeys+4*nAccs || rec[0].Type() != relation.TInt {
		return 0, nil, nil, fmt.Errorf("engine: malformed agg spill record")
	}
	b = int32(rec[0].AsInt())
	key = rec[1 : 1+nKeys]
	accs = make([]accumulator, nAccs)
	for i := 0; i < nAccs; i++ {
		f := rec[1+nKeys+4*i:]
		if f[0].Type() != relation.TInt || f[1].Type() != relation.TFloat || f[3].Type() != relation.TInt {
			return 0, nil, nil, fmt.Errorf("engine: malformed agg spill record")
		}
		accs[i] = accumulator{count: f[0].AsInt(), sum: f[1].AsFloat(), minmax: f[2], seen: f[3].AsInt() != 0}
	}
	return b, key, accs, nil
}

// reloadLocked re-merges the dumped records into the merged shared table.
// Caller holds s.mu (the final merge).
func (s *aggState) reloadLocked(a *HashAggregate) error {
	if err := s.run.Close(); err != nil {
		return fmt.Errorf("engine: agg spill seal: %w", err)
	}
	s.run = nil
	r, err := s.backend.Open(s.runName)
	if err != nil {
		return fmt.Errorf("engine: agg spill reload: %w", err)
	}
	defer r.Close()
	idOrds := make([]int, len(a.GroupOrds))
	for i := range idOrds {
		idOrds[i] = i
	}
	perBucket := make(map[int32]int64, len(s.spillLive))
	for {
		rec, ok, rerr := r.Next()
		if rerr != nil {
			return rerr
		}
		if !ok {
			break
		}
		b, key, accs, derr := decodeGroupRec(rec, len(a.GroupOrds), len(a.Kinds))
		if derr != nil {
			return derr
		}
		idx := perBucket[b]
		perBucket[b] = idx + 1
		if idx < s.evictedAt[b] {
			continue // evicted before this record's bucket watermark
		}
		g := s.findOrCreateMergedLocked(b, key.Hash(idOrds), key, len(a.Kinds))
		for i, kind := range a.Kinds {
			g.accs[i].merge(accs[i], kind)
		}
	}
	_ = s.backend.Remove(s.runName)
	s.runName = ""
	s.spillLive = nil
	return nil
}

// External merge sort (see DESIGN.md §5i, §5j). Sort is never
// parallel-eligible — it runs in the serial collector fragment — but it
// shares the query's striped budget with any morsel-parallel joins and
// aggregates upstream: under a budget the buffer is accounted per tuple
// and, on breach, sorted and flushed as one run. The emit phase merges
// the sealed runs with the sorted in-memory tail; ties resolve to the
// earlier source (runs in flush order, the tail last), which reproduces
// sort.SliceStable over the full input byte for byte.

// sortTupleBytes is the accounted footprint of one buffered sort tuple.
func sortTupleBytes(t relation.Tuple) int64 {
	return int64(t.ByteSize()) + 24
}

// flushRun sorts and spills the current buffer as one sealed run.
func (s *Sort) flushRun() error {
	if len(s.sorted) == 0 {
		return nil
	}
	if s.base == "" {
		s.base = s.ctx.spillRunName("sort")
		s.met = newSpillMetrics()
	}
	name := fmt.Sprintf("%s-r%d", s.base, len(s.runs))
	w, err := s.ctx.Spill.Create(name)
	if err != nil {
		return fmt.Errorf("engine: sort spill create: %w", err)
	}
	sortBuffer(s)
	if err := w.AppendAll(s.sorted); err != nil {
		_ = w.Close()
		return fmt.Errorf("engine: sort spill append: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("engine: sort spill seal: %w", err)
	}
	s.runs = append(s.runs, name)
	s.acct.Release(s.bufBytes)
	s.met.bytes.Add(s.bufBytes)
	s.bufBytes = 0
	s.met.parts.Inc()
	recordSpillEvent(s.ctx, fmt.Sprintf("sort run %s", name), int64(len(s.sorted)))
	s.sorted = s.sorted[:0]
	return nil
}

// sortSource is one merge input: a sealed run or the in-memory tail.
type sortSource struct {
	reader storage.RunReader // nil for the in-memory tail
	buf    []relation.Tuple
	pos    int
	head   relation.Tuple
	ok     bool
}

func (src *sortSource) advance() error {
	if src.reader != nil {
		t, ok, err := src.reader.Next()
		if err != nil {
			return err
		}
		src.head, src.ok = t, ok
		return nil
	}
	if src.pos < len(src.buf) {
		src.head, src.ok = src.buf[src.pos], true
		src.pos++
	} else {
		src.head, src.ok = nil, false
	}
	return nil
}

// startMerge seals the drain phase: the tail buffer is sorted and every
// source is positioned on its first tuple.
func (s *Sort) startMerge() error {
	sortBuffer(s)
	for _, name := range s.runs {
		r, err := s.ctx.Spill.Open(name)
		if err != nil {
			return fmt.Errorf("engine: sort spill reload: %w", err)
		}
		s.merge = append(s.merge, &sortSource{reader: r})
	}
	s.merge = append(s.merge, &sortSource{buf: s.sorted})
	for _, src := range s.merge {
		if err := src.advance(); err != nil {
			return err
		}
	}
	return nil
}

// mergeNext pops the smallest head across sources (ties to the earliest
// source, preserving stability).
func (s *Sort) mergeNext() (relation.Tuple, bool, error) {
	best := -1
	for i, src := range s.merge {
		if !src.ok {
			continue
		}
		if best < 0 || s.less(src.head, s.merge[best].head) {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	t := s.merge[best].head
	if err := s.merge[best].advance(); err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// closeSpill releases every external-sort resource.
func (s *Sort) closeSpill() {
	for _, src := range s.merge {
		if src.reader != nil {
			_ = src.reader.Close()
		}
	}
	s.merge = nil
	for _, name := range s.runs {
		_ = s.ctx.Spill.Remove(name)
	}
	s.runs = nil
	s.acct.Release(s.bufBytes)
	s.bufBytes = 0
}

// sortBuffer stable-sorts the in-memory buffer by the sort keys.
func sortBuffer(s *Sort) {
	sort.SliceStable(s.sorted, func(i, j int) bool { return s.less(s.sorted[i], s.sorted[j]) })
}
