package engine

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/relation"
	"repro/internal/scalar"
	"repro/internal/simnet"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// testCtx builds an ExecContext on a fresh unperturbed node with a fast
// clock and the demo store/services.
func testCtx() *ExecContext {
	clock := vtime.NewClock(100 * time.Nanosecond)
	return &ExecContext{
		Clock:    clock,
		Node:     simnet.NewNode("test"),
		Meter:    vtime.NewMeter(clock),
		Store:    dataset.DemoSized(50, 80),
		Services: ws.NewRegistry(ws.Entropy{}, ws.SequenceLength{}),
		Costs:    DefaultCosts(),
		Buckets:  64,
	}
}

// drain runs an iterator to completion.
func drain(t *testing.T, it Iterator, ctx *ExecContext) []relation.Tuple {
	t.Helper()
	if err := it.Open(ctx); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out []relation.Tuple
	for {
		tp, ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		out = append(out, tp)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

func TestTableScan(t *testing.T) {
	ctx := testCtx()
	out := drain(t, &TableScan{Table: "protein_sequences"}, ctx)
	if len(out) != 50 {
		t.Fatalf("scanned %d tuples, want 50", len(out))
	}
	if ctx.Meter.ChargedMs() < 50*ctx.Costs.ScanMs {
		t.Error("scan cost not charged")
	}
}

func TestTableScanErrors(t *testing.T) {
	ctx := testCtx()
	if err := (&TableScan{Table: "missing"}).Open(ctx); err == nil {
		t.Error("missing table accepted")
	}
	noStore := testCtx()
	noStore.Store = nil
	if err := (&TableScan{Table: "protein_sequences"}).Open(noStore); err == nil {
		t.Error("scan without store accepted")
	}
}

func TestSelect(t *testing.T) {
	ctx := testCtx()
	pred, err := scalar.Compare(
		scalar.Col(0, relation.TString, "ORF"), scalar.Eq,
		scalar.Const(relation.String("YAL00007C")))
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, &Select{Child: &TableScan{Table: "protein_sequences"}, Pred: pred}, ctx)
	if len(out) != 1 || out[0][0].AsString() != "YAL00007C" {
		t.Fatalf("filter result: %d tuples", len(out))
	}
}

func TestProject(t *testing.T) {
	ctx := testCtx()
	out := drain(t, &Project{Child: &TableScan{Table: "protein_interactions"}, Ords: []int{1}}, ctx)
	if len(out) != 80 || len(out[0]) != 1 {
		t.Fatalf("project: %d tuples, width %d", len(out), len(out[0]))
	}
}

func TestOperationCall(t *testing.T) {
	ctx := testCtx()
	op := &OperationCall{
		Fn:      "EntropyAnalyser",
		ArgOrds: []int{1},
		Child:   &TableScan{Table: "protein_sequences"},
	}
	out := drain(t, op, ctx)
	if len(out) != 50 {
		t.Fatalf("%d tuples", len(out))
	}
	for _, tp := range out {
		if len(tp) != 3 {
			t.Fatal("result column not appended")
		}
		h := tp[2].AsFloat()
		if h <= 0 || h > 8 {
			t.Fatalf("entropy out of range: %v", h)
		}
	}
}

func TestOperationCallPerturbed(t *testing.T) {
	// A 10x perturbation must make the charged cost ~10x higher.
	base := testCtx()
	baseOut := drain(t, &OperationCall{Fn: "EntropyAnalyser", ArgOrds: []int{1},
		Child: &TableScan{Table: "protein_sequences"}}, base)
	baseCost := base.Meter.ChargedMs()

	pert := testCtx()
	pert.Node.SetPerturbation(vtime.Multiplier(10))
	drain(t, &OperationCall{Fn: "EntropyAnalyser", ArgOrds: []int{1},
		Child: &TableScan{Table: "protein_sequences"}}, pert)
	pertCost := pert.Meter.ChargedMs()

	if len(baseOut) != 50 {
		t.Fatal("base run wrong")
	}
	ratio := pertCost / baseCost
	// Scan cost is also perturbed on the node; ratio must be close to 10.
	if ratio < 8 || ratio > 10.5 {
		t.Fatalf("cost ratio = %v, want ~10", ratio)
	}
}

func TestOperationCallErrors(t *testing.T) {
	ctx := testCtx()
	if err := (&OperationCall{Fn: "nope", Child: NewSliceSource(nil, 0)}).Open(ctx); err == nil {
		t.Error("unknown service accepted")
	}
	noSvc := testCtx()
	noSvc.Services = nil
	if err := (&OperationCall{Fn: "EntropyAnalyser", Child: NewSliceSource(nil, 0)}).Open(noSvc); err == nil {
		t.Error("nil registry accepted")
	}
	// Invocation error propagates: wrong arg type.
	bad := &OperationCall{Fn: "EntropyAnalyser", ArgOrds: []int{0},
		Child: NewSliceSource([]relation.Tuple{{relation.Int(3)}}, 0)}
	if err := bad.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bad.Next(); err == nil {
		t.Error("invocation error swallowed")
	}
}

func TestSliceSource(t *testing.T) {
	ctx := testCtx()
	src := NewSliceSource([]relation.Tuple{{relation.Int(1)}, {relation.Int(2)}}, 1)
	out := drain(t, src, ctx)
	if len(out) != 2 {
		t.Fatalf("%d tuples", len(out))
	}
}
