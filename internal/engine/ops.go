package engine

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/relation"
	"repro/internal/scalar"
	"repro/internal/ws"
)

// TableScan reads a base table from the node's Grid Data Service store.
// In-memory tables keep the zero-copy slice fast path. Stored tables on a
// block-capable backend decode whole blocks at a time into the scan's
// arena, with budget-governed readahead in front of the decoder (see
// scan.go); other stored tables fall back to the tuple-at-a-time cursor.
type TableScan struct {
	Table string

	ctx    *ExecContext
	tuples []relation.Tuple
	blocks *blockScan     // batched stored path (block-capable backend)
	cursor dataset.Cursor // stored fallback path
	pos    int
	costs  []float64 // per-tuple base costs, reused across batches
}

// Open implements Iterator.
func (s *TableScan) Open(ctx *ExecContext) error {
	if ctx.Store == nil {
		return fmt.Errorf("engine: scan of %q on a node with no data store", s.Table)
	}
	tbl, err := ctx.Store.Table(s.Table)
	if err != nil {
		return err
	}
	s.ctx = ctx
	s.pos = 0
	if tbl.Stored() {
		br, ok, err := tbl.OpenBlocks()
		if err != nil {
			return err
		}
		if ok {
			s.blocks = newBlockScan(ctx, br)
			return nil
		}
		cur, err := tbl.Rows()
		if err != nil {
			return err
		}
		s.cursor = cur
		return nil
	}
	s.tuples = tbl.Tuples
	return nil
}

// Next implements Iterator.
func (s *TableScan) Next() (relation.Tuple, bool, error) {
	var t relation.Tuple
	switch {
	case s.blocks != nil:
		var ok bool
		var err error
		t, ok, err = s.blocks.nextTuple()
		if err != nil || !ok {
			return nil, false, err
		}
	case s.cursor != nil:
		var ok bool
		var err error
		t, ok, err = s.cursor.Next()
		if err != nil || !ok {
			return nil, false, err
		}
	default:
		if s.pos >= len(s.tuples) {
			return nil, false, nil
		}
		t = s.tuples[s.pos]
		s.pos++
	}
	s.ctx.charge(s.ctx.Costs.ScanMs + s.ctx.Costs.ScanByteMs*float64(t.ByteSize()))
	return t, true, nil
}

// NextBatch implements BatchIterator: in-memory tables hand out tuples by
// reference (zero copies, zero allocations); stored tables fill the batch a
// block at a time (or from the fallback cursor). Either way the batch's
// scan cost is charged in one node/meter round trip.
func (s *TableScan) NextBatch(dst *relation.Batch) (int, error) {
	if s.blocks != nil {
		n, err := s.blocks.fill(dst)
		chargeScanBatch(s.ctx, dst.Tuples, s.blocks.sizes, &s.costs)
		return n, err
	}
	dst.Rewind()
	if s.cursor != nil {
		for !dst.Full() {
			t, ok, err := s.cursor.Next()
			if err != nil {
				return dst.Len(), err
			}
			if !ok {
				break
			}
			dst.Append(t)
		}
		chargeScanBatch(s.ctx, dst.Tuples, nil, &s.costs)
		return dst.Len(), nil
	}
	n := len(s.tuples) - s.pos
	if n <= 0 {
		return 0, nil
	}
	if c := dst.Cap(); n > c {
		n = c
	}
	chunk := s.tuples[s.pos : s.pos+n]
	s.pos += n
	chargeScanBatch(s.ctx, chunk, nil, &s.costs)
	dst.AppendAll(chunk)
	return n, nil
}

// Close implements Iterator.
func (s *TableScan) Close() error {
	var err error
	if s.blocks != nil {
		err = s.blocks.close()
		s.blocks = nil
	}
	if s.cursor != nil {
		err = s.cursor.Close()
		s.cursor = nil
	}
	s.tuples = nil
	s.costs = nil
	return err
}

// Select filters tuples by a compiled predicate.
type Select struct {
	Child Iterator
	Pred  scalar.Predicate

	ctx *ExecContext
}

// Open implements Iterator.
func (s *Select) Open(ctx *ExecContext) error {
	s.ctx = ctx
	return s.Child.Open(ctx)
}

// Next implements Iterator.
func (s *Select) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := s.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		s.ctx.charge(s.ctx.Costs.FilterMs)
		if s.Pred.Matches(t) {
			return t, true, nil
		}
	}
}

// NextBatch implements BatchIterator: it fills dst from the child and
// filters it in place by compaction, so surviving tuples are forwarded
// without re-staging (a tuple that passes before the first miss is never
// rewritten at all) and the filter cost is charged once per batch.
// Low-selectivity predicates loop over input batches until at least one
// tuple survives, so n == 0 still means end of stream.
func (s *Select) NextBatch(dst *relation.Batch) (int, error) {
	for {
		n, err := FillBatch(s.Child, dst)
		if err != nil || n == 0 {
			return n, err
		}
		s.ctx.chargeN(s.ctx.Costs.FilterMs, n)
		ts := dst.Tuples
		i := 0
		for i < n && s.Pred.Matches(ts[i]) {
			i++
		}
		if i == n {
			return n, nil
		}
		w := i
		for i++; i < n; i++ {
			if s.Pred.Matches(ts[i]) {
				ts[w] = ts[i]
				w++
			}
		}
		dst.Tuples = ts[:w]
		if w > 0 {
			return w, nil
		}
	}
}

// Close implements Iterator.
func (s *Select) Close() error {
	return s.Child.Close()
}

// Project keeps the columns at the given ordinals.
type Project struct {
	Child Iterator
	Ords  []int

	ctx   *ExecContext
	arena relation.Arena
}

// Open implements Iterator.
func (p *Project) Open(ctx *ExecContext) error {
	p.ctx = ctx
	return p.Child.Open(ctx)
}

// Next implements Iterator.
func (p *Project) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.ctx.charge(p.ctx.Costs.ProjectMs)
	// Carve the output from the arena like NextBatch does, so the scalar
	// probe path amortises its projections the same way the batch path does.
	out := p.arena.Alloc(len(p.Ords))
	for k, o := range p.Ords {
		out[k] = t[o]
	}
	return out, true, nil
}

// NextBatch implements BatchIterator: it fills dst from the child and
// replaces each tuple with its projection in place. The whole batch's output
// values are carved from the arena in one allocation, and the per-tuple
// charge is bundled.
func (p *Project) NextBatch(dst *relation.Batch) (int, error) {
	n, err := FillBatch(p.Child, dst)
	if err != nil || n == 0 {
		return 0, err
	}
	p.ctx.chargeN(p.ctx.Costs.ProjectMs, n)
	w := len(p.Ords)
	vals := p.arena.Alloc(n * w)
	for i, t := range dst.Tuples {
		out := vals[i*w : (i+1)*w : (i+1)*w]
		for k, o := range p.Ords {
			out[k] = t[o]
		}
		dst.Tuples[i] = out
	}
	return n, nil
}

// Close implements Iterator.
func (p *Project) Close() error {
	return p.Child.Close()
}

// OperationCall invokes a Web Service operation per tuple and appends the
// result column — OGSA-DQP's operation_call operator, the expensive step of
// the paper's Q1. Its per-invocation cost is charged through the node's
// perturbation model, which is how "the cost of the WS call in one machine"
// is made "exactly 10 times more than in the other" (§3.2).
type OperationCall struct {
	Fn      string
	ArgOrds []int
	Child   Iterator

	ctx   *ExecContext
	svc   ws.Service
	args  []relation.Value
	arena relation.Arena
}

// Open implements Iterator.
func (o *OperationCall) Open(ctx *ExecContext) error {
	if ctx.Services == nil {
		return fmt.Errorf("engine: no web services available for %q", o.Fn)
	}
	svc, err := ctx.Services.Lookup(o.Fn)
	if err != nil {
		return err
	}
	o.ctx = ctx
	o.svc = svc
	o.args = make([]relation.Value, len(o.ArgOrds))
	return o.Child.Open(ctx)
}

// Next implements Iterator.
func (o *OperationCall) Next() (relation.Tuple, bool, error) {
	t, ok, err := o.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, ord := range o.ArgOrds {
		o.args[i] = t[ord]
	}
	o.ctx.charge(o.svc.BaseCostMs())
	v, err := o.svc.Invoke(o.args)
	if err != nil {
		return nil, false, fmt.Errorf("engine: %s: %w", o.Fn, err)
	}
	out := o.arena.Alloc(len(t) + 1)
	copy(out, t)
	out[len(t)] = v
	return out, true, nil
}

// NextBatch implements BatchIterator. Invocations stay one per tuple — each
// WS call is one unit of perturbable work, which the paper's Q1 experiments
// inflate per call — but the cost accounting and output construction are
// batched.
func (o *OperationCall) NextBatch(dst *relation.Batch) (int, error) {
	n, err := FillBatch(o.Child, dst)
	if err != nil || n == 0 {
		return 0, err
	}
	o.ctx.chargeN(o.svc.BaseCostMs(), n)
	for i, t := range dst.Tuples {
		for k, ord := range o.ArgOrds {
			o.args[k] = t[ord]
		}
		v, err := o.svc.Invoke(o.args)
		if err != nil {
			dst.Tuples = dst.Tuples[:i]
			return i, fmt.Errorf("engine: %s: %w", o.Fn, err)
		}
		out := o.arena.Alloc(len(t) + 1)
		copy(out, t)
		out[len(t)] = v
		dst.Tuples[i] = out
	}
	return n, nil
}

// Close implements Iterator.
func (o *OperationCall) Close() error {
	return o.Child.Close()
}

// sliceIterator feeds a fixed tuple slice; tests and examples use it as a
// lightweight source.
type sliceIterator struct {
	tuples []relation.Tuple
	pos    int
	costMs float64
	ctx    *ExecContext
}

// NewSliceSource returns an iterator over the given tuples charging costMs
// per tuple.
func NewSliceSource(tuples []relation.Tuple, costMs float64) Iterator {
	return &sliceIterator{tuples: tuples, costMs: costMs}
}

func (s *sliceIterator) Open(ctx *ExecContext) error {
	s.ctx = ctx
	s.pos = 0
	return nil
}

func (s *sliceIterator) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.tuples) {
		return nil, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	if s.costMs > 0 {
		s.ctx.charge(s.costMs)
	}
	return t, true, nil
}

// NextBatch implements BatchIterator.
func (s *sliceIterator) NextBatch(dst *relation.Batch) (int, error) {
	dst.Rewind()
	n := len(s.tuples) - s.pos
	if n <= 0 {
		return 0, nil
	}
	if c := dst.Cap(); n > c {
		n = c
	}
	chunk := s.tuples[s.pos : s.pos+n]
	s.pos += n
	if s.costMs > 0 {
		s.ctx.chargeN(s.costMs, n)
	}
	dst.AppendAll(chunk)
	return n, nil
}

func (s *sliceIterator) Close() error { return nil }
