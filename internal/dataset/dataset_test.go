package dataset

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestProteinSequencesShape(t *testing.T) {
	tbl := ProteinSequences(100, 1)
	if tbl.Cardinality() != 100 {
		t.Fatalf("cardinality = %d", tbl.Cardinality())
	}
	if tbl.Schema.Len() != 2 {
		t.Fatalf("schema = %v", tbl.Schema)
	}
	seen := make(map[string]bool)
	for i, tp := range tbl.Tuples {
		orf := tp[0].AsString()
		if seen[orf] {
			t.Fatalf("duplicate ORF %q", orf)
		}
		seen[orf] = true
		seq := tp[1].AsString()
		if len(seq) != SequenceLength {
			t.Fatalf("tuple %d: sequence length %d, want %d (paper pads all tuples equal)", i, len(seq), SequenceLength)
		}
		if seq[0] != 'M' {
			t.Errorf("tuple %d: sequence does not start with M", i)
		}
		for _, r := range seq {
			if !strings.ContainsRune(aminoAcids, r) {
				t.Fatalf("tuple %d: invalid residue %q", i, r)
			}
		}
	}
}

func TestProteinSequencesDeterministic(t *testing.T) {
	a := ProteinSequences(50, 7)
	b := ProteinSequences(50, 7)
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			t.Fatalf("tuple %d differs across identical seeds", i)
		}
	}
	c := ProteinSequences(50, 8)
	same := true
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(c.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestProteinInteractionsJoinable(t *testing.T) {
	seqs := ProteinSequences(200, 1)
	ints := ProteinInteractions(500, 200, 1)
	if ints.Cardinality() != 500 {
		t.Fatalf("cardinality = %d", ints.Cardinality())
	}
	valid := make(map[string]bool, 200)
	for _, tp := range seqs.Tuples {
		valid[tp[0].AsString()] = true
	}
	for i, tp := range ints.Tuples {
		if !valid[tp[0].AsString()] {
			t.Fatalf("interaction %d: ORF1 %q not in sequence domain", i, tp[0].AsString())
		}
	}
}

func TestDemoCardinalities(t *testing.T) {
	s := Demo()
	seqs, err := s.Table("protein_sequences")
	if err != nil {
		t.Fatal(err)
	}
	if seqs.Cardinality() != DefaultSequences {
		t.Errorf("sequences = %d, want %d", seqs.Cardinality(), DefaultSequences)
	}
	ints, err := s.Table("PROTEIN_INTERACTIONS") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if ints.Cardinality() != DefaultInteractions {
		t.Errorf("interactions = %d, want %d", ints.Cardinality(), DefaultInteractions)
	}
}

func TestStoreMissingTable(t *testing.T) {
	s := NewStore()
	if _, err := s.Table("nope"); err == nil {
		t.Fatal("expected error for missing table")
	}
	if got := len(s.Names()); got != 0 {
		t.Fatalf("Names = %d", got)
	}
}

func TestStoreNamesSorted(t *testing.T) {
	s := Demo()
	names := s.Names()
	if len(names) != 2 || names[0] != "protein_interactions" || names[1] != "protein_sequences" {
		t.Fatalf("Names = %v", names)
	}
}

func TestAvgTupleBytes(t *testing.T) {
	tbl := ProteinSequences(10, 1)
	got := tbl.AvgTupleBytes()
	// ORF (9 chars) + sequence (128 chars) + headers: expect ~150 bytes.
	if got < 130 || got > 180 {
		t.Errorf("AvgTupleBytes = %d, want ~150", got)
	}
	empty := &Table{Name: "e", Schema: relation.NewSchema()}
	if empty.AvgTupleBytes() != 0 {
		t.Error("empty table should have 0 avg bytes")
	}
}

func TestProteinInteractionsZipfSkew(t *testing.T) {
	tbl := ProteinInteractionsZipf(5000, 500, 1.5, 1)
	if tbl.Cardinality() != 5000 {
		t.Fatalf("cardinality = %d", tbl.Cardinality())
	}
	counts := map[string]int{}
	for _, tp := range tbl.Tuples {
		counts[tp[0].AsString()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf(1.5): the hottest key must dominate the mean group size.
	mean := 5000 / len(counts)
	if max < 5*mean {
		t.Errorf("no skew: max group %d vs mean %d over %d groups", max, mean, len(counts))
	}
	// Deterministic.
	again := ProteinInteractionsZipf(5000, 500, 1.5, 1)
	for i := range tbl.Tuples {
		if !tbl.Tuples[i].Equal(again.Tuples[i]) {
			t.Fatal("not deterministic")
		}
	}
}
