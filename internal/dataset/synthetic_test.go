package dataset

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

// runBytes concatenates every block payload of a stored run — the raw
// generator output after framing, used for byte-identity assertions.
func runBytes(t *testing.T, b storage.BlockBackend, name string) []byte {
	t.Helper()
	r, err := b.OpenBlocks(name)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []byte
	for i := 0; i < r.Blocks(); i++ {
		block, err := r.ReadBlock(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, block...)
	}
	return out
}

func TestGeneratorsDeterministic(t *testing.T) {
	writers := map[string]func(b storage.Backend, run string) error{
		"sequences": func(b storage.Backend, run string) error {
			_, err := WriteProteinSequences(b, run, 1000, 7)
			return err
		},
		"interactions": func(b storage.Backend, run string) error {
			_, err := WriteProteinInteractions(b, run, 1500, 1000, 7)
			return err
		},
		"interactions-zipf": func(b storage.Backend, run string) error {
			_, err := WriteProteinInteractionsZipf(b, run, 1500, 1000, 1.2, 7)
			return err
		},
		"synthetic-uniform": func(b storage.Backend, run string) error {
			_, err := WriteSynthetic(b, run, SyntheticSpec{Rows: 1000, KeyDomain: 100, PayloadBytes: 48, Seed: 7})
			return err
		},
		"synthetic-zipf": func(b storage.Backend, run string) error {
			_, err := WriteSynthetic(b, run, SyntheticSpec{Rows: 1000, KeyDomain: 100, ZipfS: 1.3, PayloadBytes: 48, Seed: 7})
			return err
		},
	}
	for name, write := range writers {
		t.Run(name, func(t *testing.T) {
			a, b := storage.NewMemory(), storage.NewMemory()
			defer a.Close()
			defer b.Close()
			if err := write(a, "run"); err != nil {
				t.Fatal(err)
			}
			if err := write(b, "run"); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(runBytes(t, a, "run"), runBytes(t, b, "run")) {
				t.Fatal("same seed must produce byte-identical runs")
			}
		})
	}
}

func TestGeneratorSeedChangesOutput(t *testing.T) {
	a, b := storage.NewMemory(), storage.NewMemory()
	defer a.Close()
	defer b.Close()
	if _, err := WriteSynthetic(a, "run", SyntheticSpec{Rows: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSynthetic(b, "run", SyntheticSpec{Rows: 500, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(runBytes(t, a, "run"), runBytes(t, b, "run")) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestSyntheticStoredMatchesMaterialized(t *testing.T) {
	sp := SyntheticSpec{Name: "events", Rows: 2000, KeyDomain: 64, ZipfS: 1.5, PayloadBytes: 40, Seed: 11}
	mem := Synthetic(sp)
	backend := storage.NewMemory()
	defer backend.Close()
	stored, err := WriteSynthetic(backend, "events", sp)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Cardinality() != mem.Cardinality() {
		t.Fatalf("cardinality %d != %d", stored.Cardinality(), mem.Cardinality())
	}
	got := drainTable(t, stored)
	for i := range mem.Tuples {
		if !mem.Tuples[i].Equal(got[i]) {
			t.Fatalf("tuple %d diverged: %v vs %v", i, mem.Tuples[i].Format(), got[i].Format())
		}
	}
}

func TestDemoStoredMatchesDemoSized(t *testing.T) {
	backend := storage.NewMemory()
	defer backend.Close()
	stored, err := DemoStored(backend, 300, 470)
	if err != nil {
		t.Fatal(err)
	}
	mem := DemoSized(300, 470)
	for _, name := range mem.Names() {
		mt, err := mem.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := stored.Table(name)
		if err != nil {
			t.Fatalf("stored demo lacks %q: %v", name, err)
		}
		if !st.Stored() {
			t.Fatalf("%q not stored", name)
		}
		if st.TotalBytes() <= 0 {
			t.Fatalf("%q TotalBytes = %d", name, st.TotalBytes())
		}
		got := drainTable(t, st)
		if len(got) != len(mt.Tuples) {
			t.Fatalf("%q: %d of %d tuples", name, len(got), len(mt.Tuples))
		}
		for i := range mt.Tuples {
			if !mt.Tuples[i].Equal(got[i]) {
				t.Fatalf("%q tuple %d diverged", name, i)
			}
		}
	}
}
