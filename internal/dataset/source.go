// Streaming table sources: tables no longer have to materialise their
// tuples in memory. A Table either holds an in-memory tuple slice (the
// classic path, preserved untouched for the paper-scale demo database) or
// points at a sealed storage run, in which case scans stream it tuple at a
// time and generators can write tables far larger than memory directly to a
// posix backend.
package dataset

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Cursor streams a table's tuples in storage order. Cursors are
// single-goroutine objects; Close releases the underlying reader.
type Cursor interface {
	Next() (t relation.Tuple, ok bool, err error)
	Close() error
}

// sliceCursor walks an in-memory tuple slice.
type sliceCursor struct {
	tuples []relation.Tuple
	pos    int
}

func (c *sliceCursor) Next() (relation.Tuple, bool, error) {
	if c.pos >= len(c.tuples) {
		return nil, false, nil
	}
	t := c.tuples[c.pos]
	c.pos++
	return t, true, nil
}

func (c *sliceCursor) Close() error { return nil }

// runCursor streams a stored table's run.
type runCursor struct {
	r storage.RunReader
}

func (c *runCursor) Next() (relation.Tuple, bool, error) { return c.r.Next() }
func (c *runCursor) Close() error                        { return c.r.Close() }

// Stored reports whether the table's tuples live in a storage run rather
// than in memory.
func (t *Table) Stored() bool { return t.backend != nil }

// Rows returns a cursor over the table in storage order.
func (t *Table) Rows() (Cursor, error) {
	if t.backend == nil {
		return &sliceCursor{tuples: t.Tuples}, nil
	}
	r, err := t.backend.Open(t.run)
	if err != nil {
		return nil, fmt.Errorf("dataset: open stored table %q: %w", t.Name, err)
	}
	return &runCursor{r: r}, nil
}

// NewStoredTable wraps an already written, sealed run as a table. card and
// avgBytes feed the catalog statistics the optimiser reads.
func NewStoredTable(name string, schema *relation.Schema, backend storage.Backend, run string, card int, avgBytes int) *Table {
	return &Table{Name: name, Schema: schema, backend: backend, run: run, card: card, avgBytes: avgBytes}
}

// writeRows streams rows produced by gen into a backend run and returns the
// stored table. Nothing is materialised: memory use is one tuple plus the
// writer's block buffer regardless of n.
func writeRows(backend storage.Backend, run string, name string, schema *relation.Schema, n int, gen func(i int) relation.Tuple) (*Table, error) {
	w, err := backend.Create(run)
	if err != nil {
		return nil, fmt.Errorf("dataset: create table run: %w", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(gen(i)); err != nil {
			_ = w.Close()
			_ = backend.Remove(run)
			return nil, fmt.Errorf("dataset: write table run: %w", err)
		}
	}
	bytes := w.Bytes()
	if err := w.Close(); err != nil {
		_ = backend.Remove(run)
		return nil, fmt.Errorf("dataset: seal table run: %w", err)
	}
	avg := 0
	if n > 0 {
		avg = int(bytes) / n
	}
	return NewStoredTable(name, schema, backend, run, n, avg), nil
}

// WriteProteinSequences generates protein_sequences straight into a backend
// run — the path for tables larger than memory. Deterministic in (n, seed)
// and tuple-for-tuple identical to ProteinSequences.
func WriteProteinSequences(backend storage.Backend, run string, n int, seed int64) (*Table, error) {
	gen := sequencesGen(seed)
	return writeRows(backend, run, "protein_sequences", sequencesSchema(), n, gen)
}

// WriteProteinInteractions generates protein_interactions straight into a
// backend run. Deterministic in (n, seqCount, seed) and tuple-for-tuple
// identical to ProteinInteractions.
func WriteProteinInteractions(backend storage.Backend, run string, n, seqCount int, seed int64) (*Table, error) {
	gen := interactionsGen(seqCount, seed)
	return writeRows(backend, run, "protein_interactions", interactionsSchema(), n, gen)
}
