// Streaming table sources: tables no longer have to materialise their
// tuples in memory. A Table either holds an in-memory tuple slice (the
// classic path, preserved untouched for the paper-scale demo database) or
// points at a sealed storage run, in which case scans stream it tuple at a
// time and generators can write tables far larger than memory directly to a
// posix backend.
package dataset

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Cursor streams a table's tuples in storage order. Cursors are
// single-goroutine objects; Close releases the underlying reader.
type Cursor interface {
	Next() (t relation.Tuple, ok bool, err error)
	Close() error
}

// sliceCursor walks an in-memory tuple slice.
type sliceCursor struct {
	tuples []relation.Tuple
	pos    int
}

func (c *sliceCursor) Next() (relation.Tuple, bool, error) {
	if c.pos >= len(c.tuples) {
		return nil, false, nil
	}
	t := c.tuples[c.pos]
	c.pos++
	return t, true, nil
}

func (c *sliceCursor) Close() error { return nil }

// runCursor streams a stored table's run.
type runCursor struct {
	r storage.RunReader
}

func (c *runCursor) Next() (relation.Tuple, bool, error) { return c.r.Next() }
func (c *runCursor) Close() error                        { return c.r.Close() }

// Stored reports whether the table's tuples live in a storage run rather
// than in memory.
func (t *Table) Stored() bool { return t.backend != nil }

// Rows returns a cursor over the table in storage order.
func (t *Table) Rows() (Cursor, error) {
	if t.backend == nil {
		return &sliceCursor{tuples: t.Tuples}, nil
	}
	r, err := t.backend.Open(t.run)
	if err != nil {
		return nil, fmt.Errorf("dataset: open stored table %q: %w", t.Name, err)
	}
	return &runCursor{r: r}, nil
}

// OpenBlocks returns a block-granular reader over a stored table's run when
// its backend supports random block access. ok is false for in-memory
// tables and for backends without block support — callers fall back to
// Rows().
func (t *Table) OpenBlocks() (r storage.BlockReader, ok bool, err error) {
	if t.backend == nil {
		return nil, false, nil
	}
	bb, isBlock := t.backend.(storage.BlockBackend)
	if !isBlock {
		return nil, false, nil
	}
	r, err = bb.OpenBlocks(t.run)
	if err != nil {
		return nil, false, fmt.Errorf("dataset: open stored table %q: %w", t.Name, err)
	}
	return r, true, nil
}

// TotalBytes returns the encoded size of the table — exact for stored
// tables (cardinality × mean tuple size from the generator), estimated the
// same way for in-memory ones. The catalog carries it so the optimiser and
// admission control can see table volume, not just cardinality.
func (t *Table) TotalBytes() int64 {
	return int64(t.Cardinality()) * int64(t.AvgTupleBytes())
}

// NewStoredTable wraps an already written, sealed run as a table. card and
// avgBytes feed the catalog statistics the optimiser reads.
func NewStoredTable(name string, schema *relation.Schema, backend storage.Backend, run string, card int, avgBytes int) *Table {
	return &Table{Name: name, Schema: schema, backend: backend, run: run, card: card, avgBytes: avgBytes}
}

// writeRows streams rows produced by gen into a backend run and returns the
// stored table. Nothing is materialised: memory use is one tuple plus the
// writer's block buffer regardless of n.
func writeRows(backend storage.Backend, run string, name string, schema *relation.Schema, n int, gen func(i int) relation.Tuple) (*Table, error) {
	w, err := backend.Create(run)
	if err != nil {
		return nil, fmt.Errorf("dataset: create table run: %w", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(gen(i)); err != nil {
			_ = w.Close()
			_ = backend.Remove(run)
			return nil, fmt.Errorf("dataset: write table run: %w", err)
		}
	}
	bytes := w.Bytes()
	if err := w.Close(); err != nil {
		_ = backend.Remove(run)
		return nil, fmt.Errorf("dataset: seal table run: %w", err)
	}
	avg := 0
	if n > 0 {
		avg = int(bytes) / n
	}
	return NewStoredTable(name, schema, backend, run, n, avg), nil
}

// WriteProteinSequences generates protein_sequences straight into a backend
// run — the path for tables larger than memory. Deterministic in (n, seed)
// and tuple-for-tuple identical to ProteinSequences.
func WriteProteinSequences(backend storage.Backend, run string, n int, seed int64) (*Table, error) {
	gen := sequencesGen(seed)
	return writeRows(backend, run, "protein_sequences", sequencesSchema(), n, gen)
}

// WriteProteinInteractions generates protein_interactions straight into a
// backend run. Deterministic in (n, seqCount, seed) and tuple-for-tuple
// identical to ProteinInteractions.
func WriteProteinInteractions(backend storage.Backend, run string, n, seqCount int, seed int64) (*Table, error) {
	gen := interactionsGen(seqCount, seed)
	return writeRows(backend, run, "protein_interactions", interactionsSchema(), n, gen)
}

// WriteProteinInteractionsZipf generates Zipf-skewed protein_interactions
// straight into a backend run. Deterministic in (n, seqCount, s, seed) and
// tuple-for-tuple identical to ProteinInteractionsZipf.
func WriteProteinInteractionsZipf(backend storage.Backend, run string, n, seqCount int, s float64, seed int64) (*Table, error) {
	gen := interactionsZipfGen(seqCount, s, seed)
	return writeRows(backend, run, "protein_interactions", interactionsSchema(), n, gen)
}

// WriteSynthetic streams a synthetic table into a backend run — the
// multi-GB path: memory use is one tuple plus the writer's block buffer
// regardless of sp.Rows. Deterministic in the spec and tuple-for-tuple
// identical to Synthetic.
func WriteSynthetic(backend storage.Backend, run string, sp SyntheticSpec) (*Table, error) {
	sp = sp.withDefaults()
	return writeRows(backend, run, sp.Name, syntheticSchema(sp.Name), sp.Rows, syntheticGen(sp))
}

// DemoStored builds the demo database with both protein tables written as
// block-framed runs on the given backend instead of in-memory slices — the
// configuration for larger-than-memory scans. Runs are named
// "base/<table>", outside the "q<N>." query-tag namespace the per-query
// spill sweeps delete. Tuple-for-tuple identical to DemoSized at the same
// cardinalities.
func DemoStored(backend storage.Backend, sequences, interactions int) (*Store, error) {
	seqs, err := WriteProteinSequences(backend, "base/protein_sequences", sequences, 1)
	if err != nil {
		return nil, err
	}
	ints, err := WriteProteinInteractions(backend, "base/protein_interactions", interactions, sequences, 1)
	if err != nil {
		return nil, err
	}
	s := NewStore()
	s.Add(seqs)
	s.Add(ints)
	return s, nil
}
