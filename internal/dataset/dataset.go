// Package dataset provides the demo bioinformatics database used by the
// paper's evaluation: the protein_sequences and protein_interactions tables
// of the OGSA-DQP demo database. The originals are not distributable, so the
// generators here produce deterministic synthetic data with the same
// cardinalities (3000 sequences, 4700 interactions), fixed-width sequences
// (the paper pads all tuples to the same length "to facilitate result
// analysis"), and an ORF key domain that makes the Q2 join selective but
// productive.
//
// It also provides Store, the in-memory table store that plays the role the
// OGSA-DAI Grid Data Service wrappers play in the paper: the thing a scan
// operator reads from on a data node.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Default cardinalities from the paper (§3.2): Q1 retrieves 3000 sequence
// tuples; protein_interactions contains 4700 tuples.
const (
	DefaultSequences    = 3000
	DefaultInteractions = 4700
	// SequenceLength is the fixed width of every protein sequence, in
	// residues. All tuples have the same length, as in the paper.
	SequenceLength = 128
)

// aminoAcids is the 20-letter residue alphabet.
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// Table is an immutable named relation: either an in-memory tuple slice or
// a reference to a sealed storage run (see source.go). Streaming consumers
// use Rows(); only the in-memory fast paths touch Tuples directly.
type Table struct {
	Name   string
	Schema *relation.Schema
	// Tuples is the in-memory representation; nil for stored tables.
	Tuples []relation.Tuple

	// Stored-table fields (see NewStoredTable).
	backend  storage.Backend
	run      string
	card     int
	avgBytes int
}

// Cardinality returns the number of tuples.
func (t *Table) Cardinality() int {
	if t.backend != nil {
		return t.card
	}
	return len(t.Tuples)
}

// AvgTupleBytes returns the mean wire size of the table's tuples, used by
// the optimiser's cost model.
func (t *Table) AvgTupleBytes() int {
	if t.backend != nil {
		return t.avgBytes
	}
	if len(t.Tuples) == 0 {
		return 0
	}
	total := 0
	for _, tp := range t.Tuples {
		total += tp.ByteSize()
	}
	return total / len(t.Tuples)
}

// orfName formats the i-th open-reading-frame identifier.
func orfName(i int) string { return fmt.Sprintf("YAL%05dC", i) }

// sequencesSchema returns the protein_sequences schema.
func sequencesSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Table: "protein_sequences", Name: "ORF", Type: relation.TString},
		relation.Column{Table: "protein_sequences", Name: "sequence", Type: relation.TString},
	)
}

// interactionsSchema returns the protein_interactions schema.
func interactionsSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Table: "protein_interactions", Name: "ORF1", Type: relation.TString},
		relation.Column{Table: "protein_interactions", Name: "ORF2", Type: relation.TString},
	)
}

// sequencesGen returns the row generator behind ProteinSequences. Rows must
// be requested in index order (the RNG stream is sequential).
func sequencesGen(seed int64) func(i int) relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	return func(i int) relation.Tuple {
		b.Reset()
		b.Grow(SequenceLength)
		// Real protein sequences start with methionine.
		b.WriteByte('M')
		for j := 1; j < SequenceLength; j++ {
			b.WriteByte(aminoAcids[rng.Intn(len(aminoAcids))])
		}
		return relation.Tuple{
			relation.String(orfName(i)),
			relation.String(b.String()),
		}
	}
}

// interactionsGen returns the row generator behind ProteinInteractions.
func interactionsGen(seqCount int, seed int64) func(i int) relation.Tuple {
	rng := rand.New(rand.NewSource(seed + 1))
	return func(int) relation.Tuple {
		return relation.Tuple{
			relation.String(orfName(rng.Intn(seqCount))),
			relation.String(orfName(rng.Intn(seqCount))),
		}
	}
}

// materialize builds an in-memory table from a row generator.
func materialize(name string, schema *relation.Schema, n int, gen func(i int) relation.Tuple) *Table {
	tuples := make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		tuples[i] = gen(i)
	}
	return &Table{Name: name, Schema: schema, Tuples: tuples}
}

// ProteinSequences generates the protein_sequences table with n tuples:
// (ORF VARCHAR, sequence VARCHAR). Generation is deterministic in (n, seed).
func ProteinSequences(n int, seed int64) *Table {
	return materialize("protein_sequences", sequencesSchema(), n, sequencesGen(seed))
}

// ProteinInteractions generates the protein_interactions table with n tuples
// (ORF1 VARCHAR, ORF2 VARCHAR). ORF1 values are drawn from the first
// seqCount sequence ORFs so that the Q2 equi-join on i.ORF1 = p.ORF matches;
// ORF2 is an arbitrary partner. Deterministic in (n, seqCount, seed).
func ProteinInteractions(n, seqCount int, seed int64) *Table {
	return materialize("protein_interactions", interactionsSchema(), n, interactionsGen(seqCount, seed))
}

// interactionsZipfGen returns the row generator behind
// ProteinInteractionsZipf. Rows must be requested in index order.
func interactionsZipfGen(seqCount int, s float64, seed int64) func(i int) relation.Tuple {
	rng := rand.New(rand.NewSource(seed + 2))
	zipf := rand.NewZipf(rng, s, 1, uint64(seqCount-1))
	return func(int) relation.Tuple {
		return relation.Tuple{
			relation.String(orfName(int(zipf.Uint64()))),
			relation.String(orfName(rng.Intn(seqCount))),
		}
	}
}

// ProteinInteractionsZipf generates protein_interactions with a Zipf-skewed
// ORF1 distribution (exponent s > 1): a few hub proteins dominate the
// interaction list, as in real interaction networks. Skewed group sizes
// stress hash-partitioned aggregation and joins: the buckets holding hub
// keys carry far more state than the rest, so repartitioning them moves
// visibly more work. Deterministic in (n, seqCount, s, seed).
func ProteinInteractionsZipf(n, seqCount int, s float64, seed int64) *Table {
	return materialize("protein_interactions", interactionsSchema(), n, interactionsZipfGen(seqCount, s, seed))
}

// SyntheticSpec parameterises the generic synthetic generator: a (key, val,
// payload) table with a controllable key distribution — the knob set the
// grid performance-analysis literature tunes scan- and join-bound workloads
// with.
type SyntheticSpec struct {
	// Name is the table name ("synthetic" when empty).
	Name string
	// Rows is the cardinality.
	Rows int
	// KeyDomain is the number of distinct key values (defaults to Rows).
	KeyDomain int
	// ZipfS, when > 1, skews keys with a Zipf(s) distribution; otherwise
	// keys are drawn uniformly from the domain.
	ZipfS float64
	// PayloadBytes pads every row with a fixed-width random string
	// (defaults to 64), so table bytes scale independently of cardinality.
	PayloadBytes int
	// Seed makes generation deterministic in the whole spec.
	Seed int64
}

// syntheticSchema returns the schema for a SyntheticSpec table.
func syntheticSchema(name string) *relation.Schema {
	return relation.NewSchema(
		relation.Column{Table: name, Name: "key", Type: relation.TString},
		relation.Column{Table: name, Name: "val", Type: relation.TInt},
		relation.Column{Table: name, Name: "payload", Type: relation.TString},
	)
}

// withDefaults fills a SyntheticSpec's zero fields.
func (sp SyntheticSpec) withDefaults() SyntheticSpec {
	if sp.Name == "" {
		sp.Name = "synthetic"
	}
	if sp.KeyDomain <= 0 {
		sp.KeyDomain = sp.Rows
	}
	if sp.KeyDomain <= 0 {
		sp.KeyDomain = 1
	}
	if sp.PayloadBytes <= 0 {
		sp.PayloadBytes = 64
	}
	return sp
}

// syntheticGen returns the row generator for a (defaulted) SyntheticSpec.
// Rows must be requested in index order (the RNG stream is sequential).
func syntheticGen(sp SyntheticSpec) func(i int) relation.Tuple {
	rng := rand.New(rand.NewSource(sp.Seed))
	var zipf *rand.Zipf
	if sp.ZipfS > 1 && sp.KeyDomain > 1 {
		zipf = rand.NewZipf(rng, sp.ZipfS, 1, uint64(sp.KeyDomain-1))
	}
	payload := make([]byte, sp.PayloadBytes)
	return func(i int) relation.Tuple {
		k := 0
		if zipf != nil {
			k = int(zipf.Uint64())
		} else if sp.KeyDomain > 0 {
			k = rng.Intn(sp.KeyDomain)
		}
		for j := range payload {
			payload[j] = aminoAcids[rng.Intn(len(aminoAcids))]
		}
		return relation.Tuple{
			relation.String(fmt.Sprintf("k%08d", k)),
			relation.Int(int64(i)),
			relation.String(string(payload)),
		}
	}
}

// Synthetic materialises a synthetic table in memory. Deterministic in the
// spec. Use WriteSynthetic for tables that should not fit in memory.
func Synthetic(sp SyntheticSpec) *Table {
	sp = sp.withDefaults()
	return materialize(sp.Name, syntheticSchema(sp.Name), sp.Rows, syntheticGen(sp))
}

// Demo builds the standard demo database at the paper's cardinalities.
func Demo() *Store { return DemoSized(DefaultSequences, DefaultInteractions) }

// DemoSized builds the demo database with custom cardinalities; the paper's
// "varying the dataset size" experiment doubles the Q1 input to 6000.
func DemoSized(sequences, interactions int) *Store {
	s := NewStore()
	s.Add(ProteinSequences(sequences, 1))
	s.Add(ProteinInteractions(interactions, sequences, 1))
	return s
}

// Store is a named collection of tables: the data a Grid Data Service
// exposes on one data node. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Add registers a table, replacing any previous table with the same name.
func (s *Store) Add(t *Table) {
	s.mu.Lock()
	s.tables[strings.ToLower(t.Name)] = t
	s.mu.Unlock()
}

// Table returns the named table (case-insensitive) or an error.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("dataset: no table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
