package dataset

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// drainTable reads a table through its cursor.
func drainTable(t *testing.T, tbl *Table) []relation.Tuple {
	t.Helper()
	cur, err := tbl.Rows()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var out []relation.Tuple
	for {
		tp, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, tp)
	}
}

func TestStoredTablesMatchInMemoryGenerators(t *testing.T) {
	backend := storage.NewMemory()
	defer backend.Close()

	memSeqs := ProteinSequences(200, 7)
	stored, err := WriteProteinSequences(backend, "tables/seqs", 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !stored.Stored() || memSeqs.Stored() {
		t.Fatal("Stored() misreports representation")
	}
	if stored.Cardinality() != memSeqs.Cardinality() {
		t.Fatalf("cardinality %d != %d", stored.Cardinality(), memSeqs.Cardinality())
	}
	got := drainTable(t, stored)
	for i := range memSeqs.Tuples {
		if !memSeqs.Tuples[i].Equal(got[i]) {
			t.Fatalf("sequence %d diverged: %v vs %v", i, memSeqs.Tuples[i].Format(), got[i].Format())
		}
	}

	memInts := ProteinInteractions(300, 200, 7)
	storedInts, err := WriteProteinInteractions(backend, "tables/ints", 300, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotInts := drainTable(t, storedInts)
	if len(gotInts) != 300 {
		t.Fatalf("read %d interactions", len(gotInts))
	}
	for i := range memInts.Tuples {
		if !memInts.Tuples[i].Equal(gotInts[i]) {
			t.Fatalf("interaction %d diverged", i)
		}
	}
	if storedInts.AvgTupleBytes() == 0 {
		t.Fatal("stored table lost its byte statistics")
	}
}

func TestStoredTableOnPosixBackend(t *testing.T) {
	backend, err := storage.NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	stored, err := WriteProteinSequences(backend, "seqs", 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	mem := ProteinSequences(50, 3)
	got := drainTable(t, stored)
	for i := range mem.Tuples {
		if !mem.Tuples[i].Equal(got[i]) {
			t.Fatalf("tuple %d diverged on posix", i)
		}
	}
	// A second independent cursor re-reads from the start.
	again := drainTable(t, stored)
	if len(again) != 50 {
		t.Fatalf("second cursor read %d tuples", len(again))
	}
}

func TestSliceCursorMatchesTuples(t *testing.T) {
	tbl := ProteinSequences(10, 1)
	got := drainTable(t, tbl)
	if len(got) != len(tbl.Tuples) {
		t.Fatalf("cursor read %d of %d", len(got), len(tbl.Tuples))
	}
}
