package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Posix is the filesystem Backend: each run is one file under a spill
// directory, written through a buffered writer and read back with a
// buffered reader. Run names are escaped into flat file names (the '/'
// hierarchy separator becomes part of the escaped name), so prefix cleanup
// stays a directory scan.
type Posix struct {
	dir string

	mu     sync.Mutex
	closed bool
	open   map[string]bool // runs currently open for writing
}

// NewPosix returns a backend storing runs under dir, creating it if needed.
func NewPosix(dir string) (*Posix, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: spill dir: %w", err)
	}
	return &Posix{dir: dir, open: make(map[string]bool)}, nil
}

// Name implements Backend.
func (p *Posix) Name() string { return "posix:" + p.dir }

// Dir returns the spill directory.
func (p *Posix) Dir() string { return p.dir }

// escapeRun maps a run name to a flat file name: every byte outside
// [A-Za-z0-9.-] is rewritten as %XX, so distinct names stay distinct and
// escaping preserves prefix relationships ('/' always escapes the same way).
func escapeRun(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	return b.String() + ".run"
}

// unescapeRun inverts escapeRun.
func unescapeRun(file string) (string, bool) {
	name, ok := strings.CutSuffix(file, ".run")
	if !ok {
		return "", false
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		if name[i] != '%' {
			b.WriteByte(name[i])
			continue
		}
		if i+2 >= len(name) {
			return "", false
		}
		var c byte
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02x", &c); err != nil {
			return "", false
		}
		b.WriteByte(c)
		i += 2
	}
	return b.String(), true
}

func (p *Posix) path(name string) string {
	return filepath.Join(p.dir, escapeRun(name))
}

// Create implements Backend.
func (p *Posix) Create(name string) (RunWriter, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("storage: posix backend closed")
	}
	p.open[name] = true
	p.mu.Unlock()
	f, err := os.OpenFile(p.path(name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		p.mu.Lock()
		delete(p.open, name)
		p.mu.Unlock()
		return nil, fmt.Errorf("storage: create run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 128<<10)
	sink := func(block []byte) error {
		_, err := bw.Write(block)
		return err
	}
	seal := func() error {
		p.mu.Lock()
		delete(p.open, name)
		p.mu.Unlock()
		if err := bw.Flush(); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	return newBlockWriter(sink, seal), nil
}

// Open implements Backend.
func (p *Posix) Open(name string) (RunReader, error) {
	p.mu.Lock()
	writing := p.open[name]
	p.mu.Unlock()
	if writing {
		return nil, fmt.Errorf("storage: run %q is not sealed", name)
	}
	f, err := os.Open(p.path(name))
	if err != nil {
		return nil, fmt.Errorf("storage: open run: %w", err)
	}
	br := bufio.NewReaderSize(f, 128<<10)
	var hdr [4]byte
	var block []byte
	fill := func() ([]byte, error) {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil, nil
			}
			return nil, corruptRun(name, "block header: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if cap(block) < int(n) {
			block = make([]byte, n)
		}
		block = block[:n]
		if _, err := io.ReadFull(br, block); err != nil {
			return nil, corruptRun(name, "block body: %w", err)
		}
		return block, nil
	}
	return newBlockReader(fill, f.Close), nil
}

// OpenBlocks implements BlockBackend. One sequential header scan validates
// the frame chain and builds the offset index; ReadBlock then serves any
// block via ReadAt, which is safe for concurrent calls on the shared file
// handle — morsel workers share one reader.
func (p *Posix) OpenBlocks(name string) (BlockReader, error) {
	p.mu.Lock()
	writing := p.open[name]
	p.mu.Unlock()
	if writing {
		return nil, fmt.Errorf("storage: run %q is not sealed", name)
	}
	f, err := os.Open(p.path(name))
	if err != nil {
		return nil, fmt.Errorf("storage: open run: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: stat run: %w", err)
	}
	size := st.Size()
	var offs []int64
	var sizes []int
	var hdr [4]byte
	for off := int64(0); off < size; {
		if size-off < 4 {
			_ = f.Close()
			return nil, corruptRun(name, "truncated block header")
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			_ = f.Close()
			return nil, corruptRun(name, "block header: %w", err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n > size-off-4 {
			_ = f.Close()
			return nil, corruptRun(name, "bad block length %d", n)
		}
		offs = append(offs, off+4)
		sizes = append(sizes, int(n))
		off += 4 + n
	}
	return &posixBlockReader{name: name, f: f, offs: offs, sizes: sizes}, nil
}

// posixBlockReader serves block payloads of one sealed run file via ReadAt.
// The index is immutable after construction; Close is idempotent and
// guarded, so concurrent readers racing a teardown see either a served read
// or a typed error, never a double-close.
type posixBlockReader struct {
	name  string
	f     *os.File
	offs  []int64
	sizes []int

	mu     sync.Mutex
	closed bool
}

// Blocks implements BlockReader.
func (r *posixBlockReader) Blocks() int { return len(r.offs) }

// BlockSize implements BlockReader.
func (r *posixBlockReader) BlockSize(i int) int {
	if i < 0 || i >= len(r.sizes) {
		return 0
	}
	return r.sizes[i]
}

// ReadBlock implements BlockReader.
func (r *posixBlockReader) ReadBlock(i int, buf []byte) ([]byte, error) {
	if i < 0 || i >= len(r.offs) {
		return nil, corruptRun(r.name, "block %d out of range [0,%d)", i, len(r.offs))
	}
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("storage: run %q: read after close", r.name)
	}
	n := r.sizes[i]
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := r.f.ReadAt(buf, r.offs[i]); err != nil {
		return nil, corruptRun(r.name, "block body: %w", err)
	}
	return buf, nil
}

// Close implements BlockReader; idempotent.
func (r *posixBlockReader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.f.Close()
}

// Remove implements Backend.
func (p *Posix) Remove(name string) error {
	err := os.Remove(p.path(name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: remove run: %w", err)
	}
	return nil
}

// RemoveMatching implements Backend.
func (p *Posix) RemoveMatching(prefix string) (int, error) {
	names, err := p.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, name := range listMatching(names, prefix) {
		if err := p.Remove(name); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// List implements Backend.
func (p *Posix) List() ([]string, error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list runs: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if name, ok := unescapeRun(e.Name()); ok {
			names = append(names, name)
		}
	}
	return listMatching(names, ""), nil
}

// Close implements Backend: it removes every run file (the directory itself
// is left in place — it may be shared or user-provided).
func (p *Posix) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	_, err := p.RemoveMatching("")
	return err
}
