package storage

import (
	"fmt"
	"sync"
)

// Memory is the in-process Backend: runs are byte slices in a map. It is
// the default spill target — demos, tests and the simulated cluster spill
// "to storage" without touching the filesystem, while exercising exactly
// the same framing and codec as the posix backend.
type Memory struct {
	mu   sync.Mutex
	runs map[string]*memRun
}

type memRun struct {
	data   []byte
	sealed bool
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{runs: make(map[string]*memRun)}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Create implements Backend.
func (m *Memory) Create(name string) (RunWriter, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.runs == nil {
		return nil, fmt.Errorf("storage: memory backend closed")
	}
	if _, ok := m.runs[name]; ok {
		return nil, fmt.Errorf("storage: run %q already exists", name)
	}
	run := &memRun{}
	m.runs[name] = run
	sink := func(block []byte) error {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.runs == nil || m.runs[name] != run {
			return fmt.Errorf("storage: run %q removed while writing", name)
		}
		run.data = append(run.data, block...)
		return nil
	}
	seal := func() error {
		m.mu.Lock()
		defer m.mu.Unlock()
		run.sealed = true
		return nil
	}
	return newBlockWriter(sink, seal), nil
}

// Open implements Backend.
func (m *Memory) Open(name string) (RunReader, error) {
	m.mu.Lock()
	run, ok := m.runs[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: no run %q", name)
	}
	if !run.sealed {
		return nil, fmt.Errorf("storage: run %q is not sealed", name)
	}
	data := run.data
	return newBlockReader(func() ([]byte, error) {
		if len(data) == 0 {
			return nil, nil
		}
		if len(data) < 4 {
			return nil, corruptRun(name, "truncated block header")
		}
		n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
		if n < 0 || n > len(data)-4 {
			return nil, corruptRun(name, "bad block length %d", n)
		}
		block := data[4 : 4+n]
		data = data[4+n:]
		return block, nil
	}, nil), nil
}

// OpenBlocks implements BlockBackend. The sealed slice is immutable, so the
// reader indexes every frame once up front and serves ReadBlock as zero-copy
// interior slices; concurrent reads need no locking.
func (m *Memory) OpenBlocks(name string) (BlockReader, error) {
	m.mu.Lock()
	run, ok := m.runs[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: no run %q", name)
	}
	if !run.sealed {
		return nil, fmt.Errorf("storage: run %q is not sealed", name)
	}
	data := run.data
	var offs []int
	for off := 0; off < len(data); {
		if len(data)-off < 4 {
			return nil, corruptRun(name, "truncated block header")
		}
		n := int(data[off]) | int(data[off+1])<<8 | int(data[off+2])<<16 | int(data[off+3])<<24
		if n < 0 || n > len(data)-off-4 {
			return nil, corruptRun(name, "bad block length %d", n)
		}
		offs = append(offs, off+4)
		off += 4 + n
	}
	return &memBlockReader{name: name, data: data, offs: offs}, nil
}

// memBlockReader serves block payloads as read-only slices of one sealed
// in-memory run. All state is immutable after construction, so every method
// is trivially safe for concurrent use and Close is a no-op.
type memBlockReader struct {
	name string
	data []byte
	offs []int // payload start of each block; size derives from the frame
}

// Blocks implements BlockReader.
func (r *memBlockReader) Blocks() int { return len(r.offs) }

// BlockSize implements BlockReader.
func (r *memBlockReader) BlockSize(i int) int {
	if i < 0 || i >= len(r.offs) {
		return 0
	}
	end := len(r.data)
	if i+1 < len(r.offs) {
		end = r.offs[i+1] - 4
	}
	return end - r.offs[i]
}

// ReadBlock implements BlockReader; buf is ignored because the payload is
// already resident.
func (r *memBlockReader) ReadBlock(i int, _ []byte) ([]byte, error) {
	if i < 0 || i >= len(r.offs) {
		return nil, corruptRun(r.name, "block %d out of range [0,%d)", i, len(r.offs))
	}
	return r.data[r.offs[i] : r.offs[i]+r.BlockSize(i)], nil
}

// Close implements BlockReader.
func (r *memBlockReader) Close() error { return nil }

// Remove implements Backend.
func (m *Memory) Remove(name string) error {
	m.mu.Lock()
	delete(m.runs, name)
	m.mu.Unlock()
	return nil
}

// RemoveMatching implements Backend.
func (m *Memory) RemoveMatching(prefix string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for name := range m.runs {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			delete(m.runs, name)
			n++
		}
	}
	return n, nil
}

// List implements Backend.
func (m *Memory) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.runs))
	for n := range m.runs {
		names = append(names, n)
	}
	return listMatching(names, ""), nil
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.runs = nil
	m.mu.Unlock()
	return nil
}
