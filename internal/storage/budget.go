package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// budgetStripes is the number of independent reservation stripes. Eight
// matches the widest morsel pool the benchmarks exercise; worker w maps to
// stripe w % budgetStripes.
const budgetStripes = 8

// stripeChunkMax caps the credit a stripe draws from the shared pool in one
// refill, bounding the accountant's slack (early-Over margin) at
// budgetStripes * stripeChunkMax bytes regardless of the limit.
const stripeChunkMax = 8 << 10

// stripe is one padded reservation lane. used is the stripe's exact signed
// byte balance (it may go negative when a worker releases bytes another
// worker reserved — only the cross-stripe sum is meaningful). credit is the
// prepaid allowance drawn from the shared pool that reserves consume before
// touching shared state again.
type stripe struct {
	used   atomic.Int64
	credit atomic.Int64
	_      [48]byte // pad to a cache line so stripes don't false-share
}

// Budget is the per-query memory accountant: stateful operators reserve
// bytes as they buffer tuples and release them when state is spilled,
// drained or freed. A breach (Over) does not block — it is the signal for
// the operator to grace-hash-spill a partition or flush a sort run.
//
// The accountant is striped for morsel-parallel fragments: each worker
// reserves through its own stripe (see Acct), paying for reservations out
// of a prepaid per-stripe credit drawn from a shared pool in chunks. The
// hot path (Reserve within credit, Over) therefore touches only
// stripe-local or read-mostly cache lines; the shared pool is written once
// per chunk, not once per reservation. The cost is a bounded early-trigger
// slack: Over may report true up to budgetStripes*chunk bytes before the
// exact inflight sum crosses the limit — a conservative error, the operator
// just spills slightly sooner.
//
// Releases are the cold path (they accompany a spill or a drain) and are
// serialized so the total can be clamped at zero: releasing bytes that were
// never reserved (an operator error path after a failed spill) counts
// mem_overrelease_total instead of driving the accountant — and the
// mem_inflight_bytes gauge — negative.
//
// All methods are safe on a nil *Budget (unbudgeted execution) and for
// concurrent use.
type Budget struct {
	limit   int64
	pool    atomic.Int64 // limit minus outstanding credit; negative => Over
	chunk   int64        // credit refill granularity
	relMu   sync.Mutex   // serializes releases for exact clamping
	stripes [budgetStripes]stripe
	gauge   *obs.Gauge
	overrel *obs.Counter
}

// NewBudget returns an accountant enforcing the given byte limit
// (non-positive limits never report Over). Inflight bytes are mirrored to
// the mem_inflight_bytes gauge; clamped over-releases count
// mem_overrelease_total.
func NewBudget(limit int64) *Budget {
	b := &Budget{
		limit:   limit,
		gauge:   obs.Default().Gauge(obs.MMemInflight),
		overrel: obs.Default().Counter(obs.MMemOverrelease),
	}
	if limit > 0 {
		b.chunk = limit / (8 * budgetStripes)
		if b.chunk < 1 {
			b.chunk = 1
		}
		if b.chunk > stripeChunkMax {
			b.chunk = stripeChunkMax
		}
		b.pool.Store(limit)
	}
	return b
}

// Reserve accounts n bytes of operator state on stripe 0. Negative n is
// accepted for compatibility and routed through Release.
func (b *Budget) Reserve(n int64) { b.reserve(0, n) }

// Release returns n previously reserved bytes through stripe 0. The total
// is clamped at zero: bytes released beyond what is currently reserved are
// dropped and counted in mem_overrelease_total.
func (b *Budget) Release(n int64) { b.release(0, n) }

func (b *Budget) reserve(i int, n int64) {
	if b == nil || n == 0 {
		return
	}
	if n < 0 {
		b.release(i, -n)
		return
	}
	// Gauge before stripe: a concurrent release clamps against the stripe
	// sum, so every gauge decrement is covered by an already-applied
	// increment and mem_inflight_bytes can never go negative.
	b.gauge.Add(n)
	s := &b.stripes[i]
	s.used.Add(n)
	if b.limit <= 0 {
		return
	}
	if c := s.credit.Add(-n); c < 0 {
		draw := ((-c + b.chunk - 1) / b.chunk) * b.chunk
		b.pool.Add(-draw)
		s.credit.Add(draw)
	}
}

func (b *Budget) release(i int, n int64) {
	if b == nil || n == 0 {
		return
	}
	if n < 0 {
		b.reserve(i, -n)
		return
	}
	b.relMu.Lock()
	rel := n
	total := b.totalLocked()
	if rel > total {
		rel = total
		if rel < 0 {
			rel = 0
		}
		b.overrel.Inc()
	}
	if rel > 0 {
		b.stripes[i].used.Add(-rel)
		b.gauge.Add(-rel)
		if b.limit > 0 {
			b.pool.Add(rel)
		}
	}
	b.relMu.Unlock()
}

// Over reports whether reserved state exceeds the limit. It is a single
// atomic load of the shared credit pool, which is written only once per
// credit chunk — cheap enough for per-tuple checks at worker-pool width.
// It may trigger up to budgetStripes*chunk bytes early (never late).
func (b *Budget) Over() bool {
	return b != nil && b.limit > 0 && b.pool.Load() < 0
}

// Limit returns the configured byte limit (0 when unbudgeted).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Inflight returns the currently reserved bytes, exact across all stripes.
// It serializes against releases so the cross-stripe sum is never observed
// mid-release (which could transiently read negative); concurrent reserves
// only add, so the result is always >= 0.
func (b *Budget) Inflight() int64 {
	if b == nil {
		return 0
	}
	b.relMu.Lock()
	total := b.totalLocked()
	b.relMu.Unlock()
	return total
}

// totalLocked sums the stripe balances; the caller holds relMu.
func (b *Budget) totalLocked() int64 {
	total := int64(0)
	for k := range b.stripes {
		total += b.stripes[k].used.Load()
	}
	return total
}

// Acct returns a reservation handle bound to the stripe for worker w, so
// morsel-parallel clones account through disjoint cache lines. Any number
// of handles (and the Budget's own stripe-0 methods) may be used
// concurrently; Inflight and the gauge stay exact. Safe on a nil Budget
// (returns a nil handle, which is inert).
func (b *Budget) Acct(w int) *BudgetAcct {
	if b == nil {
		return nil
	}
	if w < 0 {
		w = -w
	}
	return &BudgetAcct{b: b, i: w % budgetStripes}
}

// BudgetAcct is a per-worker view of a Budget bound to one stripe. All
// methods are safe on a nil *BudgetAcct (unbudgeted execution).
type BudgetAcct struct {
	b *Budget
	i int
}

// Reserve accounts n bytes on this handle's stripe.
func (a *BudgetAcct) Reserve(n int64) {
	if a == nil {
		return
	}
	a.b.reserve(a.i, n)
}

// Release returns n previously reserved bytes through this handle's stripe,
// clamped at zero like Budget.Release.
func (a *BudgetAcct) Release(n int64) {
	if a == nil {
		return
	}
	a.b.release(a.i, n)
}

// Over reports whether the underlying budget is over its limit.
func (a *BudgetAcct) Over() bool {
	return a != nil && a.b.Over()
}

// Budget returns the underlying shared accountant (nil on a nil handle).
func (a *BudgetAcct) Budget() *Budget {
	if a == nil {
		return nil
	}
	return a.b
}
