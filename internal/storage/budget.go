package storage

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Budget is the per-query memory accountant: stateful operators reserve
// bytes as they buffer tuples and release them when state is spilled,
// drained or freed. A breach (Over) does not block — it is the signal for
// the operator to grace-hash-spill a partition or flush a sort run. All
// methods are safe on a nil *Budget (unbudgeted execution) and for
// concurrent use.
type Budget struct {
	limit    int64
	inflight atomic.Int64
	gauge    *obs.Gauge
}

// NewBudget returns an accountant enforcing the given byte limit
// (non-positive limits never report Over). Inflight bytes are mirrored to
// the mem_inflight_bytes gauge.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit, gauge: obs.Default().Gauge(obs.MMemInflight)}
}

// Reserve accounts n bytes of operator state.
func (b *Budget) Reserve(n int64) {
	if b == nil || n == 0 {
		return
	}
	b.inflight.Add(n)
	b.gauge.Add(n)
}

// Release returns n previously reserved bytes.
func (b *Budget) Release(n int64) { b.Reserve(-n) }

// Over reports whether reserved state exceeds the limit.
func (b *Budget) Over() bool {
	return b != nil && b.limit > 0 && b.inflight.Load() > b.limit
}

// Limit returns the configured byte limit (0 when unbudgeted).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Inflight returns the currently reserved bytes.
func (b *Budget) Inflight() int64 {
	if b == nil {
		return 0
	}
	return b.inflight.Load()
}
