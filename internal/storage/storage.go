// Package storage is the temporary-run layer under memory-governed
// execution: a pluggable Backend hands out append-only runs of encoded
// tuples that spilling operators (grace-hash join and aggregate partitions,
// external-sort runs) write sequentially and read back sequentially. Runs
// reuse the hardened wire tuple codec, framed in length-prefixed blocks, so
// a spilled partition round-trips byte-exactly through the same code path
// the transport already fuzzes.
//
// The package also provides Budget, the per-query memory accountant the
// engine threads through ExecContext: operators reserve bytes as they buffer
// state and spill partitions to a Backend when the budget is breached.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qerr"
	"repro/internal/relation"
)

// RunWriter appends tuples to one named run. Writers are single-goroutine
// objects; Close seals the run for reading.
type RunWriter interface {
	// Append encodes and buffers one tuple.
	Append(t relation.Tuple) error
	// AppendAll appends a batch of tuples.
	AppendAll(ts []relation.Tuple) error
	// Tuples reports how many tuples have been appended.
	Tuples() int64
	// Bytes reports the encoded size written (including buffered bytes).
	Bytes() int64
	// Close flushes buffered blocks and seals the run.
	Close() error
}

// RunReader streams a sealed run back in append order. Readers are
// single-goroutine objects.
type RunReader interface {
	// Next returns the next tuple; ok is false at end of run.
	Next() (t relation.Tuple, ok bool, err error)
	// Close releases the reader (the run itself stays until removed).
	Close() error
}

// Backend creates, opens and removes named temporary runs. Implementations
// are safe for concurrent use by multiple queries; individual writers and
// readers are not. Run names use '/' as a hierarchy separator
// ("q7.f1-i0/join-p5-build"), which is what prefix cleanup keys on.
type Backend interface {
	// Name identifies the backend configuration ("memory", "posix:<dir>");
	// it participates in the plan-cache epoch so switching storage
	// invalidates cached plans.
	Name() string
	// Create makes a new empty run, failing if the name already exists.
	Create(name string) (RunWriter, error)
	// Open returns a reader over a sealed run.
	Open(name string) (RunReader, error)
	// Remove deletes a run (idempotent: removing an absent run is not an
	// error).
	Remove(name string) error
	// RemoveMatching deletes every run whose name starts with prefix and
	// reports how many were removed — the per-query cleanup safety net.
	RemoveMatching(prefix string) (int, error)
	// List returns the sorted names of all existing runs.
	List() ([]string, error)
	// Close releases the backend and everything in it.
	Close() error
}

// BlockReader gives random access to the sealed, length-prefixed blocks of
// one run — the batch-at-a-time stored-scan path. Unlike RunReader, a
// BlockReader is safe for concurrent ReadBlock calls from multiple
// goroutines (morsel workers share one reader over disjoint block ranges),
// and Close is idempotent.
type BlockReader interface {
	// Blocks reports how many framed blocks the run holds.
	Blocks() int
	// BlockSize reports the payload size in bytes of block i — known before
	// the read, so readahead can reserve the bytes against a Budget first.
	BlockSize(i int) int
	// ReadBlock returns the payload of block i (length prefix stripped).
	// buf is reused when it has the capacity; the returned slice is only
	// valid until the next ReadBlock with the same buf.
	ReadBlock(i int, buf []byte) ([]byte, error)
	// Close releases the reader; safe to call more than once, including
	// while ReadBlock calls are still completing on other goroutines'
	// already-opened handles.
	Close() error
}

// BlockBackend is implemented by backends whose sealed runs additionally
// support random block-granular access. The engine type-asserts a stored
// table's backend against it to choose the batched scan path, falling back
// to the sequential RunReader cursor otherwise.
type BlockBackend interface {
	Backend
	// OpenBlocks returns a block-granular reader over a sealed run. The
	// whole frame chain is validated up front, so a truncated or corrupt
	// run fails here with a typed storage error rather than mid-scan.
	OpenBlocks(name string) (BlockReader, error)
}

// corruptRun classifies a damaged block frame as a typed storage error so
// callers can branch on qerr.KindStorage instead of string-matching raw io
// errors.
func corruptRun(name, format string, args ...any) error {
	return qerr.Storage("run "+name, fmt.Errorf(format, args...))
}

// blockTarget is the run writers' flush threshold: buffered tuples are
// encoded into one length-prefixed block once their encoded size passes it.
const blockTarget = 64 << 10

// blockWriter implements the shared run-writer framing over a byte sink:
// each flush emits one block of the form len:uint32le ++ AppendTuples(batch).
type blockWriter struct {
	sink   func(block []byte) error
	seal   func() error
	batch  []relation.Tuple
	pend   int // encoded size of the buffered batch
	tuples int64
	bytes  int64
	closed bool
}

func newBlockWriter(sink func([]byte) error, seal func() error) *blockWriter {
	return &blockWriter{sink: sink, seal: seal}
}

// Append implements RunWriter.
func (w *blockWriter) Append(t relation.Tuple) error {
	if w.closed {
		return fmt.Errorf("storage: append to closed run")
	}
	w.batch = append(w.batch, t)
	w.pend += t.ByteSize()
	w.tuples++
	if w.pend >= blockTarget {
		return w.flush()
	}
	return nil
}

// AppendAll implements RunWriter.
func (w *blockWriter) AppendAll(ts []relation.Tuple) error {
	for _, t := range ts {
		if err := w.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// Tuples implements RunWriter.
func (w *blockWriter) Tuples() int64 { return w.tuples }

// Bytes implements RunWriter.
func (w *blockWriter) Bytes() int64 { return w.bytes + int64(w.pend) }

func (w *blockWriter) flush() error {
	if len(w.batch) == 0 {
		return nil
	}
	buf := relation.GetEncodeBuffer()
	buf = append(buf, 0, 0, 0, 0) // block length, patched below
	buf = relation.AppendTuples(buf, w.batch)
	n := len(buf) - 4
	buf[0], buf[1], buf[2], buf[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	err := w.sink(buf)
	relation.PutEncodeBuffer(buf)
	w.bytes += int64(w.pend)
	w.batch = w.batch[:0]
	w.pend = 0
	return err
}

// Close implements RunWriter.
func (w *blockWriter) Close() error {
	if w.closed {
		return nil
	}
	if err := w.flush(); err != nil {
		w.closed = true
		if w.seal != nil {
			_ = w.seal()
		}
		return err
	}
	w.closed = true
	if w.seal != nil {
		return w.seal()
	}
	return nil
}

// blockReader implements the shared run-reader framing: fill hands it the
// next whole block, and Next decodes tuples out of it one at a time.
type blockReader struct {
	fill   func() ([]byte, error) // next block payload; nil at end of run
	done   func() error
	rest   []byte // undecoded remainder of the current block
	left   uint64 // tuples remaining in the current block
	arena  relation.Arena
	closed bool
}

func newBlockReader(fill func() ([]byte, error), done func() error) *blockReader {
	return &blockReader{fill: fill, done: done}
}

// Next implements RunReader.
func (r *blockReader) Next() (relation.Tuple, bool, error) {
	for r.left == 0 {
		block, err := r.fill()
		if err != nil {
			return nil, false, err
		}
		if block == nil {
			return nil, false, nil
		}
		n, rest, err := relation.TupleCount(block)
		if err != nil {
			return nil, false, qerr.Storage("run block", err)
		}
		r.left, r.rest = n, rest
	}
	t, rest, err := relation.DecodeTupleInto(&r.arena, r.rest)
	if err != nil {
		return nil, false, qerr.Storage("run tuple", err)
	}
	r.rest = rest
	r.left--
	return t, true, nil
}

// Close implements RunReader. It is idempotent: closing a reader that was
// already closed mid-scan is a no-op, so teardown paths that race a scan's
// own cleanup never double-release the underlying handle.
func (r *blockReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.rest, r.left = nil, 0
	if r.done != nil {
		return r.done()
	}
	return nil
}

// listMatching filters sorted names by prefix (shared by both backends).
func listMatching(names []string, prefix string) []string {
	out := names[:0:0]
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
