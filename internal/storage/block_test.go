package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"repro/internal/qerr"
	"repro/internal/relation"
)

// blockBackends returns one fresh instance of every BlockBackend
// implementation.
func blockBackends(t *testing.T) map[string]BlockBackend {
	t.Helper()
	posix, err := NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]BlockBackend{"memory": NewMemory(), "posix": posix}
}

// writeRun writes and seals tuples as the named run.
func writeRun(t *testing.T, b Backend, name string, tuples []relation.Tuple) {
	t.Helper()
	w, err := b.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAll(tuples); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// decodeBlocks reads every block of r in order and decodes the tuples.
func decodeBlocks(t *testing.T, r BlockReader) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	var buf []byte
	for i := 0; i < r.Blocks(); i++ {
		block, err := r.ReadBlock(i, buf)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if len(block) != r.BlockSize(i) {
			t.Fatalf("block %d: %d bytes, BlockSize says %d", i, len(block), r.BlockSize(i))
		}
		n, rest, err := relation.TupleCount(block)
		if err != nil {
			t.Fatalf("block %d count: %v", i, err)
		}
		for ; n > 0; n-- {
			tp, tail, err := relation.DecodeTuple(rest)
			if err != nil {
				t.Fatalf("block %d tuple: %v", i, err)
			}
			out = append(out, tp)
			rest = tail
		}
		buf = block
	}
	return out
}

func TestBlockReaderMatchesCursor(t *testing.T) {
	for name, b := range blockBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			want := testTuples(5000) // several blocks at the 64KiB target
			writeRun(t, b, "tbl", want)
			r, err := b.OpenBlocks("tbl")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Blocks() < 2 {
				t.Fatalf("expected a multi-block run, got %d blocks", r.Blocks())
			}
			got := decodeBlocks(t, r)
			if len(got) != len(want) {
				t.Fatalf("decoded %d of %d tuples", len(got), len(want))
			}
			for i := range want {
				if !tuplesIdentical(want[i], got[i]) {
					t.Fatalf("tuple %d diverged", i)
				}
			}
		})
	}
}

func TestBlockReaderCloseIdempotent(t *testing.T) {
	for name, b := range blockBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			writeRun(t, b, "tbl", testTuples(10))
			r, err := b.OpenBlocks("tbl")
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("second Close must be a no-op: %v", err)
			}
			// The cursor reader's Close must be idempotent too.
			cur, err := b.Open("tbl")
			if err != nil {
				t.Fatal(err)
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			if err := cur.Close(); err != nil {
				t.Fatalf("second cursor Close must be a no-op: %v", err)
			}
		})
	}
}

func TestBlockReaderUnsealedAndMissing(t *testing.T) {
	for name, b := range blockBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			if _, err := b.OpenBlocks("absent"); err == nil {
				t.Fatal("OpenBlocks of a missing run must fail")
			}
			w, err := b.Create("writing")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.OpenBlocks("writing"); err == nil {
				t.Fatal("OpenBlocks before seal must fail")
			}
			_ = w.Close()
		})
	}
}

// corruptors mutate a sealed run's raw bytes in ways the readers must reject
// with a typed storage error, not a panic or a silent short read.
var corruptors = []struct {
	name string
	mut  func(data []byte) []byte
}{
	{"truncated-header", func(data []byte) []byte { return data[:len(data)-1] }},
	{"truncated-body", func(data []byte) []byte {
		// Keep the first frame's header but cut its body short.
		return data[:4+2]
	}},
	{"oversized-length", func(data []byte) []byte {
		binary.LittleEndian.PutUint32(data[:4], uint32(len(data)))
		return data
	}},
}

// corruptMemory rewrites a sealed memory run in place.
func corruptMemory(t *testing.T, m *Memory, name string, mut func([]byte) []byte) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	run := m.runs[name]
	if run == nil || !run.sealed {
		t.Fatalf("run %q not sealed", name)
	}
	run.data = mut(bytes.Clone(run.data))
}

// corruptPosix rewrites a sealed posix run file.
func corruptPosix(t *testing.T, p *Posix, name string, mut func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(p.path(name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p.path(name), mut(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// wantStorageErr asserts err is a typed qerr storage failure.
func wantStorageErr(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("corrupt run must surface an error")
	}
	var qe *qerr.Error
	if !errors.As(err, &qe) || qe.Kind != qerr.KindStorage {
		t.Fatalf("want qerr.KindStorage, got %T: %v", err, err)
	}
}

func TestCorruptRunTypedErrors(t *testing.T) {
	for _, c := range corruptors {
		t.Run(c.name, func(t *testing.T) {
			for backend, b := range blockBackends(t) {
				t.Run(backend, func(t *testing.T) {
					defer b.Close()
					writeRun(t, b, "tbl", testTuples(500))
					switch impl := b.(type) {
					case *Memory:
						corruptMemory(t, impl, "tbl", c.mut)
					case *Posix:
						corruptPosix(t, impl, "tbl", c.mut)
					}
					// The cursor reader hits the damage lazily on Next.
					cur, err := b.Open("tbl")
					if err != nil {
						t.Fatal(err)
					}
					for err == nil {
						var ok bool
						_, ok, err = cur.Next()
						if !ok && err == nil {
							t.Fatal("cursor read a corrupt run to completion")
						}
					}
					wantStorageErr(t, err)
					_ = cur.Close()
					// The block reader validates the frame chain up front.
					r, err := b.OpenBlocks("tbl")
					if err == nil {
						_ = r.Close()
						t.Fatal("OpenBlocks accepted a corrupt frame chain")
					}
					wantStorageErr(t, err)
				})
			}
		})
	}
}

func TestPosixReadBlockConcurrent(t *testing.T) {
	p, err := NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := testTuples(5000)
	writeRun(t, p, "tbl", want)
	r, err := p.OpenBlocks("tbl")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	serial := make([][]byte, r.Blocks())
	for i := range serial {
		block, err := r.ReadBlock(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = bytes.Clone(block)
	}
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var buf []byte
			for i := 0; i < r.Blocks(); i++ {
				block, err := r.ReadBlock(i, buf)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(block, serial[i]) {
					errs <- errors.New("concurrent read diverged from serial")
					return
				}
				buf = block
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
