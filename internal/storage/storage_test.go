package storage

import (
	"testing"

	"repro/internal/relation"
)

// backends returns one fresh instance of every Backend implementation.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	posix, err := NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"memory": NewMemory(), "posix": posix}
}

func testTuples(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.Tuple{
			relation.Int(int64(i)),
			relation.Float(float64(i) / 3),
			relation.String("payload payload payload"),
			relation.Null,
		}
	}
	return out
}

func TestRunRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			want := testTuples(5000) // several blocks at the 64KiB target
			w, err := b.Create("q1.f1-i0/join-1-build")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.AppendAll(want); err != nil {
				t.Fatal(err)
			}
			if w.Tuples() != int64(len(want)) {
				t.Fatalf("writer counted %d tuples", w.Tuples())
			}
			if w.Bytes() == 0 {
				t.Fatal("writer reports zero bytes")
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := b.Open("q1.f1-i0/join-1-build")
			if err != nil {
				t.Fatal(err)
			}
			for i, wt := range want {
				got, ok, err := r.Next()
				if err != nil || !ok {
					t.Fatalf("tuple %d: ok=%v err=%v", i, ok, err)
				}
				if !tuplesIdentical(wt, got) {
					t.Fatalf("tuple %d: %v != %v", i, wt.Format(), got.Format())
				}
			}
			if _, ok, err := r.Next(); ok || err != nil {
				t.Fatalf("expected end of run, ok=%v err=%v", ok, err)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// tuplesIdentical compares by canonical encoding (Tuple.Equal is NaN-hostile
// and type-coercing; spill correctness is byte-exactness).
func tuplesIdentical(a, b relation.Tuple) bool {
	ea, eb := relation.EncodeTuple(a), relation.EncodeTuple(b)
	return string(ea) == string(eb)
}

func TestCreateExistingFails(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			w, err := b.Create("dup")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.Create("dup"); err == nil {
				t.Fatal("second Create of one name must fail")
			}
			_ = w.Close()
		})
	}
}

func TestOpenUnsealedFails(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			w, err := b.Create("open-race")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.Open("open-race"); err == nil {
				t.Fatal("Open before Close must fail")
			}
			_ = w.Close()
			if _, err := b.Open("open-race"); err != nil {
				t.Fatalf("Open after seal: %v", err)
			}
		})
	}
}

func TestRemoveIdempotentAndMatching(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer b.Close()
			for _, n := range []string{"q7.f1-i0/join-1", "q7.f1-i0/join-2", "q8.f1-i0/sort-1"} {
				w, err := b.Create(n)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Append(relation.Tuple{relation.Int(1)}); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Remove("nonexistent"); err != nil {
				t.Fatalf("Remove of absent run must be a no-op: %v", err)
			}
			removed, err := b.RemoveMatching("q7.")
			if err != nil {
				t.Fatal(err)
			}
			if removed != 2 {
				t.Fatalf("RemoveMatching removed %d, want 2", removed)
			}
			left, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(left) != 1 || left[0] != "q8.f1-i0/sort-1" {
				t.Fatalf("leftover runs: %v", left)
			}
		})
	}
}

func TestPosixEscapesHostileNames(t *testing.T) {
	b, err := NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Slashes, dots and traversal attempts must stay inside the directory
	// and round-trip through List.
	names := []string{"../escape", "a/b/c", "weird %20 name", ".hidden"}
	for _, n := range names {
		w, err := b.Create(n)
		if err != nil {
			t.Fatalf("Create(%q): %v", n, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("List = %v", got)
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if b.Over() {
		t.Fatal("fresh budget must not be over")
	}
	b.Reserve(60)
	if b.Over() {
		t.Fatal("60/100 must not be over")
	}
	b.Reserve(60)
	if !b.Over() {
		t.Fatal("120/100 must be over")
	}
	b.Release(40)
	if b.Over() {
		t.Fatal("80/100 must not be over")
	}
	if b.Inflight() != 80 {
		t.Fatalf("inflight = %d", b.Inflight())
	}
	if b.Limit() != 100 {
		t.Fatalf("limit = %d", b.Limit())
	}
}

func TestBudgetNilAndUnlimited(t *testing.T) {
	var nilB *Budget
	nilB.Reserve(1 << 40)
	nilB.Release(5)
	if nilB.Over() || nilB.Limit() != 0 || nilB.Inflight() != 0 {
		t.Fatal("nil budget must be inert")
	}
	un := NewBudget(0)
	un.Reserve(1 << 40)
	if un.Over() {
		t.Fatal("unlimited budget must never be over")
	}
	un.Release(1 << 40)
}
