package storage

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestBudgetOverReleaseClamps is the regression test for the negative-
// inflight bug: an operator error path releasing bytes it never reserved
// (e.g. after a failed spill) must clamp the accountant at zero and count
// mem_overrelease_total instead of driving inflight — and the
// mem_inflight_bytes gauge — negative.
func TestBudgetOverReleaseClamps(t *testing.T) {
	before := obs.Default().Counter(obs.MMemOverrelease).Value()
	b := NewBudget(1 << 20)
	b.Reserve(100)
	b.Release(250) // 150 bytes never reserved
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after over-release = %d, want 0", got)
	}
	if b.Over() {
		t.Fatal("clamped budget must not report Over")
	}
	if got := obs.Default().Counter(obs.MMemOverrelease).Value() - before; got != 1 {
		t.Fatalf("mem_overrelease_total delta = %d, want 1", got)
	}
	// A second over-release on an empty budget stays at zero.
	b.Release(1 << 30)
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after second over-release = %d, want 0", got)
	}
	// The accountant still works after clamping.
	b.Reserve(40)
	if got := b.Inflight(); got != 40 {
		t.Fatalf("inflight after recovery = %d, want 40", got)
	}
	b.Release(40)
	if got := b.Inflight(); got != 0 {
		t.Fatalf("final inflight = %d, want 0", got)
	}
}

// TestBudgetAcctStripes exercises per-worker handles: reserves on one
// stripe released through another must keep the cross-stripe total exact.
func TestBudgetAcctStripes(t *testing.T) {
	b := NewBudget(1 << 16)
	a0, a5 := b.Acct(0), b.Acct(5)
	a0.Reserve(1000)
	a5.Reserve(500)
	if got := b.Inflight(); got != 1500 {
		t.Fatalf("inflight = %d, want 1500", got)
	}
	a5.Release(1000) // releases bytes a0 reserved: fine, total is the truth
	if got := b.Inflight(); got != 500 {
		t.Fatalf("inflight = %d, want 500", got)
	}
	a0.Release(500)
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	var nilA *BudgetAcct
	nilA.Reserve(1 << 40)
	nilA.Release(1)
	if nilA.Over() || nilA.Budget() != nil {
		t.Fatal("nil BudgetAcct must be inert")
	}
	if (*Budget)(nil).Acct(3) != nil {
		t.Fatal("nil Budget must hand out nil handles")
	}
}

// TestBudgetOverConservative pins the striping contract: Over may trigger
// early (bounded slack) but never late.
func TestBudgetOverConservative(t *testing.T) {
	const limit = 1 << 16
	b := NewBudget(limit)
	slack := int64(budgetStripes) * b.chunk
	b.Acct(1).Reserve(limit - slack - 1)
	if b.Over() {
		t.Fatalf("Over at limit-slack-1 (%d of %d, slack %d)", b.Inflight(), limit, slack)
	}
	b.Acct(2).Reserve(slack + 2)
	if !b.Over() {
		t.Fatalf("not Over at limit+1 (%d of %d)", b.Inflight(), limit)
	}
}

// TestBudgetStripedStress hammers striped Reserve/Release/Over from 8
// goroutines with randomized shares (run under -race). Throughout and at
// the end the invariants hold: Inflight never observed negative, and after
// every goroutine returns its reservations the accountant is exactly zero.
func TestBudgetStripedStress(t *testing.T) {
	const (
		workers = budgetStripes
		rounds  = 4000
	)
	b := NewBudget(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			acct := b.Acct(w)
			peer := b.Acct(w + 3) // cross-stripe releases are legal
			held := int64(0)
			for i := 0; i < rounds; i++ {
				n := int64(rng.Intn(4096) + 1)
				switch rng.Intn(4) {
				case 0, 1:
					acct.Reserve(n)
					held += n
				case 2:
					if held > 0 {
						rel := held
						if rel > n {
							rel = n
						}
						peer.Release(rel)
						held -= rel
					}
				default:
					acct.Over()
					if got := b.Inflight(); got < 0 {
						t.Errorf("Inflight went negative: %d", got)
						return
					}
				}
			}
			acct.Release(held)
		}(w)
	}
	wg.Wait()
	if got := b.Inflight(); got != 0 {
		t.Fatalf("final inflight = %d, want 0", got)
	}
}
