package storage

import (
	"bytes"
	"testing"

	"repro/internal/relation"
)

// FuzzSpillRunRoundTrip mirrors the transport's FuzzTupleCodecRoundTrip at
// the spill layer: any tuple sequence that decodes from the fuzzed bytes
// must survive a write-seal-read cycle through a run byte-exactly (block
// framing, arena reuse and codec composition must not corrupt anything —
// spilled operator state replays from these runs).
func FuzzSpillRunRoundTrip(f *testing.F) {
	f.Add(relation.EncodeTuple(relation.Tuple{}))
	f.Add(relation.EncodeTuple(relation.Tuple{relation.Null}))
	f.Add(relation.EncodeTuple(relation.Tuple{relation.Int(42), relation.Int(-1)}))
	f.Add(relation.EncodeTuple(relation.Tuple{relation.Float(3.25), relation.String("ORF YAL00007C")}))
	f.Add(append(
		relation.EncodeTuple(relation.Tuple{relation.Int(7)}),
		relation.EncodeTuple(relation.Tuple{relation.String("x"), relation.Null})...))
	f.Add([]byte{2, 1})
	f.Add([]byte{1, 99})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode as many whole tuples as the input holds; corrupt tails are
		// the codec's concern (covered by its own fuzzer), not the run's.
		var tuples []relation.Tuple
		rest := raw
		for len(rest) > 0 {
			tp, tail, err := relation.DecodeTuple(rest)
			if err != nil {
				break
			}
			tuples = append(tuples, tp)
			rest = tail
			if len(tuples) >= 256 {
				break
			}
		}
		if len(tuples) == 0 {
			t.Skip()
		}
		b := NewMemory()
		defer b.Close()
		w, err := b.Create("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples {
			if err := w.Append(tp); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("seal: %v", err)
		}
		r, err := b.Open("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for i, want := range tuples {
			got, ok, err := r.Next()
			if err != nil || !ok {
				t.Fatalf("tuple %d: ok=%v err=%v", i, ok, err)
			}
			if !bytes.Equal(relation.EncodeTuple(want), relation.EncodeTuple(got)) {
				t.Fatalf("tuple %d changed across the run:\n%x\n%x",
					i, relation.EncodeTuple(want), relation.EncodeTuple(got))
			}
		}
		if _, ok, _ := r.Next(); ok {
			t.Fatal("run yielded extra tuples")
		}
	})
}
