package simnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/vtime"
)

func testClock() *vtime.Clock { return vtime.NewClock(time.Microsecond) }

func TestNodePerturbedCost(t *testing.T) {
	n := NewNode("wsA")
	if n.ID() != "wsA" {
		t.Fatal("ID")
	}
	if got := n.PerturbedCost(5); got != 5 {
		t.Errorf("unperturbed cost = %v", got)
	}
	n.SetPerturbation(vtime.Multiplier(10))
	if got := n.PerturbedCost(5); got != 50 {
		t.Errorf("x10 cost = %v", got)
	}
	n.SetPerturbation(nil)
	if got := n.PerturbedCost(5); got != 5 {
		t.Errorf("reset cost = %v", got)
	}
}

func TestNodeWorkIndexAdvances(t *testing.T) {
	n := NewNode("a")
	n.SetPerturbation(vtime.Step{At: 2, Before: vtime.None, After: vtime.Multiplier(3)})
	costs := []float64{n.PerturbedCost(1), n.PerturbedCost(1), n.PerturbedCost(1)}
	want := []float64{1, 1, 3}
	for i := range want {
		if costs[i] != want[i] {
			t.Errorf("work %d: cost %v, want %v", i, costs[i], want[i])
		}
	}
}

func TestNodeConcurrentSafety(t *testing.T) {
	n := NewNode("a")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				n.PerturbedCost(1)
				n.SetPerturbation(vtime.Multiplier(2))
				_ = n.Perturbation()
			}
		}()
	}
	wg.Wait()
}

func TestLinkCost(t *testing.T) {
	l := LAN100Mbps()
	if got := l.CostMs(12500); got != 3 { // 2ms latency + 1ms bandwidth
		t.Errorf("CostMs(12500) = %v, want 3", got)
	}
	if got := Loopback().CostMs(1 << 20); got != 0 {
		t.Errorf("loopback cost = %v, want 0", got)
	}
}

func TestLinkTransmitSleeps(t *testing.T) {
	clock := vtime.NewClock(10 * time.Microsecond)
	l := &Link{LatencyMs: 50, BytesPerMs: 1000}
	start := time.Now()
	cost := l.Transmit(clock, 50000) // 50ms bw + 50ms latency = 100 paper-ms = 1ms real
	elapsed := time.Since(start)
	if cost != 100 {
		t.Errorf("cost = %v, want 100", cost)
	}
	if elapsed < 700*time.Microsecond {
		t.Errorf("Transmit returned too quickly: %v", elapsed)
	}
}

func TestLinkBandwidthSerialised(t *testing.T) {
	// Two concurrent transfers of 1 paper-ms bandwidth each must take at
	// least ~2 paper-ms in total on one link.
	clock := vtime.NewClock(200 * time.Microsecond)
	l := &Link{LatencyMs: 0, BytesPerMs: 1000}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Transmit(clock, 1000)
		}()
	}
	wg.Wait()
	if got := time.Since(start); got < 350*time.Microsecond {
		t.Errorf("concurrent transfers completed in %v; bandwidth not serialised", got)
	}
}

func TestNetworkNodesAndLinks(t *testing.T) {
	net := NewNetwork(testClock())
	a := net.AddNode("a")
	net.AddNode("b")
	if net.Node("a") != a {
		t.Error("Node lookup")
	}
	if net.Node("zzz") != nil {
		t.Error("missing node should be nil")
	}
	if got := len(net.Nodes()); got != 2 {
		t.Errorf("Nodes len = %d", got)
	}
	// Same-node link is loopback (zero cost).
	if got := net.Link("a", "a").CostMs(1000); got != 0 {
		t.Errorf("loopback cost = %v", got)
	}
	// Cross-node link defaults to LAN; cached on second fetch.
	l1 := net.Link("a", "b")
	if l1.CostMs(0) != 2 {
		t.Errorf("default link latency = %v", l1.CostMs(0))
	}
	if net.Link("a", "b") != l1 {
		t.Error("link not cached")
	}
	custom := &Link{LatencyMs: 99}
	net.SetLink("b", "a", custom)
	if net.Link("b", "a") != custom {
		t.Error("SetLink ignored")
	}
	net.SetDefaultLink(Loopback)
	if got := net.Link("b", "c").CostMs(5000); got != 0 {
		t.Errorf("custom default link cost = %v", got)
	}
}

func TestNetworkDuplicateNodePanics(t *testing.T) {
	net := NewNetwork(testClock())
	net.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	net.AddNode("a")
}
