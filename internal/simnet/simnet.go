// Package simnet models the physical fabric of the simulated Grid: the
// machines (nodes) that host query evaluation services and the network links
// between them.
//
// The paper's testbed is three RedHat Linux machines on a 100 Mbps LAN,
// "autonomously exposed as Grid resources". Here a Node carries a
// vtime.Perturbation that stands in for the artificial load the authors
// injected, and a Link charges latency plus size/bandwidth for every buffer
// a producer transmits, with the bandwidth portion serialised per link so
// that concurrent senders share capacity as they would on a real wire.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

// NodeID identifies a machine in the simulated Grid.
type NodeID string

// Node is a simulated machine. Its perturbation models external load and
// may be swapped at any time (e.g. mid-query) by tests and experiments.
type Node struct {
	id NodeID

	mu        sync.Mutex
	perturb   vtime.Perturbation
	workIndex int

	// down marks a fail-stopped node. commitMu serialises failure against
	// commit sections (Atomically), giving the simulation fail-stop
	// semantics at commit granularity: a crash never lands between the two
	// halves of a flush-outputs-then-ack-inputs exchange commit, which is
	// the invariant the elastic recovery protocol's exactly-once guarantee
	// rests on (DESIGN.md §5h documents this as the simulated failure
	// model; a real TCP deployment narrows but does not close that window).
	down     atomic.Bool
	commitMu sync.Mutex
}

// NewNode returns an unperturbed node.
func NewNode(id NodeID) *Node {
	return &Node{id: id, perturb: vtime.None}
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// SetPerturbation installs p as the node's load model. A nil p resets the
// node to unperturbed.
func (n *Node) SetPerturbation(p vtime.Perturbation) {
	if p == nil {
		p = vtime.None
	}
	n.mu.Lock()
	n.perturb = p
	n.mu.Unlock()
}

// Perturbation returns the current load model.
func (n *Node) Perturbation() vtime.Perturbation {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.perturb
}

// PerturbedCost maps the base cost of one unit of work executed on this node
// to its cost under the node's current load, advancing the node's work
// index (used by index-based perturbations such as vtime.Step).
func (n *Node) PerturbedCost(baseMs float64) float64 {
	n.mu.Lock()
	p, i := n.perturb, n.workIndex
	n.workIndex++
	n.mu.Unlock()
	return p.Apply(baseMs, i)
}

// PerturbedCostN maps count units of work with a uniform base cost to their
// total perturbed cost under one lock acquisition. Each unit keeps its own
// work index, so index-based perturbations (vtime.Step, the per-tuple random
// draws of vtime.NormalMultiplier) behave exactly as count separate
// PerturbedCost calls — the batched engine relies on this equivalence.
func (n *Node) PerturbedCostN(baseMs float64, count int) float64 {
	if count <= 0 {
		return 0
	}
	n.mu.Lock()
	p, i := n.perturb, n.workIndex
	n.workIndex += count
	n.mu.Unlock()
	return vtime.ApplyN(p, baseMs, i, count)
}

// PerturbedCostBatch maps one unit of work per base cost to the total
// perturbed cost under one lock acquisition, for batches whose per-unit base
// costs differ (e.g. size-dependent scan costs).
func (n *Node) PerturbedCostBatch(baseMs []float64) float64 {
	if len(baseMs) == 0 {
		return 0
	}
	n.mu.Lock()
	p, i := n.perturb, n.workIndex
	n.workIndex += len(baseMs)
	n.mu.Unlock()
	return vtime.ApplyBatch(p, baseMs, i)
}

// Alive reports whether the node has not fail-stopped.
func (n *Node) Alive() bool { return !n.down.Load() }

// Fail crash-stops the node. It waits for any in-flight commit section
// (Atomically) to finish, so a simulated crash is atomic with respect to
// exchange commits. Failure is one-way: a machine that returns to the Grid
// re-registers under a fresh identity.
func (n *Node) Fail() {
	n.commitMu.Lock()
	n.down.Store(true)
	n.commitMu.Unlock()
}

// Atomically runs fn as a commit section: fn executes only if the node is
// alive, and a concurrent Fail is held off until fn returns. It reports
// whether fn ran. Keep commit sections short — they serialise with node
// failure, not with each other's work.
func (n *Node) Atomically(fn func()) bool {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	if n.down.Load() {
		return false
	}
	fn()
	return true
}

// Link models a directed network path between two nodes.
type Link struct {
	// LatencyMs is the fixed per-message cost in paper milliseconds. It
	// subsumes protocol overheads (the paper ships buffers as SOAP/HTTP,
	// which dominates small-message cost).
	LatencyMs float64
	// BytesPerMs is the link bandwidth. 100 Mbps ≈ 12500 bytes per paper
	// millisecond.
	BytesPerMs float64

	mu sync.Mutex // serialises the bandwidth portion of transfers
}

// LAN100Mbps returns a link modelled on the paper's testbed network, with a
// per-message latency that reflects 2005-era SOAP/HTTP framing.
func LAN100Mbps() *Link {
	return &Link{LatencyMs: 2, BytesPerMs: 12500}
}

// Loopback returns a link for co-located producer/consumer pairs. The
// paper's default configuration treats same-machine communication cost as
// zero.
func Loopback() *Link { return &Link{LatencyMs: 0, BytesPerMs: 0} }

// CostMs returns the modelled cost of transmitting size bytes, without
// sleeping.
func (l *Link) CostMs(size int) float64 {
	cost := l.LatencyMs
	if l.BytesPerMs > 0 {
		cost += float64(size) / l.BytesPerMs
	}
	return cost
}

// Transmit blocks the caller for the modelled cost of sending size bytes and
// returns that cost in paper milliseconds. The bandwidth portion holds the
// link lock so concurrent transfers queue behind each other; the latency
// portion is concurrent.
func (l *Link) Transmit(clock *vtime.Clock, size int) float64 {
	var bw float64
	if l.BytesPerMs > 0 {
		bw = float64(size) / l.BytesPerMs
		l.mu.Lock()
		clock.Sleep(bw)
		l.mu.Unlock()
	}
	if l.LatencyMs > 0 {
		clock.Sleep(l.LatencyMs)
	}
	return bw + l.LatencyMs
}

// Network is the set of nodes and links of a simulated Grid. Links are
// directed; a missing link entry falls back to the network default, and a
// node's link to itself falls back to Loopback.
type Network struct {
	clock *vtime.Clock

	mu      sync.Mutex
	nodes   map[NodeID]*Node
	links   map[[2]NodeID]*Link
	defLink func() *Link
}

// NewNetwork builds an empty network over the given clock, with LAN100Mbps
// as the default link model.
func NewNetwork(clock *vtime.Clock) *Network {
	return &Network{
		clock:   clock,
		nodes:   make(map[NodeID]*Node),
		links:   make(map[[2]NodeID]*Link),
		defLink: LAN100Mbps,
	}
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *vtime.Clock { return n.clock }

// AddNode creates and registers a node. Adding a duplicate ID is a
// programming error and panics.
func (n *Network) AddNode(id NodeID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", id))
	}
	node := NewNode(id)
	n.nodes[id] = node
	return node
}

// Node returns the registered node, or nil.
func (n *Network) Node(id NodeID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

// Nodes returns the registered node IDs in unspecified order.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	return ids
}

// SetLink installs a specific link model for the from→to direction.
func (n *Network) SetLink(from, to NodeID, l *Link) {
	n.mu.Lock()
	n.links[[2]NodeID{from, to}] = l
	n.mu.Unlock()
}

// SetDefaultLink replaces the factory used for unconfigured node pairs.
func (n *Network) SetDefaultLink(factory func() *Link) {
	n.mu.Lock()
	n.defLink = factory
	n.mu.Unlock()
}

// Link returns the link used for from→to transfers, creating it on first
// use. Same-node pairs get a Loopback link.
func (n *Network) Link(from, to NodeID) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := [2]NodeID{from, to}
	if l, ok := n.links[key]; ok {
		return l
	}
	var l *Link
	if from == to {
		l = Loopback()
	} else {
		l = n.defLink()
	}
	n.links[key] = l
	return l
}
