package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/simnet"
)

// tcpPair builds two connected TCP transports.
func tcpPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP("nodeA", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("nodeB", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("nodeB", b.Addr())
	b.AddPeer("nodeA", a.Addr())
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPDelivery(t *testing.T) {
	a, b := tcpPair(t)
	var mu sync.Mutex
	var got *Message
	var from simnet.NodeID
	b.Register("nodeB", "frag/F2#0", func(f simnet.NodeID, m *Message) {
		mu.Lock()
		from, got = f, m
		mu.Unlock()
	})
	msg := &Message{
		Kind: KindData, Exchange: "E1", StartSeq: 5,
		Tuples: []relation.Tuple{{relation.String("ORF"), relation.Int(9)}},
	}
	if _, err := a.Send("nodeA", "nodeB", "frag/F2#0", msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
	mu.Lock()
	defer mu.Unlock()
	if from != "nodeA" || got.StartSeq != 5 || len(got.Tuples) != 1 ||
		got.Tuples[0][0].AsString() != "ORF" {
		t.Fatalf("delivered %+v from %q", got, from)
	}
}

func TestTCPReplyOverSameDirection(t *testing.T) {
	// Request goes A->B, reply goes B->A through B's own dial-back.
	a, b := tcpPair(t)
	reply := make(chan *Message, 1)
	a.Register("nodeA", "responder", func(_ simnet.NodeID, m *Message) {
		reply <- m
	})
	b.Register("nodeB", "frag/F1#0", func(from simnet.NodeID, m *Message) {
		out := &Message{Kind: KindReply, Ctrl: &Ctrl{
			Op: m.Ctrl.Op, RequestID: m.Ctrl.RequestID, OK: true, Routed: 77,
		}}
		if _, err := b.Send("nodeB", from, m.Ctrl.ReplyService, out); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	req := &Message{Kind: KindControl, Ctrl: &Ctrl{
		Op: CtrlProgress, RequestID: 1, ReplyTo: "nodeA", ReplyService: "responder",
	}}
	if _, err := a.Send("nodeA", "nodeB", "frag/F1#0", req); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-reply:
		if m.Ctrl.Routed != 77 || !m.Ctrl.OK {
			t.Fatalf("reply = %+v", m.Ctrl)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply")
	}
}

func TestTCPLocalDelivery(t *testing.T) {
	a, _ := tcpPair(t)
	hit := false
	a.Register("nodeA", "svc", func(simnet.NodeID, *Message) { hit = true })
	if _, err := a.Send("nodeA", "nodeA", "svc", &Message{Kind: KindEOS}); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("local delivery must be synchronous")
	}
}

func TestTCPErrors(t *testing.T) {
	a, _ := tcpPair(t)
	if _, err := a.Send("nodeA", "nodeC", "svc", &Message{Kind: KindEOS}); err == nil {
		t.Error("send to unknown peer accepted")
	}
	if _, err := a.Send("nodeA", "nodeA", "missing", &Message{Kind: KindEOS}); err == nil {
		t.Error("send to missing local service accepted")
	}
	a.Unregister("nodeA", "svc")
	defer func() {
		if recover() == nil {
			t.Error("registering for a remote node must panic")
		}
	}()
	a.Register("nodeZ", "svc", func(simnet.NodeID, *Message) {})
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	a, b := tcpPair(t)
	var mu sync.Mutex
	var seqs []int64
	b.Register("nodeB", "svc", func(_ simnet.NodeID, m *Message) {
		mu.Lock()
		seqs = append(seqs, m.StartSeq)
		mu.Unlock()
	})
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := a.Send("nodeA", "nodeB", "svc", &Message{Kind: KindData, StartSeq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("out of order at %d: %d", i, s)
		}
	}
}

// TestTCPPeerRestart reproduces the multi-process deployment sequence: the
// evaluator keeps a cached dial connection to the coordinator, the
// coordinator process exits, a new one binds the same address, and the
// evaluator must reach it — the dead connection's read loop has to evict
// the cache entry so the next Send re-dials (a write to the stale socket
// can succeed silently, so waiting for a write error loses the message).
func TestTCPPeerRestart(t *testing.T) {
	a, err := NewTCP("nodeA", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b1, err := NewTCP("nodeB", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	a.AddPeer("nodeB", addr)
	var mu sync.Mutex
	hits := 0
	b1.Register("nodeB", "svc", func(simnet.NodeID, *Message) {
		mu.Lock()
		hits++
		mu.Unlock()
	})
	if _, err := a.Send("nodeA", "nodeB", "svc", &Message{Kind: KindEOS}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return hits == 1 })

	// Restart the peer on the same address; a's cached connection is dead.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCP("nodeB", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	got := make(chan struct{}, 16)
	b2.Register("nodeB", "svc", func(simnet.NodeID, *Message) { got <- struct{}{} })

	// The eviction races with the resend, so retry: once the read loop has
	// dropped the stale connection, a Send dials b2 and must get through.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _ = a.Send("nodeA", "nodeB", "svc", &Message{Kind: KindEOS})
		select {
		case <-got:
			return
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted peer never reached: stale connection still cached")
		}
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := NewTCP("x", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == "" {
		t.Error("no listen address")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Send-only transport.
	c, err := NewTCP("y", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr() != "" {
		t.Error("send-only transport has an address")
	}
	_ = c.Close()
}
