package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/simnet"
)

// TCP carries messages between real processes: each process hosts one node,
// listens on its own address, and dials peers lazily. Frames are a 4-byte
// big-endian length followed by the wire-encoded message plus routing
// header. Unlike InProc, no simulated link cost is charged — the real
// network provides the latency.
//
// The multi-process deployment in cmd/dqp-coordinator and cmd/dqp-evaluator
// uses this transport; the single-process experiments use InProc.
type TCP struct {
	local simnet.NodeID

	mu        sync.Mutex
	peers     map[simnet.NodeID]string // node -> address
	conns     map[simnet.NodeID]*tcpConn
	endpoints map[string]Handler
	listener  net.Listener
	accepted  []net.Conn
	closed    bool
	wg        sync.WaitGroup

	obsLocal  *obs.Counter
	obsRemote *obs.Counter
}

type tcpConn struct {
	mu sync.Mutex // serialises writes
	c  net.Conn
	w  *bufio.Writer
}

// maxFrame bounds a frame to keep a corrupt peer from forcing huge
// allocations.
const maxFrame = 64 << 20

// NewTCP creates the transport for the local node, listening on listenAddr
// (e.g. ":7011"; an empty string disables listening, for send-only
// clients).
func NewTCP(local simnet.NodeID, listenAddr string) (*TCP, error) {
	t := &TCP{
		local:     local,
		peers:     make(map[simnet.NodeID]string),
		conns:     make(map[simnet.NodeID]*tcpConn),
		endpoints: make(map[string]Handler),
		obsLocal:  obs.Default().Counter(obs.Label(obs.MTransportMessages, "kind", "local")),
		obsRemote: obs.Default().Counter(obs.Label(obs.MTransportMessages, "kind", "remote")),
	}
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.acceptLoop(ln)
	}
	return t, nil
}

// Addr returns the listening address (useful with ":0").
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// AddPeer registers the address of a remote node.
func (t *TCP) AddPeer(node simnet.NodeID, addr string) {
	t.mu.Lock()
	t.peers[node] = addr
	t.mu.Unlock()
}

// Register implements Transport.
func (t *TCP) Register(node simnet.NodeID, service string, h Handler) {
	if node != t.local {
		panic(fmt.Sprintf("transport: registering %q for remote node %q on %q", service, node, t.local))
	}
	t.mu.Lock()
	t.endpoints[service] = h
	t.mu.Unlock()
}

// Unregister implements Transport.
func (t *TCP) Unregister(node simnet.NodeID, service string) {
	t.mu.Lock()
	delete(t.endpoints, service)
	t.mu.Unlock()
}

// Send implements Transport. Local sends dispatch directly.
func (t *TCP) Send(from, to simnet.NodeID, service string, msg *Message) (float64, error) {
	if to == t.local {
		t.mu.Lock()
		h := t.endpoints[service]
		t.mu.Unlock()
		if h == nil {
			return 0, fmt.Errorf("transport: no local endpoint %q", service)
		}
		t.obsLocal.Inc()
		h(from, msg)
		return 0, nil
	}
	conn, err := t.connTo(to)
	if err != nil {
		return 0, err
	}
	// Encode the routing header and message directly into one pooled frame
	// buffer; the bytes are fully flushed to the bufio writer before the
	// buffer is recycled, so nothing retains it.
	frame := relation.GetEncodeBuffer()
	defer func() { relation.PutEncodeBuffer(frame) }()
	frame = appendString(frame, service)
	frame = appendString(frame, string(from))
	frame = AppendMessage(frame, msg)

	conn.mu.Lock()
	defer conn.mu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := conn.w.Write(lenBuf[:]); err != nil {
		t.dropConn(to)
		return 0, err
	}
	if _, err := conn.w.Write(frame); err != nil {
		t.dropConn(to)
		return 0, err
	}
	if err := conn.w.Flush(); err != nil {
		t.dropConn(to)
		return 0, err
	}
	t.obsRemote.Inc()
	return 0, nil
}

func (t *TCP) connTo(node simnet.NodeID) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[node]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[node]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %q", node)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q (%s): %w", node, addr, err)
	}
	c := &tcpConn{c: raw, w: bufio.NewWriter(raw)}
	t.mu.Lock()
	if existing, ok := t.conns[node]; ok {
		t.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	t.conns[node] = c
	t.mu.Unlock()
	// Replies may come back on the same connection.
	t.wg.Add(1)
	go t.readLoop(raw)
	return c, nil
}

// evictConn removes conn from the dial cache if it is cached there (it may
// instead be an accepted inbound connection, which is never cached).
func (t *TCP) evictConn(conn net.Conn) {
	t.mu.Lock()
	for node, c := range t.conns {
		if c.c == conn {
			delete(t.conns, node)
			break
		}
	}
	t.mu.Unlock()
}

func (t *TCP) dropConn(node simnet.NodeID) {
	t.mu.Lock()
	if c, ok := t.conns[node]; ok {
		delete(t.conns, node)
		_ = c.c.Close()
	}
	t.mu.Unlock()
}

func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.accepted = append(t.accepted, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	// A dead connection must leave the dial cache with it: when a peer
	// process exits, the first write to the stale socket can still succeed
	// silently (the RST arrives later), so waiting for a write error loses
	// messages. Evicting here makes the next Send re-dial the peer.
	defer t.evictConn(conn)
	r := bufio.NewReader(conn)
	var lenBuf [4]byte
	// One growable frame buffer per connection: unmarshalling copies every
	// string and tuple payload out of the frame, so the buffer can be reused
	// for the next message. The arena batches the copies' allocations; the
	// decoded tuples own their values and safely outlive it.
	var frame []byte
	var arena relation.Arena
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		if uint32(cap(frame)) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(r, frame); err != nil {
			return
		}
		service, rest, err := readString(frame)
		if err != nil {
			return
		}
		fromStr, rest, err := readString(rest)
		if err != nil {
			return
		}
		msg, err := UnmarshalMessageArena(&arena, rest)
		if err != nil {
			continue // drop corrupt message, keep the connection
		}
		t.mu.Lock()
		h := t.endpoints[service]
		t.mu.Unlock()
		if h != nil {
			h(simnet.NodeID(fromStr), msg)
		}
	}
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b[sz:])) {
		return "", nil, fmt.Errorf("%w: bad string", ErrWire)
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// Close stops the listener and closes every connection.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	if t.listener != nil {
		_ = t.listener.Close()
	}
	for node, c := range t.conns {
		_ = c.c.Close()
		delete(t.conns, node)
	}
	for _, c := range t.accepted {
		_ = c.Close()
	}
	t.accepted = nil
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
