package transport

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/relation"
)

// dataHeader builds the fixed prefix of a KindData message up to (and
// excluding) the tuple count, matching AppendMessage's layout.
func dataHeader() []byte {
	b := []byte{byte(KindData)}
	b = appendString(b, "E")
	b = binary.AppendVarint(b, 0) // producer
	b = binary.AppendVarint(b, 0) // consumer
	b = binary.AppendVarint(b, 0) // epoch
	b = binary.AppendVarint(b, 0) // startSeq
	b = binary.AppendVarint(b, 0) // checkpoint
	b = appendBool(b, false)      // replay
	return b
}

// TestWireHugeCountRejected feeds corrupt headers whose element counts claim
// far more data than the frame carries: the decoder must return an error
// instead of trusting the count.
func TestWireHugeCountRejected(t *testing.T) {
	// A tuple count of 1<<30 with no payload behind it.
	b := binary.AppendUvarint(dataHeader(), 1<<30)
	if _, err := UnmarshalMessage(b); !errors.Is(err, ErrWire) {
		t.Fatalf("huge tuple count: err = %v, want ErrWire", err)
	}
	// Same for the bucket count, after a valid empty tuple section.
	b = binary.AppendUvarint(dataHeader(), 0)
	b = binary.AppendUvarint(b, 1<<40)
	if _, err := UnmarshalMessage(b); !errors.Is(err, ErrWire) {
		t.Fatalf("huge bucket count: err = %v, want ErrWire", err)
	}
}

// TestWirePreallocBounded: a count that passes the remaining-input sanity
// bound can still be orders of magnitude larger than the elements the
// payload actually holds. The decoder must allocate proportionally to the
// input, not to the claim — preallocN caps the initial capacity at 4096.
func TestWirePreallocBounded(t *testing.T) {
	// Announce 64k buckets backed by 64k bytes of varint zeros minus the
	// tail, so count() accepts it but decoding runs out of input. An
	// uncapped make([]int32, 64k) here would commit 256KiB up front on a
	// frame that proves to hold nothing useful.
	const claim = 1 << 16
	b := binary.AppendUvarint(dataHeader(), 0) // no tuples
	b = binary.AppendUvarint(b, claim)
	b = append(b, make([]byte, claim-1)...) // one element short
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := UnmarshalMessage(b); err == nil {
			t.Fatal("truncated bucket section accepted")
		}
	})
	// The exact count is not pinned, but an uncapped prealloc plus append
	// growth from 4096 to 64k would add several large allocations; the
	// capped decoder stays small. This guards against reintroducing
	// count-trusting makes.
	if allocs > 32 {
		t.Fatalf("decoder made %.0f allocations on a truncated frame", allocs)
	}
}

// TestWireRelationCountCap covers the same property at the tuple codec
// level: DecodeTuple must reject value counts beyond the input.
func TestWireRelationCountCap(t *testing.T) {
	b := binary.AppendUvarint(nil, 1<<50)
	if _, _, err := relation.DecodeTuple(b); !errors.Is(err, relation.ErrCorrupt) {
		t.Fatalf("huge value count: err = %v, want ErrCorrupt", err)
	}
	if _, err := relation.DecodeTuples(b); !errors.Is(err, relation.ErrCorrupt) {
		t.Fatalf("huge tuple count: err = %v, want ErrCorrupt", err)
	}
}
