package transport

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func sampleMessages() []*Message {
	return []*Message{
		{Kind: KindEOS, Exchange: "E1", ProducerIdx: 2, ConsumerIdx: 1},
		{
			Kind: KindData, Exchange: "E2", ProducerIdx: 0, ConsumerIdx: 3,
			Epoch: 5, StartSeq: 100, Checkpoint: 149, Replay: true,
			Tuples: []relation.Tuple{
				{relation.String("ORF1"), relation.Int(42)},
				{relation.Float(2.5), relation.Null},
			},
			Buckets: []int32{7, 300},
		},
		{Kind: KindAck, Exchange: "E1", ConsumerIdx: 1, Checkpoint: 50,
			Except: []int64{12, 17, 23}},
		{
			Kind: KindControl, Exchange: "E1",
			Ctrl: &Ctrl{
				Op: CtrlDiscard, RequestID: 99, ReplyTo: "coord",
				ReplyService: "aqp/responder@coord",
				Buckets:      []int32{1, 2, 3},
				Epoch:        7,
			},
		},
		{
			Kind: KindReply,
			Ctrl: &Ctrl{
				Op: CtrlDiscard, RequestID: 99, OK: true,
				DiscardedSeqs: map[string][]int64{"E1/0": {5, 6}, "E1/2": {11}},
			},
		},
		{
			Kind: KindControl,
			Ctrl: &Ctrl{
				Op: CtrlSetWeights, RequestID: 1,
				Weights: []float64{0.75, 0.25}, OK: false, Err: "nope",
				Routed: 1234, Est: 3000,
				BucketMap: []int32{0, 1, 0, 1},
				Seqs:      []int64{9, 8, 7},
			},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		enc := MarshalMessage(m)
		dec, err := UnmarshalMessage(enc)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !messagesEqual(m, dec) {
			t.Fatalf("message %d round trip:\n in: %+v\nout: %+v", i, m, dec)
		}
	}
}

// messagesEqual compares messages modulo nil-vs-empty slices.
func messagesEqual(a, b *Message) bool {
	if a.Kind != b.Kind || a.Exchange != b.Exchange ||
		a.ProducerIdx != b.ProducerIdx || a.ConsumerIdx != b.ConsumerIdx ||
		a.Epoch != b.Epoch || a.StartSeq != b.StartSeq ||
		a.Checkpoint != b.Checkpoint || a.Replay != b.Replay {
		return false
	}
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			return false
		}
	}
	if !int32sEqual(a.Buckets, b.Buckets) || !int64sEqual(a.Except, b.Except) {
		return false
	}
	if (a.Ctrl == nil) != (b.Ctrl == nil) {
		return false
	}
	if a.Ctrl != nil {
		ac, bc := *a.Ctrl, *b.Ctrl
		if ac.Op != bc.Op || ac.RequestID != bc.RequestID || ac.ReplyTo != bc.ReplyTo ||
			ac.ReplyService != bc.ReplyService || ac.Epoch != bc.Epoch ||
			ac.OK != bc.OK || ac.Err != bc.Err || ac.Routed != bc.Routed || ac.Est != bc.Est {
			return false
		}
		if !reflect.DeepEqual(normaliseMap(ac.DiscardedSeqs), normaliseMap(bc.DiscardedSeqs)) {
			return false
		}
		if !float64sEqual(ac.Weights, bc.Weights) || !int32sEqual(ac.BucketMap, bc.BucketMap) ||
			!int32sEqual(ac.Buckets, bc.Buckets) || !int64sEqual(ac.Seqs, bc.Seqs) {
			return false
		}
	}
	return true
}

func normaliseMap(m map[string][]int64) map[string][]int64 {
	if len(m) == 0 {
		return nil
	}
	return m
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWireRejectsGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		b := make([]byte, r.Intn(60))
		r.Read(b)
		// Must never panic; errors are fine.
		_, _ = UnmarshalMessage(b)
	}
	if _, err := UnmarshalMessage(nil); err == nil {
		t.Error("nil input accepted")
	}
	good := MarshalMessage(&Message{Kind: KindEOS})
	if _, err := UnmarshalMessage(append(good, 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := UnmarshalMessage(good[:len(good)-1]); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestWireRandomDataMessages(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Kind:        Kind(1 + r.Intn(5)),
			Exchange:    "E",
			ProducerIdx: r.Intn(8),
			ConsumerIdx: r.Intn(8),
			StartSeq:    r.Int63n(1 << 40),
			Checkpoint:  r.Int63n(1 << 40),
		}
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			m.Tuples = append(m.Tuples, relation.Tuple{
				relation.Int(r.Int63()), relation.String("x"),
			})
			m.Buckets = append(m.Buckets, int32(r.Intn(512)))
		}
		dec, err := UnmarshalMessage(MarshalMessage(m))
		return err == nil && messagesEqual(m, dec)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalMessageArenaEquivalent(t *testing.T) {
	var a relation.Arena
	for i, m := range sampleMessages() {
		enc := MarshalMessage(m)
		plain, err := UnmarshalMessage(enc)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		arena, err := UnmarshalMessageArena(&a, enc)
		if err != nil {
			t.Fatalf("message %d (arena): %v", i, err)
		}
		if !reflect.DeepEqual(plain, arena) {
			t.Fatalf("message %d: arena decode differs:\n%+v\n%+v", i, plain, arena)
		}
	}
}
