// Package transport carries data buffers, checkpoint acknowledgements, and
// adaptivity control messages between query evaluation services. Two
// implementations exist: InProc routes messages inside one process over the
// simulated network (charging modelled link costs, which is how the paper's
// SOAP/HTTP buffer shipping is reproduced), and TCP carries the same
// messages between real processes for multi-process deployments.
package transport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/simnet"
)

// Kind enumerates message kinds.
type Kind uint8

// Message kinds.
const (
	// KindData carries a buffer of tuples from an exchange producer
	// instance to a consumer instance.
	KindData Kind = iota + 1
	// KindEOS signals that a producer instance has finished its normal
	// data flow to a consumer instance.
	KindEOS
	// KindAck carries a checkpoint acknowledgement from consumer back to
	// producer: every tuple up to the checkpoint has been processed (or
	// discarded under a recall) and is no longer needed.
	KindAck
	// KindControl carries an adaptivity control request (see Ctrl).
	KindControl
	// KindReply carries the response to a control request.
	KindReply
	// KindDeploy asks a remote evaluation service to instantiate its
	// fragment instances for a query (multi-process deployments; the SQL
	// travels in Query and the evaluator derives the identical plan
	// deterministically from the shared manifest).
	KindDeploy
	// KindTeardown releases a remote evaluation service's runtimes.
	KindTeardown
	// KindMonitor forwards one raw monitoring event from a remote engine
	// to the node hosting its MonitoringEventDetector.
	KindMonitor
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindEOS:
		return "eos"
	case KindAck:
		return "ack"
	case KindControl:
		return "control"
	case KindReply:
		return "reply"
	case KindDeploy:
		return "deploy"
	case KindTeardown:
		return "teardown"
	case KindMonitor:
		return "monitor"
	default:
		return "invalid"
	}
}

// Message is the single wire unit. Fields are populated according to Kind;
// unneeded fields stay zero.
type Message struct {
	Kind Kind
	// Exchange identifies the exchange the message belongs to.
	Exchange string
	// ProducerIdx and ConsumerIdx identify the instance endpoints of the
	// stream within the exchange.
	ProducerIdx int
	ConsumerIdx int
	// Epoch is the distribution-policy epoch the message was produced
	// under; bumped by every adaptation.
	Epoch int

	// KindData: Tuples carry StartSeq..StartSeq+len-1 (per-stream
	// sequence numbers); Buckets, when present, carries each tuple's
	// routing bucket (hash exchanges). Replay marks retransmissions that
	// recreate operator state rather than normal flow. Checkpoint, when
	// >= 0, closes the checkpoint interval ending at that sequence.
	StartSeq   int64
	Tuples     []relation.Tuple
	Buckets    []int32
	Replay     bool
	Checkpoint int64

	// KindAck: Checkpoint is the acknowledged checkpoint sequence; Except
	// lists sequences at or below it that were discarded by a recall and
	// must NOT be released from the recovery log (they are migrated
	// explicitly by the resend step of the retrospective protocol).
	Except []int64

	// KindControl / KindReply.
	Ctrl *Ctrl

	// KindDeploy: the SQL text to plan and instantiate.
	Query string
	// KindMonitor: the forwarded raw event.
	Mon *Monitor
}

// Monitor is a raw self-monitoring event in transport form (M1 when IsM2 is
// false). The services layer converts between this and the engine's event
// types, keeping transport free of engine dependencies.
type Monitor struct {
	IsM2     bool
	Fragment string
	Instance int
	Node     simnet.NodeID
	// M1 payload.
	CostMs      float64
	WaitMs      float64
	Selectivity float64
	Produced    int64
	// M2 payload.
	ConsumerFragment string
	ConsumerInstance int
	ConsumerNode     simnet.NodeID
	SendCostMs       float64
	TupleCount       int
}

// WireSize approximates the message's on-the-wire size in bytes, used to
// charge bandwidth on the simulated network. The constant term stands in
// for the paper's SOAP/HTTP envelope.
func (m *Message) WireSize() int {
	const envelope = 64
	n := envelope
	for _, t := range m.Tuples {
		n += t.ByteSize()
	}
	n += 4 * len(m.Buckets)
	if m.Ctrl != nil {
		n += 96 + 8*len(m.Ctrl.Weights) + 4*len(m.Ctrl.BucketMap) + 4*len(m.Ctrl.Buckets) + 8*len(m.Ctrl.Seqs)
		for _, seqs := range m.Ctrl.DiscardedSeqs {
			n += 8 + 8*len(seqs)
		}
	}
	n += len(m.Query)
	if m.Mon != nil {
		n += 96
	}
	return n
}

// CtrlOp enumerates adaptivity control operations (paper §3.1, Response).
type CtrlOp uint8

// Control operations.
const (
	// CtrlPause stops an exchange producer from sending; it acknowledges
	// after flushing its current buffer.
	CtrlPause CtrlOp = iota + 1
	// CtrlResume restarts a paused producer.
	CtrlResume
	// CtrlSetWeights installs a new workload distribution vector W' on a
	// weighted-policy producer (prospective redistribution, R2).
	CtrlSetWeights
	// CtrlSetBucketMap installs a new bucket→owner map on a hash-policy
	// producer.
	CtrlSetBucketMap
	// CtrlDiscard asks a consumer instance to remove still-unprocessed
	// queued tuples (optionally restricted to the given buckets) and
	// report their sequence numbers per input stream, so the producers can
	// re-route exactly those tuples from their recovery logs
	// (retrospective redistribution, R1). With an empty Exchange the
	// discard covers EVERY input exchange of the instance in one atomic
	// step — essential for stateful fragments, where filtering the build
	// queue ahead of the probe queue would let probes run against state
	// that has been removed from the build flow but not yet replayed.
	CtrlDiscard
	// CtrlEvict asks a consumer instance to drop the operator state
	// (hash-join build buckets) for the given buckets; the state is
	// recreated at the new owners from recovery-log replay.
	CtrlEvict
	// CtrlReplay asks a producer to retransmit all logged tuples of the
	// given buckets, routed by the new bucket map, marked Replay.
	CtrlReplay
	// CtrlResend asks a producer to retransmit the listed sequence numbers
	// (previously discarded by consumers) under the current policy.
	CtrlResend
	// CtrlProgress asks a producer for its routed count and the
	// optimiser's cardinality estimate, for progress estimation.
	CtrlProgress
	// CtrlReplayLost asks a producer to re-route every logged-but-unacked
	// tuple of a dead consumer instance (Peer) onto the surviving
	// instances under the current policy, then detach that instance
	// (elastic failover of a stateless exchange).
	CtrlReplayLost
	// CtrlDetachConsumer asks a producer to stop addressing a dead
	// consumer instance (Peer): no further flushes, checkpoints, or EOS to
	// it. Used on stateful exchanges after CtrlReplay has migrated the
	// dead instance's buckets.
	CtrlDetachConsumer
	// CtrlDetach tells a consumer that producer instance Peer is dead and
	// will never send EOS; the stream is closed synthetically. Queued
	// tuples from the dead producer stay valid — they derive from inputs
	// the dead instance had acknowledged, so dropping them would lose
	// rows.
	CtrlDetach
	// CtrlAttach asks a producer to add a new consumer instance (live
	// join): PeerNode/PeerService address it, Weights is the extended
	// distribution vector including the newcomer.
	CtrlAttach
	// CtrlExpectProducer tells a consumer to expect data from a new
	// producer instance at PeerNode/PeerService (live join of the
	// upstream fragment).
	CtrlExpectProducer
	// CtrlPing is a liveness probe; the endpoint replies OK. Heartbeat
	// probing sends it one-way and relies on the transport-level
	// reachability error for failure detection.
	CtrlPing
)

// String names the operation.
func (o CtrlOp) String() string {
	switch o {
	case CtrlPause:
		return "pause"
	case CtrlResume:
		return "resume"
	case CtrlSetWeights:
		return "set-weights"
	case CtrlSetBucketMap:
		return "set-bucket-map"
	case CtrlDiscard:
		return "discard"
	case CtrlEvict:
		return "evict"
	case CtrlReplay:
		return "replay"
	case CtrlResend:
		return "resend"
	case CtrlProgress:
		return "progress"
	case CtrlReplayLost:
		return "replay-lost"
	case CtrlDetachConsumer:
		return "detach-consumer"
	case CtrlDetach:
		return "detach"
	case CtrlAttach:
		return "attach"
	case CtrlExpectProducer:
		return "expect-producer"
	case CtrlPing:
		return "ping"
	default:
		return "invalid"
	}
}

// Ctrl is the payload of control requests and replies.
type Ctrl struct {
	Op        CtrlOp
	RequestID uint64
	// ReplyTo addresses the reply.
	ReplyTo      simnet.NodeID
	ReplyService string

	// Request payload (by Op).
	Weights   []float64
	BucketMap []int32
	Buckets   []int32
	Seqs      []int64
	Epoch     int
	// Peer is the instance index the membership operation targets
	// (CtrlReplayLost, CtrlDetachConsumer, CtrlDetach); PeerNode and
	// PeerService address a newly joined instance (CtrlAttach,
	// CtrlExpectProducer).
	Peer        int
	PeerNode    simnet.NodeID
	PeerService string

	// Reply payload.
	OK  bool
	Err string
	// CtrlProgress reply.
	Routed, Est int64
	// CtrlDiscard reply: discarded sequence numbers per input stream,
	// keyed by StreamKey(exchange, producerIdx).
	DiscardedSeqs map[string][]int64
}

// StreamKey names one producer→consumer stream in discard reports.
func StreamKey(exchange string, producerIdx int) string {
	return fmt.Sprintf("%s/%d", exchange, producerIdx)
}

// ParseStreamKey splits a StreamKey back into its parts.
func ParseStreamKey(key string) (exchange string, producerIdx int, err error) {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return "", 0, fmt.Errorf("transport: bad stream key %q", key)
	}
	idx, err := strconv.Atoi(key[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("transport: bad stream key %q", key)
	}
	return key[:i], idx, nil
}

// NodeDownError reports that a message could not be delivered because a
// machine has crash-stopped or become unreachable. It is the typed signal
// the elastic recovery path keys on: fault-tolerant producers treat it as
// "peer died" rather than a query-fatal transport fault, and the session's
// recovery manager uses Node to decide which evaluator to fail over.
type NodeDownError struct {
	Node simnet.NodeID
}

// Error implements error.
func (e *NodeDownError) Error() string {
	return fmt.Sprintf("transport: node %q is down", e.Node)
}

// Is lets errors.Is(err, ErrNodeDown) match any NodeDownError.
func (e *NodeDownError) Is(target error) bool { return target == ErrNodeDown }

// ErrNodeDown is the errors.Is target for NodeDownError.
var ErrNodeDown = errors.New("transport: node down")

// Handler consumes messages delivered to a registered service. Handlers
// must be quick (enqueue and return): they run on the sender's goroutine in
// the in-process transport and on the connection reader in the TCP one.
type Handler func(from simnet.NodeID, msg *Message)

// Transport moves messages between (node, service) endpoints.
type Transport interface {
	// Register installs a handler for a service on a node. Registering the
	// same endpoint twice replaces the handler.
	Register(node simnet.NodeID, service string, h Handler)
	// Unregister removes an endpoint; pending sends to it fail.
	Unregister(node simnet.NodeID, service string)
	// Send delivers msg from one node to a service on another, returning
	// the modelled transmission cost in paper milliseconds.
	Send(from, to simnet.NodeID, service string, msg *Message) (float64, error)
}
