package transport

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// InProc routes messages between services hosted in one process, charging
// the simulated network's link costs on the sender's goroutine — the same
// blocking-send behaviour the paper's exchange producers exhibit when
// shipping SOAP buffers, which is what the M2 monitoring events measure.
type InProc struct {
	net *simnet.Network

	mu        sync.RWMutex
	endpoints map[endpointKey]Handler
	// cut holds directed network partitions injected by the chaos
	// harness; a cut pair delivers NodeDownError exactly like a crashed
	// destination, but the isolated node itself keeps running.
	cut map[[2]simnet.NodeID]bool

	obsSent *obs.Counter
}

type endpointKey struct {
	node    simnet.NodeID
	service string
}

// NewInProc builds an in-process transport over the simulated network.
func NewInProc(net *simnet.Network) *InProc {
	return &InProc{
		net:       net,
		endpoints: make(map[endpointKey]Handler),
		cut:       make(map[[2]simnet.NodeID]bool),
		obsSent:   obs.Default().Counter(obs.Label(obs.MTransportMessages, "kind", "inproc")),
	}
}

// SetPartitioned injects (v=true) or heals (v=false) a directed network
// partition: sends from one node to the other fail with NodeDownError while
// both machines keep running. Chaos tests use it to model an evaluator that
// is alive but unreachable.
func (t *InProc) SetPartitioned(a, b simnet.NodeID, v bool) {
	t.mu.Lock()
	if v {
		t.cut[[2]simnet.NodeID{a, b}] = true
		t.cut[[2]simnet.NodeID{b, a}] = true
	} else {
		delete(t.cut, [2]simnet.NodeID{a, b})
		delete(t.cut, [2]simnet.NodeID{b, a})
	}
	t.mu.Unlock()
}

// Register implements Transport.
func (t *InProc) Register(node simnet.NodeID, service string, h Handler) {
	t.mu.Lock()
	t.endpoints[endpointKey{node, service}] = h
	t.mu.Unlock()
}

// Unregister implements Transport.
func (t *InProc) Unregister(node simnet.NodeID, service string) {
	t.mu.Lock()
	delete(t.endpoints, endpointKey{node, service})
	t.mu.Unlock()
}

// Send implements Transport. The link cost is paid before the handler runs,
// so delivery order per (from,to) pair follows real time.
func (t *InProc) Send(from, to simnet.NodeID, service string, msg *Message) (float64, error) {
	if n := t.net.Node(from); n != nil && !n.Alive() {
		return 0, &NodeDownError{Node: from}
	}
	if n := t.net.Node(to); n != nil && !n.Alive() {
		return 0, &NodeDownError{Node: to}
	}
	t.mu.RLock()
	h, ok := t.endpoints[endpointKey{to, service}]
	partitioned := t.cut[[2]simnet.NodeID{from, to}]
	t.mu.RUnlock()
	if partitioned {
		return 0, &NodeDownError{Node: to}
	}
	if !ok {
		return 0, fmt.Errorf("transport: no endpoint %q on node %q", service, to)
	}
	cost := t.net.Link(from, to).Transmit(t.net.Clock(), msg.WireSize())
	t.obsSent.Inc()
	h(from, msg)
	return cost, nil
}
