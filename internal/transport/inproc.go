package transport

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// InProc routes messages between services hosted in one process, charging
// the simulated network's link costs on the sender's goroutine — the same
// blocking-send behaviour the paper's exchange producers exhibit when
// shipping SOAP buffers, which is what the M2 monitoring events measure.
type InProc struct {
	net *simnet.Network

	mu        sync.RWMutex
	endpoints map[endpointKey]Handler

	obsSent *obs.Counter
}

type endpointKey struct {
	node    simnet.NodeID
	service string
}

// NewInProc builds an in-process transport over the simulated network.
func NewInProc(net *simnet.Network) *InProc {
	return &InProc{
		net:       net,
		endpoints: make(map[endpointKey]Handler),
		obsSent:   obs.Default().Counter(obs.Label(obs.MTransportMessages, "kind", "inproc")),
	}
}

// Register implements Transport.
func (t *InProc) Register(node simnet.NodeID, service string, h Handler) {
	t.mu.Lock()
	t.endpoints[endpointKey{node, service}] = h
	t.mu.Unlock()
}

// Unregister implements Transport.
func (t *InProc) Unregister(node simnet.NodeID, service string) {
	t.mu.Lock()
	delete(t.endpoints, endpointKey{node, service})
	t.mu.Unlock()
}

// Send implements Transport. The link cost is paid before the handler runs,
// so delivery order per (from,to) pair follows real time.
func (t *InProc) Send(from, to simnet.NodeID, service string, msg *Message) (float64, error) {
	t.mu.RLock()
	h, ok := t.endpoints[endpointKey{to, service}]
	t.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("transport: no endpoint %q on node %q", service, to)
	}
	cost := t.net.Link(from, to).Transmit(t.net.Clock(), msg.WireSize())
	t.obsSent.Inc()
	h(from, msg)
	return cost, nil
}
