package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/relation"
	"repro/internal/simnet"
)

// Wire format (all integers varint unless noted):
//
//	message := kind:byte exchange:str producerIdx consumerIdx epoch
//	           startSeq checkpoint replay:byte
//	           ntuples tuple* nbuckets bucket* nexcept except*
//	           hasCtrl:byte [ctrl]
//	ctrl    := op:byte requestID replyTo:str replyService:str
//	           nweights float64*  nbucketMap int32*  nbuckets int32*
//	           nseqs int64*  epoch ok:byte err:str routed est
//	           ndiscarded (key:int nseqs seq*)*
//	str     := len bytes
//
// Tuples use the relation codec. The format is self-contained; the TCP
// transport frames each message with a 4-byte big-endian length prefix.

// ErrWire is wrapped by unmarshalling errors.
var ErrWire = errors.New("transport: corrupt wire message")

// maxWirePrealloc caps slice capacities derived from wire-announced counts.
// The decoder's count() already bounds counts by the remaining input, but a
// large frame can still announce element counts whose slice would dwarf the
// payload (e.g. 8-byte int64s announced one-per-input-byte); growing by
// append from a capped capacity keeps allocation proportional to the bytes
// actually decoded.
const maxWirePrealloc = 4096

// preallocN bounds a wire-announced count for use as an initial capacity.
func preallocN(n int) int {
	if n > maxWirePrealloc {
		return maxWirePrealloc
	}
	return n
}

// MarshalMessage encodes a message into a fresh buffer.
func MarshalMessage(m *Message) []byte {
	return AppendMessage(make([]byte, 0, 256+32*len(m.Tuples)), m)
}

// AppendMessage appends the encoding of m to dst and returns the extended
// slice. Combined with relation.GetEncodeBuffer/PutEncodeBuffer this lets
// senders encode whole messages without allocating.
func AppendMessage(dst []byte, m *Message) []byte {
	b := dst
	b = append(b, byte(m.Kind))
	b = appendString(b, m.Exchange)
	b = binary.AppendVarint(b, int64(m.ProducerIdx))
	b = binary.AppendVarint(b, int64(m.ConsumerIdx))
	b = binary.AppendVarint(b, int64(m.Epoch))
	b = binary.AppendVarint(b, m.StartSeq)
	b = binary.AppendVarint(b, m.Checkpoint)
	b = appendBool(b, m.Replay)
	b = binary.AppendUvarint(b, uint64(len(m.Tuples)))
	for _, t := range m.Tuples {
		b = relation.AppendTuple(b, t)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Buckets)))
	for _, bk := range m.Buckets {
		b = binary.AppendVarint(b, int64(bk))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Except)))
	for _, s := range m.Except {
		b = binary.AppendVarint(b, s)
	}
	b = appendString(b, m.Query)
	if m.Mon != nil {
		b = appendBool(b, true)
		mo := m.Mon
		b = appendBool(b, mo.IsM2)
		b = appendString(b, mo.Fragment)
		b = binary.AppendVarint(b, int64(mo.Instance))
		b = appendString(b, string(mo.Node))
		b = binary.AppendUvarint(b, math.Float64bits(mo.CostMs))
		b = binary.AppendUvarint(b, math.Float64bits(mo.WaitMs))
		b = binary.AppendUvarint(b, math.Float64bits(mo.Selectivity))
		b = binary.AppendVarint(b, mo.Produced)
		b = appendString(b, mo.ConsumerFragment)
		b = binary.AppendVarint(b, int64(mo.ConsumerInstance))
		b = appendString(b, string(mo.ConsumerNode))
		b = binary.AppendUvarint(b, math.Float64bits(mo.SendCostMs))
		b = binary.AppendVarint(b, int64(mo.TupleCount))
	} else {
		b = appendBool(b, false)
	}
	if m.Ctrl == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	c := m.Ctrl
	b = append(b, byte(c.Op))
	b = binary.AppendUvarint(b, c.RequestID)
	b = appendString(b, string(c.ReplyTo))
	b = appendString(b, c.ReplyService)
	b = binary.AppendUvarint(b, uint64(len(c.Weights)))
	for _, w := range c.Weights {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w))
	}
	b = binary.AppendUvarint(b, uint64(len(c.BucketMap)))
	for _, o := range c.BucketMap {
		b = binary.AppendVarint(b, int64(o))
	}
	b = binary.AppendUvarint(b, uint64(len(c.Buckets)))
	for _, o := range c.Buckets {
		b = binary.AppendVarint(b, int64(o))
	}
	b = binary.AppendUvarint(b, uint64(len(c.Seqs)))
	for _, s := range c.Seqs {
		b = binary.AppendVarint(b, s)
	}
	b = binary.AppendVarint(b, int64(c.Epoch))
	b = appendBool(b, c.OK)
	b = appendString(b, c.Err)
	b = binary.AppendVarint(b, c.Routed)
	b = binary.AppendVarint(b, c.Est)
	b = binary.AppendUvarint(b, uint64(len(c.DiscardedSeqs)))
	for k, seqs := range c.DiscardedSeqs {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, uint64(len(seqs)))
		for _, s := range seqs {
			b = binary.AppendVarint(b, s)
		}
	}
	return b
}

// UnmarshalMessage decodes a message produced by MarshalMessage.
func UnmarshalMessage(b []byte) (*Message, error) {
	return UnmarshalMessageArena(nil, b)
}

// UnmarshalMessageArena decodes like UnmarshalMessage but carves tuple
// storage from the caller's arena (nil falls back to per-tuple allocation).
// Long-lived receive loops pass a per-connection arena so decoding a data
// frame costs one Value-block allocation per ~1k values instead of one
// allocation per tuple.
func UnmarshalMessageArena(a *relation.Arena, b []byte) (*Message, error) {
	d := &decoder{b: b}
	m := &Message{}
	m.Kind = Kind(d.byte())
	m.Exchange = d.str()
	m.ProducerIdx = int(d.varint())
	m.ConsumerIdx = int(d.varint())
	m.Epoch = int(d.varint())
	m.StartSeq = d.varint()
	m.Checkpoint = d.varint()
	m.Replay = d.bool()
	if n := d.count(); n > 0 {
		m.Tuples = make([]relation.Tuple, 0, preallocN(n))
		for i := 0; i < n && d.err == nil; i++ {
			var (
				t    relation.Tuple
				rest []byte
				err  error
			)
			if a != nil {
				t, rest, err = relation.DecodeTupleInto(a, d.b)
			} else {
				t, rest, err = relation.DecodeTuple(d.b)
			}
			if err != nil {
				return nil, fmt.Errorf("%w: tuple %d: %v", ErrWire, i, err)
			}
			d.b = rest
			m.Tuples = append(m.Tuples, t)
		}
	}
	if n := d.count(); n > 0 {
		m.Buckets = make([]int32, 0, preallocN(n))
		for i := 0; i < n; i++ {
			m.Buckets = append(m.Buckets, int32(d.varint()))
		}
	}
	if n := d.count(); n > 0 {
		m.Except = make([]int64, 0, preallocN(n))
		for i := 0; i < n; i++ {
			m.Except = append(m.Except, d.varint())
		}
	}
	m.Query = d.str()
	if d.bool() {
		mo := &Monitor{}
		mo.IsM2 = d.bool()
		mo.Fragment = d.str()
		mo.Instance = int(d.varint())
		mo.Node = simnet.NodeID(d.str())
		mo.CostMs = math.Float64frombits(d.uvarint())
		mo.WaitMs = math.Float64frombits(d.uvarint())
		mo.Selectivity = math.Float64frombits(d.uvarint())
		mo.Produced = d.varint()
		mo.ConsumerFragment = d.str()
		mo.ConsumerInstance = int(d.varint())
		mo.ConsumerNode = simnet.NodeID(d.str())
		mo.SendCostMs = math.Float64frombits(d.uvarint())
		mo.TupleCount = int(d.varint())
		m.Mon = mo
	}
	if d.bool() {
		c := &Ctrl{}
		c.Op = CtrlOp(d.byte())
		c.RequestID = d.uvarint()
		c.ReplyTo = simnet.NodeID(d.str())
		c.ReplyService = d.str()
		if n := d.count(); n > 0 {
			c.Weights = make([]float64, 0, preallocN(n))
			for i := 0; i < n; i++ {
				c.Weights = append(c.Weights, d.float64())
			}
		}
		if n := d.count(); n > 0 {
			c.BucketMap = make([]int32, 0, preallocN(n))
			for i := 0; i < n; i++ {
				c.BucketMap = append(c.BucketMap, int32(d.varint()))
			}
		}
		if n := d.count(); n > 0 {
			c.Buckets = make([]int32, 0, preallocN(n))
			for i := 0; i < n; i++ {
				c.Buckets = append(c.Buckets, int32(d.varint()))
			}
		}
		if n := d.count(); n > 0 {
			c.Seqs = make([]int64, 0, preallocN(n))
			for i := 0; i < n; i++ {
				c.Seqs = append(c.Seqs, d.varint())
			}
		}
		c.Epoch = int(d.varint())
		c.OK = d.bool()
		c.Err = d.str()
		c.Routed = d.varint()
		c.Est = d.varint()
		if n := d.count(); n > 0 {
			c.DiscardedSeqs = make(map[string][]int64, preallocN(n))
			for i := 0; i < n && d.err == nil; i++ {
				k := d.str()
				cnt := d.count()
				seqs := make([]int64, 0, preallocN(cnt))
				for j := 0; j < cnt; j++ {
					seqs = append(seqs, d.varint())
				}
				c.DiscardedSeqs[k] = seqs
			}
		}
		m.Ctrl = c
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(d.b))
	}
	if !validKind(m.Kind) {
		return nil, fmt.Errorf("%w: bad kind %d", ErrWire, m.Kind)
	}
	return m, nil
}

func validKind(k Kind) bool { return k >= KindData && k <= KindMonitor }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// decoder reads the wire format with sticky errors.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated", ErrWire)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a length, bounding it by the remaining input to stop
// adversarial allocations.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b))+1 {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *decoder) float64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string {
	n := d.count()
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
