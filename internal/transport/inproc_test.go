package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

func newTestNet() *simnet.Network {
	net := simnet.NewNetwork(vtime.NewClock(10 * time.Microsecond))
	net.AddNode("a")
	net.AddNode("b")
	return net
}

func TestInProcDelivery(t *testing.T) {
	tr := NewInProc(newTestNet())
	var got *Message
	var from simnet.NodeID
	tr.Register("b", "frag/F2#0", func(f simnet.NodeID, m *Message) {
		from, got = f, m
	})
	msg := &Message{
		Kind:     KindData,
		Exchange: "E1",
		StartSeq: 7,
		Tuples:   []relation.Tuple{{relation.Int(1)}, {relation.Int(2)}},
	}
	cost, err := tr.Send("a", "b", "frag/F2#0", msg)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || from != "a" || got.StartSeq != 7 || len(got.Tuples) != 2 {
		t.Fatalf("delivered %+v from %q", got, from)
	}
	if cost <= 0 {
		t.Errorf("cost = %v, want > 0 (cross-node)", cost)
	}
}

func TestInProcUnknownEndpoint(t *testing.T) {
	tr := NewInProc(newTestNet())
	if _, err := tr.Send("a", "b", "nope", &Message{Kind: KindEOS}); err == nil {
		t.Fatal("expected error")
	}
}

func TestInProcUnregister(t *testing.T) {
	tr := NewInProc(newTestNet())
	tr.Register("b", "s", func(simnet.NodeID, *Message) {})
	tr.Unregister("b", "s")
	if _, err := tr.Send("a", "b", "s", &Message{Kind: KindEOS}); err == nil {
		t.Fatal("expected error after Unregister")
	}
}

func TestInProcSameNodeIsFree(t *testing.T) {
	tr := NewInProc(newTestNet())
	tr.Register("a", "s", func(simnet.NodeID, *Message) {})
	cost, err := tr.Send("a", "a", "s", &Message{Kind: KindData})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("loopback cost = %v, want 0 (paper: same-machine communication cost is zero)", cost)
	}
}

func TestInProcCostScalesWithSize(t *testing.T) {
	tr := NewInProc(newTestNet())
	tr.Register("b", "s", func(simnet.NodeID, *Message) {})
	small := &Message{Kind: KindData}
	bigTuples := make([]relation.Tuple, 500)
	for i := range bigTuples {
		bigTuples[i] = relation.Tuple{relation.String("MALSTQWKDEFGHIRNPVYCMALSTQWKDEFGHIRNPVYC")}
	}
	big := &Message{Kind: KindData, Tuples: bigTuples}
	cSmall, _ := tr.Send("a", "b", "s", small)
	cBig, _ := tr.Send("a", "b", "s", big)
	if cBig <= cSmall {
		t.Errorf("big buffer cost %v should exceed small %v", cBig, cSmall)
	}
}

func TestInProcConcurrentSend(t *testing.T) {
	tr := NewInProc(newTestNet())
	var mu sync.Mutex
	count := 0
	tr.Register("b", "s", func(simnet.NodeID, *Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := tr.Send("a", "b", "s", &Message{Kind: KindData}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if count != 400 {
		t.Fatalf("delivered %d, want 400", count)
	}
}

func TestWireSize(t *testing.T) {
	m := &Message{Kind: KindData}
	base := m.WireSize()
	if base <= 0 {
		t.Fatal("empty message should still cost an envelope")
	}
	m.Tuples = []relation.Tuple{{relation.String("abcd")}}
	m.Buckets = []int32{3}
	if m.WireSize() <= base {
		t.Error("tuples must add size")
	}
	c := &Message{Kind: KindControl, Ctrl: &Ctrl{
		Op: CtrlDiscard, Weights: []float64{0.5, 0.5},
		DiscardedSeqs: map[string][]int64{"E1/0": {1, 2, 3}},
	}}
	if c.WireSize() <= base {
		t.Error("ctrl must add size")
	}
}

func TestKindAndOpStrings(t *testing.T) {
	kinds := map[Kind]string{KindData: "data", KindEOS: "eos", KindAck: "ack",
		KindControl: "control", KindReply: "reply", Kind(0): "invalid"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
	ops := map[CtrlOp]string{CtrlPause: "pause", CtrlResume: "resume",
		CtrlSetWeights: "set-weights", CtrlSetBucketMap: "set-bucket-map",
		CtrlDiscard: "discard", CtrlEvict: "evict", CtrlReplay: "replay",
		CtrlResend: "resend", CtrlProgress: "progress", CtrlOp(0): "invalid"}
	for o, want := range ops {
		if o.String() != want {
			t.Errorf("CtrlOp(%d) = %q", o, o.String())
		}
	}
}
