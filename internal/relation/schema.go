// Package relation defines the tuple and schema model used throughout the
// query processor: typed columns, tuples, a compact binary codec used by the
// exchange operators when shipping buffers between evaluators, and the hash
// functions that drive partitioned parallelism.
package relation

import (
	"fmt"
	"strings"
)

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// TInt is a 64-bit signed integer column.
	TInt Type = iota + 1
	// TFloat is a 64-bit IEEE-754 column.
	TFloat
	// TString is a variable-length UTF-8 column.
	TString
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "DOUBLE"
	case TString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined column types.
func (t Type) Valid() bool { return t >= TInt && t <= TString }

// Column describes a single attribute of a relation.
type Column struct {
	// Name is the bare attribute name, e.g. "ORF".
	Name string
	// Table is the relation (or alias) the attribute belongs to; it may be
	// empty for computed columns such as the result of an operation call.
	Table string
	// Type is the column's value type.
	Type Type
}

// QualifiedName returns "table.name" when a table qualifier is present and
// the bare name otherwise.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing the tuples of a stream.
type Schema struct {
	cols []Column
}

// NewSchema builds a schema from the given columns. The column slice is
// copied, so the caller may reuse it.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: make([]Column, len(cols))}
	copy(s.cols, cols)
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// IndexOf resolves an attribute reference to a column ordinal. The reference
// may be qualified ("p.ORF") or bare ("ORF"); a bare reference matches any
// table qualifier but must be unambiguous. It returns -1 when the reference
// does not resolve, and an error describing why.
func (s *Schema) IndexOf(table, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("relation: ambiguous column reference %q", ref(table, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("relation: unknown column %q", ref(table, name))
	}
	return found, nil
}

func ref(table, name string) string {
	if table == "" {
		return name
	}
	return table + "." + name
}

// Project returns a new schema containing the columns at the given ordinals.
func (s *Schema) Project(ordinals []int) *Schema {
	cols := make([]Column, len(ordinals))
	for i, o := range ordinals {
		cols[i] = s.cols[o]
	}
	return &Schema{cols: cols}
}

// Concat returns the schema of the concatenation of tuples of s and t, as
// produced by a join.
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(t.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, t.cols...)
	return &Schema{cols: cols}
}

// WithAlias returns a copy of the schema with every column's table qualifier
// replaced by alias. It is used when a base table is referenced under an
// alias in a query ("protein_sequences p").
func (s *Schema) WithAlias(alias string) *Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		c.Table = alias
		cols[i] = c
	}
	return &Schema{cols: cols}
}

// String renders the schema as "(table.col TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != t.cols[i] {
			return false
		}
	}
	return true
}
