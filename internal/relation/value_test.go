package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("Int round trip")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip")
	}
	if String("orf").AsString() != "orf" {
		t.Error("String round trip")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("Int should widen to float")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AsInt on string":    func() { String("x").AsInt() },
		"AsString on int":    func() { Int(1).AsString() },
		"AsFloat on string":  func() { String("x").AsFloat() },
		"Compare str vs int": func() { String("x").Compare(Int(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValueFormat(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(-3), "-3"},
		{Float(0.5), "0.5"},
		{String("MAL"), "MAL"},
	}
	for _, tc := range tests {
		if got := tc.v.Format(); got != tc.want {
			t.Errorf("Format(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3)) || !Float(3).Equal(Int(3)) {
		t.Error("3 == 3.0 should hold across numeric types")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 != 3.5")
	}
	if Int(3).Equal(String("3")) {
		t.Error("int should not equal string")
	}
	if !Null.Equal(Null) || Null.Equal(Int(0)) {
		t.Error("NULL equality")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Null, Int(1), -1},
		{Int(1), Null, 1},
		{Null, Null, 0},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a.Format(), tc.b.Format(), got, tc.want)
		}
	}
}

func TestValueHashEqualImpliesSameHash(t *testing.T) {
	if Int(3).Hash() != Float(3).Hash() {
		t.Error("3 and 3.0 must hash equally (they compare equal)")
	}
	if Int(3).Hash() == Int(4).Hash() {
		t.Error("suspicious collision for tiny ints")
	}
	// Property: for random int64 values, int/float hash agreement holds
	// whenever the float image is exact.
	prop := func(v int32) bool {
		return Int(int64(v)).Hash() == Float(float64(v)).Hash()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestValueHashLargeFloat(t *testing.T) {
	// Non-integral and huge floats take the raw-bits path; just make sure
	// the hash is stable and does not panic.
	vals := []float64{math.Pi, 1e300, -1e300, math.Inf(1), math.MaxFloat64}
	for _, f := range vals {
		if Float(f).Hash() != Float(f).Hash() {
			t.Errorf("hash of %g not stable", f)
		}
	}
}

func TestValueHashDeterminism(t *testing.T) {
	prop := func(s string) bool { return String(s).Hash() == String(s).Hash() }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
