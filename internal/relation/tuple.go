package relation

import (
	"strings"
)

// Tuple is an ordered list of values conforming to some schema. Tuples are
// immutable by convention: operators build new tuples rather than mutating
// received ones, so a tuple may be shared between an operator's output, a
// recovery log, and an in-flight buffer without copying.
type Tuple []Value

// Clone returns a deep-enough copy of the tuple (values are value types, so
// a slice copy suffices).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of t and u, as produced by a join.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Project returns a new tuple with the values at the given ordinals.
func (t Tuple) Project(ordinals []int) Tuple {
	out := make(Tuple, len(ordinals))
	for i, o := range ordinals {
		out[i] = t[o]
	}
	return out
}

// Equal reports whether two tuples have equal values position-wise.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Hash combines the hashes of the values at the given key ordinals. It is
// the partitioning hash used by hash-distribution policies and hash joins:
// equal keys always land in the same partition regardless of the values in
// non-key columns. Each column hash is folded with a single splitmix64
// round rather than a per-byte FNV loop, so the combine step costs three
// multiplies per column instead of eight shift/xor/multiply rounds.
func (t Tuple) Hash(keyOrdinals []int) uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, o := range keyOrdinals {
		h = mix64(h ^ t[o].Hash())
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64,
// so low-bit bucket assignment (h % buckets) stays uniform even for
// sequential or low-entropy value hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Format renders the tuple as "(v1, v2, ...)" for logs and examples.
func (t Tuple) Format() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Format())
	}
	b.WriteByte(')')
	return b.String()
}

// Key renders the tuple as a canonical string usable as a map key in tests
// that compare result multisets.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte(v.typ))
		b.WriteString(v.Format())
	}
	return b.String()
}

// ByteSize returns an estimate of the wire size of the tuple in bytes; the
// simulated network charges bandwidth by this size.
func (t Tuple) ByteSize() int {
	n := 2 // count header
	for _, v := range t {
		switch v.typ {
		case TInt, TFloat:
			n += 9
		case TString:
			n += 5 + len(v.s)
		default:
			n++
		}
	}
	return n
}
