package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randTuple produces an arbitrary tuple for property tests; it is the shared
// generator used by the codec tests below too.
func randTuple(r *rand.Rand) Tuple {
	n := r.Intn(6)
	t := make(Tuple, n)
	for i := range t {
		switch r.Intn(4) {
		case 0:
			t[i] = Null
		case 1:
			t[i] = Int(r.Int63() - r.Int63())
		case 2:
			t[i] = Float(r.NormFloat64() * 1e6)
		default:
			b := make([]byte, r.Intn(20))
			for j := range b {
				b[j] = byte('A' + r.Intn(26))
			}
			t[i] = String(string(b))
		}
	}
	return t
}

// tupleGen adapts randTuple to testing/quick.
type tupleGen struct{ T Tuple }

func (tupleGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(tupleGen{T: randTuple(r)})
}

func TestTupleCloneIsIndependent(t *testing.T) {
	orig := Tuple{Int(1), String("x")}
	c := orig.Clone()
	c[0] = Int(99)
	if orig[0].AsInt() != 1 {
		t.Fatal("Clone shares backing array")
	}
	if !orig.Equal(Tuple{Int(1), String("x")}) {
		t.Fatal("original mutated")
	}
}

func TestTupleConcatProject(t *testing.T) {
	a := Tuple{Int(1), Int(2)}
	b := Tuple{String("x")}
	c := a.Concat(b)
	if !c.Equal(Tuple{Int(1), Int(2), String("x")}) {
		t.Fatalf("Concat = %v", c.Format())
	}
	p := c.Project([]int{2, 0})
	if !p.Equal(Tuple{String("x"), Int(1)}) {
		t.Fatalf("Project = %v", p.Format())
	}
}

func TestTupleEqual(t *testing.T) {
	if !(Tuple{Int(1)}).Equal(Tuple{Float(1)}) {
		t.Error("numeric cross-type tuple equality should hold")
	}
	if (Tuple{Int(1)}).Equal(Tuple{Int(1), Int(2)}) {
		t.Error("length mismatch must not be equal")
	}
}

func TestTupleHashKeyOnly(t *testing.T) {
	// Same join key, different payload => same hash.
	a := Tuple{String("ORF1"), String("payloadA")}
	b := Tuple{String("ORF1"), String("payloadB")}
	if a.Hash([]int{0}) != b.Hash([]int{0}) {
		t.Error("hash must depend only on key ordinals")
	}
	if a.Hash([]int{0, 1}) == b.Hash([]int{0, 1}) {
		t.Error("hash should differ when payload is part of the key")
	}
}

func TestTupleHashProperty(t *testing.T) {
	// Property: equal key values => equal hash, for random tuples.
	prop := func(g tupleGen) bool {
		tp := g.T
		if len(tp) == 0 {
			return true
		}
		keys := []int{0}
		return tp.Hash(keys) == tp.Clone().Hash(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTupleFormatAndKey(t *testing.T) {
	tp := Tuple{Int(1), String("x"), Null}
	if got := tp.Format(); got != "(1, x, NULL)" {
		t.Errorf("Format = %q", got)
	}
	// Key must distinguish types even when Format collides.
	if (Tuple{Int(1)}).Key() == (Tuple{String("1")}).Key() {
		t.Error("Key must be type-aware")
	}
}

func TestTupleByteSizePositive(t *testing.T) {
	prop := func(g tupleGen) bool {
		sz := g.T.ByteSize()
		return sz >= 2 && sz >= len(g.T)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
