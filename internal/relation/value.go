package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Value is a single typed datum. The zero Value is the NULL of type 0.
// Values are small and passed by copy.
type Value struct {
	typ Type
	i   int64   // TInt payload
	f   float64 // TFloat payload
	s   string  // TString payload
}

// Int returns a TInt value.
func Int(v int64) Value { return Value{typ: TInt, i: v} }

// Float returns a TFloat value.
func Float(v float64) Value { return Value{typ: TFloat, f: v} }

// String returns a TString value.
func String(v string) Value { return Value{typ: TString, s: v} }

// Null is the untyped null value.
var Null = Value{}

// Type returns the value's type; 0 for NULL.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == 0 }

// AsInt returns the integer payload. It panics if the value is not a TInt;
// use Type to check first when the type is not statically known.
func (v Value) AsInt() int64 {
	if v.typ != TInt {
		panic(fmt.Sprintf("relation: AsInt on %v value", v.typ))
	}
	return v.i
}

// AsFloat returns the float payload, widening TInt values.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TFloat:
		return v.f
	case TInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("relation: AsFloat on %v value", v.typ))
	}
}

// AsString returns the string payload. It panics if the value is not a
// TString.
func (v Value) AsString() string {
	if v.typ != TString {
		panic(fmt.Sprintf("relation: AsString on %v value", v.typ))
	}
	return v.s
}

// Format renders the value for display: NULL, decimal integers, shortest
// round-trip floats, and raw strings.
func (v Value) Format() string {
	switch v.typ {
	case 0:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return v.s
	default:
		return fmt.Sprintf("<bad value type %d>", uint8(v.typ))
	}
}

// Equal reports deep equality of two values. NULL equals only NULL (this is
// the equality used for hash-join keys, not three-valued SQL logic; the
// planner never routes NULL keys to the join when the predicate is an
// equi-join, because Compare filters them).
func (v Value) Equal(w Value) bool {
	if v.typ != w.typ {
		// Allow numeric cross-type equality so that join keys of mixed
		// integer/float columns behave as SQL users expect.
		if (v.typ == TInt || v.typ == TFloat) && (w.typ == TInt || w.typ == TFloat) {
			return v.AsFloat() == w.AsFloat()
		}
		return false
	}
	switch v.typ {
	case 0:
		return true
	case TInt:
		return v.i == w.i
	case TFloat:
		return v.f == w.f
	case TString:
		return v.s == w.s
	}
	return false
}

// Compare orders two values of the same broad type: -1, 0, +1. NULL sorts
// before every non-NULL value. Comparing a string with a number panics; the
// planner type-checks predicates so this is unreachable for valid plans.
func (v Value) Compare(w Value) int {
	if v.IsNull() || w.IsNull() {
		switch {
		case v.IsNull() && w.IsNull():
			return 0
		case v.IsNull():
			return -1
		default:
			return 1
		}
	}
	if v.typ == TString || w.typ == TString {
		if v.typ != TString || w.typ != TString {
			panic("relation: comparing string with non-string")
		}
		switch {
		case v.s < w.s:
			return -1
		case v.s > w.s:
			return 1
		default:
			return 0
		}
	}
	a, b := v.AsFloat(), w.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// FNV-1a parameters, inlined so hashing allocates nothing (hash/fnv's
// digest objects escape to the heap when used through the hash.Hash64
// interface, which showed up as one allocation per hashed value on every
// route and join probe).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a 64-bit hash of the value, suitable for partitioning.
// Numeric values that compare equal hash equally (ints are hashed via their
// float64 image when they fit exactly, which all demo data does). The byte
// stream hashed is identical to the pre-vectorization fnv.New64a encoding,
// keeping value hashes stable across the rewrite.
func (v Value) Hash() uint64 {
	switch v.typ {
	case 0:
		return fnvByte(fnvOffset64, 0)
	case TInt:
		return fnvUint64(fnvByte(fnvOffset64, 1), uint64(v.i))
	case TFloat:
		// Same tag as TInt so 3 and 3.0 collide.
		if f := v.f; f == math.Trunc(f) && math.Abs(f) < 1<<62 {
			return fnvUint64(fnvByte(fnvOffset64, 1), uint64(int64(f)))
		}
		return fnvUint64(fnvByte(fnvOffset64, 1), math.Float64bits(v.f))
	case TString:
		h := fnvByte(fnvOffset64, 3)
		for i := 0; i < len(v.s); i++ {
			h = fnvByte(h, v.s[i])
		}
		return h
	}
	return fnvOffset64
}

// fnvByte folds one byte into an FNV-1a state.
func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// fnvUint64 folds eight little-endian bytes into an FNV-1a state.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}
