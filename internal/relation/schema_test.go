package relation

import (
	"strings"
	"testing"
)

func proteinSchema() *Schema {
	return NewSchema(
		Column{Table: "p", Name: "ORF", Type: TString},
		Column{Table: "p", Name: "sequence", Type: TString},
		Column{Table: "p", Name: "length", Type: TInt},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := proteinSchema()
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := s.Column(1).QualifiedName(); got != "p.sequence" {
		t.Errorf("Column(1) = %q, want p.sequence", got)
	}
	if got := s.String(); !strings.Contains(got, "p.ORF VARCHAR") {
		t.Errorf("String() = %q, missing p.ORF VARCHAR", got)
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := proteinSchema()
	tests := []struct {
		table, name string
		want        int
		wantErr     bool
	}{
		{"p", "ORF", 0, false},
		{"", "ORF", 0, false},
		{"p", "orf", 0, false}, // case-insensitive
		{"", "length", 2, false},
		{"q", "ORF", -1, true},
		{"", "missing", -1, true},
	}
	for _, tc := range tests {
		got, err := s.IndexOf(tc.table, tc.name)
		if (err != nil) != tc.wantErr {
			t.Errorf("IndexOf(%q,%q) err = %v, wantErr %v", tc.table, tc.name, err, tc.wantErr)
			continue
		}
		if got != tc.want {
			t.Errorf("IndexOf(%q,%q) = %d, want %d", tc.table, tc.name, got, tc.want)
		}
	}
}

func TestSchemaIndexOfAmbiguous(t *testing.T) {
	s := NewSchema(
		Column{Table: "a", Name: "x", Type: TInt},
		Column{Table: "b", Name: "x", Type: TInt},
	)
	if _, err := s.IndexOf("", "x"); err == nil {
		t.Fatal("expected ambiguity error for bare x")
	}
	if i, err := s.IndexOf("b", "x"); err != nil || i != 1 {
		t.Fatalf("IndexOf(b.x) = %d, %v; want 1, nil", i, err)
	}
}

func TestSchemaProjectConcatAlias(t *testing.T) {
	s := proteinSchema()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Column(0).Name != "length" || p.Column(1).Name != "ORF" {
		t.Fatalf("Project = %v", p)
	}
	other := NewSchema(Column{Table: "i", Name: "ORF1", Type: TString})
	c := s.Concat(other)
	if c.Len() != 4 || c.Column(3).QualifiedName() != "i.ORF1" {
		t.Fatalf("Concat = %v", c)
	}
	a := s.WithAlias("q")
	if a.Column(0).Table != "q" || s.Column(0).Table != "p" {
		t.Fatalf("WithAlias mutated original or failed: %v / %v", a, s)
	}
	if !s.Equal(proteinSchema()) || s.Equal(a) {
		t.Fatal("Equal misbehaves")
	}
}

func TestTypeString(t *testing.T) {
	for _, tc := range []struct {
		typ  Type
		want string
	}{{TInt, "INTEGER"}, {TFloat, "DOUBLE"}, {TString, "VARCHAR"}} {
		if got := tc.typ.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.typ, got, tc.want)
		}
		if !tc.typ.Valid() {
			t.Errorf("%v should be valid", tc.typ)
		}
	}
	if Type(0).Valid() || Type(99).Valid() {
		t.Error("invalid types reported valid")
	}
}
