package relation

import "sync"

// DefaultBatchSize is the tuple capacity of pooled batches. 256 tuples keeps
// a batch comfortably inside the L2 cache for the narrow tuples of the
// paper's workload while amortizing per-batch overheads (interface dispatch,
// mutex acquisitions, meter charges) over enough tuples that they vanish
// from profiles.
const DefaultBatchSize = 256

// Batch is a reusable container of tuples flowing between vectorized
// operators. Ownership rules (see DESIGN.md, "Batch execution model"):
//
//   - The batch CONTAINER (the Tuples slice header and its backing array of
//     slice headers) is owned by whoever allocated or Get()-ed it, is reused
//     across NextBatch calls, and must never be retained by a callee past
//     the call that received it.
//   - The TUPLES inside a batch remain immutable-once-published, exactly as
//     in the tuple-at-a-time engine: operators build new tuples instead of
//     mutating received ones, so a tuple handed to a recovery log, an
//     operator's hash-table state, or an in-flight wire buffer may be
//     retained indefinitely without copying.
//
// This split is what lets the exchange producer log and resend tuples from
// batched sends with zero copies while batch containers recycle through the
// pool.
type Batch struct {
	// Tuples holds the batch contents; len is the fill level.
	Tuples []Tuple
	// limit, when > 0, caps the fill level below cap(Tuples). The fragment
	// driver uses it to clamp batches to the remaining M1 monitoring window
	// without reallocating the container.
	limit int
}

// NewBatch returns an unpooled batch with the given tuple capacity.
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchSize
	}
	return &Batch{Tuples: make([]Tuple, 0, capacity)}
}

// batchPool recycles DefaultBatchSize containers.
var batchPool = sync.Pool{
	New: func() any { return NewBatch(DefaultBatchSize) },
}

// GetBatch returns an empty pooled batch of DefaultBatchSize capacity.
// Release it when done; a batch that is never released is merely garbage.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Reset()
	b.limit = 0
	return b
}

// Release clears the container and returns it to the pool. The caller must
// not touch the batch afterwards. Tuples referenced by the batch are NOT
// invalidated: only the container recycles.
func (b *Batch) Release() {
	b.Reset()
	b.limit = 0
	batchPool.Put(b)
}

// Reset empties the batch, dropping tuple references so the container does
// not pin memory while pooled.
func (b *Batch) Reset() {
	for i := range b.Tuples {
		b.Tuples[i] = nil
	}
	b.Tuples = b.Tuples[:0]
}

// Rewind empties the batch WITHOUT dropping tuple references. This is the
// cheap truncation operators use between successive fills, where the stale
// entries are about to be overwritten anyway; the leftover references pin
// tuples only until the next fill or Reset. Use Reset before pooling or
// parking a batch.
func (b *Batch) Rewind() { b.Tuples = b.Tuples[:0] }

// Append adds one tuple. Appending past Cap grows the container (the batch
// stays usable, it just stops being capacity-bounded), so producers filling
// a batch should check Full first.
func (b *Batch) Append(t Tuple) { b.Tuples = append(b.Tuples, t) }

// AppendAll adds a run of tuples with one bulk copy of the slice headers —
// measurably cheaper than per-tuple Append for reference-forwarding sources
// (one growth check and one write-barrier sweep instead of len(ts)).
func (b *Batch) AppendAll(ts []Tuple) { b.Tuples = append(b.Tuples, ts...) }

// Len reports the fill level.
func (b *Batch) Len() int { return len(b.Tuples) }

// Cap reports the effective capacity: the container capacity, or the
// explicit limit when one is set.
func (b *Batch) Cap() int {
	if b.limit > 0 && b.limit < cap(b.Tuples) {
		return b.limit
	}
	return cap(b.Tuples)
}

// Full reports whether the batch reached its effective capacity.
func (b *Batch) Full() bool { return len(b.Tuples) >= b.Cap() }

// SetLimit clamps the effective capacity to n tuples (0 removes the clamp).
func (b *Batch) SetLimit(n int) { b.limit = n }

// Arena amortizes output-tuple allocation for operators that construct new
// tuples (projections, joins, operation calls): instead of one make per
// tuple it carves tuples out of chunked []Value blocks. Carved tuples are
// ordinary immutable tuples and may outlive the arena — the arena never
// reuses handed-out memory, it only batches the allocations.
type Arena struct {
	buf []Value
}

// arenaChunk is the Values per allocation block: large enough to amortize,
// small enough not to strand much memory when mostly unused, and — at up to
// 48 bytes per Value — sized to stay under the runtime's 32KiB small-object
// threshold, so chunk allocation takes the malloc fast path instead of the
// large-object path (block scans allocate a chunk every few hundred tuples;
// the difference is visible in their profiles).
const arenaChunk = 640

// Alloc returns a zeroed tuple of n values carved from the arena.
func (a *Arena) Alloc(n int) Tuple {
	if n == 0 {
		return Tuple{}
	}
	if len(a.buf) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]Value, size)
	}
	t := Tuple(a.buf[:n:n])
	a.buf = a.buf[n:]
	return t
}
