package relation

import (
	"fmt"
	"testing"
)

func TestBatchAppendLenCap(t *testing.T) {
	b := NewBatch(4)
	if b.Len() != 0 || b.Cap() != 4 || b.Full() {
		t.Fatalf("fresh batch: len=%d cap=%d full=%v", b.Len(), b.Cap(), b.Full())
	}
	for i := 0; i < 4; i++ {
		b.Append(Tuple{Int(int64(i))})
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatalf("after 4 appends: len=%d full=%v", b.Len(), b.Full())
	}
	// Appending past capacity grows rather than dropping.
	b.Append(Tuple{Int(99)})
	if b.Len() != 5 {
		t.Fatalf("overflow append lost a tuple: len=%d", b.Len())
	}
}

func TestBatchLimit(t *testing.T) {
	b := NewBatch(8)
	b.SetLimit(3)
	if b.Cap() != 3 {
		t.Fatalf("limited cap = %d, want 3", b.Cap())
	}
	b.Append(Tuple{Int(1)})
	b.Append(Tuple{Int(2)})
	b.Append(Tuple{Int(3)})
	if !b.Full() {
		t.Fatal("batch at limit must report full")
	}
	b.SetLimit(0)
	if b.Cap() != 8 || b.Full() {
		t.Fatalf("unclamped cap = %d full=%v", b.Cap(), b.Full())
	}
	// A limit at or above the container capacity is a no-op.
	b.SetLimit(100)
	if b.Cap() != 8 {
		t.Fatalf("oversized limit changed cap to %d", b.Cap())
	}
}

func TestBatchResetDropsReferences(t *testing.T) {
	b := NewBatch(4)
	b.Append(Tuple{String("x")})
	backing := b.Tuples[:1]
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset left tuples")
	}
	if backing[0] != nil {
		t.Fatal("Reset must nil out tuple references so the pool does not pin them")
	}
}

func TestBatchPoolRecycles(t *testing.T) {
	b := GetBatch()
	if b.Len() != 0 || b.Cap() != DefaultBatchSize {
		t.Fatalf("pooled batch: len=%d cap=%d", b.Len(), b.Cap())
	}
	b.SetLimit(5)
	b.Append(Tuple{Int(1)})
	b.Release()
	// Whatever container comes back must be empty and unclamped.
	c := GetBatch()
	defer c.Release()
	if c.Len() != 0 || c.Cap() != DefaultBatchSize {
		t.Fatalf("recycled batch dirty: len=%d cap=%d", c.Len(), c.Cap())
	}
}

func TestArenaTuplesAreIndependent(t *testing.T) {
	var a Arena
	t1 := a.Alloc(2)
	t1[0], t1[1] = Int(1), Int(2)
	t2 := a.Alloc(2)
	t2[0], t2[1] = Int(3), Int(4)
	if t1[0].AsInt() != 1 || t1[1].AsInt() != 2 {
		t.Fatal("second Alloc clobbered the first tuple")
	}
	// Full-slice expressions must prevent append on one tuple from bleeding
	// into the next one's storage.
	grown := append(t1, Int(99))
	if t2[0].AsInt() != 3 {
		t.Fatalf("append to a carved tuple overwrote its neighbour: %v", grown)
	}
}

func TestArenaAllocSizes(t *testing.T) {
	var a Arena
	if got := a.Alloc(0); len(got) != 0 {
		t.Fatalf("Alloc(0) = %d values", len(got))
	}
	big := a.Alloc(arenaChunk * 2)
	if len(big) != arenaChunk*2 {
		t.Fatalf("oversized Alloc = %d values", len(big))
	}
	for _, v := range big {
		if !v.IsNull() {
			t.Fatal("Alloc returned non-zero values")
		}
	}
}

// TestHashBucketDistribution pins the satellite requirement on the
// multiply-mix hash: hashing 10k distinct keys must land every bucket within
// 5% of the uniform share. At 4 buckets the expected load is 2500, so the 5%
// bound sits at 2.9 standard deviations of an ideal random hash — a biased
// combiner fails it, a uniform one passes with margin. (At 16+ buckets the
// per-bucket binomial noise of even a perfect hash exceeds 5%, so a tight
// bound there would only measure luck.) The old per-byte FNV fold was
// uniform too; this proves the cheaper mix64 combiner did not regress skew.
func TestHashBucketDistribution(t *testing.T) {
	const (
		keys    = 10000
		buckets = 4
	)
	for name, mk := range map[string]func(i int) Tuple{
		"int":    func(i int) Tuple { return Tuple{Int(int64(i))} },
		"string": func(i int) Tuple { return Tuple{String(fmt.Sprintf("ORF%06d", i))} },
	} {
		counts := make([]int, buckets)
		for i := 0; i < keys; i++ {
			counts[mk(i).Hash([]int{0})%buckets]++
		}
		want := float64(keys) / buckets
		for b, c := range counts {
			skew := (float64(c) - want) / want
			if skew > 0.05 || skew < -0.05 {
				t.Errorf("%s keys: bucket %d holds %d of %d (%.1f%% off uniform, limit 5%%)",
					name, b, c, keys, skew*100)
			}
		}
	}
	// Coarse clustering check at the engine's default bucket count: with an
	// expected load of ~156 per bucket, any bucket drifting past ±30% would
	// signal structural bias rather than noise.
	counts := make([]int, 64)
	for i := 0; i < keys; i++ {
		counts[(Tuple{Int(int64(i))}).Hash([]int{0})%64]++
	}
	want := float64(keys) / 64
	for b, c := range counts {
		if f := float64(c); f < want*0.7 || f > want*1.3 {
			t.Errorf("64-bucket check: bucket %d holds %d, expected ~%.0f", b, c, want)
		}
	}
}

// TestHashCompositeKeys checks the mix64 combiner separates column
// permutations: multi-column keys must not collide just because they contain
// the same values in a different order.
func TestHashCompositeKeys(t *testing.T) {
	a := Tuple{Int(1), Int(2)}
	b := Tuple{Int(2), Int(1)}
	if a.Hash([]int{0, 1}) == b.Hash([]int{0, 1}) {
		t.Error("column order must affect composite hash")
	}
	if a.Hash([]int{0, 1}) != a.Hash([]int{0, 1}) {
		t.Error("hash must be deterministic")
	}
}
