package relation

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzTupleCodecRoundTrip feeds arbitrary bytes to the tuple decoder. The
// invariants: DecodeTuple never panics — corrupt input yields an error
// wrapping ErrCorrupt — and anything that decodes cleanly re-encodes to the
// same canonical bytes (byte equality rather than Tuple.Equal, because a
// fuzzed float payload can hold NaN, which never compares equal to itself).
func FuzzTupleCodecRoundTrip(f *testing.F) {
	f.Add(EncodeTuple(Tuple{}))
	f.Add(EncodeTuple(Tuple{Null}))
	f.Add(EncodeTuple(Tuple{Int(42), Int(-1)}))
	f.Add(EncodeTuple(Tuple{Float(3.25), Float(-1e300)}))
	f.Add(EncodeTuple(Tuple{String(""), String("ORF YAL00007C")}))
	f.Add(EncodeTuple(Tuple{Int(1), Float(2.5), String("x"), Null}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{2, 1})       // announces 2 values, holds half of one
	f.Add([]byte{1, 99})      // unknown value tag
	f.Add([]byte{1, 3, 0x80}) // string with non-terminating length varint
	f.Fuzz(func(t *testing.T, b []byte) {
		tp, rest, err := DecodeTuple(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		enc := EncodeTuple(tp)
		tp2, tail, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("re-decode of valid encoding failed: %v", err)
		}
		if len(tail) != 0 {
			t.Fatalf("re-decode left %d bytes", len(tail))
		}
		if !bytes.Equal(enc, EncodeTuple(tp2)) {
			t.Fatalf("round trip changed encoding: %x != %x", enc, EncodeTuple(tp2))
		}
		// A successful decode consumes at least the count byte, and rest
		// must be a true suffix of the input.
		if consumed := len(b) - len(rest); consumed < 1 || !bytes.HasSuffix(b, rest) {
			t.Fatalf("decoder consumed %d bytes of %d", consumed, len(b))
		}
	})
}

// FuzzTuplesCodecRoundTrip covers the count-prefixed batch framing the
// exchange and wire layers use.
func FuzzTuplesCodecRoundTrip(f *testing.F) {
	f.Add(EncodeTuples(nil))
	f.Add(EncodeTuples([]Tuple{{Int(1)}, {String("a"), Null}}))
	f.Add([]byte{0xfe, 0xff, 0xff, 0xff, 0x0f}) // huge count, no payload
	f.Fuzz(func(t *testing.T, b []byte) {
		ts, err := DecodeTuples(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		enc := EncodeTuples(ts)
		ts2, err := DecodeTuples(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(enc, EncodeTuples(ts2)) {
			t.Fatalf("round trip changed encoding: %x != %x", enc, EncodeTuples(ts2))
		}
	})
}
