package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// The binary tuple codec is used by the TCP transport when shipping buffers
// between evaluators and by tests that assert the wire representation is
// stable. The format is:
//
//	tuple   := count:uvarint value*
//	value   := tag:byte payload
//	tag 0   := NULL (no payload)
//	tag 1   := TInt, payload int64 zig-zag uvarint
//	tag 2   := TFloat, payload 8 bytes little-endian IEEE-754
//	tag 3   := TString, payload len:uvarint bytes
//
// The codec is self-describing, so a schema is not required for decoding.

// ErrCorrupt is returned (wrapped) when decoding malformed bytes.
var ErrCorrupt = errors.New("relation: corrupt tuple encoding")

// maxPrealloc caps capacity pre-allocations derived from wire-controlled
// counts. A corrupt (or hostile) header can still claim a huge element
// count, but decoders grow by append from at most this capacity instead of
// trusting the count, so the allocation is bounded by the actual input size.
const maxPrealloc = 4096

// preallocCount bounds a wire-announced element count for use as an initial
// slice capacity.
func preallocCount(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// encBufPool recycles encode buffers so steady-state encoding of buffers and
// messages allocates nothing. Pooled as *[]byte to avoid the slice-header
// allocation on Put.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetEncodeBuffer returns an empty pooled byte buffer for encoding. Return
// it with PutEncodeBuffer once its contents have been copied out or written.
func GetEncodeBuffer() []byte {
	return (*encBufPool.Get().(*[]byte))[:0]
}

// PutEncodeBuffer recycles a buffer obtained from GetEncodeBuffer (or any
// other buffer the caller no longer needs). The caller must not use b again.
func PutEncodeBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	encBufPool.Put(&b)
}

// AppendTuple appends the binary encoding of t to dst and returns the
// extended slice.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		switch v.typ {
		case 0:
			dst = append(dst, 0)
		case TInt:
			dst = append(dst, 1)
			dst = binary.AppendVarint(dst, v.i)
		case TFloat:
			dst = append(dst, 2)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case TString:
			dst = append(dst, 3)
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		default:
			panic(fmt.Sprintf("relation: encoding value of invalid type %d", v.typ))
		}
	}
	return dst
}

// EncodeTuple returns the binary encoding of t.
func EncodeTuple(t Tuple) []byte {
	return AppendTuple(make([]byte, 0, t.ByteSize()), t)
}

// DecodeTuple decodes one tuple from the front of b, returning the tuple and
// the remaining bytes.
func DecodeTuple(b []byte) (Tuple, []byte, error) {
	n, b, err := tupleHeader(b)
	if err != nil {
		return nil, b, err
	}
	return decodeValues(make(Tuple, 0, preallocCount(n)), n, b, "")
}

// DecodeTupleInto decodes one tuple from the front of b like DecodeTuple,
// carving the tuple's backing storage from the caller's arena instead of
// allocating it. The decoded tuple is an ordinary immutable tuple and may
// outlive the arena. Receive paths that decode many tuples per frame use
// this to batch the per-tuple allocations.
func DecodeTupleInto(a *Arena, b []byte) (Tuple, []byte, error) {
	n, b, err := tupleHeader(b)
	if err != nil {
		return nil, b, err
	}
	return decodeValues(a.Alloc(preallocCount(n))[:0], n, b, "")
}

// DecodeTupleShared decodes one tuple from the front of b like
// DecodeTupleInto, with one more allocation removed: string values are
// carved as substrings of base — the enclosing block's one-time string
// conversion — instead of being copied into fresh allocations. base must be
// the string conversion of the byte sequence b is an unconsumed suffix of
// (value offsets are derived as len(base)-len(b)). Carved tuples share
// base's backing, so retaining a tuple keeps its whole block's string
// alive; batch scans that decode hundreds of tuples per block and hand them
// to consuming operators take that trade for a per-block rather than
// per-value allocation count.
func DecodeTupleShared(a *Arena, base string, b []byte) (Tuple, []byte, error) {
	n, b, err := tupleHeader(b)
	if err != nil {
		return nil, b, err
	}
	return decodeValues(a.Alloc(preallocCount(n))[:0], n, b, base)
}

// DecodeTuplesShared is the vectorized form of DecodeTupleShared: it decodes
// tuples from the front of b straight into dst until dst is full or left
// tuples have been decoded, carving value slots from the arena and strings
// from base. Unlike DecodeTupleShared, base is mandatory here: it must be
// the string conversion of the byte sequence b is an unconsumed suffix of.
// sizes, when non-nil, is extended with the encoded byte size of each
// appended tuple (the scan cost model's per-tuple input) and returned; pass
// nil when sizes are not needed. The whole header/value loop is fused and
// index-based — one call and one bounds context per run of tuples instead
// of a three-deep call chain per tuple, which a tuple-at-a-time reader
// cannot amortize — so block scans use this as their hot path. Returns the
// undecoded remainder and how many of left remain.
func DecodeTuplesShared(a *Arena, base string, b []byte, left uint64, dst *Batch, sizes []int) ([]byte, uint64, []int, error) {
	// pos indexes b; baseOff+pos is the same byte's offset in base.
	baseOff := len(base) - len(b)
	pos := 0
	// The single-byte uvarint fast path is inlined by hand at each read
	// site (uvarintAt's wrapper is past the compiler's inlining budget);
	// it covers value counts, string lengths, and small ints — nearly
	// every varint of a realistic schema.
	for left > 0 && !dst.Full() {
		start := pos
		var n uint64
		if uint(pos) < uint(len(b)) && b[pos] < 0x80 {
			n, pos = uint64(b[pos]), pos+1
		} else {
			var p int
			if n, p = uvarintAtSlow(b, pos); p < 0 {
				return b[start:], left, sizes, fmt.Errorf("%w: bad value count", ErrCorrupt)
			}
			pos = p
		}
		if n > uint64(len(b)-pos) { // cheap sanity bound: ≥1 byte per value
			return b[start:], left, sizes, fmt.Errorf("%w: bad value count", ErrCorrupt)
		}
		t := a.Alloc(preallocCount(n))[:0]
		for i := uint64(0); i < n; i++ {
			if pos >= len(b) {
				return b[start:], left, sizes, fmt.Errorf("%w: truncated value", ErrCorrupt)
			}
			tag := b[pos]
			pos++
			switch tag {
			case 0:
				t = append(t, Null)
			case 1:
				var u uint64
				if uint(pos) < uint(len(b)) && b[pos] < 0x80 {
					u, pos = uint64(b[pos]), pos+1
				} else {
					var p int
					if u, p = uvarintAtSlow(b, pos); p < 0 {
						return b[start:], left, sizes, fmt.Errorf("%w: bad int", ErrCorrupt)
					}
					pos = p
				}
				v := int64(u >> 1) // inline zigzag decode (binary.Varint semantics)
				if u&1 != 0 {
					v = ^v
				}
				t = append(t, Int(v))
			case 2:
				if len(b)-pos < 8 {
					return b[start:], left, sizes, fmt.Errorf("%w: truncated float", ErrCorrupt)
				}
				t = append(t, Float(math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))))
				pos += 8
			case 3:
				var l uint64
				p := -1
				if uint(pos) < uint(len(b)) && b[pos] < 0x80 {
					l, p = uint64(b[pos]), pos+1
				} else {
					l, p = uvarintAtSlow(b, pos)
				}
				if p < 0 || l > uint64(len(b)-p) {
					return b[start:], left, sizes, fmt.Errorf("%w: bad string length", ErrCorrupt)
				}
				pos = p + int(l)
				t = append(t, String(base[baseOff+p:baseOff+pos]))
			default:
				return b[start:], left, sizes, fmt.Errorf("%w: unknown value tag %d", ErrCorrupt, tag)
			}
		}
		left--
		dst.Append(t)
		if sizes != nil {
			sizes = append(sizes, pos-start)
		}
	}
	return b[pos:], left, sizes, nil
}

// uvarintAtSlow is the multi-byte tail of the decode loop's hand-inlined
// single-byte uvarint fast path: uvarint reading at offset pos of b,
// returning the value and the offset just past it; a negative offset
// signals a malformed or truncated encoding. Callers reach it only when
// pos is out of range or b[pos] has the continuation bit set.
func uvarintAtSlow(b []byte, pos int) (uint64, int) {
	if pos+1 < len(b) && b[pos+1] < 0x80 && b[pos] >= 0x80 {
		return uint64(b[pos]&0x7f) | uint64(b[pos+1])<<7, pos + 2
	}
	v, sz := binary.Uvarint(b[pos:])
	if sz <= 0 {
		return 0, -1
	}
	return v, pos + sz
}

// tupleHeader reads and sanity-bounds a tuple's value count.
func tupleHeader(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, b, fmt.Errorf("%w: bad value count", ErrCorrupt)
	}
	if n > uint64(len(b)) { // cheap sanity bound: ≥1 byte per value
		return 0, b, fmt.Errorf("%w: value count %d exceeds input", ErrCorrupt, n)
	}
	return n, b[sz:], nil
}

// decodeValues appends n decoded values to t (pre-sized by the caller).
// When base is non-empty it must be the string conversion of the sequence b
// is a suffix of; string values are then carved from base instead of
// allocated (see DecodeTupleShared).
func decodeValues(t Tuple, n uint64, b []byte, base string) (Tuple, []byte, error) {
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, b, fmt.Errorf("%w: truncated value", ErrCorrupt)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case 0:
			t = append(t, Null)
		case 1:
			v, sz := binary.Varint(b)
			if sz <= 0 {
				return nil, b, fmt.Errorf("%w: bad int", ErrCorrupt)
			}
			b = b[sz:]
			t = append(t, Int(v))
		case 2:
			if len(b) < 8 {
				return nil, b, fmt.Errorf("%w: truncated float", ErrCorrupt)
			}
			t = append(t, Float(math.Float64frombits(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case 3:
			l, sz := binary.Uvarint(b)
			if sz <= 0 || l > uint64(len(b)-sz) {
				return nil, b, fmt.Errorf("%w: bad string length", ErrCorrupt)
			}
			b = b[sz:]
			if base != "" {
				off := len(base) - len(b)
				t = append(t, String(base[off:off+int(l)]))
			} else {
				t = append(t, String(string(b[:l])))
			}
			b = b[l:]
		default:
			return nil, b, fmt.Errorf("%w: unknown value tag %d", ErrCorrupt, tag)
		}
	}
	return t, b, nil
}

// AppendTuples appends the count-prefixed encoding of a tuple batch to dst
// and returns the extended slice — the batch encode entry point; combine
// with GetEncodeBuffer/PutEncodeBuffer to encode without allocating.
func AppendTuples(dst []byte, ts []Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = AppendTuple(dst, t)
	}
	return dst
}

// EncodeTuples encodes a slice of tuples back to back, prefixed by a count.
func EncodeTuples(ts []Tuple) []byte {
	size := 4
	for _, t := range ts {
		size += t.ByteSize()
	}
	return AppendTuples(make([]byte, 0, size), ts)
}

// TupleCount reads the count prefix of an AppendTuples/EncodeTuples
// encoding, returning the announced tuple count and the remaining bytes
// (the tuples themselves, decodable one at a time with DecodeTuple). It is
// the streaming entry point storage run readers use to walk a block without
// materializing every tuple first.
func TupleCount(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, b, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	if n > uint64(len(b)) {
		return 0, b, fmt.Errorf("%w: tuple count %d exceeds input", ErrCorrupt, n)
	}
	return n, b[sz:], nil
}

// DecodeTuples decodes a count-prefixed tuple sequence produced by
// EncodeTuples or AppendTuples.
func DecodeTuples(b []byte) ([]Tuple, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("%w: tuple count %d exceeds input", ErrCorrupt, n)
	}
	b = b[sz:]
	out := make([]Tuple, 0, preallocCount(n))
	for i := uint64(0); i < n; i++ {
		t, rest, err := DecodeTuple(b)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		out = append(out, t)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return out, nil
}

// DecodeTuplesInto decodes a count-prefixed tuple sequence from the front of
// b into the batch, returning the remaining bytes — the batch decode entry
// point. Unlike DecodeTuples it tolerates trailing bytes, so it composes
// inside larger wire messages.
func DecodeTuplesInto(dst *Batch, b []byte) ([]byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return b, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	if n > uint64(len(b)) {
		return b, fmt.Errorf("%w: tuple count %d exceeds input", ErrCorrupt, n)
	}
	b = b[sz:]
	dst.Reset()
	for i := uint64(0); i < n; i++ {
		t, rest, err := DecodeTuple(b)
		if err != nil {
			return b, fmt.Errorf("tuple %d: %w", i, err)
		}
		dst.Append(t)
		b = rest
	}
	return b, nil
}
