package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// The binary tuple codec is used by the TCP transport when shipping buffers
// between evaluators and by tests that assert the wire representation is
// stable. The format is:
//
//	tuple   := count:uvarint value*
//	value   := tag:byte payload
//	tag 0   := NULL (no payload)
//	tag 1   := TInt, payload int64 zig-zag uvarint
//	tag 2   := TFloat, payload 8 bytes little-endian IEEE-754
//	tag 3   := TString, payload len:uvarint bytes
//
// The codec is self-describing, so a schema is not required for decoding.

// ErrCorrupt is returned (wrapped) when decoding malformed bytes.
var ErrCorrupt = errors.New("relation: corrupt tuple encoding")

// maxPrealloc caps capacity pre-allocations derived from wire-controlled
// counts. A corrupt (or hostile) header can still claim a huge element
// count, but decoders grow by append from at most this capacity instead of
// trusting the count, so the allocation is bounded by the actual input size.
const maxPrealloc = 4096

// preallocCount bounds a wire-announced element count for use as an initial
// slice capacity.
func preallocCount(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// encBufPool recycles encode buffers so steady-state encoding of buffers and
// messages allocates nothing. Pooled as *[]byte to avoid the slice-header
// allocation on Put.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetEncodeBuffer returns an empty pooled byte buffer for encoding. Return
// it with PutEncodeBuffer once its contents have been copied out or written.
func GetEncodeBuffer() []byte {
	return (*encBufPool.Get().(*[]byte))[:0]
}

// PutEncodeBuffer recycles a buffer obtained from GetEncodeBuffer (or any
// other buffer the caller no longer needs). The caller must not use b again.
func PutEncodeBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	encBufPool.Put(&b)
}

// AppendTuple appends the binary encoding of t to dst and returns the
// extended slice.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		switch v.typ {
		case 0:
			dst = append(dst, 0)
		case TInt:
			dst = append(dst, 1)
			dst = binary.AppendVarint(dst, v.i)
		case TFloat:
			dst = append(dst, 2)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case TString:
			dst = append(dst, 3)
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		default:
			panic(fmt.Sprintf("relation: encoding value of invalid type %d", v.typ))
		}
	}
	return dst
}

// EncodeTuple returns the binary encoding of t.
func EncodeTuple(t Tuple) []byte {
	return AppendTuple(make([]byte, 0, t.ByteSize()), t)
}

// DecodeTuple decodes one tuple from the front of b, returning the tuple and
// the remaining bytes.
func DecodeTuple(b []byte) (Tuple, []byte, error) {
	n, b, err := tupleHeader(b)
	if err != nil {
		return nil, b, err
	}
	return decodeValues(make(Tuple, 0, preallocCount(n)), n, b)
}

// DecodeTupleInto decodes one tuple from the front of b like DecodeTuple,
// carving the tuple's backing storage from the caller's arena instead of
// allocating it. The decoded tuple is an ordinary immutable tuple and may
// outlive the arena. Receive paths that decode many tuples per frame use
// this to batch the per-tuple allocations.
func DecodeTupleInto(a *Arena, b []byte) (Tuple, []byte, error) {
	n, b, err := tupleHeader(b)
	if err != nil {
		return nil, b, err
	}
	return decodeValues(a.Alloc(preallocCount(n))[:0], n, b)
}

// tupleHeader reads and sanity-bounds a tuple's value count.
func tupleHeader(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, b, fmt.Errorf("%w: bad value count", ErrCorrupt)
	}
	if n > uint64(len(b)) { // cheap sanity bound: ≥1 byte per value
		return 0, b, fmt.Errorf("%w: value count %d exceeds input", ErrCorrupt, n)
	}
	return n, b[sz:], nil
}

// decodeValues appends n decoded values to t (pre-sized by the caller).
func decodeValues(t Tuple, n uint64, b []byte) (Tuple, []byte, error) {
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, b, fmt.Errorf("%w: truncated value", ErrCorrupt)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case 0:
			t = append(t, Null)
		case 1:
			v, sz := binary.Varint(b)
			if sz <= 0 {
				return nil, b, fmt.Errorf("%w: bad int", ErrCorrupt)
			}
			b = b[sz:]
			t = append(t, Int(v))
		case 2:
			if len(b) < 8 {
				return nil, b, fmt.Errorf("%w: truncated float", ErrCorrupt)
			}
			t = append(t, Float(math.Float64frombits(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case 3:
			l, sz := binary.Uvarint(b)
			if sz <= 0 || l > uint64(len(b[sz:])) {
				return nil, b, fmt.Errorf("%w: bad string length", ErrCorrupt)
			}
			b = b[sz:]
			t = append(t, String(string(b[:l])))
			b = b[l:]
		default:
			return nil, b, fmt.Errorf("%w: unknown value tag %d", ErrCorrupt, tag)
		}
	}
	return t, b, nil
}

// AppendTuples appends the count-prefixed encoding of a tuple batch to dst
// and returns the extended slice — the batch encode entry point; combine
// with GetEncodeBuffer/PutEncodeBuffer to encode without allocating.
func AppendTuples(dst []byte, ts []Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = AppendTuple(dst, t)
	}
	return dst
}

// EncodeTuples encodes a slice of tuples back to back, prefixed by a count.
func EncodeTuples(ts []Tuple) []byte {
	size := 4
	for _, t := range ts {
		size += t.ByteSize()
	}
	return AppendTuples(make([]byte, 0, size), ts)
}

// TupleCount reads the count prefix of an AppendTuples/EncodeTuples
// encoding, returning the announced tuple count and the remaining bytes
// (the tuples themselves, decodable one at a time with DecodeTuple). It is
// the streaming entry point storage run readers use to walk a block without
// materializing every tuple first.
func TupleCount(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, b, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	if n > uint64(len(b)) {
		return 0, b, fmt.Errorf("%w: tuple count %d exceeds input", ErrCorrupt, n)
	}
	return n, b[sz:], nil
}

// DecodeTuples decodes a count-prefixed tuple sequence produced by
// EncodeTuples or AppendTuples.
func DecodeTuples(b []byte) ([]Tuple, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("%w: tuple count %d exceeds input", ErrCorrupt, n)
	}
	b = b[sz:]
	out := make([]Tuple, 0, preallocCount(n))
	for i := uint64(0); i < n; i++ {
		t, rest, err := DecodeTuple(b)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		out = append(out, t)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return out, nil
}

// DecodeTuplesInto decodes a count-prefixed tuple sequence from the front of
// b into the batch, returning the remaining bytes — the batch decode entry
// point. Unlike DecodeTuples it tolerates trailing bytes, so it composes
// inside larger wire messages.
func DecodeTuplesInto(dst *Batch, b []byte) ([]byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return b, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	if n > uint64(len(b)) {
		return b, fmt.Errorf("%w: tuple count %d exceeds input", ErrCorrupt, n)
	}
	b = b[sz:]
	dst.Reset()
	for i := uint64(0); i < n; i++ {
		t, rest, err := DecodeTuple(b)
		if err != nil {
			return b, fmt.Errorf("tuple %d: %w", i, err)
		}
		dst.Append(t)
		b = rest
	}
	return b, nil
}
