package relation

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	tuples := []Tuple{
		{},
		{Null},
		{Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(math.Pi), Float(math.Inf(-1)), Float(-0.0)},
		{String(""), String("MALSTQ"), String("a\x00b\xffc")},
		{Int(7), String("ORF007"), Float(1.5), Null},
	}
	for i, tp := range tuples {
		enc := EncodeTuple(tp)
		dec, rest, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("tuple %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("tuple %d: %d trailing bytes", i, len(rest))
		}
		if !dec.Equal(tp) {
			t.Fatalf("tuple %d: round trip %v != %v", i, dec.Format(), tp.Format())
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(g tupleGen) bool {
		enc := EncodeTuple(g.T)
		dec, rest, err := DecodeTuple(enc)
		return err == nil && len(rest) == 0 && dec.Equal(g.T)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCodecBatchRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	batch := make([]Tuple, 64)
	for i := range batch {
		batch[i] = randTuple(r)
	}
	enc := EncodeTuples(batch)
	dec, err := DecodeTuples(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(batch) {
		t.Fatalf("decoded %d tuples, want %d", len(dec), len(batch))
	}
	for i := range batch {
		if !dec[i].Equal(batch[i]) {
			t.Fatalf("tuple %d differs: %v != %v", i, dec[i].Format(), batch[i].Format())
		}
	}
}

func TestCodecCorruptInputs(t *testing.T) {
	good := EncodeTuple(Tuple{Int(1), String("abc"), Float(2.5)})
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": good[:1],
		"truncated string": good[:len(good)-6],
		"truncated float":  good[:len(good)-3],
		"bad tag":          append(append([]byte{}, 1), 200),
		"huge count":       {0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, b := range cases {
		if _, _, err := DecodeTuple(b); err == nil {
			t.Errorf("%s: expected error", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

func TestCodecBatchCorrupt(t *testing.T) {
	enc := EncodeTuples([]Tuple{{Int(1)}, {Int(2)}})
	if _, err := DecodeTuples(enc[:len(enc)-1]); err == nil {
		t.Error("truncated batch should fail")
	}
	if _, err := DecodeTuples(append(enc, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if _, err := DecodeTuples(nil); err == nil {
		t.Error("nil batch should fail")
	}
}

func TestCodecNeverPanicsOnGarbage(t *testing.T) {
	// Fuzz-ish: random byte strings must produce an error or a tuple, never
	// a panic or an out-of-range read.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(40))
		r.Read(b)
		_, _, _ = DecodeTuple(b)
		_, _ = DecodeTuples(b)
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	tp := Tuple{String("ORF000123"), String("MALSTQWKDEFGHIRNPVYCMALSTQWKDEFGHIRNPVYC"), Int(40)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeTuple(tp)
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	enc := EncodeTuple(Tuple{String("ORF000123"), String("MALSTQWKDEFGHIRNPVYCMALSTQWKDEFGHIRNPVYC"), Int(40)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeTupleIntoMatchesDecodeTuple(t *testing.T) {
	var a Arena
	r := rand.New(rand.NewSource(17))
	var enc []byte
	var want []Tuple
	for i := 0; i < 200; i++ {
		tp := randTuple(r)
		want = append(want, tp)
		enc = AppendTuple(enc, tp)
	}
	b := enc
	got := make([]Tuple, 0, len(want))
	for i := range want {
		dec, rest, err := DecodeTupleInto(&a, b)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		got = append(got, dec)
		b = rest
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
	// Checked only after the full run: later arena decodes must never
	// touch the storage of earlier decoded tuples.
	for i, tp := range want {
		if !got[i].Equal(tp) {
			t.Fatalf("tuple %d: arena round trip %v != %v", i, got[i].Format(), tp.Format())
		}
	}
}

func TestDecodeTupleIntoCorrupt(t *testing.T) {
	var a Arena
	for _, b := range [][]byte{nil, {255}, {2, 1}, {1, 3, 200}, {1, 9}} {
		if _, _, err := DecodeTupleInto(&a, b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("input %v: err = %v, want ErrCorrupt", b, err)
		}
	}
}

func BenchmarkDecodeTupleInto(b *testing.B) {
	enc := EncodeTuple(Tuple{Int(42), String("YAL00001C"), Float(3.25), Null})
	var a Arena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTupleInto(&a, enc); err != nil {
			b.Fatal(err)
		}
	}
}
