// Package cliutil holds the flag plumbing shared by the multi-process
// commands (dqp-coordinator, dqp-evaluator): every process of a deployment
// parses the same manifest flags and must end up with an identical
// services.Manifest, because evaluators re-derive the coordinator's plan
// deterministically from the query text.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/services"
	"repro/internal/simnet"
)

// ManifestFlags collects the deployment-describing flags.
type ManifestFlags struct {
	Coordinator  *string
	Data         *string
	Compute      *string
	Peers        *string
	Sequences    *int
	Interactions *int
	Scale        *time.Duration
	Adaptive     *bool
	Retro        *bool
	A2           *bool
	EntropyCost  *float64
	Parallel     *int
}

// NewManifestFlags registers the shared flags on the default flag set.
func NewManifestFlags() *ManifestFlags {
	return &ManifestFlags{
		Coordinator:  flag.String("coordinator", "coord", "coordinator node name"),
		Data:         flag.String("data", "data1", "comma-separated data node names"),
		Compute:      flag.String("compute", "ws0,ws1", "comma-separated compute node names (node[:speed])"),
		Peers:        flag.String("peers", "", "comma-separated node=host:port address list for every node"),
		Sequences:    flag.Int("sequences", 3000, "protein_sequences cardinality"),
		Interactions: flag.Int("interactions", 4700, "protein_interactions cardinality"),
		Scale:        flag.Duration("scale", 10*time.Microsecond, "real duration of one paper millisecond"),
		Adaptive:     flag.Bool("adaptive", false, "enable the AQP components"),
		Retro:        flag.Bool("retrospective", false, "use R1 response instead of R2"),
		A2:           flag.Bool("a2", false, "use A2 assessment instead of A1"),
		EntropyCost:  flag.Float64("entropy-cost", 10, "EntropyAnalyser cost in paper-ms per call"),
		Parallel:     flag.Int("parallel", 0, "morsel worker-pool width per fragment driver (0/1 serial, negative = GOMAXPROCS)"),
	}
}

// Build assembles the manifest and peer address map.
func (f *ManifestFlags) Build() (services.Manifest, map[string]string, error) {
	m := services.Manifest{
		Scale:       *f.Scale,
		Coordinator: simnet.NodeID(*f.Coordinator),
		Adaptive:    *f.Adaptive,
		Parallelism: *f.Parallel,
	}
	if *f.Retro {
		m.Response = core.R1
	}
	if *f.A2 {
		m.Assessment = core.A2
	}
	for _, name := range splitList(*f.Data) {
		m.DataNodes = append(m.DataNodes, services.DataNodeSpec{
			Node:         simnet.NodeID(name),
			Sequences:    *f.Sequences,
			Interactions: *f.Interactions,
		})
	}
	for _, spec := range splitList(*f.Compute) {
		name, speed := spec, 1.0
		if i := strings.Index(spec, ":"); i >= 0 {
			name = spec[:i]
			v, err := strconv.ParseFloat(spec[i+1:], 64)
			if err != nil || v <= 0 {
				return m, nil, fmt.Errorf("cliutil: bad compute speed in %q", spec)
			}
			speed = v
		}
		m.Compute = append(m.Compute, services.ComputeNodeSpec{
			Node:          simnet.NodeID(name),
			Speed:         speed,
			EntropyCostMs: *f.EntropyCost,
		})
	}
	peers := make(map[string]string)
	for _, kv := range splitList(*f.Peers) {
		i := strings.Index(kv, "=")
		if i <= 0 {
			return m, nil, fmt.Errorf("cliutil: bad peer %q (want node=host:port)", kv)
		}
		peers[kv[:i]] = kv[i+1:]
	}
	return m, peers, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
