package cliutil

import (
	"flag"
	"testing"
	"time"
)

// buildFrom parses args through a fresh flag set.
func buildFrom(t *testing.T, args ...string) (*ManifestFlags, error) {
	t.Helper()
	old := flag.CommandLine
	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	defer func() { flag.CommandLine = old }()
	f := NewManifestFlags()
	if err := flag.CommandLine.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f, nil
}

func TestBuildDefaults(t *testing.T) {
	f, _ := buildFrom(t)
	m, peers, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Coordinator != "coord" {
		t.Errorf("coordinator = %q", m.Coordinator)
	}
	if len(m.DataNodes) != 1 || m.DataNodes[0].Node != "data1" || m.DataNodes[0].Sequences != 3000 {
		t.Errorf("data nodes = %+v", m.DataNodes)
	}
	if len(m.Compute) != 2 || m.Compute[0].Node != "ws0" || m.Compute[0].Speed != 1 {
		t.Errorf("compute = %+v", m.Compute)
	}
	if len(peers) != 0 {
		t.Errorf("peers = %v", peers)
	}
}

func TestBuildCustom(t *testing.T) {
	f, _ := buildFrom(t,
		"-coordinator", "c0",
		"-data", "d1,d2",
		"-compute", "w0:2.5,w1",
		"-peers", "c0=h:1,d1=h:2",
		"-sequences", "100",
		"-scale", "50us",
		"-adaptive", "-retrospective", "-a2",
	)
	m, peers, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Coordinator != "c0" || !m.Adaptive || m.Scale != 50*time.Microsecond {
		t.Errorf("manifest = %+v", m)
	}
	if len(m.DataNodes) != 2 || m.DataNodes[0].Sequences != 100 {
		t.Errorf("data = %+v", m.DataNodes)
	}
	if m.Compute[0].Speed != 2.5 || m.Compute[1].Speed != 1 {
		t.Errorf("compute speeds = %+v", m.Compute)
	}
	if peers["c0"] != "h:1" || peers["d1"] != "h:2" {
		t.Errorf("peers = %v", peers)
	}
	if m.Response == 0 || m.Assessment == 0 {
		t.Error("retrospective/a2 flags not applied")
	}
}

func TestBuildErrors(t *testing.T) {
	f, _ := buildFrom(t, "-compute", "w0:abc")
	if _, _, err := f.Build(); err == nil {
		t.Error("bad speed accepted")
	}
	f, _ = buildFrom(t, "-compute", "w0:-1")
	if _, _, err := f.Build(); err == nil {
		t.Error("negative speed accepted")
	}
	f, _ = buildFrom(t, "-peers", "nope")
	if _, _, err := f.Build(); err == nil {
		t.Error("bad peer accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,, c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}
