package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseQ1(t *testing.T) {
	stmt := mustParse(t, "select EntropyAnalyser(p.sequence) from protein_sequences p")
	if len(stmt.Items) != 1 || len(stmt.From) != 1 || len(stmt.Where) != 0 {
		t.Fatalf("shape: %+v", stmt)
	}
	call, ok := stmt.Items[0].Expr.(FuncCall)
	if !ok || call.Name != "EntropyAnalyser" || len(call.Args) != 1 {
		t.Fatalf("item: %#v", stmt.Items[0].Expr)
	}
	arg, ok := call.Args[0].(ColumnRef)
	if !ok || arg.Table != "p" || arg.Name != "sequence" {
		t.Fatalf("arg: %#v", call.Args[0])
	}
	if stmt.From[0].Table != "protein_sequences" || stmt.From[0].Alias != "p" {
		t.Fatalf("from: %+v", stmt.From[0])
	}
	if stmt.From[0].EffectiveName() != "p" {
		t.Fatal("EffectiveName should prefer alias")
	}
}

func TestParseQ2(t *testing.T) {
	stmt := mustParse(t, `select i.ORF2 from protein_sequences p,
		protein_interactions i where i.ORF1=p.ORF`)
	if len(stmt.From) != 2 || len(stmt.Where) != 1 {
		t.Fatalf("shape: %+v", stmt)
	}
	w := stmt.Where[0]
	if w.Op != OpEq {
		t.Fatalf("op = %q", w.Op)
	}
	l := w.Left.(ColumnRef)
	r := w.Right.(ColumnRef)
	if l.Table != "i" || l.Name != "ORF1" || r.Table != "p" || r.Name != "ORF" {
		t.Fatalf("predicate: %v %v", l, r)
	}
}

func TestParseVariations(t *testing.T) {
	cases := []string{
		"SELECT * FROM t",
		"select a, b, c from t",
		"select t.a AS x, f(t.b, 3, 'lit') y from t",
		"select a from t1, t2, t3 where t1.x = t2.x and t2.y = t3.y and t1.z > 5",
		"select a from t where a <> 'it''s'",
		"select a from t where a != 3 and b <= 2.5 and c >= -7 and d < 1 and e > 0",
		"select g() from t",
		"select nested(inner1(a), inner2(b, c)) from t",
		"select a from tbl AS al where al.a = 1",
	}
	for _, q := range cases {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseNormalisesNe(t *testing.T) {
	stmt := mustParse(t, "select a from t where a != 3")
	if stmt.Where[0].Op != OpNe {
		t.Fatalf("!= should normalise to <>, got %q", stmt.Where[0].Op)
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "select a AS x, b y from t")
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "y" {
		t.Fatalf("aliases: %+v", stmt.Items)
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := mustParse(t, "select a from t where a = 3 and b = 2.5 and c = 'x' and d = -4")
	if v := stmt.Where[0].Right.(IntLit); v.Value != 3 {
		t.Errorf("int literal: %v", v)
	}
	if v := stmt.Where[1].Right.(FloatLit); v.Value != 2.5 {
		t.Errorf("float literal: %v", v)
	}
	if v := stmt.Where[2].Right.(StringLit); v.Value != "x" {
		t.Errorf("string literal: %v", v)
	}
	if v := stmt.Where[3].Right.(IntLit); v.Value != -4 {
		t.Errorf("negative literal: %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"":                                  "expected SELECT",
		"select":                            "expected expression",
		"select a":                          "expected FROM",
		"select a from":                     "expected table name",
		"select a from t where":             "expected expression",
		"select a from t where a":           "expected comparison",
		"select a from t where a =":         "expected expression",
		"select a from t extra ,":           "expected table name",
		"select f(a from t":                 "expected )",
		"select a from t where a = 'unterm": "unterminated string",
		"select a.b.c from t":               "expected FROM",
		"select a from t where a ! b":       "unexpected character",
		"select @ from t":                   "unexpected character",
		"select a from select":              "expected table name",
		"select a from t where select = 1":  "unexpected keyword",
		"select a AS from t":                "expected alias",
	}
	for q, wantSub := range cases {
		_, err := Parse(q)
		if err == nil {
			t.Errorf("Parse(%q): expected error", q)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(strings.Split(wantSub, " ")[0])) {
			t.Errorf("Parse(%q) error %q does not mention %q", q, err, wantSub)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	// Parse → SQL → Parse must be a fixpoint.
	cases := []string{
		"select EntropyAnalyser(p.sequence) from protein_sequences p",
		"select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF",
		"select * from t",
		"select a AS x, f(b, 'it''s', 2.5) from t1, t2 where t1.a <> t2.b and t1.c <= 3",
	}
	for _, q := range cases {
		s1 := mustParse(t, q)
		rendered := s1.SQL()
		s2, err := Parse(rendered)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", rendered, err)
			continue
		}
		if s2.SQL() != rendered {
			t.Errorf("SQL round trip not a fixpoint:\n%q\n%q", rendered, s2.SQL())
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("select a from t where a @ b")
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos != 24 {
		t.Errorf("error position = %d, want 24", perr.Pos)
	}
}

func TestParseGroupBy(t *testing.T) {
	stmt := mustParse(t, "select i.ORF1, count(*) from protein_interactions i group by i.ORF1")
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Table != "i" || stmt.GroupBy[0].Name != "ORF1" {
		t.Fatalf("GroupBy = %+v", stmt.GroupBy)
	}
	call := stmt.Items[1].Expr.(FuncCall)
	if call.Name != "count" || len(call.Args) != 1 {
		t.Fatalf("count call = %+v", call)
	}
	if _, ok := call.Args[0].(Star); !ok {
		t.Fatalf("count(*) arg = %#v", call.Args[0])
	}
}

func TestParseGroupByMultipleKeys(t *testing.T) {
	stmt := mustParse(t, "select a, b, sum(c) from t group by a, b")
	if len(stmt.GroupBy) != 2 {
		t.Fatalf("GroupBy = %+v", stmt.GroupBy)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	stmt := mustParse(t, "select a from t order by a desc, b asc, c limit 10")
	if len(stmt.OrderBy) != 3 {
		t.Fatalf("OrderBy = %+v", stmt.OrderBy)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc || stmt.OrderBy[2].Desc {
		t.Fatalf("desc flags = %+v", stmt.OrderBy)
	}
	if stmt.Limit == nil || *stmt.Limit != 10 {
		t.Fatalf("Limit = %v", stmt.Limit)
	}
}

func TestParseFullClauseOrder(t *testing.T) {
	q := "select i.ORF1 AS orf, count(*) n from protein_interactions i " +
		"where i.ORF2 <> 'x' group by i.ORF1 order by i.ORF1 limit 5"
	stmt := mustParse(t, q)
	if len(stmt.Where) != 1 || len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 || stmt.Limit == nil {
		t.Fatalf("clauses: %+v", stmt)
	}
	// SQL round trip stays a fixpoint with the new clauses.
	re, err := Parse(stmt.SQL())
	if err != nil {
		t.Fatalf("re-parse %q: %v", stmt.SQL(), err)
	}
	if re.SQL() != stmt.SQL() {
		t.Fatalf("round trip:\n%q\n%q", stmt.SQL(), re.SQL())
	}
}

func TestParseGroupOrderErrors(t *testing.T) {
	cases := []string{
		"select a from t group a",
		"select a from t group by",
		"select a from t group by 3",
		"select a from t order by",
		"select a from t order by f(x)",
		"select a from t limit",
		"select a from t limit x",
		"select a from t limit -1",
		"select group from t",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}
