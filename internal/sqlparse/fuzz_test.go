package sqlparse

import (
	"testing"
)

// FuzzNormalizeSQL checks the serving layer's core contract on arbitrary
// inputs: normalization is a fixpoint (the template's own SQL normalizes to
// the same key, so equal normalized forms always resolve to one cache entry
// and therefore one plan), and binding the stripped literals back into the
// template reproduces the original statement up to FROM canonicalization —
// the cached-plan execution path sees the same predicate the cold path would.
func FuzzNormalizeSQL(f *testing.F) {
	seeds := []string{
		"select a from t",
		"select a from t where a = 5",
		"select a from t where a = 5 and b = 7 and c = 'z'",
		"select a from t where a = 5.5 and b < 3",
		"select a from t where a = ? and b = 7",
		"select a, b from t, u where t.a = u.a and t.b = 'x'",
		"select EntropyAnalyser(p.sequence) from protein_sequences p",
		"select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF and i.ORF2 = 'YAL00001C'",
		"select count(a) from t group by b having count(a) > 3",
		"select a from t where a > 1 order by a desc limit 10",
		"select a from t where a = -3 and b = ?",
		"select a from t where 1 = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			t.Skip()
		}
		canon := *stmt
		canon.From = append([]TableRef(nil), stmt.From...)
		sortFrom(&canon)
		canonical := canon.SQL()

		key, template, slots, err := NormalizeSQL(query)
		if err != nil {
			t.Fatalf("parseable query failed to normalize: %v\n  query: %q", err, query)
		}
		if key != template.SQL() {
			t.Fatalf("key %q != template SQL %q", key, template.SQL())
		}

		// Fixpoint: normalizing the template's own rendering must yield the
		// same key (a template contains no literals left to strip), so equal
		// normalized forms can never diverge into different cache entries.
		key2, _, slots2, err := NormalizeSQL(key)
		if err != nil {
			t.Fatalf("template SQL does not re-normalize: %v\n  key: %q", err, key)
		}
		if key2 != key {
			t.Fatalf("normalization not a fixpoint:\n  first:  %q\n  second: %q", key, key2)
		}
		if len(slots2) != len(slots) {
			t.Fatalf("slot count changed across re-normalization: %d != %d", len(slots2), len(slots))
		}

		// Round trip: binding the stripped literals back must reproduce the
		// original statement byte for byte. Only fully literal statements
		// can be re-bound without caller arguments.
		if NumUserParams(slots) == 0 {
			args, err := BindSlots(slots, nil)
			if err != nil {
				t.Fatalf("BindSlots on stripped literals: %v", err)
			}
			bound, err := Bind(template, args)
			if err != nil {
				t.Fatalf("Bind: %v", err)
			}
			if got := bound.SQL(); got != canonical {
				t.Fatalf("bind round trip diverged:\n  original: %q\n  rebound:  %q", canonical, got)
			}
		}
	})
}
