package sqlparse

import (
	"strings"
	"testing"
)

func TestNormalizeStripsLiterals(t *testing.T) {
	key1, _, slots1, err := NormalizeSQL("select a from t where a = 3 and b > 2.5 and c = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	key2, _, slots2, err := NormalizeSQL("select a from t where a = 99 and b > 0.125 and c = 'other'")
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatalf("keys differ:\n%q\n%q", key1, key2)
	}
	if len(slots1) != 3 || len(slots2) != 3 {
		t.Fatalf("slots: %v / %v", slots1, slots2)
	}
	wantHints := []ParamType{PInt, PFloat, PString}
	for i, s := range slots1 {
		if s.Hint != wantHints[i] {
			t.Errorf("slot %d hint = %v, want %v", i, s.Hint, wantHints[i])
		}
		if s.UserOrd != -1 {
			t.Errorf("slot %d UserOrd = %d, want -1", i, s.UserOrd)
		}
	}
	if v := slots2[0].Lit.(IntLit); v.Value != 99 {
		t.Errorf("stripped literal = %v", v)
	}
	if !strings.Contains(key1, "?0:int") || !strings.Contains(key1, "?1:float") || !strings.Contains(key1, "?2:str") {
		t.Errorf("key does not carry type hints: %q", key1)
	}
}

func TestNormalizeTypeChangesKey(t *testing.T) {
	keyInt, _, _, err := NormalizeSQL("select a from t where a = 3")
	if err != nil {
		t.Fatal(err)
	}
	keyFloat, _, _, err := NormalizeSQL("select a from t where a = 3.0")
	if err != nil {
		t.Fatal(err)
	}
	if keyInt == keyFloat {
		t.Fatalf("int and float literals should normalize to different keys: %q", keyInt)
	}
}

func TestNormalizeKeepsStructure(t *testing.T) {
	// LIMIT, grouping, ordering and select lists are structural: changing
	// them must change the key.
	distinct := []string{
		"select a from t where a = 1",
		"select a, b from t where a = 1",
		"select a from t where a = 1 and b = 1",
		"select a from t where a = 1 limit 5",
		"select a from t where a = 1 limit 6",
		"select a from t where a = 1 order by a",
		"select a from u where a = 1",
	}
	seen := map[string]string{}
	for _, q := range distinct {
		key, _, _, err := NormalizeSQL(q)
		if err != nil {
			t.Fatalf("NormalizeSQL(%q): %v", q, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("queries %q and %q share key %q", prev, q, key)
		}
		seen[key] = q
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	stmt := mustParse(t, "select a from t where a = 3 and b = 'x'")
	before := stmt.SQL()
	Normalize(stmt)
	if stmt.SQL() != before {
		t.Fatalf("Normalize mutated input: %q", stmt.SQL())
	}
}

func TestNormalizeExplicitParams(t *testing.T) {
	stmt := mustParse(t, "select a from t where a = ? and b = 7 and c = ?")
	tpl, slots := Normalize(stmt)
	if len(slots) != 3 {
		t.Fatalf("slots = %v", slots)
	}
	if slots[0].UserOrd != 0 || slots[1].UserOrd != -1 || slots[2].UserOrd != 1 {
		t.Fatalf("user ords: %+v", slots)
	}
	if slots[0].Hint != PAny || slots[2].Hint != PAny {
		t.Fatalf("explicit markers must stay PAny: %+v", slots)
	}
	if NumUserParams(slots) != 2 {
		t.Fatalf("NumUserParams = %d", NumUserParams(slots))
	}
	args, err := BindSlots(slots, []Expr{IntLit{Value: 5}, StringLit{Value: "z"}})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Bind(tpl, args)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT a FROM t WHERE a = 5 AND b = 7 AND c = 'z'"
	if bound.SQL() != want {
		t.Fatalf("bound = %q, want %q", bound.SQL(), want)
	}
}

func TestBindRoundTrip(t *testing.T) {
	// Normalize then Bind with the stripped literals must reproduce the
	// original statement up to FROM canonicalization (Normalize sorts the
	// FROM clause so equivalent join orderings share one cache key).
	cases := []string{
		"select a from t where a = 3 and b > 2.5 and c = 'x'",
		"select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF",
		"select a, count(*) n from t where b <> 'y' group by a having count(*) > 2 order by a limit 9",
	}
	for _, q := range cases {
		stmt := mustParse(t, q)
		tpl, slots := Normalize(stmt)
		args, err := BindSlots(slots, nil)
		if err != nil {
			t.Fatalf("BindSlots(%q): %v", q, err)
		}
		bound, err := Bind(tpl, args)
		if err != nil {
			t.Fatalf("Bind(%q): %v", q, err)
		}
		want := *stmt
		want.From = append([]TableRef(nil), stmt.From...)
		sortFrom(&want)
		if bound.SQL() != want.SQL() {
			t.Errorf("round trip:\n%q\n%q", want.SQL(), bound.SQL())
		}
	}
}

func TestBindErrors(t *testing.T) {
	stmt := mustParse(t, "select a from t where a = 3 and b = ?")
	_, slots := Normalize(stmt)
	if _, err := BindSlots(slots, nil); err == nil {
		t.Error("missing argument should fail")
	}
	if _, err := BindSlots(slots, []Expr{IntLit{}, IntLit{}}); err == nil {
		t.Error("extra argument should fail")
	}
	if _, err := BindSlots(slots, []Expr{ColumnRef{Name: "c"}}); err == nil {
		t.Error("non-literal argument should fail")
	}
	// Hint mismatch: slot 0 was minted from an int literal.
	stmt2 := mustParse(t, "select a from t where a = 3")
	_, slots2 := Normalize(stmt2)
	slots2[0].Lit = StringLit{Value: "oops"}
	if _, err := BindSlots(slots2, nil); err == nil {
		t.Error("hint mismatch should fail")
	}
}

func TestParseExplicitParamOrdinals(t *testing.T) {
	stmt := mustParse(t, "select a from t where a = ? and b = ? and c = ?")
	for i, c := range stmt.Where {
		p, ok := c.Right.(Param)
		if !ok || p.Ord != i {
			t.Fatalf("where[%d].Right = %#v, want Param{Ord:%d}", i, c.Right, i)
		}
	}
}

func TestNormalizeFromOrderCanonical(t *testing.T) {
	// Equivalent FROM orderings must normalize to one cache key.
	a, _, _, err := NormalizeSQL("select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF")
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := NormalizeSQL("select i.ORF2 from protein_interactions i, protein_sequences p where i.ORF1 = p.ORF")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equivalent FROM orders got distinct keys:\n%q\n%q", a, b)
	}

	// SELECT * expands columns in declared FROM order, so star statements
	// must keep their FROM clause as written.
	s1, _, _, err := NormalizeSQL("select * from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF")
	if err != nil {
		t.Fatal(err)
	}
	s2, _, _, err := NormalizeSQL("select * from protein_interactions i, protein_sequences p where i.ORF1 = p.ORF")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("star queries with different FROM orders must keep distinct keys")
	}
	if want := "SELECT * FROM protein_sequences p, protein_interactions i WHERE i.ORF1 = p.ORF"; s1 != want {
		t.Fatalf("star FROM order not preserved: %q", s1)
	}
}
