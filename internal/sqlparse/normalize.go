package sqlparse

import (
	"fmt"
	"sort"
	"strings"
)

// Slot describes one parameter slot of a normalized statement template, in
// statement order (WHERE conjuncts left-to-right, then HAVING).
type Slot struct {
	// Hint is the slot's type: the type of the stripped literal, or PAny for
	// an explicit `?` marker.
	Hint ParamType
	// Lit is the literal Normalize stripped into this slot; nil for an
	// explicit `?` marker, which the caller binds at execution.
	Lit Expr
	// UserOrd is the 0-based index among the statement's explicit `?`
	// markers, or -1 for a stripped literal.
	UserOrd int
}

// Normalize returns a literal-stripped copy of stmt — the statement's plan
// template — plus the parameter slots in order. Every literal operand of a
// WHERE or HAVING comparison becomes a Param placeholder; explicit `?`
// markers are renumbered into the same slot space. LIMIT counts, select
// lists, grouping and ordering columns are structural and stay in the
// template (and therefore in the cache key). The input statement is not
// modified.
//
// Two queries with equal normalized forms (template.SQL()) differ only in
// the stripped literal values, so they share logical and physical plan
// structure and can share one cached plan.
func Normalize(stmt *SelectStmt) (*SelectStmt, []Slot) {
	n := &normalizer{}
	out := *stmt
	out.Items = append([]SelectItem(nil), stmt.Items...)
	out.From = append([]TableRef(nil), stmt.From...)
	sortFrom(&out)
	out.GroupBy = append([]ColumnRef(nil), stmt.GroupBy...)
	out.OrderBy = append([]OrderItem(nil), stmt.OrderBy...)
	out.Where = n.comparisons(stmt.Where)
	out.Having = n.comparisons(stmt.Having)
	if stmt.Limit != nil {
		lim := *stmt.Limit
		out.Limit = &lim
	}
	return &out, n.slots
}

// sortFrom orders the template's FROM clause by effective name so that
// queries differing only in source order share one cache key (the planner
// reorders joins by cost anyway, so FROM order does not change the plan).
// The one place FROM order is user-visible is `SELECT *`, whose output
// columns expand in declared order — those statements keep their FROM
// clause as written. Sorting is idempotent, so Normalize stays a fixpoint.
func sortFrom(out *SelectStmt) {
	if len(out.From) < 2 {
		return
	}
	for _, it := range out.Items {
		if _, ok := it.Expr.(Star); ok {
			return
		}
	}
	sort.SliceStable(out.From, func(i, j int) bool {
		a := strings.ToLower(out.From[i].EffectiveName())
		b := strings.ToLower(out.From[j].EffectiveName())
		if a != b {
			return a < b
		}
		return out.From[i].Table < out.From[j].Table
	})
}

// NormalizeSQL parses a query and returns its normalized cache key, the
// template statement, and the parameter slots.
func NormalizeSQL(query string) (key string, template *SelectStmt, slots []Slot, err error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", nil, nil, err
	}
	template, slots = Normalize(stmt)
	return template.SQL(), template, slots, nil
}

type normalizer struct {
	slots []Slot
	users int
}

func (n *normalizer) comparisons(conjs []Comparison) []Comparison {
	if len(conjs) == 0 {
		return nil
	}
	out := make([]Comparison, len(conjs))
	for i, c := range conjs {
		out[i] = Comparison{Left: n.operand(c.Left), Op: c.Op, Right: n.operand(c.Right)}
	}
	return out
}

// operand replaces a literal or explicit marker with the next Param slot;
// every other expression (columns, calls) passes through structurally.
func (n *normalizer) operand(e Expr) Expr {
	var s Slot
	switch v := e.(type) {
	case IntLit:
		s = Slot{Hint: PInt, Lit: v, UserOrd: -1}
	case FloatLit:
		s = Slot{Hint: PFloat, Lit: v, UserOrd: -1}
	case StringLit:
		s = Slot{Hint: PString, Lit: v, UserOrd: -1}
	case Param:
		s = Slot{Hint: v.Hint, UserOrd: n.users}
		n.users++
	default:
		return e
	}
	ord := len(n.slots)
	n.slots = append(n.slots, s)
	return Param{Ord: ord, Hint: s.Hint}
}

// NumUserParams counts the slots the caller must bind at execution (explicit
// `?` markers).
func NumUserParams(slots []Slot) int {
	n := 0
	for _, s := range slots {
		if s.UserOrd >= 0 {
			n++
		}
	}
	return n
}

// BindSlots merges the stripped literals with the caller's arguments for the
// explicit markers, yielding the full argument vector args[ord] the plan
// binder substitutes for Param{Ord: ord}. userArgs[i] binds the i-th explicit
// `?`; each argument must be an IntLit, FloatLit or StringLit matching the
// slot's hint (PAny accepts any literal).
func BindSlots(slots []Slot, userArgs []Expr) ([]Expr, error) {
	if want := NumUserParams(slots); len(userArgs) != want {
		return nil, fmt.Errorf("sql: statement has %d parameters, got %d arguments", want, len(userArgs))
	}
	args := make([]Expr, len(slots))
	for i, s := range slots {
		lit := s.Lit
		if s.UserOrd >= 0 {
			lit = userArgs[s.UserOrd]
		}
		if err := checkLit(lit, s.Hint, i); err != nil {
			return nil, err
		}
		args[i] = lit
	}
	return args, nil
}

func checkLit(e Expr, hint ParamType, slot int) error {
	var got ParamType
	switch e.(type) {
	case IntLit:
		got = PInt
	case FloatLit:
		got = PFloat
	case StringLit:
		got = PString
	case nil:
		return fmt.Errorf("sql: parameter %d is unbound", slot)
	default:
		return fmt.Errorf("sql: parameter %d: %s is not a literal", slot, e.SQL())
	}
	if hint != PAny && hint != got {
		return fmt.Errorf("sql: parameter %d: want %s, got %s", slot, hint, got)
	}
	return nil
}

// BindComparisons returns conjs with every Param replaced by args[Ord];
// non-parameter operands are untouched. It is the statement-level form of
// plan binding, used by tests and fallback paths.
func BindComparisons(conjs []Comparison, args []Expr) ([]Comparison, error) {
	if len(conjs) == 0 {
		return nil, nil
	}
	out := make([]Comparison, len(conjs))
	for i, c := range conjs {
		l, err := bindOperand(c.Left, args)
		if err != nil {
			return nil, err
		}
		r, err := bindOperand(c.Right, args)
		if err != nil {
			return nil, err
		}
		out[i] = Comparison{Left: l, Op: c.Op, Right: r}
	}
	return out, nil
}

func bindOperand(e Expr, args []Expr) (Expr, error) {
	p, ok := e.(Param)
	if !ok {
		return e, nil
	}
	if p.Ord < 0 || p.Ord >= len(args) || args[p.Ord] == nil {
		return nil, fmt.Errorf("sql: no argument for parameter %d", p.Ord)
	}
	return args[p.Ord], nil
}

// Bind returns a copy of the template statement with every parameter slot
// replaced by its literal argument (see BindSlots for constructing args).
func Bind(template *SelectStmt, args []Expr) (*SelectStmt, error) {
	out := *template
	var err error
	out.Where, err = BindComparisons(template.Where, args)
	if err != nil {
		return nil, err
	}
	out.Having, err = BindComparisons(template.Having, args)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
