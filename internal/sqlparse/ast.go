package sqlparse

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression in a select list or predicate.
type Expr interface {
	// SQL renders the expression back to SQL text.
	SQL() string
	exprNode()
}

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table string // alias or table name; empty when unqualified
	Name  string
}

// SQL renders the reference in SQL syntax.
func (c ColumnRef) SQL() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}
func (ColumnRef) exprNode() {}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// SQL renders the literal in SQL syntax.
func (l IntLit) SQL() string { return fmt.Sprintf("%d", l.Value) }
func (IntLit) exprNode()     {}

// FloatLit is a floating-point literal.
type FloatLit struct{ Value float64 }

// SQL renders the literal in SQL syntax.
func (l FloatLit) SQL() string { return fmt.Sprintf("%g", l.Value) }
func (FloatLit) exprNode()     {}

// StringLit is a string literal.
type StringLit struct{ Value string }

// SQL renders the literal in SQL syntax, escaping embedded quotes.
func (l StringLit) SQL() string {
	return "'" + strings.ReplaceAll(l.Value, "'", "''") + "'"
}
func (StringLit) exprNode() {}

// ParamType hints the relational type a parameter slot carries. Slots
// minted by Normalize remember the type of the literal they replaced, so two
// queries whose literals differ in type normalize to different keys; explicit
// `?` markers written by the user carry PAny and are typed by inference
// against the column they are compared with.
type ParamType uint8

// Parameter type hints.
const (
	PAny ParamType = iota
	PInt
	PFloat
	PString
)

// String names the hint as rendered in normalized SQL.
func (t ParamType) String() string {
	switch t {
	case PInt:
		return "int"
	case PFloat:
		return "float"
	case PString:
		return "str"
	default:
		return "any"
	}
}

// Param is an ordinal parameter slot: either an explicit `?` marker from a
// prepared statement, or the placeholder Normalize substitutes for a stripped
// literal. Ord is the 0-based slot index in statement order.
type Param struct {
	Ord  int
	Hint ParamType
}

// SQL renders the slot; the hint is part of the rendering, so the normalized
// key distinguishes literal types ("?3:int" vs "?3:float").
func (p Param) SQL() string {
	if p.Hint == PAny {
		return fmt.Sprintf("?%d", p.Ord)
	}
	return fmt.Sprintf("?%d:%s", p.Ord, p.Hint)
}
func (Param) exprNode() {}

// FuncCall invokes a Web Service operation on the given arguments, e.g.
// EntropyAnalyser(p.sequence).
type FuncCall struct {
	Name string
	Args []Expr
}

// SQL renders the call in SQL syntax.
func (f FuncCall) SQL() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.SQL()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}
func (FuncCall) exprNode() {}

// Star is the bare `*` select item.
type Star struct{}

// SQL renders the star item.
func (Star) SQL() string { return "*" }
func (Star) exprNode()   {}

// CompareOp enumerates predicate comparison operators.
type CompareOp string

// Supported comparison operators.
const (
	OpEq CompareOp = "="
	OpNe CompareOp = "<>"
	OpLt CompareOp = "<"
	OpLe CompareOp = "<="
	OpGt CompareOp = ">"
	OpGe CompareOp = ">="
)

// Comparison is one conjunct of the WHERE clause: left op right.
type Comparison struct {
	Left  Expr
	Op    CompareOp
	Right Expr
}

// SQL renders the comparison.
func (c Comparison) SQL() string {
	return c.Left.SQL() + " " + string(c.Op) + " " + c.Right.SQL()
}

// SelectItem is one output column: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// SQL renders the item.
func (s SelectItem) SQL() string {
	if s.Alias == "" {
		return s.Expr.SQL()
	}
	return s.Expr.SQL() + " AS " + s.Alias
}

// TableRef is one FROM-clause entry: a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// EffectiveName is the name columns are qualified with: the alias if
// present, otherwise the table name.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// SQL renders the reference.
func (t TableRef) SQL() string {
	if t.Alias == "" {
		return t.Table
	}
	return t.Table + " " + t.Alias
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// SQL renders the order key.
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.Col.SQL() + " DESC"
	}
	return o.Col.SQL()
}

// SelectStmt is a parsed query:
// SELECT items FROM tables [WHERE conjuncts] [GROUP BY cols]
// [ORDER BY keys] [LIMIT n].
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   []Comparison // implicit conjunction
	GroupBy []ColumnRef
	// Having filters groups after aggregation (implicit conjunction).
	Having  []Comparison
	OrderBy []OrderItem
	// Limit is nil when absent.
	Limit *int64
}

// SQL renders the statement back to SQL text.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.SQL())
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.SQL())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.SQL())
		}
	}
	if len(s.Having) > 0 {
		b.WriteString(" HAVING ")
		for i, c := range s.Having {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.SQL())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.SQL())
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	return b.String()
}
