package sqlparse

import (
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the lexer's token stream with
// one token of lookahead.
type parser struct {
	lex  lexer
	tok  token // current token
	err  error
	done bool
	// nParams numbers explicit `?` markers in statement order.
	nParams int
}

// Parse parses a single SELECT statement.
func Parse(query string) (*SelectStmt, error) {
	p := &parser{lex: lexer{src: query}}
	p.advance()
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "unexpected %s after statement", p.tok)
	}
	return stmt, nil
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	p.tok, p.err = p.lex.next()
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if p.err != nil {
		return p.err
	}
	if !p.isKeyword(kw) {
		return errAt(p.tok.pos, "expected %s, found %s", strings.ToUpper(kw), p.tok)
	}
	p.advance()
	return p.err
}

// reserved words cannot be used as aliases or bare identifiers.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "as": true,
	"group": true, "by": true, "order": true, "limit": true,
	"asc": true, "desc": true, "having": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.tok.kind != tokComma {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if p.tok.kind != tokComma {
			break
		}
		p.advance()
	}
	if p.isKeyword("where") {
		p.advance()
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cmp)
			if !p.isKeyword("and") {
				break
			}
			p.advance()
		}
	}
	if p.isKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if p.tok.kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.isKeyword("having") {
		p.advance()
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			stmt.Having = append(stmt.Having, cmp)
			if !p.isKeyword("and") {
				break
			}
			p.advance()
		}
	}
	if p.isKeyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.isKeyword("desc") {
				item.Desc = true
				p.advance()
			} else if p.isKeyword("asc") {
				p.advance()
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.tok.kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.isKeyword("limit") {
		p.advance()
		if p.tok.kind != tokNumber {
			return nil, errAt(p.tok.pos, "expected row count after LIMIT, found %s", p.tok)
		}
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil || n < 0 {
			return nil, errAt(p.tok.pos, "bad LIMIT %q", p.tok.text)
		}
		stmt.Limit = &n
		p.advance()
	}
	return stmt, p.err
}

// parseColumnRef parses a (possibly qualified) column reference.
func (p *parser) parseColumnRef() (ColumnRef, error) {
	e, err := p.parseExpr()
	if err != nil {
		return ColumnRef{}, err
	}
	col, ok := e.(ColumnRef)
	if !ok {
		return ColumnRef{}, errAt(p.tok.pos, "expected column reference, found %s", e.SQL())
	}
	return col, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.tok.kind == tokStar {
		p.advance()
		return SelectItem{Expr: Star{}}, p.err
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.isKeyword("as") {
		p.advance()
		if p.tok.kind != tokIdent {
			return SelectItem{}, errAt(p.tok.pos, "expected alias after AS, found %s", p.tok)
		}
		item.Alias = p.tok.text
		p.advance()
	} else if p.tok.kind == tokIdent && !reserved[strings.ToLower(p.tok.text)] {
		item.Alias = p.tok.text
		p.advance()
	}
	return item, p.err
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.tok.kind != tokIdent || reserved[strings.ToLower(p.tok.text)] {
		return TableRef{}, errAt(p.tok.pos, "expected table name, found %s", p.tok)
	}
	ref := TableRef{Table: p.tok.text}
	p.advance()
	if p.isKeyword("as") {
		p.advance()
		if p.tok.kind != tokIdent {
			return TableRef{}, errAt(p.tok.pos, "expected alias after AS, found %s", p.tok)
		}
	}
	if p.tok.kind == tokIdent && !reserved[strings.ToLower(p.tok.text)] {
		ref.Alias = p.tok.text
		p.advance()
	}
	return ref, p.err
}

func (p *parser) parseComparison() (Comparison, error) {
	left, err := p.parseExpr()
	if err != nil {
		return Comparison{}, err
	}
	if p.tok.kind != tokOp {
		return Comparison{}, errAt(p.tok.pos, "expected comparison operator, found %s", p.tok)
	}
	opText := p.tok.text
	if opText == "!=" {
		opText = "<>"
	}
	op := CompareOp(opText)
	p.advance()
	right, err := p.parseExpr()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Left: left, Op: op, Right: right}, p.err
}

func (p *parser) parseExpr() (Expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	switch p.tok.kind {
	case tokNumber:
		text := p.tok.text
		pos := p.tok.pos
		p.advance()
		if strings.Contains(text, ".") {
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, errAt(pos, "bad numeric literal %q", text)
			}
			return FloatLit{Value: v}, p.err
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, errAt(pos, "bad integer literal %q", text)
		}
		return IntLit{Value: v}, p.err
	case tokString:
		v := p.tok.text
		p.advance()
		return StringLit{Value: v}, p.err
	case tokParam:
		text := p.tok.text
		pos := p.tok.pos
		p.advance()
		if text == "?" {
			prm := Param{Ord: p.nParams}
			p.nParams++
			return prm, p.err
		}
		// Rendered template form `?N` or `?N:hint` (see Param.SQL): the
		// ordinal and hint are explicit, so a normalized key re-parses to
		// the exact Params it was rendered from.
		numS, hintS, hasHint := strings.Cut(text[1:], ":")
		ord, err := strconv.Atoi(numS)
		if err != nil {
			return nil, errAt(pos, "bad parameter marker %q", text)
		}
		prm := Param{Ord: ord}
		if hasHint {
			switch hintS {
			case "any":
				prm.Hint = PAny
			case "int":
				prm.Hint = PInt
			case "float":
				prm.Hint = PFloat
			case "str":
				prm.Hint = PString
			default:
				return nil, errAt(pos, "unknown parameter type hint in %q", text)
			}
		}
		if ord >= p.nParams {
			p.nParams = ord + 1
		}
		return prm, p.err
	case tokIdent:
		if reserved[strings.ToLower(p.tok.text)] {
			return nil, errAt(p.tok.pos, "unexpected keyword %s in expression", p.tok)
		}
		name := p.tok.text
		p.advance()
		switch p.tok.kind {
		case tokLParen: // function or aggregate call
			p.advance()
			call := FuncCall{Name: name}
			if p.tok.kind != tokRParen {
				for {
					// COUNT(*) takes a bare star as its argument.
					if p.tok.kind == tokStar {
						call.Args = append(call.Args, Star{})
						p.advance()
					} else {
						arg, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						call.Args = append(call.Args, arg)
					}
					if p.tok.kind != tokComma {
						break
					}
					p.advance()
				}
			}
			if p.tok.kind != tokRParen {
				return nil, errAt(p.tok.pos, "expected ) in call to %s, found %s", name, p.tok)
			}
			p.advance()
			return call, p.err
		case tokDot: // qualified column
			p.advance()
			if p.tok.kind != tokIdent {
				return nil, errAt(p.tok.pos, "expected column name after %q., found %s", name, p.tok)
			}
			col := ColumnRef{Table: name, Name: p.tok.text}
			p.advance()
			return col, p.err
		default:
			return ColumnRef{Name: name}, p.err
		}
	default:
		return nil, errAt(p.tok.pos, "expected expression, found %s", p.tok)
	}
}
