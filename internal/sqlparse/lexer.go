// Package sqlparse implements the SQL subset accepted by the GDQS: single
// SELECT blocks with operation calls, implicit joins, and conjunctive
// equality/comparison predicates — enough to express the paper's evaluation
// queries
//
//	Q1: select EntropyAnalyser(p.sequence) from protein_sequences p
//	Q2: select i.ORF2 from protein_sequences p, protein_interactions i
//	    where i.ORF1 = p.ORF
//
// and natural variations of them.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp    // comparison operators
	tokParam // `?` parameter marker
)

// token is one lexeme with its source position (byte offset) for error
// messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer scans a query string into tokens.
type lexer struct {
	src string
	pos int
}

// Error is a parse or lex error with position information.
type Error struct {
	Pos int
	Msg string
}

// Error formats the parse error with its byte offset.
func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos)
}

func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '?':
		// Bare `?` is the positional marker clients write; the rendered
		// forms `?N` and `?N:hint` appear in normalized template SQL, and
		// accepting them makes normalization a fixpoint (a template's own
		// rendering re-parses to itself).
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		if l.pos > start+1 && l.pos < len(l.src) && l.src[l.pos] == ':' {
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
		}
		return token{tokParam, l.src[start:l.pos], start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, "<", start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "!=", start}, nil
		}
		return token{}, errAt(start, "unexpected character %q", c)
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errAt(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, b.String(), start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, errAt(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
