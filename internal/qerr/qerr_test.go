package qerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSentinelsWrapContextSentinels(t *testing.T) {
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled should wrap context.Canceled")
	}
	if !errors.Is(ErrTimeout, context.DeadlineExceeded) {
		t.Error("ErrTimeout should wrap context.DeadlineExceeded")
	}
	if errors.Is(ErrCanceled, context.DeadlineExceeded) || errors.Is(ErrTimeout, context.Canceled) {
		t.Error("sentinels must not cross-match")
	}
}

func TestKindWrapping(t *testing.T) {
	base := errors.New("boom")
	err := Exec("fragment f1#0", base)
	if !errors.Is(err, base) {
		t.Error("wrapped error should match base via errors.Is")
	}
	var qe *Error
	if !errors.As(err, &qe) {
		t.Fatal("errors.As should find *Error")
	}
	if qe.Kind != KindExec || qe.Op != "fragment f1#0" {
		t.Errorf("got kind=%v op=%q", qe.Kind, qe.Op)
	}
	if KindOf(err) != KindExec {
		t.Errorf("KindOf = %v, want KindExec", KindOf(err))
	}
	if KindOf(base) != KindUnknown {
		t.Errorf("KindOf(base) = %v, want KindUnknown", KindOf(base))
	}
}

func TestNewNilAndIdempotent(t *testing.T) {
	if Plan("parse", nil) != nil {
		t.Error("wrapping nil should stay nil")
	}
	inner := Transport("send", errors.New("conn reset"))
	outer := Transport("publish", inner)
	if outer != inner {
		t.Error("re-wrapping with the same kind should be a no-op")
	}
	cross := Exec("drive", inner)
	if cross == inner {
		t.Error("wrapping with a different kind should add a layer")
	}
	if KindOf(cross) != KindExec {
		t.Errorf("outermost kind = %v, want KindExec", KindOf(cross))
	}
}

func TestErrorString(t *testing.T) {
	err := Schedule("validate", errors.New("no such node"))
	want := "schedule validate: no such node"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	anon := New(KindPlan, "", errors.New("syntax"))
	if anon.Error() != "plan: syntax" {
		t.Errorf("Error() = %q", anon.Error())
	}
}

func TestFromContextLive(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Errorf("live context should yield nil, got %v", err)
	}
}

func TestFromContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := FromContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("got %v, want ErrCanceled", err)
	}
}

func TestFromContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if err := FromContext(ctx); !errors.Is(err, ErrTimeout) {
		t.Errorf("got %v, want ErrTimeout", err)
	}
}

func TestFromContextFirstErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	frag := Exec("fragment f2#1", errors.New("ws unavailable"))
	cancel(frag)
	err := FromContext(ctx)
	if !errors.Is(err, frag) {
		t.Errorf("got %v, want the fragment failure cause", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("a caused cancellation must not read as a plain ErrCanceled")
	}
}

func TestFromContextCauseTimeout(t *testing.T) {
	// A deadline layered over a cancel-cause parent: deadline fires first.
	parent, pcancel := context.WithCancelCause(context.Background())
	defer pcancel(nil)
	ctx, cancel := context.WithTimeout(parent, time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if err := FromContext(ctx); !errors.Is(err, ErrTimeout) {
		t.Errorf("got %v, want ErrTimeout", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindUnknown: "unknown", KindPlan: "plan", KindSchedule: "schedule",
		KindExec: "exec", KindTransport: "transport", Kind(99): "unknown",
	} {
		if got := fmt.Sprint(k); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
