// Package qerr is the typed error layer of the query lifecycle: every
// failure crossing a package boundary (services, engine, core, transport)
// is classified by the phase it belongs to, and the two lifecycle outcomes
// a client must distinguish — cancellation and deadline expiry — are
// first-class sentinels. Callers branch with errors.Is/errors.As instead of
// string matching:
//
//	res, err := gdqs.Execute(ctx, sql)
//	switch {
//	case errors.Is(err, qerr.ErrTimeout):   // query exceeded its deadline
//	case errors.Is(err, qerr.ErrCanceled):  // caller canceled the context
//	case qerr.KindOf(err) == qerr.KindPlan: // the SQL never compiled
//	}
//
// The sentinels wrap the matching context sentinels, so code that only
// knows about context.Canceled / context.DeadlineExceeded keeps working.
package qerr

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports that the query's context was canceled before the
// result was complete. errors.Is(ErrCanceled, context.Canceled) holds.
var ErrCanceled = fmt.Errorf("query canceled: %w", context.Canceled)

// ErrTimeout reports that the query exceeded its deadline.
// errors.Is(ErrTimeout, context.DeadlineExceeded) holds.
var ErrTimeout = fmt.Errorf("query timed out: %w", context.DeadlineExceeded)

// ErrRejected reports that the admission controller turned the query away
// without queueing it (queue at capacity). Clients should back off and
// retry; the error is always wrapped with KindAdmission.
var ErrRejected = errors.New("query rejected: admission queue full")

// Kind classifies a query error by the lifecycle phase that produced it.
type Kind uint8

// Error kinds.
const (
	KindUnknown Kind = iota
	// KindPlan covers parsing and logical planning: the query text itself
	// is at fault.
	KindPlan
	// KindSchedule covers physical scheduling and plan validation: the
	// query is well-formed but cannot be placed on the current Grid.
	KindSchedule
	// KindExec covers fragment execution: operators, web-service calls,
	// sinks.
	KindExec
	// KindTransport covers message movement between services: failed
	// buffer shipping, unreachable endpoints, control RPC failures.
	KindTransport
	// KindAdmission covers the serving front: the query was well-formed but
	// never started because the admission controller's queue was full or the
	// queue-time budget expired.
	KindAdmission
	// KindNodeLoss covers evaluator death: a machine hosting fragment
	// instances crash-stopped or became unreachable mid-query. In elastic
	// mode the session recovers from it when every affected fragment has
	// surviving partitioned instances; otherwise the query fails with this
	// kind so clients can distinguish "resubmit against the new topology"
	// from a fault in the query itself.
	KindNodeLoss
	// KindStorage covers the temporary-run layer: truncated or corrupt
	// block frames, unreadable spill files, readers opened on unsealed
	// runs. It distinguishes "the stored bytes are damaged" from a fault
	// in the query (KindExec) so operators can surface storage rot
	// without misclassifying it as their own bug.
	KindStorage
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPlan:
		return "plan"
	case KindSchedule:
		return "schedule"
	case KindExec:
		return "exec"
	case KindTransport:
		return "transport"
	case KindAdmission:
		return "admission"
	case KindNodeLoss:
		return "node-loss"
	case KindStorage:
		return "storage"
	default:
		return "unknown"
	}
}

// Error is a classified query error. It wraps the underlying cause, so
// errors.Is/As see through it.
type Error struct {
	Kind Kind
	// Op names the failing operation ("parse", "fragment q1-f2#0", ...).
	Op  string
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("%s: %v", e.Kind, e.Err)
	}
	return fmt.Sprintf("%s %s: %v", e.Kind, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// New wraps err with a kind and operation name; nil stays nil, and an err
// already carrying the same kind is returned unchanged (boundaries can
// wrap defensively without stuttering).
func New(kind Kind, op string, err error) error {
	if err == nil {
		return nil
	}
	var qe *Error
	if errors.As(err, &qe) && qe.Kind == kind {
		return err
	}
	return &Error{Kind: kind, Op: op, Err: err}
}

// Plan wraps a parsing/logical-planning error.
func Plan(op string, err error) error { return New(KindPlan, op, err) }

// Schedule wraps a physical-scheduling error.
func Schedule(op string, err error) error { return New(KindSchedule, op, err) }

// Exec wraps a fragment-execution error.
func Exec(op string, err error) error { return New(KindExec, op, err) }

// Transport wraps a message-transport error.
func Transport(op string, err error) error { return New(KindTransport, op, err) }

// Admission wraps an admission-control error.
func Admission(op string, err error) error { return New(KindAdmission, op, err) }

// NodeLoss wraps an evaluator-death error.
func NodeLoss(op string, err error) error { return New(KindNodeLoss, op, err) }

// Storage wraps a temporary-run-layer error (corrupt or truncated block
// frames, unreadable runs).
func Storage(op string, err error) error { return New(KindStorage, op, err) }

// IsNodeLoss reports whether err is classified as evaluator death.
func IsNodeLoss(err error) bool { return KindOf(err) == KindNodeLoss }

// KindOf reports the kind of the outermost *Error in err's chain, or
// KindUnknown.
func KindOf(err error) Kind {
	var qe *Error
	if errors.As(err, &qe) {
		return qe.Kind
	}
	return KindUnknown
}

// FromContext translates a done context into the lifecycle error a query
// should surface: the cancellation cause when a sibling failure triggered
// first-error-wins teardown, ErrTimeout when the deadline expired, and
// ErrCanceled for a plain external cancellation. It returns nil while ctx
// is still live.
func FromContext(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	cause := context.Cause(ctx)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) || errors.Is(cause, context.DeadlineExceeded) {
		return ErrTimeout
	}
	if cause != nil && !errors.Is(cause, context.Canceled) {
		// A sibling fragment failed and canceled the session: surface that
		// failure, not the cancellation it caused.
		return cause
	}
	return ErrCanceled
}
